// Extension: the third similarity-based mining task named in §II-C —
// distance-based outlier detection (ORCA nested loop). Same framework,
// same story: the PIM lower bounds order each candidate's neighbour scan
// so the within-cutoff neighbours are found almost immediately.

#include <iostream>

#include "bench_common.h"
#include "knn/outlier.h"
#include "profiling/modeled_time.h"

namespace pimine {
namespace bench {
namespace {

void Run() {
  const HostCostModel model;
  Banner("Extension: distance-based outlier detection (ORCA, top-10 by "
         "5-NN distance)");

  TablePrinter table({"dataset", "N", "d", "ORCA model_ms",
                      "ORCA-PIM model_ms", "speedup", "exact dists",
                      "PIM exact dists"});
  for (const char* name : {"ImageNet", "MSD"}) {
    const BenchWorkload w = LoadWorkload(name, /*n=*/4000);
    OutlierOptions options;
    options.k = 5;
    options.num_outliers = 10;

    OrcaOutlierDetector baseline;
    auto base = baseline.Detect(w.data, options);
    PIMINE_CHECK(base.ok()) << base.status().ToString();

    OrcaPimOutlierDetector pim(ScaledEngineOptions(w));
    auto accel = pim.Detect(w.data, options);
    PIMINE_CHECK(accel.ok()) << accel.status().ToString();

    PIMINE_CHECK(base->outliers.size() == accel->outliers.size());
    for (size_t i = 0; i < base->outliers.size(); ++i) {
      PIMINE_CHECK(base->outliers[i].id == accel->outliers[i].id)
          << "outlier sets must match";
    }

    const double base_ms = ComposeModeledTime(base->stats, model).total_ms();
    const double accel_ms =
        ComposeModeledTime(accel->stats, model).total_ms();
    table.AddRow({name, std::to_string(w.data.rows()),
                  std::to_string(w.data.cols()), Fmt(base_ms),
                  Fmt(accel_ms), Fmt(base_ms / accel_ms, 1) + "x",
                  std::to_string(base->stats.exact_count),
                  std::to_string(accel->stats.exact_count)});
  }
  table.Print();
  std::cout << "\nOutlier sets are verified identical between baseline and "
               "PIM runs (accuracy preserved, as for kNN/k-means).\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
