#include "profile_workloads.h"

#include <memory>

#include "common/logging.h"
#include "kmeans/drake.h"
#include "kmeans/elkan.h"
#include "kmeans/lloyd.h"
#include "kmeans/yinyang.h"
#include "knn/fnn_knn.h"
#include "knn/ost_knn.h"
#include "knn/sm_knn.h"
#include "knn/standard_knn.h"

namespace pimine {
namespace bench {

bool IsOffloadableTag(const std::string& tag) {
  return tag == "ED" || tag == "CS" || tag == "PCC" || tag == "HD" ||
         tag == "LB_SM" || tag == "LB_OST" || tag == "LB_FNN" ||
         tag == "LB_PIM" || tag == "HD_PIM";
}

namespace {

double OffloadableMs(const FunctionProfiler& profile) {
  double total_ns = 0.0;
  for (const auto& [tag, ns] : profile.entries()) {
    if (IsOffloadableTag(tag)) total_ns += static_cast<double>(ns);
  }
  return total_ns / 1e6;
}

}  // namespace

std::vector<ProfiledRun> ProfileKnnAlgorithms(const BenchWorkload& workload,
                                              int k) {
  std::vector<std::unique_ptr<KnnAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<StandardKnn>());
  algorithms.push_back(std::make_unique<OstKnn>());
  algorithms.push_back(std::make_unique<SmKnn>());
  algorithms.push_back(std::make_unique<FnnKnn>());

  std::vector<ProfiledRun> runs;
  for (auto& algorithm : algorithms) {
    PIMINE_CHECK_OK(algorithm->Prepare(workload.data));
    auto result = algorithm->Search(workload.queries, k);
    PIMINE_CHECK(result.ok()) << result.status().ToString();
    ProfiledRun run;
    run.name = std::string(algorithm->name());
    run.wall_ms = result->stats.wall_ms;
    run.offloadable_ms = OffloadableMs(result->stats.profile);
    run.stats = std::move(result->stats);
    runs.push_back(std::move(run));
  }
  return runs;
}

std::vector<ProfiledRun> ProfileKmeansAlgorithms(const BenchWorkload& workload,
                                                 int k, int iterations) {
  std::vector<std::unique_ptr<KmeansAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<LloydKmeans>());
  algorithms.push_back(std::make_unique<ElkanKmeans>());
  algorithms.push_back(std::make_unique<DrakeKmeans>());
  algorithms.push_back(std::make_unique<YinyangKmeans>());

  KmeansOptions options;
  options.k = k;
  options.max_iterations = iterations;
  options.seed = kBenchSeed;

  std::vector<ProfiledRun> runs;
  for (auto& algorithm : algorithms) {
    auto result = algorithm->Run(workload.data, options);
    PIMINE_CHECK(result.ok()) << result.status().ToString();
    ProfiledRun run;
    run.name = std::string(algorithm->name());
    run.wall_ms = result->MeanIterationMs();
    run.offloadable_ms =
        static_cast<double>(result->stats.profile.Get("ED")) / 1e6 /
        result->iterations;
    run.stats = std::move(result->stats);
    runs.push_back(std::move(run));
  }
  return runs;
}

}  // namespace bench
}  // namespace pimine
