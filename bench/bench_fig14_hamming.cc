// Figure 14: kNN on binary vector data (Hamming distance) vs code length.
// Codes are SimHash (random-hyperplane LSH) encodings of GIST-like vectors,
// following the paper's reference [22]. Paper finding to reproduce: PIM
// barely helps at 128 bits (two 32-bit results ~ 64 bits of transfer per
// candidate) and wins increasingly at 256-1024 bits.

#include <iostream>

#include "bench_common.h"
#include "data/generator.h"
#include "data/simhash.h"
#include "knn/hamming_knn.h"
#include "profiling/modeled_time.h"

namespace pimine {
namespace bench {
namespace {

void Run() {
  const HostCostModel model;
  Banner("Figure 14: kNN on binary codes vs dimension (k=10, HD)");

  // Source vectors for the LSH codes. The paper hashes GIST descriptors;
  // Hamming-space behaviour depends only on the code construction and
  // length, so a lower-dimensional clustered source keeps the encoding
  // step tractable without changing the experiment (DESIGN.md §1).
  DatasetSpec spec;
  spec.name = "gist-source";
  spec.dims = 128;
  spec.profile = ClusterProfile::kDiffuse;
  spec.num_clusters = 16;
  spec.cluster_std = 0.25;
  const int64_t n = 30000;
  const FloatMatrix raw = DatasetGenerator::Generate(spec, n, kBenchSeed);
  const FloatMatrix raw_queries =
      DatasetGenerator::GenerateQueries(spec, raw, 20, kBenchSeed + 1);

  TablePrinter table({"bits", "Standard model_ms", "Standard-PIM model_ms",
                      "speedup"});
  for (size_t bits : {128, 256, 512, 1024}) {
    const SimHashEncoder encoder(raw.cols(), bits, kBenchSeed + bits);
    const BitMatrix codes = encoder.Encode(raw);
    const BitMatrix query_codes = encoder.Encode(raw_queries);

    HammingScanKnn scan;
    PIMINE_CHECK_OK(scan.Prepare(codes));
    auto base = scan.Search(query_codes, 10);
    PIMINE_CHECK(base.ok()) << base.status().ToString();
    const double base_ms =
        ComposeModeledTime(base->stats, model).total_ms();

    HammingPimKnn pim;
    PIMINE_CHECK_OK(pim.Prepare(codes));
    auto accel = pim.Search(query_codes, 10);
    PIMINE_CHECK(accel.ok()) << accel.status().ToString();
    const double accel_ms =
        ComposeModeledTime(accel->stats, model).total_ms();

    table.AddRow({std::to_string(bits), Fmt(base_ms), Fmt(accel_ms),
                  Fmt(base_ms / accel_ms, 2) + "x"});
  }
  table.Print();
  std::cout << "\nPaper reference: no meaningful gain at 128 bits; speedup "
               "grows with code length up to 1024 bits.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
