// Figure 16: effect of execution-plan optimization (§V-D) on FNN. Compares
// FNN, FNN-PIM (PIM bound replaces the first level, original levels kept),
// FNN-PIM-optimize (Eq. 13 keeps only the profitable bounds), and the
// FNN-PIM-oracle lower bound. Paper finding to reproduce: the optimized
// plan removes the now-redundant original bounds and closes most of the
// gap to the oracle.

#include <iostream>

#include "bench_common.h"
#include "knn/fnn_knn.h"
#include "knn/fnn_pim_knn.h"
#include "profile_workloads.h"
#include "profiling/modeled_time.h"

namespace pimine {
namespace bench {
namespace {

void Run() {
  const HostCostModel model;
  Banner("Figure 16: execution-plan optimization (MSD, k=10)");

  const BenchWorkload w = LoadWorkload("MSD");
  const EngineOptions options = ScaledEngineOptions(w);

  FnnKnn fnn;
  PIMINE_CHECK_OK(fnn.Prepare(w.data));
  const BenchPoint base = RunKnnPoint(fnn, w.queries, 10, model);

  // Oracle from the baseline profile (Eq. 2 projected onto modeled time).
  double offloadable_ns = 0.0;
  for (const auto& [tag, ns] : base.stats.profile.entries()) {
    if (IsOffloadableTag(tag)) offloadable_ns += static_cast<double>(ns);
  }
  const double wall_ns = base.stats.wall_ms * 1e6;
  const double oracle_ms =
      base.model_ms *
      (wall_ns > 0 ? PimOracleNs(wall_ns, offloadable_ns) / wall_ns : 0.0);

  FnnPimKnn plain(options, /*optimize=*/false);
  PIMINE_CHECK_OK(plain.Prepare(w.data));
  const BenchPoint pim = RunKnnPoint(plain, w.queries, 10, model);

  FnnPimKnn optimized(options, /*optimize=*/true);
  PIMINE_CHECK_OK(optimized.Prepare(w.data));
  const BenchPoint opt = RunKnnPoint(optimized, w.queries, 10, model);

  TablePrinter table({"algorithm", "model_ms", "plan"});
  table.AddRow({"FNN", Fmt(base.model_ms), "LB_FNN^7 -> ^28 -> ^105 -> ED"});
  table.AddRow({"FNN-PIM", Fmt(pim.model_ms),
                plain.plan().ToString(plain.candidates())});
  table.AddRow({"FNN-PIM-optimize", Fmt(opt.model_ms),
                optimized.plan().ToString(optimized.candidates())});
  table.AddRow({"FNN-PIM-oracle", Fmt(oracle_ms), "(Eq. 2 lower bound)"});
  table.Print();

  std::cout << "\nMeasured candidate pruning ratios (offline, Eq. 13 "
               "inputs):\n";
  TablePrinter candidates({"bound", "transfer bits", "prune ratio %"});
  for (const BoundCandidate& c : optimized.candidates()) {
    candidates.AddRow({c.name, Fmt(c.transfer_bits, 0),
                       Fmt(100.0 * c.pruning_ratio, 1)});
  }
  candidates.Print();

  std::cout << "\nPaper reference: FNN-PIM-optimize drops the remaining "
               "original bounds and lands close to FNN-PIM-oracle.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
