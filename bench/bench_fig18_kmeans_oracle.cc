// Figure 18: PIM-optimized k-means vs the PIM-oracle (Eq. 2) across k on
// NUS-WIDE, for the Standard and Drake families. Paper findings to
// reproduce: an obvious gap Standard -> Standard-PIM with Standard-PIM
// close to its oracle, growing with k (a); Drake-PIM bridges most of the
// Drake -> oracle gap (b).

#include <iostream>

#include "bench_common.h"
#include "kmeans/drake.h"
#include "kmeans/lloyd.h"
#include "profiling/modeled_time.h"

namespace pimine {
namespace bench {
namespace {

void RunFamily(const char* title, KmeansAlgorithm& algorithm,
               const BenchWorkload& w, const HostCostModel& model) {
  Banner(title);
  const EngineOptions engine_options = ScaledEngineOptions(w);
  TablePrinter table({"k", "No-PIM model_ms/iter", "PIM model_ms/iter",
                      "PIM-oracle model_ms/iter", "speedup"});
  for (int k : {4, 64, 256, 1024}) {
    KmeansOptions options;
    options.k = k;
    options.max_iterations = 3;
    options.seed = kBenchSeed;

    auto base = algorithm.Run(w.data, options);
    PIMINE_CHECK(base.ok()) << base.status().ToString();
    const double base_ms =
        ComposeModeledTime(base->stats, model).total_ms() / base->iterations;

    // Oracle: zero the ED share of the measured run, projected onto the
    // modeled time (Eq. 2).
    const double wall_ns = base->stats.wall_ms * 1e6;
    const double ed_ns =
        static_cast<double>(base->stats.profile.Get("ED"));
    const double oracle_ms =
        base_ms * (wall_ns > 0 ? PimOracleNs(wall_ns, ed_ns) / wall_ns : 0.0);

    options.use_pim = true;
    options.engine_options = engine_options;
    auto pim = algorithm.Run(w.data, options);
    PIMINE_CHECK(pim.ok()) << pim.status().ToString();
    const double pim_ms =
        ComposeModeledTime(pim->stats, model).total_ms() / pim->iterations;

    table.AddRow({std::to_string(k), Fmt(base_ms, 1), Fmt(pim_ms, 1),
                  Fmt(oracle_ms, 1), Fmt(base_ms / pim_ms, 1) + "x"});
  }
  table.Print();
}

void Run() {
  const HostCostModel model;
  const BenchWorkload w = LoadWorkload("NUS-WIDE", /*n=*/4000,
                                       /*num_queries=*/1);
  LloydKmeans lloyd;
  RunFamily("Figure 18(a): Standard vs Standard-PIM vs oracle (NUS-WIDE)",
            lloyd, w, model);
  DrakeKmeans drake;
  RunFamily("Figure 18(b): Drake vs Drake-PIM vs oracle (NUS-WIDE)", drake,
            w, model);

  std::cout << "\nPaper reference: higher k widens the Standard gap; "
               "Drake-PIM lands close to Drake-PIM-oracle.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
