// Extension ablation (the paper's §VII future work): when the dataset
// exceeds the PIM array, compare the two escape hatches —
//   (a) Theorem 4 compression (segment bounds at reduced s; one program,
//       no wear), vs
//   (b) partitioned re-programming at full dimensionality (tight Theorem 1
//       bounds; P reprograms per query batch, endurance consumed).
// Reports bound tightness (pruning ratio), modeled online time including
// reprogram latency, and endurance budget per batch.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/engine.h"
#include "core/partitioned_engine.h"
#include "core/similarity.h"

namespace pimine {
namespace bench {
namespace {

double PruneRatio(const FloatMatrix& data, const FloatMatrix& queries,
                  const std::vector<std::vector<double>>& bounds, int k) {
  double total = 0.0;
  std::vector<double> exact(data.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    for (size_t i = 0; i < data.rows(); ++i) {
      exact[i] = SquaredEuclidean(data.row(i), queries.row(q));
    }
    std::vector<double> sorted = exact;
    std::nth_element(sorted.begin(), sorted.begin() + (k - 1), sorted.end());
    const double tau = sorted[k - 1];
    size_t pruned = 0;
    for (size_t i = 0; i < data.rows(); ++i) {
      if (bounds[q][i] > tau) ++pruned;
    }
    total += static_cast<double>(pruned) / data.rows();
  }
  return total / queries.rows();
}

void Run() {
  Banner("Extension: Theorem 4 compression vs partitioned re-programming "
         "(MSD profile, PIM array 4x too small)");

  const BenchWorkload w = LoadWorkload("MSD", /*n=*/6000, /*num_queries=*/8);
  // Budget ~1/4 of what the full-dimensionality dataset needs (2 copies).
  EngineOptions tight;
  tight.pim_config.num_crossbars = 400;

  // (a) compression.
  auto compressed_or =
      PimEngine::Build(w.data, Distance::kEuclidean, tight);
  PIMINE_CHECK(compressed_or.ok()) << compressed_or.status().ToString();
  PimEngine& compressed = **compressed_or;
  std::vector<std::vector<double>> comp_bounds(w.queries.rows());
  for (size_t q = 0; q < w.queries.rows(); ++q) {
    PIMINE_CHECK_OK(
        compressed.ComputeBounds(w.queries.row(q), &comp_bounds[q]));
  }

  // (b) partitioned re-programming.
  auto partitioned_or = PartitionedPimEngine::Build(w.data, tight);
  PIMINE_CHECK(partitioned_or.ok()) << partitioned_or.status().ToString();
  PartitionedPimEngine& partitioned = **partitioned_or;
  std::vector<std::vector<double>> part_bounds;
  PIMINE_CHECK_OK(partitioned.ComputeBoundsBatch(w.queries, &part_bounds));

  TablePrinter table({"scheme", "bound", "prune ratio %", "PIM ms/batch",
                      "reprogram ms/batch", "reprograms/batch"});
  table.AddRow({"compression (Thm. 4)",
                "LB_PIM-FNN^" + std::to_string(compressed.num_segments()),
                Fmt(100.0 * PruneRatio(w.data, w.queries, comp_bounds, 10), 1),
                Fmt(compressed.PimComputeNs() / 1e6, 3), "0", "0"});
  table.AddRow(
      {"re-programming (§VII)", "LB_PIM-ED (full d)",
       Fmt(100.0 * PruneRatio(w.data, w.queries, part_bounds, 10), 1),
       Fmt(partitioned.PimComputeNs() / 1e6, 3),
       Fmt(partitioned.ReprogramNs() / 1e6, 3),
       std::to_string(partitioned.num_partitions())});
  table.Print();

  const double batches_to_death =
      tight.pim_config.endurance_writes /
      static_cast<double>(partitioned.num_partitions());
  std::cout << "\nEndurance: at " << partitioned.num_partitions()
            << " reprograms per query batch, the 1e8-write budget allows ~"
            << Fmt(batches_to_death, 0)
            << " batches before cell wear-out — the latency win is real "
               "but the paper's §VII concern (wear + reprogram latency) is "
               "visible.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
