// Figure 7: No-PIM vs PIM-oracle (Eq. 2) — the theoretical best any PIM
// implementation can do, obtained by zeroing the profiled time of the
// offloadable functions. Paper findings to reproduce: PIM-oracle is ~184x
// faster than Standard kNN; for k-means the gap is large for Standard
// (51x) but small for Elkan (2.2x).

#include <iostream>

#include "bench_common.h"
#include "profile_workloads.h"
#include "profiling/modeled_time.h"

namespace pimine {
namespace bench {
namespace {

void PrintOracleTable(const std::vector<ProfiledRun>& runs) {
  TablePrinter table({"algorithm", "No-PIM ms", "PIM-oracle ms",
                      "potential speedup"});
  for (const ProfiledRun& run : runs) {
    const double oracle_ms =
        PimOracleNs(run.wall_ms * 1e6, run.offloadable_ms * 1e6) / 1e6;
    table.AddRow({run.name, Fmt(run.wall_ms), Fmt(oracle_ms),
                  Fmt(oracle_ms > 0 ? run.wall_ms / oracle_ms : 0.0, 1) +
                      "x"});
  }
  table.Print();
}

void Run() {
  Banner("Figure 7(a): kNN No-PIM vs PIM-oracle, MSD, k=10");
  const BenchWorkload msd = LoadWorkload("MSD");
  PrintOracleTable(ProfileKnnAlgorithms(msd, 10));

  Banner("Figure 7(b): k-means No-PIM vs PIM-oracle, NUS-WIDE, k=64 "
         "(ms/iteration)");
  const BenchWorkload nus = LoadWorkload("NUS-WIDE");
  PrintOracleTable(ProfileKmeansAlgorithms(nus, 64, 3));

  std::cout << "\nPaper reference: PIM-oracle is 183.9x faster than "
               "Standard kNN; 51.4x (Standard), 7.5x (Drake), 5.3x "
               "(Yinyang), 2.2x (Elkan) for k-means.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
