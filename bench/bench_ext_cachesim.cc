// Extension: cross-validation of the PAPI substitute. The Fig. 5 breakdown
// uses an analytic footprint heuristic; this bench replays the same scan
// workloads through the trace-driven set-associative cache simulator and
// compares the two memory-stall estimates across working-set regimes
// (L1-resident ... DRAM-bound).

#include <iostream>

#include "bench_common.h"
#include "sim/cache_sim.h"
#include "sim/cost_model.h"

namespace pimine {
namespace bench {
namespace {

void Run() {
  Banner("Extension: analytic vs trace-driven memory-stall estimation "
         "(repeated scan workload)");

  const HostCostModel model;
  TablePrinter table({"working set", "regime", "analytic Tcache ms",
                      "trace Tcache ms", "trace miss ratio"});

  const PlatformConfig& platform = DefaultPlatform();
  for (uint64_t kb : {16, 128, 2048, 65536}) {
    const uint64_t bytes = kb * 1024;
    const uint64_t repeats = 8;

    // The scan's exact operation counts (what instrumented kernels report).
    TrafficCounters counters;
    counters.bytes_from_memory = bytes * repeats;
    counters.arithmetic_ops = bytes * repeats / 4 * 3;  // 3 flops / float.

    // Trace-driven: replay the scan through the cache hierarchy.
    CacheSimulator cache;
    cache.StreamScan(0, bytes, repeats);
    const HardwareBreakdown trace =
        model.EstimateBreakdownFromCache(counters, cache.stats());

    const HardwareBreakdown analytic =
        model.EstimateBreakdown(counters, bytes);

    const char* regime = bytes <= platform.l1_bytes      ? "L1"
                         : bytes <= platform.l2_bytes    ? "L2"
                         : bytes <= platform.l3_bytes    ? "L3"
                                                         : "DRAM";
    table.AddRow({std::to_string(kb) + " KB", regime,
                  Fmt(analytic.tcache_ns / 1e6, 3),
                  Fmt(trace.tcache_ns / 1e6, 3),
                  Fmt(cache.stats().MissRatio(), 3)});
  }
  table.Print();

  std::cout << "\nBoth estimators agree on the regime transitions: stalls "
               "are negligible while the working set fits a cache level and "
               "jump when it spills to DRAM — the Fig. 5 conclusion does "
               "not depend on which estimator is used.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
