// Serving-layer bench: throughput vs offered load under continuous device
// batching (DESIGN.md section 10).
//
// Replays Poisson arrival traces at a sweep of load factors against
// serve::PimServer on the virtual clock and reports, per offered load, the
// mean batch occupancy the scheduler sustained and the modeled serving
// throughput (served / makespan). The engine runs in direct-ED mode
// (operand length d > crossbar_dim), where BatchDotLatencyNs =
// stage_ns * (stages + Q - 1) amortizes across coalesced queries — so
// queries/s rises with offered load as occupancy grows. The honest caveat
// (also in the emitted "note"): segment-mode datasets program s <= 256
// operand columns, stages == 1, and batching then raises device
// utilization but not per-query pipelining.
//
// The header also carries the scratch-reuse measurement for the dispatch
// hot path: executing the same device batch through the allocating
// RunQueryBatch overload vs the reuse overload the scheduler uses
// (QueryHandleBatch + QueryScratch hoisted across dispatches).
//
//   bench_serve [--chaos] [n] [requests]     (defaults 1536, 384)
//
// --chaos additionally runs the replica-failover sweep: the same trace
// replayed against a shards=4 x replicas=2 fleet under a seeded schedule
// of device deaths (deaths in {0, 1, 2, 4}), with two weighted tenants
// (gold:4, free:1) and degraded-mode shedding armed. Each row reports the
// FailoverStats of the run (injected/recovered/shed must balance) and
// lands in a "chaos_sweep" array of the JSON document; the deaths=0 row is
// checked bit-identical to a chaos-free fleet and the heaviest row is
// re-replayed at 4 scheduler threads to pin failover determinism.
//
// Emits one "pimine.bench.serve.v1" JSON document to stdout and
// BENCH_serve.json, validated by tools/bench_diff.py. Includes a built-in
// replay determinism self-check (scheduler_threads 1 vs 4).

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "util/timer.h"

namespace pimine {
namespace bench {
namespace {

constexpr size_t kMaxBatch = 32;
constexpr uint64_t kMaxWaitNs = 5000;  // 5 us coalescing window.
constexpr int kK = 10;

serve::ServeOptions MakeServeOptions(int scheduler_threads) {
  serve::ServeOptions options;
  options.max_batch = kMaxBatch;
  options.max_wait_ns = kMaxWaitNs;
  options.queue_capacity = 1u << 16;  // Backpressure is not under test here.
  options.scheduler_threads = scheduler_threads;
  options.k = kK;
  options.exec.device_batch = kMaxBatch;
  return options;
}

serve::ReplayOutput MustReplay(serve::PimServer& server,
                               const serve::ArrivalTrace& trace,
                               const FloatMatrix& queries) {
  auto output = server.Replay(trace, queries);
  PIMINE_CHECK(output.ok()) << output.status().ToString();
  return *std::move(output);
}

/// Times `iterations` executions of one Q=kMaxBatch device batch through
/// `engine`, either allocating a fresh QueryHandleBatch per call (the
/// by-value overload) or reusing one hoisted handle + scratch (the
/// overload the serving scheduler runs). Best of 3 repetitions.
double DispatchLoopMs(const ShardedPimEngine& engine,
                      std::span<const float> qbuf, int iterations,
                      bool reuse) {
  ShardedPimEngine::QueryScratch scratch;
  ShardedPimEngine::QueryHandleBatch handle;
  double best_ms = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    for (int i = 0; i < iterations; ++i) {
      if (reuse) {
        PIMINE_CHECK_OK(
            engine.RunQueryBatch(qbuf, kMaxBatch, &scratch, &handle));
      } else {
        auto fresh = engine.RunQueryBatch(qbuf, kMaxBatch, &scratch);
        PIMINE_CHECK(fresh.ok()) << fresh.status().ToString();
      }
    }
    const double ms = timer.ElapsedMillis();
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

int Main(int argc, char** argv) {
  bool chaos_mode = false;
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--chaos") {
      chaos_mode = true;
      continue;
    }
    positional.push_back(argv[i]);
  }
  const int64_t n = !positional.empty() ? std::atoll(positional[0]) : 1536;
  const size_t requests =
      positional.size() > 1 ? static_cast<size_t>(std::atoll(positional[1]))
                            : 384;
  const BenchWorkload workload = LoadWorkload("MSD", n, 48);

  // Full crossbar budget: kAuto keeps MSD (d=420 > crossbar_dim) in direct
  // ED mode, the regime where batch pipelining has stages > 1.
  EngineOptions engine_options;
  auto server = serve::PimServer::Build(workload.data, Distance::kEuclidean,
                                        engine_options, MakeServeOptions(1));
  PIMINE_CHECK(server.ok()) << server.status().ToString();

  const double serial_ns = (*server)->engine().ModeledBatchNs(1);
  // stage_ns: the marginal modeled cost of one extra coalesced query.
  const double marginal_ns =
      (*server)->engine().ModeledBatchNs(2) - serial_ns;
  PIMINE_CHECK(marginal_ns < serial_ns)
      << "expected a pipelined (stages > 1) regime; got serial "
      << serial_ns << " ns vs marginal " << marginal_ns << " ns";
  const double base_qps = 1e9 / serial_ns;

  Banner("Serving: throughput vs offered load (MSD direct-ED, max_batch=" +
         std::to_string(kMaxBatch) + ")");
  TablePrinter table({"load", "offered q/s", "served", "occupancy",
                      "modeled q/s", "wait p50 ns", "latency p50 ns",
                      "wall_ms"});

  std::ostringstream sweep_json;
  const std::vector<double> load_factors = {0.25, 0.5, 1.0, 2.0, 4.0};
  double low_load_qps = 0.0, high_load_qps = 0.0;
  double low_load_occupancy = 0.0, high_load_occupancy = 0.0;
  for (size_t li = 0; li < load_factors.size(); ++li) {
    const double load = load_factors[li];
    serve::WorkloadSpec spec;
    spec.num_requests = requests;
    spec.offered_qps = load * base_qps;
    spec.tenant_share = {1.0};
    spec.num_query_rows = static_cast<uint32_t>(workload.queries.rows());
    spec.seed = kBenchSeed + li;
    auto trace = serve::GeneratePoissonTrace(spec);
    PIMINE_CHECK(trace.ok()) << trace.status().ToString();

    Timer timer;
    const serve::ReplayOutput output =
        MustReplay(**server, *trace, workload.queries);
    const double wall_ms = timer.ElapsedMillis();
    const serve::ServeStats& stats = output.stats;
    PIMINE_CHECK(stats.rejected == 0);
    const double modeled_qps =
        stats.makespan_ns > 0 ? stats.served * 1e9 / stats.makespan_ns : 0.0;
    if (li == 0) {
      low_load_qps = modeled_qps;
      low_load_occupancy = stats.mean_batch_occupancy;
    }
    if (li + 1 == load_factors.size()) {
      high_load_qps = modeled_qps;
      high_load_occupancy = stats.mean_batch_occupancy;
    }

    table.AddRow({Fmt(load), Fmt(spec.offered_qps, 0),
                  std::to_string(stats.served),
                  Fmt(stats.mean_batch_occupancy),
                  Fmt(modeled_qps, 0),
                  std::to_string(stats.wait_hist.QuantileUpperBound(0.5)),
                  std::to_string(stats.latency_hist.QuantileUpperBound(0.5)),
                  Fmt(wall_ms)});

    sweep_json << (li == 0 ? "" : ",\n")
               << "    {\"load_factor\": " << Fmt(load)
               << ", \"offered_qps\": " << Fmt(spec.offered_qps, 0)
               << ", \"served\": " << stats.served
               << ", \"rejected\": " << stats.rejected
               << ", \"dispatches\": " << stats.batches
               << ", \"mean_batch_occupancy\": "
               << Fmt(stats.mean_batch_occupancy, 3)
               << ", \"makespan_ms\": " << Fmt(stats.makespan_ns / 1e6, 4)
               << ", \"modeled_queries_per_s\": " << Fmt(modeled_qps, 1)
               << ", \"pipelined_ns\": " << Fmt(stats.pipelined_ns, 0)
               << ", \"wait_p50_ns\": "
               << stats.wait_hist.QuantileUpperBound(0.5)
               << ", \"latency_p50_ns\": "
               << stats.latency_hist.QuantileUpperBound(0.5)
               << ", \"latency_p99_ns\": "
               << stats.latency_hist.QuantileUpperBound(0.99)
               << ", \"wall_ms\": " << Fmt(wall_ms, 4) << "}";
  }
  table.Print();
  PIMINE_CHECK(high_load_occupancy > low_load_occupancy)
      << "occupancy did not grow with offered load";
  PIMINE_CHECK(high_load_qps > low_load_qps)
      << "modeled throughput did not grow with offered load";

  // Replay determinism self-check: the saturating trace, executed with 1
  // and 4 scheduler threads, must agree bit for bit on results and on the
  // engine's modeled accounting.
  bool identical_across_threads = true;
  {
    serve::WorkloadSpec spec;
    spec.num_requests = requests;
    spec.offered_qps = 4.0 * base_qps;
    spec.tenant_share = {1.0};
    spec.num_query_rows = static_cast<uint32_t>(workload.queries.rows());
    spec.seed = kBenchSeed;
    auto trace = serve::GeneratePoissonTrace(spec);
    PIMINE_CHECK(trace.ok()) << trace.status().ToString();
    const serve::ReplayOutput base =
        MustReplay(**server, *trace, workload.queries);
    auto threaded_server = serve::PimServer::Build(
        workload.data, Distance::kEuclidean, engine_options,
        MakeServeOptions(4));
    PIMINE_CHECK(threaded_server.ok()) << threaded_server.status().ToString();
    const serve::ReplayOutput threaded =
        MustReplay(**threaded_server, *trace, workload.queries);
    identical_across_threads =
        base.stats.exec.pim_ns == threaded.stats.exec.pim_ns &&
        base.stats.exec.traffic == threaded.stats.exec.traffic &&
        base.stats.pipelined_ns == threaded.stats.pipelined_ns &&
        base.stats.makespan_ns == threaded.stats.makespan_ns &&
        base.results.size() == threaded.results.size();
    for (size_t i = 0; identical_across_threads && i < base.results.size();
         ++i) {
      identical_across_threads =
          base.results[i].neighbors == threaded.results[i].neighbors &&
          base.results[i].batch_id == threaded.results[i].batch_id;
    }
    PIMINE_CHECK(identical_across_threads)
        << "replay diverged across scheduler thread counts";
  }

  // Replica-failover chaos sweep (--chaos): a shards=4 x replicas=2 fleet
  // replays one saturating two-tenant trace under a seeded schedule of
  // device deaths. deaths=0 must be bit-identical to the chaos-free fleet;
  // every row's FailoverStats must balance (injected == recovered + shed);
  // the heaviest row must be thread-count invariant.
  std::ostringstream chaos_json;
  if (chaos_mode) {
    constexpr int kChaosShards = 4;
    constexpr int kChaosReplicas = 2;
    EngineOptions fleet_options = engine_options;
    fleet_options.shard.shards = kChaosShards;
    fleet_options.shard.replicas = kChaosReplicas;

    serve::ServeOptions serve_base = MakeServeOptions(1);
    serve_base.tenants = {{"gold", 4}, {"free", 1}};

    serve::WorkloadSpec spec;
    spec.num_requests = requests;
    spec.offered_qps = 2.0 * base_qps;
    spec.tenant_share = {0.5, 0.5};
    spec.num_query_rows = static_cast<uint32_t>(workload.queries.rows());
    spec.seed = kBenchSeed + 99;
    auto trace = serve::GeneratePoissonTrace(spec);
    PIMINE_CHECK(trace.ok()) << trace.status().ToString();

    // Fault-free reference on the same replicated geometry.
    auto clean_server = serve::PimServer::Build(
        workload.data, Distance::kEuclidean, fleet_options, serve_base);
    PIMINE_CHECK(clean_server.ok()) << clean_server.status().ToString();
    const serve::ReplayOutput clean =
        MustReplay(**clean_server, *trace, workload.queries);

    Banner("Chaos: seeded device deaths vs replica failover (shards=" +
           std::to_string(kChaosShards) + ", replicas=" +
           std::to_string(kChaosReplicas) + ")");
    TablePrinter chaos_table({"deaths", "served", "shed q", "degraded",
                              "injected", "recovered", "shed ops", "slack",
                              "backoff ns", "balanced"});

    const std::vector<int> deaths_sweep = {0, 1, 2, 4};
    for (size_t ci = 0; ci < deaths_sweep.size(); ++ci) {
      const int deaths = deaths_sweep[ci];
      serve::ServeOptions opts = serve_base;
      opts.chaos.device_deaths = deaths;
      opts.chaos.horizon_ns = 100'000;  // Deaths land mid-trace.
      opts.chaos.seed = kBenchSeed;
      opts.degrade_watermark = 0.75;  // One dead replica of two trips it.
      auto srv = serve::PimServer::Build(workload.data, Distance::kEuclidean,
                                         fleet_options, opts);
      PIMINE_CHECK(srv.ok()) << srv.status().ToString();
      Timer timer;
      const serve::ReplayOutput output =
          MustReplay(**srv, *trace, workload.queries);
      const double wall_ms = timer.ElapsedMillis();
      const FailoverStats fo = (*srv)->engine().FleetStats().failover;
      PIMINE_CHECK(fo.Balanced()) << "failover imbalance at deaths=" << deaths
                                  << ": " << fo.ToString();

      if (deaths == 0) {
        // chaos.enabled() is false: the run must be byte-for-byte the
        // chaos-free fleet (the "chaos off => pre-chaos server" invariant).
        PIMINE_CHECK(output.results.size() == clean.results.size());
        for (size_t i = 0; i < output.results.size(); ++i) {
          PIMINE_CHECK(output.results[i].neighbors ==
                       clean.results[i].neighbors)
              << "deaths=0 diverged from the chaos-free fleet at query " << i;
        }
        PIMINE_CHECK(!fo.Any()) << "deaths=0 recorded failover activity";
      } else if (ci + 1 == deaths_sweep.size()) {
        // Heaviest row: the seeded schedule must keep results and failover
        // accounting bit-identical across scheduler thread counts.
        serve::ServeOptions opts4 = opts;
        opts4.scheduler_threads = 4;
        auto srv4 = serve::PimServer::Build(
            workload.data, Distance::kEuclidean, fleet_options, opts4);
        PIMINE_CHECK(srv4.ok()) << srv4.status().ToString();
        const serve::ReplayOutput out4 =
            MustReplay(**srv4, *trace, workload.queries);
        PIMINE_CHECK(out4.results.size() == output.results.size());
        for (size_t i = 0; i < output.results.size(); ++i) {
          PIMINE_CHECK(out4.results[i].status.ok() ==
                           output.results[i].status.ok() &&
                       out4.results[i].neighbors ==
                           output.results[i].neighbors)
              << "chaos replay diverged across thread counts at query " << i;
        }
        // The balance counters are interleaving-invariant; backoff/retry
        // charges are not (WHICH dispatch pays depends on when the strike
        // state lands — a timing-model artifact, never a results one).
        const FailoverStats fo4 = (*srv4)->engine().FleetStats().failover;
        PIMINE_CHECK(fo4.injected == fo.injected &&
                     fo4.recovered == fo.recovered && fo4.shed == fo.shed)
            << "failover balance diverged across thread counts: "
            << fo.ToString() << " vs " << fo4.ToString();
      }

      const serve::ServeStats& stats = output.stats;
      chaos_table.AddRow({std::to_string(deaths), std::to_string(stats.served),
                          std::to_string(stats.shed_queries),
                          std::to_string(stats.degraded_batches),
                          std::to_string(fo.injected),
                          std::to_string(fo.recovered),
                          std::to_string(fo.shed),
                          std::to_string(fo.slack_fills),
                          std::to_string(fo.backoff_ns),
                          fo.Balanced() ? "yes" : "NO"});

      chaos_json << (ci == 0 ? "" : ",\n")
                 << "    {\"deaths\": " << deaths
                 << ", \"shards\": " << kChaosShards
                 << ", \"replicas\": " << kChaosReplicas
                 << ", \"served\": " << stats.served
                 << ", \"shed_queries\": " << stats.shed_queries
                 << ", \"degraded_dispatches\": " << stats.degraded_batches
                 << ", \"injected\": " << fo.injected
                 << ", \"recovered\": " << fo.recovered
                 << ", \"shed_ops\": " << fo.shed
                 << ", \"attempts_failed\": " << fo.attempts_failed
                 << ", \"slack_fills\": " << fo.slack_fills
                 << ", \"retry_messages\": " << fo.retry_messages
                 << ", \"backoff_ns\": " << fo.backoff_ns
                 << ", \"failover_ns\": " << Fmt(fo.failover_ns, 0)
                 << ", \"balanced\": " << (fo.Balanced() ? "true" : "false")
                 << ", \"wall_ms\": " << Fmt(wall_ms, 4) << "}";
    }
    chaos_table.Print();
  }

  // Satellite measurement: the scheduler's hoisted-scratch dispatch path
  // vs allocating a fresh handle per dispatch.
  const int dispatch_iters = 24;
  std::vector<float> qbuf(kMaxBatch * workload.data.cols());
  for (size_t q = 0; q < kMaxBatch; ++q) {
    const auto row = workload.queries.row(q % workload.queries.rows());
    std::copy(row.begin(), row.end(),
              qbuf.begin() + q * workload.data.cols());
  }
  const double alloc_ms =
      DispatchLoopMs((*server)->engine(), qbuf, dispatch_iters, false);
  const double reuse_ms =
      DispatchLoopMs((*server)->engine(), qbuf, dispatch_iters, true);

  Banner("Dispatch scratch reuse (" + std::to_string(dispatch_iters) +
         " batches of Q=" + std::to_string(kMaxBatch) + ")");
  TablePrinter reuse_table({"variant", "wall_ms"});
  reuse_table.AddRow({"alloc per dispatch", Fmt(alloc_ms, 3)});
  reuse_table.AddRow({"hoisted scratch (server path)", Fmt(reuse_ms, 3)});
  reuse_table.Print();

  std::ostringstream json;
  json << "{\n"
       << "  \"schema\": \"pimine.bench.serve.v1\",\n"
       << "  \"dataset\": \"MSD\",\n"
       << "  \"n\": " << workload.data.rows() << ",\n"
       << "  \"d\": " << workload.data.cols() << ",\n"
       << "  \"requests\": " << requests << ",\n"
       << "  \"max_batch\": " << kMaxBatch << ",\n"
       << "  \"device_batch\": " << kMaxBatch << ",\n"
       << "  \"max_wait_ns\": " << kMaxWaitNs << ",\n"
       << "  \"serial_query_ns\": " << Fmt(serial_ns, 1) << ",\n"
       << "  \"marginal_query_ns\": " << Fmt(marginal_ns, 1) << ",\n"
       << "  \"dispatch_alloc_ms\": " << Fmt(alloc_ms, 4) << ",\n"
       << "  \"dispatch_reuse_ms\": " << Fmt(reuse_ms, 4) << ",\n"
       << "  \"identical_across_threads\": "
       << (identical_across_threads ? "true" : "false") << ",\n"
       << "  \"sweep\": [\n" << sweep_json.str() << "\n  ],\n";
  if (chaos_mode) {
    json << "  \"chaos_sweep\": [\n" << chaos_json.str() << "\n  ],\n";
  }
  json << "  \"note\": \"modeled_queries_per_s = served/makespan on the "
          "virtual clock; it rises with offered load because direct-ED "
          "operands (d > crossbar_dim) pipeline with stages > 1, so "
          "coalescing amortizes stage_ns*(stages+Q-1). Segment-mode "
          "datasets (s <= crossbar_dim) have stages == 1 and batching "
          "then improves utilization, not per-query latency. wall_ms is "
          "host simulation time, not serving latency.\"\n"
       << "}\n";
  std::cout << "\n" << json.str();
  std::ofstream out("BENCH_serve.json");
  PIMINE_CHECK(out.good()) << "cannot write BENCH_serve.json";
  out << json.str();
  std::cerr << "wrote BENCH_serve.json\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main(int argc, char** argv) { return pimine::bench::Main(argc, argv); }
