// Micro-benchmarks (google-benchmark) of the similarity kernels and bound
// functions — the per-candidate costs that Eq. 13 reasons about.

#include <benchmark/benchmark.h>

#include "core/bounds.h"
#include "core/segments.h"
#include "core/similarity.h"
#include "data/bit_matrix.h"
#include "util/random.h"

namespace pimine {
namespace {

std::vector<float> RandomVector(size_t d, uint64_t seed) {
  std::vector<float> v(d);
  Rng rng(seed);
  for (float& x : v) x = rng.NextFloat();
  return v;
}

void BM_SquaredEuclidean(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto p = RandomVector(d, 1);
  const auto q = RandomVector(d, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredEuclidean(p, q));
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_SquaredEuclidean)->Arg(128)->Arg(420)->Arg(960)->Arg(4096);

void BM_CosineSimilarity(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto p = RandomVector(d, 3);
  const auto q = RandomVector(d, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CosineSimilarity(p, q));
  }
}
BENCHMARK(BM_CosineSimilarity)->Arg(420)->Arg(960);

void BM_PearsonCorrelation(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto p = RandomVector(d, 5);
  const auto q = RandomVector(d, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PearsonCorrelation(p, q));
  }
}
BENCHMARK(BM_PearsonCorrelation)->Arg(420)->Arg(960);

void BM_LbFnn(benchmark::State& state) {
  const size_t d = 420;
  const int64_t d0 = state.range(0);
  const auto p = RandomVector(d, 7);
  const auto q = RandomVector(d, 8);
  std::vector<float> pm(d0), ps(d0), qm(d0), qs(d0);
  ComputeSegments(p, d0, pm, ps);
  ComputeSegments(q, d0, qm, qs);
  const int64_t l = SegmentLength(d, d0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbFnn(pm, ps, qm, qs, l));
  }
}
BENCHMARK(BM_LbFnn)->Arg(7)->Arg(28)->Arg(105);

void BM_HammingDistance(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  BitMatrix codes(2, bits);
  Rng rng(9);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t b = 0; b < bits; ++b) codes.Set(r, b, rng.NextBool());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BitMatrix::HammingDistance(codes.row(0), codes.row(1)));
  }
}
BENCHMARK(BM_HammingDistance)->Arg(128)->Arg(512)->Arg(1024);

void BM_EarlyAbandon(benchmark::State& state) {
  const size_t d = 960;
  const auto p = RandomVector(d, 10);
  const auto q = RandomVector(d, 11);
  const double threshold = SquaredEuclidean(p, q) / state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredEuclideanEarlyAbandon(p, q, threshold));
  }
}
BENCHMARK(BM_EarlyAbandon)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace pimine

BENCHMARK_MAIN();
