// Micro-benchmark for the blocked batch kernels and the parallel batch-query
// layer. Two sections, emitted as one JSON document on stdout:
//
//   kernels:  scalar per-row kernel vs blocked batch kernel throughput for
//             d in {128, 420, 960} (full scans, no pruning, so the two
//             paths do identical arithmetic work).
//   scaling:  batched StandardKnn wall time at 1/2/4/8 worker threads, with
//             scalar and blocked kernels, including a bit-identity check of
//             neighbours and aggregated traffic against the serial run.
//
// Speedups are measured on whatever machine runs this — a single-core
// container will honestly report ~1x thread scaling; the determinism checks
// hold regardless.
//
// Usage: bench_micro_batch_kernels [n] [num_queries]   (default 20000, 8)

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "core/similarity.h"
#include "data/generator.h"
#include "knn/standard_knn.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace pimine {
namespace bench {
namespace {

FloatMatrix MakeData(size_t n, size_t d, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "micro";
  spec.dims = static_cast<int32_t>(d);
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 16;
  spec.cluster_std = 0.08;
  return DatasetGenerator::Generate(spec, static_cast<int64_t>(n), seed);
}

double BestOf(int repetitions, const std::function<void()>& fn) {
  double best = HUGE_VAL;
  for (int r = 0; r < repetitions; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

void KernelSection(std::ostream& out, size_t n) {
  out << "  \"kernels\": [\n";
  bool first = true;
  for (size_t d : {size_t{128}, size_t{420}, size_t{960}}) {
    const FloatMatrix data = MakeData(n, d, kBenchSeed + d);
    const std::vector<float> q(data.row(0).begin(), data.row(0).end());
    const std::span<const float> query(q);
    std::vector<double> out_scalar(n);
    std::vector<double> out_blocked(n);
    const size_t block = 512;

    const double scalar_ms = BestOf(5, [&] {
      for (size_t i = 0; i < n; ++i) {
        out_scalar[i] = SquaredEuclidean(data.row(i), query);
      }
    });
    const double blocked_ms = BestOf(5, [&] {
      for (size_t begin = 0; begin < n; begin += block) {
        const size_t end = std::min(n, begin + block);
        SquaredEuclideanBatch(data.data() + begin * d, end - begin, query,
                              out_blocked.data() + begin);
      }
    });
    // Blocked results must agree with scalar to floating-point noise.
    double max_rel = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double denom = std::max(1e-30, std::abs(out_scalar[i]));
      max_rel = std::max(max_rel,
                         std::abs(out_scalar[i] - out_blocked[i]) / denom);
    }
    PIMINE_CHECK(max_rel < 1e-9) << "blocked kernel diverged: " << max_rel;

    const double rows_per_ms = static_cast<double>(n);
    if (!first) out << ",\n";
    first = false;
    out << "    {\"kernel\": \"squared_euclidean\", \"d\": " << d
        << ", \"rows\": " << n
        << ", \"scalar_ms\": " << Fmt(scalar_ms, 4)
        << ", \"blocked_ms\": " << Fmt(blocked_ms, 4)
        << ", \"scalar_mrows_s\": "
        << Fmt(rows_per_ms / std::max(1e-9, scalar_ms) / 1e3, 3)
        << ", \"blocked_mrows_s\": "
        << Fmt(rows_per_ms / std::max(1e-9, blocked_ms) / 1e3, 3)
        << ", \"kernel_speedup\": "
        << Fmt(scalar_ms / std::max(1e-9, blocked_ms), 3) << "}";
  }
  out << "\n  ],\n";
}

bool SameNeighbors(const KnnRunResult& a, const KnnRunResult& b) {
  if (a.neighbors.size() != b.neighbors.size()) return false;
  for (size_t q = 0; q < a.neighbors.size(); ++q) {
    if (a.neighbors[q].size() != b.neighbors[q].size()) return false;
    for (size_t j = 0; j < a.neighbors[q].size(); ++j) {
      if (a.neighbors[q][j].id != b.neighbors[q][j].id ||
          a.neighbors[q][j].distance != b.neighbors[q][j].distance) {
        return false;
      }
    }
  }
  return true;
}

void ScalingSection(std::ostream& out, size_t n, size_t num_queries) {
  const size_t d = 420;  // the acceptance-point dimensionality (MSD-like).
  const int k = 10;
  const FloatMatrix data = MakeData(n, d, kBenchSeed);
  DatasetSpec spec;
  spec.name = "micro";
  spec.dims = static_cast<int32_t>(d);
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 16;
  spec.cluster_std = 0.08;
  const FloatMatrix queries = DatasetGenerator::GenerateQueries(
      spec, data, static_cast<int64_t>(num_queries), kBenchSeed + 1);

  StandardKnn knn;
  PIMINE_CHECK_OK(knn.Prepare(data));

  // Serial scalar baseline: the reference for both wall time and identity.
  auto baseline = knn.Search(queries, k);
  PIMINE_CHECK(baseline.ok());
  Timer baseline_timer;
  baseline = knn.Search(queries, k);
  PIMINE_CHECK(baseline.ok());
  const double baseline_ms = baseline_timer.ElapsedMillis();

  out << "  \"scaling\": [\n";
  bool first = true;
  for (bool blocked : {false, true}) {
    // Per-kernel serial reference (blocked kernels are only required to be
    // identical to their own serial run).
    ExecPolicy serial;
    serial.blocked_kernels = blocked;
    knn.set_exec_policy(serial);
    auto reference = knn.Search(queries, k);
    PIMINE_CHECK(reference.ok());

    for (int threads : {1, 2, 4, 8}) {
      ExecPolicy policy;
      policy.num_threads = threads;
      policy.blocked_kernels = blocked;
      knn.set_exec_policy(policy);
      auto warm = knn.Search(queries, k);
      PIMINE_CHECK(warm.ok());
      Timer timer;
      auto run = knn.Search(queries, k);
      PIMINE_CHECK(run.ok());
      const double ms = timer.ElapsedMillis();

      const bool identical =
          SameNeighbors(*reference, *run) &&
          reference->stats.traffic == run->stats.traffic;
      PIMINE_CHECK(identical)
          << "parallel run diverged from serial (threads=" << threads
          << ", blocked=" << blocked << ")";

      if (!first) out << ",\n";
      first = false;
      out << "    {\"threads\": " << threads
          << ", \"blocked_kernels\": " << (blocked ? "true" : "false")
          << ", \"wall_ms\": " << Fmt(ms, 3)
          << ", \"speedup_vs_serial_scalar\": "
          << Fmt(baseline_ms / std::max(1e-9, ms), 3)
          << ", \"identical_to_serial\": "
          << (identical ? "true" : "false") << "}";
    }
  }
  out << "\n  ],\n";
}

void Run(size_t n, size_t num_queries) {
  std::cout << "{\n";
  std::cout << "  \"bench\": \"micro_batch_kernels\",\n";
  std::cout << "  \"n\": " << n << ",\n";
  std::cout << "  \"num_queries\": " << num_queries << ",\n";
  std::cout << "  \"hardware_threads\": "
            << std::max(1u, std::thread::hardware_concurrency()) << ",\n";
  KernelSection(std::cout, n);
  ScalingSection(std::cout, n, num_queries);
  std::cout << "  \"note\": \"thread speedups are bounded by the hardware "
               "thread count of the machine running this binary\"\n";
  std::cout << "}\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

namespace {

bool ParsePositive(const char* arg, size_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(arg, &end, 10);
  if (end == arg || *end != '\0' || v <= 0) return false;
  *out = static_cast<size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 20000;
  size_t num_queries = 8;
  if ((argc > 1 && !ParsePositive(argv[1], &n)) ||
      (argc > 2 && !ParsePositive(argv[2], &num_queries))) {
    std::cerr << "usage: " << argv[0] << " [n] [num_queries]\n"
              << "  n            dataset size, positive integer (default "
                 "20000)\n"
              << "  num_queries  batch size, positive integer (default 8)\n";
    return 2;
  }
  pimine::bench::Run(n, num_queries);
  return 0;
}
