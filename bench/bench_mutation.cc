// Mutable-dataset bench: streaming-ingest sweep (DESIGN.md section 13).
//
// Replays a deterministic insert/delete/query stream against a
// StandardPimKnn fleet attached to a MutableDataset, sweeping the insert
// batch size and the compaction watermark (tombstone fraction that
// triggers a compaction pass). Each row reports the fleet's mutation
// accounting — delta rows programmed, tombstones, compaction passes and
// the rows they rewrote — plus the wear ledger: row_writes actually
// charged vs the writes a naive strategy would charge by reprogramming
// the whole corpus after every mutation batch ("write_savings" is the
// ratio; it is the reason delta regions exist on endurance-limited
// ReRAM).
//
// After every sweep row the mutated fleet's kNN results are checked
// bit-identical (modulo the dense<->physical id map) to a fleet freshly
// programmed with the merged corpus — the section 13 invariant; the row's
// "identical_to_fresh_program" field records it.
//
//   bench_mutation [n] [queries]     (defaults 768, 16)
//
// Emits one "pimine.bench.mutation.v1" JSON document to stdout and
// BENCH_mutation.json, validated by tools/bench_diff.py.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "core/mutable_dataset.h"
#include "knn/standard_pim_knn.h"
#include "util/timer.h"

namespace pimine {
namespace bench {
namespace {

constexpr int kK = 10;

/// Physical -> dense id remap so mutated results compare against a fresh
/// engine on the merged corpus.
std::vector<std::vector<Neighbor>> Densify(
    std::vector<std::vector<Neighbor>> neighbors,
    const std::vector<uint32_t>& live) {
  std::vector<int32_t> dense_of(live.empty() ? 0 : live.back() + 1, -1);
  for (size_t i = 0; i < live.size(); ++i) {
    dense_of[live[i]] = static_cast<int32_t>(i);
  }
  for (auto& list : neighbors) {
    for (Neighbor& n : list) {
      PIMINE_CHECK(n.id >= 0 && static_cast<size_t>(n.id) < dense_of.size() &&
                   dense_of[n.id] >= 0)
          << "tombstoned or out-of-range row " << n.id << " served";
      n.id = dense_of[n.id];
    }
  }
  return neighbors;
}

struct SweepRow {
  size_t insert_batch = 0;
  double watermark = 0.0;
  size_t steps = 0;
  size_t queries_run = 0;
  size_t final_live = 0;
  FleetRunStats fleet;
  uint64_t naive_row_writes = 0;
  bool identical = false;
  double wall_ms = 0.0;
};

int Main(int argc, char** argv) {
  const int64_t n = argc > 1 ? std::atoll(argv[1]) : 768;
  const int64_t num_queries = argc > 2 ? std::atoll(argv[2]) : 16;
  const BenchWorkload workload = LoadWorkload("MSD", n, num_queries);

  // The last third of the generated corpus becomes the insert stream; the
  // fleet is built over the first two thirds.
  const size_t stream_rows = workload.data.rows() / 3;
  const size_t base_rows = workload.data.rows() - stream_rows;
  FloatMatrix base(base_rows, workload.data.cols());
  for (size_t r = 0; r < base_rows; ++r) {
    const auto src = workload.data.row(r);
    auto dst = base.mutable_row(r);
    std::copy(src.begin(), src.end(), dst.begin());
  }

  Banner("Mutation: streaming ingest, insert batch x compaction watermark "
         "(MSD, base=" + std::to_string(base_rows) + ", stream=" +
         std::to_string(stream_rows) + ")");
  TablePrinter table({"batch", "watermark", "steps", "live", "deltas",
                      "compactions", "rewritten", "row writes", "naive writes",
                      "savings", "identical", "wall_ms"});

  const std::vector<size_t> insert_batches = {4, 16};
  const std::vector<double> watermarks = {0.05, 0.25};
  std::vector<SweepRow> rows;
  for (const size_t insert_batch : insert_batches) {
    for (const double watermark : watermarks) {
      Timer timer;
      EngineOptions options;
      MutableDataset dataset(base);
      StandardPimKnn mutated(Distance::kEuclidean, options);
      PIMINE_CHECK_OK(mutated.Prepare(dataset.corpus()));
      dataset.Attach(&mutated);

      SweepRow row;
      row.insert_batch = insert_batch;
      row.watermark = watermark;
      // The naive alternative charges one full-corpus reprogram per
      // mutation batch; it starts with the same base program.
      row.naive_row_writes = base_rows;

      size_t stream_pos = 0;
      uint32_t delete_cursor = 0;  // oldest-first deletes, deterministic.
      while (stream_pos < stream_rows) {
        const size_t count =
            std::min(insert_batch, stream_rows - stream_pos);
        FloatMatrix batch(count, workload.data.cols());
        for (size_t i = 0; i < count; ++i) {
          const auto src = workload.data.row(base_rows + stream_pos + i);
          auto dst = batch.mutable_row(i);
          std::copy(src.begin(), src.end(), dst.begin());
        }
        stream_pos += count;
        PIMINE_CHECK_OK(dataset.Insert(batch));
        // Expire half an insert batch of the oldest live rows: a sliding
        // ingest window, the motivating mutation pattern.
        for (size_t d = 0; d < count / 2; ++d) {
          while (dataset.tombstoned(delete_cursor)) ++delete_cursor;
          PIMINE_CHECK_OK(dataset.Delete(delete_cursor));
          ++delete_cursor;
        }
        row.naive_row_writes += dataset.live_rows();
        if (dataset.TombstoneFraction() >= watermark) {
          PIMINE_CHECK_OK(dataset.Compact());
          delete_cursor = 0;
        }
        auto result = mutated.Search(workload.queries, kK);
        PIMINE_CHECK(result.ok()) << result.status().ToString();
        row.queries_run += workload.queries.rows();
        ++row.steps;
      }

      // Section 13 invariant: the mutated fleet answers exactly like a
      // fleet freshly programmed with the merged corpus.
      const std::vector<uint32_t> live = dataset.LiveRows();
      const FloatMatrix merged = dataset.LiveCorpus();
      StandardPimKnn fresh(Distance::kEuclidean, options);
      PIMINE_CHECK_OK(fresh.Prepare(merged));
      auto got = mutated.Search(workload.queries, kK);
      auto want = fresh.Search(workload.queries, kK);
      PIMINE_CHECK(got.ok() && want.ok());
      row.identical =
          Densify(std::move(got->neighbors), live) == want->neighbors;
      PIMINE_CHECK(row.identical)
          << "mutated fleet diverged from a fresh program at batch="
          << insert_batch << " watermark=" << watermark;

      row.final_live = dataset.live_rows();
      row.fleet = mutated.engine()->FleetStats();
      row.wall_ms = timer.ElapsedMillis();
      PIMINE_CHECK(row.fleet.appended_rows == stream_rows);
      // Incremental programming must beat reprogram-per-batch on writes.
      PIMINE_CHECK(row.fleet.row_writes < row.naive_row_writes)
          << "delta programming wrote more than naive reprogramming";
      rows.push_back(row);

      table.AddRow({std::to_string(insert_batch), Fmt(watermark),
                    std::to_string(row.steps),
                    std::to_string(row.final_live),
                    std::to_string(row.fleet.appended_rows),
                    std::to_string(row.fleet.compactions),
                    std::to_string(row.fleet.compacted_rows),
                    std::to_string(row.fleet.row_writes),
                    std::to_string(row.naive_row_writes),
                    Fmt(static_cast<double>(row.naive_row_writes) /
                        static_cast<double>(row.fleet.row_writes)),
                    row.identical ? "yes" : "NO", Fmt(row.wall_ms)});
    }
  }
  table.Print();

  std::ostringstream json;
  json << "{\n"
       << "  \"schema\": \"pimine.bench.mutation.v1\",\n"
       << "  \"dataset\": \"MSD\",\n"
       << "  \"n\": " << workload.data.rows() << ",\n"
       << "  \"d\": " << workload.data.cols() << ",\n"
       << "  \"base_rows\": " << base_rows << ",\n"
       << "  \"stream_rows\": " << stream_rows << ",\n"
       << "  \"k\": " << kK << ",\n"
       << "  \"queries\": " << workload.queries.rows() << ",\n"
       << "  \"sweep\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    json << (i == 0 ? "" : ",\n")
         << "    {\"insert_batch\": " << row.insert_batch
         << ", \"watermark\": " << Fmt(row.watermark)
         << ", \"steps\": " << row.steps
         << ", \"queries_run\": " << row.queries_run
         << ", \"final_live\": " << row.final_live
         << ", \"appended_rows\": " << row.fleet.appended_rows
         << ", \"deleted_rows\": " << row.fleet.deleted_rows
         << ", \"compactions\": " << row.fleet.compactions
         << ", \"compacted_rows\": " << row.fleet.compacted_rows
         << ", \"residual_delta_rows\": " << row.fleet.delta_rows
         << ", \"residual_tombstones\": " << row.fleet.tombstoned_rows
         << ", \"row_writes\": " << row.fleet.row_writes
         << ", \"naive_row_writes\": " << row.naive_row_writes
         << ", \"write_savings\": "
         << Fmt(static_cast<double>(row.naive_row_writes) /
                static_cast<double>(row.fleet.row_writes), 3)
         << ", \"worn_rows\": " << row.fleet.worn_rows
         << ", \"identical_to_fresh_program\": "
         << (row.identical ? "true" : "false")
         << ", \"wall_ms\": " << Fmt(row.wall_ms, 4) << "}";
  }
  json << "\n  ],\n"
       << "  \"note\": \"row_writes counts per-slot device programs "
          "(base + delta appends + compaction rewrites); naive_row_writes "
          "is the reprogram-the-whole-corpus-per-mutation-batch "
          "alternative. write_savings = naive/actual, the endurance "
          "headroom delta regions buy. A lower watermark compacts more "
          "eagerly: fewer resident tombstones, more rewrites. wall_ms is "
          "host simulation time.\"\n"
       << "}\n";
  std::cout << "\n" << json.str();
  std::ofstream out("BENCH_mutation.json");
  PIMINE_CHECK(out.good()) << "cannot write BENCH_mutation.json";
  out << json.str();
  std::cerr << "wrote BENCH_mutation.json\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main(int argc, char** argv) { return pimine::bench::Main(argc, argv); }
