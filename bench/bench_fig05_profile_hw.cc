// Figure 5: execution-time breakdown by hardware component (Eq. 1) for the
// representative kNN algorithms (MSD, k=10) and k-means algorithms
// (NUS-WIDE, k=64). Paper finding to reproduce: Tcache dominates — 65-83%
// for kNN, 62-75% for k-means.

#include <iostream>

#include "bench_common.h"
#include "profile_workloads.h"

namespace pimine {
namespace bench {
namespace {

void PrintBreakdownTable(const std::vector<ProfiledRun>& runs,
                         const HostCostModel& model) {
  TablePrinter table({"algorithm", "Tc%", "Tcache%", "TALU%", "TBr%",
                      "TFe%", "model_ms"});
  for (const ProfiledRun& run : runs) {
    const HardwareBreakdown b =
        model.EstimateBreakdown(run.stats.traffic, run.stats.footprint_bytes);
    const double total = b.total_ns();
    auto pct = [total](double v) { return Fmt(100.0 * v / total, 1); };
    table.AddRow({run.name, pct(b.tc_ns), pct(b.tcache_ns), pct(b.talu_ns),
                  pct(b.tbr_ns), pct(b.tfe_ns), Fmt(total / 1e6)});
  }
  table.Print();
}

void Run() {
  const HostCostModel model;

  Banner("Figure 5(a): kNN algorithms, MSD dataset, k=10");
  const BenchWorkload msd = LoadWorkload("MSD");
  PrintBreakdownTable(ProfileKnnAlgorithms(msd, 10), model);

  Banner("Figure 5(b): k-means algorithms, NUS-WIDE dataset, k=64");
  const BenchWorkload nus = LoadWorkload("NUS-WIDE");
  PrintBreakdownTable(ProfileKmeansAlgorithms(nus, 64, 3), model);

  std::cout << "\nPaper reference: Tcache accounts for 65-83% (kNN) and "
               "62-75% (k-means) of total time.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
