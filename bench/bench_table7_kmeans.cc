// Table 7: k-means execution time per iteration across the four k-means
// datasets, k in {4, 64, 256, 1024}, for Standard/Elkan/Drake/Yinyang and
// their PIM variants. Paper findings to reproduce: Standard-PIM wins big
// (up to 33.4x) and the gain grows with k and d; Elkan-PIM gains little
// (bound maintenance dominates); Drake-PIM up to 8.5x; Yinyang-PIM shines
// on high-dimensional data (up to 4.9x).

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "kmeans/drake.h"
#include "kmeans/elkan.h"
#include "kmeans/lloyd.h"
#include "kmeans/yinyang.h"
#include "profiling/modeled_time.h"

namespace pimine {
namespace bench {
namespace {

struct Cell {
  double model_ms_per_iter = 0.0;
};

Cell RunCell(KmeansAlgorithm& algorithm, const FloatMatrix& data, int k,
             bool use_pim, const EngineOptions& engine_options,
             const HostCostModel& model) {
  KmeansOptions options;
  options.k = k;
  options.max_iterations = 3;
  options.seed = kBenchSeed;
  options.use_pim = use_pim;
  options.engine_options = engine_options;
  auto result = algorithm.Run(data, options);
  PIMINE_CHECK(result.ok()) << result.status().ToString();
  Cell cell;
  cell.model_ms_per_iter = ComposeModeledTime(result->stats, model).total_ms() /
                           result->iterations;
  return cell;
}

void Run() {
  const HostCostModel model;
  Banner("Table 7: k-means execution time per iteration (model_ms)");

  // Scaled-down cardinalities keep the 128-cell sweep tractable; see
  // EXPERIMENTS.md for the scaling notes.
  struct DatasetScale {
    const char* name;
    int64_t n;
  };
  const DatasetScale datasets[] = {
      {"Year", 5000}, {"Notre", 5000}, {"NUS-WIDE", 4000}, {"Enron", 3000}};

  std::vector<std::unique_ptr<KmeansAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<LloydKmeans>());
  algorithms.push_back(std::make_unique<ElkanKmeans>());
  algorithms.push_back(std::make_unique<DrakeKmeans>());
  algorithms.push_back(std::make_unique<YinyangKmeans>());

  TablePrinter table({"dataset", "k", "Standard", "Std-PIM", "Elkan",
                      "Elkan-PIM", "Drake", "Drake-PIM", "Yinyang",
                      "Yinyang-PIM"});
  for (const DatasetScale& ds : datasets) {
    const BenchWorkload w = LoadWorkload(ds.name, ds.n, /*num_queries=*/1);
    const EngineOptions engine_options = ScaledEngineOptions(w);
    for (int k : {4, 64, 256, 1024}) {
      std::vector<std::string> row = {ds.name, std::to_string(k)};
      for (auto& algorithm : algorithms) {
        const Cell base =
            RunCell(*algorithm, w.data, k, false, engine_options, model);
        const Cell pim =
            RunCell(*algorithm, w.data, k, true, engine_options, model);
        row.push_back(Fmt(base.model_ms_per_iter, 1));
        row.push_back(Fmt(pim.model_ms_per_iter, 1));
      }
      table.AddRow(row);
    }
  }
  table.Print();

  std::cout << "\nPaper reference (Table 7 shape): PIM accelerates every "
               "algorithm; Standard-PIM up to 33.4x, Drake-PIM up to 8.5x, "
               "Yinyang-PIM up to 4.9x on high-d data, Elkan-PIM "
               "marginal.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
