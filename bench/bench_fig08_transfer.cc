// Figure 8: data-transfer cost per distance evaluation — d*b bits on the
// conventional architecture vs 3*b bits with the PIM-aware decomposition.
// Measured from the instrumented traffic counters on a pure scan (no
// pruning), so the per-candidate cost is directly observable.

#include <iostream>

#include "bench_common.h"
#include "core/engine.h"
#include "core/similarity.h"
#include "sim/traffic.h"

namespace pimine {
namespace bench {
namespace {

void Run() {
  Banner("Figure 8: per-candidate data transfer, exact ED vs PIM-aware G");

  TablePrinter table({"dataset", "d", "conventional bits (d*b)",
                      "measured", "PIM bits (3*b)", "measured"});
  for (const char* name : {"ImageNet", "MSD", "GIST", "Trevi"}) {
    const BenchWorkload w = LoadWorkload(name, /*n=*/2000, /*num_queries=*/2);
    const size_t n = w.data.rows();
    const size_t d = w.data.cols();

    // Conventional: exact ED for every candidate (full scan, no abandon).
    uint64_t conventional_bits = 0;
    {
      TrafficScope scope;
      for (size_t q = 0; q < w.queries.rows(); ++q) {
        for (size_t i = 0; i < n; ++i) {
          SquaredEuclidean(w.data.row(i), w.queries.row(q));
        }
      }
      conventional_bits =
          scope.Delta().bytes_from_memory * 8 / (n * w.queries.rows());
    }

    // PIM-aware: one combine per candidate (PIM result + Phi scalar).
    uint64_t pim_bits = 0;
    {
      auto engine_or =
          PimEngine::Build(w.data, Distance::kEuclidean, EngineOptions());
      PIMINE_CHECK(engine_or.ok());
      TrafficScope scope;
      std::vector<double> bounds;
      for (size_t q = 0; q < w.queries.rows(); ++q) {
        PIMINE_CHECK_OK((*engine_or)->ComputeBounds(w.queries.row(q),
                                                    &bounds));
      }
      const TrafficCounters delta = scope.Delta();
      pim_bits = (delta.bytes_from_memory * 8 +
                  delta.pim_results_loaded * 64) /
                 (n * w.queries.rows());
    }

    table.AddRow({name, std::to_string(d), std::to_string(d * 32),
                  std::to_string(conventional_bits), "96",
                  std::to_string(pim_bits)});
  }
  table.Print();
  std::cout << "\nPaper reference (Fig. 8): computing ED(p,q) moves d*b "
               "bits; the decomposition G moves 3*b. Measured PIM bits "
               "include the 64-bit result plus the pre-computed Phi "
               "scalar.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
