#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/logging.h"
#include "data/generator.h"

namespace pimine {
namespace bench {

BenchWorkload LoadWorkload(const std::string& name, int64_t n,
                           int64_t num_queries) {
  auto spec = Catalog::Find(name);
  PIMINE_CHECK(spec.ok()) << "unknown dataset " << name;
  BenchWorkload workload;
  workload.spec = *spec;
  workload.data = DatasetGenerator::Generate(*spec, n, kBenchSeed);
  workload.queries = DatasetGenerator::GenerateQueries(
      *spec, workload.data, num_queries, kBenchSeed + 1);
  return workload;
}

EngineOptions ScaledEngineOptions(const BenchWorkload& workload) {
  EngineOptions options;
  options.pim_config = ScalePimArrayForDataset(
      workload.spec.paper_n, static_cast<int64_t>(workload.data.rows()),
      options.pim_config);
  return options;
}

BenchPoint RunKnnPoint(KnnAlgorithm& algorithm, const FloatMatrix& queries,
                       int k, const HostCostModel& model) {
  auto result = algorithm.Search(queries, k);
  PIMINE_CHECK(result.ok()) << algorithm.name() << ": "
                            << result.status().ToString();
  BenchPoint point;
  point.label = std::string(algorithm.name());
  point.wall_ms = result->stats.wall_ms;
  point.model_ms = ComposeModeledTime(result->stats, model).total_ms();
  point.stats = std::move(result->stats);
  return point;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(const std::vector<std::string>& cells) {
  PIMINE_CHECK(cells.size() == headers_.size());
  rows_.push_back(cells);
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::cout << row[c];
      for (size_t pad = row[c].size(); pad < widths[c] + 2; ++pad) {
        std::cout << ' ';
      }
    }
    std::cout << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::cout << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  std::cout << std::flush;
}

std::string Fmt(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

void Banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace bench
}  // namespace pimine
