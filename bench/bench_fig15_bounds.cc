// Figure 15: pruning ratio and total data-transfer cost of the original
// bounds (LB_FNN^7, LB_FNN^28, LB_FNN^105) vs the PIM-aware bound
// (LB_PIM-FNN^105) on MSD, alpha = 1e6. Paper findings to reproduce:
// LB_PIM-FNN^105 prunes more than LB_FNN^7 and LB_FNN^105 and slightly
// less than LB_FNN^28 in their plot's regime, at a tiny fraction of the
// transfer cost (3*b bits vs 2*d0*b). Includes the alpha-sensitivity
// ablation of Theorem 3.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/bounds.h"
#include "core/engine.h"
#include "core/plan.h"
#include "core/quantize.h"
#include "core/segments.h"
#include "core/similarity.h"

namespace pimine {
namespace bench {
namespace {

/// Measures the mean pruning ratio of a bound over sample queries with the
/// k-th exact distance as threshold.
template <typename BoundFn>
double MeasureRatio(const FloatMatrix& data, const FloatMatrix& queries,
                    int k, const BoundFn& bound_fn) {
  const size_t n = data.rows();
  std::vector<double> exact(n);
  std::vector<double> values(n);
  double total_ratio = 0.0;
  for (size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto q = queries.row(qi);
    for (size_t i = 0; i < n; ++i) {
      exact[i] = SquaredEuclidean(data.row(i), q);
    }
    std::vector<double> sorted = exact;
    std::nth_element(sorted.begin(), sorted.begin() + (k - 1), sorted.end());
    const double tau = sorted[k - 1];
    for (size_t i = 0; i < n; ++i) values[i] = bound_fn(i, q);
    total_ratio += MeasurePruningRatio(values, tau, false);
  }
  return total_ratio / static_cast<double>(queries.rows());
}

void Run() {
  const BenchWorkload w = LoadWorkload("MSD", /*n=*/8000, /*num_queries=*/5);
  const size_t n = w.data.rows();
  const int k = 10;
  const double b = 32.0;  // operand bits.

  Banner("Figure 15: pruning ratio and data-transfer cost of bounds "
         "(MSD, alpha=1e6, k=10)");

  TablePrinter table({"bound", "prune ratio %", "transfer bits/cand",
                      "total transfer MB"});

  // Original LB_FNN at the paper's three segment counts.
  for (int64_t d0 : {7, 28, 105}) {
    const SegmentStats stats = ComputeSegmentStats(w.data, d0);
    std::vector<float> q_means(d0), q_stds(d0);
    const double ratio = MeasureRatio(
        w.data, w.queries, k,
        [&](size_t i, std::span<const float> q) {
          ComputeSegments(q, d0, q_means, q_stds);
          return LbFnn(stats.means.row(i), stats.stds.row(i), q_means,
                       q_stds, stats.segment_length);
        });
    const double bits = 2.0 * static_cast<double>(d0) * b;
    table.AddRow({"LB_FNN^" + std::to_string(d0), Fmt(100.0 * ratio, 1),
                  Fmt(bits, 0), Fmt(bits * n / 8.0 / 1e6, 2)});
  }

  // PIM-aware bound at s = 105 (the paper's Theorem 4 pick for MSD).
  {
    EngineOptions options = ScaledEngineOptions(w);
    options.bound = EngineOptions::Bound::kSegmentFnn;
    options.force_segments = 105;
    auto engine_or =
        PimEngine::Build(w.data, Distance::kEuclidean, options);
    PIMINE_CHECK(engine_or.ok()) << engine_or.status().ToString();
    PimEngine& engine = **engine_or;
    std::vector<double> bounds;
    const double ratio = MeasureRatio(
        w.data, w.queries, k,
        [&](size_t i, std::span<const float> q) {
          if (i == 0) PIMINE_CHECK_OK(engine.ComputeBounds(q, &bounds));
          return bounds[i];
        });
    const double bits = engine.TransferBitsPerCandidate();
    table.AddRow({"LB_PIM-FNN^105", Fmt(100.0 * ratio, 1), Fmt(bits, 0),
                  Fmt(bits * n / 8.0 / 1e6, 2)});
  }
  table.Print();

  // Ablation: Theorem 3 — bound tightness vs alpha.
  Banner("Ablation: LB_PIM-FNN^105 pruning ratio vs alpha (Theorem 3)");
  TablePrinter ablation({"alpha", "prune ratio %", "error bound (Thm. 3)"});
  for (double alpha : {1e2, 1e3, 1e4, 1e6}) {
    EngineOptions options = ScaledEngineOptions(w);
    options.bound = EngineOptions::Bound::kSegmentFnn;
    options.force_segments = 105;
    options.alpha = alpha;
    auto engine_or =
        PimEngine::Build(w.data, Distance::kEuclidean, options);
    PIMINE_CHECK(engine_or.ok()) << engine_or.status().ToString();
    PimEngine& engine = **engine_or;
    std::vector<double> bounds;
    const double ratio = MeasureRatio(
        w.data, w.queries, k,
        [&](size_t i, std::span<const float> q) {
          if (i == 0) PIMINE_CHECK_OK(engine.ComputeBounds(q, &bounds));
          return bounds[i];
        });
    ablation.AddRow({Fmt(alpha, 0), Fmt(100.0 * ratio, 1),
                     Fmt(LbPimEdErrorBound(w.data.cols(), alpha), 4)});
  }
  ablation.Print();

  std::cout << "\nPaper reference: at alpha=1e6 LB_PIM-FNN^105 prunes ~99% "
               "of objects at 96 bits/candidate, far below the original "
               "bounds' transfer cost.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
