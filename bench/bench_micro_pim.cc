// Micro-benchmarks (google-benchmark) of the PIM substrate: cycle-level
// crossbar dot products, batched device matches, layout math, and the
// crossbar-geometry ablations called out in DESIGN.md §7.
//
// `bench_micro_pim --batch_sweep [n] [s]` switches to a standalone
// batched-vs-single sweep (Q in {1, 4, 16, 64}) that emits one JSON
// document in the bench_micro_batch_kernels shape, with built-in
// bit-identity and modeled-stats self-checks. Default n=4096, s=256.
//
// `bench_micro_pim --fault_sweep [n] [s]` sweeps the ReRAM fault rate over
// {0, 1e-4, 1e-3, 1e-2} (stuck cells + transients, host-exact recovery) and
// emits one JSON document with throughput, recovery accounting, and a
// PIMINE_CHECKed bit-identity guarantee against the fault-free device.
//
// `bench_micro_pim --shard_sweep [n] [d]` sweeps the fleet size M over
// {1, 2, 4, 8} crossed with device batch Q in {1, 16} on a full
// ShardedPimEngine, PIMINE_CHECKs every bound bit-identical to the
// single-device run, and emits a "pimine.bench.shard.v1" JSON document
// (stdout + BENCH_shard.json) with modeled queries/s and the
// interconnect-overhead fraction. Default n=4096, d=256.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "core/sharded_engine.h"
#include "data/matrix.h"
#include "pim/crossbar.h"
#include "pim/crossbar_math.h"
#include "pim/pim_device.h"
#include "pim/timing.h"
#include "util/random.h"
#include "util/timer.h"

namespace pimine {
namespace {

void BM_CrossbarPipelineDotProduct(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int operand_bits = static_cast<int>(state.range(1));
  Crossbar xbar(dim, 2);
  Rng rng(1);
  const uint64_t limit = 1ULL << operand_bits;
  const int cols = xbar.NumLogicalColumns(operand_bits);
  std::vector<uint32_t> operands(dim);
  for (int c = 0; c < cols; ++c) {
    for (auto& v : operands) v = static_cast<uint32_t>(rng.NextBounded(limit));
    benchmark::DoNotOptimize(xbar.ProgramVector(c, operands, operand_bits));
  }
  std::vector<uint32_t> input(dim);
  for (auto& v : input) v = static_cast<uint32_t>(rng.NextBounded(limit));

  for (auto _ : state) {
    auto result = xbar.DotProduct(input, operand_bits, operand_bits, 2);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * dim * cols);
}
BENCHMARK(BM_CrossbarPipelineDotProduct)
    ->Args({64, 8})
    ->Args({256, 8})
    ->Args({256, 32});

void BM_DeviceBatchDotProduct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  IntMatrix data(n, d);
  Rng rng(2);
  for (size_t i = 0; i < n; ++i) {
    for (int32_t& v : data.mutable_row(i)) {
      v = static_cast<int32_t>(rng.NextBounded(1 << 20));
    }
  }
  PimDevice device;
  if (!device.ProgramDataset(data).ok()) {
    state.SkipWithError("program failed");
    return;
  }
  std::vector<int32_t> query(d);
  for (auto& v : query) v = static_cast<int32_t>(rng.NextBounded(1 << 20));
  std::vector<uint64_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.DotProductAll(query, &out));
  }
  state.SetItemsProcessed(state.iterations() * n * d);
}
BENCHMARK(BM_DeviceBatchDotProduct)
    ->Args({10000, 105})
    ->Args({10000, 420})
    ->Args({20000, 960});

// Ablation: modeled batch latency vs crossbar size and cell precision.
void BM_ModeledLatencyAblation(benchmark::State& state) {
  PimConfig config;
  config.crossbar_dim = static_cast<int>(state.range(0));
  config.cell_bits = static_cast<int>(state.range(1));
  config.dac_bits = config.cell_bits;
  PimTimingModel timing(config);
  double total = 0.0;
  for (auto _ : state) {
    total += timing.BatchDotLatencyNs(1024, 32);
    benchmark::DoNotOptimize(total);
  }
  state.counters["latency_ns"] = timing.BatchDotLatencyNs(1024, 32);
  state.counters["crossbars_per_pair"] =
      CrossbarsForPair(1024, config.crossbar_dim);
}
BENCHMARK(BM_ModeledLatencyAblation)
    ->Args({128, 2})
    ->Args({256, 2})
    ->Args({512, 2})
    ->Args({256, 4});

void BM_PlanLayout(benchmark::State& state) {
  PimConfig config;
  for (auto _ : state) {
    auto s = MaxCompressedDim(1'000'000, 32, 4096, config);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_PlanLayout);

// --- batched-vs-single device sweep (--batch_sweep) ----------------------

std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

double BestOfMs(int repetitions, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < repetitions; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

/// Modeled-stat fields that must be invariant under batching, compared
/// bit-for-bit between a batched device and a single-query device.
bool InvariantStatsEqual(const PimDeviceStats& a, const PimDeviceStats& b) {
  return a.queries_processed == b.queries_processed &&
         a.compute_ns == b.compute_ns &&
         a.compute_energy_pj == b.compute_energy_pj &&
         a.results_produced == b.results_produced &&
         a.result_bytes_to_host == b.result_bytes_to_host;
}

int BatchSweep(size_t n, size_t s) {
  constexpr size_t kTotalQueries = 64;  // divisible by every swept Q.
  Rng rng(7);
  IntMatrix data(n, s);
  for (size_t i = 0; i < n; ++i) {
    for (int32_t& v : data.mutable_row(i)) {
      v = static_cast<int32_t>(rng.NextBounded(1 << 20));
    }
  }
  std::vector<int32_t> queries(kTotalQueries * s);
  for (int32_t& v : queries) {
    v = static_cast<int32_t>(rng.NextBounded(1 << 20));
  }

  // Single-query reference device: results and modeled stats for all
  // kTotalQueries queries, one DotProductAll each.
  PimDevice single;
  PIMINE_CHECK_OK(single.ProgramDataset(data));
  std::vector<uint64_t> expected(kTotalQueries * n);
  std::vector<uint64_t> out;
  for (size_t q = 0; q < kTotalQueries; ++q) {
    PIMINE_CHECK_OK(single.DotProductAll(
        std::span<const int32_t>(queries).subspan(q * s, s), &out));
    std::copy(out.begin(), out.end(), expected.begin() + q * n);
  }
  const PimDeviceStats single_stats = single.stats();

  std::cout << "{\n"
            << "  \"bench\": \"micro_pim_batch\",\n"
            << "  \"n\": " << n << ",\n"
            << "  \"s\": " << s << ",\n"
            << "  \"total_queries\": " << kTotalQueries << ",\n"
            << "  \"sweep\": [\n";

  double q1_ms = 0.0;
  bool first = true;
  for (size_t batch : {size_t{1}, size_t{4}, size_t{16}, size_t{64}}) {
    PimDevice device;
    PIMINE_CHECK_OK(device.ProgramDataset(data));
    std::vector<uint64_t> batch_out;

    const auto run_all = [&] {
      for (size_t q0 = 0; q0 < kTotalQueries; q0 += batch) {
        PIMINE_CHECK_OK(device.DotProductBatch(
            std::span<const int32_t>(queries).subspan(q0 * s, batch * s),
            batch, &batch_out));
      }
    };
    run_all();  // warm-up; also the copy checked for bit-identity below.

    // Bit-identity self-check against the single-query reference (the last
    // batch of run_all covers queries [kTotalQueries - batch, kTotalQueries)).
    for (size_t q = kTotalQueries - batch; q < kTotalQueries; ++q) {
      const size_t bq = q - (kTotalQueries - batch);
      for (size_t v = 0; v < n; ++v) {
        PIMINE_CHECK(batch_out[bq * n + v] == expected[q * n + v])
            << "batched result diverged at Q=" << batch << " q=" << q
            << " v=" << v;
      }
    }

    const double ms = BestOfMs(5, run_all);
    if (batch == 1) q1_ms = ms;

    // Modeled-stats self-check: every invariant field must equal the
    // single-query device's after the same total number of queries. The
    // warm-up plus 5 timed repetitions ran 6 * kTotalQueries queries, so
    // compare against 6x by re-running the single-query device 5 more times.
    PimDevice ref;
    PIMINE_CHECK_OK(ref.ProgramDataset(data));
    for (int rep = 0; rep < 6; ++rep) {
      for (size_t q = 0; q < kTotalQueries; ++q) {
        PIMINE_CHECK_OK(ref.DotProductAll(
            std::span<const int32_t>(queries).subspan(q * s, s), &out));
      }
    }
    PIMINE_CHECK(InvariantStatsEqual(device.stats(), ref.stats()))
        << "batched stats diverged at Q=" << batch << ":\n  batched: "
        << device.stats().ToString() << "\n  single:  " << ref.stats().ToString();
    const uint64_t expected_batches =
        6 * (kTotalQueries / batch);
    PIMINE_CHECK(device.stats().batch_ops == expected_batches);
    PIMINE_CHECK(device.stats().queries_per_batch.at(
                     static_cast<int64_t>(batch)) == expected_batches);

    const double queries_per_s =
        static_cast<double>(kTotalQueries) / (ms / 1e3);
    // Modeled times for ONE pass over the kTotalQueries queries.
    const double serial_ns = device.stats().compute_ns / 6.0;
    const double pipelined_ns = device.stats().pipelined_ns / 6.0;
    if (!first) std::cout << ",\n";
    first = false;
    std::cout << "    {\"q\": " << batch
              << ", \"wall_ms\": " << Fmt(ms, 4)
              << ", \"queries_per_s\": " << Fmt(queries_per_s, 1)
              << ", \"speedup_vs_q1\": "
              << Fmt(q1_ms / std::max(1e-9, ms), 3)
              << ", \"modeled_serial_ns\": " << Fmt(serial_ns, 1)
              << ", \"modeled_pipelined_ns\": " << Fmt(pipelined_ns, 1)
              << ", \"modeled_speedup\": "
              << Fmt(serial_ns / std::max(1e-9, pipelined_ns), 3)
              << ", \"identical_to_single\": true}";
  }
  std::cout << "\n  ],\n"
            << "  \"note\": \"identical_to_single is PIMINE_CHECKed: results "
               "are bit-identical and all batching-invariant modeled stats "
               "are exactly equal to the per-query path\"\n"
            << "}\n";
  return 0;
}

// --- fault-rate sweep (--fault_sweep) ------------------------------------

int FaultSweep(size_t n, size_t s) {
  constexpr size_t kTotalQueries = 16;
  constexpr size_t kBatch = 4;
  Rng rng(7);
  IntMatrix data(n, s);
  for (size_t i = 0; i < n; ++i) {
    for (int32_t& v : data.mutable_row(i)) {
      v = static_cast<int32_t>(rng.NextBounded(1 << 20));
    }
  }
  std::vector<int32_t> queries(kTotalQueries * s);
  for (int32_t& v : queries) {
    v = static_cast<int32_t>(rng.NextBounded(1 << 20));
  }

  // Fault-free reference results.
  PimDevice clean;
  PIMINE_CHECK_OK(clean.ProgramDataset(data));
  std::vector<uint64_t> expected(kTotalQueries * n);
  {
    std::vector<uint64_t> out;
    for (size_t q0 = 0; q0 < kTotalQueries; q0 += kBatch) {
      PIMINE_CHECK_OK(clean.DotProductBatch(
          std::span<const int32_t>(queries).subspan(q0 * s, kBatch * s),
          kBatch, &out));
      std::copy(out.begin(), out.end(), expected.begin() + q0 * n);
    }
  }

  std::cout << "{\n"
            << "  \"bench\": \"micro_pim_fault\",\n"
            << "  \"n\": " << n << ",\n"
            << "  \"s\": " << s << ",\n"
            << "  \"total_queries\": " << kTotalQueries << ",\n"
            << "  \"recovery\": \"host-exact\",\n"
            << "  \"sweep\": [\n";

  bool first = true;
  for (double rate : {0.0, 1e-4, 1e-3, 1e-2}) {
    FaultConfig fault;
    fault.cell_rate = rate;
    fault.transient_rate = rate;
    PimDevice device(PimConfig(), fault, RecoveryPolicy());
    PIMINE_CHECK_OK(device.ProgramDataset(data));
    std::vector<uint64_t> out(kTotalQueries * n);
    std::vector<uint64_t> batch_out;

    const auto run_all = [&] {
      for (size_t q0 = 0; q0 < kTotalQueries; q0 += kBatch) {
        PIMINE_CHECK_OK(device.DotProductBatch(
            std::span<const int32_t>(queries).subspan(q0 * s, kBatch * s),
            kBatch, &batch_out));
        std::copy(batch_out.begin(), batch_out.end(), out.begin() + q0 * n);
      }
    };
    run_all();  // warm-up; also the copy checked for bit-identity below.

    // Exact-result guarantee: host-exact recovery keeps every dot product
    // bit-identical to the fault-free device at every injected rate.
    const FaultStats warm = device.stats().fault;
    PIMINE_CHECK(warm.escaped == 0)
        << "faults escaped at rate " << rate << ": " << warm.ToString();
    for (size_t i = 0; i < expected.size(); ++i) {
      PIMINE_CHECK(out[i] == expected[i])
          << "faulty result diverged at rate " << rate << " index " << i;
    }

    const double ms = BestOfMs(3, run_all);
    const FaultStats fs = device.stats().fault;
    PIMINE_CHECK(fs.injected == fs.detected + fs.escaped)
        << "fault accounting broken: " << fs.ToString();
    const double queries_per_s =
        static_cast<double>(kTotalQueries) / (ms / 1e3);
    // Accounting covers the warm-up plus 3 timed repetitions (4 passes).
    if (!first) std::cout << ",\n";
    first = false;
    std::cout << "    {\"rate\": " << rate
              << ", \"wall_ms\": " << Fmt(ms, 4)
              << ", \"queries_per_s\": " << Fmt(queries_per_s, 1)
              << ", \"stuck_cells\": " << fs.stuck_cells
              << ", \"injected\": " << fs.injected
              << ", \"detected\": " << fs.detected
              << ", \"escaped\": " << fs.escaped
              << ", \"retries\": " << fs.retries
              << ", \"remapped_rows\": " << fs.remapped_rows
              << ", \"escalated_to_host\": " << fs.escalated_to_host
              << ", \"recovery_ns\": " << Fmt(fs.recovery_ns, 1)
              << ", \"identical_to_fault_free\": true}";
  }
  std::cout << "\n  ],\n"
            << "  \"note\": \"identical_to_fault_free is PIMINE_CHECKed on "
               "the verification pass: zero escapes and every dot product "
               "bit-identical to the fault-free device. The timed "
               "repetitions afterwards only contribute to the accounting "
               "(injected == detected + escaped is re-checked on the "
               "totals), so 'escaped' may be nonzero at high rates\"\n"
            << "}\n";
  return 0;
}

// --- fleet-size sweep (--shard_sweep) ------------------------------------

int ShardSweep(size_t n, size_t d) {
  constexpr size_t kTotalQueries = 16;
  Rng rng(7);
  FloatMatrix data(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (float& v : data.mutable_row(i)) v = rng.NextFloat();
  }
  FloatMatrix queries(kTotalQueries, d);
  for (size_t i = 0; i < kTotalQueries; ++i) {
    for (float& v : queries.mutable_row(i)) v = rng.NextFloat();
  }

  // Reference bounds of the M=1, Q=1 run; every other (M, Q) combination
  // must reproduce them bit-for-bit.
  std::vector<double> expected(kTotalQueries * n);

  std::ostringstream json;
  json << "{\n"
       << "  \"schema\": \"pimine.bench.shard.v1\",\n"
       << "  \"n\": " << n << ",\n"
       << "  \"d\": " << d << ",\n"
       << "  \"total_queries\": " << kTotalQueries << ",\n"
       << "  \"sweep\": [\n";

  bool first = true;
  for (int shards : {1, 2, 4, 8}) {
    EngineOptions options;
    options.shard.shards = shards;
    auto built = ShardedPimEngine::Build(data, Distance::kEuclidean, options);
    PIMINE_CHECK(built.ok()) << built.status().ToString();
    const std::unique_ptr<ShardedPimEngine> engine = std::move(built).value();

    for (size_t batch : {size_t{1}, size_t{16}}) {
      engine->ResetOnlineStats();

      // Accounting + bit-identity pass: one sweep over all queries.
      for (size_t q0 = 0; q0 < kTotalQueries; q0 += batch) {
        auto run = engine->RunQueryBatch(
            std::span<const float>(queries.data() + q0 * d, batch * d), batch);
        PIMINE_CHECK(run.ok()) << run.status().ToString();
        const ShardedPimEngine::QueryHandleBatch handle =
            std::move(run).value();
        for (size_t bq = 0; bq < batch; ++bq) {
          for (size_t i = 0; i < n; ++i) {
            const double b = engine->BoundFor(handle, bq, i);
            if (shards == 1 && batch == 1) {
              expected[(q0 + bq) * n + i] = b;
            } else {
              PIMINE_CHECK(b == expected[(q0 + bq) * n + i])
                  << "bound diverged at M=" << shards << " Q=" << batch
                  << " q=" << q0 + bq << " i=" << i;
            }
          }
        }
      }

      // Modeled figures for the single accounting pass, snapshotted before
      // the timed repetitions: device occupancy is the max over the
      // concurrently-running shards; the interconnect ns come from the
      // fleet's scatter/gather message counters (zero at M=1).
      const double pipelined_ns = engine->PimPipelinedNs();
      const FleetRunStats fleet = engine->FleetStats();
      const double interconnect_ns = fleet.InterconnectNs();
      const double modeled_total_ns = pipelined_ns + interconnect_ns;
      const double modeled_qps =
          static_cast<double>(kTotalQueries) /
          (std::max(1e-9, modeled_total_ns) / 1e9);
      const double interconnect_fraction =
          modeled_total_ns > 0.0 ? interconnect_ns / modeled_total_ns : 0.0;

      ShardedPimEngine::QueryScratch scratch;
      const double ms = BestOfMs(3, [&] {
        for (size_t q0 = 0; q0 < kTotalQueries; q0 += batch) {
          PIMINE_CHECK_OK(engine
                              ->RunQueryBatch(
                                  std::span<const float>(
                                      queries.data() + q0 * d, batch * d),
                                  batch, &scratch)
                              .status());
        }
      });
      const double queries_per_s =
          static_cast<double>(kTotalQueries) / (ms / 1e3);

      // Crossbar demand of the busiest shard (shard 0 holds the most
      // rows): the provisioning axis the fleet actually scales — latency
      // is row-count independent, so M devices each need ~1/M of the
      // single device's crossbars for the same modeled time.
      const MemoryPlan& shard_plan = engine->shard_engine(0).plan();
      const int64_t crossbars_per_shard =
          shard_plan.data_crossbars + shard_plan.gather_crossbars;

      if (!first) json << ",\n";
      first = false;
      json << "    {\"shards\": " << shards
           << ", \"q\": " << batch
           << ", \"crossbars_per_shard\": " << crossbars_per_shard
           << ", \"wall_ms\": " << Fmt(ms, 4)
           << ", \"queries_per_s\": " << Fmt(queries_per_s, 1)
           << ", \"modeled_pipelined_ns\": " << Fmt(pipelined_ns, 1)
           << ", \"interconnect_ns\": " << Fmt(interconnect_ns, 1)
           << ", \"modeled_queries_per_s\": " << Fmt(modeled_qps, 1)
           << ", \"interconnect_fraction\": "
           << Fmt(interconnect_fraction, 4)
           << ", \"identical_to_single_device\": true}";
    }
  }
  json << "\n  ],\n"
       << "  \"note\": \"identical_to_single_device is PIMINE_CHECKed: "
          "every lower bound of every (M, Q) combination is bit-identical "
          "to the M=1, Q=1 run. modeled_queries_per_s divides the query "
          "count by max-over-shards pipelined device time plus the "
          "scatter/gather interconnect time, so the interconnect_fraction "
          "reports the fleet's communication overhead honestly. The "
          "crossbar pass is row-count independent, so what scales with M "
          "is crossbars_per_shard (each device provisions ~1/M of the "
          "single-device array), not the per-query latency\"\n"
       << "}\n";

  std::cout << json.str();
  std::ofstream out("BENCH_shard.json");
  PIMINE_CHECK(out.good()) << "cannot write BENCH_shard.json";
  out << json.str();
  std::cerr << "wrote BENCH_shard.json\n";
  return 0;
}

}  // namespace
}  // namespace pimine

int main(int argc, char** argv) {
  const bool batch_sweep =
      argc > 1 && std::strcmp(argv[1], "--batch_sweep") == 0;
  const bool fault_sweep =
      argc > 1 && std::strcmp(argv[1], "--fault_sweep") == 0;
  const bool shard_sweep =
      argc > 1 && std::strcmp(argv[1], "--shard_sweep") == 0;
  if (batch_sweep || fault_sweep || shard_sweep) {
    size_t n = 4096;
    size_t s = 256;
    const auto parse = [](const char* arg, size_t* out) {
      char* end = nullptr;
      const long long v = std::strtoll(arg, &end, 10);
      if (end == arg || *end != '\0' || v <= 0) return false;
      *out = static_cast<size_t>(v);
      return true;
    };
    if ((argc > 2 && !parse(argv[2], &n)) ||
        (argc > 3 && !parse(argv[3], &s))) {
      std::cerr << "usage: " << argv[0] << " " << argv[1] << " [n] [s]\n";
      return 2;
    }
    if (batch_sweep) return pimine::BatchSweep(n, s);
    if (fault_sweep) return pimine::FaultSweep(n, s);
    return pimine::ShardSweep(n, s);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
