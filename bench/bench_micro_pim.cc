// Micro-benchmarks (google-benchmark) of the PIM substrate: cycle-level
// crossbar dot products, batched device matches, layout math, and the
// crossbar-geometry ablations called out in DESIGN.md §5.

#include <benchmark/benchmark.h>

#include "data/matrix.h"
#include "pim/crossbar.h"
#include "pim/crossbar_math.h"
#include "pim/pim_device.h"
#include "pim/timing.h"
#include "util/random.h"

namespace pimine {
namespace {

void BM_CrossbarPipelineDotProduct(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int operand_bits = static_cast<int>(state.range(1));
  Crossbar xbar(dim, 2);
  Rng rng(1);
  const uint64_t limit = 1ULL << operand_bits;
  const int cols = xbar.NumLogicalColumns(operand_bits);
  std::vector<uint32_t> operands(dim);
  for (int c = 0; c < cols; ++c) {
    for (auto& v : operands) v = static_cast<uint32_t>(rng.NextBounded(limit));
    benchmark::DoNotOptimize(xbar.ProgramVector(c, operands, operand_bits));
  }
  std::vector<uint32_t> input(dim);
  for (auto& v : input) v = static_cast<uint32_t>(rng.NextBounded(limit));

  for (auto _ : state) {
    auto result = xbar.DotProduct(input, operand_bits, operand_bits, 2);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * dim * cols);
}
BENCHMARK(BM_CrossbarPipelineDotProduct)
    ->Args({64, 8})
    ->Args({256, 8})
    ->Args({256, 32});

void BM_DeviceBatchDotProduct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  IntMatrix data(n, d);
  Rng rng(2);
  for (size_t i = 0; i < n; ++i) {
    for (int32_t& v : data.mutable_row(i)) {
      v = static_cast<int32_t>(rng.NextBounded(1 << 20));
    }
  }
  PimDevice device;
  if (!device.ProgramDataset(data).ok()) {
    state.SkipWithError("program failed");
    return;
  }
  std::vector<int32_t> query(d);
  for (auto& v : query) v = static_cast<int32_t>(rng.NextBounded(1 << 20));
  std::vector<uint64_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.DotProductAll(query, &out));
  }
  state.SetItemsProcessed(state.iterations() * n * d);
}
BENCHMARK(BM_DeviceBatchDotProduct)
    ->Args({10000, 105})
    ->Args({10000, 420})
    ->Args({20000, 960});

// Ablation: modeled batch latency vs crossbar size and cell precision.
void BM_ModeledLatencyAblation(benchmark::State& state) {
  PimConfig config;
  config.crossbar_dim = static_cast<int>(state.range(0));
  config.cell_bits = static_cast<int>(state.range(1));
  config.dac_bits = config.cell_bits;
  PimTimingModel timing(config);
  double total = 0.0;
  for (auto _ : state) {
    total += timing.BatchDotLatencyNs(1024, 32);
    benchmark::DoNotOptimize(total);
  }
  state.counters["latency_ns"] = timing.BatchDotLatencyNs(1024, 32);
  state.counters["crossbars_per_pair"] =
      CrossbarsForPair(1024, config.crossbar_dim);
}
BENCHMARK(BM_ModeledLatencyAblation)
    ->Args({128, 2})
    ->Args({256, 2})
    ->Args({512, 2})
    ->Args({256, 4});

void BM_PlanLayout(benchmark::State& state) {
  PimConfig config;
  for (auto _ : state) {
    auto s = MaxCompressedDim(1'000'000, 32, 4096, config);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_PlanLayout);

}  // namespace
}  // namespace pimine

BENCHMARK_MAIN();
