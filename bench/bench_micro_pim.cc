// Micro-benchmarks (google-benchmark) of the PIM substrate: cycle-level
// crossbar dot products, batched device matches, layout math, and the
// crossbar-geometry ablations called out in DESIGN.md §7.
//
// `bench_micro_pim --batch_sweep [n] [s]` switches to a standalone
// batched-vs-single sweep (Q in {1, 4, 16, 64}) that emits one JSON
// document in the bench_micro_batch_kernels shape, with built-in
// bit-identity and modeled-stats self-checks. Default n=4096, s=256.
//
// `bench_micro_pim --fault_sweep [n] [s]` sweeps the ReRAM fault rate over
// {0, 1e-4, 1e-3, 1e-2} (stuck cells + transients, host-exact recovery) and
// emits one JSON document with throughput, recovery accounting, and a
// PIMINE_CHECKed bit-identity guarantee against the fault-free device.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "data/matrix.h"
#include "pim/crossbar.h"
#include "pim/crossbar_math.h"
#include "pim/pim_device.h"
#include "pim/timing.h"
#include "util/random.h"
#include "util/timer.h"

namespace pimine {
namespace {

void BM_CrossbarPipelineDotProduct(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int operand_bits = static_cast<int>(state.range(1));
  Crossbar xbar(dim, 2);
  Rng rng(1);
  const uint64_t limit = 1ULL << operand_bits;
  const int cols = xbar.NumLogicalColumns(operand_bits);
  std::vector<uint32_t> operands(dim);
  for (int c = 0; c < cols; ++c) {
    for (auto& v : operands) v = static_cast<uint32_t>(rng.NextBounded(limit));
    benchmark::DoNotOptimize(xbar.ProgramVector(c, operands, operand_bits));
  }
  std::vector<uint32_t> input(dim);
  for (auto& v : input) v = static_cast<uint32_t>(rng.NextBounded(limit));

  for (auto _ : state) {
    auto result = xbar.DotProduct(input, operand_bits, operand_bits, 2);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * dim * cols);
}
BENCHMARK(BM_CrossbarPipelineDotProduct)
    ->Args({64, 8})
    ->Args({256, 8})
    ->Args({256, 32});

void BM_DeviceBatchDotProduct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  IntMatrix data(n, d);
  Rng rng(2);
  for (size_t i = 0; i < n; ++i) {
    for (int32_t& v : data.mutable_row(i)) {
      v = static_cast<int32_t>(rng.NextBounded(1 << 20));
    }
  }
  PimDevice device;
  if (!device.ProgramDataset(data).ok()) {
    state.SkipWithError("program failed");
    return;
  }
  std::vector<int32_t> query(d);
  for (auto& v : query) v = static_cast<int32_t>(rng.NextBounded(1 << 20));
  std::vector<uint64_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.DotProductAll(query, &out));
  }
  state.SetItemsProcessed(state.iterations() * n * d);
}
BENCHMARK(BM_DeviceBatchDotProduct)
    ->Args({10000, 105})
    ->Args({10000, 420})
    ->Args({20000, 960});

// Ablation: modeled batch latency vs crossbar size and cell precision.
void BM_ModeledLatencyAblation(benchmark::State& state) {
  PimConfig config;
  config.crossbar_dim = static_cast<int>(state.range(0));
  config.cell_bits = static_cast<int>(state.range(1));
  config.dac_bits = config.cell_bits;
  PimTimingModel timing(config);
  double total = 0.0;
  for (auto _ : state) {
    total += timing.BatchDotLatencyNs(1024, 32);
    benchmark::DoNotOptimize(total);
  }
  state.counters["latency_ns"] = timing.BatchDotLatencyNs(1024, 32);
  state.counters["crossbars_per_pair"] =
      CrossbarsForPair(1024, config.crossbar_dim);
}
BENCHMARK(BM_ModeledLatencyAblation)
    ->Args({128, 2})
    ->Args({256, 2})
    ->Args({512, 2})
    ->Args({256, 4});

void BM_PlanLayout(benchmark::State& state) {
  PimConfig config;
  for (auto _ : state) {
    auto s = MaxCompressedDim(1'000'000, 32, 4096, config);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_PlanLayout);

// --- batched-vs-single device sweep (--batch_sweep) ----------------------

std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

double BestOfMs(int repetitions, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < repetitions; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

/// Modeled-stat fields that must be invariant under batching, compared
/// bit-for-bit between a batched device and a single-query device.
bool InvariantStatsEqual(const PimDeviceStats& a, const PimDeviceStats& b) {
  return a.queries_processed == b.queries_processed &&
         a.compute_ns == b.compute_ns &&
         a.compute_energy_pj == b.compute_energy_pj &&
         a.results_produced == b.results_produced &&
         a.result_bytes_to_host == b.result_bytes_to_host;
}

int BatchSweep(size_t n, size_t s) {
  constexpr size_t kTotalQueries = 64;  // divisible by every swept Q.
  Rng rng(7);
  IntMatrix data(n, s);
  for (size_t i = 0; i < n; ++i) {
    for (int32_t& v : data.mutable_row(i)) {
      v = static_cast<int32_t>(rng.NextBounded(1 << 20));
    }
  }
  std::vector<int32_t> queries(kTotalQueries * s);
  for (int32_t& v : queries) {
    v = static_cast<int32_t>(rng.NextBounded(1 << 20));
  }

  // Single-query reference device: results and modeled stats for all
  // kTotalQueries queries, one DotProductAll each.
  PimDevice single;
  PIMINE_CHECK_OK(single.ProgramDataset(data));
  std::vector<uint64_t> expected(kTotalQueries * n);
  std::vector<uint64_t> out;
  for (size_t q = 0; q < kTotalQueries; ++q) {
    PIMINE_CHECK_OK(single.DotProductAll(
        std::span<const int32_t>(queries).subspan(q * s, s), &out));
    std::copy(out.begin(), out.end(), expected.begin() + q * n);
  }
  const PimDeviceStats single_stats = single.stats();

  std::cout << "{\n"
            << "  \"bench\": \"micro_pim_batch\",\n"
            << "  \"n\": " << n << ",\n"
            << "  \"s\": " << s << ",\n"
            << "  \"total_queries\": " << kTotalQueries << ",\n"
            << "  \"sweep\": [\n";

  double q1_ms = 0.0;
  bool first = true;
  for (size_t batch : {size_t{1}, size_t{4}, size_t{16}, size_t{64}}) {
    PimDevice device;
    PIMINE_CHECK_OK(device.ProgramDataset(data));
    std::vector<uint64_t> batch_out;

    const auto run_all = [&] {
      for (size_t q0 = 0; q0 < kTotalQueries; q0 += batch) {
        PIMINE_CHECK_OK(device.DotProductBatch(
            std::span<const int32_t>(queries).subspan(q0 * s, batch * s),
            batch, &batch_out));
      }
    };
    run_all();  // warm-up; also the copy checked for bit-identity below.

    // Bit-identity self-check against the single-query reference (the last
    // batch of run_all covers queries [kTotalQueries - batch, kTotalQueries)).
    for (size_t q = kTotalQueries - batch; q < kTotalQueries; ++q) {
      const size_t bq = q - (kTotalQueries - batch);
      for (size_t v = 0; v < n; ++v) {
        PIMINE_CHECK(batch_out[bq * n + v] == expected[q * n + v])
            << "batched result diverged at Q=" << batch << " q=" << q
            << " v=" << v;
      }
    }

    const double ms = BestOfMs(5, run_all);
    if (batch == 1) q1_ms = ms;

    // Modeled-stats self-check: every invariant field must equal the
    // single-query device's after the same total number of queries. The
    // warm-up plus 5 timed repetitions ran 6 * kTotalQueries queries, so
    // compare against 6x by re-running the single-query device 5 more times.
    PimDevice ref;
    PIMINE_CHECK_OK(ref.ProgramDataset(data));
    for (int rep = 0; rep < 6; ++rep) {
      for (size_t q = 0; q < kTotalQueries; ++q) {
        PIMINE_CHECK_OK(ref.DotProductAll(
            std::span<const int32_t>(queries).subspan(q * s, s), &out));
      }
    }
    PIMINE_CHECK(InvariantStatsEqual(device.stats(), ref.stats()))
        << "batched stats diverged at Q=" << batch << ":\n  batched: "
        << device.stats().ToString() << "\n  single:  " << ref.stats().ToString();
    const uint64_t expected_batches =
        6 * (kTotalQueries / batch);
    PIMINE_CHECK(device.stats().batch_ops == expected_batches);
    PIMINE_CHECK(device.stats().queries_per_batch.at(
                     static_cast<int64_t>(batch)) == expected_batches);

    const double queries_per_s =
        static_cast<double>(kTotalQueries) / (ms / 1e3);
    // Modeled times for ONE pass over the kTotalQueries queries.
    const double serial_ns = device.stats().compute_ns / 6.0;
    const double pipelined_ns = device.stats().pipelined_ns / 6.0;
    if (!first) std::cout << ",\n";
    first = false;
    std::cout << "    {\"q\": " << batch
              << ", \"wall_ms\": " << Fmt(ms, 4)
              << ", \"queries_per_s\": " << Fmt(queries_per_s, 1)
              << ", \"speedup_vs_q1\": "
              << Fmt(q1_ms / std::max(1e-9, ms), 3)
              << ", \"modeled_serial_ns\": " << Fmt(serial_ns, 1)
              << ", \"modeled_pipelined_ns\": " << Fmt(pipelined_ns, 1)
              << ", \"modeled_speedup\": "
              << Fmt(serial_ns / std::max(1e-9, pipelined_ns), 3)
              << ", \"identical_to_single\": true}";
  }
  std::cout << "\n  ],\n"
            << "  \"note\": \"identical_to_single is PIMINE_CHECKed: results "
               "are bit-identical and all batching-invariant modeled stats "
               "are exactly equal to the per-query path\"\n"
            << "}\n";
  return 0;
}

// --- fault-rate sweep (--fault_sweep) ------------------------------------

int FaultSweep(size_t n, size_t s) {
  constexpr size_t kTotalQueries = 16;
  constexpr size_t kBatch = 4;
  Rng rng(7);
  IntMatrix data(n, s);
  for (size_t i = 0; i < n; ++i) {
    for (int32_t& v : data.mutable_row(i)) {
      v = static_cast<int32_t>(rng.NextBounded(1 << 20));
    }
  }
  std::vector<int32_t> queries(kTotalQueries * s);
  for (int32_t& v : queries) {
    v = static_cast<int32_t>(rng.NextBounded(1 << 20));
  }

  // Fault-free reference results.
  PimDevice clean;
  PIMINE_CHECK_OK(clean.ProgramDataset(data));
  std::vector<uint64_t> expected(kTotalQueries * n);
  {
    std::vector<uint64_t> out;
    for (size_t q0 = 0; q0 < kTotalQueries; q0 += kBatch) {
      PIMINE_CHECK_OK(clean.DotProductBatch(
          std::span<const int32_t>(queries).subspan(q0 * s, kBatch * s),
          kBatch, &out));
      std::copy(out.begin(), out.end(), expected.begin() + q0 * n);
    }
  }

  std::cout << "{\n"
            << "  \"bench\": \"micro_pim_fault\",\n"
            << "  \"n\": " << n << ",\n"
            << "  \"s\": " << s << ",\n"
            << "  \"total_queries\": " << kTotalQueries << ",\n"
            << "  \"recovery\": \"host-exact\",\n"
            << "  \"sweep\": [\n";

  bool first = true;
  for (double rate : {0.0, 1e-4, 1e-3, 1e-2}) {
    FaultConfig fault;
    fault.cell_rate = rate;
    fault.transient_rate = rate;
    PimDevice device(PimConfig(), fault, RecoveryPolicy());
    PIMINE_CHECK_OK(device.ProgramDataset(data));
    std::vector<uint64_t> out(kTotalQueries * n);
    std::vector<uint64_t> batch_out;

    const auto run_all = [&] {
      for (size_t q0 = 0; q0 < kTotalQueries; q0 += kBatch) {
        PIMINE_CHECK_OK(device.DotProductBatch(
            std::span<const int32_t>(queries).subspan(q0 * s, kBatch * s),
            kBatch, &batch_out));
        std::copy(batch_out.begin(), batch_out.end(), out.begin() + q0 * n);
      }
    };
    run_all();  // warm-up; also the copy checked for bit-identity below.

    // Exact-result guarantee: host-exact recovery keeps every dot product
    // bit-identical to the fault-free device at every injected rate.
    const FaultStats warm = device.stats().fault;
    PIMINE_CHECK(warm.escaped == 0)
        << "faults escaped at rate " << rate << ": " << warm.ToString();
    for (size_t i = 0; i < expected.size(); ++i) {
      PIMINE_CHECK(out[i] == expected[i])
          << "faulty result diverged at rate " << rate << " index " << i;
    }

    const double ms = BestOfMs(3, run_all);
    const FaultStats fs = device.stats().fault;
    PIMINE_CHECK(fs.injected == fs.detected + fs.escaped)
        << "fault accounting broken: " << fs.ToString();
    const double queries_per_s =
        static_cast<double>(kTotalQueries) / (ms / 1e3);
    // Accounting covers the warm-up plus 3 timed repetitions (4 passes).
    if (!first) std::cout << ",\n";
    first = false;
    std::cout << "    {\"rate\": " << rate
              << ", \"wall_ms\": " << Fmt(ms, 4)
              << ", \"queries_per_s\": " << Fmt(queries_per_s, 1)
              << ", \"stuck_cells\": " << fs.stuck_cells
              << ", \"injected\": " << fs.injected
              << ", \"detected\": " << fs.detected
              << ", \"escaped\": " << fs.escaped
              << ", \"retries\": " << fs.retries
              << ", \"remapped_rows\": " << fs.remapped_rows
              << ", \"escalated_to_host\": " << fs.escalated_to_host
              << ", \"recovery_ns\": " << Fmt(fs.recovery_ns, 1)
              << ", \"identical_to_fault_free\": true}";
  }
  std::cout << "\n  ],\n"
            << "  \"note\": \"identical_to_fault_free is PIMINE_CHECKed on "
               "the verification pass: zero escapes and every dot product "
               "bit-identical to the fault-free device. The timed "
               "repetitions afterwards only contribute to the accounting "
               "(injected == detected + escaped is re-checked on the "
               "totals), so 'escaped' may be nonzero at high rates\"\n"
            << "}\n";
  return 0;
}

}  // namespace
}  // namespace pimine

int main(int argc, char** argv) {
  const bool batch_sweep =
      argc > 1 && std::strcmp(argv[1], "--batch_sweep") == 0;
  const bool fault_sweep =
      argc > 1 && std::strcmp(argv[1], "--fault_sweep") == 0;
  if (batch_sweep || fault_sweep) {
    size_t n = 4096;
    size_t s = 256;
    const auto parse = [](const char* arg, size_t* out) {
      char* end = nullptr;
      const long long v = std::strtoll(arg, &end, 10);
      if (end == arg || *end != '\0' || v <= 0) return false;
      *out = static_cast<size_t>(v);
      return true;
    };
    if ((argc > 2 && !parse(argv[2], &n)) ||
        (argc > 3 && !parse(argv[3], &s))) {
      std::cerr << "usage: " << argv[0] << " " << argv[1] << " [n] [s]\n";
      return 2;
    }
    return batch_sweep ? pimine::BatchSweep(n, s) : pimine::FaultSweep(n, s);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
