// Prints the static configuration tables of the paper: Table 1 (NVM
// characteristics), Table 5 (hardware platform), Table 6 (datasets), and
// the derived PIM-array geometry.

#include <iostream>

#include "bench_common.h"
#include "pim/pim_config.h"
#include "sim/platform.h"

namespace pimine {
namespace bench {
namespace {

void Run() {
  Banner("Table 1: Characteristics of representative NVM techniques");
  std::cout << FormatNvmTable();

  Banner("Table 5: Hardware platform configuration");
  std::cout << FormatPlatformConfig(DefaultPlatform());
  PimConfig pim;
  std::cout << "PIM: " << pim.ToString() << "\n";

  Banner("Table 6: Datasets (paper scale vs bench scale)");
  TablePrinter table({"dataset", "task", "paper N", "bench N", "d",
                      "profile"});
  for (const DatasetSpec& spec : Catalog::All()) {
    const char* profile =
        spec.profile == ClusterProfile::kClustered
            ? "clustered"
            : (spec.profile == ClusterProfile::kDiffuse ? "diffuse"
                                                        : "sparse-counts");
    table.AddRow({spec.name, spec.task, std::to_string(spec.paper_n),
                  std::to_string(spec.default_n), std::to_string(spec.dims),
                  profile});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
