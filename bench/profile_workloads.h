#ifndef PIMINE_BENCH_PROFILE_WORKLOADS_H_
#define PIMINE_BENCH_PROFILE_WORKLOADS_H_

#include <string>
#include <vector>

#include "bench_common.h"

namespace pimine {
namespace bench {

/// One profiled algorithm run (workloads of Figs. 5-7).
struct ProfiledRun {
  std::string name;
  RunStats stats;
  /// Wall time of the online phase in ms (kNN: whole batch; k-means: mean
  /// per iteration).
  double wall_ms = 0.0;
  /// Wall time spent in functions offloadable to PIM (the set F of Eq. 2).
  double offloadable_ms = 0.0;
};

/// Runs the four baseline kNN algorithms (Standard, OST, SM, FNN) on the
/// workload — the paper's Fig. 5a/6a/7a setting (MSD, k=10).
std::vector<ProfiledRun> ProfileKnnAlgorithms(const BenchWorkload& workload,
                                              int k);

/// Runs the four baseline k-means algorithms (Standard, Elkan, Drake,
/// Yinyang) — the paper's Fig. 5b/6b/7b setting (NUS-WIDE, k=64). Reported
/// numbers are per iteration.
std::vector<ProfiledRun> ProfileKmeansAlgorithms(const BenchWorkload& workload,
                                                 int k, int iterations);

/// Tags counted as PIM-offloadable (similarity + bound functions).
bool IsOffloadableTag(const std::string& tag);

}  // namespace bench
}  // namespace pimine

#endif  // PIMINE_BENCH_PROFILE_WORKLOADS_H_
