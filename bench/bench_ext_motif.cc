// Extension: time-series motif discovery (the paper's intro names it as a
// similarity-based mining task; reference [3]). Closest-pair search over
// sliding windows, with PIM lower bounds screening candidate pairs.

#include <iostream>

#include "bench_common.h"
#include "knn/motif.h"
#include "profiling/modeled_time.h"
#include "util/random.h"

namespace pimine {
namespace bench {
namespace {

std::vector<float> RandomWalkSeries(size_t length, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> series(length);
  double level = 0.0;
  for (float& v : series) {
    level += rng.NextGaussian(0.0, 1.0);
    v = static_cast<float>(level);
  }
  return series;
}

void Run() {
  const HostCostModel model;
  Banner("Extension: time-series motif discovery (closest pair of "
         "subsequences)");

  TablePrinter table({"series len", "window", "pairs", "brute model_ms",
                      "PIM model_ms", "speedup", "exact dists",
                      "PIM exact dists"});
  for (size_t length : {2000, 4000}) {
    const auto series = RandomWalkSeries(length, kBenchSeed + length);
    for (int64_t window : {64, 128}) {
      auto windows = ExtractWindows(series, window);
      PIMINE_CHECK(windows.ok());

      MotifOptions options;
      options.window = window;
      MotifDiscovery baseline;
      auto base = baseline.Find(*windows, options);
      PIMINE_CHECK(base.ok());

      PimMotifDiscovery pim((EngineOptions()));
      auto accel = pim.Find(*windows, options);
      PIMINE_CHECK(accel.ok());
      PIMINE_CHECK(accel->first == base->first &&
                   accel->second == base->second)
          << "motif must match";

      const size_t n = windows->rows();
      const double base_ms =
          ComposeModeledTime(base->stats, model).total_ms();
      const double accel_ms =
          ComposeModeledTime(accel->stats, model).total_ms();
      table.AddRow({std::to_string(length), std::to_string(window),
                    std::to_string(n * (n - 1) / 2), Fmt(base_ms),
                    Fmt(accel_ms), Fmt(base_ms / accel_ms, 1) + "x",
                    std::to_string(base->stats.exact_count),
                    std::to_string(accel->stats.exact_count)});
    }
  }
  table.Print();
  std::cout << "\nMotif pairs verified identical between baseline and PIM "
               "runs.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
