// Figure 13: kNN classification execution time.
//   (a) vary dataset   — Standard vs Standard-PIM on ImageNet/MSD/Trevi/GIST
//   (b) vary algorithm — Standard/OST/SM/FNN and their PIM variants on MSD
//   (c) vary k         — Standard vs Standard-PIM vs PIM-oracle
//   (d) vary distance  — ED / CS / PCC
// Paper findings to reproduce: up to 453x speedup on (a), growing with d;
// weak gains on GIST (LB_FNN prunes poorly there); state-of-art algorithms
// improve from 3.9x (no PIM) to 40.8x (PIM) on (b); mild k sensitivity on
// (c); similar gaps across measures with PCC weakest on (d).

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "knn/fnn_knn.h"
#include "knn/fnn_pim_knn.h"
#include "knn/ost_knn.h"
#include "knn/ost_pim_knn.h"
#include "knn/sm_knn.h"
#include "knn/sm_pim_knn.h"
#include "knn/standard_knn.h"
#include "knn/standard_pim_knn.h"
#include "profile_workloads.h"
#include "profiling/modeled_time.h"

namespace pimine {
namespace bench {
namespace {

void VaryDataset(const HostCostModel& model) {
  Banner("Figure 13(a): kNN time vs dataset (Standard vs Standard-PIM, "
         "k=10, ED)");
  TablePrinter table({"dataset", "N", "d", "s", "Standard model_ms",
                      "Standard-PIM model_ms", "speedup"});
  for (const char* name : {"ImageNet", "MSD", "Trevi", "GIST"}) {
    const BenchWorkload w = LoadWorkload(name);
    StandardKnn standard;
    PIMINE_CHECK_OK(standard.Prepare(w.data));
    const BenchPoint base = RunKnnPoint(standard, w.queries, 10, model);

    StandardPimKnn pim(Distance::kEuclidean, ScaledEngineOptions(w));
    PIMINE_CHECK_OK(pim.Prepare(w.data));
    const BenchPoint accel = RunKnnPoint(pim, w.queries, 10, model);

    table.AddRow({name, std::to_string(w.data.rows()),
                  std::to_string(w.data.cols()),
                  std::to_string(pim.engine()->num_segments() > 0
                                     ? pim.engine()->num_segments()
                                     : static_cast<int64_t>(w.data.cols())),
                  Fmt(base.model_ms), Fmt(accel.model_ms),
                  Fmt(base.model_ms / accel.model_ms, 1) + "x"});
  }
  table.Print();
}

void VaryAlgorithm(const HostCostModel& model) {
  Banner("Figure 13(b): kNN time vs algorithm (MSD, k=10, ED)");
  const BenchWorkload w = LoadWorkload("MSD");
  const EngineOptions options = ScaledEngineOptions(w);

  struct Pair {
    std::unique_ptr<KnnAlgorithm> base;
    std::unique_ptr<KnnAlgorithm> pim;
  };
  std::vector<Pair> pairs;
  pairs.push_back({std::make_unique<StandardKnn>(),
                   std::make_unique<StandardPimKnn>(Distance::kEuclidean,
                                                    options)});
  pairs.push_back(
      {std::make_unique<OstKnn>(),
       std::make_unique<OstPimKnn>(options)});
  pairs.push_back(
      {std::make_unique<SmKnn>(), std::make_unique<SmPimKnn>(options)});
  pairs.push_back({std::make_unique<FnnKnn>(),
                   std::make_unique<FnnPimKnn>(options, /*optimize=*/false)});

  TablePrinter table({"algorithm", "model_ms", "PIM model_ms", "speedup"});
  for (auto& pair : pairs) {
    PIMINE_CHECK_OK(pair.base->Prepare(w.data));
    PIMINE_CHECK_OK(pair.pim->Prepare(w.data));
    const BenchPoint base = RunKnnPoint(*pair.base, w.queries, 10, model);
    const BenchPoint accel = RunKnnPoint(*pair.pim, w.queries, 10, model);
    table.AddRow({base.label, Fmt(base.model_ms), Fmt(accel.model_ms),
                  Fmt(base.model_ms / accel.model_ms, 1) + "x"});
  }
  table.Print();
}

void VaryK(const HostCostModel& model) {
  Banner("Figure 13(c): kNN time vs k (MSD, ED; Standard vs Standard-PIM "
         "vs PIM-oracle)");
  const BenchWorkload w = LoadWorkload("MSD");
  const EngineOptions options = ScaledEngineOptions(w);
  TablePrinter table({"k", "Standard model_ms", "Standard-PIM model_ms",
                      "PIM-oracle model_ms", "speedup"});
  for (int k : {1, 10, 100}) {
    StandardKnn standard;
    PIMINE_CHECK_OK(standard.Prepare(w.data));
    const BenchPoint base = RunKnnPoint(standard, w.queries, k, model);
    // Oracle (Eq. 2): zero the offloadable (ED) share of the measured run,
    // projected onto modeled time.
    double offloadable_ns = 0.0;
    for (const auto& [tag, ns] : base.stats.profile.entries()) {
      if (IsOffloadableTag(tag)) offloadable_ns += static_cast<double>(ns);
    }
    const double wall_ns = base.stats.wall_ms * 1e6;
    const double oracle_model_ms =
        base.model_ms *
        (wall_ns > 0 ? PimOracleNs(wall_ns, offloadable_ns) / wall_ns : 0.0);

    StandardPimKnn pim(Distance::kEuclidean, options);
    PIMINE_CHECK_OK(pim.Prepare(w.data));
    const BenchPoint accel = RunKnnPoint(pim, w.queries, k, model);

    table.AddRow({std::to_string(k), Fmt(base.model_ms), Fmt(accel.model_ms),
                  Fmt(oracle_model_ms),
                  Fmt(base.model_ms / accel.model_ms, 1) + "x"});
  }
  table.Print();
}

void VaryDistance(const HostCostModel& model) {
  Banner("Figure 13(d): kNN time vs distance function (MSD, k=10)");
  const BenchWorkload w = LoadWorkload("MSD");
  // CS/PCC have no compressed (segment) upper bound, so they need the
  // full-dimensionality dataset on PIM: use the full Table 5 array rather
  // than the scaled-down budget (it trivially fits at bench scale).
  const EngineOptions options;
  TablePrinter table({"distance", "Standard model_ms",
                      "Standard-PIM model_ms", "speedup"});
  for (Distance distance :
       {Distance::kEuclidean, Distance::kCosine, Distance::kPearson}) {
    StandardKnn standard(distance);
    PIMINE_CHECK_OK(standard.Prepare(w.data));
    const BenchPoint base = RunKnnPoint(standard, w.queries, 10, model);

    StandardPimKnn pim(distance, options);
    PIMINE_CHECK_OK(pim.Prepare(w.data));
    const BenchPoint accel = RunKnnPoint(pim, w.queries, 10, model);

    table.AddRow({std::string(DistanceName(distance)), Fmt(base.model_ms),
                  Fmt(accel.model_ms),
                  Fmt(base.model_ms / accel.model_ms, 1) + "x"});
  }
  table.Print();
}

void Run() {
  const HostCostModel model;
  VaryDataset(model);
  VaryAlgorithm(model);
  VaryK(model);
  VaryDistance(model);
  std::cout << "\nPaper reference: up to 453x on (a) with GIST weakest; "
               "3.9x -> 40.8x average on (b); 71.5/57.1/29.2x across k on "
               "(c); PCC weakest on (d).\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
