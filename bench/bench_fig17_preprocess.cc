// Figure 17: pre-processing (offline) time of FNN vs FNN-PIM-optimize on
// the four kNN datasets. Paper findings to reproduce: PIM pre-processing
// is slower (~1.9x on average — ReRAM writes cost more than DRAM writes,
// Table 1) but writes less data (~33% fewer bytes on MSD: one programmed
// bound matrix instead of three reduced-vector sets).

#include <iostream>

#include "bench_common.h"
#include "knn/fnn_knn.h"
#include "knn/fnn_pim_knn.h"
#include "util/timer.h"

namespace pimine {
namespace bench {
namespace {

void Run() {
  const HostCostModel model;
  Banner("Figure 17: pre-processing time for kNN classification "
         "(FNN vs FNN-PIM-optimize)");

  TablePrinter table({"dataset", "FNN model_ms", "FNN MB written",
                      "FNN-PIM model_ms", "FNN-PIM MB written", "ratio"});
  for (const char* name : {"ImageNet", "MSD", "Trevi", "GIST"}) {
    const BenchWorkload w = LoadWorkload(name);

    // Baseline: compute the three reduced-vector sets and write them to
    // DRAM. Modeled time = measured stat computation + DRAM write cost.
    FnnKnn fnn;
    Timer fnn_wall;
    PIMINE_CHECK_OK(fnn.Prepare(w.data));
    const double fnn_compute_ms = fnn_wall.ElapsedMillis();
    const uint64_t fnn_bytes = fnn.OfflineBytesWritten();
    const double fnn_ms =
        fnn_compute_ms + model.DramWriteNs(fnn_bytes) / 1e6;

    // PIM: quantize + program crossbars + store Phi. The modeled offline
    // cost (row-parallel crossbar programming at the ReRAM write latency)
    // comes from the device; the plan measurement happens on the host and
    // is included in the measured wall.
    FnnPimKnn pim(ScaledEngineOptions(w), /*optimize=*/true);
    Timer pim_wall;
    PIMINE_CHECK_OK(pim.Prepare(w.data));
    const double pim_compute_ms = pim_wall.ElapsedMillis();
    const uint64_t pim_bytes = pim.OfflineBytesWritten();
    const double pim_ms = pim_compute_ms + pim.OfflineModeledNs() / 1e6;

    table.AddRow({name, Fmt(fnn_ms), Fmt(fnn_bytes / 1e6),
                  Fmt(pim_ms), Fmt(pim_bytes / 1e6),
                  Fmt(pim_ms / fnn_ms, 2) + "x"});
  }
  table.Print();

  std::cout << "\nPaper reference: FNN-PIM-optimize pre-processing is ~1.9x "
               "slower on average, with ~33% fewer bytes written on MSD.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
