#ifndef PIMINE_BENCH_BENCH_COMMON_H_
#define PIMINE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/memory_planner.h"
#include "data/catalog.h"
#include "data/matrix.h"
#include "knn/knn_common.h"
#include "profiling/modeled_time.h"
#include "sim/cost_model.h"

namespace pimine {
namespace bench {

/// Deterministic seed shared by every bench binary.
inline constexpr uint64_t kBenchSeed = 20210416;  // ICDE'21 week.

/// A generated dataset + query workload for one catalog entry.
struct BenchWorkload {
  DatasetSpec spec;
  FloatMatrix data;
  FloatMatrix queries;
};

/// Generates (deterministically) the scaled stand-in for a paper dataset.
/// `n` <= 0 uses the spec's default; `num_queries` defaults to 20.
BenchWorkload LoadWorkload(const std::string& name, int64_t n = 0,
                           int64_t num_queries = 20);

/// Engine options whose crossbar budget is scaled to the workload so that
/// Theorem 4 exerts the paper's capacity pressure (DESIGN.md §1).
EngineOptions ScaledEngineOptions(const BenchWorkload& workload);

/// One measured + modeled data point.
struct BenchPoint {
  std::string label;
  double wall_ms = 0.0;
  double model_ms = 0.0;
  RunStats stats;
};

/// Runs a kNN algorithm (already Prepared) and composes its modeled time.
BenchPoint RunKnnPoint(KnnAlgorithm& algorithm, const FloatMatrix& queries,
                       int k, const HostCostModel& model);

/// Simple fixed-width table printer for the bench output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(const std::vector<std::string>& cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with 2 (default) decimals.
std::string Fmt(double value, int decimals = 2);

/// Prints a section banner ("=== Figure 13(a) ... ===").
void Banner(const std::string& title);

}  // namespace bench
}  // namespace pimine

#endif  // PIMINE_BENCH_BENCH_COMMON_H_
