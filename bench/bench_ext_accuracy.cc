// Extension ablation: the paper's core design argument (§II-A) quantified.
// GraphR-style fixed-point approximation computes distances entirely from
// quantized values and accepts the precision loss; the paper instead uses
// PIM for *bounds* and refines exactly. This bench sweeps the scaling
// factor alpha and reports recall@10 of the approximate approach (degrades
// at coarse alpha) vs the bound approach (always exact), together with the
// crossbar storage each needs.

#include <iostream>

#include "bench_common.h"
#include "knn/approximate_pim_knn.h"
#include "knn/standard_knn.h"
#include "knn/standard_pim_knn.h"
#include "profiling/modeled_time.h"
#include "util/bits.h"

namespace pimine {
namespace bench {
namespace {

double MeanRecall(const KnnRunResult& exact, const KnnRunResult& other) {
  double total = 0.0;
  for (size_t q = 0; q < exact.neighbors.size(); ++q) {
    total += RecallAtK(exact.neighbors[q], other.neighbors[q]);
  }
  return total / static_cast<double>(exact.neighbors.size());
}

void Run() {
  const HostCostModel model;
  Banner("Extension: accuracy of approximate PIM vs PIM-aware bounds "
         "(MSD, k=10)");

  const BenchWorkload w = LoadWorkload("MSD", /*n=*/5000);
  StandardKnn standard;
  PIMINE_CHECK_OK(standard.Prepare(w.data));
  auto golden = standard.Search(w.queries, 10);
  PIMINE_CHECK(golden.ok());

  TablePrinter table({"alpha", "operand bits", "cells/value",
                      "approx recall@10", "bound recall@10",
                      "approx model_ms", "bound model_ms"});
  for (double alpha : {4.0, 16.0, 256.0, 65536.0, 1e6}) {
    EngineOptions options;
    options.alpha = alpha;
    options.operand_bits =
        std::max(2, FloorLog2(static_cast<uint64_t>(alpha)) + 1);

    ApproximatePimKnn approx(options);
    PIMINE_CHECK_OK(approx.Prepare(w.data));
    auto approx_result = approx.Search(w.queries, 10);
    PIMINE_CHECK(approx_result.ok());

    StandardPimKnn bound(Distance::kEuclidean, options);
    PIMINE_CHECK_OK(bound.Prepare(w.data));
    auto bound_result = bound.Search(w.queries, 10);
    PIMINE_CHECK(bound_result.ok());

    table.AddRow(
        {Fmt(alpha, 0), std::to_string(options.operand_bits),
         std::to_string(NumSlices(options.operand_bits,
                                  options.pim_config.cell_bits)),
         Fmt(MeanRecall(*golden, *approx_result), 3),
         Fmt(MeanRecall(*golden, *bound_result), 3),
         Fmt(ComposeModeledTime(approx_result->stats, model).total_ms()),
         Fmt(ComposeModeledTime(bound_result->stats, model).total_ms())});
  }
  table.Print();

  std::cout << "\nTakeaway (the paper's §II-A argument): approximation "
               "trades accuracy for precision cells; the bound approach is "
               "exact at every alpha — coarse alpha only costs pruning "
               "power, never correctness.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
