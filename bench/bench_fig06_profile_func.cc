// Figure 6: execution-time breakdown by function (§IV-B). Paper finding to
// reproduce: exact ED dominates Standard kNN; the bound functions dominate
// (72-86%) the accelerated kNN algorithms; ED takes 52-96% of k-means.

#include <iostream>

#include "bench_common.h"
#include "profile_workloads.h"

namespace pimine {
namespace bench {
namespace {

void PrintFunctionTable(const std::vector<ProfiledRun>& runs,
                        const std::vector<std::string>& tags,
                        double total_scale) {
  std::vector<std::string> headers = {"algorithm"};
  for (const auto& tag : tags) headers.push_back(tag + "%");
  headers.push_back("Other%");
  headers.push_back("wall_ms");
  TablePrinter table(headers);

  for (const ProfiledRun& run : runs) {
    const double wall_ns = run.wall_ms * 1e6 * total_scale;
    std::vector<std::string> row = {run.name};
    double attributed = 0.0;
    for (const auto& tag : tags) {
      const double ns = static_cast<double>(run.stats.profile.Get(tag));
      attributed += ns;
      row.push_back(Fmt(wall_ns > 0 ? 100.0 * ns / wall_ns : 0.0, 1));
    }
    const double other = wall_ns - attributed;
    row.push_back(Fmt(wall_ns > 0 ? 100.0 * other / wall_ns : 0.0, 1));
    row.push_back(Fmt(run.wall_ms * total_scale));
    table.AddRow(row);
  }
  table.Print();
}

void Run() {
  Banner("Figure 6(a): kNN time by function, MSD dataset, k=10");
  const BenchWorkload msd = LoadWorkload("MSD");
  const auto knn_runs = ProfileKnnAlgorithms(msd, 10);
  PrintFunctionTable(knn_runs, {"ED", "LB_OST", "LB_SM", "LB_FNN"}, 1.0);

  Banner("Figure 6(b): k-means time by function, NUS-WIDE dataset, k=64");
  const BenchWorkload nus = LoadWorkload("NUS-WIDE");
  // Per-iteration numbers: profiles are whole-run, so scale the wall back
  // up to whole-run for consistent percentages.
  const auto kmeans_runs = ProfileKmeansAlgorithms(nus, 64, 3);
  PrintFunctionTable(kmeans_runs, {"ED", "bound update", "update"},
                     3.0);

  std::cout << "\nPaper reference: ED dominates Standard; bound functions "
               "take 72-86% for OST/SM/FNN; ED takes 52-96% of k-means "
               "iterations.\n";
}

}  // namespace
}  // namespace bench
}  // namespace pimine

int main() {
  pimine::bench::Run();
  return 0;
}
