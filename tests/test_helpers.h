#ifndef PIMINE_TESTS_TEST_HELPERS_H_
#define PIMINE_TESTS_TEST_HELPERS_H_

#include <vector>

#include "data/matrix.h"
#include "util/random.h"

namespace pimine {
namespace testing_util {

/// Random matrix with values in [0, 1] (already "normalized").
inline FloatMatrix RandomUnitMatrix(size_t rows, size_t cols, uint64_t seed) {
  FloatMatrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (float& v : m.mutable_row(i)) v = rng.NextFloat();
  }
  return m;
}

/// Random vector with values in [0, 1].
inline std::vector<float> RandomUnitVector(size_t dims, uint64_t seed) {
  std::vector<float> v(dims);
  Rng rng(seed);
  for (float& x : v) x = rng.NextFloat();
  return v;
}

}  // namespace testing_util
}  // namespace pimine

#endif  // PIMINE_TESTS_TEST_HELPERS_H_
