// The telemetry determinism contract of the live telemetry plane
// (DESIGN.md section 11): replaying one recorded trace produces
// byte-identical `timeseries.json` and sampled `events.jsonl` documents
// for EVERY scheduler_threads x shards combination, because the replay
// plane is clocked by the virtual clock and fed exclusively from the
// deterministic single-threaded accounting pass. Run under TSan in CI
// alongside the serve determinism tests.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "serve/serve_options.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "test_helpers.h"

namespace pimine {
namespace serve {
namespace {

using testing_util::RandomUnitMatrix;

constexpr size_t kObjects = 220;
constexpr size_t kDims = 24;
constexpr size_t kQueries = 40;

const FloatMatrix& Data() {
  static const FloatMatrix* data =
      new FloatMatrix(RandomUnitMatrix(kObjects, kDims, 7));
  return *data;
}

const FloatMatrix& Queries() {
  static const FloatMatrix* queries =
      new FloatMatrix(RandomUnitMatrix(kQueries, kDims, 11));
  return *queries;
}

ArrivalTrace TestTrace() {
  WorkloadSpec spec;
  spec.num_requests = 96;
  spec.offered_qps = 3e6;  // hot enough that batches actually coalesce.
  spec.tenant_share = {0.7, 0.3};
  spec.num_query_rows = kQueries;
  spec.seed = 99;
  auto trace = GeneratePoissonTrace(spec);
  EXPECT_TRUE(trace.ok());
  return *trace;
}

/// Replays the canonical trace under the given parallelism geometry and
/// returns the two telemetry documents.
struct TelemetryDocs {
  std::string timeseries;
  std::string events;
};

TelemetryDocs ReplayTelemetry(int scheduler_threads, int shards) {
  EngineOptions engine_options;
  engine_options.pim_config.num_crossbars = 4096;
  engine_options.shard.shards = shards;
  ServeOptions serve_options;
  serve_options.max_batch = 8;
  serve_options.max_wait_ns = 2000;
  serve_options.queue_capacity = 24;  // small: forces some rejections.
  serve_options.k = 5;
  serve_options.exec.device_batch = 4;
  serve_options.scheduler_threads = scheduler_threads;
  serve_options.deadline_ns = 40000;  // some misses feed the SLO series.
  serve_options.tenants = {{"gold", 3}, {"free", 1}};
  serve_options.ts_window_ns = 10000;
  serve_options.ts_windows = 32;
  serve_options.slo_budget = 0.05;
  serve_options.event_sample_rate = 0.5;
  serve_options.event_seed = 2024;
  serve_options.event_capacity = 64;  // smaller than the trace: ring rolls.
  auto server = PimServer::Build(Data(), Distance::kEuclidean, engine_options,
                                 serve_options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  auto output = (*server)->Replay(TestTrace(), Queries());
  EXPECT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_GT(output->stats.served, 0u);
  return {output->timeseries_json, output->events_jsonl};
}

TEST(TimeSeriesDeterminismTest, ByteIdenticalAcrossThreadsAndShards) {
  const TelemetryDocs baseline = ReplayTelemetry(1, 1);
  ASSERT_FALSE(baseline.timeseries.empty());
  // Sampling at 0.5 over 96 queries keeps some and drops some.
  ASSERT_FALSE(baseline.events.empty());
  EXPECT_NE(baseline.timeseries.find("\"pimine.obs.timeseries.v1\""),
            std::string::npos);
  EXPECT_NE(baseline.timeseries.find("\"slo\""), std::string::npos);
  for (const int threads : {1, 2, 4}) {
    for (const int shards : {1, 4}) {
      const TelemetryDocs docs = ReplayTelemetry(threads, shards);
      EXPECT_EQ(docs.timeseries, baseline.timeseries)
          << "timeseries.json diverged at scheduler_threads=" << threads
          << " shards=" << shards;
      EXPECT_EQ(docs.events, baseline.events)
          << "events.jsonl diverged at scheduler_threads=" << threads
          << " shards=" << shards;
    }
  }
}

TEST(TimeSeriesDeterminismTest, RepeatedReplayOnOneServerIsIdentical) {
  EngineOptions engine_options;
  engine_options.pim_config.num_crossbars = 4096;
  ServeOptions serve_options;
  serve_options.max_batch = 8;
  serve_options.k = 5;
  serve_options.exec.device_batch = 4;
  serve_options.tenants = {{"gold", 3}, {"free", 1}};
  serve_options.event_sample_rate = 1.0;
  auto server = PimServer::Build(Data(), Distance::kEuclidean, engine_options,
                                 serve_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const ArrivalTrace trace = TestTrace();
  auto first = (*server)->Replay(trace, Queries());
  ASSERT_TRUE(first.ok());
  auto second = (*server)->Replay(trace, Queries());
  ASSERT_TRUE(second.ok());
  // A replay's telemetry is a pure function of (trace, options): back-to-back
  // replays on one server do not leak state into each other's documents.
  EXPECT_EQ(first->timeseries_json, second->timeseries_json);
  EXPECT_EQ(first->events_jsonl, second->events_jsonl);
  // Full sampling records one event line per trace request.
  size_t lines = 0;
  for (const char c : first->events_jsonl) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, std::min<size_t>(trace.events.size(),
                                    serve_options.event_capacity));
}

}  // namespace
}  // namespace serve
}  // namespace pimine
