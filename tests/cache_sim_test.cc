#include "sim/cache_sim.h"

#include <gtest/gtest.h>

#include "sim/cost_model.h"

namespace pimine {
namespace {

PlatformConfig TinyCaches() {
  PlatformConfig config;
  config.l1_bytes = 1024;       // 2 sets x 8 ways x 64B.
  config.l2_bytes = 4096;
  config.l3_bytes = 16384;
  return config;
}

TEST(CacheSimTest, ColdMissThenHit) {
  CacheSimulator sim(TinyCaches());
  EXPECT_EQ(sim.Access(0), CacheLevel::kMemory);
  EXPECT_EQ(sim.Access(0), CacheLevel::kL1);
  EXPECT_EQ(sim.Access(32), CacheLevel::kL1);  // same line.
  EXPECT_EQ(sim.Access(64), CacheLevel::kMemory);  // next line.
  EXPECT_EQ(sim.stats().accesses, 4u);
  EXPECT_EQ(sim.stats().memory_accesses, 2u);
  EXPECT_EQ(sim.stats().hits[0], 2u);
}

TEST(CacheSimTest, LruEvictionWithinSet) {
  PlatformConfig config = TinyCaches();
  CacheSimulator sim(config);
  // L1: 1024B / (64B * 8 ways) = 2 sets. Lines mapping to set 0 are
  // multiples of 2 lines (128B). Fill 8 ways of set 0, then one more.
  for (uint64_t i = 0; i < 8; ++i) sim.Access(i * 128);
  EXPECT_EQ(sim.Access(0), CacheLevel::kL1);  // still resident (MRU'd).
  sim.Access(8 * 128);                        // evicts LRU line (line 128).
  EXPECT_EQ(sim.Access(128), CacheLevel::kL2);  // evicted from L1, in L2.
}

TEST(CacheSimTest, WorkingSetLargerThanCacheStreams) {
  PlatformConfig config = TinyCaches();
  CacheSimulator sim(config);
  // Scan 64 KB (bigger than L3) twice: LRU defeats reuse, ~everything
  // misses on both passes.
  sim.StreamScan(0, 65536, 2);
  const double miss_ratio = sim.stats().MissRatio();
  EXPECT_GT(miss_ratio, 0.95);
}

TEST(CacheSimTest, WorkingSetFittingL3HitsOnSecondPass) {
  PlatformConfig config = TinyCaches();
  CacheSimulator sim(config);
  sim.StreamScan(0, 8192, 1);  // fits L3 (16 KB), not L2.
  const uint64_t cold_misses = sim.stats().memory_accesses;
  sim.StreamScan(0, 8192, 1);
  EXPECT_EQ(sim.stats().memory_accesses, cold_misses)
      << "second pass must be served by the hierarchy";
  EXPECT_GT(sim.stats().hits[2] + sim.stats().hits[1] + sim.stats().hits[0],
            0u);
}

TEST(CacheSimTest, MultiLineAccessTouchesAllLines) {
  CacheSimulator sim(TinyCaches());
  sim.Access(0, 256);  // 4 lines.
  EXPECT_EQ(sim.stats().accesses, 4u);
}

TEST(CacheSimTest, FlushClearsEverything) {
  CacheSimulator sim(TinyCaches());
  sim.Access(0);
  sim.Access(0);
  sim.Flush();
  EXPECT_EQ(sim.stats().accesses, 0u);
  EXPECT_EQ(sim.Access(0), CacheLevel::kMemory);
}

TEST(CacheStatsTest, ToStringContainsCounts) {
  CacheSimulator sim(TinyCaches());
  sim.Access(0);
  EXPECT_NE(sim.stats().ToString().find("mem=1"), std::string::npos);
}

TEST(TlbTest, PageReuseHitsWideScanMisses) {
  CacheSimulator sim(TinyCaches());
  // 100 accesses within one 4 KB page: a single page walk.
  for (uint64_t i = 0; i < 100; ++i) sim.Access(i * 8);
  EXPECT_EQ(sim.stats().tlb_misses, 1u);

  sim.Flush();
  // Touch 200 distinct pages (64-entry TLB): every page misses cold, and a
  // second sweep misses again (LRU defeated by the wide stride).
  for (uint64_t pass = 0; pass < 2; ++pass) {
    for (uint64_t p = 0; p < 200; ++p) sim.Access(p * 4096);
  }
  EXPECT_EQ(sim.stats().tlb_misses, 400u);
}

TEST(TlbTest, MissesRaiseModeledStall) {
  const HostCostModel model;
  TrafficCounters counters;
  CacheStats no_tlb;
  no_tlb.accesses = 1000;
  no_tlb.hits[0] = 1000;
  CacheStats with_tlb = no_tlb;
  with_tlb.tlb_misses = 500;
  EXPECT_GT(model.EstimateBreakdownFromCache(counters, with_tlb).tcache_ns,
            model.EstimateBreakdownFromCache(counters, no_tlb).tcache_ns);
}

}  // namespace
}  // namespace pimine
