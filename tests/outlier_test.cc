#include "knn/outlier.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/similarity.h"
#include "data/generator.h"
#include "test_helpers.h"

namespace pimine {
namespace {

FloatMatrix OutlierData(size_t n, size_t d, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "test";
  spec.dims = static_cast<int32_t>(d);
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 5;
  spec.cluster_std = 0.05;
  return DatasetGenerator::Generate(spec, static_cast<int64_t>(n), seed);
}

/// Reference: exact k-th NN distance per point, top-n by brute force.
std::vector<Neighbor> BruteForceOutliers(const FloatMatrix& data, int k,
                                         int n_out) {
  std::vector<Neighbor> scores;
  for (size_t i = 0; i < data.rows(); ++i) {
    std::vector<double> dists;
    for (size_t j = 0; j < data.rows(); ++j) {
      if (j == i) continue;
      dists.push_back(SquaredEuclidean(data.row(i), data.row(j)));
    }
    std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
    scores.push_back({dists[k - 1], static_cast<int32_t>(i)});
  }
  std::sort(scores.begin(), scores.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance > b.distance;
              return a.id < b.id;
            });
  scores.resize(n_out);
  return scores;
}

struct OutlierCase {
  int k;
  int num_outliers;
};

class OutlierEquivalenceTest
    : public ::testing::TestWithParam<OutlierCase> {};

TEST_P(OutlierEquivalenceTest, BaselineAndPimMatchBruteForce) {
  const auto [k, n_out] = GetParam();
  const FloatMatrix data = OutlierData(300, 24, 77);
  const std::vector<Neighbor> golden = BruteForceOutliers(data, k, n_out);

  OutlierOptions options;
  options.k = k;
  options.num_outliers = n_out;

  OrcaOutlierDetector baseline;
  auto base = baseline.Detect(data, options);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_EQ(base->outliers.size(), golden.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(base->outliers[i].id, golden[i].id) << "rank " << i;
    EXPECT_NEAR(base->outliers[i].distance, golden[i].distance, 1e-9);
  }

  OrcaPimOutlierDetector pim((EngineOptions()));
  auto accel = pim.Detect(data, options);
  ASSERT_TRUE(accel.ok()) << accel.status().ToString();
  ASSERT_EQ(accel->outliers.size(), golden.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(accel->outliers[i].id, golden[i].id) << "rank " << i;
    EXPECT_NEAR(accel->outliers[i].distance, golden[i].distance, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OutlierEquivalenceTest,
                         ::testing::Values(OutlierCase{1, 5},
                                           OutlierCase{5, 10},
                                           OutlierCase{10, 3},
                                           OutlierCase{3, 30}));

TEST(OutlierTest, PimComputesFewerExactDistances) {
  const FloatMatrix data = OutlierData(800, 64, 9);
  OutlierOptions options;
  options.k = 5;
  options.num_outliers = 10;

  OrcaOutlierDetector baseline;
  auto base = baseline.Detect(data, options);
  ASSERT_TRUE(base.ok());

  OrcaPimOutlierDetector pim((EngineOptions()));
  auto accel = pim.Detect(data, options);
  ASSERT_TRUE(accel.ok());

  EXPECT_LT(accel->stats.exact_count, base->stats.exact_count / 4);
  EXPECT_GT(accel->stats.pim_ns, 0.0);
}

TEST(OutlierTest, PlantedOutlierIsFound) {
  FloatMatrix data = OutlierData(200, 16, 3);
  // Plant an extreme point far from every cluster (clusters live around
  // [0.2, 0.8] with tiny spread).
  auto row = data.mutable_row(0);
  for (float& v : row) v = 1.0f;
  OutlierOptions options;
  options.k = 3;
  options.num_outliers = 1;
  OrcaOutlierDetector detector;
  auto result = detector.Detect(data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outliers[0].id, 0);
}

TEST(OutlierTest, Validation) {
  const FloatMatrix data = OutlierData(20, 8, 1);
  OrcaOutlierDetector detector;
  OutlierOptions options;
  options.k = 0;
  EXPECT_FALSE(detector.Detect(data, options).ok());
  options.k = 20;  // k must be < n.
  EXPECT_FALSE(detector.Detect(data, options).ok());
  options.k = 3;
  options.num_outliers = 0;
  EXPECT_FALSE(detector.Detect(data, options).ok());
  options.num_outliers = 21;
  EXPECT_FALSE(detector.Detect(data, options).ok());
  options.num_outliers = 5;
  EXPECT_FALSE(detector.Detect(FloatMatrix(), options).ok());
}

}  // namespace
}  // namespace pimine
