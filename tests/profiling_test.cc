#include "profiling/function_profiler.h"

#include <gtest/gtest.h>

#include "profiling/modeled_time.h"
#include "profiling/run_stats.h"

namespace pimine {
namespace {

TEST(FunctionProfilerTest, AccumulatesPerTag) {
  FunctionProfiler profiler;
  profiler.Add("ED", 100);
  profiler.Add("LB_FNN", 50);
  profiler.Add("ED", 25);
  EXPECT_EQ(profiler.Get("ED"), 125);
  EXPECT_EQ(profiler.Get("LB_FNN"), 50);
  EXPECT_EQ(profiler.Get("missing"), 0);
  EXPECT_EQ(profiler.TotalAttributedNs(), 175);
  ASSERT_EQ(profiler.entries().size(), 2u);
  EXPECT_EQ(profiler.entries()[0].first, "ED");  // first-use order.
}

TEST(FunctionProfilerTest, MergeAndReset) {
  FunctionProfiler a;
  a.Add("ED", 10);
  FunctionProfiler b;
  b.Add("ED", 5);
  b.Add("update", 7);
  a.Merge(b);
  EXPECT_EQ(a.Get("ED"), 15);
  EXPECT_EQ(a.Get("update"), 7);
  a.Reset();
  EXPECT_EQ(a.TotalAttributedNs(), 0);
}

TEST(FunctionProfilerTest, MergeIntoResetProfilerAdoptsOtherOrder) {
  FunctionProfiler a;
  a.Add("ED", 10);
  a.Add("update", 3);
  a.Reset();
  EXPECT_EQ(a.TotalAttributedNs(), 0);
  EXPECT_EQ(a.Get("ED"), 0);

  // Post-reset the profiler behaves like a fresh one: the merge adopts b's
  // tags in b's first-use order, with no trace of the pre-reset state.
  FunctionProfiler b;
  b.Add("LB_FNN", 5);
  b.Add("ED", 2);
  a.Merge(b);
  EXPECT_EQ(a.Get("LB_FNN"), 5);
  EXPECT_EQ(a.Get("ED"), 2);
  EXPECT_EQ(a.Get("update"), 0);
  EXPECT_EQ(a.TotalAttributedNs(), 7);
  ASSERT_EQ(a.entries().size(), 2u);
  EXPECT_EQ(a.entries()[0].first, "LB_FNN");
  EXPECT_EQ(a.entries()[1].first, "ED");
}

TEST(ScopedFunctionTimerTest, ChargesElapsedTime) {
  FunctionProfiler profiler;
  {
    ScopedFunctionTimer timer(&profiler, "work");
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x = x + 1.0;
  }
  EXPECT_GT(profiler.Get("work"), 0);
}

TEST(ScopedFunctionTimerTest, NullProfilerIsNoOp) {
  // Call sites with optional profiling pass nullptr; must not crash.
  { ScopedFunctionTimer timer(nullptr, "work"); }
  SUCCEED();
}

TEST(ModeledTimeTest, ComposesHostAndPim) {
  RunStats stats;
  stats.traffic.arithmetic_ops = 1000000;
  stats.traffic.bytes_from_memory = 1 << 22;
  stats.footprint_bytes = 1ull << 30;
  stats.pim_ns = 5000.0;
  const HostCostModel model;
  const ModeledTime time = ComposeModeledTime(stats, model);
  EXPECT_GT(time.host.total_ns(), 0.0);
  EXPECT_DOUBLE_EQ(time.pim_ns, 5000.0);
  EXPECT_NEAR(time.total_ns(), time.host.total_ns() + 5000.0, 1e-9);
  EXPECT_NEAR(time.total_ms(), time.total_ns() / 1e6, 1e-12);
  EXPECT_NE(time.ToString().find("pim="), std::string::npos);
}

TEST(PimOracleTest, Equation2) {
  // Eq. 2: oracle = total - offloadable, floored at 0.
  EXPECT_DOUBLE_EQ(PimOracleNs(100.0, 80.0), 20.0);
  EXPECT_DOUBLE_EQ(PimOracleNs(100.0, 120.0), 0.0);
  EXPECT_DOUBLE_EQ(PimOracleNs(0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace pimine
