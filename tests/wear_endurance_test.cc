// Write-endurance / wear model: per-slot program accounting sums exactly
// (base programs + delta appends + compaction rewrites), worn slots hand
// off to the stuck-at fault process and the checksum detection/recovery
// ladder keeps results bit-exact, and FaultStats stays balanced
// (injected == detected + escaped) under mutation + compaction.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "data/matrix.h"
#include "knn/knn_common.h"
#include "knn/standard_pim_knn.h"
#include "pim/fault_model.h"
#include "pim/pim_device.h"
#include "test_helpers.h"
#include "util/random.h"

namespace pimine {
namespace {

using testing_util::RandomUnitMatrix;

IntMatrix RandomIntMatrix(size_t rows, size_t cols, uint32_t limit,
                          uint64_t seed) {
  IntMatrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (int32_t& v : m.mutable_row(i)) {
      v = static_cast<int32_t>(rng.NextBounded(limit));
    }
  }
  return m;
}

FaultConfig WearConfig(uint64_t endurance_limit, double wear_stuck_rate) {
  FaultConfig fault;
  fault.endurance_limit = endurance_limit;
  fault.wear_stuck_rate = wear_stuck_rate;
  return fault;
}

// ---------------------------------------------------------------------------
// Endurance counter accounting
// ---------------------------------------------------------------------------

TEST(WearEnduranceTest, ProgramAccountingSumsExactly) {
  // Generous limit: nothing wears; this test is pure accounting.
  PimDevice device(PimConfig(), WearConfig(100, 0.5));
  const IntMatrix base = RandomIntMatrix(10, 8, 100, 1);
  ASSERT_TRUE(device.ProgramDataset(base).ok());
  EXPECT_EQ(device.StatsSnapshot().row_writes, 10u);

  const IntMatrix delta = RandomIntMatrix(4, 8, 100, 2);
  ASSERT_TRUE(device.ProgramDelta(delta).ok());
  EXPECT_EQ(device.StatsSnapshot().row_writes, 14u);
  EXPECT_EQ(device.delta_rows(), 4u);

  // Tombstones are metadata: no cell is written.
  ASSERT_TRUE(device.Tombstone(3).ok());
  ASSERT_TRUE(device.Tombstone(11).ok());
  EXPECT_EQ(device.StatsSnapshot().row_writes, 14u);

  std::vector<uint32_t> live;
  for (uint32_t v = 0; v < 14; ++v) {
    if (v != 3 && v != 11) live.push_back(v);
  }
  ASSERT_TRUE(device.CompactRows(live).ok());
  const PimDeviceStats stats = device.StatsSnapshot();
  // row_writes == base + delta + compaction rewrites, exactly.
  EXPECT_EQ(stats.compacted_rows, 12u);
  EXPECT_EQ(stats.row_writes, 10u + 4u + 12u);

  // The per-slot counters decompose the same total: slots 0..11 were
  // written once by the initial program/append and once by the compaction;
  // slots 12..13 only by the initial pass.
  uint64_t per_slot_sum = 0;
  for (size_t v = 0; v < 14; ++v) per_slot_sum += device.RowWrites(v);
  EXPECT_EQ(per_slot_sum, stats.row_writes);
  for (size_t v = 0; v < 12; ++v) EXPECT_EQ(device.RowWrites(v), 2u) << v;
  for (size_t v = 12; v < 14; ++v) EXPECT_EQ(device.RowWrites(v), 1u) << v;
  EXPECT_EQ(stats.worn_rows, 0u);
}

TEST(WearEnduranceTest, ReprogramChargesEverySlotOnce) {
  PimDevice device(PimConfig(), WearConfig(100, 0.5));
  const IntMatrix data = RandomIntMatrix(6, 8, 100, 3);
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  ASSERT_TRUE(device.ReprogramDataset(data).ok());
  EXPECT_EQ(device.StatsSnapshot().row_writes, 12u);
  for (size_t v = 0; v < 6; ++v) EXPECT_EQ(device.RowWrites(v), 2u);
}

TEST(WearEnduranceTest, WearCountersSurviveCompaction) {
  // Physical slots keep their write history across compaction — the cells
  // are the same hardware even though the rows stored in them change.
  PimDevice device(PimConfig(), WearConfig(2, 1.0));
  const IntMatrix base = RandomIntMatrix(8, 8, 100, 4);
  ASSERT_TRUE(device.ProgramDataset(base).ok());
  ASSERT_TRUE(device.Tombstone(0).ok());
  std::vector<uint32_t> live;
  for (uint32_t v = 1; v < 8; ++v) live.push_back(v);
  ASSERT_TRUE(device.CompactRows(live).ok());  // slots 0..6 now at 2 writes.
  ASSERT_TRUE(device.Tombstone(0).ok());
  live.clear();
  for (uint32_t v = 1; v < 7; ++v) live.push_back(v);
  ASSERT_TRUE(device.CompactRows(live).ok());  // slots 0..5 now at 3 > 2.
  const PimDeviceStats stats = device.StatsSnapshot();
  EXPECT_EQ(stats.row_writes, 8u + 7u + 6u);
  EXPECT_EQ(stats.worn_rows, 6u);
  for (size_t v = 0; v < 6; ++v) EXPECT_TRUE(device.RowWorn(v)) << v;
  EXPECT_FALSE(device.RowWorn(6));
  EXPECT_FALSE(device.RowWorn(7));
}

// ---------------------------------------------------------------------------
// Worn slots -> stuck-at cells -> detection/recovery ladder
// ---------------------------------------------------------------------------

TEST(WearEnduranceTest, WornSlotsHandOffToRecoveryLadder) {
  // endurance_limit=1 with wear_stuck_rate=1: a single reprogram wears
  // every slot and sticks every cell. The checksum ladder must detect the
  // corruption and recover every dot product to the exact integer result.
  PimConfig config;
  RecoveryPolicy recovery;  // defaults: retry -> remap -> host-exact.
  PimDevice worn(config, WearConfig(1, 1.0), recovery);
  PimDevice clean(config);
  const IntMatrix data = RandomIntMatrix(24, 8, 100, 5);
  ASSERT_TRUE(worn.ProgramDataset(data).ok());
  ASSERT_TRUE(worn.ReprogramDataset(data).ok());  // 2 writes > limit 1.
  ASSERT_TRUE(clean.ProgramDataset(data).ok());
  EXPECT_EQ(worn.StatsSnapshot().worn_rows, 24u);

  Rng rng(6);
  std::vector<int32_t> query(8);
  for (auto& v : query) v = static_cast<int32_t>(rng.NextBounded(100));
  std::vector<uint64_t> got, want;
  ASSERT_TRUE(worn.DotProductAll(query, &got).ok());
  ASSERT_TRUE(clean.DotProductAll(query, &want).ok());
  EXPECT_EQ(got, want);  // the ladder recovered every value exactly.

  const FaultStats fault = worn.StatsSnapshot().fault;
  EXPECT_GT(fault.injected, 0u);
  EXPECT_GT(fault.detected, 0u);
  // Stuck-at faults are permanent: retries alone cannot clear them, so the
  // ladder must have climbed past the retry rung.
  EXPECT_GT(fault.retries, 0u);
  EXPECT_TRUE(fault.remapped_rows > 0 || fault.escalated_to_host > 0);
  EXPECT_EQ(fault.injected, fault.detected + fault.escaped);
  EXPECT_GT(fault.recovery_ns, 0.0);
}

TEST(WearEnduranceTest, BelowLimitSlotsDrawNoWearFaults) {
  // One program per slot stays within endurance_limit=1 (worn is strictly
  // "more than limit"), so a wear-only config injects nothing.
  PimDevice device(PimConfig(), WearConfig(1, 1.0), RecoveryPolicy());
  const IntMatrix data = RandomIntMatrix(16, 8, 100, 7);
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  EXPECT_EQ(device.StatsSnapshot().worn_rows, 0u);
  Rng rng(8);
  std::vector<int32_t> query(8);
  for (auto& v : query) v = static_cast<int32_t>(rng.NextBounded(100));
  std::vector<uint64_t> out;
  ASSERT_TRUE(device.DotProductAll(query, &out).ok());
  EXPECT_EQ(device.StatsSnapshot().fault.injected, 0u);
}

// ---------------------------------------------------------------------------
// Engine-level: mutation + compaction under wear stays exact and balanced
// ---------------------------------------------------------------------------

TEST(WearEnduranceTest, MutationUnderWearStaysExactAndBalanced) {
  const FloatMatrix base = RandomUnitMatrix(60, 12, 11);
  const FloatMatrix extra = RandomUnitMatrix(12, 12, 12);
  const FloatMatrix queries = RandomUnitMatrix(5, 12, 13);

  // Wear kicks in at the first compaction rewrite (limit 1); half the
  // cells of a worn slot stick.
  EngineOptions worn_options;
  worn_options.fault_config = WearConfig(1, 0.5);
  EngineOptions clean_options;

  const auto mutate = [&](StandardPimKnn* knn) {
    ASSERT_TRUE(knn->OnInsert(extra).ok());
    std::vector<uint32_t> deleted;
    for (uint32_t v = 0; v < 10; ++v) deleted.push_back(v * 3);
    ASSERT_TRUE(knn->OnDelete(deleted).ok());
    std::vector<uint32_t> live;
    for (uint32_t v = 0; v < 72; ++v) {
      if (v % 3 != 0 || v >= 30) live.push_back(v);
    }
    ASSERT_TRUE(knn->OnCompact(live).ok());
  };

  StandardPimKnn worn(Distance::kEuclidean, worn_options);
  StandardPimKnn clean(Distance::kEuclidean, clean_options);
  FloatMatrix worn_data = base;
  FloatMatrix clean_data = base;
  ASSERT_TRUE(worn.Prepare(worn_data).ok());
  ASSERT_TRUE(clean.Prepare(clean_data).ok());
  mutate(&worn);
  worn_data.AppendRows(extra);
  std::vector<uint32_t> live;
  for (uint32_t v = 0; v < 72; ++v) {
    if (v % 3 != 0 || v >= 30) live.push_back(v);
  }
  worn_data.KeepRows(live);
  mutate(&clean);
  clean_data.AppendRows(extra);
  clean_data.KeepRows(live);

  auto worn_result = worn.Search(queries, 5);
  auto clean_result = clean.Search(queries, 5);
  ASSERT_TRUE(worn_result.ok()) << worn_result.status().ToString();
  ASSERT_TRUE(clean_result.ok());
  // The recovery ladder makes the worn fleet's answers bit-identical to
  // the fault-free fleet's.
  EXPECT_EQ(worn_result->neighbors, clean_result->neighbors);

  const FaultStats fault = worn_result->stats.fault;
  EXPECT_GT(fault.injected, 0u);
  EXPECT_EQ(fault.injected, fault.detected + fault.escaped);
  EXPECT_EQ(fault.escaped, 0u);  // host-exact verification catches all.

  // Wear accounting flows into the fleet stats: 60 base + 12 delta + 62
  // compaction rewrites, and the compacted slots (2 writes > limit 1) are
  // worn.
  EXPECT_EQ(worn_result->stats.fleet.row_writes, 60u + 12u + 62u);
  EXPECT_EQ(worn_result->stats.fleet.worn_rows, 62u);
  EXPECT_EQ(clean_result->stats.fleet.worn_rows, 0u);
}

}  // namespace
}  // namespace pimine
