#include "sim/cost_model.h"

#include <gtest/gtest.h>

#include "sim/platform.h"
#include "sim/traffic.h"

namespace pimine {
namespace {

TEST(PlatformTest, Table5Values) {
  const PlatformConfig& config = DefaultPlatform();
  EXPECT_DOUBLE_EQ(config.reram_read_ns, 29.31);
  EXPECT_DOUBLE_EQ(config.reram_write_ns, 50.88);
  EXPECT_EQ(config.l3_bytes, 20ull * 1024 * 1024);
  EXPECT_DOUBLE_EQ(config.internal_bus_gbps, 50.0);
  EXPECT_NE(FormatPlatformConfig(config).find("29.31"), std::string::npos);
}

TEST(PlatformTest, Table1Rows) {
  const auto& rows = NvmTable();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "DRAM");
  EXPECT_FALSE(rows[0].non_volatile);
  EXPECT_EQ(rows[1].name, "ReRAM");
  EXPECT_TRUE(rows[1].non_volatile);
  EXPECT_DOUBLE_EQ(rows[1].write_latency_ns_low, 50.0);
  EXPECT_NE(FormatNvmTable().find("ReRAM"), std::string::npos);
}

TEST(CostModelTest, BreakdownComponentsScaleWithCounters) {
  const HostCostModel model;
  TrafficCounters counters;
  counters.arithmetic_ops = 1000000;
  counters.bytes_from_memory = 1 << 20;
  counters.long_ops = 1000;
  counters.branches = 100000;

  const auto small_footprint = model.EstimateBreakdown(counters, 16 * 1024);
  const auto big_footprint =
      model.EstimateBreakdown(counters, 1ull << 30);
  EXPECT_GT(small_footprint.tc_ns, 0.0);
  EXPECT_GT(small_footprint.talu_ns, 0.0);
  EXPECT_GT(small_footprint.tbr_ns, 0.0);
  EXPECT_GT(small_footprint.tfe_ns, 0.0);
  // A working set beyond L3 stalls much more than an L1-resident one.
  EXPECT_GT(big_footprint.tcache_ns, small_footprint.tcache_ns);
  EXPECT_GT(big_footprint.total_ns(), big_footprint.tcache_ns);
}

TEST(CostModelTest, Equation1Composition) {
  const HostCostModel model;
  TrafficCounters counters;
  counters.arithmetic_ops = 100;
  const auto b = model.EstimateBreakdown(counters, 1024);
  EXPECT_NEAR(b.total_ns(),
              b.tc_ns + b.tcache_ns + b.talu_ns + b.tbr_ns + b.tfe_ns, 1e-9);
}

TEST(CostModelTest, MemoryStallDominatesForScanWorkloads) {
  // The Fig. 5 observation: a d-dimensional scan is ~3 arithmetic ops per
  // 4-byte element; with a DRAM-resident working set the stall share must
  // dominate (65-83% in the paper).
  const HostCostModel model;
  TrafficCounters counters;
  const uint64_t elements = 100'000'000;
  counters.bytes_from_memory = elements * 4;
  counters.arithmetic_ops = elements * 3;
  counters.branches = elements / 64;
  const auto b = model.EstimateBreakdown(counters, 3ull << 30);
  EXPECT_GT(b.tcache_ns / b.total_ns(), 0.5);
}

TEST(CostModelTest, TransferHelpers) {
  const HostCostModel model;
  EXPECT_GT(model.DramStreamNs(1 << 20), 0.0);
  EXPECT_GT(model.ReramWriteNs(1 << 20), model.DramWriteNs(1 << 20))
      << "ReRAM writes are slower than DRAM writes (Table 1)";
  EXPECT_GT(model.BufferLoadNs(1000, 64), 0.0);
  EXPECT_DOUBLE_EQ(model.BufferLoadNs(0, 64), 0.0);
}

TEST(CostModelTest, CacheSimVariantUsesMeasuredHits) {
  const HostCostModel model;
  TrafficCounters counters;
  counters.arithmetic_ops = 1000;
  CacheStats cold;
  cold.accesses = 1000;
  cold.memory_accesses = 1000;
  CacheStats warm;
  warm.accesses = 1000;
  warm.hits[0] = 1000;
  const auto cold_b = model.EstimateBreakdownFromCache(counters, cold);
  const auto warm_b = model.EstimateBreakdownFromCache(counters, warm);
  EXPECT_GT(cold_b.tcache_ns, warm_b.tcache_ns);
  EXPECT_DOUBLE_EQ(warm_b.tcache_ns, 0.0);
}

TEST(TrafficCountersTest, ArithmeticAndScopes) {
  traffic::Reset();
  traffic::CountRead(100);
  traffic::CountArithmetic(5);
  TrafficScope scope;
  traffic::CountRead(50);
  traffic::CountWrite(7);
  traffic::CountLongOps(2);
  traffic::CountBranches(3);
  traffic::CountPimResults(4);
  const TrafficCounters delta = scope.Delta();
  EXPECT_EQ(delta.bytes_from_memory, 50u);
  EXPECT_EQ(delta.bytes_to_memory, 7u);
  EXPECT_EQ(delta.long_ops, 2u);
  EXPECT_EQ(delta.branches, 3u);
  EXPECT_EQ(delta.pim_results_loaded, 4u);
  EXPECT_EQ(delta.arithmetic_ops, 0u);
  EXPECT_EQ(traffic::Local().bytes_from_memory, 150u);

  TrafficCounters sum;
  sum += delta;
  sum += delta;
  EXPECT_EQ(sum.bytes_from_memory, 100u);
  EXPECT_NE(delta.ToString().find("read=50B"), std::string::npos);
  traffic::Reset();
  EXPECT_EQ(traffic::Local().bytes_from_memory, 0u);
}

TEST(BreakdownTest, ToStringAndAccumulate) {
  HardwareBreakdown a;
  a.tc_ns = 10;
  a.tcache_ns = 90;
  HardwareBreakdown b;
  b.tc_ns = 5;
  a += b;
  EXPECT_DOUBLE_EQ(a.tc_ns, 15.0);
  EXPECT_NE(a.ToString().find("Tcache="), std::string::npos);
}

}  // namespace
}  // namespace pimine
