// Serial vs. parallel execution must be indistinguishable except in wall
// time: identical neighbours/assignments/centers (bit-for-bit) and exactly
// equal aggregated traffic counters for every algorithm that honours an
// ExecPolicy. This is the load-bearing invariant behind DESIGN.md's
// "Host-side parallelism vs. the paper's timing model".

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "kmeans/elkan.h"
#include "kmeans/hamerly.h"
#include "kmeans/kmeans_common.h"
#include "kmeans/lloyd.h"
#include "kmeans/yinyang.h"
#include "knn/fnn_knn.h"
#include "knn/fnn_pim_knn.h"
#include "knn/knn_common.h"
#include "knn/ost_knn.h"
#include "knn/ost_pim_knn.h"
#include "knn/sm_knn.h"
#include "knn/sm_pim_knn.h"
#include "knn/standard_knn.h"
#include "knn/standard_pim_knn.h"
#include "test_helpers.h"

namespace pimine {
namespace {

struct Workload {
  FloatMatrix data;
  FloatMatrix queries;
};

Workload MakeWorkload(size_t n, size_t d, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "test";
  spec.dims = static_cast<int32_t>(d);
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 8;
  spec.cluster_std = 0.08;
  Workload w;
  w.data = DatasetGenerator::Generate(spec, static_cast<int64_t>(n), seed);
  w.queries = DatasetGenerator::GenerateQueries(spec, w.data, 9, seed + 1);
  return w;
}

// Bit-identical, not "close": parallel runs reorder queries across workers
// but never reassociate any per-query floating-point computation.
void ExpectIdenticalKnnRuns(const KnnRunResult& serial,
                            const KnnRunResult& parallel,
                            const std::string& label) {
  ASSERT_EQ(serial.neighbors.size(), parallel.neighbors.size()) << label;
  for (size_t q = 0; q < serial.neighbors.size(); ++q) {
    ASSERT_EQ(serial.neighbors[q].size(), parallel.neighbors[q].size())
        << label << " query " << q;
    for (size_t j = 0; j < serial.neighbors[q].size(); ++j) {
      EXPECT_EQ(serial.neighbors[q][j].id, parallel.neighbors[q][j].id)
          << label << " query " << q << " rank " << j;
      EXPECT_EQ(serial.neighbors[q][j].distance,
                parallel.neighbors[q][j].distance)
          << label << " query " << q << " rank " << j;
    }
  }
  EXPECT_EQ(serial.stats.exact_count, parallel.stats.exact_count) << label;
  EXPECT_EQ(serial.stats.bound_count, parallel.stats.bound_count) << label;
  EXPECT_TRUE(serial.stats.traffic == parallel.stats.traffic)
      << label << ": aggregated traffic counters diverged";
  EXPECT_EQ(serial.stats.pim_ns, parallel.stats.pim_ns) << label;
}

struct KnnCase {
  std::string label;
  std::function<std::unique_ptr<KnnAlgorithm>()> make;
};

std::vector<KnnCase> AllKnnCases() {
  std::vector<KnnCase> cases;
  cases.push_back({"Standard/ED", [] {
                     return std::make_unique<StandardKnn>();
                   }});
  cases.push_back({"Standard/CS", [] {
                     return std::make_unique<StandardKnn>(Distance::kCosine);
                   }});
  cases.push_back({"Standard/PCC", [] {
                     return std::make_unique<StandardKnn>(Distance::kPearson);
                   }});
  cases.push_back({"SM", [] { return std::make_unique<SmKnn>(); }});
  cases.push_back({"OST", [] { return std::make_unique<OstKnn>(); }});
  cases.push_back({"FNN", [] { return std::make_unique<FnnKnn>(); }});
  cases.push_back({"StandardPIM/ED", [] {
                     return std::make_unique<StandardPimKnn>(
                         Distance::kEuclidean, EngineOptions());
                   }});
  cases.push_back({"StandardPIM/CS", [] {
                     return std::make_unique<StandardPimKnn>(
                         Distance::kCosine, EngineOptions());
                   }});
  cases.push_back({"SmPIM", [] {
                     return std::make_unique<SmPimKnn>(EngineOptions());
                   }});
  cases.push_back({"OstPIM", [] {
                     return std::make_unique<OstPimKnn>(EngineOptions());
                   }});
  cases.push_back({"FnnPIM", [] {
                     return std::make_unique<FnnPimKnn>(EngineOptions(),
                                                        /*optimize=*/true);
                   }});
  return cases;
}

TEST(ParallelDeterminismTest, KnnParallelSearchMatchesSerialExactly) {
  const Workload w = MakeWorkload(500, 48, 42);
  const int k = 8;

  for (const KnnCase& c : AllKnnCases()) {
    auto algorithm = c.make();
    ASSERT_TRUE(algorithm->Prepare(w.data).ok()) << c.label;

    auto serial = algorithm->Search(w.queries, k);
    ASSERT_TRUE(serial.ok()) << c.label;

    for (int threads : {2, 4, 8}) {
      algorithm->set_exec_policy(ExecPolicy::WithThreads(threads));
      auto parallel = algorithm->Search(w.queries, k);
      ASSERT_TRUE(parallel.ok()) << c.label;
      ExpectIdenticalKnnRuns(*serial, *parallel,
                             c.label + " x" + std::to_string(threads));
    }
  }
}

// Flipping blocked_kernels changes floating-point association (full
// distances, multi-accumulator reduction), so its results are only required
// to be *self*-consistent: serial blocked == parallel blocked, bit for bit,
// and traffic totals stay exactly those of the scalar path.
TEST(ParallelDeterminismTest, BlockedKernelsSerialMatchesParallelExactly) {
  const Workload w = MakeWorkload(400, 37, 7);  // odd d exercises tails.
  const int k = 5;

  for (Distance distance :
       {Distance::kEuclidean, Distance::kCosine, Distance::kPearson}) {
    StandardKnn algorithm(distance);
    ASSERT_TRUE(algorithm.Prepare(w.data).ok());

    auto scalar = algorithm.Search(w.queries, k);
    ASSERT_TRUE(scalar.ok());

    ExecPolicy blocked;
    blocked.blocked_kernels = true;
    blocked.block_size = 96;
    algorithm.set_exec_policy(blocked);
    auto serial_blocked = algorithm.Search(w.queries, k);
    ASSERT_TRUE(serial_blocked.ok());

    blocked.num_threads = 4;
    algorithm.set_exec_policy(blocked);
    auto parallel_blocked = algorithm.Search(w.queries, k);
    ASSERT_TRUE(parallel_blocked.ok());

    const std::string label =
        "blocked distance=" + std::to_string(static_cast<int>(distance));
    ExpectIdenticalKnnRuns(*serial_blocked, *parallel_blocked, label);

    // Same neighbour ids as the scalar path (distances may differ in the
    // last ulp) and, for ED where the scalar path early-abandons, at least
    // as much modeled read traffic.
    for (size_t q = 0; q < scalar->neighbors.size(); ++q) {
      for (size_t j = 0; j < scalar->neighbors[q].size(); ++j) {
        EXPECT_EQ(scalar->neighbors[q][j].id,
                  serial_blocked->neighbors[q][j].id)
            << label << " query " << q << " rank " << j;
      }
    }
    if (distance == Distance::kEuclidean) {
      EXPECT_GE(serial_blocked->stats.traffic.bytes_from_memory,
                scalar->stats.traffic.bytes_from_memory)
          << label;
    } else {
      EXPECT_TRUE(serial_blocked->stats.traffic == scalar->stats.traffic)
          << label << ": full-scan similarity traffic must not change";
    }
  }
}

void ExpectIdenticalKmeansRuns(const KmeansResult& serial,
                               const KmeansResult& parallel,
                               const std::string& label) {
  EXPECT_EQ(serial.iterations, parallel.iterations) << label;
  ASSERT_EQ(serial.assignments.size(), parallel.assignments.size()) << label;
  for (size_t i = 0; i < serial.assignments.size(); ++i) {
    ASSERT_EQ(serial.assignments[i], parallel.assignments[i])
        << label << " point " << i;
  }
  ASSERT_EQ(serial.centers.rows(), parallel.centers.rows()) << label;
  for (size_t c = 0; c < serial.centers.rows(); ++c) {
    const auto a = serial.centers.row(c);
    const auto b = parallel.centers.row(c);
    for (size_t j = 0; j < a.size(); ++j) {
      ASSERT_EQ(a[j], b[j]) << label << " center " << c << " dim " << j;
    }
  }
  EXPECT_EQ(serial.inertia, parallel.inertia) << label;
  EXPECT_EQ(serial.stats.exact_count, parallel.stats.exact_count) << label;
  EXPECT_EQ(serial.stats.bound_count, parallel.stats.bound_count) << label;
  EXPECT_TRUE(serial.stats.traffic == parallel.stats.traffic)
      << label << ": aggregated traffic counters diverged";
  EXPECT_EQ(serial.stats.pim_ns, parallel.stats.pim_ns) << label;
}

struct KmeansCase {
  std::string label;
  std::function<std::unique_ptr<KmeansAlgorithm>()> make;
};

std::vector<KmeansCase> AllKmeansCases() {
  std::vector<KmeansCase> cases;
  cases.push_back({"Lloyd", [] { return std::make_unique<LloydKmeans>(); }});
  cases.push_back({"Elkan", [] { return std::make_unique<ElkanKmeans>(); }});
  cases.push_back(
      {"Hamerly", [] { return std::make_unique<HamerlyKmeans>(); }});
  cases.push_back(
      {"Yinyang", [] { return std::make_unique<YinyangKmeans>(); }});
  return cases;
}

TEST(ParallelDeterminismTest, KmeansParallelAssignMatchesSerialExactly) {
  const Workload w = MakeWorkload(420, 24, 17);

  for (bool use_pim : {false, true}) {
    for (const KmeansCase& c : AllKmeansCases()) {
      KmeansOptions options;
      options.k = 12;
      options.max_iterations = 5;
      options.seed = 123;
      options.use_pim = use_pim;

      auto algorithm = c.make();
      auto serial = algorithm->Run(w.data, options);
      ASSERT_TRUE(serial.ok()) << c.label;

      options.exec = ExecPolicy::WithThreads(4);
      options.exec.block_size = 64;  // several chunks per pass at n=420.
      auto parallel = algorithm->Run(w.data, options);
      ASSERT_TRUE(parallel.ok()) << c.label;

      ExpectIdenticalKmeansRuns(
          *serial, *parallel,
          c.label + (use_pim ? "+PIM" : "") + " x4");
    }
  }
}

// Batched device operations compose with host threading: for every PIM kNN
// algorithm, any (device_batch, num_threads) combination must reproduce the
// serial per-query run bit for bit, including the serial-equivalent modeled
// PIM time. 33 queries make device_batch=32 exercise a trailing partial
// batch and device_batch=7 a mid-chunk re-split.
TEST(ParallelDeterminismTest, DeviceBatchMatchesSerialExactly) {
  DatasetSpec spec;
  spec.name = "test";
  spec.dims = 32;
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 8;
  spec.cluster_std = 0.08;
  const FloatMatrix data = DatasetGenerator::Generate(spec, 400, 97);
  const FloatMatrix queries =
      DatasetGenerator::GenerateQueries(spec, data, 33, 98);
  const int k = 6;

  for (const KnnCase& c : AllKnnCases()) {
    if (c.label.find("PIM") == std::string::npos) continue;
    auto algorithm = c.make();
    ASSERT_TRUE(algorithm->Prepare(data).ok()) << c.label;

    auto serial = algorithm->Search(queries, k);
    ASSERT_TRUE(serial.ok()) << c.label;

    for (size_t device_batch : {size_t{7}, size_t{32}}) {
      for (int threads : {1, 4}) {
        ExecPolicy policy = ExecPolicy::WithThreads(threads);
        policy.device_batch = device_batch;
        algorithm->set_exec_policy(policy);
        auto batched = algorithm->Search(queries, k);
        ASSERT_TRUE(batched.ok()) << c.label;
        ExpectIdenticalKnnRuns(*serial, *batched,
                               c.label + " batch" +
                                   std::to_string(device_batch) + " x" +
                                   std::to_string(threads));
      }
    }
  }
}

// Same for the k-means PIM assign filter: grouped center batches must not
// change assignments, centers, or any modeled counter.
TEST(ParallelDeterminismTest, KmeansDeviceBatchMatchesSerialExactly) {
  const Workload w = MakeWorkload(420, 24, 17);
  KmeansOptions options;
  options.k = 12;  // device_batch=7 leaves a trailing group of 5 centers.
  options.max_iterations = 5;
  options.seed = 123;
  options.use_pim = true;

  for (const KmeansCase& c : AllKmeansCases()) {
    auto algorithm = c.make();
    auto serial = algorithm->Run(w.data, options);
    ASSERT_TRUE(serial.ok()) << c.label;

    KmeansOptions batched_options = options;
    batched_options.exec.device_batch = 7;
    auto batched = algorithm->Run(w.data, batched_options);
    ASSERT_TRUE(batched.ok()) << c.label;
    ExpectIdenticalKmeansRuns(*serial, *batched, c.label + " batch7");
  }
}

std::vector<KnnCase> PimKnnCasesWithShards(int shards) {
  EngineOptions options;
  options.shard.shards = shards;
  std::vector<KnnCase> cases;
  cases.push_back({"StandardPIM/ED", [options] {
                     return std::make_unique<StandardPimKnn>(
                         Distance::kEuclidean, options);
                   }});
  cases.push_back({"StandardPIM/CS", [options] {
                     return std::make_unique<StandardPimKnn>(
                         Distance::kCosine, options);
                   }});
  cases.push_back({"SmPIM", [options] {
                     return std::make_unique<SmPimKnn>(options);
                   }});
  cases.push_back({"OstPIM", [options] {
                     return std::make_unique<OstPimKnn>(options);
                   }});
  cases.push_back({"FnnPIM", [options] {
                     return std::make_unique<FnnPimKnn>(options,
                                                        /*optimize=*/true);
                   }});
  return cases;
}

// Sharded fleet execution composes with host threading and device
// batching: shards in {3, 8} crossed with (threads, device_batch) must
// reproduce the single-device serial run bit for bit — neighbours,
// traffic, and modeled PIM time. Only the fleet interconnect stats (not
// compared by ExpectIdenticalKnnRuns) legitimately vary with M.
TEST(ParallelDeterminismTest, ShardedKnnMatchesSingleDeviceExactly) {
  const Workload w = MakeWorkload(500, 48, 42);
  const int k = 8;

  const std::vector<KnnCase> single_cases = PimKnnCasesWithShards(1);
  for (size_t ci = 0; ci < single_cases.size(); ++ci) {
    auto single = single_cases[ci].make();
    ASSERT_TRUE(single->Prepare(w.data).ok()) << single_cases[ci].label;
    auto reference = single->Search(w.queries, k);
    ASSERT_TRUE(reference.ok()) << single_cases[ci].label;

    for (int shards : {3, 8}) {
      auto algorithm = PimKnnCasesWithShards(shards)[ci].make();
      ASSERT_TRUE(algorithm->Prepare(w.data).ok());
      for (int threads : {1, 4}) {
        for (size_t device_batch : {size_t{1}, size_t{16}}) {
          ExecPolicy policy = ExecPolicy::WithThreads(threads);
          policy.device_batch = device_batch;
          algorithm->set_exec_policy(policy);
          auto sharded = algorithm->Search(w.queries, k);
          ASSERT_TRUE(sharded.ok());
          ExpectIdenticalKnnRuns(
              *reference, *sharded,
              single_cases[ci].label + " M=" + std::to_string(shards) +
                  " x" + std::to_string(threads) + " batch" +
                  std::to_string(device_batch));
          EXPECT_GT(sharded->stats.fleet.scatter_messages, 0u);
        }
      }
    }
    EXPECT_EQ(reference->stats.fleet.scatter_messages, 0u)
        << "single-device runs must not charge interconnect traffic";
  }
}

// Same invariant for the k-means PIM assign filter plus the tree-reduced
// centroid update: assignments, centers (ExactSum makes the reduction
// shape irrelevant), inertia and all grouping-invariant counters match the
// single-device run for every fleet size.
TEST(ParallelDeterminismTest, ShardedKmeansMatchesSingleDeviceExactly) {
  const Workload w = MakeWorkload(420, 24, 17);

  for (const KmeansCase& c : AllKmeansCases()) {
    KmeansOptions options;
    options.k = 12;
    options.max_iterations = 5;
    options.seed = 123;
    options.use_pim = true;

    auto algorithm = c.make();
    auto reference = algorithm->Run(w.data, options);
    ASSERT_TRUE(reference.ok()) << c.label;

    for (int shards : {3, 8}) {
      for (int threads : {1, 4}) {
        KmeansOptions sharded_options = options;
        sharded_options.engine_options.shard.shards = shards;
        sharded_options.exec = ExecPolicy::WithThreads(threads);
        sharded_options.exec.block_size = 64;
        auto sharded = algorithm->Run(w.data, sharded_options);
        ASSERT_TRUE(sharded.ok()) << c.label;
        ExpectIdenticalKmeansRuns(
            *reference, *sharded,
            c.label + " M=" + std::to_string(shards) + " x" +
                std::to_string(threads));
        EXPECT_GT(sharded->stats.fleet.reduce_messages, 0u) << c.label;
      }
    }
  }
}

// The parallel harness must propagate per-query failures, not crash or
// deadlock: force an error by searching with a handle-free engine state.
TEST(ParallelDeterminismTest, ParallelSearchPropagatesErrors) {
  StandardKnn algorithm;
  algorithm.set_exec_policy(ExecPolicy::WithThreads(4));
  auto result = algorithm.Search(testing_util::RandomUnitMatrix(4, 8, 1), 2);
  EXPECT_FALSE(result.ok());  // Prepare never ran.
}

}  // namespace
}  // namespace pimine
