// ReRAM fault-injection subsystem: seeded determinism of the fault model,
// checksum-based detection, retry/remap recovery with modeled latency
// charging, Status propagation for unrecoverable ops, and the headline
// guarantee — with recovery enabled, every PIM mining result is
// bit-identical to the fault-free run at every tested fault rate.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "core/engine.h"
#include "data/matrix.h"
#include "kmeans/elkan.h"
#include "kmeans/kmeans_common.h"
#include "kmeans/lloyd.h"
#include "knn/fnn_pim_knn.h"
#include "knn/knn_common.h"
#include "knn/ost_pim_knn.h"
#include "knn/sm_pim_knn.h"
#include "knn/standard_pim_knn.h"
#include "pim/crossbar.h"
#include "pim/fault_model.h"
#include "pim/pim_device.h"
#include "pim/timing.h"
#include "test_helpers.h"
#include "util/bits.h"
#include "util/random.h"

namespace pimine {
namespace {

IntMatrix RandomIntMatrix(size_t rows, size_t cols, uint32_t limit,
                          uint64_t seed) {
  IntMatrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (int32_t& v : m.mutable_row(i)) {
      v = static_cast<int32_t>(rng.NextBounded(limit));
    }
  }
  return m;
}

std::vector<int32_t> RandomQueries(size_t count, size_t dims, uint32_t limit,
                                   uint64_t seed) {
  std::vector<int32_t> q(count * dims);
  Rng rng(seed);
  for (int32_t& v : q) v = static_cast<int32_t>(rng.NextBounded(limit));
  return q;
}

FaultConfig MakeFault(double cell_rate, double transient_rate,
                      uint64_t seed = 0x5EEDF417u) {
  FaultConfig fault;
  fault.cell_rate = cell_rate;
  fault.transient_rate = transient_rate;
  fault.seed = seed;
  return fault;
}

TEST(FaultModelTest, ConfigValidation) {
  EXPECT_TRUE(FaultConfig().Validate().ok());
  EXPECT_FALSE(MakeFault(-0.1, 0).Validate().ok());
  EXPECT_FALSE(MakeFault(0, 1.5).Validate().ok());
  FaultConfig bad_adc;
  bad_adc.adc_sat_bits = 0;
  EXPECT_FALSE(bad_adc.Validate().ok());
  EXPECT_FALSE(FaultConfig().enabled());
  EXPECT_TRUE(MakeFault(1e-3, 0).enabled());
}

TEST(FaultModelTest, StuckCellsAreDeterministicByPosition) {
  const FaultModel a(MakeFault(0.05, 0));
  const FaultModel b(MakeFault(0.05, 0));
  const FaultModel other_seed(MakeFault(0.05, 0, /*seed=*/99));
  int stuck = 0, differs = 0;
  for (uint64_t index = 0; index < 4096; ++index) {
    uint8_t la = 0, lb = 0, lo = 0;
    const bool sa = a.CellStuck(FaultModel::kDataCellSalt, index, 2, &la);
    const bool sb = b.CellStuck(FaultModel::kDataCellSalt, index, 2, &lb);
    const bool so =
        other_seed.CellStuck(FaultModel::kDataCellSalt, index, 2, &lo);
    EXPECT_EQ(sa, sb);
    EXPECT_EQ(la, lb);
    if (sa) {
      ++stuck;
      EXPECT_TRUE(la == 0 || la == 3) << "2-bit cell stuck at level " << +la;
    }
    if (sa != so || la != lo) ++differs;
  }
  // ~205 expected at rate 0.05; determinism matters, the margin is loose.
  EXPECT_GT(stuck, 100);
  EXPECT_LT(stuck, 400);
  EXPECT_GT(differs, 0) << "different seeds must draw different cells";
}

TEST(FaultModelTest, TransientMasksDependOnNonce) {
  const FaultModel model(MakeFault(0, 0.5));
  int flips = 0, nonce_differs = 0;
  for (uint64_t i = 0; i < 512; ++i) {
    const uint64_t m0 = model.TransientMask(/*nonce=*/0, i);
    const uint64_t m0_again = model.TransientMask(0, i);
    const uint64_t m1 = model.TransientMask(1, i);
    EXPECT_EQ(m0, m0_again);
    if (m0 != 0) {
      ++flips;
      EXPECT_EQ(m0 & (m0 - 1), 0u) << "mask must be a single bit";
    }
    if (m0 != m1) ++nonce_differs;
  }
  EXPECT_GT(flips, 100);
  EXPECT_GT(nonce_differs, 0) << "a retry (fresh nonce) must redraw faults";
}

TEST(FaultInjectionTest, CrossbarInjectionIsSeededAndDeterministic) {
  const int dim = 64, operand_bits = 8;
  Crossbar xbar(dim, 2);
  Rng rng(3);
  std::vector<uint32_t> operands(dim);
  for (int c = 0; c < xbar.NumLogicalColumns(operand_bits); ++c) {
    for (auto& v : operands) v = static_cast<uint32_t>(rng.NextBounded(256));
    ASSERT_TRUE(xbar.ProgramVector(c, operands, operand_bits).ok());
  }
  std::vector<uint32_t> input(dim);
  for (auto& v : input) v = static_cast<uint32_t>(rng.NextBounded(256));

  auto clean = xbar.DotProduct(input, operand_bits, operand_bits, 2);
  ASSERT_TRUE(clean.ok());

  // Two fresh models with the same seed start from the same op nonce, so
  // the injected outputs are bit-identical; a heavy rate must corrupt.
  FaultModel fa(MakeFault(0.02, 0.02));
  FaultModel fb(MakeFault(0.02, 0.02));
  auto faulty_a = xbar.DotProduct(input, operand_bits, operand_bits, 2, &fa);
  auto faulty_b = xbar.DotProduct(input, operand_bits, operand_bits, 2, &fb);
  ASSERT_TRUE(faulty_a.ok());
  ASSERT_TRUE(faulty_b.ok());
  EXPECT_EQ(faulty_a->values, faulty_b->values);
  EXPECT_NE(faulty_a->values, clean->values);

  // Disabled model: the fault path must be bit-identical to no model.
  FaultModel off{FaultConfig()};
  auto with_off = xbar.DotProduct(input, operand_bits, operand_bits, 2, &off);
  ASSERT_TRUE(with_off.ok());
  EXPECT_EQ(with_off->values, clean->values);
}

TEST(FaultInjectionTest, DisabledFaultsAreBitIdenticalToPlainDevice) {
  const size_t n = 40, s = 48;
  const IntMatrix data = RandomIntMatrix(n, s, 1 << 20, 5);
  const std::vector<int32_t> queries = RandomQueries(4, s, 1 << 20, 6);

  PimDevice plain;
  PimDevice with_config{PimConfig(), FaultConfig(), RecoveryPolicy()};
  ASSERT_TRUE(plain.ProgramDataset(data).ok());
  ASSERT_TRUE(with_config.ProgramDataset(data).ok());

  std::vector<uint64_t> a, b;
  ASSERT_TRUE(plain.DotProductBatch(queries, 4, &a).ok());
  ASSERT_TRUE(with_config.DotProductBatch(queries, 4, &b).ok());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(with_config.stats().fault.Any());
  EXPECT_EQ(with_config.stats().compute_ns, plain.stats().compute_ns);
}

TEST(FaultInjectionTest, TransientFaultsAreRetriedToExactResults) {
  const size_t n = 64, s = 64, num_queries = 8;
  const IntMatrix data = RandomIntMatrix(n, s, 1 << 20, 7);
  const std::vector<int32_t> queries =
      RandomQueries(num_queries, s, 1 << 20, 8);

  PimDevice clean;
  ASSERT_TRUE(clean.ProgramDataset(data).ok());
  std::vector<uint64_t> expected;
  ASSERT_TRUE(clean.DotProductBatch(queries, num_queries, &expected).ok());

  RecoveryPolicy recovery;
  recovery.max_retries = 16;  // transients re-draw; retries always converge.
  // 2e-2 per digitized result guarantees injections on this small workload.
  PimDevice device(PimConfig(), MakeFault(0, 2e-2), recovery);
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  std::vector<uint64_t> out;
  ASSERT_TRUE(device.DotProductBatch(queries, num_queries, &out).ok());
  EXPECT_EQ(out, expected);

  const FaultStats& fs = device.stats().fault;
  EXPECT_GT(fs.injected, 0u);
  EXPECT_GT(fs.detected, 0u);
  EXPECT_EQ(fs.injected, fs.detected + fs.escaped);
  EXPECT_EQ(fs.escaped, 0u);
  EXPECT_EQ(fs.stuck_cells, 0u);
  EXPECT_EQ(fs.remapped_rows, 0u);
  EXPECT_GT(fs.retries, 0u);
  // Every retry replays one batched dot over the group, charged at the
  // device's modeled batch-dot latency.
  const PimTimingModel timing{PimConfig()};
  EXPECT_DOUBLE_EQ(fs.recovery_ns,
                   static_cast<double>(fs.retries) *
                       timing.BatchDotLatencyNs(static_cast<int64_t>(s), 32));
}

TEST(FaultInjectionTest, StuckCellsAreRemappedWithReprogramCharging) {
  const size_t n = 64, s = 64, num_queries = 4;
  const IntMatrix data = RandomIntMatrix(n, s, 1 << 20, 9);
  const std::vector<int32_t> queries =
      RandomQueries(num_queries, s, 1 << 20, 10);

  PimDevice clean;
  ASSERT_TRUE(clean.ProgramDataset(data).ok());
  std::vector<uint64_t> expected;
  ASSERT_TRUE(clean.DotProductBatch(queries, num_queries, &expected).ok());

  PimDevice device(PimConfig(), MakeFault(1e-2, 0), RecoveryPolicy());
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  EXPECT_GT(device.stats().fault.stuck_cells, 0u);
  std::vector<uint64_t> out;
  ASSERT_TRUE(device.DotProductBatch(queries, num_queries, &out).ok());
  EXPECT_EQ(out, expected);

  const FaultStats fs = device.stats().fault;
  EXPECT_GT(fs.detected, 0u);
  EXPECT_EQ(fs.injected, fs.detected + fs.escaped);
  EXPECT_EQ(fs.escaped, 0u);
  EXPECT_GT(fs.remapped_rows, 0u);
  const PimTimingModel timing{PimConfig()};
  const uint64_t group_rows =
      CeilDiv(s, static_cast<uint64_t>(PimConfig().crossbar_dim)) *
      PimConfig().crossbar_dim;
  EXPECT_EQ(fs.remapped_rows % group_rows, 0u);
  // Retries + re-program writes are both charged into the recovery time.
  EXPECT_DOUBLE_EQ(
      fs.recovery_ns,
      static_cast<double>(fs.retries) *
              timing.BatchDotLatencyNs(static_cast<int64_t>(s), 32) +
          static_cast<double>(fs.remapped_rows / group_rows) *
              timing.ProgramLatencyNs(group_rows));

  // A remapped group stays clean: a second batch re-detects nothing new.
  const uint64_t detected_before = fs.detected;
  ASSERT_TRUE(device.DotProductBatch(queries, num_queries, &out).ok());
  EXPECT_EQ(out, expected);
  EXPECT_EQ(device.stats().fault.detected, detected_before);
}

TEST(FaultInjectionTest, SameSeedSameStatsDifferentSeedDiffers) {
  const size_t n = 48, s = 48, num_queries = 6;
  const IntMatrix data = RandomIntMatrix(n, s, 1 << 20, 11);
  const std::vector<int32_t> queries =
      RandomQueries(num_queries, s, 1 << 20, 12);

  const auto run = [&](uint64_t seed) {
    PimDevice device(PimConfig(), MakeFault(1e-3, 1e-3, seed),
                     RecoveryPolicy());
    PIMINE_CHECK_OK(device.ProgramDataset(data));
    std::vector<uint64_t> out;
    PIMINE_CHECK_OK(device.DotProductBatch(queries, num_queries, &out));
    return std::make_pair(out, device.stats().fault);
  };
  const auto [out_a, fs_a] = run(1);
  const auto [out_b, fs_b] = run(1);
  const auto [out_c, fs_c] = run(2);
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(fs_a.injected, fs_b.injected);
  EXPECT_EQ(fs_a.detected, fs_b.detected);
  EXPECT_EQ(fs_a.retries, fs_b.retries);
  EXPECT_EQ(fs_a.stuck_cells, fs_b.stuck_cells);
  EXPECT_DOUBLE_EQ(fs_a.recovery_ns, fs_b.recovery_ns);
  EXPECT_TRUE(fs_a.injected != fs_c.injected ||
              fs_a.stuck_cells != fs_c.stuck_cells ||
              fs_a.retries != fs_c.retries)
      << "seed 2 drew the exact same faults as seed 1";
}

TEST(FaultInjectionTest, FailOpPolicyPropagatesDeviceFaultStatus) {
  const size_t n = 64, s = 64;
  const IntMatrix data = RandomIntMatrix(n, s, 1 << 20, 13);
  RecoveryPolicy recovery;
  recovery.max_retries = 0;
  recovery.remap_on_permanent = false;
  recovery.verify_mode = VerifyMode::kFailOp;
  PimDevice device(PimConfig(), MakeFault(5e-2, 0), recovery);
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  const std::vector<int32_t> queries = RandomQueries(2, s, 1 << 20, 14);
  std::vector<uint64_t> out;
  const Status status = device.DotProductBatch(queries, 2, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeviceFault) << status.ToString();

  // The same policy surfaces through the engine as a Status, not an abort.
  const FloatMatrix fdata = testing_util::RandomUnitMatrix(64, 32, 15);
  EngineOptions options;
  options.fault_config = MakeFault(5e-2, 0);
  options.recovery = recovery;
  auto engine = PimEngine::Build(fdata, Distance::kEuclidean, options);
  ASSERT_TRUE(engine.ok());
  auto handle = (*engine)->RunQuery(testing_util::RandomUnitVector(32, 16));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kDeviceFault);
}

TEST(FaultInjectionTest, BoundSlackRequiresSuspectBuffer) {
  const size_t n = 16, s = 32;
  const IntMatrix data = RandomIntMatrix(n, s, 1 << 20, 17);
  RecoveryPolicy recovery;
  recovery.verify_mode = VerifyMode::kBoundSlack;
  PimDevice device(PimConfig(), MakeFault(1e-3, 0), recovery);
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  const std::vector<int32_t> queries = RandomQueries(1, s, 1 << 20, 18);
  std::vector<uint64_t> out;
  const Status status = device.DotProductBatch(queries, 1, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::vector<uint8_t> suspect;
  EXPECT_TRUE(device.DotProductBatch(queries, 1, &out, &suspect).ok());
  EXPECT_EQ(suspect.size(), n);
}

TEST(FaultInjectionTest, BoundSlackFlagsEscalatedResults) {
  const size_t n = 64, s = 64;
  const IntMatrix data = RandomIntMatrix(n, s, 1 << 20, 19);
  RecoveryPolicy recovery;
  recovery.max_retries = 0;
  recovery.remap_on_permanent = false;
  recovery.verify_mode = VerifyMode::kBoundSlack;
  PimDevice device(PimConfig(), MakeFault(1e-2, 0), recovery);
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  const std::vector<int32_t> queries = RandomQueries(2, s, 1 << 20, 20);
  std::vector<uint64_t> out;
  std::vector<uint8_t> suspect;
  ASSERT_TRUE(device.DotProductBatch(queries, 2, &out, &suspect).ok());
  uint64_t flagged = 0;
  for (uint8_t f : suspect) flagged += f;
  EXPECT_GT(flagged, 0u) << "stuck cells with no recovery must flag results";
  EXPECT_EQ(device.stats().fault.escalated_to_host, flagged);
}

// The headline guarantee of DESIGN.md §6: every PIM kNN path returns the
// exact top-k under injected faults, for both the host-exact and the
// bound-slack recovery modes, at every tested rate.
TEST(FaultInjectionTest, KnnTopKIsExactUnderFaultsForAllPimPaths) {
  const size_t n = 80, d = 64, num_queries = 3;
  const int k = 5;
  const FloatMatrix data = testing_util::RandomUnitMatrix(n, d, 23);
  const FloatMatrix queries = testing_util::RandomUnitMatrix(num_queries, d, 24);

  const auto make_algorithms = [](const EngineOptions& options) {
    std::vector<std::unique_ptr<KnnAlgorithm>> algorithms;
    algorithms.push_back(
        std::make_unique<StandardPimKnn>(Distance::kEuclidean, options));
    algorithms.push_back(std::make_unique<OstPimKnn>(options));
    algorithms.push_back(std::make_unique<SmPimKnn>(options));
    algorithms.push_back(std::make_unique<FnnPimKnn>(options, false));
    return algorithms;
  };

  // Fault-free reference neighbors per algorithm.
  std::vector<std::vector<std::vector<Neighbor>>> reference;
  for (auto& algorithm : make_algorithms(EngineOptions())) {
    ASSERT_TRUE(algorithm->Prepare(data).ok());
    auto result = algorithm->Search(queries, k);
    ASSERT_TRUE(result.ok()) << algorithm->name();
    EXPECT_FALSE(result->stats.fault.Any()) << algorithm->name();
    reference.push_back(std::move(result->neighbors));
  }

  for (const double rate : {1e-4, 1e-3, 1e-2}) {
    for (const VerifyMode mode :
         {VerifyMode::kHostExact, VerifyMode::kBoundSlack}) {
      EngineOptions options;
      options.fault_config = MakeFault(rate, rate);
      options.recovery.verify_mode = mode;
      auto algorithms = make_algorithms(options);
      for (size_t a = 0; a < algorithms.size(); ++a) {
        ASSERT_TRUE(algorithms[a]->Prepare(data).ok());
        auto result = algorithms[a]->Search(queries, k);
        ASSERT_TRUE(result.ok()) << algorithms[a]->name();
        EXPECT_EQ(result->neighbors, reference[a])
            << algorithms[a]->name() << " diverged at rate " << rate
            << " mode " << VerifyModeName(mode);
        const FaultStats& fs = result->stats.fault;
        EXPECT_EQ(fs.injected, fs.detected + fs.escaped)
            << algorithms[a]->name();
        EXPECT_EQ(fs.escaped, 0u) << algorithms[a]->name() << " rate " << rate;
        if (rate == 1e-2) {
          EXPECT_GT(fs.detected, 0u) << algorithms[a]->name();
          EXPECT_GT(fs.recovery_ns, 0.0) << algorithms[a]->name();
        }
      }
    }
  }
}

TEST(FaultInjectionTest, KmeansAssignmentsAreExactUnderFaults) {
  const size_t n = 120, d = 24;
  const FloatMatrix data = testing_util::RandomUnitMatrix(n, d, 25);
  KmeansOptions base;
  base.k = 6;
  base.max_iterations = 4;
  base.use_pim = true;

  const auto run = [&](KmeansAlgorithm& algorithm,
                       const KmeansOptions& options) {
    auto result = algorithm.Run(data, options);
    PIMINE_CHECK(result.ok()) << result.status().ToString();
    return std::move(*result);
  };

  LloydKmeans lloyd;
  ElkanKmeans elkan;
  const KmeansResult lloyd_clean = run(lloyd, base);
  const KmeansResult elkan_clean = run(elkan, base);
  EXPECT_FALSE(lloyd_clean.stats.fault.Any());

  for (const double rate : {1e-3, 1e-2}) {
    KmeansOptions faulty = base;
    faulty.engine_options.fault_config = MakeFault(rate, rate);
    for (auto* pair : {&lloyd_clean, &elkan_clean}) {
      KmeansAlgorithm& algorithm =
          pair == &lloyd_clean ? static_cast<KmeansAlgorithm&>(lloyd)
                               : static_cast<KmeansAlgorithm&>(elkan);
      const KmeansResult result = run(algorithm, faulty);
      EXPECT_EQ(result.assignments, pair->assignments)
          << "rate " << rate << " " << algorithm.name();
      EXPECT_EQ(result.iterations, pair->iterations);
      EXPECT_DOUBLE_EQ(result.inertia, pair->inertia);
      const FaultStats& fs = result.stats.fault;
      EXPECT_EQ(fs.injected, fs.detected + fs.escaped);
      EXPECT_EQ(fs.escaped, 0u);
      if (rate == 1e-2) {
        EXPECT_GT(fs.detected, 0u);
      }
    }
  }
}

TEST(FaultInjectionTest, StatsResetPreservesStuckCellCount) {
  const size_t n = 64, s = 64;
  const IntMatrix data = RandomIntMatrix(n, s, 1 << 20, 27);
  PimDevice device(PimConfig(), MakeFault(1e-2, 1e-3), RecoveryPolicy());
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  const uint64_t stuck = device.stats().fault.stuck_cells;
  EXPECT_GT(stuck, 0u);
  const std::vector<int32_t> queries = RandomQueries(4, s, 1 << 20, 28);
  std::vector<uint64_t> out;
  ASSERT_TRUE(device.DotProductBatch(queries, 4, &out).ok());
  EXPECT_GT(device.stats().fault.detected, 0u);
  device.ResetOnlineStats();
  EXPECT_EQ(device.stats().fault.detected, 0u);
  EXPECT_EQ(device.stats().fault.recovery_ns, 0.0);
  EXPECT_EQ(device.stats().fault.stuck_cells, stuck)
      << "stuck cells are an offline property and must survive the reset";
}

}  // namespace
}  // namespace pimine
