#include "core/partitioned_engine.h"

#include <gtest/gtest.h>

#include "core/similarity.h"
#include "test_helpers.h"

namespace pimine {
namespace {

using testing_util::RandomUnitMatrix;

EngineOptions TinyArray(int64_t crossbars) {
  EngineOptions options;
  options.pim_config.num_crossbars = crossbars;
  return options;
}

TEST(PartitionedEngineTest, SplitsWhenDatasetOverflowsArray) {
  const FloatMatrix data = RandomUnitMatrix(512, 64, 1);
  // 64 dims x 16 cells = 1024 cells/vector; one 256x256 crossbar holds 64
  // vectors; 2 crossbars -> 128 rows/partition -> 4 partitions.
  auto engine = PartitionedPimEngine::Build(data, TinyArray(2));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->partition_rows(), 128);
  EXPECT_EQ((*engine)->num_partitions(), 4);
}

TEST(PartitionedEngineTest, BoundsHoldAcrossPartitions) {
  const FloatMatrix data = RandomUnitMatrix(200, 48, 2);
  const FloatMatrix queries = RandomUnitMatrix(4, 48, 3);
  auto engine = PartitionedPimEngine::Build(data, TinyArray(1));
  ASSERT_TRUE(engine.ok());
  EXPECT_GT((*engine)->num_partitions(), 1);

  std::vector<std::vector<double>> bounds;
  ASSERT_TRUE((*engine)->ComputeBoundsBatch(queries, &bounds).ok());
  ASSERT_EQ(bounds.size(), 4u);
  for (size_t q = 0; q < 4; ++q) {
    ASSERT_EQ(bounds[q].size(), 200u);
    for (size_t i = 0; i < 200; ++i) {
      EXPECT_LE(bounds[q][i],
                SquaredEuclidean(data.row(i), queries.row(q)) + 1e-9)
          << "q=" << q << " i=" << i;
    }
  }
}

TEST(PartitionedEngineTest, ReprogramCostAndEnduranceAccumulate) {
  const FloatMatrix data = RandomUnitMatrix(256, 64, 4);
  const FloatMatrix queries = RandomUnitMatrix(2, 64, 5);
  auto engine_or = PartitionedPimEngine::Build(data, TinyArray(1));
  ASSERT_TRUE(engine_or.ok());
  PartitionedPimEngine& engine = **engine_or;
  const int64_t partitions = engine.num_partitions();
  ASSERT_GT(partitions, 1);

  std::vector<std::vector<double>> bounds;
  ASSERT_TRUE(engine.ComputeBoundsBatch(queries, &bounds).ok());
  EXPECT_EQ(engine.ProgrammingEvents(), static_cast<uint64_t>(partitions));
  EXPECT_GT(engine.ReprogramNs(), 0.0);
  const double endurance_after_one = engine.EnduranceRemainingFraction();

  // A second batch reprograms every partition again (amortized per batch,
  // not per query).
  ASSERT_TRUE(engine.ComputeBoundsBatch(queries, &bounds).ok());
  EXPECT_EQ(engine.ProgrammingEvents(),
            static_cast<uint64_t>(2 * partitions));
  EXPECT_LT(engine.EnduranceRemainingFraction(), endurance_after_one);
}

TEST(PartitionedEngineTest, SinglePartitionWhenEverythingFits) {
  const FloatMatrix data = RandomUnitMatrix(64, 32, 6);
  auto engine = PartitionedPimEngine::Build(data, EngineOptions());
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->num_partitions(), 1);
}

TEST(PartitionedEngineTest, Validation) {
  EXPECT_FALSE(
      PartitionedPimEngine::Build(FloatMatrix(), EngineOptions()).ok());

  FloatMatrix bad = RandomUnitMatrix(4, 8, 7);
  bad(0, 0) = 1.5f;
  EXPECT_FALSE(PartitionedPimEngine::Build(bad, EngineOptions()).ok());

  const FloatMatrix data = RandomUnitMatrix(16, 8, 8);
  auto engine = PartitionedPimEngine::Build(data, EngineOptions());
  ASSERT_TRUE(engine.ok());
  std::vector<std::vector<double>> bounds;
  const FloatMatrix wrong = RandomUnitMatrix(1, 9, 9);
  EXPECT_FALSE((*engine)->ComputeBoundsBatch(wrong, &bounds).ok());
}

}  // namespace
}  // namespace pimine
