#include "pim/crossbar_math.h"

#include <gtest/gtest.h>

namespace pimine {
namespace {

TEST(GatherDepthTest, Basics) {
  EXPECT_EQ(GatherDepth(1, 256), 1);
  EXPECT_EQ(GatherDepth(256, 256), 1);
  EXPECT_EQ(GatherDepth(257, 256), 2);
  EXPECT_EQ(GatherDepth(65536, 256), 2);
  EXPECT_EQ(GatherDepth(65537, 256), 3);
  // The paper's Fig. 11 example: s = 8, m = 2 -> 3 levels.
  EXPECT_EQ(GatherDepth(8, 2), 3);
}

TEST(CrossbarsForPairTest, PaperFigure11Example) {
  // s = 8, m = 2: 4 data crossbars + 2 + 1 gathers = 7.
  EXPECT_DOUBLE_EQ(CrossbarsForPair(8, 2), 7.0);
  // s <= m occupies a fraction of one crossbar.
  EXPECT_DOUBLE_EQ(CrossbarsForPair(128, 256), 0.5);
  EXPECT_DOUBLE_EQ(CrossbarsForPair(256, 256), 1.0);
}

TEST(NumDataCrossbarsTest, CellAccounting) {
  // 1 vector, 256 dims, 32-bit operands on 2-bit cells: 16 cells/dim ->
  // 4096 cells = 1/16 of a 256x256 crossbar -> still 1 crossbar (ceil).
  EXPECT_EQ(NumDataCrossbars(1, 32, 256, 256, 2), 1);
  // 16 such vectors exactly fill one crossbar.
  EXPECT_EQ(NumDataCrossbars(16, 32, 256, 256, 2), 1);
  EXPECT_EQ(NumDataCrossbars(17, 32, 256, 256, 2), 2);
}

TEST(NumGatherCrossbarsTest, ZeroWhenFitting) {
  EXPECT_EQ(NumGatherCrossbars(1000, 32, 256, 256, 2), 0);
  EXPECT_GT(NumGatherCrossbars(1000, 32, 257, 256, 2), 0);
}

TEST(FitsInPimArrayTest, DefaultConfigCapacity) {
  PimConfig config;  // 131072 crossbars of 256x256 2-bit cells.
  // The paper's MSD case: ~1M vectors at 420 dims, 32-bit: does not fit at
  // full dimensionality twice (means+stds), fits when compressed.
  EXPECT_FALSE(FitsInPimArray(2 * 992272, 32, 420, config));
  EXPECT_TRUE(FitsInPimArray(2 * 992272, 32, 105, config));
}

TEST(MaxCompressedDimTest, MonotoneAndMaximal) {
  PimConfig config;
  config.num_crossbars = 64;
  const auto s = MaxCompressedDim(1000, 32, 512, config);
  ASSERT_TRUE(s.ok());
  EXPECT_GE(s.value(), 1);
  EXPECT_LE(s.value(), 512);
  // Maximality: s fits, s+1 does not (unless s == max_dim).
  EXPECT_TRUE(FitsInPimArray(1000, 32, s.value(), config));
  if (s.value() < 512) {
    EXPECT_FALSE(FitsInPimArray(1000, 32, s.value() + 1, config));
  }
}

TEST(MaxCompressedDimTest, ReturnsMaxDimWhenEverythingFits) {
  PimConfig config;
  const auto s = MaxCompressedDim(100, 32, 64, config);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), 64);
}

TEST(MaxCompressedDimTest, FailsWhenNothingFits) {
  PimConfig config;
  config.num_crossbars = 1;
  // 10M vectors cannot fit even a single dimension on one crossbar.
  const auto s = MaxCompressedDim(10'000'000, 32, 100, config);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kCapacityExceeded);
}

TEST(MaxCompressedDimTest, RejectsBadArguments) {
  PimConfig config;
  EXPECT_FALSE(MaxCompressedDim(0, 32, 10, config).ok());
  EXPECT_FALSE(MaxCompressedDim(10, 32, 0, config).ok());
}

TEST(MaxCompressedDimTest, GrowsWithCapacity) {
  PimConfig small;
  small.num_crossbars = 32;
  PimConfig large;
  large.num_crossbars = 64;
  const auto s_small = MaxCompressedDim(10000, 32, 4096, small);
  const auto s_large = MaxCompressedDim(10000, 32, 4096, large);
  ASSERT_TRUE(s_small.ok());
  ASSERT_TRUE(s_large.ok());
  EXPECT_LE(s_small.value(), s_large.value());
}

}  // namespace
}  // namespace pimine
