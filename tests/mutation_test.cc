// Randomized mutation-model suite (DESIGN.md section 13): a SplitMix64-
// seeded schedule interleaves insert / delete / query / compact ops on a
// MutableDataset with every PIM path attached as a MutationListener, and
// after EVERY query step the mutated fleet's results are asserted
// bit-identical to a freshly-programmed reference engine on the merged
// (dense live) corpus — across shard counts {1, 4}, replica counts
// {1, 2} and host thread counts {1, 4}. The same invariant is exercised
// for the k-means shared assign filter and the serving layer.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "core/mutable_dataset.h"
#include "core/sharded_engine.h"
#include "data/matrix.h"
#include "kmeans/kmeans_common.h"
#include "kmeans/lloyd.h"
#include "knn/fnn_pim_knn.h"
#include "knn/knn_common.h"
#include "knn/ost_pim_knn.h"
#include "knn/sm_pim_knn.h"
#include "knn/standard_pim_knn.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "test_helpers.h"
#include "util/random.h"

namespace pimine {
namespace {

using testing_util::RandomUnitMatrix;

/// Stateless SplitMix64 mix — the schedule below must be reproducible from
/// (seed, step) alone so a failure prints a replayable op sequence.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Maps the mutated engine's PHYSICAL neighbor ids onto the dense ids a
/// fresh engine on the merged corpus reports (live[i] -> i).
std::vector<std::vector<Neighbor>> Densify(
    const std::vector<std::vector<Neighbor>>& neighbors,
    const std::vector<uint32_t>& live) {
  std::vector<int32_t> dense_of(live.empty() ? 0 : live.back() + 1, -1);
  for (size_t i = 0; i < live.size(); ++i) {
    dense_of[live[i]] = static_cast<int32_t>(i);
  }
  std::vector<std::vector<Neighbor>> out = neighbors;
  for (auto& list : out) {
    for (Neighbor& n : list) {
      EXPECT_GE(n.id, 0);
      EXPECT_LT(static_cast<size_t>(n.id), dense_of.size());
      EXPECT_GE(dense_of[n.id], 0) << "tombstoned row " << n.id << " served";
      n.id = dense_of[n.id];
    }
  }
  return out;
}

/// One randomized schedule against one attached KnnAlgorithm: returns the
/// op trace for failure messages. `factory` builds a fresh reference
/// algorithm (same type/options) for the merged-corpus comparison.
template <typename MakeAlgorithm>
void RunMutationSchedule(MutableDataset* dataset, KnnAlgorithm* mutated,
                         const MakeAlgorithm& factory,
                         const FloatMatrix& queries, const FloatMatrix& pool,
                         uint64_t seed, int steps, int k,
                         const std::string& label) {
  size_t pool_pos = 0;
  std::string trace;
  const auto check = [&](int step) {
    auto got = mutated->Search(queries, k);
    ASSERT_TRUE(got.ok()) << label << " step " << step << " [" << trace
                          << "]: " << got.status().ToString();
    const std::vector<uint32_t> live = dataset->LiveRows();
    const FloatMatrix merged = dataset->LiveCorpus();
    std::unique_ptr<KnnAlgorithm> reference = factory();
    ASSERT_TRUE(reference->Prepare(merged).ok());
    auto want = reference->Search(queries, k);
    ASSERT_TRUE(want.ok()) << label << " step " << step;
    EXPECT_EQ(Densify(got->neighbors, live), want->neighbors)
        << label << " diverged from the fresh merged-corpus engine at step "
        << step << " [" << trace << "]";
  };

  check(-1);  // pre-mutation baseline.
  for (int step = 0; step < steps; ++step) {
    const uint64_t draw = Mix(seed ^ static_cast<uint64_t>(step));
    switch (draw % 4) {
      case 0: {  // insert 1..4 pool rows.
        const size_t count = 1 + (draw >> 8) % 4;
        ASSERT_LT(pool_pos + count, pool.rows() + 1);
        FloatMatrix rows(count, pool.cols());
        for (size_t i = 0; i < count; ++i) {
          const auto src = pool.row(pool_pos + i);
          auto dst = rows.mutable_row(i);
          std::copy(src.begin(), src.end(), dst.begin());
        }
        pool_pos += count;
        trace += "i:" + std::to_string(count) + ",";
        ASSERT_TRUE(dataset->Insert(rows).ok()) << label << " [" << trace
                                                << "]";
        break;
      }
      case 1: {  // delete one random live row (keep a comfortable floor
                 // so no shard of a 4-way split can empty and k fits).
        if (dataset->live_rows() <=
            static_cast<size_t>(k) + dataset->rows() / 2) {
          trace += "skip-d,";
          break;
        }
        const std::vector<uint32_t> live = dataset->LiveRows();
        const uint32_t victim = live[(draw >> 8) % live.size()];
        trace += "d:" + std::to_string(victim) + ",";
        ASSERT_TRUE(dataset->Delete(victim).ok()) << label << " [" << trace
                                                  << "]";
        break;
      }
      case 2:  // compact.
        trace += "c,";
        ASSERT_TRUE(dataset->Compact().ok()) << label << " [" << trace << "]";
        break;
      default:
        trace += "q,";
        break;  // query-only step; the check below covers it.
    }
    check(step);
  }
}

TEST(MutationModelTest, StandardPathAcrossFleetGeometries) {
  const FloatMatrix base = RandomUnitMatrix(64, 12, 0xA1);
  const FloatMatrix pool = RandomUnitMatrix(64, 12, 0xA2);
  const FloatMatrix queries = RandomUnitMatrix(6, 12, 0xA3);
  for (const int shards : {1, 4}) {
    for (const int replicas : {1, 2}) {
      for (const int threads : {1, 4}) {
        EngineOptions options;
        options.shard.shards = shards;
        options.shard.replicas = replicas;
        ExecPolicy exec;
        exec.num_threads = threads;
        MutableDataset dataset(base);
        StandardPimKnn mutated(Distance::kEuclidean, options);
        mutated.set_exec_policy(exec);
        ASSERT_TRUE(mutated.Prepare(dataset.corpus()).ok());
        dataset.Attach(&mutated);
        const std::string label = "standard/shards=" +
                                  std::to_string(shards) + "/replicas=" +
                                  std::to_string(replicas) + "/threads=" +
                                  std::to_string(threads);
        RunMutationSchedule(
            &dataset, &mutated,
            [&] {
              auto fresh = std::make_unique<StandardPimKnn>(
                  Distance::kEuclidean, options);
              fresh->set_exec_policy(exec);
              return fresh;
            },
            queries, pool, /*seed=*/0x5EED0 + shards * 10 + replicas,
            /*steps=*/12, /*k=*/5, label);
      }
    }
  }
}

TEST(MutationModelTest, SimilarityPathsMirrorMutations) {
  // CS and PCC decompositions keep per-row offline terms; the schedule
  // must keep them in lockstep with the fleet's delta/tombstone state.
  const FloatMatrix base = RandomUnitMatrix(56, 10, 0xB1);
  const FloatMatrix pool = RandomUnitMatrix(64, 10, 0xB2);
  const FloatMatrix queries = RandomUnitMatrix(5, 10, 0xB3);
  for (const Distance distance : {Distance::kCosine, Distance::kPearson}) {
    EngineOptions options;
    MutableDataset dataset(base);
    StandardPimKnn mutated(distance, options);
    ASSERT_TRUE(mutated.Prepare(dataset.corpus()).ok());
    dataset.Attach(&mutated);
    RunMutationSchedule(
        &dataset, &mutated,
        [&] { return std::make_unique<StandardPimKnn>(distance, options); },
        queries, pool, /*seed=*/0xC0FFEE, /*steps=*/10, /*k=*/4,
        distance == Distance::kCosine ? "cs" : "pcc");
  }
}

TEST(MutationModelTest, SegmentAndPrefixPathsMirrorMutations) {
  const FloatMatrix base = RandomUnitMatrix(56, 16, 0xC1);
  const FloatMatrix pool = RandomUnitMatrix(64, 16, 0xC2);
  const FloatMatrix queries = RandomUnitMatrix(5, 16, 0xC3);
  {
    EngineOptions options;
    MutableDataset dataset(base);
    SmPimKnn mutated(options);
    ASSERT_TRUE(mutated.Prepare(dataset.corpus()).ok());
    dataset.Attach(&mutated);
    RunMutationSchedule(
        &dataset, &mutated,
        [&] { return std::make_unique<SmPimKnn>(options); }, queries, pool,
        /*seed=*/0xD1CE, /*steps=*/10, /*k=*/4, "sm");
  }
  {
    EngineOptions options;
    MutableDataset dataset(base);
    OstPimKnn mutated(options);
    ASSERT_TRUE(mutated.Prepare(dataset.corpus()).ok());
    dataset.Attach(&mutated);
    RunMutationSchedule(
        &dataset, &mutated,
        [&] { return std::make_unique<OstPimKnn>(options); }, queries, pool,
        /*seed=*/0xD1CF, /*steps=*/10, /*k=*/4, "ost");
  }
}

TEST(MutationModelTest, FnnPathMirrorsMutations) {
  // optimize=false keeps the plan data-independent, so the fresh reference
  // selects the identical cascade at every corpus size.
  const FloatMatrix base = RandomUnitMatrix(56, 32, 0xE1);
  const FloatMatrix pool = RandomUnitMatrix(64, 32, 0xE2);
  const FloatMatrix queries = RandomUnitMatrix(5, 32, 0xE3);
  EngineOptions options;
  MutableDataset dataset(base);
  FnnPimKnn mutated(options, /*optimize=*/false);
  ASSERT_TRUE(mutated.Prepare(dataset.corpus()).ok());
  dataset.Attach(&mutated);
  RunMutationSchedule(
      &dataset, &mutated,
      [&] { return std::make_unique<FnnPimKnn>(options, false); }, queries,
      pool, /*seed=*/0xF00D, /*steps=*/10, /*k=*/4, "fnn");
}

TEST(MutationModelTest, FnnOptimizedPlanStaysExactBetweenCompactions) {
  // With optimize=true the Eq. 13 plan is re-measured only at compaction;
  // between compactions it reflects the corpus it was measured on, but
  // bounds stay admissible so results stay exact (== a fresh engine's).
  const FloatMatrix base = RandomUnitMatrix(56, 32, 0xE4);
  const FloatMatrix pool = RandomUnitMatrix(16, 32, 0xE5);
  const FloatMatrix queries = RandomUnitMatrix(4, 32, 0xE6);
  EngineOptions options;
  MutableDataset dataset(base);
  FnnPimKnn mutated(options, /*optimize=*/true);
  ASSERT_TRUE(mutated.Prepare(dataset.corpus()).ok());
  dataset.Attach(&mutated);
  ASSERT_TRUE(dataset.Insert(pool).ok());
  for (const uint32_t victim : {3u, 17u, 60u}) {
    ASSERT_TRUE(dataset.Delete(victim).ok());
  }
  auto got = mutated.Search(queries, 4);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // Exactness check against a brute-force standard engine on the merged
  // corpus (plans differ pre-compaction; results may not).
  StandardPimKnn reference(Distance::kEuclidean, options);
  const FloatMatrix merged = dataset.LiveCorpus();
  ASSERT_TRUE(reference.Prepare(merged).ok());
  auto want = reference.Search(queries, 4);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(Densify(got->neighbors, dataset.LiveRows()), want->neighbors);
  // After compaction the re-measured plan matches a fresh Prepare of the
  // same (dense) corpus: full bit-identity, plan included.
  ASSERT_TRUE(dataset.Compact().ok());
  FnnPimKnn fresh(options, /*optimize=*/true);
  ASSERT_TRUE(fresh.Prepare(dataset.corpus()).ok());
  ASSERT_EQ(mutated.plan().selected, fresh.plan().selected);
  ASSERT_EQ(mutated.plan().cost_bits_per_object,
            fresh.plan().cost_bits_per_object);
  auto after = mutated.Search(queries, 4);
  auto fresh_after = fresh.Search(queries, 4);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(fresh_after.ok());
  EXPECT_EQ(after->neighbors, fresh_after->neighbors);
}

TEST(MutationModelTest, KmeansSharedFilterMatchesFreshBuild) {
  const FloatMatrix base = RandomUnitMatrix(72, 8, 0x1A);
  const FloatMatrix pool = RandomUnitMatrix(12, 8, 0x1B);
  for (const int shards : {1, 2}) {
    EngineOptions engine_options;
    engine_options.shard.shards = shards;
    MutableDataset dataset(base);
    auto filter_built =
        PimAssignFilter::Build(dataset.corpus(), engine_options);
    ASSERT_TRUE(filter_built.ok());
    std::unique_ptr<PimAssignFilter> filter = std::move(*filter_built);
    dataset.Attach(filter.get());

    ASSERT_TRUE(dataset.Insert(pool).ok());
    for (const uint32_t victim : {1u, 30u, 75u}) {
      ASSERT_TRUE(dataset.Delete(victim).ok());
    }
    ASSERT_TRUE(dataset.Compact().ok());
    ASSERT_TRUE(dataset.Delete(7).ok());  // leave one live tombstone too.

    const FloatMatrix live = dataset.LiveCorpus();
    ASSERT_EQ(filter->live_points(), live.rows());

    KmeansOptions shared;
    shared.k = 8;
    shared.max_iterations = 4;
    shared.use_pim = true;
    shared.engine_options = engine_options;
    shared.filter = filter.get();
    KmeansOptions fresh = shared;
    fresh.filter = nullptr;

    LloydKmeans lloyd;
    auto with_shared = lloyd.Run(live, shared);
    auto with_fresh = lloyd.Run(live, fresh);
    ASSERT_TRUE(with_shared.ok()) << with_shared.status().ToString();
    ASSERT_TRUE(with_fresh.ok());
    EXPECT_EQ(with_shared->assignments, with_fresh->assignments)
        << "shards=" << shards;
    ASSERT_EQ(with_shared->centers.rows(), with_fresh->centers.rows());
    for (size_t c = 0; c < with_shared->centers.rows(); ++c) {
      const auto a = with_shared->centers.row(c);
      const auto b = with_fresh->centers.row(c);
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
          << "center " << c << " shards=" << shards;
    }
    EXPECT_EQ(with_shared->inertia, with_fresh->inertia);
  }
}

TEST(MutationModelTest, ServeMutatedEqualsFreshOnMergedCorpus) {
  // A server that lived through the mutation trace (ending compacted) must
  // replay bit-identically to a server freshly built on the merged corpus
  // — results, scheduling stats and telemetry documents alike.
  const FloatMatrix base = RandomUnitMatrix(64, 12, 0x2A);
  const FloatMatrix pool = RandomUnitMatrix(8, 12, 0x2B);
  const FloatMatrix queries = RandomUnitMatrix(6, 12, 0x2C);

  serve::ServeOptions serve_options;
  serve_options.k = 4;
  serve_options.max_batch = 4;
  serve_options.compact_watermark = 0.10;
  EngineOptions engine_options;
  engine_options.shard.shards = 2;
  engine_options.shard.replicas = 2;

  MutableDataset dataset(base);
  auto mutated_built = serve::PimServer::Build(
      dataset.corpus(), Distance::kEuclidean, engine_options, serve_options);
  ASSERT_TRUE(mutated_built.ok()) << mutated_built.status().ToString();
  auto mutated = std::move(*mutated_built);
  ASSERT_TRUE(mutated->AttachMutable(&dataset).ok());

  ASSERT_TRUE(dataset.Insert(pool).ok());
  for (const uint32_t victim : {0u, 9u, 33u, 64u, 65u, 70u, 12u, 40u}) {
    ASSERT_TRUE(dataset.Delete(victim).ok());
    ASSERT_TRUE(mutated->MaybeCompact().ok());
  }
  ASSERT_TRUE(dataset.Compact().ok());  // idempotent when already compact.
  EXPECT_GE(mutated->watermark_compactions(), 1u);
  ASSERT_EQ(dataset.tombstoned_rows(), 0u);

  FloatMatrix merged = dataset.LiveCorpus();
  auto fresh_built = serve::PimServer::Build(merged, Distance::kEuclidean,
                                             engine_options, serve_options);
  ASSERT_TRUE(fresh_built.ok());
  auto fresh = std::move(*fresh_built);

  serve::WorkloadSpec spec;
  spec.num_requests = 32;
  spec.offered_qps = 1e6;
  spec.tenant_share = {1.0};
  spec.num_query_rows = static_cast<uint32_t>(queries.rows());
  spec.seed = 7;
  auto trace = serve::GeneratePoissonTrace(spec);
  ASSERT_TRUE(trace.ok());

  auto got = mutated->Replay(*trace, queries);
  auto want = fresh->Replay(*trace, queries);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(got->results.size(), want->results.size());
  for (size_t i = 0; i < got->results.size(); ++i) {
    EXPECT_EQ(got->results[i].neighbors, want->results[i].neighbors) << i;
    EXPECT_EQ(got->results[i].dispatch_ns, want->results[i].dispatch_ns) << i;
    EXPECT_EQ(got->results[i].completion_ns, want->results[i].completion_ns)
        << i;
  }
  EXPECT_EQ(got->stats.served, want->stats.served);
  EXPECT_EQ(got->stats.batches, want->stats.batches);
  EXPECT_EQ(got->stats.makespan_ns, want->stats.makespan_ns);
  EXPECT_EQ(got->stats.exec.exact_count, want->stats.exec.exact_count);
  EXPECT_EQ(got->timeseries_json, want->timeseries_json);
  EXPECT_EQ(got->events_jsonl, want->events_jsonl);
}

TEST(MutationModelTest, FleetCountersAndMetricsTrackMutations) {
  const FloatMatrix base = RandomUnitMatrix(40, 8, 0x3A);
  const FloatMatrix extra = RandomUnitMatrix(6, 8, 0x3B);
  EngineOptions options;
  options.shard.shards = 2;
  options.shard.replicas = 2;
  auto built = ShardedPimEngine::Build(base, Distance::kEuclidean, options);
  ASSERT_TRUE(built.ok());
  auto engine = std::move(*built);

  EXPECT_FALSE(engine->FleetStats().AnyMutation());
  ASSERT_TRUE(engine->AppendRows(extra).ok());
  ASSERT_TRUE(engine->DeleteRow(3).ok());
  ASSERT_TRUE(engine->DeleteRow(41).ok());
  FleetRunStats stats = engine->FleetStats();
  EXPECT_TRUE(stats.AnyMutation());
  EXPECT_EQ(stats.appended_rows, 6u);
  EXPECT_EQ(stats.deleted_rows, 2u);
  EXPECT_EQ(stats.delta_rows, 6u);
  EXPECT_EQ(stats.tombstoned_rows, 2u);
  EXPECT_EQ(stats.compactions, 0u);
  // Every replica of every shard programs its copy: (40 base + 6 delta)
  // rows x 2 replicas.
  EXPECT_EQ(stats.row_writes, 2u * 46u);
  EXPECT_NE(stats.ToString().find("mutation:"), std::string::npos);

  ASSERT_TRUE(engine->Compact().ok());
  stats = engine->FleetStats();
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.compacted_rows, 44u);
  EXPECT_EQ(stats.delta_rows, 0u);
  EXPECT_EQ(stats.tombstoned_rows, 0u);
  EXPECT_EQ(engine->num_objects(), 44u);
  EXPECT_EQ(stats.row_writes, 2u * (46u + 44u));

  obs::MetricsRegistry registry;
  engine->ExportMetrics(&registry);
  const std::string text = registry.ToPrometheus();
  EXPECT_NE(text.find("pimine_mutation_appended_rows_total 6"),
            std::string::npos);
  EXPECT_NE(text.find("pimine_mutation_deleted_rows_total 2"),
            std::string::npos);
  EXPECT_NE(text.find("pimine_mutation_compactions_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("pimine_mutation_delta_rows 0"), std::string::npos);
}

}  // namespace
}  // namespace pimine
