#include "core/similarity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/decompose.h"
#include "core/segments.h"
#include "core/bounds.h"
#include "test_helpers.h"

namespace pimine {
namespace {

using testing_util::RandomUnitVector;

TEST(SquaredEuclideanTest, KnownValues) {
  const std::vector<float> p = {1.0f, 0.0f, 0.5f};
  const std::vector<float> q = {0.0f, 1.0f, 0.5f};
  EXPECT_DOUBLE_EQ(SquaredEuclidean(p, q), 2.0);
  EXPECT_DOUBLE_EQ(SquaredEuclidean(p, p), 0.0);
}

TEST(SquaredEuclideanTest, Symmetric) {
  const auto p = RandomUnitVector(37, 1);
  const auto q = RandomUnitVector(37, 2);
  EXPECT_DOUBLE_EQ(SquaredEuclidean(p, q), SquaredEuclidean(q, p));
}

TEST(EarlyAbandonTest, ExactWhenBelowThreshold) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const auto p = RandomUnitVector(200, seed);
    const auto q = RandomUnitVector(200, seed + 50);
    const double exact = SquaredEuclidean(p, q);
    // Threshold above the result: must return the exact value.
    EXPECT_DOUBLE_EQ(SquaredEuclideanEarlyAbandon(p, q, exact + 1.0), exact);
    // Threshold below: the returned value must still exceed the threshold
    // (so the candidate is correctly prunable).
    const double abandoned = SquaredEuclideanEarlyAbandon(p, q, exact / 2);
    EXPECT_GT(abandoned, exact / 2);
  }
}

TEST(EarlyAbandonTest, InfiniteThresholdMatchesExact) {
  const auto p = RandomUnitVector(130, 3);
  const auto q = RandomUnitVector(130, 4);
  EXPECT_DOUBLE_EQ(SquaredEuclideanEarlyAbandon(p, q, HUGE_VAL),
                   SquaredEuclidean(p, q));
}

TEST(CosineTest, RangeAndKnownValues) {
  const std::vector<float> x = {1.0f, 0.0f};
  const std::vector<float> y = {0.0f, 1.0f};
  const std::vector<float> d = {1.0f, 1.0f};
  EXPECT_NEAR(CosineSimilarity(x, y), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(x, x), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(x, d), 1.0 / std::sqrt(2.0), 1e-12);
  // Zero vector convention.
  const std::vector<float> z = {0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(CosineSimilarity(x, z), 0.0);
}

TEST(PearsonTest, RangeAndInvariance) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const auto p = RandomUnitVector(64, seed);
    const auto q = RandomUnitVector(64, seed + 31);
    const double r = PearsonCorrelation(p, q);
    EXPECT_GE(r, -1.0 - 1e-9);
    EXPECT_LE(r, 1.0 + 1e-9);
  }
  // Perfect correlation with itself; zero for a constant vector.
  const auto p = RandomUnitVector(64, 5);
  EXPECT_NEAR(PearsonCorrelation(p, p), 1.0, 1e-9);
  const std::vector<float> c(64, 0.25f);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(p, c), 0.0);
}

TEST(DistanceNameTest, AllNames) {
  EXPECT_EQ(DistanceName(Distance::kEuclidean), "ED");
  EXPECT_EQ(DistanceName(Distance::kCosine), "CS");
  EXPECT_EQ(DistanceName(Distance::kPearson), "PCC");
  EXPECT_EQ(DistanceName(Distance::kHamming), "HD");
  EXPECT_FALSE(IsSimilarityMeasure(Distance::kEuclidean));
  EXPECT_TRUE(IsSimilarityMeasure(Distance::kCosine));
  EXPECT_TRUE(IsSimilarityMeasure(Distance::kPearson));
}

// Eq. 3 / Table 4: the exact decompositions reproduce the direct formulas.
TEST(DecompositionTest, EdMatchesDirect) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    const auto p = RandomUnitVector(50, seed);
    const auto q = RandomUnitVector(50, seed + 7);
    const double via_g = EdDecomposition::Combine(
        EdDecomposition::Phi(p), EdDecomposition::Phi(q), DotProduct(p, q));
    EXPECT_NEAR(via_g, SquaredEuclidean(p, q), 1e-9);
  }
}

TEST(DecompositionTest, CsMatchesDirect) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    const auto p = RandomUnitVector(50, seed);
    const auto q = RandomUnitVector(50, seed + 7);
    const double via_g = CsDecomposition::Combine(
        CsDecomposition::Phi(p), CsDecomposition::Phi(q), DotProduct(p, q));
    EXPECT_NEAR(via_g, CosineSimilarity(p, q), 1e-9);
  }
}

TEST(DecompositionTest, PccMatchesDirect) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    const auto p = RandomUnitVector(50, seed);
    const auto q = RandomUnitVector(50, seed + 7);
    const double via_g = PccDecomposition::Combine(
        PccDecomposition::ComputePhi(p), PccDecomposition::ComputePhi(q),
        DotProduct(p, q), 50);
    EXPECT_NEAR(via_g, PearsonCorrelation(p, q), 1e-9);
  }
}

TEST(DecompositionTest, FnnMatchesLbFnn) {
  const size_t dims = 80;
  const int64_t d0 = 8;
  const int64_t l = SegmentLength(dims, d0);
  std::vector<float> pm(d0), ps(d0), qm(d0), qs(d0);
  for (uint64_t seed = 0; seed < 15; ++seed) {
    const auto p = RandomUnitVector(dims, seed);
    const auto q = RandomUnitVector(dims, seed + 3);
    ComputeSegments(p, d0, pm, ps);
    ComputeSegments(q, d0, qm, qs);
    double mean_dot = 0.0, std_dot = 0.0;
    for (int64_t s = 0; s < d0; ++s) {
      mean_dot += static_cast<double>(pm[s]) * qm[s];
      std_dot += static_cast<double>(ps[s]) * qs[s];
    }
    const double via_g = FnnDecomposition::Combine(
        FnnDecomposition::Phi(pm, ps, l), FnnDecomposition::Phi(qm, qs, l),
        mean_dot, std_dot, l);
    EXPECT_NEAR(via_g, LbFnn(pm, ps, qm, qs, l), 1e-6);
  }
}

TEST(DecompositionTest, HdMatchesDefinition) {
  EXPECT_EQ(HdDecomposition::Combine(3, 2, 8), 3);  // 8 bits, 3 both-ones,
                                                    // 2 both-zeros -> HD 3.
}

}  // namespace
}  // namespace pimine
