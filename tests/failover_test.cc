// Replica-shard fault tolerance (DESIGN.md section 12): the deterministic
// chaos harness, the device-to-device failover ladder, and the serve-path
// degraded mode. The locked invariants: chaos off is bit-identical to the
// pre-replica engine; chaos on keeps results exact (host-escalated or
// exact-after-refine in slack mode) for every replicas x scheduler_threads
// combination; and FailoverStats always balances
// (injected == recovered + shed).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "kmeans/kmeans_common.h"
#include "pim/chaos.h"
#include "pim/fleet.h"
#include "serve/serve_options.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "test_helpers.h"

namespace pimine {
namespace {

using testing_util::RandomUnitMatrix;

ChaosEvent Death(uint32_t shard, uint32_t replica, uint64_t at_ns = 0) {
  ChaosEvent e;
  e.at_ns = at_ns;
  e.until_ns = ChaosSchedule::kNoRecovery;
  e.kind = ChaosEventKind::kDeviceDeath;
  e.shard = shard;
  e.replica = replica;
  return e;
}

ChaosEvent Stall(uint32_t shard, uint32_t replica, uint64_t at_ns,
                 uint64_t until_ns) {
  ChaosEvent e;
  e.at_ns = at_ns;
  e.until_ns = until_ns;
  e.kind = ChaosEventKind::kTransientStall;
  e.shard = shard;
  e.replica = replica;
  return e;
}

// --- Chaos harness ------------------------------------------------------

// The seeded generator is a pure function of (config, geometry): two draws
// are identical event for event, and every liveness query is a pure
// function of the queried instant.
TEST(ChaosScheduleTest, GenerateIsDeterministicAndPure) {
  ChaosConfig config;
  config.device_deaths = 3;
  config.stalls = 2;
  config.link_faults = 1;
  config.horizon_ns = 50'000;
  config.seed = 77;

  auto a = ChaosSchedule::Generate(config, 4, 2);
  auto b = ChaosSchedule::Generate(config, 4, 2);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->events().size(), b->events().size());
  ASSERT_EQ(a->events().size(), 6u);
  for (size_t i = 0; i < a->events().size(); ++i) {
    EXPECT_EQ(a->events()[i].at_ns, b->events()[i].at_ns) << i;
    EXPECT_EQ(a->events()[i].until_ns, b->events()[i].until_ns) << i;
    EXPECT_EQ(a->events()[i].kind, b->events()[i].kind) << i;
    EXPECT_EQ(a->events()[i].shard, b->events()[i].shard) << i;
    EXPECT_EQ(a->events()[i].replica, b->events()[i].replica) << i;
    EXPECT_LT(a->events()[i].at_ns, config.horizon_ns) << i;
  }
  // Purity: asking twice, in any order, observes the same fleet.
  for (uint64_t t : {0ull, 10'000ull, 49'999ull, 100'000ull}) {
    for (uint32_t j = 0; j < 4; ++j) {
      EXPECT_EQ(a->LinkDown(j, t), b->LinkDown(j, t));
      EXPECT_EQ(a->HealthyReplicas(j, t), b->HealthyReplicas(j, t));
      for (uint32_t r = 0; r < 2; ++r) {
        EXPECT_EQ(a->ReplicaDown(j, r, t), a->ReplicaDown(j, r, t));
      }
    }
  }

  // A different seed draws a different schedule.
  ChaosConfig other = config;
  other.seed = 78;
  auto c = ChaosSchedule::Generate(other, 4, 2);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (size_t i = 0; i < c->events().size(); ++i) {
    any_diff = any_diff || c->events()[i].at_ns != a->events()[i].at_ns ||
               c->events()[i].shard != a->events()[i].shard;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ChaosScheduleTest, EventWindowSemantics) {
  const auto schedule = ChaosSchedule::FromEvents(
      {Death(0, 1, 100), Stall(1, 0, 200, 300),
       ChaosEvent{400, 500, ChaosEventKind::kLinkFault, 2, 0}},
      /*shards=*/3, /*replicas=*/2);
  ASSERT_TRUE(schedule.enabled());

  // A death never recovers.
  EXPECT_FALSE(schedule.ReplicaDown(0, 1, 99));
  EXPECT_TRUE(schedule.ReplicaDown(0, 1, 100));
  EXPECT_TRUE(schedule.ReplicaDown(0, 1, 1'000'000'000ull));
  EXPECT_EQ(schedule.HealthyReplicas(0, 99), 2u);
  EXPECT_EQ(schedule.HealthyReplicas(0, 100), 1u);

  // A stall is a half-open window.
  EXPECT_FALSE(schedule.ReplicaDown(1, 0, 199));
  EXPECT_TRUE(schedule.ReplicaDown(1, 0, 200));
  EXPECT_TRUE(schedule.ReplicaDown(1, 0, 299));
  EXPECT_FALSE(schedule.ReplicaDown(1, 0, 300));

  // A link fault drops every replica of the shard for its window.
  EXPECT_FALSE(schedule.LinkDown(2, 399));
  EXPECT_TRUE(schedule.LinkDown(2, 450));
  EXPECT_FALSE(schedule.LinkDown(2, 500));
  EXPECT_EQ(schedule.HealthyReplicas(2, 450), 0u);
  EXPECT_TRUE(schedule.ReplicaDown(2, 0, 450));
  EXPECT_TRUE(schedule.ReplicaDown(2, 1, 450));
}

TEST(ChaosScheduleTest, BackoffIsSeededExponentialWithBoundedJitter) {
  const uint64_t base = 2000, jitter = 1000, seed = 0xBAC0FFull;
  for (uint64_t token : {1ull, 42ull, 0xDEADBEEFull}) {
    for (int attempt = 1; attempt <= 4; ++attempt) {
      const uint64_t w =
          FailoverBackoffNs(base, jitter, seed, token, attempt);
      EXPECT_EQ(w, FailoverBackoffNs(base, jitter, seed, token, attempt));
      const uint64_t floor = base << (attempt - 1);
      EXPECT_GE(w, floor) << "token=" << token << " attempt=" << attempt;
      EXPECT_LE(w, floor + jitter);
    }
  }
  // The jitter actually varies with the token (it is a hash, not a rng).
  EXPECT_NE(FailoverBackoffNs(base, jitter, seed, 1, 1),
            FailoverBackoffNs(base, jitter, seed, 2, 1));
}

// --- Engine failover ladder ---------------------------------------------

struct FailoverFixture {
  FloatMatrix data;
  FloatMatrix queries;
  std::unique_ptr<ShardedPimEngine> clean;
  ShardedPimEngine::QueryHandleBatch reference;

  explicit FailoverFixture(int clean_replicas = 1)
      : data(RandomUnitMatrix(103, 24, 5)),
        queries(RandomUnitMatrix(4, 24, 6)) {
    EngineOptions options;
    options.shard.shards = 3;
    options.shard.replicas = clean_replicas;
    auto built = ShardedPimEngine::Build(data, Distance::kEuclidean, options);
    PIMINE_CHECK(built.ok()) << built.status().ToString();
    clean = std::move(built).value();
    auto run = clean->RunQueryBatch(Span(), queries.rows());
    PIMINE_CHECK(run.ok()) << run.status().ToString();
    reference = *std::move(run);
  }

  std::span<const float> Span() const {
    return std::span<const float>(queries.data(),
                                  queries.rows() * queries.cols());
  }

  Result<std::unique_ptr<ShardedPimEngine>> BuildFleet(
      int replicas, bool failover = true, int max_strikes = 3) const {
    EngineOptions options;
    options.shard.shards = 3;
    options.shard.replicas = replicas;
    options.shard.failover = failover;
    options.shard.max_strikes = max_strikes;
    return ShardedPimEngine::Build(data, Distance::kEuclidean, options);
  }

  // Every bound of `run` on `fleet` must equal the clean single-replica
  // fleet's bit for bit.
  void ExpectBoundsIdentical(const ShardedPimEngine& fleet,
                             const ShardedPimEngine::QueryHandleBatch& run,
                             const std::string& label) const {
    for (size_t q = 0; q < queries.rows(); ++q) {
      for (size_t i = 0; i < data.rows(); ++i) {
        ASSERT_EQ(fleet.BoundFor(run, q, i),
                  clean->BoundFor(reference, q, i))
            << label << " q=" << q << " i=" << i;
      }
    }
  }
};

// A dead primary fails over to the next replica: results bit-identical,
// every transition counted, the shard reported degraded.
TEST(FailoverLadderTest, DeadPrimaryRecoversOnReplicaBitIdentical) {
  const FailoverFixture f;
  auto built = f.BuildFleet(/*replicas=*/2);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto fleet = std::move(built).value();

  const auto schedule =
      ChaosSchedule::FromEvents({Death(1, 0, 5)}, 3, 2);
  fleet->set_chaos(&schedule);

  ShardedPimEngine::QueryScratch scratch;
  ShardedPimEngine::QueryHandleBatch handle;
  ShardedPimEngine::DispatchOptions dispatch;
  dispatch.now_ns = 10;
  ASSERT_TRUE(fleet
                  ->RunQueryBatch(f.Span(), f.queries.rows(), &scratch,
                                  &handle, dispatch)
                  .ok());
  f.ExpectBoundsIdentical(*fleet, handle, "dead primary");

  const FailoverStats fo = fleet->FleetStats().failover;
  EXPECT_EQ(fo.injected, 1u);
  EXPECT_EQ(fo.recovered, 1u);
  EXPECT_EQ(fo.shed, 0u);
  EXPECT_EQ(fo.chaos_denied, 1u);
  EXPECT_EQ(fo.strikes, 1u);
  EXPECT_GT(fo.retry_messages, 0u);
  EXPECT_GT(fo.backoff_ns, 0u);
  EXPECT_TRUE(fo.Balanced());
  EXPECT_EQ(fleet->serving_replica(1), 1);
  EXPECT_EQ(fleet->serving_replica(0), 0);
  EXPECT_TRUE(fleet->shard_degraded(1));
  EXPECT_FALSE(fleet->shard_degraded(0));
  EXPECT_EQ(fleet->DegradedShards(), 1);

  // Before any fault instant the same fleet serves from its primary and
  // records nothing — chaos evaluation is purely by dispatch instant.
  fleet->ResetOnlineStats();
  dispatch.now_ns = 3;
  ASSERT_TRUE(fleet
                  ->RunQueryBatch(f.Span(), f.queries.rows(), &scratch,
                                  &handle, dispatch)
                  .ok());
  f.ExpectBoundsIdentical(*fleet, handle, "pre-fault instant");
  EXPECT_FALSE(fleet->FleetStats().failover.Any());
  EXPECT_EQ(fleet->serving_replica(1), 0);
}

// Both replicas dead: with failover the op escalates to host-exact (still
// bit-identical); without it the DeviceFault carries shard, replica count
// and op-nonce provenance.
TEST(FailoverLadderTest, AllReplicasDeadEscalatesToHostExact) {
  const FailoverFixture f;
  const auto schedule =
      ChaosSchedule::FromEvents({Death(1, 0), Death(1, 1)}, 3, 2);

  auto built = f.BuildFleet(/*replicas=*/2);
  ASSERT_TRUE(built.ok());
  const auto fleet = std::move(built).value();
  fleet->set_chaos(&schedule);

  ShardedPimEngine::QueryScratch scratch;
  ShardedPimEngine::QueryHandleBatch handle;
  ShardedPimEngine::DispatchOptions dispatch;
  dispatch.now_ns = 10;
  ASSERT_TRUE(fleet
                  ->RunQueryBatch(f.Span(), f.queries.rows(), &scratch,
                                  &handle, dispatch)
                  .ok());
  f.ExpectBoundsIdentical(*fleet, handle, "all replicas dead");
  const FleetRunStats stats = fleet->FleetStats();
  EXPECT_EQ(stats.failover.injected, 1u);
  EXPECT_EQ(stats.failover.recovered, 0u);
  EXPECT_EQ(stats.failover.shed, 1u);
  EXPECT_EQ(stats.failover.slack_fills, 0u);
  EXPECT_TRUE(stats.failover.Balanced());
  EXPECT_GT(stats.failovers, 0u);
  EXPECT_EQ(fleet->serving_replica(1), fleet->replicas());

  auto strict_built = f.BuildFleet(/*replicas=*/2, /*failover=*/false);
  ASSERT_TRUE(strict_built.ok());
  const auto strict = std::move(strict_built).value();
  strict->set_chaos(&schedule);
  const Status s = strict->RunQueryBatch(f.Span(), f.queries.rows(),
                                         &scratch, &handle, dispatch);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeviceFault);
  EXPECT_NE(s.message().find("shard 1"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("(op "), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("2 replica(s) exhausted"), std::string::npos)
      << s.ToString();
}

// replicas == 1 under chaos is exactly the legacy escalation path: no
// strikes, no retries — a denied primary sheds straight to the host (or
// propagates a DeviceFault when failover is off).
TEST(FailoverLadderTest, SingleReplicaKeepsLegacyEscalation) {
  const FailoverFixture f;
  const auto schedule = ChaosSchedule::FromEvents({Death(1, 0)}, 3, 1);

  auto built = f.BuildFleet(/*replicas=*/1);
  ASSERT_TRUE(built.ok());
  const auto fleet = std::move(built).value();
  fleet->set_chaos(&schedule);

  ShardedPimEngine::QueryScratch scratch;
  ShardedPimEngine::QueryHandleBatch handle;
  ShardedPimEngine::DispatchOptions dispatch;
  dispatch.now_ns = 10;
  ASSERT_TRUE(fleet
                  ->RunQueryBatch(f.Span(), f.queries.rows(), &scratch,
                                  &handle, dispatch)
                  .ok());
  f.ExpectBoundsIdentical(*fleet, handle, "single replica");
  const FailoverStats fo = fleet->FleetStats().failover;
  EXPECT_EQ(fo.injected, 1u);
  EXPECT_EQ(fo.shed, 1u);
  EXPECT_EQ(fo.recovered, 0u);
  EXPECT_EQ(fo.strikes, 0u);     // No ladder with nothing to fail over to.
  EXPECT_EQ(fo.backoff_ns, 0u);  // No retry transition either.
  EXPECT_TRUE(fo.Balanced());

  auto strict_built = f.BuildFleet(/*replicas=*/1, /*failover=*/false);
  ASSERT_TRUE(strict_built.ok());
  const auto strict = std::move(strict_built).value();
  strict->set_chaos(&schedule);
  const Status s = strict->RunQueryBatch(f.Span(), f.queries.rows(),
                                         &scratch, &handle, dispatch);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeviceFault);
}

// The ladder deadline prices out retries: an op that cannot afford the
// next backoff rung sheds immediately, and the strict-mode message says so.
TEST(FailoverLadderTest, LadderDeadlineShedsInsteadOfWaiting) {
  const FailoverFixture f;
  const auto schedule = ChaosSchedule::FromEvents({Death(1, 0)}, 3, 2);

  auto built = f.BuildFleet(/*replicas=*/2);
  ASSERT_TRUE(built.ok());
  const auto fleet = std::move(built).value();
  fleet->set_chaos(&schedule);

  ShardedPimEngine::QueryScratch scratch;
  ShardedPimEngine::QueryHandleBatch handle;
  ShardedPimEngine::DispatchOptions dispatch;
  dispatch.now_ns = 10;
  dispatch.deadline_ns = 1;  // Below the smallest possible backoff.
  ASSERT_TRUE(fleet
                  ->RunQueryBatch(f.Span(), f.queries.rows(), &scratch,
                                  &handle, dispatch)
                  .ok());
  f.ExpectBoundsIdentical(*fleet, handle, "deadline shed");
  const FailoverStats fo = fleet->FleetStats().failover;
  EXPECT_EQ(fo.shed, 1u);
  EXPECT_EQ(fo.recovered, 0u);
  EXPECT_EQ(fo.backoff_ns, 0u);  // The unaffordable wait is never charged.
  EXPECT_TRUE(fo.Balanced());

  auto strict_built = f.BuildFleet(/*replicas=*/2, /*failover=*/false);
  ASSERT_TRUE(strict_built.ok());
  const auto strict = std::move(strict_built).value();
  strict->set_chaos(&schedule);
  const Status s = strict->RunQueryBatch(f.Span(), f.queries.rows(),
                                         &scratch, &handle, dispatch);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("ladder deadline exceeded"), std::string::npos)
      << s.ToString();
}

// Strike semantics: consecutive failures accumulate, a success resets the
// count, max_strikes strikes a replica out until ResetReplicaHealth
// readmits it.
TEST(FailoverLadderTest, StrikeCountResetAndReadmission) {
  const FailoverFixture f;
  // Replica 0 of shard 1 stalls during [0, 1000) and is healthy after.
  const auto schedule =
      ChaosSchedule::FromEvents({Stall(1, 0, 0, 1000)}, 3, 2);

  auto built = f.BuildFleet(/*replicas=*/2, /*failover=*/true,
                            /*max_strikes=*/3);
  ASSERT_TRUE(built.ok());
  const auto fleet = std::move(built).value();
  fleet->set_chaos(&schedule);

  ShardedPimEngine::QueryScratch scratch;
  ShardedPimEngine::QueryHandleBatch handle;
  ShardedPimEngine::DispatchOptions dispatch;

  const auto run_at = [&](uint64_t t) {
    dispatch.now_ns = t;
    ASSERT_TRUE(fleet
                    ->RunQueryBatch(f.Span(), f.queries.rows(), &scratch,
                                    &handle, dispatch)
                    .ok());
    f.ExpectBoundsIdentical(*fleet, handle, "t=" + std::to_string(t));
  };

  // Two failures inside the stall window: two strikes, not yet out.
  run_at(10);
  run_at(20);
  EXPECT_EQ(fleet->replica_strikes(1, 0), 2);
  EXPECT_FALSE(fleet->replica_out(1, 0));

  // A success after the window resets the count (strikes are consecutive).
  run_at(2000);
  EXPECT_EQ(fleet->replica_strikes(1, 0), 0);
  EXPECT_EQ(fleet->serving_replica(1), 0);

  // Three consecutive failures strike the replica out...
  run_at(10);
  run_at(20);
  run_at(30);
  EXPECT_TRUE(fleet->replica_out(1, 0));
  EXPECT_EQ(fleet->FleetStats().failover.struck_out, 1u);
  EXPECT_TRUE(fleet->shard_degraded(1));

  // ...and it stays out even at instants where the schedule says healthy:
  // the ladder skips it (recovering on replica 1) until the operator
  // readmits it.
  fleet->ResetOnlineStats();
  run_at(2000);
  EXPECT_EQ(fleet->serving_replica(1), 1);
  const FailoverStats skipped = fleet->FleetStats().failover;
  EXPECT_EQ(skipped.injected, 1u);
  EXPECT_EQ(skipped.recovered, 1u);
  EXPECT_TRUE(skipped.Balanced());

  fleet->ResetReplicaHealth();
  EXPECT_FALSE(fleet->replica_out(1, 0));
  EXPECT_EQ(fleet->replica_strikes(1, 0), 0);
  run_at(2000);
  EXPECT_EQ(fleet->serving_replica(1), 0);
  EXPECT_FALSE(fleet->shard_degraded(1));
}

// Replication is transparent while no fault fires: replica 0 keeps the
// exact pre-replica build, so a replicas=3 fleet with no chaos installed
// is bit-identical to the replicas=1 fleet — and programming charges scale
// with the copy count.
TEST(FailoverLadderTest, ReplicasAreBitTransparentWithoutFaults) {
  const FailoverFixture f;
  auto built = f.BuildFleet(/*replicas=*/3);
  ASSERT_TRUE(built.ok());
  const auto fleet = std::move(built).value();

  auto run = fleet->RunQueryBatch(f.Span(), f.queries.rows());
  ASSERT_TRUE(run.ok());
  f.ExpectBoundsIdentical(*fleet, *run, "replicas=3 no chaos");
  EXPECT_FALSE(fleet->FleetStats().failover.Any());
  EXPECT_EQ(fleet->PimComputeNs(), f.clean->PimComputeNs());
  // Offline: every copy is programmed (bytes sum over copies), the copies
  // program concurrently (time is the max, not the sum).
  EXPECT_EQ(fleet->OfflineBytesWritten(), 3 * f.clean->OfflineBytesWritten());
  EXPECT_EQ(fleet->OfflineNs(), f.clean->OfflineNs());
}

// --- k-means under chaos ------------------------------------------------

// A primary death during the assign/update iteration: the PIM lower bounds
// and the tree-reduced UpdateCenters sums stay bit-identical to the
// fault-free fleet (the exactness invariant survives failover).
TEST(FailoverKmeansTest, UpdateCentersTreeReduceSurvivesPrimaryDeath) {
  const FloatMatrix data = RandomUnitMatrix(120, 16, 21);
  const int k = 8;
  const FloatMatrix centers = InitCenters(data, k, 33);
  std::vector<int32_t> assignments(data.rows());
  for (size_t i = 0; i < assignments.size(); ++i) {
    assignments[i] = static_cast<int32_t>(i % k);
  }

  EngineOptions options;
  options.shard.shards = 4;
  options.shard.replicas = 2;

  auto clean_built = PimAssignFilter::Build(data, options);
  ASSERT_TRUE(clean_built.ok()) << clean_built.status().ToString();
  const auto clean = std::move(clean_built).value();
  ASSERT_TRUE(clean->BeginIteration(centers).ok());
  std::vector<double> clean_moved;
  const FloatMatrix clean_next =
      UpdateCenters(data, assignments, centers, &clean_moved, clean.get());

  auto chaotic_built = PimAssignFilter::Build(data, options);
  ASSERT_TRUE(chaotic_built.ok());
  const auto chaotic = std::move(chaotic_built).value();
  const auto schedule = ChaosSchedule::FromEvents({Death(2, 0, 5)}, 4, 2);
  chaotic->InstallChaos(&schedule);
  chaotic->SetChaosNowNs(10);
  ASSERT_TRUE(chaotic->BeginIteration(centers).ok());

  for (size_t i = 0; i < data.rows(); ++i) {
    for (int c = 0; c < k; ++c) {
      ASSERT_EQ(chaotic->LowerBound(i, c), clean->LowerBound(i, c))
          << "i=" << i << " c=" << c;
    }
  }
  std::vector<double> moved;
  const FloatMatrix next =
      UpdateCenters(data, assignments, centers, &moved, chaotic.get());
  ASSERT_EQ(next.rows(), clean_next.rows());
  ASSERT_EQ(next.cols(), clean_next.cols());
  for (size_t i = 0; i < next.rows() * next.cols(); ++i) {
    ASSERT_EQ(next.data()[i], clean_next.data()[i]) << "flat index " << i;
  }
  ASSERT_EQ(moved, clean_moved);

  const FailoverStats fo = chaotic->FleetStats().failover;
  EXPECT_GT(fo.injected, 0u);
  EXPECT_EQ(fo.injected, fo.recovered);
  EXPECT_TRUE(fo.Balanced());
}

// --- Serve path ---------------------------------------------------------

constexpr size_t kObjects = 220;
constexpr size_t kDims = 24;
constexpr size_t kQueryRows = 40;

const FloatMatrix& ServeData() {
  static const FloatMatrix* data =
      new FloatMatrix(RandomUnitMatrix(kObjects, kDims, 7));
  return *data;
}

const FloatMatrix& ServeQueries() {
  static const FloatMatrix* queries =
      new FloatMatrix(RandomUnitMatrix(kQueryRows, kDims, 11));
  return *queries;
}

serve::ArrivalTrace ServeTrace() {
  serve::WorkloadSpec spec;
  spec.num_requests = 120;
  spec.offered_qps = 2e6;
  spec.tenant_share = {0.5, 0.5};
  spec.num_query_rows = kQueryRows;
  spec.seed = 99;
  auto trace = serve::GeneratePoissonTrace(spec);
  PIMINE_CHECK(trace.ok()) << trace.status().ToString();
  return *trace;
}

serve::ServeOptions ServeBase(int scheduler_threads) {
  serve::ServeOptions options;
  options.max_batch = 8;
  options.max_wait_ns = 2000;
  options.queue_capacity = 4096;
  options.scheduler_threads = scheduler_threads;
  options.k = 5;
  options.exec.device_batch = 4;
  options.tenants = {{"gold", 4}, {"free", 1}};
  return options;
}

EngineOptions ServeEngine(int replicas) {
  EngineOptions options;
  options.pim_config.num_crossbars = 4096;
  options.shard.shards = 2;
  options.shard.replicas = replicas;
  return options;
}

serve::ReplayOutput MustReplay(serve::PimServer& server,
                               const serve::ArrivalTrace& trace) {
  auto output = server.Replay(trace, ServeQueries());
  PIMINE_CHECK(output.ok()) << output.status().ToString();
  return *std::move(output);
}

// The acceptance matrix: under a seeded device-death schedule, served
// results are bit-identical to the fault-free run for every
// replicas x scheduler_threads combination (exact modes: no degraded
// watermark, so exhaustion escalates host-exact).
TEST(FailoverServeTest, ChaosReplayMatrixBitIdenticalToFaultFree) {
  const serve::ArrivalTrace trace = ServeTrace();

  auto clean_server = serve::PimServer::Build(
      ServeData(), Distance::kEuclidean, ServeEngine(1), ServeBase(1));
  ASSERT_TRUE(clean_server.ok()) << clean_server.status().ToString();
  const serve::ReplayOutput clean = MustReplay(**clean_server, trace);
  ASSERT_GT(clean.stats.served, 0u);

  bool any_injected = false;
  for (int replicas : {1, 2, 3}) {
    for (int threads : {1, 4}) {
      const std::string label = "replicas=" + std::to_string(replicas) +
                                " threads=" + std::to_string(threads);
      serve::ServeOptions options = ServeBase(threads);
      options.chaos.device_deaths = 3;
      options.chaos.horizon_ns = 50'000;
      options.chaos.seed = 4242;
      auto server = serve::PimServer::Build(
          ServeData(), Distance::kEuclidean, ServeEngine(replicas), options);
      ASSERT_TRUE(server.ok()) << label << ": " << server.status().ToString();
      const serve::ReplayOutput output = MustReplay(**server, trace);

      ASSERT_EQ(output.results.size(), clean.results.size()) << label;
      for (size_t i = 0; i < output.results.size(); ++i) {
        ASSERT_TRUE(output.results[i].status.ok()) << label << " query " << i;
        // Failover backoff shifts dispatch instants, so batch COMPOSITION
        // may legally differ from the fault-free run — neighbours cannot
        // (composition invariance is the engine's core contract).
        ASSERT_EQ(output.results[i].neighbors, clean.results[i].neighbors)
            << label << " query " << i;
      }
      const FailoverStats fo = (*server)->engine().FleetStats().failover;
      EXPECT_TRUE(fo.Balanced()) << label << ": " << fo.ToString();
      any_injected = any_injected || fo.injected > 0;
    }
  }
  // The schedule actually disturbed at least one configuration — the
  // matrix is not vacuous.
  EXPECT_TRUE(any_injected);
}

// Chaos off (the default options) leaves the serve path byte-identical:
// same results, healthy healthz, no failover families with nonzero values.
TEST(FailoverServeTest, ChaosOffIsTransparent) {
  const serve::ArrivalTrace trace = ServeTrace();
  auto baseline = serve::PimServer::Build(
      ServeData(), Distance::kEuclidean, ServeEngine(1), ServeBase(1));
  ASSERT_TRUE(baseline.ok());
  const serve::ReplayOutput a = MustReplay(**baseline, trace);

  auto replicated = serve::PimServer::Build(
      ServeData(), Distance::kEuclidean, ServeEngine(3), ServeBase(4));
  ASSERT_TRUE(replicated.ok());
  const serve::ReplayOutput b = MustReplay(**replicated, trace);

  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].neighbors, b.results[i].neighbors) << i;
  }
  EXPECT_EQ(a.stats.shed_queries, 0u);
  EXPECT_EQ(b.stats.shed_queries, 0u);
  EXPECT_EQ(b.stats.degraded_batches, 0u);
  EXPECT_FALSE((*replicated)->engine().FleetStats().failover.Any());
  EXPECT_EQ((*replicated)->HealthzBody(), "ok\n");
  EXPECT_EQ(a.timeseries_json, b.timeseries_json);
}

// Degraded mode: when a shard sinks below the healthy-replica watermark,
// the scheduler sheds lowest-weight-tenant load with a CapacityExceeded
// naming the degraded shard, serves the rest exactly (bound-slack fills
// refine to exact results), and reports degraded through /healthz and the
// failover metric families.
TEST(FailoverServeTest, DegradedModeShedsLowestWeightTenant) {
  const serve::ArrivalTrace trace = ServeTrace();

  auto clean_server = serve::PimServer::Build(
      ServeData(), Distance::kEuclidean, ServeEngine(2), ServeBase(1));
  ASSERT_TRUE(clean_server.ok());
  const serve::ReplayOutput clean = MustReplay(**clean_server, trace);

  serve::ServeOptions options = ServeBase(1);
  options.chaos.device_deaths = 4;
  options.chaos.horizon_ns = 20'000;  // Early deaths: most of the trace
                                      // runs against the degraded fleet.
  options.chaos.seed = 4242;
  options.degrade_watermark = 0.75;   // One dead replica of two trips it.
  options.event_sample_rate = 1.0;
  auto server = serve::PimServer::Build(ServeData(), Distance::kEuclidean,
                                        ServeEngine(2), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const serve::ReplayOutput output = MustReplay(**server, trace);

  ASSERT_GT(output.stats.shed_queries, 0u);
  EXPECT_GT(output.stats.degraded_batches, 0u);
  ASSERT_EQ(output.results.size(), clean.results.size());
  for (size_t i = 0; i < output.results.size(); ++i) {
    const serve::ServedResult& r = output.results[i];
    if (!r.status.ok()) {
      // Only the lowest-weight tenant is ever shed, with a 503-style
      // message naming the degraded shard.
      EXPECT_EQ(r.status.code(), StatusCode::kCapacityExceeded) << i;
      EXPECT_EQ(r.tenant, 1u) << i;  // "free", weight 1.
      EXPECT_NE(r.status.message().find("degraded: shard"),
                std::string::npos)
          << r.status.ToString();
      EXPECT_NE(r.status.message().find("shedding tenant 'free'"),
                std::string::npos)
          << r.status.ToString();
      continue;
    }
    // Served queries stay exact: batch composition and slack fills cannot
    // change any query's neighbours.
    ASSERT_EQ(r.neighbors, clean.results[i].neighbors) << "query " << i;
  }
  const FailoverStats fo = (*server)->engine().FleetStats().failover;
  EXPECT_TRUE(fo.Balanced()) << fo.ToString();

  // Degradation is reported, not fatal: /healthz stays an "ok" body with
  // the degraded detail, and the metric families carry the counters.
  const std::string healthz = (*server)->HealthzBody();
  EXPECT_NE(healthz.find("ok degraded"), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("shard"), std::string::npos) << healthz;
  const std::string metrics = (*server)->MetricsText();
  EXPECT_NE(metrics.find("pimine_fleet_degraded_shards"), std::string::npos);
  EXPECT_NE(metrics.find("pimine_serve_shed_queries_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("pimine_failover_injected_total"),
            std::string::npos);
  // The sampled event log carries the failover records.
  EXPECT_NE(output.events_jsonl.find("\"kind\": \"failover\""),
            std::string::npos);

  // The degraded replay is itself thread-count invariant (results, shed
  // set and telemetry alike).
  serve::ServeOptions threaded_options = options;
  threaded_options.scheduler_threads = 4;
  auto threaded = serve::PimServer::Build(ServeData(), Distance::kEuclidean,
                                          ServeEngine(2), threaded_options);
  ASSERT_TRUE(threaded.ok());
  const serve::ReplayOutput output4 = MustReplay(**threaded, trace);
  ASSERT_EQ(output4.results.size(), output.results.size());
  for (size_t i = 0; i < output.results.size(); ++i) {
    ASSERT_EQ(output4.results[i].status.ok(), output.results[i].status.ok())
        << i;
    ASSERT_EQ(output4.results[i].neighbors, output.results[i].neighbors)
        << i;
  }
  EXPECT_EQ(output4.stats.shed_queries, output.stats.shed_queries);
  EXPECT_EQ(output4.events_jsonl, output.events_jsonl);
  EXPECT_EQ(output4.timeseries_json, output.timeseries_json);
}

}  // namespace
}  // namespace pimine
