#include <memory>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "kmeans/drake.h"
#include "kmeans/elkan.h"
#include "kmeans/hamerly.h"
#include "kmeans/kmeans_common.h"
#include "kmeans/lloyd.h"
#include "kmeans/yinyang.h"
#include "test_helpers.h"

namespace pimine {
namespace {

FloatMatrix ClusteredData(size_t n, size_t d, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "test";
  spec.dims = static_cast<int32_t>(d);
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 6;
  spec.cluster_std = 0.07;
  return DatasetGenerator::Generate(spec, static_cast<int64_t>(n), seed);
}

struct TrajectoryCase {
  int k;
  bool use_pim;
};

class KmeansEquivalenceTest
    : public ::testing::TestWithParam<TrajectoryCase> {};

// Elkan, Drake and Yinyang are exact accelerations of Lloyd; with the same
// seed every variant — PIM or not — must land on identical assignments and
// inertia (the paper's "accuracy is not compromised" claim for k-means).
TEST_P(KmeansEquivalenceTest, AllVariantsFollowLloydTrajectory) {
  const auto [k, use_pim] = GetParam();
  const FloatMatrix data = ClusteredData(400, 24, 17);

  KmeansOptions base_options;
  base_options.k = k;
  base_options.max_iterations = 6;
  base_options.seed = 123;

  LloydKmeans lloyd;
  auto golden = lloyd.Run(data, base_options);
  ASSERT_TRUE(golden.ok());

  KmeansOptions options = base_options;
  options.use_pim = use_pim;

  std::vector<std::unique_ptr<KmeansAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<LloydKmeans>());
  algorithms.push_back(std::make_unique<ElkanKmeans>());
  algorithms.push_back(std::make_unique<DrakeKmeans>());
  algorithms.push_back(std::make_unique<YinyangKmeans>());
  algorithms.push_back(std::make_unique<HamerlyKmeans>());

  for (auto& algorithm : algorithms) {
    auto result = algorithm->Run(data, options);
    ASSERT_TRUE(result.ok()) << algorithm->name() << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->iterations, golden->iterations) << algorithm->name();
    EXPECT_NEAR(result->inertia, golden->inertia, 1e-6)
        << algorithm->name() << (use_pim ? " (PIM)" : "");
    ASSERT_EQ(result->assignments.size(), golden->assignments.size());
    size_t mismatches = 0;
    for (size_t i = 0; i < golden->assignments.size(); ++i) {
      if (result->assignments[i] != golden->assignments[i]) ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u) << algorithm->name()
                              << (use_pim ? " (PIM)" : "");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KmeansEquivalenceTest,
    ::testing::Values(TrajectoryCase{2, false}, TrajectoryCase{8, false},
                      TrajectoryCase{32, false}, TrajectoryCase{8, true},
                      TrajectoryCase{32, true}, TrajectoryCase{64, true}));

TEST(KmeansBasicTest, ConvergesAndImproves) {
  const FloatMatrix data = ClusteredData(300, 16, 3);
  KmeansOptions options;
  options.k = 6;
  options.max_iterations = 20;
  LloydKmeans lloyd;
  auto result = lloyd.Run(data, options);
  ASSERT_TRUE(result.ok());
  // Converges well before the cap on well-separated clusters.
  EXPECT_LT(result->iterations, 20);
  EXPECT_GT(result->iterations, 0);
  EXPECT_GT(result->inertia, 0.0);
  EXPECT_EQ(result->assignments.size(), 300u);
  for (int32_t a : result->assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 6);
  }
}

TEST(KmeansBasicTest, PimReducesExactComputations) {
  const FloatMatrix data = ClusteredData(500, 64, 5);
  KmeansOptions options;
  options.k = 32;
  options.max_iterations = 5;

  LloydKmeans lloyd;
  auto base = lloyd.Run(data, options);
  ASSERT_TRUE(base.ok());

  options.use_pim = true;
  auto pim = lloyd.Run(data, options);
  ASSERT_TRUE(pim.ok());
  EXPECT_LT(pim->stats.exact_count, base->stats.exact_count / 2);
  EXPECT_LT(pim->stats.traffic.bytes_from_memory,
            base->stats.traffic.bytes_from_memory / 2);
  EXPECT_GT(pim->stats.pim_ns, 0.0);
}

TEST(KmeansBoundAlgorithmsTest, ComputeFewerDistancesThanLloyd) {
  const FloatMatrix data = ClusteredData(600, 32, 9);
  KmeansOptions options;
  options.k = 24;
  options.max_iterations = 8;

  LloydKmeans lloyd;
  auto base = lloyd.Run(data, options);
  ASSERT_TRUE(base.ok());

  ElkanKmeans elkan;
  auto accel = elkan.Run(data, options);
  ASSERT_TRUE(accel.ok());
  EXPECT_LT(accel->stats.exact_count, base->stats.exact_count);

  YinyangKmeans yinyang;
  auto yy = yinyang.Run(data, options);
  ASSERT_TRUE(yy.ok());
  EXPECT_LT(yy->stats.exact_count, base->stats.exact_count);
}

TEST(KmeansValidationTest, RejectsBadInput) {
  const FloatMatrix data = ClusteredData(20, 8, 1);
  LloydKmeans lloyd;
  KmeansOptions options;
  options.k = 0;
  EXPECT_FALSE(lloyd.Run(data, options).ok());
  options.k = 21;
  EXPECT_FALSE(lloyd.Run(data, options).ok());
  options.k = 4;
  options.max_iterations = 0;
  EXPECT_FALSE(lloyd.Run(data, options).ok());
  options.max_iterations = 5;
  EXPECT_FALSE(lloyd.Run(FloatMatrix(), options).ok());
}

TEST(KmeansDeterminismTest, SameSeedSameResult) {
  const FloatMatrix data = ClusteredData(200, 12, 8);
  KmeansOptions options;
  options.k = 8;
  options.max_iterations = 4;
  options.seed = 99;
  ElkanKmeans elkan;
  auto a = elkan.Run(data, options);
  auto b = elkan.Run(data, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(KmeansInitTest, DistinctCentersAndDeterminism) {
  const FloatMatrix data = ClusteredData(50, 8, 2);
  const FloatMatrix c1 = InitCenters(data, 10, 5);
  const FloatMatrix c2 = InitCenters(data, 10, 5);
  ASSERT_EQ(c1.rows(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(c1(i, j), c2(i, j));
    }
    for (size_t i2 = i + 1; i2 < 10; ++i2) {
      bool identical = true;
      for (size_t j = 0; j < 8; ++j) {
        if (c1(i, j) != c1(i2, j)) identical = false;
      }
      EXPECT_FALSE(identical) << "duplicate initial centers " << i << ","
                              << i2;
    }
  }
}

TEST(KmeansUpdateTest, EmptyClusterKeepsCenter) {
  FloatMatrix data(4, 2);
  data(0, 0) = 0.0f;
  data(1, 0) = 0.2f;
  data(2, 0) = 0.8f;
  data(3, 0) = 1.0f;
  FloatMatrix centers(3, 2);
  centers(2, 0) = 0.5f;
  centers(2, 1) = 0.5f;
  // Nobody assigned to cluster 2.
  const std::vector<int32_t> assignments = {0, 0, 1, 1};
  std::vector<double> moved;
  const FloatMatrix updated = UpdateCenters(data, assignments, centers,
                                            &moved);
  EXPECT_FLOAT_EQ(updated(2, 0), 0.5f);
  EXPECT_FLOAT_EQ(updated(2, 1), 0.5f);
  EXPECT_DOUBLE_EQ(moved[2], 0.0);
  EXPECT_FLOAT_EQ(updated(0, 0), 0.1f);
  EXPECT_FLOAT_EQ(updated(1, 0), 0.9f);
}

}  // namespace
}  // namespace pimine
