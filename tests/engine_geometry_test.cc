// Property tests sweeping the PIM hardware geometry: the engine's bound
// guarantees and the device's functional results must hold for any
// crossbar size, cell precision, operand width or scaling factor — the
// quantization math is hardware-independent, and the layout math must stay
// self-consistent.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/partitioned_engine.h"
#include "core/similarity.h"
#include "pim/crossbar_math.h"
#include "test_helpers.h"

namespace pimine {
namespace {

using testing_util::RandomUnitMatrix;
using testing_util::RandomUnitVector;

struct Geometry {
  int crossbar_dim;
  int cell_bits;
  int dac_bits;
  int operand_bits;
  double alpha;
};

class EngineGeometryTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(EngineGeometryTest, BoundsHoldUnderAnyHardware) {
  const auto [m, h, dac, b, alpha] = GetParam();
  EngineOptions options;
  options.pim_config.crossbar_dim = m;
  options.pim_config.cell_bits = h;
  options.pim_config.dac_bits = dac;
  options.operand_bits = b;
  options.alpha = alpha;

  const FloatMatrix data = RandomUnitMatrix(80, 40, 0xabc ^ m);
  auto engine_or = PimEngine::Build(data, Distance::kEuclidean, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  PimEngine& engine = **engine_or;

  std::vector<double> bounds;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const auto q = RandomUnitVector(40, 0xdef + seed);
    ASSERT_TRUE(engine.ComputeBounds(q, &bounds).ok());
    for (size_t i = 0; i < data.rows(); ++i) {
      EXPECT_LE(bounds[i], SquaredEuclidean(data.row(i), q) + 1e-9)
          << "m=" << m << " h=" << h << " alpha=" << alpha;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineGeometryTest,
    ::testing::Values(Geometry{128, 2, 2, 32, 1e6},
                      Geometry{256, 2, 2, 32, 1e6},
                      Geometry{512, 4, 4, 32, 1e6},
                      Geometry{256, 1, 1, 24, 1e5},
                      Geometry{64, 2, 2, 16, 1e4},
                      Geometry{256, 8, 8, 32, 1e6},
                      Geometry{256, 2, 2, 12, 1e3}));

// Crossbar accounting stays consistent across geometries: if Theorem 4
// says a dataset fits, the device accepts it; if not, the device rejects.
TEST(LayoutConsistencyTest, PlannerAndDeviceAgree) {
  for (int64_t crossbars : {1, 2, 7, 64}) {
    PimConfig config;
    config.num_crossbars = crossbars;
    for (int64_t n : {10, 300, 5000}) {
      for (int64_t d : {8, 256, 300}) {
        const bool fits = FitsInPimArray(n, 32, d, config);
        IntMatrix data(static_cast<size_t>(n), static_cast<size_t>(d), 1);
        PimDevice device(config);
        EXPECT_EQ(device.ProgramDataset(data).ok(), fits)
            << "crossbars=" << crossbars << " n=" << n << " d=" << d;
      }
    }
  }
}

// A partitioned engine with a single partition must produce exactly the
// direct engine's Theorem 1 bounds.
TEST(PartitionedVsDirectTest, IdenticalWhenOnePartition) {
  const FloatMatrix data = RandomUnitMatrix(60, 24, 9);
  const FloatMatrix queries = RandomUnitMatrix(3, 24, 10);
  EngineOptions options;

  auto direct_or = PimEngine::Build(data, Distance::kEuclidean, options);
  ASSERT_TRUE(direct_or.ok());
  ASSERT_EQ((*direct_or)->mode(), EngineMode::kDirectEd);

  auto part_or = PartitionedPimEngine::Build(data, options);
  ASSERT_TRUE(part_or.ok());
  ASSERT_EQ((*part_or)->num_partitions(), 1);

  std::vector<std::vector<double>> part_bounds;
  ASSERT_TRUE((*part_or)->ComputeBoundsBatch(queries, &part_bounds).ok());
  std::vector<double> direct_bounds;
  for (size_t q = 0; q < queries.rows(); ++q) {
    ASSERT_TRUE(
        (*direct_or)->ComputeBounds(queries.row(q), &direct_bounds).ok());
    for (size_t i = 0; i < data.rows(); ++i) {
      EXPECT_DOUBLE_EQ(part_bounds[q][i], direct_bounds[i]);
    }
  }
}

// Energy accounting: more batches, more energy; resets cleanly.
TEST(EnergyAccountingTest, AccumulatesPerBatch) {
  PimDevice device;
  IntMatrix data(32, 16, 3);
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  std::vector<uint64_t> out;
  const std::vector<int32_t> query(16, 2);
  ASSERT_TRUE(device.DotProductAll(query, &out).ok());
  const double after_one = device.stats().compute_energy_pj;
  EXPECT_GT(after_one, 0.0);
  ASSERT_TRUE(device.DotProductAll(query, &out).ok());
  EXPECT_NEAR(device.stats().compute_energy_pj, 2 * after_one, 1e-9);
  device.ResetOnlineStats();
  EXPECT_DOUBLE_EQ(device.stats().compute_energy_pj, 0.0);
}

}  // namespace
}  // namespace pimine
