#include <cstdio>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "data/bit_matrix.h"
#include "data/catalog.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/matrix.h"
#include "data/normalize.h"
#include "data/simhash.h"
#include "test_helpers.h"

namespace pimine {
namespace {

using testing_util::RandomUnitMatrix;

TEST(MatrixTest, BasicAccess) {
  FloatMatrix m(3, 4, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
  m(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(m.row(1)[2], 7.0f);
  m.mutable_row(0)[3] = 2.0f;
  EXPECT_FLOAT_EQ(m(0, 3), 2.0f);
  EXPECT_EQ(m.SizeBytes(), 12 * sizeof(float));
  EXPECT_TRUE(FloatMatrix().empty());
}

TEST(BitMatrixTest, SetGetAndHamming) {
  BitMatrix m(2, 130);  // spills into a third word.
  EXPECT_EQ(m.words_per_row(), 3u);
  m.Set(0, 0, true);
  m.Set(0, 129, true);
  m.Set(1, 129, true);
  EXPECT_TRUE(m.Get(0, 0));
  EXPECT_TRUE(m.Get(0, 129));
  EXPECT_FALSE(m.Get(0, 64));
  EXPECT_EQ(BitMatrix::HammingDistance(m.row(0), m.row(1)), 1);
  m.Set(0, 0, false);
  EXPECT_EQ(BitMatrix::HammingDistance(m.row(0), m.row(1)), 0);
}

TEST(MinMaxScalerTest, FitTransformUnitRange) {
  FloatMatrix data(3, 2);
  data(0, 0) = -5.0f;
  data(1, 0) = 0.0f;
  data(2, 0) = 5.0f;
  data(0, 1) = 10.0f;
  data(1, 1) = 10.0f;  // constant dimension.
  data(2, 1) = 10.0f;
  const MinMaxScaler scaler = MinMaxScaler::Fit(data);
  const FloatMatrix out = scaler.Transform(data);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 0.5f);
  EXPECT_FLOAT_EQ(out(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 0.0f);  // constant dim maps to 0.

  // Out-of-range queries clamp.
  std::vector<float> query = {100.0f, -3.0f};
  std::vector<float> scaled(2);
  scaler.TransformRow(query, scaled);
  EXPECT_FLOAT_EQ(scaled[0], 1.0f);
  EXPECT_FLOAT_EQ(scaled[1], 0.0f);
}

TEST(CatalogTest, AllEightPaperDatasets) {
  const auto& all = Catalog::All();
  ASSERT_EQ(all.size(), 8u);
  // Table 6 dimensionalities are preserved exactly.
  auto imagenet = Catalog::Find("ImageNet");
  ASSERT_TRUE(imagenet.ok());
  EXPECT_EQ(imagenet->dims, 150);
  EXPECT_EQ(imagenet->paper_n, 2340173);
  EXPECT_EQ(Catalog::Find("MSD")->dims, 420);
  EXPECT_EQ(Catalog::Find("GIST")->dims, 960);
  EXPECT_EQ(Catalog::Find("Trevi")->dims, 4096);
  EXPECT_EQ(Catalog::Find("Year")->dims, 90);
  EXPECT_EQ(Catalog::Find("Notre")->dims, 128);
  EXPECT_EQ(Catalog::Find("NUS-WIDE")->dims, 500);
  EXPECT_EQ(Catalog::Find("Enron")->dims, 1369);
  EXPECT_FALSE(Catalog::Find("nope").ok());
}

TEST(GeneratorTest, ShapeRangeAndDeterminism) {
  const auto spec = Catalog::Find("MSD");
  ASSERT_TRUE(spec.ok());
  const FloatMatrix a = DatasetGenerator::Generate(*spec, 100, 5);
  const FloatMatrix b = DatasetGenerator::Generate(*spec, 100, 5);
  EXPECT_EQ(a.rows(), 100u);
  EXPECT_EQ(a.cols(), 420u);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_GE(a(i, j), 0.0f);
      EXPECT_LE(a(i, j), 1.0f);
      EXPECT_EQ(a(i, j), b(i, j)) << "determinism";
    }
  }
  const FloatMatrix c = DatasetGenerator::Generate(*spec, 100, 6);
  bool any_diff = false;
  for (size_t j = 0; j < a.cols(); ++j) {
    if (a(0, j) != c(0, j)) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "different seeds differ";
}

TEST(GeneratorTest, SparseProfileIsSparse) {
  const auto spec = Catalog::Find("Enron");
  ASSERT_TRUE(spec.ok());
  const FloatMatrix data = DatasetGenerator::Generate(*spec, 200, 9);
  size_t zeros = 0;
  for (size_t i = 0; i < data.rows(); ++i) {
    for (float v : data.row(i)) {
      if (v == 0.0f) ++zeros;
    }
  }
  EXPECT_GT(static_cast<double>(zeros) / data.size(), 0.8);
}

TEST(GeneratorTest, QueriesShareRangeAndDims) {
  const auto spec = Catalog::Find("Year");
  ASSERT_TRUE(spec.ok());
  const FloatMatrix data = DatasetGenerator::Generate(*spec, 50, 1);
  const FloatMatrix queries =
      DatasetGenerator::GenerateQueries(*spec, data, 10, 2);
  EXPECT_EQ(queries.rows(), 10u);
  EXPECT_EQ(queries.cols(), data.cols());
  for (size_t i = 0; i < queries.rows(); ++i) {
    for (float v : queries.row(i)) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(SimHashTest, IdenticalVectorsShareCode) {
  const FloatMatrix data = RandomUnitMatrix(2, 32, 3);
  FloatMatrix duplicated(2, 32);
  for (size_t j = 0; j < 32; ++j) {
    duplicated(0, j) = data(0, j);
    duplicated(1, j) = data(0, j);
  }
  const SimHashEncoder encoder(32, 64, 4);
  const BitMatrix codes = encoder.Encode(duplicated);
  EXPECT_EQ(BitMatrix::HammingDistance(codes.row(0), codes.row(1)), 0);
}

TEST(SimHashTest, HammingTracksAngularSimilarity) {
  // Near-duplicates must land closer in Hamming space than random pairs.
  const size_t dims = 64;
  FloatMatrix data(3, dims);
  Rng rng(5);
  for (size_t j = 0; j < dims; ++j) {
    data(0, j) = rng.NextFloat();
    data(1, j) = data(0, j) + 0.01f * rng.NextFloat();  // near-duplicate.
    data(2, j) = rng.NextFloat();                       // unrelated.
  }
  const SimHashEncoder encoder(dims, 512, 6);
  const BitMatrix codes = encoder.Encode(data);
  const int near = BitMatrix::HammingDistance(codes.row(0), codes.row(1));
  const int far = BitMatrix::HammingDistance(codes.row(0), codes.row(2));
  EXPECT_LT(near, far);
}

TEST(IoTest, RoundTrip) {
  const FloatMatrix original = RandomUnitMatrix(17, 9, 7);
  const std::string path = ::testing::TempDir() + "/pimine_matrix.bin";
  ASSERT_TRUE(SaveMatrix(original, path).ok());
  auto loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->rows(), 17u);
  ASSERT_EQ(loaded->cols(), 9u);
  for (size_t i = 0; i < 17; ++i) {
    for (size_t j = 0; j < 9; ++j) {
      EXPECT_EQ((*loaded)(i, j), original(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST(IoTest, ErrorsAreStatusNotCrash) {
  EXPECT_EQ(LoadMatrix("/nonexistent/path/matrix.bin").status().code(),
            StatusCode::kIOError);
  // Not a matrix file.
  const std::string path = ::testing::TempDir() + "/pimine_garbage.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "this is not a matrix";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  const auto result = LoadMatrix(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
  EXPECT_FALSE(SaveMatrix(FloatMatrix(1, 1), "/nonexistent/dir/x.bin").ok());
}

TEST(IoTest, CorruptFilesReportFileAndOffsetContext) {
  const std::string path = ::testing::TempDir() + "/pimine_corrupt.bin";
  const auto write_bytes = [&](const void* bytes, size_t count) {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes, 1, count, f), count);
    std::fclose(f);
  };

  // Truncated header: only 10 of the 20 header bytes are present.
  const unsigned char partial[10] = {0x4d, 0x31, 0x4d, 0x50, 3, 0, 0, 0, 0, 0};
  write_bytes(partial, sizeof(partial));
  auto result = LoadMatrix(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find(path), std::string::npos);
  EXPECT_NE(result.status().message().find("truncated header"),
            std::string::npos)
      << result.status().ToString();

  // Truncated payload: a valid 2x3 header followed by only 4 of 6 floats.
  {
    const FloatMatrix full = RandomUnitMatrix(2, 3, 13);
    ASSERT_TRUE(SaveMatrix(full, path).ok());
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    unsigned char buf[20 + 6 * sizeof(float)];
    ASSERT_EQ(std::fread(buf, 1, sizeof(buf), f), sizeof(buf));
    std::fclose(f);
    write_bytes(buf, 20 + 4 * sizeof(float));
  }
  result = LoadMatrix(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  const std::string& message = result.status().message();
  EXPECT_NE(message.find("truncated payload"), std::string::npos) << message;
  EXPECT_NE(message.find("expected 6 floats at offset 20"), std::string::npos)
      << message;
  EXPECT_NE(message.find("read 4"), std::string::npos) << message;

  // Overflowing shape: rows * cols wraps uint64 / exceeds the element cap
  // but each dimension passes the per-axis plausibility bound.
  {
    const uint32_t magic = 0x504d314d;
    const uint64_t rows = 1ULL << 40, cols = 1ULL << 24;
    unsigned char header[20];
    std::memcpy(header, &magic, 4);
    std::memcpy(header + 4, &rows, 8);
    std::memcpy(header + 12, &cols, 8);
    write_bytes(header, sizeof(header));
  }
  result = LoadMatrix(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("implausible matrix shape"),
            std::string::npos)
      << result.status().ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pimine
