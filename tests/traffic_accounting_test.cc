// Tests of the traffic accounting that drives every modeled number: the
// counted bytes must track what the algorithms actually touch, and the
// PIM variants' lazy combines must be charged per inspected result.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/generator.h"
#include "knn/standard_knn.h"
#include "knn/standard_pim_knn.h"
#include "sim/traffic.h"
#include "test_helpers.h"
#include "util/top_k.h"
#include "util/random.h"

namespace pimine {
namespace {

using testing_util::RandomUnitMatrix;
using testing_util::RandomUnitVector;

FloatMatrix Clustered(size_t n, size_t d, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "traffic";
  spec.dims = static_cast<int32_t>(d);
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 8;
  spec.cluster_std = 0.08;
  return DatasetGenerator::Generate(spec, static_cast<int64_t>(n), seed);
}

TEST(TrafficAccountingTest, StandardScanBoundedByFullPayload) {
  const size_t n = 1000;
  const size_t d = 64;
  const FloatMatrix data = Clustered(n, d, 1);
  const FloatMatrix queries = RandomUnitMatrix(4, d, 2);

  StandardKnn standard;
  ASSERT_TRUE(standard.Prepare(data).ok());
  auto result = standard.Search(queries, 5);
  ASSERT_TRUE(result.ok());

  const uint64_t full = 4ull * n * d * sizeof(float);
  // Early abandoning can only reduce the scan's traffic...
  EXPECT_LE(result->stats.traffic.bytes_from_memory, full);
  // ...but a meaningful fraction must still be read.
  EXPECT_GE(result->stats.traffic.bytes_from_memory, full / 20);
  EXPECT_EQ(result->stats.traffic.pim_results_loaded, 0u);
}

TEST(TrafficAccountingTest, PimVariantLoadsResultsNotVectors) {
  const size_t n = 2000;
  const size_t d = 128;
  const FloatMatrix data = Clustered(n, d, 3);
  const FloatMatrix queries = RandomUnitMatrix(3, d, 4);

  StandardPimKnn pim(Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(pim.Prepare(data).ok());
  auto result = pim.Search(queries, 5);
  ASSERT_TRUE(result.ok());

  // One combine per object per query: exactly that many PIM result loads
  // (the Fig. 8 "3*b bits" story).
  EXPECT_EQ(result->stats.traffic.pim_results_loaded, 3ull * n);
  // Vector payload read only for the refined candidates.
  EXPECT_LT(result->stats.traffic.bytes_from_memory,
            3ull * n * d * sizeof(float) / 4);
}

TEST(TrafficAccountingTest, LazyCombineChargesPerInspection) {
  const FloatMatrix data = RandomUnitMatrix(100, 16, 5);
  auto engine_or =
      PimEngine::Build(data, Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(engine_or.ok());
  PimEngine& engine = **engine_or;

  auto handle_or = engine.RunQuery(RandomUnitVector(16, 6));
  ASSERT_TRUE(handle_or.ok());

  TrafficScope scope;
  engine.BoundFor(*handle_or, 0);
  engine.BoundFor(*handle_or, 1);
  const TrafficCounters delta = scope.Delta();
  EXPECT_EQ(delta.pim_results_loaded, 2u);
}

// Reference check of TopK against a full sort, randomized.
TEST(TopKReferenceTest, MatchesSortedPrefix) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 50 + rng.NextBounded(200);
    const size_t k = 1 + rng.NextBounded(20);
    std::vector<double> values(n);
    for (double& v : values) {
      v = rng.NextDouble();
      // Inject duplicates to exercise tie handling.
      if (rng.NextBool(0.2)) v = 0.5;
    }
    TopK topk(k);
    for (size_t i = 0; i < n; ++i) {
      topk.Push(values[i], static_cast<int32_t>(i));
    }
    const auto got = topk.TakeSorted();

    std::vector<Neighbor> expected;
    for (size_t i = 0; i < n; ++i) {
      expected.push_back({values[i], static_cast<int32_t>(i)});
    }
    std::sort(expected.begin(), expected.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.id < b.id;
              });
    expected.resize(std::min(k, n));
    ASSERT_EQ(got.size(), expected.size()) << "trial " << trial;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id) << "trial " << trial;
      EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
    }
  }
}

}  // namespace
}  // namespace pimine
