#include "pim/crossbar.h"

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/random.h"

namespace pimine {
namespace {

// The paper's Fig. 1 example: three 3-dim vectors, multiplicand [3,1,2].
TEST(CrossbarTest, PaperFigure1Example) {
  Crossbar xbar(4, 2);
  const std::vector<uint32_t> v1 = {3, 1, 0};
  const std::vector<uint32_t> v2 = {1, 2, 3};
  const std::vector<uint32_t> v3 = {2, 0, 1};
  ASSERT_TRUE(xbar.ProgramVector(0, v1, 2).ok());
  ASSERT_TRUE(xbar.ProgramVector(1, v2, 2).ok());
  ASSERT_TRUE(xbar.ProgramVector(2, v3, 2).ok());

  const std::vector<uint32_t> input = {3, 1, 2};
  auto result = xbar.DotProduct(input, 2, 2, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values[0], 10u);  // 3*3 + 1*1 + 0*2.
  EXPECT_EQ(result->values[1], 11u);  // 1*3 + 2*1 + 3*2.
  EXPECT_EQ(result->values[2], 8u);   // 2*3 + 0*1 + 1*2.
  EXPECT_EQ(result->cycles, 1);       // 2-bit input on 2-bit DAC: one cycle.
}

// The paper's Fig. 2 regime: 6-bit operands sliced onto 2-bit cells.
TEST(CrossbarTest, BitSlicedHighPrecisionOperands) {
  Crossbar xbar(8, 2);
  // 6-bit operands need 3 slices; check the cell contents of value 25
  // ("011001" -> slices 01, 10, 01 per Fig. 2).
  const std::vector<uint32_t> operands = {25, 9};
  ASSERT_TRUE(xbar.ProgramVector(0, operands, 6).ok());
  EXPECT_EQ(xbar.cell(0, 0), 1);  // LSB slice of 25.
  EXPECT_EQ(xbar.cell(0, 1), 2);
  EXPECT_EQ(xbar.cell(0, 2), 1);  // MSB slice of 25.
  EXPECT_EQ(xbar.cell(1, 0), 1);  // 9 = 001001.
  EXPECT_EQ(xbar.cell(1, 1), 2);
  EXPECT_EQ(xbar.cell(1, 2), 0);

  // [9, 20].[25, 14] = 505, the Fig. 2 result.
  Crossbar fig2(8, 2);
  ASSERT_TRUE(fig2.ProgramVector(0, std::vector<uint32_t>{9, 20}, 6).ok());
  auto result = fig2.DotProduct(std::vector<uint32_t>{25, 14}, 6, 6, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values[0], 505u);
  EXPECT_EQ(result->cycles, 3);  // 6-bit input, 2 bits per DAC cycle.
}

struct GeometryCase {
  int dim;
  int cell_bits;
  int operand_bits;
  int dac_bits;
};

class CrossbarSweepTest : public ::testing::TestWithParam<GeometryCase> {};

// Property: the slice-pipeline emulation equals the plain integer dot
// product for random operands, across geometries.
TEST_P(CrossbarSweepTest, PipelineMatchesIntegerDotProduct) {
  const auto [dim, cell_bits, operand_bits, dac_bits] = GetParam();
  Crossbar xbar(dim, cell_bits);
  Rng rng(0xc0ffee ^ dim ^ operand_bits);
  const uint64_t limit = 1ULL << operand_bits;
  const int cols = xbar.NumLogicalColumns(operand_bits);

  std::vector<std::vector<uint32_t>> vectors(cols);
  for (int c = 0; c < cols; ++c) {
    vectors[c].resize(dim);
    for (auto& v : vectors[c]) {
      v = static_cast<uint32_t>(rng.NextBounded(limit));
    }
    ASSERT_TRUE(xbar.ProgramVector(c, vectors[c], operand_bits).ok());
  }
  std::vector<uint32_t> input(dim);
  for (auto& v : input) v = static_cast<uint32_t>(rng.NextBounded(limit));

  auto result = xbar.DotProduct(input, operand_bits, operand_bits, dac_bits);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cycles, NumSlices(operand_bits, dac_bits));
  for (int c = 0; c < cols; ++c) {
    uint64_t expected = 0;
    for (int r = 0; r < dim; ++r) {
      expected += static_cast<uint64_t>(vectors[c][r]) * input[r];
    }
    EXPECT_EQ(result->values[c], expected) << "column " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossbarSweepTest,
    ::testing::Values(GeometryCase{4, 2, 2, 2}, GeometryCase{8, 2, 6, 2},
                      GeometryCase{16, 2, 8, 2}, GeometryCase{16, 1, 8, 1},
                      GeometryCase{32, 4, 16, 4}, GeometryCase{8, 2, 16, 4},
                      GeometryCase{64, 2, 20, 2}, GeometryCase{16, 8, 8, 8},
                      GeometryCase{8, 3, 9, 3}));

TEST(CrossbarErrorTest, RejectsBadInput) {
  Crossbar xbar(8, 2);
  // Operand exceeding bit width.
  EXPECT_FALSE(
      xbar.ProgramVector(0, std::vector<uint32_t>{5}, 2).ok());
  // Logical column out of range (8 cols / 3 slices for 6-bit = 2 columns).
  EXPECT_FALSE(
      xbar.ProgramVector(5, std::vector<uint32_t>{1}, 6).ok());
  // Too many operands.
  EXPECT_FALSE(
      xbar.ProgramVector(0, std::vector<uint32_t>(9, 1), 2).ok());
  // Input longer than the crossbar.
  ASSERT_TRUE(xbar.ProgramVector(0, std::vector<uint32_t>{1}, 2).ok());
  EXPECT_FALSE(
      xbar.DotProduct(std::vector<uint32_t>(9, 1), 2, 2, 2).ok());
  // DAC wider than the input.
  EXPECT_FALSE(
      xbar.DotProduct(std::vector<uint32_t>{1}, 2, 2, 4).ok());
}

TEST(CrossbarEnduranceTest, CountsCellWrites) {
  Crossbar xbar(4, 2);
  EXPECT_EQ(xbar.cell_writes(), 0u);
  ASSERT_TRUE(xbar.ProgramVector(0, std::vector<uint32_t>{1, 2}, 2).ok());
  // One slice per operand; unused rows of the column are cleared too.
  EXPECT_EQ(xbar.cell_writes(), 4u);
  ASSERT_TRUE(xbar.ProgramVector(0, std::vector<uint32_t>{3, 0}, 2).ok());
  EXPECT_EQ(xbar.cell_writes(), 8u);
}

TEST(CrossbarTest, ShortVectorPadsWithZeros) {
  Crossbar xbar(8, 2);
  ASSERT_TRUE(xbar.ProgramVector(0, std::vector<uint32_t>{3}, 2).ok());
  auto result =
      xbar.DotProduct(std::vector<uint32_t>{2, 3, 3, 3, 3, 3, 3, 3}, 2, 2, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values[0], 6u);  // rows beyond the vector contribute 0.
}

}  // namespace
}  // namespace pimine
