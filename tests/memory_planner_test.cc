#include "core/memory_planner.h"

#include <gtest/gtest.h>

#include "core/segments.h"
#include "test_helpers.h"

namespace pimine {
namespace {

using testing_util::RandomUnitMatrix;

TEST(PlanPimLayoutTest, FullDimensionalityWhenRoomy) {
  PimConfig config;
  auto plan = PlanPimLayout(1000, 128, 32, 1, config);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->s, 128);
  EXPECT_FALSE(plan->compressed);
  EXPECT_GT(plan->data_crossbars, 0);
}

TEST(PlanPimLayoutTest, CompressesUnderPressure) {
  PimConfig config;
  config.num_crossbars = 8;
  auto plan = PlanPimLayout(4096, 512, 32, 1, config);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->compressed);
  EXPECT_LT(plan->s, 512);
  EXPECT_GE(plan->s, 1);
  EXPECT_NE(plan->ToString().find("compressed"), std::string::npos);
}

TEST(PlanPimLayoutTest, CopiesHalveTheBudget) {
  PimConfig config;
  config.num_crossbars = 16;
  auto one = PlanPimLayout(4096, 512, 32, 1, config);
  auto two = PlanPimLayout(4096, 512, 32, 2, config);
  ASSERT_TRUE(one.ok() && two.ok());
  EXPECT_GE(one->s, two->s);
}

TEST(PlanPimLayoutTest, RejectsBadArguments) {
  PimConfig config;
  EXPECT_FALSE(PlanPimLayout(0, 10, 32, 1, config).ok());
  EXPECT_FALSE(PlanPimLayout(10, 0, 32, 1, config).ok());
  EXPECT_FALSE(PlanPimLayout(10, 10, 32, 0, config).ok());
}

TEST(CompressTest, SegmentMeansMatchSegmentStats) {
  const FloatMatrix data = RandomUnitMatrix(10, 24, 1);
  const FloatMatrix compressed = CompressBySegmentMeans(data, 6);
  ASSERT_EQ(compressed.rows(), 10u);
  ASSERT_EQ(compressed.cols(), 6u);
  const SegmentStats stats = ComputeSegmentStats(data, 6);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t s = 0; s < 6; ++s) {
      EXPECT_FLOAT_EQ(compressed(i, s), stats.means(i, s));
    }
  }
}

TEST(ScaleTest, ProportionalCrossbarBudget) {
  PimConfig base;  // 131072 crossbars.
  const PimConfig scaled = ScalePimArrayForDataset(992272, 20000, base);
  EXPECT_NEAR(static_cast<double>(scaled.num_crossbars),
              131072.0 * 20000 / 992272, 2.0);
  // Other parameters unchanged.
  EXPECT_EQ(scaled.crossbar_dim, base.crossbar_dim);
  EXPECT_EQ(scaled.cell_bits, base.cell_bits);
}

// The reproduction mechanism (DESIGN.md): with the crossbar budget scaled
// to the dataset, Theorem 4 yields a compressed dimensionality in the same
// regime as the paper's full-size run (s ~ 105-270 on MSD).
TEST(ScaleTest, MsdRegimeReproduced) {
  PimConfig base;
  const PimConfig scaled = ScalePimArrayForDataset(992272, 20000, base);
  auto plan = PlanPimLayout(20000, 420, 32, 2, scaled);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->compressed);
  EXPECT_GT(plan->s, 50);
  EXPECT_LT(plan->s, 420);
}

}  // namespace
}  // namespace pimine
