#include "core/plan.h"

#include <gtest/gtest.h>

namespace pimine {
namespace {

TEST(PlanCostTest, ManualExample) {
  // One bound: T=10 bits, prunes 90%; exact costs 1000 bits.
  const std::vector<BoundCandidate> candidates = {
      {"B1", 10.0, 0.9, false}};
  const std::vector<size_t> selected = {0};
  // Eq. 13: 10 + 0.1 * 1000 = 110.
  EXPECT_DOUBLE_EQ(PlanCostBits(candidates, selected, 1000.0), 110.0);
  // Empty plan: exact for everyone.
  EXPECT_DOUBLE_EQ(PlanCostBits(candidates, {}, 1000.0), 1000.0);
}

TEST(PlanCostTest, CascadeMultipliesSurvivors) {
  const std::vector<BoundCandidate> candidates = {
      {"B1", 10.0, 0.5, false}, {"B2", 20.0, 0.5, false}};
  const std::vector<size_t> selected = {0, 1};
  // 10 + 0.5*20 + 0.25*100 = 45.
  EXPECT_DOUBLE_EQ(PlanCostBits(candidates, selected, 100.0), 45.0);
}

TEST(ChoosePlanTest, PicksCheapestSubset) {
  // A dominant cheap bound plus modest exact cost makes every extra bound
  // pure overhead: {PIM} = 96 + 0.01*500 = 101, {PIM, LB16} = 106.25, ...
  const std::vector<BoundCandidate> candidates = {
      {"PIM", 96.0, 0.99, true},
      {"LB16", 1000.0, 0.95, false},
      {"LB4", 4000.0, 0.97, false}};
  const ExecutionPlan plan = ChooseExecutionPlan(candidates, 500.0);
  ASSERT_EQ(plan.selected.size(), 1u);
  EXPECT_EQ(plan.selected[0], 0u);
  EXPECT_NEAR(plan.cost_bits_per_object, 96.0 + 0.01 * 500.0, 1e-9);
}

TEST(ChoosePlanTest, KeepsSecondBoundWhenItPaysOff) {
  // The first bound is weak; a second, tighter bound pays for itself.
  const std::vector<BoundCandidate> candidates = {
      {"weak", 10.0, 0.5, false}, {"tight", 50.0, 0.9, false}};
  const ExecutionPlan plan = ChooseExecutionPlan(candidates, 10000.0);
  // Options: {} = 10000; {0} = 10+5000; {1} = 50+1000=1050;
  // {0,1} = 10 + 0.5*50 + 0.05*10000 = 535. Best: both.
  ASSERT_EQ(plan.selected.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.cost_bits_per_object, 535.0);
}

TEST(ChoosePlanTest, EmptyWhenBoundsUseless) {
  const std::vector<BoundCandidate> candidates = {
      {"useless", 500.0, 0.0, false}};
  const ExecutionPlan plan = ChooseExecutionPlan(candidates, 1000.0);
  EXPECT_TRUE(plan.selected.empty());
  EXPECT_DOUBLE_EQ(plan.cost_bits_per_object, 1000.0);
}

TEST(ChoosePlanTest, EmptyCandidateSet) {
  const ExecutionPlan plan = ChooseExecutionPlan({}, 777.0);
  EXPECT_TRUE(plan.selected.empty());
  EXPECT_DOUBLE_EQ(plan.cost_bits_per_object, 777.0);
}

TEST(MeasurePruningRatioTest, LowerAndUpperBoundDirections) {
  const std::vector<double> bounds = {1.0, 2.0, 3.0, 4.0};
  // Lower bounds (distance): prune when bound > threshold.
  EXPECT_DOUBLE_EQ(MeasurePruningRatio(bounds, 2.5, false), 0.5);
  EXPECT_DOUBLE_EQ(MeasurePruningRatio(bounds, 0.5, false), 1.0);
  // Upper bounds (similarity): prune when bound < threshold.
  EXPECT_DOUBLE_EQ(MeasurePruningRatio(bounds, 2.5, true), 0.5);
  EXPECT_DOUBLE_EQ(MeasurePruningRatio({}, 1.0, false), 0.0);
}

TEST(PlanToStringTest, HumanReadable) {
  const std::vector<BoundCandidate> candidates = {
      {"PIM", 96.0, 0.99, true}, {"LB4", 4000.0, 0.97, false}};
  ExecutionPlan plan;
  plan.selected = {0, 1};
  plan.cost_bits_per_object = 123.0;
  const std::string s = plan.ToString(candidates);
  EXPECT_NE(s.find("PIM"), std::string::npos);
  EXPECT_NE(s.find("LB4"), std::string::npos);
  EXPECT_NE(s.find("exact"), std::string::npos);
}

}  // namespace
}  // namespace pimine
