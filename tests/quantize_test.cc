#include "core/quantize.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/segments.h"
#include "test_helpers.h"

namespace pimine {
namespace {

using testing_util::RandomUnitVector;

TEST(QuantizerTest, FloorScaling) {
  const Quantizer quant(1000.0);
  EXPECT_EQ(quant.QuantizeValue(0.0f), 0);
  EXPECT_EQ(quant.QuantizeValue(0.5532f), 553);  // the paper's Fig. 9 value.
  EXPECT_EQ(quant.QuantizeValue(1.0f), 1000);
  EXPECT_EQ(quant.QuantizeValue(0.9994f), 999);
}

TEST(QuantizerTest, RowAndMatrixQuantization) {
  const Quantizer quant(100.0);
  const std::vector<float> row = {0.125f, 0.999f, 0.0f};
  std::vector<int32_t> out(3);
  quant.QuantizeRow(row, out);
  EXPECT_EQ(out[0], 12);
  EXPECT_EQ(out[1], 99);
  EXPECT_EQ(out[2], 0);

  FloatMatrix m(2, 2);
  m(0, 0) = 0.25f;
  m(1, 1) = 0.75f;
  const IntMatrix q = quant.Quantize(m);
  EXPECT_EQ(q(0, 0), 25);
  EXPECT_EQ(q(0, 1), 0);
  EXPECT_EQ(q(1, 1), 75);
}

TEST(QuantizerTest, PhiEdMatchesDefinition) {
  const double alpha = 1e4;
  const Quantizer quant(alpha);
  const auto p = RandomUnitVector(64, 3);
  double expected = 0.0;
  for (float v : p) {
    const double scaled = static_cast<double>(v) * alpha;
    expected += scaled * scaled - 2.0 * std::floor(scaled);
  }
  EXPECT_NEAR(quant.PhiEd(p), expected, 1e-6);
}

TEST(QuantizerTest, PhiAllMatchesRowwise) {
  const Quantizer quant(1e5);
  FloatMatrix data(3, 8);
  for (size_t i = 0; i < 3; ++i) {
    const auto row = RandomUnitVector(8, 10 + i);
    std::copy(row.begin(), row.end(), data.mutable_row(i).begin());
  }
  const auto all = quant.PhiEdAll(data);
  ASSERT_EQ(all.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(all[i], quant.PhiEd(data.row(i)));
  }
}

TEST(QuantizerTest, PhiFnnAndSmDefinitions) {
  const double alpha = 1e3;
  const Quantizer quant(alpha);
  const auto p = RandomUnitVector(32, 4);
  std::vector<float> means(4), stds(4);
  ComputeSegments(p, 4, means, stds);

  double expected_fnn = 0.0;
  double expected_sm = 0.0;
  for (int s = 0; s < 4; ++s) {
    const double mu = static_cast<double>(means[s]) * alpha;
    const double sigma = static_cast<double>(stds[s]) * alpha;
    expected_fnn += mu * mu + sigma * sigma - 2.0 * std::floor(mu) -
                    2.0 * std::floor(sigma);
    expected_sm += mu * mu - 2.0 * std::floor(mu);
  }
  EXPECT_NEAR(quant.PhiFnn(means, stds), expected_fnn, 1e-6);
  EXPECT_NEAR(quant.PhiSm(means), expected_sm, 1e-6);
}

TEST(QuantizerTest, SumFloors) {
  const Quantizer quant(10.0);
  const std::vector<float> p = {0.15f, 0.98f, 0.5f};
  EXPECT_DOUBLE_EQ(quant.SumFloors(p), 1.0 + 9.0 + 5.0);
}

TEST(QuantizerTest, AlphaAccessor) {
  EXPECT_DOUBLE_EQ(Quantizer(12345.0).alpha(), 12345.0);
  EXPECT_DOUBLE_EQ(Quantizer().alpha(), 1e6);
}

}  // namespace
}  // namespace pimine
