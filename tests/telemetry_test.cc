// Tests of the live telemetry plane (src/obs + serve/fleet wiring):
// rolling timeseries windows, SLO burn rates, hash-sampled event log,
// labeled metric families with strict Prometheus exposition, histogram
// JSON round trips, the embedded HTTP exposition endpoint, and the
// per-shard fleet health export whose totals must equal the aggregate
// FleetRunStats accounting exactly.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sharded_engine.h"
#include "obs/event_log.h"
#include "obs/exposition_server.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "test_helpers.h"

namespace pimine {
namespace {

using obs::EventLog;
using obs::EventLogOptions;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::QueryEvent;
using obs::TimeSeries;
using obs::TimeSeriesOptions;
using testing_util::RandomUnitMatrix;

// ---------------------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------------------

TimeSeriesOptions SmallWindows() {
  TimeSeriesOptions options;
  options.window_ns = 1000;
  options.num_windows = 4;
  options.slo_short_windows = 2;
  options.slo_long_windows = 4;
  options.slo_budget = 0.1;
  return options;
}

TEST(TimeSeriesTest, CountersLandInTheirWindows) {
  TimeSeries ts(SmallWindows());
  ts.Count("served", 500);        // window 0.
  ts.Count("served", 1500);       // window 1.
  ts.Count("served", 1999, 2);    // window 1.
  EXPECT_EQ(ts.WindowIndexFor(500), 0u);
  EXPECT_EQ(ts.WindowIndexFor(1999), 1u);
  EXPECT_EQ(ts.CounterInWindow("served", 0), 1u);
  EXPECT_EQ(ts.CounterInWindow("served", 1), 3u);
  EXPECT_EQ(ts.CounterInWindow("served", 2), 0u);
  EXPECT_EQ(ts.CounterInWindow("missing", 0), 0u);
  EXPECT_EQ(ts.newest_window(), 1u);
  // Rate: count / window seconds; 1000 ns windows -> count * 1e6 / s.
  EXPECT_DOUBLE_EQ(ts.RatePerSec("served", 1), 3e6);
}

TEST(TimeSeriesTest, RingEvictsOldWindowsAndCountsLateSamples) {
  TimeSeries ts(SmallWindows());
  ts.Count("served", 100);  // window 0.
  ts.Count("served", 9500); // window 9: windows 0..5 fall out of the ring.
  EXPECT_EQ(ts.CounterInWindow("served", 0), 0u);
  EXPECT_EQ(ts.CounterInWindow("served", 9), 1u);
  EXPECT_EQ(ts.oldest_window(), 6u);
  EXPECT_EQ(ts.dropped_late(), 0u);
  // Backfill within retention is exact; behind the horizon is dropped.
  ts.Count("served", 6500);  // window 6: still retained.
  EXPECT_EQ(ts.CounterInWindow("served", 6), 1u);
  EXPECT_EQ(ts.dropped_late(), 0u);
  ts.Count("served", 100);   // window 0 again: behind the horizon.
  EXPECT_EQ(ts.dropped_late(), 1u);
  EXPECT_EQ(ts.CounterInWindow("served", 9), 1u);  // state unchanged.
}

TEST(TimeSeriesTest, PerWindowQuantileBounds) {
  TimeSeries ts(SmallWindows());
  for (int i = 0; i < 9; ++i) ts.Observe("latency_ns", 100, 100.0);
  ts.Observe("latency_ns", 200, 7000.0);   // same window, the tail sample.
  ts.Observe("latency_ns", 1100, 50.0);    // next window.
  const Histogram w0 = ts.HistogramInWindow("latency_ns", 0);
  EXPECT_EQ(w0.count(), 10u);
  EXPECT_EQ(w0.QuantileUpperBound(0.50), 127u);    // bucket of 100.
  EXPECT_EQ(w0.QuantileUpperBound(0.99), 8191u);   // bucket of 7000.
  EXPECT_EQ(w0.max_ticks(), 7000u);
  const Histogram w1 = ts.HistogramInWindow("latency_ns", 1);
  EXPECT_EQ(w1.count(), 1u);
  EXPECT_EQ(w1.max_ticks(), 50u);
}

TEST(TimeSeriesTest, TwoWindowSloBurnRate) {
  TimeSeries ts(SmallWindows());
  ts.SetSlo("deadline_missed", "served");
  // 100 served in each of windows 0..3; 10 misses in window 3 only.
  for (uint64_t w = 0; w < 4; ++w) ts.Count("served", w * 1000 + 1, 100);
  ts.Count("deadline_missed", 3001, 10);
  const TimeSeries::BurnRate burn = ts.SloBurn();
  // Short span (2 windows): 10 / 200 = 0.05 error rate over budget 0.1.
  EXPECT_DOUBLE_EQ(burn.short_burn, 0.5);
  // Long span (4 windows): 10 / 400 = 0.025 over 0.1.
  EXPECT_DOUBLE_EQ(burn.long_burn, 0.25);
}

TEST(TimeSeriesTest, SloBurnZeroWhenUnsetOrEmpty) {
  TimeSeries ts(SmallWindows());
  EXPECT_DOUBLE_EQ(ts.SloBurn().short_burn, 0.0);
  ts.SetSlo("bad", "total");
  EXPECT_DOUBLE_EQ(ts.SloBurn().long_burn, 0.0);  // total is 0.
}

TEST(TimeSeriesTest, ToJsonIsFeedingOrderInvariant) {
  TimeSeries a(SmallWindows());
  TimeSeries b(SmallWindows());
  a.SetSlo("deadline_missed", "served");
  b.SetSlo("deadline_missed", "served");
  // Same (timestamp, delta) multiset, interleaved differently.
  a.Count("served", 100, 2);
  a.Observe("latency_ns", 150, 42.0);
  a.Count("served", 1100, 1);
  a.Count("deadline_missed", 1200, 1);
  b.Count("deadline_missed", 1200, 1);
  b.Count("served", 1100, 1);
  b.Count("served", 100, 2);
  b.Observe("latency_ns", 150, 42.0);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_NE(a.ToJson().find("\"schema\": \"pimine.obs.timeseries.v1\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// EventLog
// ---------------------------------------------------------------------------

TEST(EventLogTest, SamplingIsAPureHashOfSeedAndId) {
  for (uint64_t id = 0; id < 64; ++id) {
    EXPECT_EQ(EventLog::Sampled(7, id, 0.5), EventLog::Sampled(7, id, 0.5));
    EXPECT_FALSE(EventLog::Sampled(7, id, 0.0));
    EXPECT_TRUE(EventLog::Sampled(7, id, 1.0));
  }
  // The kept fraction tracks the rate (hash uniformity, loose bounds).
  int kept = 0;
  for (uint64_t id = 0; id < 10000; ++id) {
    kept += EventLog::Sampled(13, id, 0.5) ? 1 : 0;
  }
  EXPECT_GT(kept, 4000);
  EXPECT_LT(kept, 6000);
  // Different seeds select different id sets.
  int differing = 0;
  for (uint64_t id = 0; id < 1000; ++id) {
    differing +=
        EventLog::Sampled(1, id, 0.5) != EventLog::Sampled(2, id, 0.5) ? 1 : 0;
  }
  EXPECT_GT(differing, 100);
}

TEST(EventLogTest, BoundedRingKeepsNewestSampledEvents) {
  EventLogOptions options;
  options.sample_rate = 1.0;
  options.capacity = 4;
  EventLog log(options);
  ASSERT_TRUE(log.enabled());
  for (uint64_t id = 0; id < 10; ++id) {
    QueryEvent e;
    e.query_id = id;
    log.Append(e);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.sampled_total(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const std::string jsonl = log.ToJsonl();
  EXPECT_EQ(jsonl.find("\"query_id\": 5"), std::string::npos);
  EXPECT_NE(jsonl.find("\"query_id\": 6"), std::string::npos);
  EXPECT_NE(jsonl.find("\"query_id\": 9"), std::string::npos);
}

TEST(EventLogTest, DisabledLogAppendsNothing) {
  EventLog log;  // sample_rate = 0.
  EXPECT_FALSE(log.enabled());
  QueryEvent e;
  log.Append(e);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.ToJsonl(), "");
}

// ---------------------------------------------------------------------------
// Labeled metrics + strict Prometheus exposition
// ---------------------------------------------------------------------------

/// Strict structural check of a Prometheus text-format document: every
/// family has exactly one `# HELP` immediately followed by one `# TYPE`
/// before its samples, every sample line belongs to the most recent
/// family (allowing _bucket/_sum/_count for histograms), label blocks are
/// balanced, and values parse as numbers.
void CheckStrictExposition(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::string family, type;
  bool expect_type = false;
  std::vector<std::string> seen_families;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      ASSERT_FALSE(expect_type) << "HELP not followed by TYPE: " << line;
      const size_t space = line.find(' ', 7);
      ASSERT_NE(space, std::string::npos) << line;
      family = line.substr(7, space - 7);
      for (const std::string& f : seen_families) {
        ASSERT_NE(f, family) << "family emitted twice: " << family;
      }
      seen_families.push_back(family);
      expect_type = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      ASSERT_TRUE(expect_type) << "TYPE without preceding HELP: " << line;
      expect_type = false;
      const size_t space = line.find(' ', 7);
      ASSERT_NE(space, std::string::npos) << line;
      ASSERT_EQ(line.substr(7, space - 7), family) << line;
      type = line.substr(space + 1);
      ASSERT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      continue;
    }
    ASSERT_FALSE(expect_type) << "sample between HELP and TYPE: " << line;
    ASSERT_FALSE(family.empty()) << "sample before any HELP: " << line;
    // Name = up to '{' or ' '.
    const size_t brace = line.find('{');
    const size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, std::min(brace, space));
    if (type == "histogram") {
      ASSERT_TRUE(name == family + "_bucket" || name == family + "_sum" ||
                  name == family + "_count")
          << "sample " << name << " outside family " << family;
    } else {
      ASSERT_EQ(name, family) << line;
    }
    if (brace != std::string::npos && brace < space) {
      // Label block must close before the value, with balanced quotes
      // (counting unescaped quotes only).
      const size_t close = line.rfind('}');
      ASSERT_NE(close, std::string::npos) << line;
      int quotes = 0;
      for (size_t i = brace; i < close; ++i) {
        if (line[i] == '"' && line[i - 1] != '\\') ++quotes;
      }
      ASSERT_EQ(quotes % 2, 0) << "unbalanced quotes: " << line;
    }
    const std::string value = line.substr(line.rfind(' ') + 1);
    ASSERT_FALSE(value.empty()) << line;
    size_t parsed = 0;
    ASSERT_NO_THROW({ (void)std::stod(value, &parsed); }) << line;
    ASSERT_EQ(parsed, value.size()) << "trailing junk in value: " << line;
  }
  ASSERT_FALSE(expect_type) << "dangling HELP at end of document";
}

TEST(MetricsRegistryTest, LabeledFamiliesExposeCleanly) {
  MetricsRegistry registry;
  registry.SetHelp("pimine_fleet_shard_pim_ns",
                   "Serial-equivalent device time per shard.");
  for (int shard = 3; shard >= 0; --shard) {
    registry
        .GetGauge("pimine_fleet_shard_pim_ns",
                  {{"shard", std::to_string(shard)}})
        .Set(100.0 * shard);
  }
  registry.GetCounter("pimine_serve_served_total").Add(42);
  Histogram h;
  h.Record(100.0);
  h.Record(5000.0);
  registry.MergeHistogram("pimine_serve_latency_ns", {{"tenant", "gold"}}, h);
  registry.MergeHistogram("pimine_serve_latency_ns", {{"tenant", "free"}}, h);
  const std::string text = registry.ToPrometheus();
  CheckStrictExposition(text);
  EXPECT_NE(text.find("pimine_fleet_shard_pim_ns{shard=\"3\"} 300"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pimine_fleet_shard_pim_ns gauge"),
            std::string::npos);
  EXPECT_NE(
      text.find("pimine_serve_latency_ns_bucket{tenant=\"gold\",le=\"127\"}"),
      std::string::npos);
  EXPECT_NE(text.find("pimine_serve_latency_ns_count{tenant=\"free\"} 2"),
            std::string::npos);
  // One HELP/TYPE pair per family, not per label combination.
  size_t help_count = 0, pos = 0;
  while ((pos = text.find("# HELP pimine_fleet_shard_pim_ns", pos)) !=
         std::string::npos) {
    ++help_count;
    ++pos;
  }
  EXPECT_EQ(help_count, 1u);
}

TEST(MetricsRegistryTest, LabelValueEscaping) {
  MetricsRegistry registry;
  registry.GetCounter("family", {{"k", "a\"b\\c\nd"}}).Add(1);
  const std::string text = registry.ToPrometheus();
  CheckStrictExposition(text);
  EXPECT_NE(text.find("family{k=\"a\\\"b\\\\c\\nd\"} 1"), std::string::npos)
      << text;
  // Help text escapes backslash and newline.
  registry.SetHelp("family", "line1\nline2\\end");
  EXPECT_NE(registry.ToPrometheus().find("# HELP family line1\\nline2\\\\end"),
            std::string::npos);
}

TEST(MetricsRegistryTest, SortedFamiliesStayContiguous) {
  MetricsRegistry registry;
  // "foo_bar" sorts BETWEEN "foo" and "foo{...}" byte-wise ('_' < '{');
  // the exposition must still keep family "foo" contiguous.
  registry.GetCounter("foo", {{"x", "1"}}).Add(1);
  registry.GetCounter("foo_bar").Add(2);
  registry.GetCounter("foo", {{"x", "0"}}).Add(3);
  CheckStrictExposition(registry.ToPrometheus());
}

// ---------------------------------------------------------------------------
// Histogram edge cases + JSON round trip
// ---------------------------------------------------------------------------

TEST(HistogramEdgeTest, QuantileEdgeCases) {
  Histogram empty;
  EXPECT_EQ(empty.QuantileUpperBound(0.5), 0u);
  EXPECT_EQ(empty.QuantileUpperBound(1.0), 0u);

  Histogram one;
  one.Record(1000.0);
  EXPECT_EQ(one.QuantileUpperBound(-1.0), 1023u);  // q <= 0 clamps to rank 1.
  EXPECT_EQ(one.QuantileUpperBound(0.0), 1023u);
  EXPECT_EQ(one.QuantileUpperBound(0.5), 1023u);
  EXPECT_EQ(one.QuantileUpperBound(1.0), 1000u);   // q >= 1 is the exact max.
  EXPECT_EQ(one.QuantileUpperBound(2.0), 1000u);

  // Power-of-two boundaries: bucket i covers [2^(i-1), 2^i).
  Histogram edges;
  edges.Record(1.0);
  EXPECT_EQ(edges.QuantileUpperBound(0.5), 1u);
  edges.Record(2.0);
  edges.Record(3.0);
  EXPECT_EQ(edges.QuantileUpperBound(1.0), 3u);
  EXPECT_EQ(edges.QuantileUpperBound(0.9), 3u);  // rank 3 -> bucket [2,4).
  edges.Record(4.0);
  EXPECT_EQ(edges.QuantileUpperBound(0.9), 7u);  // rank 4 -> bucket [4,8).

  // Clamp at kMaxTicks: oversized samples land in the last bucket.
  Histogram big;
  big.Record(static_cast<double>(Histogram::kMaxTicks) * 4.0);
  EXPECT_EQ(big.max_ticks(), Histogram::kMaxTicks);
  EXPECT_EQ(big.QuantileUpperBound(1.0), Histogram::kMaxTicks);
  EXPECT_EQ(big.bucket(Histogram::kNumBuckets - 1), 1u);

  // Zero and negative samples occupy bucket 0 with upper edge 0.
  Histogram zero;
  zero.Record(0.0);
  zero.Record(-5.0);
  EXPECT_EQ(zero.QuantileUpperBound(0.5), 0u);
  EXPECT_EQ(zero.count(), 2u);
}

TEST(HistogramEdgeTest, JsonRoundTripIsExact) {
  Histogram h;
  h.Record(0.0);
  h.Record(1.0);
  h.Record(999.0);
  h.Record(123456789.0);
  h.Record(static_cast<double>(Histogram::kMaxTicks) * 2.0);
  const auto parsed = Histogram::FromJson(h.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(*parsed == h);
  EXPECT_EQ(parsed->ToJson(), h.ToJson());

  const auto empty = Histogram::FromJson(Histogram().ToJson());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(*empty == Histogram());
}

TEST(HistogramEdgeTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(Histogram::FromJson("").ok());
  EXPECT_FALSE(Histogram::FromJson("{\"count\": 1}").ok());
  EXPECT_FALSE(Histogram::FromJson("{\"count\": x, \"sum_ticks\": 0, "
                                   "\"max_ticks\": 0, \"buckets\": []}")
                   .ok());
  // Bucket index out of range.
  EXPECT_FALSE(Histogram::FromJson("{\"count\": 1, \"sum_ticks\": 1, "
                                   "\"max_ticks\": 1, \"buckets\": [[64, 1]]}")
                   .ok());
  EXPECT_TRUE(Histogram::FromJson("{\"count\": 1, \"sum_ticks\": 1, "
                                  "\"max_ticks\": 1, \"buckets\": [[63, 1]]}")
                  .ok());
}

// ---------------------------------------------------------------------------
// Embedded exposition endpoint
// ---------------------------------------------------------------------------

/// Minimal test client: one GET, reads until the peer closes.
std::string HttpGet(int port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = request_line + "\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t got;
  while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(got));
  }
  ::close(fd);
  return response;
}

TEST(ExpositionServerTest, ServesRoutesAndRejectsEverythingElse) {
  std::vector<obs::HttpRoute> routes;
  routes.push_back({"/metrics", "text/plain; version=0.0.4; charset=utf-8",
                    [] { return std::string("pimine_up 1\n"); }});
  routes.push_back(
      {"/healthz", "text/plain; charset=utf-8", [] { return "ok\n"; }});
  auto server = obs::ExpositionServer::Start(0, std::move(routes));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = (*server)->port();
  ASSERT_GT(port, 0);

  const std::string health = HttpGet(port, "GET /healthz HTTP/1.0");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string metrics = HttpGet(port, "GET /metrics HTTP/1.0");
  EXPECT_NE(metrics.find("pimine_up 1"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);

  // Query strings are stripped before route matching.
  EXPECT_NE(HttpGet(port, "GET /healthz?x=1 HTTP/1.0").find("200 OK"),
            std::string::npos);
  EXPECT_NE(HttpGet(port, "GET /nope HTTP/1.0").find("404"),
            std::string::npos);
  EXPECT_NE(HttpGet(port, "POST /metrics HTTP/1.0").find("405"),
            std::string::npos);
  EXPECT_GE((*server)->requests_served(), 5u);

  (*server)->Stop();
  (*server)->Stop();  // idempotent.
}

// ---------------------------------------------------------------------------
// Per-shard fleet health == aggregate accounting
// ---------------------------------------------------------------------------

TEST(FleetHealthTest, PerShardTotalsEqualFleetAggregates) {
  const FloatMatrix data = RandomUnitMatrix(200, 24, 3);
  const FloatMatrix queries = RandomUnitMatrix(32, 24, 5);
  EngineOptions engine_options;
  engine_options.pim_config.num_crossbars = 4096;
  engine_options.shard.shards = 4;
  serve::ServeOptions serve_options;
  serve_options.max_batch = 8;
  serve_options.k = 5;
  serve_options.exec.device_batch = 4;
  auto server = serve::PimServer::Build(data, Distance::kEuclidean,
                                        engine_options, serve_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  serve::WorkloadSpec spec;
  spec.num_requests = 64;
  spec.offered_qps = 2e6;
  spec.tenant_share = {1.0};
  spec.num_query_rows = 32;
  spec.seed = 17;
  auto trace = serve::GeneratePoissonTrace(spec);
  ASSERT_TRUE(trace.ok());
  auto output = (*server)->Replay(*trace, queries);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  const ShardedPimEngine& fleet = (*server)->engine();
  ASSERT_EQ(fleet.shards(), 4u);
  const FleetRunStats aggregate = fleet.FleetStats();
  ASSERT_GT(aggregate.scatter_messages, 0u);

  uint64_t scatter_messages = 0, scatter_bytes = 0;
  uint64_t gather_messages = 0, gather_bytes = 0;
  uint64_t failovers = 0, failed_over = 0, queries_processed = 0;
  double scatter_ns = 0.0, gather_ns = 0.0, pim_ns = 0.0;
  const uint64_t shard0_queries = fleet.ShardHealthSnapshot(0).queries_processed;
  for (size_t j = 0; j < fleet.shards(); ++j) {
    const ShardedPimEngine::ShardHealth h = fleet.ShardHealthSnapshot(j);
    scatter_messages += h.scatter_messages;
    scatter_bytes += h.scatter_bytes;
    gather_messages += h.gather_messages;
    gather_bytes += h.gather_bytes;
    failovers += h.failovers;
    failed_over += h.failed_over_queries;
    queries_processed += h.queries_processed;
    scatter_ns += h.scatter_ns;
    gather_ns += h.gather_ns;
    pim_ns += h.pim_ns;
    EXPECT_GT(h.batch_ops, 0u) << "shard " << j << " idle";
    EXPECT_GT(h.pim_ns, 0.0) << "shard " << j;
    // Every shard matches every served query (scatter is a broadcast), so
    // the device-side query accounting is identical across shards.
    EXPECT_EQ(h.queries_processed, shard0_queries) << "shard " << j;
  }
  // Integer counters: exact equality with the fleet aggregates.
  EXPECT_EQ(scatter_messages, aggregate.scatter_messages);
  EXPECT_EQ(scatter_bytes, aggregate.scatter_bytes);
  EXPECT_EQ(gather_messages, aggregate.gather_messages);
  EXPECT_EQ(gather_bytes, aggregate.gather_bytes);
  EXPECT_EQ(failovers, aggregate.failovers);
  EXPECT_EQ(failed_over, aggregate.failed_over_queries);
  // Every shard sees every served query (once per device on the shard), so
  // the fleet-wide device query count is a positive multiple of served.
  ASSERT_GT(output->stats.served, 0u);
  EXPECT_EQ(queries_processed % (output->stats.served * fleet.shards()), 0u);
  EXPECT_GE(queries_processed, output->stats.served * fleet.shards());
  // Derived ns figures agree up to float re-association.
  EXPECT_NEAR(scatter_ns, aggregate.scatter_ns,
              1e-9 * (1.0 + aggregate.scatter_ns));
  EXPECT_NEAR(gather_ns, aggregate.gather_ns,
              1e-9 * (1.0 + aggregate.gather_ns));
  EXPECT_GT(pim_ns, 0.0);

  // The labeled export carries one combination per shard and passes the
  // strict exposition check alongside the serve families.
  MetricsRegistry registry;
  fleet.ExportMetrics(&registry);
  const std::string text = registry.ToPrometheus();
  CheckStrictExposition(text);
  for (size_t j = 0; j < fleet.shards(); ++j) {
    EXPECT_NE(
        text.find("pimine_fleet_shard_queries_total{shard=\"" +
                  std::to_string(j) + "\"}"),
        std::string::npos);
  }
  EXPECT_NE(text.find("pimine_fleet_shards 4"), std::string::npos);

  // MetricsText() (the /metrics handler) merges serve + fleet families
  // into one strict document. The serve families report LIVE-mode totals:
  // run a short live phase and check the scrape against it exactly.
  ASSERT_TRUE((*server)->Start().ok());
  uint64_t live_served = 0;
  for (int i = 0; i < 20; ++i) {
    auto result =
        (*server)->Submit(0, queries.row(static_cast<size_t>(i) % 32));
    ASSERT_TRUE(result.ok());
    live_served += result->status.ok() ? 1 : 0;
  }
  (*server)->Stop();
  EXPECT_EQ(live_served, 20u);
  const std::string scraped = (*server)->MetricsText();
  CheckStrictExposition(scraped);
  EXPECT_NE(scraped.find("pimine_serve_served_total " +
                         std::to_string(live_served)),
            std::string::npos)
      << scraped;
  EXPECT_NE(scraped.find("pimine_serve_submitted_total 20"),
            std::string::npos);
  EXPECT_NE(scraped.find("shard=\"3\""), std::string::npos);
  // The live timeseries/event documents are now populated too.
  EXPECT_NE((*server)->TimeSeriesJson().find("\"served\""),
            std::string::npos);
}

}  // namespace
}  // namespace pimine
