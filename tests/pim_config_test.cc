#include "pim/pim_config.h"

#include <gtest/gtest.h>

namespace pimine {
namespace {

TEST(PimConfigTest, DefaultsMatchPaperSection6A) {
  const PimConfig config;
  EXPECT_EQ(config.crossbar_dim, 256);
  EXPECT_EQ(config.cell_bits, 2);
  EXPECT_EQ(config.num_crossbars, 131072);
  EXPECT_DOUBLE_EQ(config.read_ns, 29.31);
  EXPECT_DOUBLE_EQ(config.write_ns, 50.88);
  EXPECT_EQ(config.buffer_bytes, 16ull * 1024 * 1024);
  // 131072 crossbars x 256x256 cells x 2 bits = 2 GB PIM array (Table 5).
  EXPECT_EQ(config.TotalCellBits() / 8, 2ull * 1024 * 1024 * 1024);
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_NE(config.ToString().find("256x256"), std::string::npos);
}

TEST(PimConfigTest, ValidationCatchesBadGeometry) {
  PimConfig config;
  config.crossbar_dim = 100;  // not a power of two.
  EXPECT_FALSE(config.Validate().ok());

  config = PimConfig();
  config.cell_bits = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.cell_bits = 9;
  EXPECT_FALSE(config.Validate().ok());

  config = PimConfig();
  config.operand_bits = 33;
  EXPECT_FALSE(config.Validate().ok());

  config = PimConfig();
  config.num_crossbars = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = PimConfig();
  config.dac_bits = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.dac_bits = 64;
  EXPECT_FALSE(config.Validate().ok());

  config = PimConfig();
  config.read_ns = 0.0;
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace pimine
