#include "util/flags.h"

#include <gtest/gtest.h>

namespace pimine {
namespace {

FlagParser MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  auto parser = FlagParser::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(parser.ok());
  return std::move(parser).value();
}

TEST(FlagParserTest, KeyValueAndBooleanForms) {
  const FlagParser flags = MustParse(
      {"--dataset=MSD", "--k=10", "--pim", "--alpha=1e6", "positional"});
  EXPECT_TRUE(flags.Has("dataset"));
  EXPECT_EQ(flags.GetString("dataset", "x"), "MSD");
  EXPECT_EQ(flags.GetInt("k", 0), 10);
  EXPECT_TRUE(flags.GetBool("pim", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 1e6);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  const FlagParser flags = MustParse({});
  EXPECT_FALSE(flags.Has("k"));
  EXPECT_EQ(flags.GetString("s", "fallback"), "fallback");
  EXPECT_EQ(flags.GetInt("k", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("a", 2.5), 2.5);
  EXPECT_FALSE(flags.GetBool("pim", false));
  EXPECT_TRUE(flags.GetBool("pim", true));
}

TEST(FlagParserTest, ExplicitBooleans) {
  const FlagParser flags = MustParse(
      {"--a=true", "--b=false", "--c=1", "--d=0", "--e=yes", "--f=no"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_TRUE(flags.GetBool("e", false));
  EXPECT_FALSE(flags.GetBool("f", true));
}

TEST(FlagParserTest, MalformedValuesFallBack) {
  const FlagParser flags = MustParse({"--k=ten", "--a=1.5x"});
  EXPECT_EQ(flags.GetInt("k", -1), -1);
  EXPECT_DOUBLE_EQ(flags.GetDouble("a", -2.0), -2.0);
}

TEST(FlagParserTest, RejectsBadTokens) {
  const char* argv1[] = {"prog", "--"};
  EXPECT_FALSE(FlagParser::Parse(2, argv1).ok());
  const char* argv2[] = {"prog", "--=value"};
  EXPECT_FALSE(FlagParser::Parse(2, argv2).ok());
}

TEST(FlagParserTest, CheckKnownCatchesTypos) {
  const FlagParser flags = MustParse({"--dataset=MSD", "--kk=10"});
  EXPECT_TRUE(flags.CheckKnown({"dataset", "kk"}).ok());
  const Status status = flags.CheckKnown({"dataset", "k"});
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("kk"), std::string::npos);
}

TEST(FlagParserTest, LastOccurrenceWins) {
  const FlagParser flags = MustParse({"--k=1", "--k=2"});
  EXPECT_EQ(flags.GetInt("k", 0), 2);
}

}  // namespace
}  // namespace pimine
