#include "knn/motif.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/similarity.h"
#include "util/random.h"

namespace pimine {
namespace {

/// Random-walk series with a repeated pattern planted at two known offsets.
std::vector<float> SeriesWithPlantedMotif(size_t length, size_t motif_len,
                                          size_t at_a, size_t at_b,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<float> series(length);
  double level = 0.0;
  for (float& v : series) {
    level += rng.NextGaussian(0.0, 1.0);
    v = static_cast<float>(level);
  }
  // Plant a distinctive, nearly identical pattern twice.
  std::vector<float> pattern(motif_len);
  for (size_t j = 0; j < motif_len; ++j) {
    pattern[j] = static_cast<float>(5.0 * std::sin(j * 0.7) +
                                    0.05 * rng.NextGaussian());
  }
  for (size_t j = 0; j < motif_len; ++j) {
    series[at_a + j] = pattern[j];
    series[at_b + j] =
        pattern[j] + static_cast<float>(0.01 * rng.NextGaussian());
  }
  return series;
}

TEST(ExtractWindowsTest, ShapeAndRange) {
  const std::vector<float> series = {0.0f, 2.0f, 4.0f, 6.0f, 8.0f};
  auto windows = ExtractWindows(series, 3);
  ASSERT_TRUE(windows.ok());
  EXPECT_EQ(windows->rows(), 3u);
  EXPECT_EQ(windows->cols(), 3u);
  // Global min-max into [0, 1]: 0 -> 0, 8 -> 1.
  EXPECT_FLOAT_EQ((*windows)(0, 0), 0.0f);
  EXPECT_FLOAT_EQ((*windows)(2, 2), 1.0f);
  EXPECT_FLOAT_EQ((*windows)(1, 0), 0.25f);

  EXPECT_FALSE(ExtractWindows(series, 0).ok());
  EXPECT_FALSE(ExtractWindows(series, 6).ok());
}

TEST(MotifTest, FindsPlantedMotif) {
  const size_t motif_len = 48;
  const auto series =
      SeriesWithPlantedMotif(1500, motif_len, 200, 900, /*seed=*/3);
  auto windows = ExtractWindows(series, static_cast<int64_t>(motif_len));
  ASSERT_TRUE(windows.ok());

  MotifOptions options;
  options.window = static_cast<int64_t>(motif_len);
  MotifDiscovery baseline;
  auto result = baseline.Find(*windows, options);
  ASSERT_TRUE(result.ok());
  // The planted pair (or a 1-2 sample shifted variant) must win.
  EXPECT_NEAR(result->first, 200, 2);
  EXPECT_NEAR(result->second, 900, 2);
}

TEST(MotifTest, PimMatchesBaselineExactly) {
  for (uint64_t seed : {1, 7, 42}) {
    const auto series = SeriesWithPlantedMotif(1000, 32, 150, 600, seed);
    auto windows = ExtractWindows(series, 32);
    ASSERT_TRUE(windows.ok());

    MotifOptions options;
    options.window = 32;
    MotifDiscovery baseline;
    auto base = baseline.Find(*windows, options);
    ASSERT_TRUE(base.ok());

    PimMotifDiscovery pim((EngineOptions()));
    auto accel = pim.Find(*windows, options);
    ASSERT_TRUE(accel.ok());

    EXPECT_EQ(accel->first, base->first) << "seed " << seed;
    EXPECT_EQ(accel->second, base->second);
    EXPECT_NEAR(accel->distance, base->distance, 1e-12);
    EXPECT_LT(accel->stats.exact_count, base->stats.exact_count)
        << "PIM bounds should prune candidate pairs";
  }
}

TEST(MotifTest, ExclusionZonePreventsTrivialMatches) {
  // Pure random walk, no planted motif: adjacent windows share all but one
  // sample and are therefore the closest pairs by construction.
  Rng rng(9);
  std::vector<float> series(600);
  double level = 0.0;
  for (float& v : series) {
    level += rng.NextGaussian(0.0, 1.0);
    v = static_cast<float>(level);
  }
  auto windows = ExtractWindows(series, 32);
  ASSERT_TRUE(windows.ok());

  MotifOptions options;
  options.window = 32;
  options.exclusion = 1;  // nearly-overlapping windows allowed.
  MotifDiscovery detector;
  auto trivial = detector.Find(*windows, options);
  ASSERT_TRUE(trivial.ok());
  // With a 1-sample exclusion the best pair is an overlapping pair.
  EXPECT_LE(std::abs(trivial->second - trivial->first), 32);

  options.exclusion = 32;
  auto proper = detector.Find(*windows, options);
  ASSERT_TRUE(proper.ok());
  EXPECT_GT(std::abs(proper->second - proper->first), 32);
}

TEST(MotifTest, Validation) {
  MotifDiscovery detector;
  MotifOptions options;
  options.window = 8;
  EXPECT_FALSE(detector.Find(FloatMatrix(), options).ok());
  FloatMatrix tiny(3, 8, 0.5f);
  options.exclusion = 5;  // leaves no valid pair among 3 windows.
  EXPECT_FALSE(detector.Find(tiny, options).ok());
}

}  // namespace
}  // namespace pimine
