#include "core/bounds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/segments.h"
#include "core/similarity.h"
#include "test_helpers.h"

namespace pimine {
namespace {

using testing_util::RandomUnitVector;

struct Case {
  size_t dims;
  int64_t segments;
};

class ClassicalBoundTest : public ::testing::TestWithParam<Case> {};

// Table 3 invariants: every lower bound stays below the exact squared ED;
// UB_part stays above the exact dot product.
TEST_P(ClassicalBoundTest, BoundsHold) {
  const auto [dims, d0] = GetParam();
  const int64_t l = SegmentLength(static_cast<int64_t>(dims), d0);
  std::vector<float> p_means(d0), p_stds(d0), q_means(d0), q_stds(d0);
  for (uint64_t seed = 0; seed < 25; ++seed) {
    const auto p = RandomUnitVector(dims, 100 + seed);
    const auto q = RandomUnitVector(dims, 900 + seed);
    const double exact = SquaredEuclidean(p, q);

    ComputeSegments(p, d0, p_means, p_stds);
    ComputeSegments(q, d0, q_means, q_stds);
    EXPECT_LE(LbSm(p_means, q_means, l), exact + 1e-9);
    EXPECT_LE(LbFnn(p_means, p_stds, q_means, q_stds, l), exact + 1e-9);

    const double pn = SuffixNorm(p, d0);
    const double qn = SuffixNorm(q, d0);
    EXPECT_LE(LbOst(p, q, d0, pn, qn), exact + 1e-9);

    EXPECT_GE(UbPartDot(p, q, d0, pn, qn), DotProduct(p, q) - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClassicalBoundTest,
                         ::testing::Values(Case{8, 2}, Case{64, 4},
                                           Case{64, 16}, Case{420, 105},
                                           Case{100, 7},  // uneven tail.
                                           Case{960, 15}, Case{33, 33},
                                           Case{5, 1}));

// LB_FNN dominates LB_SM (it adds a non-negative stddev term).
TEST(BoundRelationTest, FnnTighterThanSm) {
  const size_t dims = 128;
  const int64_t d0 = 16;
  const int64_t l = SegmentLength(dims, d0);
  std::vector<float> p_means(d0), p_stds(d0), q_means(d0), q_stds(d0);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const auto p = RandomUnitVector(dims, seed);
    const auto q = RandomUnitVector(dims, seed + 77);
    ComputeSegments(p, d0, p_means, p_stds);
    ComputeSegments(q, d0, q_means, q_stds);
    EXPECT_GE(LbFnn(p_means, p_stds, q_means, q_stds, l),
              LbSm(p_means, q_means, l) - 1e-12);
  }
}

// More segments means a tighter (or equal) LB_SM on average; exact per-pair
// monotonicity is not guaranteed, so test the identical-vector anchor and a
// sample mean.
TEST(BoundRelationTest, IdenticalVectorsGiveZeroBounds) {
  const size_t dims = 96;
  const auto p = RandomUnitVector(dims, 5);
  for (int64_t d0 : {1, 4, 12, 96}) {
    std::vector<float> means(d0), stds(d0);
    ComputeSegments(p, d0, means, stds);
    const int64_t l = SegmentLength(dims, d0);
    EXPECT_NEAR(LbSm(means, means, l), 0.0, 1e-9);
    EXPECT_NEAR(LbFnn(means, stds, means, stds, l), 0.0, 1e-9);
    const double n = SuffixNorm(p, d0);
    EXPECT_NEAR(LbOst(p, p, d0, n, n), 0.0, 1e-9);
  }
}

TEST(SuffixNormTest, PrefixZeroEqualsFullNorm) {
  const auto p = RandomUnitVector(10, 3);
  double full = 0.0;
  for (float v : p) full += static_cast<double>(v) * v;
  EXPECT_NEAR(SuffixNorm(p, 0), std::sqrt(full), 1e-9);
  EXPECT_NEAR(SuffixNorm(p, 10), 0.0, 1e-12);
}

// Segment stats: the nominal l underestimates the tail segment, which keeps
// the bound valid (documented in segments.h); verify on a non-dividing case.
TEST(SegmentStatsTest, UnevenTailStillBounds) {
  const size_t dims = 10;
  const int64_t d0 = 3;  // segments of 3, 3, 4.
  std::vector<float> p_means(d0), p_stds(d0), q_means(d0), q_stds(d0);
  for (uint64_t seed = 0; seed < 40; ++seed) {
    const auto p = RandomUnitVector(dims, 7000 + seed);
    const auto q = RandomUnitVector(dims, 8000 + seed);
    ComputeSegments(p, d0, p_means, p_stds);
    ComputeSegments(q, d0, q_means, q_stds);
    EXPECT_LE(LbFnn(p_means, p_stds, q_means, q_stds,
                    SegmentLength(dims, d0)),
              SquaredEuclidean(p, q) + 1e-9);
  }
}

}  // namespace
}  // namespace pimine
