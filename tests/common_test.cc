#include "common/status.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/result.h"

namespace pimine {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");

  EXPECT_EQ(Status::CapacityExceeded("x").code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCapacityExceeded),
            "CapacityExceeded");
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnIfError(bool fail) {
  PIMINE_RETURN_IF_ERROR(Succeeds());
  if (fail) {
    PIMINE_RETURN_IF_ERROR(Fails());
  }
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
}

Result<int> MakeResult(bool ok) {
  if (ok) return 42;
  return Status::NotFound("no value");
}

TEST(ResultTest, HoldsValueOrStatus) {
  auto good = MakeResult(true);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(*good, 42);

  auto bad = MakeResult(false);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

Result<int> ChainResults(bool ok) {
  PIMINE_ASSIGN_OR_RETURN(const int v, MakeResult(ok));
  return v + 1;
}

TEST(ResultMacroTest, AssignOrReturn) {
  auto good = ChainResults(true);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 43);
  EXPECT_FALSE(ChainResults(false).ok());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ PIMINE_CHECK(1 == 2) << "context " << 42; },
               "Check failed: 1 == 2 context 42");
}

TEST(CheckDeathTest, CheckOkAborts) {
  EXPECT_DEATH({ PIMINE_CHECK_OK(Status::Internal("bang")); },
               "Internal: bang");
}

TEST(CheckTest, PassingCheckIsSilent) {
  PIMINE_CHECK(true) << "never printed";
  PIMINE_CHECK_OK(Status::OK());
  PIMINE_DCHECK(true);
}

}  // namespace
}  // namespace pimine
