// ShardedPimEngine invariants: for every placement and shard count the
// fleet must reproduce the single-device engine bit for bit — bounds for
// all five engine modes (ties included), modeled PIM time, and the k-means
// centroid sums via the exact tree reduction — while shard-boundary
// routing, fail-over, and the shard-count validation behave as documented.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "data/generator.h"
#include "pim/fault_model.h"
#include "pim/fleet.h"
#include "test_helpers.h"
#include "util/exact_sum.h"
#include "util/random.h"
#include "util/top_k.h"

namespace pimine {
namespace {

struct ModeCase {
  std::string label;
  Distance distance;
  EngineOptions::Bound bound;
};

std::vector<ModeCase> AllModes() {
  return {
      {"ED/direct", Distance::kEuclidean, EngineOptions::Bound::kDirectEd},
      {"ED/fnn", Distance::kEuclidean, EngineOptions::Bound::kSegmentFnn},
      {"ED/sm", Distance::kEuclidean, EngineOptions::Bound::kSegmentSm},
      {"CS", Distance::kCosine, EngineOptions::Bound::kAuto},
      {"PCC", Distance::kPearson, EngineOptions::Bound::kAuto},
  };
}

FloatMatrix ClusteredData(size_t n, size_t d, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "sharded";
  spec.dims = static_cast<int32_t>(d);
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 6;
  spec.cluster_std = 0.08;
  return DatasetGenerator::Generate(spec, static_cast<int64_t>(n), seed);
}

// Every (placement, M) fleet must produce bit-identical bounds and modeled
// PIM time to the single-device engine, in all five engine modes. n = 103
// is prime, so every M > 1 exercises unequal shard sizes and shard-boundary
// routing.
TEST(ShardedEngineTest, BoundsBitIdenticalToSingleDeviceAllModes) {
  const size_t n = 103;
  const size_t d = 24;
  const FloatMatrix data = ClusteredData(n, d, 11);
  const FloatMatrix queries = testing_util::RandomUnitMatrix(5, d, 12);

  for (const ModeCase& mode : AllModes()) {
    EngineOptions options;
    options.bound = mode.bound;
    auto single_built =
        ShardedPimEngine::Build(data, mode.distance, options);
    ASSERT_TRUE(single_built.ok()) << mode.label;
    const auto single = std::move(single_built).value();

    auto reference = single->RunQueryBatch(
        std::span<const float>(queries.data(), queries.rows() * d),
        queries.rows());
    ASSERT_TRUE(reference.ok()) << mode.label;

    for (ShardPlacement placement :
         {ShardPlacement::kContiguous, ShardPlacement::kHash,
          ShardPlacement::kClusterAware}) {
      for (int shards : {3, 8}) {
        EngineOptions sharded_options = options;
        sharded_options.shard.shards = shards;
        sharded_options.shard.placement = placement;
        auto built =
            ShardedPimEngine::Build(data, mode.distance, sharded_options);
        ASSERT_TRUE(built.ok()) << mode.label;
        const auto fleet = std::move(built).value();
        const std::string label =
            mode.label + " " +
            std::string(ShardPlacementName(placement)) + " M=" +
            std::to_string(shards);

        // The per-shard geometry must be forced from the full dataset.
        EXPECT_EQ(fleet->num_segments(), single->num_segments()) << label;
        EXPECT_EQ(fleet->mode(), single->mode()) << label;

        auto run = fleet->RunQueryBatch(
            std::span<const float>(queries.data(), queries.rows() * d),
            queries.rows());
        ASSERT_TRUE(run.ok()) << label;
        for (size_t q = 0; q < queries.rows(); ++q) {
          for (size_t i = 0; i < n; ++i) {
            ASSERT_EQ(fleet->BoundFor(*run, q, i),
                      single->BoundFor(*reference, q, i))
                << label << " q=" << q << " i=" << i;
          }
        }
        EXPECT_EQ(fleet->PimComputeNs(), single->PimComputeNs()) << label;
        EXPECT_GT(fleet->FleetStats().scatter_messages, 0u) << label;
        EXPECT_EQ(single->FleetStats().scatter_messages, 0u) << mode.label;
      }
    }
  }
}

// Placement parsing round-trips, and every shard map is a balanced
// partition with consistent inverse routing.
TEST(ShardedEngineTest, PlacementRoundTripAndBalancedPartition) {
  for (ShardPlacement placement :
       {ShardPlacement::kContiguous, ShardPlacement::kHash,
        ShardPlacement::kClusterAware}) {
    auto parsed = ParseShardPlacement(ShardPlacementName(placement));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), placement);
  }
  EXPECT_FALSE(ParseShardPlacement("ring").ok());

  const FloatMatrix data = testing_util::RandomUnitMatrix(41, 8, 3);
  for (ShardPlacement placement :
       {ShardPlacement::kContiguous, ShardPlacement::kHash,
        ShardPlacement::kClusterAware}) {
    ShardOptions options;
    options.shards = 6;
    options.placement = placement;
    auto map_result = BuildShardMap(data, options);
    ASSERT_TRUE(map_result.ok());
    const ShardMap& map = map_result.value();

    ASSERT_EQ(map.shards(), 6u);
    size_t smallest = data.rows();
    size_t largest = 0;
    std::vector<bool> seen(data.rows(), false);
    for (size_t j = 0; j < map.shards(); ++j) {
      const auto& rows = map.rows_per_shard[j];
      smallest = std::min(smallest, rows.size());
      largest = std::max(largest, rows.size());
      // Shard-local order is ascending global order, with the inverse map
      // routing every global row back to its (shard, local) slot.
      ASSERT_TRUE(std::is_sorted(rows.begin(), rows.end()));
      for (size_t local = 0; local < rows.size(); ++local) {
        const uint32_t global = rows[local];
        ASSERT_LT(global, data.rows());
        EXPECT_FALSE(seen[global]) << "row assigned twice";
        seen[global] = true;
        EXPECT_EQ(map.shard_of[global], j);
        EXPECT_EQ(map.local_of[global], local);
      }
    }
    EXPECT_LE(largest - smallest, 1u) << "placement must stay balanced";
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](bool s) { return s; }));
  }
}

TEST(ShardedEngineTest, RejectsInvalidShardCounts) {
  const FloatMatrix data = testing_util::RandomUnitMatrix(10, 8, 4);
  for (int shards : {0, -2}) {
    EngineOptions options;
    options.shard.shards = shards;
    auto built =
        ShardedPimEngine::Build(data, Distance::kEuclidean, options);
    ASSERT_FALSE(built.ok());
    EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  }
  EngineOptions options;
  options.shard.shards = 11;  // > n: some shard would be empty.
  auto built = ShardedPimEngine::Build(data, Distance::kEuclidean, options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

// MergeShardTopK on disjoint per-shard k-bests equals a single TopK over
// the union — including distance ties, which resolve by ascending id.
TEST(ShardedEngineTest, MergeShardTopKMatchesGlobalTopKWithTies) {
  Rng rng(99);
  const size_t n = 60;
  const size_t k = 7;
  // Quantized distances force many cross-shard ties.
  std::vector<double> distance(n);
  for (double& v : distance) {
    v = static_cast<double>(rng.NextBounded(5));
  }

  for (size_t shards : {1u, 3u, 8u}) {
    TopK global(k);
    std::vector<TopK> per_shard(shards, TopK(k));
    for (size_t i = 0; i < n; ++i) {  // ascending id push order.
      global.Push(distance[i], static_cast<int32_t>(i));
      per_shard[i % shards].Push(distance[i], static_cast<int32_t>(i));
    }
    std::vector<std::vector<Neighbor>> lists;
    for (TopK& shard_topk : per_shard) {
      lists.push_back(shard_topk.TakeSorted());
    }
    const std::vector<Neighbor> merged = MergeShardTopK(lists, k);
    const std::vector<Neighbor> expected = global.TakeSorted();
    ASSERT_EQ(merged.size(), expected.size()) << "M=" << shards;
    for (size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(merged[j].id, expected[j].id) << "M=" << shards;
      EXPECT_EQ(merged[j].distance, expected[j].distance) << "M=" << shards;
    }
  }
}

// The exact accumulator's tree merge equals its flat sum bit-for-bit for
// every partition shape — the property the sharded centroid update rests
// on. double accumulation would fail this for these magnitudes.
TEST(ShardedEngineTest, ExactSumTreeMergeEqualsFlatSum) {
  Rng rng(5);
  std::vector<float> values;
  for (int i = 0; i < 500; ++i) {
    // Mix signs and ~50 orders of magnitude, including denormals.
    float v = rng.NextFloat() * 2.0f - 1.0f;
    const int scale = static_cast<int>(rng.NextBounded(100)) - 50;
    v = std::ldexp(v, scale);
    if (i % 97 == 0) v = 1e-42f;  // denormal.
    values.push_back(v);
  }

  ExactSum flat;
  for (float v : values) flat.Add(v);

  for (size_t shards : {2u, 3u, 8u}) {
    std::vector<ExactSum> partials(shards);
    for (size_t i = 0; i < values.size(); ++i) {
      partials[i % shards].Add(values[i]);
    }
    for (size_t stride = 1; stride < shards; stride *= 2) {
      for (size_t a = 0; a + stride < shards; a += 2 * stride) {
        partials[a].Merge(partials[a + stride]);
      }
    }
    EXPECT_TRUE(partials[0] == flat) << "M=" << shards;
    EXPECT_EQ(partials[0].ToDouble(), flat.ToDouble()) << "M=" << shards;
  }

  // Sanity: the rounded value agrees with a long-double reference, within
  // that reference's own accumulation error (relative to the magnitude of
  // the summands, not of the — possibly cancelled — net sum).
  long double reference = 0.0L;
  double magnitude = 0.0;
  for (float v : values) {
    reference += static_cast<long double>(v);
    magnitude += std::abs(static_cast<double>(v));
  }
  EXPECT_NEAR(flat.ToDouble(), static_cast<double>(reference),
              magnitude * 1e-12);
}

// A shard whose device op fails with DeviceFault (kFailOp recovery) is
// escalated to a host-exact recompute of only that shard: the fleet run
// succeeds, bounds stay bit-identical to the fault-free fleet, and the
// fail-over is visible in the fleet stats. With failover disabled the
// fault propagates instead.
TEST(ShardedEngineTest, FailedShardEscalatesToHostRecompute) {
  const size_t n = 90;
  const size_t d = 16;
  const FloatMatrix data = ClusteredData(n, d, 21);
  const FloatMatrix queries = testing_util::RandomUnitMatrix(3, d, 22);

  EngineOptions clean_options;
  clean_options.shard.shards = 3;
  auto clean_built =
      ShardedPimEngine::Build(data, Distance::kEuclidean, clean_options);
  ASSERT_TRUE(clean_built.ok());
  const auto clean = std::move(clean_built).value();
  auto clean_run = clean->RunQueryBatch(
      std::span<const float>(queries.data(), queries.rows() * d),
      queries.rows());
  ASSERT_TRUE(clean_run.ok());

  EngineOptions faulty_options = clean_options;
  faulty_options.fault_config.transient_rate = 0.2;  // every op faults.
  faulty_options.recovery.verify_mode = VerifyMode::kFailOp;
  faulty_options.recovery.max_retries = 0;
  auto faulty_built =
      ShardedPimEngine::Build(data, Distance::kEuclidean, faulty_options);
  ASSERT_TRUE(faulty_built.ok());
  const auto faulty = std::move(faulty_built).value();

  auto run = faulty->RunQueryBatch(
      std::span<const float>(queries.data(), queries.rows() * d),
      queries.rows());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (size_t q = 0; q < queries.rows(); ++q) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(faulty->BoundFor(*run, q, i),
                clean->BoundFor(*clean_run, q, i))
          << "q=" << q << " i=" << i;
    }
  }
  const FleetRunStats stats = faulty->FleetStats();
  EXPECT_GT(stats.failovers, 0u);
  EXPECT_GT(stats.failed_over_queries, 0u);
  EXPECT_GT(faulty->FaultStatsTotal().escalated_to_host, 0u);

  EngineOptions no_failover = faulty_options;
  no_failover.shard.failover = false;
  auto strict_built =
      ShardedPimEngine::Build(data, Distance::kEuclidean, no_failover);
  ASSERT_TRUE(strict_built.ok());
  const auto strict = std::move(strict_built).value();
  auto strict_run = strict->RunQueryBatch(
      std::span<const float>(queries.data(), queries.rows() * d),
      queries.rows());
  ASSERT_FALSE(strict_run.ok());
  EXPECT_EQ(strict_run.status().code(), StatusCode::kDeviceFault);
}

// ChargeTreeReduction charges the critical path: ceil(log2 M) messages of
// the given payload, and nothing at M = 1.
TEST(ShardedEngineTest, TreeReductionChargesCriticalPath) {
  const FloatMatrix data = testing_util::RandomUnitMatrix(64, 8, 6);
  for (const auto& [shards, depth] :
       std::vector<std::pair<int, uint64_t>>{{1, 0}, {2, 1}, {3, 2},
                                             {5, 3}, {8, 3}}) {
    EngineOptions options;
    options.shard.shards = shards;
    auto built =
        ShardedPimEngine::Build(data, Distance::kEuclidean, options);
    ASSERT_TRUE(built.ok()) << "M=" << shards;
    const auto fleet = std::move(built).value();
    fleet->ChargeTreeReduction(1000);
    const FleetRunStats stats = fleet->FleetStats();
    EXPECT_EQ(stats.reduce_messages, depth) << "M=" << shards;
    EXPECT_EQ(stats.reduce_bytes, depth * 1000) << "M=" << shards;
  }
}

}  // namespace
}  // namespace pimine
