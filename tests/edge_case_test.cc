// Edge-case battery across module boundaries: degenerate sizes, duplicate
// data, extreme parameters — places where off-by-ones and division-by-zero
// hide.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/segments.h"
#include "core/similarity.h"
#include "data/bit_matrix.h"
#include "kmeans/lloyd.h"
#include "knn/standard_knn.h"
#include "knn/standard_pim_knn.h"
#include "pim/crossbar.h"
#include "test_helpers.h"

namespace pimine {
namespace {

using testing_util::RandomUnitMatrix;
using testing_util::RandomUnitVector;

TEST(SegmentEdgeTest, OneSegmentAndPerDimensionSegments) {
  const auto v = RandomUnitVector(12, 1);
  // d0 == d: each segment is one value -> mean = value, std = 0.
  std::vector<float> means(12), stds(12);
  ComputeSegments(v, 12, means, stds);
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_FLOAT_EQ(means[i], v[i]);
    EXPECT_FLOAT_EQ(stds[i], 0.0f);
  }
  // d0 == 1: single segment covering everything.
  std::vector<float> mean1(1), std1(1);
  ComputeSegments(v, 1, mean1, std1);
  double sum = 0.0;
  for (float x : v) sum += x;
  EXPECT_NEAR(mean1[0], sum / 12.0, 1e-6);
}

TEST(EngineEdgeTest, SingleObjectSingleDimension) {
  FloatMatrix data(1, 1);
  data(0, 0) = 0.42f;
  auto engine = PimEngine::Build(data, Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::vector<double> bounds;
  const std::vector<float> q = {0.9f};
  ASSERT_TRUE((*engine)->ComputeBounds(q, &bounds).ok());
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_LE(bounds[0], SquaredEuclidean(data.row(0), q) + 1e-9);
}

TEST(EngineEdgeTest, DuplicateObjectsGetEqualBounds) {
  FloatMatrix data(4, 8);
  const auto row = RandomUnitVector(8, 2);
  for (size_t i = 0; i < 4; ++i) {
    std::copy(row.begin(), row.end(), data.mutable_row(i).begin());
  }
  auto engine = PimEngine::Build(data, Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(engine.ok());
  std::vector<double> bounds;
  ASSERT_TRUE((*engine)->ComputeBounds(RandomUnitVector(8, 3), &bounds).ok());
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], bounds[0]);
  }
}

TEST(EngineEdgeTest, AllZeroAndAllOneData) {
  FloatMatrix data(3, 6, 0.0f);
  for (float& v : data.mutable_row(1)) v = 1.0f;
  auto engine = PimEngine::Build(data, Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(engine.ok());
  std::vector<double> bounds;
  const std::vector<float> q(6, 1.0f);
  ASSERT_TRUE((*engine)->ComputeBounds(q, &bounds).ok());
  EXPECT_LE(bounds[0], 6.0 + 1e-9);  // exact distance to all-zero row is 6.
  EXPECT_LE(bounds[1], 1e-9);       // identical to the query.
}

TEST(KnnEdgeTest, KEqualsNReturnsAllSorted) {
  const FloatMatrix data = RandomUnitMatrix(20, 8, 4);
  const FloatMatrix queries = RandomUnitMatrix(1, 8, 5);
  StandardKnn standard;
  ASSERT_TRUE(standard.Prepare(data).ok());
  auto result = standard.Search(queries, 20);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->neighbors[0].size(), 20u);
  for (size_t i = 1; i < 20; ++i) {
    EXPECT_GE(result->neighbors[0][i].distance,
              result->neighbors[0][i - 1].distance);
  }

  StandardPimKnn pim(Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(pim.Prepare(data).ok());
  auto accel = pim.Search(queries, 20);
  ASSERT_TRUE(accel.ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(accel->neighbors[0][i].id, result->neighbors[0][i].id);
  }
}

TEST(KnnEdgeTest, QueryIdenticalToDataPoint) {
  FloatMatrix data = RandomUnitMatrix(50, 16, 6);
  FloatMatrix queries(1, 16);
  std::copy(data.row(7).begin(), data.row(7).end(),
            queries.mutable_row(0).begin());
  StandardPimKnn pim(Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(pim.Prepare(data).ok());
  auto result = pim.Search(queries, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->neighbors[0][0].id, 7);
  EXPECT_NEAR(result->neighbors[0][0].distance, 0.0, 1e-12);
}

TEST(KmeansEdgeTest, KEqualsNGivesZeroInertia) {
  const FloatMatrix data = RandomUnitMatrix(10, 4, 7);
  KmeansOptions options;
  options.k = 10;
  options.max_iterations = 3;
  LloydKmeans lloyd;
  auto result = lloyd.Run(data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-9);
}

TEST(KmeansEdgeTest, SingleIterationIsValid) {
  const FloatMatrix data = RandomUnitMatrix(40, 6, 8);
  KmeansOptions options;
  options.k = 4;
  options.max_iterations = 1;
  LloydKmeans lloyd;
  auto result = lloyd.Run(data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->iterations, 1);
}

TEST(BitMatrixEdgeTest, AllZeroCodes) {
  BitMatrix codes(2, 64);
  EXPECT_EQ(BitMatrix::HammingDistance(codes.row(0), codes.row(1)), 0);
  codes.Set(0, 63, true);
  EXPECT_EQ(BitMatrix::HammingDistance(codes.row(0), codes.row(1)), 1);
}

TEST(CrossbarEdgeTest, AllZeroOperandsGiveZero) {
  Crossbar xbar(8, 2);
  ASSERT_TRUE(
      xbar.ProgramVector(0, std::vector<uint32_t>(8, 0), 8).ok());
  auto result = xbar.DotProduct(std::vector<uint32_t>(8, 3), 8, 8, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values[0], 0u);
}

TEST(SimilarityEdgeTest, EmptyVectors) {
  const std::vector<float> empty;
  EXPECT_DOUBLE_EQ(SquaredEuclidean(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(DotProduct(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(empty, empty), 0.0);
}

}  // namespace
}  // namespace pimine
