#include "knn/approximate_pim_knn.h"

#include <gtest/gtest.h>

#include "core/quantize.h"
#include "core/similarity.h"
#include "data/generator.h"
#include "knn/standard_knn.h"
#include "test_helpers.h"

namespace pimine {
namespace {

using testing_util::RandomUnitMatrix;

struct Workload {
  FloatMatrix data;
  FloatMatrix queries;
};

Workload MakeWorkload(uint64_t seed) {
  DatasetSpec spec;
  spec.name = "approx";
  spec.dims = 48;
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 8;
  spec.cluster_std = 0.08;
  Workload w;
  w.data = DatasetGenerator::Generate(spec, 500, seed);
  w.queries = DatasetGenerator::GenerateQueries(spec, w.data, 5, seed + 1);
  return w;
}

TEST(ApproximatePimTest, HighPrecisionRecoverExactResults) {
  const Workload w = MakeWorkload(3);
  StandardKnn standard;
  ASSERT_TRUE(standard.Prepare(w.data).ok());
  auto golden = standard.Search(w.queries, 10);
  ASSERT_TRUE(golden.ok());

  EngineOptions options;
  options.alpha = 1e6;
  ApproximatePimKnn approx(options);
  ASSERT_TRUE(approx.Prepare(w.data).ok());
  auto result = approx.Search(w.queries, 10);
  ASSERT_TRUE(result.ok());
  for (size_t q = 0; q < golden->neighbors.size(); ++q) {
    EXPECT_DOUBLE_EQ(RecallAtK(golden->neighbors[q], result->neighbors[q]),
                     1.0);
  }
  // No exact host computation happened at all.
  EXPECT_EQ(result->stats.exact_count, 0u);
}

TEST(ApproximatePimTest, CoarseQuantizationLosesAccuracy) {
  const Workload w = MakeWorkload(4);
  StandardKnn standard;
  ASSERT_TRUE(standard.Prepare(w.data).ok());
  auto golden = standard.Search(w.queries, 10);
  ASSERT_TRUE(golden.ok());

  EngineOptions options;
  options.alpha = 4.0;  // 2-bit values: severe precision loss.
  options.operand_bits = 4;
  ApproximatePimKnn approx(options);
  ASSERT_TRUE(approx.Prepare(w.data).ok());
  auto result = approx.Search(w.queries, 10);
  ASSERT_TRUE(result.ok());
  double total_recall = 0.0;
  for (size_t q = 0; q < golden->neighbors.size(); ++q) {
    total_recall += RecallAtK(golden->neighbors[q], result->neighbors[q]);
  }
  // The paper's §II-A argument: fixed-point approximation compromises
  // mining accuracy. At alpha=4 some true neighbours must be lost.
  EXPECT_LT(total_recall / golden->neighbors.size(), 1.0);
}

TEST(ApproximatePimTest, ApproximationErrorWithinQuantizationBound) {
  const FloatMatrix data = RandomUnitMatrix(30, 32, 5);
  const double alpha = 100.0;
  EngineOptions options;
  options.alpha = alpha;
  ApproximatePimKnn approx(options);
  ASSERT_TRUE(approx.Prepare(data).ok());
  FloatMatrix query(1, 32);
  const auto qsrc = RandomUnitMatrix(1, 32, 6);
  std::copy(qsrc.row(0).begin(), qsrc.row(0).end(),
            query.mutable_row(0).begin());

  auto result = approx.Search(query, 30);
  ASSERT_TRUE(result.ok());
  // Every reported approximate distance is within the two-sided floor
  // error of the exact distance (same order as the Theorem 3 bound).
  const double tolerance = 2.0 * LbPimEdErrorBound(32, alpha);
  for (const Neighbor& nb : result->neighbors[0]) {
    const double exact = SquaredEuclidean(data.row(nb.id), query.row(0));
    EXPECT_NEAR(nb.distance, exact, tolerance);
  }
}

TEST(RecallAtKTest, Basics) {
  const std::vector<Neighbor> exact = {{1.0, 1}, {2.0, 2}, {3.0, 3}};
  const std::vector<Neighbor> perfect = {{1.0, 2}, {2.0, 3}, {3.0, 1}};
  const std::vector<Neighbor> half = {{1.0, 1}, {2.0, 9}, {3.0, 2}};
  EXPECT_DOUBLE_EQ(RecallAtK(exact, perfect), 1.0);
  EXPECT_NEAR(RecallAtK(exact, half), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(RecallAtK({}, {}), 1.0);
}

TEST(ApproximatePimTest, Validation) {
  ApproximatePimKnn approx((EngineOptions()));
  EXPECT_FALSE(approx.Prepare(FloatMatrix()).ok());
  const Workload w = MakeWorkload(7);
  EXPECT_EQ(approx.Search(w.queries, 3).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(approx.Prepare(w.data).ok());
  EXPECT_FALSE(approx.Search(w.queries, 0).ok());
}

}  // namespace
}  // namespace pimine
