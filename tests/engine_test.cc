#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/quantize.h"
#include "core/similarity.h"
#include "pim/crossbar.h"
#include "test_helpers.h"

namespace pimine {
namespace {

using testing_util::RandomUnitMatrix;
using testing_util::RandomUnitVector;

EngineOptions SmallArrayOptions(int64_t crossbars) {
  EngineOptions options;
  options.pim_config.num_crossbars = crossbars;
  return options;
}

TEST(EngineBuildTest, AutoPicksDirectWhenFitting) {
  const FloatMatrix data = RandomUnitMatrix(64, 32, 1);
  auto engine =
      PimEngine::Build(data, Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->mode(), EngineMode::kDirectEd);
  EXPECT_FALSE((*engine)->plan().compressed);
}

TEST(EngineBuildTest, AutoFallsBackToSegmentsWhenTight) {
  const FloatMatrix data = RandomUnitMatrix(256, 128, 2);
  // Capacity for roughly half of the full-dimensionality dataset.
  auto engine = PimEngine::Build(data, Distance::kEuclidean,
                                 SmallArrayOptions(4));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->mode(), EngineMode::kSegmentFnn);
  EXPECT_LT((*engine)->num_segments(), 128);
  EXPECT_GE((*engine)->num_segments(), 1);
}

TEST(EngineBuildTest, RejectsUnnormalizedData) {
  FloatMatrix data = RandomUnitMatrix(8, 4, 3);
  data(0, 0) = 1.5f;
  EXPECT_FALSE(
      PimEngine::Build(data, Distance::kEuclidean, EngineOptions()).ok());
}

TEST(EngineBuildTest, RejectsEmptyAndHamming) {
  EXPECT_FALSE(
      PimEngine::Build(FloatMatrix(), Distance::kEuclidean, EngineOptions())
          .ok());
  const FloatMatrix data = RandomUnitMatrix(4, 4, 4);
  EXPECT_FALSE(
      PimEngine::Build(data, Distance::kHamming, EngineOptions()).ok());
}

TEST(EngineBuildTest, ForceSegmentsHonored) {
  const FloatMatrix data = RandomUnitMatrix(32, 64, 5);
  EngineOptions options;
  options.bound = EngineOptions::Bound::kSegmentFnn;
  options.force_segments = 16;
  auto engine = PimEngine::Build(data, Distance::kEuclidean, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->num_segments(), 16);
  EXPECT_EQ((*engine)->segment_length(), 4);
}

TEST(EngineBuildTest, ForceSegmentsBeyondCapacityFails) {
  const FloatMatrix data = RandomUnitMatrix(4096, 64, 6);
  EngineOptions options = SmallArrayOptions(2);
  options.bound = EngineOptions::Bound::kSegmentFnn;
  options.force_segments = 64;
  EXPECT_EQ(
      PimEngine::Build(data, Distance::kEuclidean, options).status().code(),
      StatusCode::kCapacityExceeded);
}

struct ModeCase {
  EngineOptions::Bound bound;
  int64_t force_segments;
};

class EngineBoundPropertyTest : public ::testing::TestWithParam<ModeCase> {};

// The central accuracy invariant of the paper (§V-B): engine bounds never
// exceed the exact squared ED, for any mode.
TEST_P(EngineBoundPropertyTest, EuclideanLowerBoundHolds) {
  const auto [bound, force_segments] = GetParam();
  const FloatMatrix data = RandomUnitMatrix(60, 48, 7);
  EngineOptions options;
  options.bound = bound;
  options.force_segments = force_segments;
  auto engine_or = PimEngine::Build(data, Distance::kEuclidean, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  PimEngine& engine = **engine_or;

  std::vector<double> bounds;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const auto q = RandomUnitVector(48, 70 + seed);
    ASSERT_TRUE(engine.ComputeBounds(q, &bounds).ok());
    ASSERT_EQ(bounds.size(), 60u);
    for (size_t i = 0; i < 60; ++i) {
      EXPECT_LE(bounds[i], SquaredEuclidean(data.row(i), q) + 1e-9)
          << "object " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, EngineBoundPropertyTest,
    ::testing::Values(ModeCase{EngineOptions::Bound::kDirectEd, 0},
                      ModeCase{EngineOptions::Bound::kSegmentFnn, 0},
                      ModeCase{EngineOptions::Bound::kSegmentFnn, 12},
                      ModeCase{EngineOptions::Bound::kSegmentFnn, 48},
                      ModeCase{EngineOptions::Bound::kSegmentSm, 0},
                      ModeCase{EngineOptions::Bound::kSegmentSm, 6}));

TEST(EngineCosineTest, UpperBoundHolds) {
  const FloatMatrix data = RandomUnitMatrix(40, 32, 8);
  auto engine_or =
      PimEngine::Build(data, Distance::kCosine, EngineOptions());
  ASSERT_TRUE(engine_or.ok());
  PimEngine& engine = **engine_or;
  EXPECT_EQ(engine.mode(), EngineMode::kCosine);

  std::vector<double> bounds;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const auto q = RandomUnitVector(32, 200 + seed);
    ASSERT_TRUE(engine.ComputeBounds(q, &bounds).ok());
    for (size_t i = 0; i < 40; ++i) {
      EXPECT_GE(bounds[i], CosineSimilarity(data.row(i), q) - 1e-9);
    }
  }
}

TEST(EnginePearsonTest, UpperBoundHolds) {
  const FloatMatrix data = RandomUnitMatrix(40, 32, 9);
  auto engine_or =
      PimEngine::Build(data, Distance::kPearson, EngineOptions());
  ASSERT_TRUE(engine_or.ok());
  PimEngine& engine = **engine_or;
  EXPECT_EQ(engine.mode(), EngineMode::kPearson);

  std::vector<double> bounds;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const auto q = RandomUnitVector(32, 300 + seed);
    ASSERT_TRUE(engine.ComputeBounds(q, &bounds).ok());
    for (size_t i = 0; i < 40; ++i) {
      EXPECT_GE(bounds[i], PearsonCorrelation(data.row(i), q) - 1e-9);
    }
  }
}

TEST(EngineQueryValidationTest, RejectsBadQueries) {
  const FloatMatrix data = RandomUnitMatrix(8, 16, 10);
  auto engine_or =
      PimEngine::Build(data, Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(engine_or.ok());
  std::vector<double> bounds;
  // Wrong dimensionality.
  EXPECT_FALSE(
      (*engine_or)->ComputeBounds(RandomUnitVector(15, 1), &bounds).ok());
  // Out-of-range values.
  std::vector<float> bad = RandomUnitVector(16, 2);
  bad[0] = 2.0f;
  EXPECT_FALSE((*engine_or)->ComputeBounds(bad, &bounds).ok());
}

TEST(EngineStatsTest, PimTimeAccumulatesAndResets) {
  const FloatMatrix data = RandomUnitMatrix(16, 8, 11);
  auto engine_or =
      PimEngine::Build(data, Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(engine_or.ok());
  PimEngine& engine = **engine_or;
  EXPECT_GT(engine.OfflineNs(), 0.0);
  EXPECT_GT(engine.OfflineBytesWritten(), 0u);
  EXPECT_DOUBLE_EQ(engine.PimComputeNs(), 0.0);
  std::vector<double> bounds;
  ASSERT_TRUE(engine.ComputeBounds(RandomUnitVector(8, 3), &bounds).ok());
  EXPECT_GT(engine.PimComputeNs(), 0.0);
  engine.ResetOnlineStats();
  EXPECT_DOUBLE_EQ(engine.PimComputeNs(), 0.0);
  EXPECT_DOUBLE_EQ(engine.TransferBitsPerCandidate(), 96.0);  // 3 * 32.
}

// Hardware-fidelity cross-check: the engine's batch dot products (direct
// integer emulation) equal what the cycle-level crossbar pipeline computes
// on the same quantized data.
TEST(EngineFidelityTest, MatchesCycleLevelCrossbar) {
  const size_t n = 3;
  const size_t d = 4;
  const FloatMatrix data = RandomUnitMatrix(n, d, 12);
  EngineOptions options;
  options.alpha = 100.0;  // keep operands small: floor values < 128.
  options.operand_bits = 8;
  auto engine_or = PimEngine::Build(data, Distance::kEuclidean, options);
  ASSERT_TRUE(engine_or.ok());
  PimEngine& engine = **engine_or;
  ASSERT_EQ(engine.mode(), EngineMode::kDirectEd);

  const auto q = RandomUnitVector(d, 13);
  auto handle_or = engine.RunQuery(q);
  ASSERT_TRUE(handle_or.ok());

  // Rebuild the same layout on explicit crossbars: one logical column per
  // object, the object's quantized vector along the rows.
  const Quantizer quant(options.alpha);
  Crossbar xbar(32, 2);
  std::vector<int32_t> ints(d);
  for (size_t i = 0; i < n; ++i) {
    quant.QuantizeRow(data.row(i), ints);
    std::vector<uint32_t> operands(ints.begin(), ints.end());
    ASSERT_TRUE(
        xbar.ProgramVector(static_cast<int>(i), operands, 8).ok());
  }
  quant.QuantizeRow(q, ints);
  const std::vector<uint32_t> input(ints.begin(), ints.end());
  auto pipeline = xbar.DotProduct(input, 8, 8, 2);
  ASSERT_TRUE(pipeline.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(handle_or->dots1[i], pipeline->values[i]) << "object " << i;
  }
}

}  // namespace
}  // namespace pimine
