#include "core/hamming_engine.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace pimine {
namespace {

BitMatrix RandomCodes(size_t rows, size_t bits, uint64_t seed) {
  BitMatrix codes(rows, bits);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t b = 0; b < bits; ++b) {
      codes.Set(i, b, rng.NextBool());
    }
  }
  return codes;
}

class HammingEngineWidthTest : public ::testing::TestWithParam<size_t> {};

// The PIM path (two AND-popcount dot products) must equal XOR popcount for
// every code width, including non-multiples of 64.
TEST_P(HammingEngineWidthTest, MatchesXorPopcount) {
  const size_t bits = GetParam();
  const BitMatrix codes = RandomCodes(30, bits, bits * 7 + 1);
  auto engine_or = PimHammingEngine::Build(codes);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  PimHammingEngine& engine = **engine_or;

  const BitMatrix queries = RandomCodes(5, bits, bits * 13 + 2);
  std::vector<int32_t> distances;
  for (size_t qi = 0; qi < queries.rows(); ++qi) {
    ASSERT_TRUE(engine.ComputeDistances(queries.row(qi), &distances).ok());
    ASSERT_EQ(distances.size(), 30u);
    for (size_t i = 0; i < 30; ++i) {
      EXPECT_EQ(distances[i],
                BitMatrix::HammingDistance(codes.row(i), queries.row(qi)))
          << "bits=" << bits << " object=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, HammingEngineWidthTest,
                         ::testing::Values(1, 7, 64, 65, 128, 100, 256, 512,
                                           1024, 1000));

TEST(HammingEngineTest, RejectsBadInput) {
  EXPECT_FALSE(PimHammingEngine::Build(BitMatrix()).ok());

  const BitMatrix codes = RandomCodes(10, 128, 3);
  auto engine_or = PimHammingEngine::Build(codes);
  ASSERT_TRUE(engine_or.ok());
  std::vector<int32_t> out;
  const BitMatrix wrong = RandomCodes(1, 192, 4);
  EXPECT_FALSE((*engine_or)->ComputeDistances(wrong.row(0), &out).ok());
}

TEST(HammingEngineTest, CapacityRespected) {
  PimConfig config;
  config.num_crossbars = 1;
  const BitMatrix codes = RandomCodes(70000, 1024, 5);
  EXPECT_EQ(PimHammingEngine::Build(codes, config).status().code(),
            StatusCode::kCapacityExceeded);
}

TEST(HammingEngineTest, StatsAccumulate) {
  const BitMatrix codes = RandomCodes(20, 256, 6);
  auto engine_or = PimHammingEngine::Build(codes);
  ASSERT_TRUE(engine_or.ok());
  PimHammingEngine& engine = **engine_or;
  EXPECT_GT(engine.OfflineNs(), 0.0);

  std::vector<int32_t> out;
  const BitMatrix query = RandomCodes(1, 256, 7);
  ASSERT_TRUE(engine.ComputeDistances(query.row(0), &out).ok());
  EXPECT_GT(engine.PimComputeNs(), 0.0);
  EXPECT_EQ(engine.ResultBytesToHost(), 20u * sizeof(uint64_t));
  engine.ResetOnlineStats();
  EXPECT_DOUBLE_EQ(engine.PimComputeNs(), 0.0);
  EXPECT_EQ(engine.ResultBytesToHost(), 0u);
}

TEST(HammingEngineTest, SelfDistanceIsZero) {
  const BitMatrix codes = RandomCodes(8, 96, 8);
  auto engine_or = PimHammingEngine::Build(codes);
  ASSERT_TRUE(engine_or.ok());
  std::vector<int32_t> out;
  ASSERT_TRUE((*engine_or)->ComputeDistances(codes.row(3), &out).ok());
  EXPECT_EQ(out[3], 0);
}

}  // namespace
}  // namespace pimine
