// Golden-stats regression harness: runs every kNN Search() path and every
// k-means algorithm on a fixed seeded workload and compares the
// deterministic RunStats surface (exact/bound counts, all traffic
// counters, modeled PIM ns) against snapshots in tests/golden/. Any change
// to pruning behaviour, traffic accounting, or the device timing model
// shows up as a byte diff here.
//
// Regenerating after an intentional model change:
//   PIMINE_REGEN_GOLDEN=1 ./golden_stats_test
// then commit the rewritten tests/golden/*.txt.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/mutable_dataset.h"
#include "data/generator.h"
#include "kmeans/drake.h"
#include "kmeans/elkan.h"
#include "kmeans/hamerly.h"
#include "kmeans/kmeans_common.h"
#include "kmeans/lloyd.h"
#include "kmeans/yinyang.h"
#include "knn/fnn_knn.h"
#include "knn/fnn_pim_knn.h"
#include "knn/knn_common.h"
#include "knn/ost_knn.h"
#include "knn/ost_pim_knn.h"
#include "knn/sm_knn.h"
#include "knn/sm_pim_knn.h"
#include "knn/standard_knn.h"
#include "knn/standard_pim_knn.h"
#include "profiling/run_stats.h"

#ifndef PIMINE_GOLDEN_DIR
#error "PIMINE_GOLDEN_DIR must be defined by the build"
#endif

namespace pimine {
namespace {

struct Workload {
  FloatMatrix data;
  FloatMatrix queries;
};

Workload MakeWorkload() {
  DatasetSpec spec;
  spec.name = "golden";
  spec.dims = 32;
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 8;
  spec.cluster_std = 0.08;
  Workload w;
  w.data = DatasetGenerator::Generate(spec, 300, 42);
  w.queries = DatasetGenerator::GenerateQueries(spec, w.data, 9, 43);
  return w;
}

/// The deterministic (non-wall-clock) RunStats surface, one key per line.
/// pim_ns uses %.17g: a double round-trips exactly at 17 significant
/// digits, so the snapshot is bit-faithful.
std::string Render(const RunStats& stats) {
  std::ostringstream out;
  out << "exact_count=" << stats.exact_count << "\n";
  out << "bound_count=" << stats.bound_count << "\n";
  out << "bytes_from_memory=" << stats.traffic.bytes_from_memory << "\n";
  out << "bytes_to_memory=" << stats.traffic.bytes_to_memory << "\n";
  out << "arithmetic_ops=" << stats.traffic.arithmetic_ops << "\n";
  out << "long_ops=" << stats.traffic.long_ops << "\n";
  out << "branches=" << stats.traffic.branches << "\n";
  out << "pim_results_loaded=" << stats.traffic.pim_results_loaded << "\n";
  out << "footprint_bytes=" << stats.footprint_bytes << "\n";
  char pim_ns[64];
  std::snprintf(pim_ns, sizeof(pim_ns), "%.17g", stats.pim_ns);
  out << "pim_ns=" << pim_ns << "\n";
  return out.str();
}

void CheckAgainstGolden(const std::string& label, const RunStats& stats) {
  const std::string rendered = Render(stats);
  const std::string path =
      std::string(PIMINE_GOLDEN_DIR) + "/" + label + ".txt";

  if (std::getenv("PIMINE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    return;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run with PIMINE_REGEN_GOLDEN=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), rendered)
      << label << ": RunStats diverged from " << path
      << ". If the change is intentional, regenerate with "
      << "PIMINE_REGEN_GOLDEN=1 ./golden_stats_test and commit the diff.";
}

struct KnnGoldenCase {
  std::string label;
  std::function<std::unique_ptr<KnnAlgorithm>()> make;
};

std::vector<KnnGoldenCase> KnnCases() {
  std::vector<KnnGoldenCase> cases;
  cases.push_back({"knn_standard", [] {
                     return std::make_unique<StandardKnn>();
                   }});
  cases.push_back({"knn_ost", [] { return std::make_unique<OstKnn>(); }});
  cases.push_back({"knn_sm", [] { return std::make_unique<SmKnn>(); }});
  cases.push_back({"knn_fnn", [] { return std::make_unique<FnnKnn>(); }});
  cases.push_back({"knn_standard_pim", [] {
                     return std::make_unique<StandardPimKnn>(
                         Distance::kEuclidean, EngineOptions());
                   }});
  cases.push_back({"knn_ost_pim", [] {
                     return std::make_unique<OstPimKnn>(EngineOptions());
                   }});
  cases.push_back({"knn_sm_pim", [] {
                     return std::make_unique<SmPimKnn>(EngineOptions());
                   }});
  cases.push_back({"knn_fnn_pim", [] {
                     return std::make_unique<FnnPimKnn>(EngineOptions(),
                                                        /*optimize=*/true);
                   }});
  return cases;
}

TEST(GoldenStatsTest, KnnSearchPaths) {
  const Workload w = MakeWorkload();
  for (const KnnGoldenCase& c : KnnCases()) {
    auto algorithm = c.make();
    ASSERT_TRUE(algorithm->Prepare(w.data).ok()) << c.label;
    auto result = algorithm->Search(w.queries, 5);
    ASSERT_TRUE(result.ok()) << c.label;
    CheckAgainstGolden(c.label, result->stats);
  }
}

struct KmeansGoldenCase {
  std::string label;
  std::function<std::unique_ptr<KmeansAlgorithm>()> make;
};

std::vector<KmeansGoldenCase> KmeansCases() {
  std::vector<KmeansGoldenCase> cases;
  cases.push_back(
      {"kmeans_lloyd", [] { return std::make_unique<LloydKmeans>(); }});
  cases.push_back(
      {"kmeans_elkan", [] { return std::make_unique<ElkanKmeans>(); }});
  cases.push_back(
      {"kmeans_hamerly", [] { return std::make_unique<HamerlyKmeans>(); }});
  cases.push_back(
      {"kmeans_yinyang", [] { return std::make_unique<YinyangKmeans>(); }});
  cases.push_back(
      {"kmeans_drake", [] { return std::make_unique<DrakeKmeans>(); }});
  return cases;
}

TEST(GoldenStatsTest, KmeansAlgorithms) {
  const Workload w = MakeWorkload();
  KmeansOptions options;
  options.k = 8;
  options.max_iterations = 3;
  options.seed = 123;
  options.use_pim = true;  // exercises the PIM filter's pim_ns too.
  for (const KmeansGoldenCase& c : KmeansCases()) {
    auto algorithm = c.make();
    auto result = algorithm->Run(w.data, options);
    ASSERT_TRUE(result.ok()) << c.label;
    CheckAgainstGolden(c.label, result->stats);
  }
}

// Sharded fleets must reproduce the SAME golden files as the single-device
// runs: every rendered counter is shard-invariant by design (only the
// FleetRunStats block, which Render() excludes, varies with M).
TEST(GoldenStatsTest, ShardedKnnMatchesSingleDeviceGoldens) {
  const Workload w = MakeWorkload();
  for (int shards : {3, 8}) {
    EngineOptions options;
    options.shard.shards = shards;
    std::vector<KnnGoldenCase> cases;
    cases.push_back({"knn_standard_pim", [options] {
                       return std::make_unique<StandardPimKnn>(
                           Distance::kEuclidean, options);
                     }});
    cases.push_back({"knn_ost_pim", [options] {
                       return std::make_unique<OstPimKnn>(options);
                     }});
    cases.push_back({"knn_sm_pim", [options] {
                       return std::make_unique<SmPimKnn>(options);
                     }});
    cases.push_back({"knn_fnn_pim", [options] {
                       return std::make_unique<FnnPimKnn>(options,
                                                          /*optimize=*/true);
                     }});
    for (const KnnGoldenCase& c : cases) {
      auto algorithm = c.make();
      ASSERT_TRUE(algorithm->Prepare(w.data).ok()) << c.label;
      auto result = algorithm->Search(w.queries, 5);
      ASSERT_TRUE(result.ok()) << c.label;
      CheckAgainstGolden(c.label, result->stats);
      EXPECT_GT(result->stats.fleet.scatter_messages, 0u) << c.label;
    }
  }
}

TEST(GoldenStatsTest, ShardedKmeansMatchesSingleDeviceGoldens) {
  const Workload w = MakeWorkload();
  for (int shards : {3, 8}) {
    KmeansOptions options;
    options.k = 8;
    options.max_iterations = 3;
    options.seed = 123;
    options.use_pim = true;
    options.engine_options.shard.shards = shards;
    for (const KmeansGoldenCase& c : KmeansCases()) {
      auto algorithm = c.make();
      auto result = algorithm->Run(w.data, options);
      ASSERT_TRUE(result.ok()) << c.label;
      CheckAgainstGolden(c.label, result->stats);
      EXPECT_GT(result->stats.fleet.reduce_messages, 0u) << c.label;
    }
  }
}

// A corpus reached THROUGH mutations must be indistinguishable from one
// programmed statically: replaying a canned insert/delete/compact trace
// that reconstructs the golden workload exactly has to reproduce the SAME
// golden files as the static runs above — zero regenerated snapshots.
//
// The trace: program rows 0..249 of the golden corpus plus 20 sacrificial
// rows, append rows 250..299 as deltas, tombstone the sacrificial rows,
// compact. Compaction preserves live order, so the dense corpus equals the
// golden workload row for row.
struct MutationTraceFixture {
  Workload w;
  FloatMatrix base;   // rows 0..249 + 20 sacrificial copies of rows 0..19.
  FloatMatrix tail;   // rows 250..299, appended as deltas.

  MutationTraceFixture() : w(MakeWorkload()) {
    base = FloatMatrix(270, w.data.cols());
    for (size_t r = 0; r < 270; ++r) {
      const auto src = w.data.row(r < 250 ? r : r - 250);
      auto dst = base.mutable_row(r);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    tail = FloatMatrix(50, w.data.cols());
    for (size_t r = 0; r < 50; ++r) {
      const auto src = w.data.row(250 + r);
      auto dst = tail.mutable_row(r);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }

  /// Replays the canned trace; afterwards dataset->corpus() == w.data.
  void Replay(MutableDataset* dataset) const {
    ASSERT_TRUE(dataset->Insert(tail).ok());
    for (uint32_t victim = 250; victim < 270; ++victim) {
      ASSERT_TRUE(dataset->Delete(victim).ok());
    }
    ASSERT_TRUE(dataset->Compact().ok());
    ASSERT_EQ(dataset->rows(), w.data.rows());
    ASSERT_EQ(dataset->tombstoned_rows(), 0u);
    for (size_t r = 0; r < w.data.rows(); ++r) {
      const auto got = dataset->corpus().row(r);
      const auto want = w.data.row(r);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
          << "row " << r << " of the replayed corpus differs";
    }
  }
};

TEST(GoldenStatsTest, MutatedKnnMatchesStaticGoldensAfterCompaction) {
  const MutationTraceFixture fixture;
  std::vector<KnnGoldenCase> cases;
  cases.push_back({"knn_standard_pim", [] {
                     return std::make_unique<StandardPimKnn>(
                         Distance::kEuclidean, EngineOptions());
                   }});
  cases.push_back({"knn_ost_pim", [] {
                     return std::make_unique<OstPimKnn>(EngineOptions());
                   }});
  cases.push_back({"knn_sm_pim", [] {
                     return std::make_unique<SmPimKnn>(EngineOptions());
                   }});
  // optimize=true: the Eq. 13 plan is re-measured at compaction on the
  // dense corpus, so even the plan-dependent counters must land on the
  // static golden.
  cases.push_back({"knn_fnn_pim", [] {
                     return std::make_unique<FnnPimKnn>(EngineOptions(),
                                                        /*optimize=*/true);
                   }});
  for (const KnnGoldenCase& c : cases) {
    MutableDataset dataset(fixture.base);
    auto algorithm = c.make();
    ASSERT_TRUE(algorithm->Prepare(dataset.corpus()).ok()) << c.label;
    dataset.Attach(dynamic_cast<MutationListener*>(algorithm.get()));
    fixture.Replay(&dataset);
    auto result = algorithm->Search(fixture.w.queries, 5);
    ASSERT_TRUE(result.ok()) << c.label;
    CheckAgainstGolden(c.label, result->stats);
  }
}

TEST(GoldenStatsTest, MutatedFilterMatchesStaticKmeansGoldens) {
  const MutationTraceFixture fixture;
  MutableDataset dataset(fixture.base);
  auto filter_built = PimAssignFilter::Build(dataset.corpus(), EngineOptions());
  ASSERT_TRUE(filter_built.ok());
  std::unique_ptr<PimAssignFilter> filter = std::move(*filter_built);
  dataset.Attach(filter.get());
  fixture.Replay(&dataset);

  KmeansOptions options;
  options.k = 8;
  options.max_iterations = 3;
  options.seed = 123;
  options.use_pim = true;
  options.filter = filter.get();
  for (const KmeansGoldenCase& c : KmeansCases()) {
    // The shared filter's modeled compute time is cumulative across runs;
    // a fresh-built filter starts at zero, so match that baseline. The
    // mutation counters survive the reset (they are maintenance totals).
    filter->ResetOnlineStats();
    auto algorithm = c.make();
    auto result = algorithm->Run(dataset.corpus(), options);
    ASSERT_TRUE(result.ok()) << c.label;
    CheckAgainstGolden(c.label, result->stats);
  }
}

}  // namespace
}  // namespace pimine
