#include <memory>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/simhash.h"
#include "knn/fnn_knn.h"
#include "knn/fnn_pim_knn.h"
#include "knn/hamming_knn.h"
#include "knn/knn_common.h"
#include "knn/ost_knn.h"
#include "knn/ost_pim_knn.h"
#include "knn/sm_knn.h"
#include "knn/sm_pim_knn.h"
#include "knn/standard_knn.h"
#include "knn/standard_pim_knn.h"
#include "test_helpers.h"

namespace pimine {
namespace {

using testing_util::RandomUnitMatrix;

// Clustered data makes bounds meaningful; shared across tests.
struct Workload {
  FloatMatrix data;
  FloatMatrix queries;
};

Workload MakeWorkload(size_t n, size_t d, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "test";
  spec.dims = static_cast<int32_t>(d);
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 8;
  spec.cluster_std = 0.08;
  Workload w;
  w.data = DatasetGenerator::Generate(spec, static_cast<int64_t>(n), seed);
  w.queries = DatasetGenerator::GenerateQueries(spec, w.data, 6, seed + 1);
  return w;
}

void ExpectSameNeighbors(const KnnRunResult& expected,
                         const KnnRunResult& actual,
                         const std::string& label) {
  ASSERT_EQ(expected.neighbors.size(), actual.neighbors.size()) << label;
  for (size_t q = 0; q < expected.neighbors.size(); ++q) {
    ASSERT_EQ(expected.neighbors[q].size(), actual.neighbors[q].size())
        << label << " query " << q;
    for (size_t j = 0; j < expected.neighbors[q].size(); ++j) {
      EXPECT_EQ(expected.neighbors[q][j].id, actual.neighbors[q][j].id)
          << label << " query " << q << " rank " << j;
      EXPECT_NEAR(expected.neighbors[q][j].distance,
                  actual.neighbors[q][j].distance, 1e-9)
          << label << " query " << q << " rank " << j;
    }
  }
}

// The paper's headline accuracy claim: every algorithm — baseline or
// PIM-optimized — returns exactly the linear scan's results.
TEST(KnnEquivalenceTest, AllEuclideanAlgorithmsMatchStandard) {
  const Workload w = MakeWorkload(500, 64, 42);
  const int k = 10;

  StandardKnn standard;
  ASSERT_TRUE(standard.Prepare(w.data).ok());
  auto golden = standard.Search(w.queries, k);
  ASSERT_TRUE(golden.ok());

  std::vector<std::unique_ptr<KnnAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<SmKnn>());
  algorithms.push_back(std::make_unique<OstKnn>());
  algorithms.push_back(std::make_unique<FnnKnn>());
  algorithms.push_back(std::make_unique<StandardPimKnn>(
      Distance::kEuclidean, EngineOptions()));
  algorithms.push_back(std::make_unique<SmPimKnn>(EngineOptions()));
  algorithms.push_back(
      std::make_unique<OstPimKnn>(EngineOptions(), /*prefix_divisor=*/8));
  algorithms.push_back(
      std::make_unique<FnnPimKnn>(EngineOptions(), /*optimize=*/false));
  algorithms.push_back(
      std::make_unique<FnnPimKnn>(EngineOptions(), /*optimize=*/true));

  for (auto& algorithm : algorithms) {
    ASSERT_TRUE(algorithm->Prepare(w.data).ok())
        << algorithm->name();
    auto result = algorithm->Search(w.queries, k);
    ASSERT_TRUE(result.ok()) << algorithm->name() << ": "
                             << result.status().ToString();
    ExpectSameNeighbors(*golden, *result, std::string(algorithm->name()));
  }
}

struct KCase {
  int k;
};
class KnnKSweepTest : public ::testing::TestWithParam<KCase> {};

TEST_P(KnnKSweepTest, PimMatchesStandardAcrossK) {
  const Workload w = MakeWorkload(300, 40, 7);
  const int k = GetParam().k;

  StandardKnn standard;
  ASSERT_TRUE(standard.Prepare(w.data).ok());
  auto golden = standard.Search(w.queries, k);
  ASSERT_TRUE(golden.ok());

  StandardPimKnn pim(Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(pim.Prepare(w.data).ok());
  auto result = pim.Search(w.queries, k);
  ASSERT_TRUE(result.ok());
  ExpectSameNeighbors(*golden, *result, "k=" + std::to_string(k));
}

INSTANTIATE_TEST_SUITE_P(Sweep, KnnKSweepTest,
                         ::testing::Values(KCase{1}, KCase{2}, KCase{10},
                                           KCase{50}, KCase{100},
                                           KCase{300}));

class KnnSimilarityMeasureTest : public ::testing::TestWithParam<Distance> {};

TEST_P(KnnSimilarityMeasureTest, PimMatchesStandard) {
  const Distance distance = GetParam();
  const Workload w = MakeWorkload(250, 32, 11);

  StandardKnn standard(distance);
  ASSERT_TRUE(standard.Prepare(w.data).ok());
  auto golden = standard.Search(w.queries, 10);
  ASSERT_TRUE(golden.ok());

  StandardPimKnn pim(distance, EngineOptions());
  ASSERT_TRUE(pim.Prepare(w.data).ok());
  auto result = pim.Search(w.queries, 10);
  ASSERT_TRUE(result.ok());
  ExpectSameNeighbors(*golden, *result, std::string(DistanceName(distance)));
}

INSTANTIATE_TEST_SUITE_P(Measures, KnnSimilarityMeasureTest,
                         ::testing::Values(Distance::kEuclidean,
                                           Distance::kCosine,
                                           Distance::kPearson));

TEST(KnnPruningTest, BoundAlgorithmsComputeFewerExactDistances) {
  const Workload w = MakeWorkload(2000, 128, 21);
  StandardKnn standard;
  ASSERT_TRUE(standard.Prepare(w.data).ok());
  auto base = standard.Search(w.queries, 10);
  ASSERT_TRUE(base.ok());

  FnnKnn fnn;
  ASSERT_TRUE(fnn.Prepare(w.data).ok());
  auto accel = fnn.Search(w.queries, 10);
  ASSERT_TRUE(accel.ok());
  EXPECT_LT(accel->stats.exact_count, base->stats.exact_count / 2)
      << "FNN should prune most exact computations on clustered data";

  StandardPimKnn pim(Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(pim.Prepare(w.data).ok());
  auto pim_result = pim.Search(w.queries, 10);
  ASSERT_TRUE(pim_result.ok());
  EXPECT_LT(pim_result->stats.exact_count, base->stats.exact_count / 2);
  // The PIM variant moves drastically fewer bytes from memory.
  EXPECT_LT(pim_result->stats.traffic.bytes_from_memory,
            base->stats.traffic.bytes_from_memory / 4);
  EXPECT_GT(pim_result->stats.pim_ns, 0.0);
}

TEST(KnnErrorTest, InvalidUsage) {
  const Workload w = MakeWorkload(50, 16, 31);
  StandardKnn standard;
  // Search before Prepare.
  EXPECT_EQ(standard.Search(w.queries, 5).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(standard.Prepare(w.data).ok());
  // k out of range.
  EXPECT_FALSE(standard.Search(w.queries, 0).ok());
  EXPECT_FALSE(standard.Search(w.queries, 51).ok());
  // Dimensionality mismatch.
  const FloatMatrix wrong = RandomUnitMatrix(2, 8, 1);
  EXPECT_FALSE(standard.Search(wrong, 5).ok());
  // Empty dataset.
  EXPECT_FALSE(standard.Prepare(FloatMatrix()).ok());
}

TEST(KnnPlanTest, OptimizedPlanPrefersPimBound) {
  const Workload w = MakeWorkload(800, 256, 41);
  FnnPimKnn optimized(EngineOptions(), /*optimize=*/true);
  ASSERT_TRUE(optimized.Prepare(w.data).ok());
  // The PIM bound costs 3*b bits vs hundreds for original levels; with its
  // high measured pruning ratio the plan must select it.
  ASSERT_FALSE(optimized.plan().selected.empty());
  EXPECT_EQ(optimized.plan().selected[0], 0u);
  EXPECT_TRUE(optimized.candidates()[0].is_pim);
  EXPECT_GT(optimized.candidates()[0].pruning_ratio, 0.5);
}

TEST(HammingKnnTest, PimMatchesScan) {
  const FloatMatrix raw = RandomUnitMatrix(400, 64, 3);
  const SimHashEncoder encoder(64, 256, 5);
  const BitMatrix codes = encoder.Encode(raw);
  const FloatMatrix raw_queries = RandomUnitMatrix(5, 64, 4);
  const BitMatrix query_codes = encoder.Encode(raw_queries);

  HammingScanKnn scan;
  ASSERT_TRUE(scan.Prepare(codes).ok());
  auto golden = scan.Search(query_codes, 10);
  ASSERT_TRUE(golden.ok());

  HammingPimKnn pim;
  ASSERT_TRUE(pim.Prepare(codes).ok());
  auto result = pim.Search(query_codes, 10);
  ASSERT_TRUE(result.ok());
  ExpectSameNeighbors(*golden, *result, "hamming");
  EXPECT_GT(result->stats.pim_ns, 0.0);
}

TEST(HammingKnnTest, Validation) {
  HammingScanKnn scan;
  EXPECT_FALSE(scan.Prepare(BitMatrix()).ok());
  BitMatrix codes(10, 64);
  ASSERT_TRUE(scan.Prepare(codes).ok());
  BitMatrix wrong(1, 128);
  EXPECT_FALSE(scan.Search(wrong, 3).ok());
  EXPECT_FALSE(scan.Search(codes, 11).ok());
}

}  // namespace
}  // namespace pimine
