// Cross-algorithm property sweeps: the "accuracy is never compromised"
// guarantee must hold on every dataset profile, dimensionality and seed —
// not just the one workload knn_test pins down.

#include <memory>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "kmeans/drake.h"
#include "kmeans/elkan.h"
#include "kmeans/hamerly.h"
#include "kmeans/lloyd.h"
#include "kmeans/yinyang.h"
#include "knn/fnn_knn.h"
#include "knn/fnn_pim_knn.h"
#include "knn/ost_knn.h"
#include "knn/ost_pim_knn.h"
#include "knn/sm_knn.h"
#include "knn/sm_pim_knn.h"
#include "knn/standard_knn.h"
#include "knn/standard_pim_knn.h"

namespace pimine {
namespace {

struct SweepCase {
  ClusterProfile profile;
  int32_t dims;
  uint64_t seed;
};

FloatMatrix MakeData(const SweepCase& c, int64_t n) {
  DatasetSpec spec;
  spec.name = "sweep";
  spec.dims = c.dims;
  spec.profile = c.profile;
  spec.num_clusters = 6;
  spec.cluster_std = c.profile == ClusterProfile::kDiffuse ? 0.2 : 0.08;
  return DatasetGenerator::Generate(spec, n, c.seed);
}

class KnnProfileSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(KnnProfileSweepTest, EveryAlgorithmMatchesStandard) {
  const SweepCase c = GetParam();
  const FloatMatrix data = MakeData(c, 250);
  DatasetSpec spec;
  spec.dims = c.dims;
  spec.cluster_std = 0.08;
  const FloatMatrix queries =
      DatasetGenerator::GenerateQueries(spec, data, 3, c.seed + 1);

  StandardKnn standard;
  ASSERT_TRUE(standard.Prepare(data).ok());
  auto golden = standard.Search(queries, 7);
  ASSERT_TRUE(golden.ok());

  std::vector<std::unique_ptr<KnnAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<SmKnn>());
  algorithms.push_back(std::make_unique<OstKnn>());
  algorithms.push_back(std::make_unique<FnnKnn>());
  algorithms.push_back(std::make_unique<StandardPimKnn>(
      Distance::kEuclidean, EngineOptions()));
  algorithms.push_back(std::make_unique<SmPimKnn>(EngineOptions()));
  algorithms.push_back(std::make_unique<OstPimKnn>(EngineOptions()));
  algorithms.push_back(
      std::make_unique<FnnPimKnn>(EngineOptions(), /*optimize=*/true));

  for (auto& algorithm : algorithms) {
    ASSERT_TRUE(algorithm->Prepare(data).ok()) << algorithm->name();
    auto result = algorithm->Search(queries, 7);
    ASSERT_TRUE(result.ok()) << algorithm->name();
    for (size_t q = 0; q < golden->neighbors.size(); ++q) {
      for (size_t j = 0; j < golden->neighbors[q].size(); ++j) {
        ASSERT_EQ(result->neighbors[q][j].id, golden->neighbors[q][j].id)
            << algorithm->name() << " dims=" << c.dims
            << " profile=" << static_cast<int>(c.profile) << " q=" << q;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnProfileSweepTest,
    ::testing::Values(
        SweepCase{ClusterProfile::kClustered, 17, 1},
        SweepCase{ClusterProfile::kClustered, 64, 2},
        SweepCase{ClusterProfile::kClustered, 200, 3},
        SweepCase{ClusterProfile::kDiffuse, 64, 4},
        SweepCase{ClusterProfile::kDiffuse, 130, 5},
        SweepCase{ClusterProfile::kSparseCounts, 80, 6},
        SweepCase{ClusterProfile::kSparseCounts, 33, 7}));

class KmeansProfileSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(KmeansProfileSweepTest, AllFiveFamiliesFollowLloyd) {
  const SweepCase c = GetParam();
  const FloatMatrix data = MakeData(c, 300);
  KmeansOptions options;
  options.k = 12;
  options.max_iterations = 5;
  options.seed = c.seed * 31 + 7;

  LloydKmeans lloyd;
  auto golden = lloyd.Run(data, options);
  ASSERT_TRUE(golden.ok());

  std::vector<std::unique_ptr<KmeansAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<ElkanKmeans>());
  algorithms.push_back(std::make_unique<DrakeKmeans>());
  algorithms.push_back(std::make_unique<YinyangKmeans>());
  algorithms.push_back(std::make_unique<HamerlyKmeans>());

  for (bool use_pim : {false, true}) {
    KmeansOptions run_options = options;
    run_options.use_pim = use_pim;
    for (auto& algorithm : algorithms) {
      auto result = algorithm->Run(data, run_options);
      ASSERT_TRUE(result.ok()) << algorithm->name();
      ASSERT_EQ(result->assignments, golden->assignments)
          << algorithm->name() << (use_pim ? " (PIM)" : "")
          << " dims=" << c.dims;
      EXPECT_NEAR(result->inertia, golden->inertia, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KmeansProfileSweepTest,
    ::testing::Values(SweepCase{ClusterProfile::kClustered, 16, 11},
                      SweepCase{ClusterProfile::kClustered, 90, 12},
                      SweepCase{ClusterProfile::kDiffuse, 48, 13},
                      SweepCase{ClusterProfile::kSparseCounts, 60, 14}));

}  // namespace
}  // namespace pimine
