#include "core/pim_bounds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/decompose.h"
#include "core/quantize.h"
#include "core/segments.h"
#include "core/similarity.h"
#include "test_helpers.h"
#include "util/bits.h"
#include "util/random.h"

namespace pimine {
namespace {

using testing_util::RandomUnitVector;

// Helper: exact floor dot product of the quantized vectors.
uint64_t FloorDot(const std::vector<float>& p, const std::vector<float>& q,
                  const Quantizer& quant) {
  uint64_t acc = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    acc += static_cast<uint64_t>(quant.QuantizeValue(p[i])) *
           static_cast<uint64_t>(quant.QuantizeValue(q[i]));
  }
  return acc;
}

struct BoundCase {
  size_t dims;
  double alpha;
};

class PimEdBoundTest : public ::testing::TestWithParam<BoundCase> {};

// Theorem 1: LB_PIM-ED is a lower bound on squared ED, and the gap obeys
// the Theorem 3 error bound.
TEST_P(PimEdBoundTest, LowerBoundsSquaredEuclidean) {
  const auto [dims, alpha] = GetParam();
  const Quantizer quant(alpha);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const auto p = RandomUnitVector(dims, 1000 + seed);
    const auto q = RandomUnitVector(dims, 2000 + seed);
    const double exact = SquaredEuclidean(p, q);
    const double lb = LbPimEdCombine(quant.PhiEd(p), quant.PhiEd(q),
                                     FloorDot(p, q, quant),
                                     static_cast<int64_t>(dims), alpha);
    EXPECT_LE(lb, exact + 1e-9) << "dims=" << dims << " alpha=" << alpha;
    EXPECT_LE(exact - lb, LbPimEdErrorBound(dims, alpha) + 1e-9);
  }
}

// Identical vectors: exact distance 0, bound must be <= 0 but within error.
TEST_P(PimEdBoundTest, IdenticalVectors) {
  const auto [dims, alpha] = GetParam();
  const Quantizer quant(alpha);
  const auto p = RandomUnitVector(dims, 7);
  const double lb = LbPimEdCombine(quant.PhiEd(p), quant.PhiEd(p),
                                   FloorDot(p, p, quant),
                                   static_cast<int64_t>(dims), alpha);
  EXPECT_LE(lb, 1e-9);
  EXPECT_GE(lb, -LbPimEdErrorBound(dims, alpha) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PimEdBoundTest,
    ::testing::Values(BoundCase{1, 1e6}, BoundCase{8, 1e6},
                      BoundCase{128, 1e6}, BoundCase{420, 1e6},
                      BoundCase{960, 1e6}, BoundCase{128, 1e3},
                      BoundCase{128, 1e4}, BoundCase{128, 1e7},
                      BoundCase{37, 1e5}, BoundCase{4096, 1e6}));

struct SegmentCase {
  size_t dims;
  int64_t segments;
  double alpha;
};

class PimFnnBoundTest : public ::testing::TestWithParam<SegmentCase> {};

// Theorem 2: LB_PIM-FNN lower-bounds squared ED through segment stats.
TEST_P(PimFnnBoundTest, LowerBoundsSquaredEuclidean) {
  const auto [dims, segments, alpha] = GetParam();
  const Quantizer quant(alpha);
  const int64_t l = SegmentLength(static_cast<int64_t>(dims), segments);
  std::vector<float> p_means(segments), p_stds(segments);
  std::vector<float> q_means(segments), q_stds(segments);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const auto p = RandomUnitVector(dims, 3000 + seed);
    const auto q = RandomUnitVector(dims, 4000 + seed);
    ComputeSegments(p, segments, p_means, p_stds);
    ComputeSegments(q, segments, q_means, q_stds);

    uint64_t mean_dot = 0;
    uint64_t std_dot = 0;
    for (int64_t s = 0; s < segments; ++s) {
      mean_dot += static_cast<uint64_t>(quant.QuantizeValue(p_means[s])) *
                  static_cast<uint64_t>(quant.QuantizeValue(q_means[s]));
      std_dot += static_cast<uint64_t>(quant.QuantizeValue(p_stds[s])) *
                 static_cast<uint64_t>(quant.QuantizeValue(q_stds[s]));
    }
    const double exact = SquaredEuclidean(p, q);
    const double lb_fnn =
        LbPimFnnCombine(quant.PhiFnn(p_means, p_stds),
                        quant.PhiFnn(q_means, q_stds), mean_dot, std_dot,
                        segments, l, alpha);
    EXPECT_LE(lb_fnn, exact + 1e-9)
        << "dims=" << dims << " segments=" << segments;

    const double lb_sm =
        LbPimSmCombine(quant.PhiSm(p_means), quant.PhiSm(q_means), mean_dot,
                       segments, l, alpha);
    EXPECT_LE(lb_sm, exact + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PimFnnBoundTest,
    ::testing::Values(SegmentCase{64, 4, 1e6}, SegmentCase{64, 16, 1e6},
                      SegmentCase{420, 105, 1e6}, SegmentCase{420, 7, 1e6},
                      SegmentCase{100, 3, 1e6},  // uneven tail segment.
                      SegmentCase{960, 60, 1e5}, SegmentCase{8, 8, 1e6},
                      SegmentCase{33, 5, 1e4}));

// Upper bound on the dot product, and through it CS and PCC.
TEST(PimDotUpperBoundTest, BoundsDotCosinePearson) {
  const double alpha = 1e6;
  const Quantizer quant(alpha);
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const size_t dims = 16 + (seed % 5) * 77;
    const auto p = RandomUnitVector(dims, 5000 + seed);
    const auto q = RandomUnitVector(dims, 6000 + seed);

    const double exact_dot = DotProduct(p, q);
    const double ub_dot =
        UbPimDotCombine(FloorDot(p, q, quant), quant.SumFloors(p),
                        quant.SumFloors(q), static_cast<int64_t>(dims), alpha);
    EXPECT_GE(ub_dot, exact_dot - 1e-9);

    const double cs = CosineSimilarity(p, q);
    const double ub_cs = UbPimCosine(ub_dot, CsDecomposition::Phi(p),
                                     CsDecomposition::Phi(q));
    EXPECT_GE(ub_cs, cs - 1e-9);

    const double pcc = PearsonCorrelation(p, q);
    const auto phi_p = PccDecomposition::ComputePhi(p);
    const auto phi_q = PccDecomposition::ComputePhi(q);
    const double ub_pcc =
        UbPimPearson(ub_dot, static_cast<int64_t>(dims), phi_p.b, phi_q.b,
                     phi_p.a, phi_q.a);
    EXPECT_GE(ub_pcc, pcc - 1e-9);
  }
}

// HD combine reproduces the XOR popcount distance exactly.
TEST(HdPimCombineTest, MatchesXorPopcount) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int64_t d = 1 + static_cast<int64_t>(rng.NextBounded(200));
    uint32_t code_dot = 0;
    uint32_t comp_dot = 0;
    int64_t xor_distance = 0;
    for (int64_t i = 0; i < d; ++i) {
      const bool a = rng.NextBool();
      const bool b = rng.NextBool();
      code_dot += (a && b) ? 1 : 0;
      comp_dot += (!a && !b) ? 1 : 0;
      xor_distance += (a != b) ? 1 : 0;
    }
    EXPECT_EQ(HdPimCombine(code_dot, comp_dot, d), xor_distance);
  }
}

// The Theorem 3 error bound shrinks as alpha grows.
TEST(ErrorBoundTest, InverselyProportionalToAlpha) {
  EXPECT_GT(LbPimEdErrorBound(128, 1e3), LbPimEdErrorBound(128, 1e4));
  EXPECT_GT(LbPimEdErrorBound(128, 1e4), LbPimEdErrorBound(128, 1e6));
  EXPECT_NEAR(LbPimEdErrorBound(100, 1e6), 4.0 * 100 / 1e6 + 2.0 * 100 / 1e12,
              1e-15);
}

}  // namespace
}  // namespace pimine
