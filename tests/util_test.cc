#include <atomic>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/top_k.h"

namespace pimine {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    EXPECT_LT(rng.NextBounded(1), 1u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(4);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 10.0};
  double sum = 0.0;
  for (double v : values) {
    stats.AddWithRange(v);
    sum += v;
  }
  const double mean = sum / values.size();
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= values.size();
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 10.0);
  EXPECT_EQ(stats.count(), 5u);
}

TEST(StatsTest, MeanStdOfSpan) {
  const std::vector<float> v = {1.0f, 3.0f};
  EXPECT_DOUBLE_EQ(Mean(v), 2.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 1.0);
  const auto ms = ComputeMeanStd(v);
  EXPECT_DOUBLE_EQ(ms.mean, 2.0);
  EXPECT_DOUBLE_EQ(ms.stddev, 1.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<float>{}), 0.0);
}

TEST(BitsTest, Helpers) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(~0ULL), 64);
  EXPECT_EQ(CeilDiv(7, 2), 4u);
  EXPECT_EQ(CeilDiv(8, 2), 4u);
  EXPECT_EQ(NumSlices(6, 2), 3);
  EXPECT_EQ(NumSlices(32, 2), 16);
  EXPECT_EQ(NumSlices(1, 2), 1);
  EXPECT_EQ(ExtractSlice(0b011001, 0, 2), 0b01u);
  EXPECT_EQ(ExtractSlice(0b011001, 1, 2), 0b10u);
  EXPECT_EQ(ExtractSlice(0b011001, 2, 2), 0b01u);
  EXPECT_TRUE(IsPowerOfTwo(256));
  EXPECT_FALSE(IsPowerOfTwo(255));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(255), 7);
  EXPECT_EQ(FloorLog2(256), 8);
}

TEST(TopKTest, KeepsSmallest) {
  TopK topk(3);
  EXPECT_EQ(topk.threshold(), HUGE_VAL);
  topk.Push(5.0, 0);
  topk.Push(1.0, 1);
  topk.Push(3.0, 2);
  EXPECT_TRUE(topk.full());
  EXPECT_DOUBLE_EQ(topk.threshold(), 5.0);
  topk.Push(2.0, 3);  // evicts 5.0.
  EXPECT_DOUBLE_EQ(topk.threshold(), 3.0);
  topk.Push(9.0, 4);  // ignored.
  const auto sorted = topk.TakeSorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 1);
  EXPECT_EQ(sorted[1].id, 3);
  EXPECT_EQ(sorted[2].id, 2);
}

TEST(TopKTest, TieBreaksById) {
  TopK topk(2);
  topk.Push(1.0, 5);
  topk.Push(1.0, 2);
  topk.Push(1.0, 9);  // tie with threshold: not inserted (strict <).
  const auto sorted = topk.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].id, 2);
  EXPECT_EQ(sorted[1].id, 5);
}

TEST(TopKTest, KOne) {
  TopK topk(1);
  topk.Push(4.0, 1);
  topk.Push(2.0, 2);
  topk.Push(3.0, 3);
  const auto sorted = topk.TakeSorted();
  ASSERT_EQ(sorted.size(), 1u);
  EXPECT_EQ(sorted[0].id, 2);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter(0);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  ParallelFor(pool, 50, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GT(t.ElapsedNanos(), 0);
  EXPECT_GE(t.ElapsedMillis(), 0.0);
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace pimine
