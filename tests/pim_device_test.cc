#include "pim/pim_device.h"

#include <gtest/gtest.h>

#include "pim/buffer_array.h"
#include "pim/timing.h"
#include "util/random.h"

namespace pimine {
namespace {

IntMatrix RandomIntMatrix(size_t rows, size_t cols, uint32_t limit,
                          uint64_t seed) {
  IntMatrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (int32_t& v : m.mutable_row(i)) {
      v = static_cast<int32_t>(rng.NextBounded(limit));
    }
  }
  return m;
}

TEST(PimDeviceTest, DotProductsMatchIntegerMath) {
  PimDevice device;
  const IntMatrix data = RandomIntMatrix(50, 37, 1 << 20, 1);
  ASSERT_TRUE(device.ProgramDataset(data).ok());

  Rng rng(2);
  std::vector<int32_t> query(37);
  for (auto& v : query) v = static_cast<int32_t>(rng.NextBounded(1 << 20));

  std::vector<uint64_t> out;
  ASSERT_TRUE(device.DotProductAll(query, &out).ok());
  ASSERT_EQ(out.size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    uint64_t expected = 0;
    for (size_t j = 0; j < 37; ++j) {
      expected += static_cast<uint64_t>(data(i, j)) *
                  static_cast<uint64_t>(query[j]);
    }
    EXPECT_EQ(out[i], expected);
  }
}

TEST(PimDeviceTest, RejectsBadPrograms) {
  PimDevice device;
  EXPECT_FALSE(device.ProgramDataset(IntMatrix()).ok());

  IntMatrix negative(2, 2);
  negative(0, 0) = -1;
  EXPECT_FALSE(device.ProgramDataset(negative).ok());

  IntMatrix too_wide(1, 1);
  too_wide(0, 0) = 256;
  EXPECT_FALSE(device.ProgramDataset(too_wide, /*operand_bits=*/8).ok());
}

TEST(PimDeviceTest, RejectsOversizedDataset) {
  PimConfig config;
  config.num_crossbars = 1;
  PimDevice device(config);
  // 1000 vectors x 256 dims x 16 cells ≫ one 256x256 crossbar.
  const IntMatrix data = RandomIntMatrix(1000, 256, 100, 3);
  const Status status = device.ProgramDataset(data);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCapacityExceeded);
}

TEST(PimDeviceTest, QueryValidation) {
  PimDevice device;
  std::vector<uint64_t> out;
  // Not programmed.
  EXPECT_EQ(device.DotProductAll(std::vector<int32_t>{1}, &out).code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(device.ProgramDataset(RandomIntMatrix(4, 8, 10, 4)).ok());
  // Wrong dimensionality.
  EXPECT_FALSE(device.DotProductAll(std::vector<int32_t>(7, 1), &out).ok());
  // Negative input.
  std::vector<int32_t> bad(8, 1);
  bad[3] = -2;
  EXPECT_FALSE(device.DotProductAll(bad, &out).ok());
}

TEST(PimDeviceTest, StatsAccumulate) {
  PimDevice device;
  const IntMatrix data = RandomIntMatrix(100, 64, 1000, 5);
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  EXPECT_EQ(device.stats().programmed_vectors, 100);
  EXPECT_EQ(device.stats().programmed_dims, 64);
  EXPECT_GT(device.stats().data_crossbars, 0);
  EXPECT_EQ(device.stats().gather_crossbars, 0);  // 64 <= 256.
  EXPECT_GT(device.stats().program_ns, 0.0);

  std::vector<uint64_t> out;
  const std::vector<int32_t> query(64, 1);
  ASSERT_TRUE(device.DotProductAll(query, &out).ok());
  ASSERT_TRUE(device.DotProductAll(query, &out).ok());
  EXPECT_EQ(device.stats().batch_ops, 2u);
  EXPECT_EQ(device.stats().results_produced, 200u);
  EXPECT_EQ(device.stats().result_bytes_to_host, 200u * sizeof(uint64_t));
  EXPECT_GT(device.stats().compute_ns, 0.0);

  device.ResetOnlineStats();
  EXPECT_EQ(device.stats().batch_ops, 0u);
  EXPECT_GT(device.stats().program_ns, 0.0);  // offline stats retained.
}

TEST(PimDeviceTest, EnduranceTracksReprogramming) {
  PimDevice device;
  const IntMatrix data = RandomIntMatrix(10, 8, 10, 6);
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  const double after_one = device.EnduranceRemainingFraction();
  ASSERT_TRUE(device.ReprogramDataset(data).ok());
  EXPECT_LT(device.EnduranceRemainingFraction(), after_one);
  EXPECT_GT(device.EnduranceRemainingFraction(), 0.999);
}

TEST(PimDeviceTest, ProgramDatasetRefusesSilentOverwrite) {
  // Reprogramming must be explicit (ReprogramDataset): a second
  // ProgramDataset call is a caller bug, not a free rewrite.
  PimDevice device;
  const IntMatrix data = RandomIntMatrix(10, 8, 10, 6);
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  EXPECT_EQ(device.ProgramDataset(data).code(), StatusCode::kInvalidArgument);
}

TEST(PimDeviceTest, AuxStorageCapacity) {
  PimConfig config;
  config.memory_array_bytes = 1000;
  PimDevice device(config);
  EXPECT_TRUE(device.StoreAux(600).ok());
  EXPECT_TRUE(device.StoreAux(400).ok());
  EXPECT_EQ(device.StoreAux(1).code(), StatusCode::kCapacityExceeded);
}

TEST(PimDeviceTest, WraparoundImplementsTruncation) {
  // Values large enough that the 64-bit accumulator wraps: the device must
  // return the least-significant 64 bits (the paper's overflow rule).
  PimConfig config;
  config.operand_bits = 32;
  PimDevice device(config);
  IntMatrix data(1, 8);
  for (int32_t& v : data.mutable_row(0)) v = (1 << 30);
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  std::vector<int32_t> query(8, 1 << 30);
  std::vector<uint64_t> out;
  ASSERT_TRUE(device.DotProductAll(query, &out).ok());
  // 8 * 2^60 = 2^63 -- still fits; now force a wrap with more dims.
  IntMatrix data2(1, 32);
  for (int32_t& v : data2.mutable_row(0)) v = (1 << 30);
  PimDevice device2(config);
  ASSERT_TRUE(device2.ProgramDataset(data2).ok());
  std::vector<int32_t> query2(32, 1 << 30);
  ASSERT_TRUE(device2.DotProductAll(query2, &out).ok());
  // 32 * 2^60 = 2^65 -> LS-64 truncation keeps 2^65 mod 2^64 = 0? No:
  // 32 * 2^60 = 2^5 * 2^60 = 2^65, mod 2^64 = 0.
  EXPECT_EQ(out[0], 0u);
}

TEST(BufferArrayTest, TracksOccupancyAndForcedDrains) {
  BufferArray buffer(100);
  buffer.Deposit(60);
  EXPECT_EQ(buffer.occupied_bytes(), 60u);
  EXPECT_EQ(buffer.forced_drains(), 0u);
  buffer.Deposit(60);  // exceeds capacity -> one forced drain.
  EXPECT_EQ(buffer.forced_drains(), 1u);
  EXPECT_LE(buffer.occupied_bytes(), 100u);
  buffer.Drain(1000);
  EXPECT_EQ(buffer.occupied_bytes(), 0u);
  EXPECT_EQ(buffer.total_deposited_bytes(), 120u);
  buffer.Reset();
  EXPECT_EQ(buffer.total_deposited_bytes(), 0u);
}

TEST(PimTimingTest, LatencyScalesWithGatherDepthAndBits) {
  PimConfig config;
  PimTimingModel timing(config);
  // 32-bit input on a 2-bit DAC: 16 cycles.
  EXPECT_EQ(timing.InputCycles(32), 16);
  EXPECT_EQ(timing.InputCycles(1), 1);
  // Deeper gather tree -> strictly more latency.
  EXPECT_LT(timing.BatchDotLatencyNs(256, 32),
            timing.BatchDotLatencyNs(257, 32));
  // Wider input -> more latency.
  EXPECT_LT(timing.BatchDotLatencyNs(256, 8),
            timing.BatchDotLatencyNs(256, 32));
  EXPECT_GT(timing.ProgramLatencyNs(10), 0.0);
}

}  // namespace
}  // namespace pimine
