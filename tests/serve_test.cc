// Tests of the online serving layer (src/serve): virtual-clock replay
// determinism across scheduler thread counts / batch knobs / shard counts,
// equivalence with the offline batch path, weighted fairness, queue
// backpressure, deadline accounting, and a live-mode concurrency smoke
// (run under TSan in CI).

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "knn/standard_pim_knn.h"
#include "serve/admission_queue.h"
#include "serve/serve_options.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "test_helpers.h"

namespace pimine {
namespace serve {
namespace {

using testing_util::RandomUnitMatrix;

constexpr size_t kObjects = 220;
constexpr size_t kDims = 24;
constexpr size_t kQueries = 40;
constexpr int kK = 5;

const FloatMatrix& Data() {
  static const FloatMatrix* data =
      new FloatMatrix(RandomUnitMatrix(kObjects, kDims, 7));
  return *data;
}

const FloatMatrix& Queries() {
  static const FloatMatrix* queries =
      new FloatMatrix(RandomUnitMatrix(kQueries, kDims, 11));
  return *queries;
}

EngineOptions SmallEngine(int shards = 1) {
  EngineOptions options;
  options.pim_config.num_crossbars = 4096;
  options.shard.shards = shards;
  return options;
}

ServeOptions BaseServe() {
  ServeOptions options;
  options.max_batch = 8;
  options.max_wait_ns = 2000;
  options.queue_capacity = 4096;
  options.k = kK;
  options.exec.device_batch = 4;
  return options;
}

ArrivalTrace TestTrace(size_t requests, uint32_t tenants, double qps) {
  WorkloadSpec spec;
  spec.num_requests = requests;
  spec.offered_qps = qps;
  spec.tenant_share.assign(tenants, 1.0);
  spec.num_query_rows = kQueries;
  spec.seed = 99;
  auto trace = GeneratePoissonTrace(spec);
  EXPECT_TRUE(trace.ok()) << trace.status().ToString();
  return *trace;
}

ReplayOutput MustReplay(const ServeOptions& serve_options,
                        const ArrivalTrace& trace, int shards = 1) {
  auto server = PimServer::Build(Data(), Distance::kEuclidean,
                                 SmallEngine(shards), serve_options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  auto output = (*server)->Replay(trace, Queries());
  EXPECT_TRUE(output.ok()) << output.status().ToString();
  return std::move(*output);
}

void ExpectSameNeighbors(const ReplayOutput& a, const ReplayOutput& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].neighbors, b.results[i].neighbors)
        << "query " << i;
  }
}

// --- Workload generator ----------------------------------------------------

TEST(WorkloadTest, PoissonTraceIsDeterministicAndSorted) {
  WorkloadSpec spec;
  spec.num_requests = 200;
  spec.offered_qps = 1e6;
  spec.tenant_share = {3.0, 1.0};
  spec.num_query_rows = 16;
  spec.seed = 5;
  auto a = GeneratePoissonTrace(spec);
  auto b = GeneratePoissonTrace(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->events.size(), 200u);
  size_t tenant0 = 0;
  for (size_t i = 0; i < a->events.size(); ++i) {
    EXPECT_EQ(a->events[i].arrival_ns, b->events[i].arrival_ns);
    EXPECT_EQ(a->events[i].tenant, b->events[i].tenant);
    EXPECT_EQ(a->events[i].query_row, b->events[i].query_row);
    if (i > 0) {
      EXPECT_GE(a->events[i].arrival_ns, a->events[i - 1].arrival_ns);
    }
    EXPECT_LT(a->events[i].query_row, 16u);
    EXPECT_LT(a->events[i].tenant, 2u);
    tenant0 += a->events[i].tenant == 0 ? 1 : 0;
  }
  // 3:1 offered share — loose band, exact values pinned by the seed.
  EXPECT_GT(tenant0, 120u);
  EXPECT_LT(tenant0, 180u);
}

TEST(WorkloadTest, RejectsDegenerateSpecs) {
  WorkloadSpec spec;
  spec.num_requests = 0;
  EXPECT_FALSE(GeneratePoissonTrace(spec).ok());
  spec.num_requests = 1;
  spec.offered_qps = 0.0;
  EXPECT_FALSE(GeneratePoissonTrace(spec).ok());
  spec.offered_qps = 1e6;
  spec.tenant_share = {1.0, 0.0};
  EXPECT_FALSE(GeneratePoissonTrace(spec).ok());
}

// --- Admission queue -------------------------------------------------------

TEST(AdmissionQueueTest, WeightedStridePicksHonorWeights) {
  ServeOptions options = BaseServe();
  options.max_batch = 6;
  options.tenants = {{"gold", 2}, {"free", 1}};
  AdmissionQueue queue(options);
  // Both tenants fully backlogged (4 queries each): 6 picks should split
  // 4:2 (stride scheduling at weights 2:1, ties to the smaller tenant id).
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.Admit(i, i < 4 ? 0 : 1, 0).ok());
  }
  std::vector<PendingQuery> batch;
  queue.FormBatch(&batch);
  ASSERT_EQ(batch.size(), 6u);
  size_t gold = 0;
  for (const PendingQuery& q : batch) gold += q.tenant == 0 ? 1 : 0;
  EXPECT_EQ(gold, 4u);
  // Within a tenant, strict FIFO.
  uint64_t last_gold = 0, last_free = 0;
  for (const PendingQuery& q : batch) {
    uint64_t& last = q.tenant == 0 ? last_gold : last_free;
    EXPECT_GE(q.id, last);
    last = q.id;
  }
}

TEST(AdmissionQueueTest, IdleTenantBanksNoCredit) {
  ServeOptions options = BaseServe();
  options.max_batch = 2;
  options.tenants = {{"a", 1}, {"b", 1}};
  AdmissionQueue queue(options);
  // Tenant a is served alone for a while; b then shows up and must NOT get
  // an unbounded run of picks for its idle period.
  for (uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(queue.Admit(i, 0, 0).ok());
  std::vector<PendingQuery> batch;
  for (int i = 0; i < 4; ++i) queue.FormBatch(&batch);
  ASSERT_TRUE(queue.empty());
  for (uint64_t i = 8; i < 12; ++i) {
    ASSERT_TRUE(queue.Admit(i, i % 2, 1).ok());
  }
  queue.FormBatch(&batch);
  size_t b_picks = 0;
  for (const PendingQuery& q : batch) b_picks += q.tenant == 1 ? 1 : 0;
  EXPECT_EQ(b_picks, 1u) << "re-activated tenant got a banked burst";
}

TEST(AdmissionQueueTest, CapacityRejectsWithClearStatus) {
  ServeOptions options = BaseServe();
  options.queue_capacity = 3;
  AdmissionQueue queue(options);
  for (uint64_t i = 0; i < 3; ++i) ASSERT_TRUE(queue.Admit(i, 0, 0).ok());
  const Status status = queue.Admit(3, 0, 0);
  EXPECT_EQ(status.code(), StatusCode::kCapacityExceeded);
  EXPECT_NE(status.message().find("3/3"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(queue.pending(), 3u);
}

// --- Replay determinism ----------------------------------------------------

TEST(ServeReplayTest, BitIdenticalAcrossSchedulerThreadsAndShards) {
  const ArrivalTrace trace = TestTrace(96, 2, 5e6);
  ServeOptions base = BaseServe();
  base.tenants = {{"gold", 3}, {"free", 1}};
  base.scheduler_threads = 1;
  const ReplayOutput baseline = MustReplay(base, trace, /*shards=*/1);
  ASSERT_EQ(baseline.stats.served, 96u);

  for (int threads : {2, 4}) {
    for (int shards : {1, 4}) {
      ServeOptions options = base;
      options.scheduler_threads = threads;
      const ReplayOutput run = MustReplay(options, trace, shards);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      // Functional results: bit-identical.
      ExpectSameNeighbors(baseline, run);
      // Batch formation is virtual-clock only: every scheduling stat is a
      // pure function of (trace, knobs) — thread and shard independent.
      for (size_t i = 0; i < run.results.size(); ++i) {
        EXPECT_EQ(run.results[i].dispatch_ns, baseline.results[i].dispatch_ns);
        EXPECT_EQ(run.results[i].completion_ns,
                  baseline.results[i].completion_ns);
        EXPECT_EQ(run.results[i].batch_id, baseline.results[i].batch_id);
      }
      EXPECT_EQ(run.stats.batches, baseline.stats.batches);
      EXPECT_EQ(run.stats.makespan_ns, baseline.stats.makespan_ns);
      EXPECT_EQ(run.stats.max_queue_depth, baseline.stats.max_queue_depth);
      EXPECT_TRUE(run.stats.wait_hist == baseline.stats.wait_hist);
      EXPECT_TRUE(run.stats.latency_hist == baseline.stats.latency_hist);
      EXPECT_TRUE(run.stats.occupancy_hist == baseline.stats.occupancy_hist);
      EXPECT_EQ(run.stats.pipelined_ns, baseline.stats.pipelined_ns);
      // Execution accounting: traffic / modeled pim_ns / work counts are
      // bit-identical for every thread count and shard count (DESIGN.md
      // determinism contract, extended to the serving layer).
      EXPECT_TRUE(run.stats.exec.traffic == baseline.stats.exec.traffic)
          << run.stats.exec.traffic.ToString() << " vs "
          << baseline.stats.exec.traffic.ToString();
      EXPECT_EQ(run.stats.exec.pim_ns, baseline.stats.exec.pim_ns);
      EXPECT_EQ(run.stats.exec.exact_count, baseline.stats.exec.exact_count);
      EXPECT_EQ(run.stats.exec.bound_count, baseline.stats.exec.bound_count);
    }
  }
}

TEST(ServeReplayTest, ResultsInvariantUnderBatchingKnobs) {
  const ArrivalTrace trace = TestTrace(64, 1, 3e6);
  ServeOptions base = BaseServe();
  const ReplayOutput baseline = MustReplay(base, trace);
  for (size_t max_batch : {1u, 3u, 16u}) {
    for (size_t device_batch : {1u, 8u}) {
      ServeOptions options = base;
      options.max_batch = max_batch;
      options.exec.device_batch = device_batch;
      const ReplayOutput run = MustReplay(options, trace);
      SCOPED_TRACE("max_batch=" + std::to_string(max_batch) +
                   " device_batch=" + std::to_string(device_batch));
      // Batch composition can never change any query's answer — nor the
      // grouping-invariant counters.
      ExpectSameNeighbors(baseline, run);
      EXPECT_TRUE(run.stats.exec.traffic == baseline.stats.exec.traffic);
      EXPECT_EQ(run.stats.exec.pim_ns, baseline.stats.exec.pim_ns);
      EXPECT_EQ(run.stats.exec.exact_count, baseline.stats.exec.exact_count);
    }
  }
}

// --- Equivalence with the offline path -------------------------------------

TEST(ServeReplayTest, AllAtZeroTraceMatchesOfflineBatchRun) {
  // Every query arrives at t=0 from one tenant: FIFO forms batches of
  // exactly max_batch in row order — the same partition the offline
  // RunQueryBatchesWithPolicy harness uses for device_batch = max_batch.
  constexpr size_t kBatch = 8;
  ServeOptions options = BaseServe();
  options.max_batch = kBatch;
  options.exec.device_batch = kBatch;
  options.max_wait_ns = 0;
  const ArrivalTrace trace = AllAtZeroTrace(kQueries, 1, kQueries);
  const ReplayOutput served = MustReplay(options, trace);

  StandardPimKnn offline(Distance::kEuclidean, SmallEngine());
  ExecPolicy offline_policy;
  offline_policy.device_batch = kBatch;
  offline.set_exec_policy(offline_policy);
  ASSERT_TRUE(offline.Prepare(Data()).ok());
  auto offline_result = offline.Search(Queries(), kK);
  ASSERT_TRUE(offline_result.ok()) << offline_result.status().ToString();

  ASSERT_EQ(served.results.size(), kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    EXPECT_EQ(served.results[i].neighbors, offline_result->neighbors[i])
        << "query " << i;
  }
  EXPECT_TRUE(served.stats.exec.traffic == offline_result->stats.traffic)
      << served.stats.exec.traffic.ToString() << " vs "
      << offline_result->stats.traffic.ToString();
  EXPECT_EQ(served.stats.exec.pim_ns, offline_result->stats.pim_ns);
  EXPECT_EQ(served.stats.exec.exact_count, offline_result->stats.exact_count);
  EXPECT_EQ(served.stats.exec.bound_count, offline_result->stats.bound_count);
}

// --- Greedy dispatch / Q=1 fast path ---------------------------------------

TEST(ServeReplayTest, GreedyZeroWaitServesSingletonsMatchingDirectRunQuery) {
  // max_wait = 0 with widely-spaced arrivals: the scheduler must never
  // hold a query while the device is free, so every dispatch is Q = 1 and
  // its modeled stats must equal the direct per-query RunQuery path.
  ServeOptions options = BaseServe();
  options.max_wait_ns = 0;
  ArrivalTrace trace;
  for (uint32_t i = 0; i < 24; ++i) {
    // Gaps far above the modeled service time, so the device is idle at
    // every arrival.
    trace.events.push_back(ArrivalEvent{
        i * 10000000ull, 0, static_cast<uint32_t>(i % kQueries)});
  }
  const ReplayOutput served = MustReplay(options, trace);
  ASSERT_EQ(served.stats.served, 24u);
  EXPECT_EQ(served.stats.batches, 24u) << "greedy dispatch held queries back";
  EXPECT_EQ(served.stats.occupancy_hist.max_ticks(), 1u);
  // Zero queueing: every query dispatches the instant it arrives.
  EXPECT_EQ(served.stats.wait_hist.max_ticks(), 0u);
  // Q = 1 pipelined occupancy is bit-identical to the serial per-query
  // model (stage_ns * stages each), so the totals must match exactly.
  EXPECT_DOUBLE_EQ(served.stats.pipelined_ns, served.stats.exec.pim_ns);

  // Direct single-query path over the same engine geometry.
  auto engine = PimEngine::Build(Data(), Distance::kEuclidean, SmallEngine());
  ASSERT_TRUE(engine.ok());
  for (uint32_t i = 0; i < 24; ++i) {
    auto handle = (*engine)->RunQuery(Queries().row(i % kQueries));
    ASSERT_TRUE(handle.ok());
  }
  EXPECT_EQ(served.stats.exec.pim_ns, (*engine)->PimComputeNs());
  EXPECT_EQ(served.stats.pipelined_ns, (*engine)->PimPipelinedNs());
}

// --- Fairness --------------------------------------------------------------

TEST(ServeReplayTest, WeightedFairnessProtectsHighPriorityTenant) {
  // "free" offers 4x the traffic of "gold" but gold holds weight 4: under
  // saturation gold's queries ride earlier batches, so its latency
  // distribution must sit strictly below free's.
  WorkloadSpec spec;
  spec.num_requests = 160;
  spec.offered_qps = 2e7;  // far above the modeled service rate.
  spec.tenant_share = {1.0, 4.0};
  spec.num_query_rows = kQueries;
  spec.seed = 3;
  auto trace = GeneratePoissonTrace(spec);
  ASSERT_TRUE(trace.ok());

  ServeOptions options = BaseServe();
  options.tenants = {{"gold", 4}, {"free", 1}};
  options.max_batch = 4;
  const ReplayOutput out = MustReplay(options, *trace);
  ASSERT_EQ(out.stats.rejected, 0u);
  const TenantServeStats& gold = out.stats.tenants[0];
  const TenantServeStats& free_tier = out.stats.tenants[1];
  ASSERT_GT(gold.served, 0u);
  ASSERT_GT(free_tier.served, 0u);
  EXPECT_LT(gold.latency.QuantileUpperBound(0.5),
            free_tier.latency.QuantileUpperBound(0.5))
      << "gold " << gold.latency.Summary() << " vs free "
      << free_tier.latency.Summary();
  EXPECT_LE(gold.latency.max_ticks(), free_tier.latency.max_ticks());
}

// --- Backpressure ----------------------------------------------------------

TEST(ServeReplayTest, QueueFullRejectsWithCapacityExceeded) {
  ServeOptions options = BaseServe();
  options.queue_capacity = 6;
  options.max_batch = 4;
  const ArrivalTrace trace = AllAtZeroTrace(20, 1, kQueries);
  const ReplayOutput out = MustReplay(options, trace);
  // All 20 arrive at t=0: 6 fill the queue, 14 bounce with an explicit
  // status — nothing is silently dropped.
  EXPECT_EQ(out.stats.submitted, 20u);
  EXPECT_EQ(out.stats.served, 6u);
  EXPECT_EQ(out.stats.rejected, 14u);
  EXPECT_EQ(out.stats.max_queue_depth, 6u);
  for (size_t i = 0; i < out.results.size(); ++i) {
    if (i < 6) {
      EXPECT_TRUE(out.results[i].status.ok());
      EXPECT_EQ(out.results[i].neighbors.size(), static_cast<size_t>(kK));
    } else {
      EXPECT_EQ(out.results[i].status.code(), StatusCode::kCapacityExceeded);
      EXPECT_TRUE(out.results[i].neighbors.empty());
    }
  }
}

// --- Deadlines -------------------------------------------------------------

TEST(ServeReplayTest, DeadlineMissesAreCounted) {
  ServeOptions options = BaseServe();
  options.max_batch = 16;
  options.max_wait_ns = 1000000;  // 1 ms hold for companions.
  options.deadline_ns = 1000;     // 1 us SLO: the hold alone blows it.
  const ArrivalTrace trace = AllAtZeroTrace(8, 1, kQueries);
  const ReplayOutput out = MustReplay(options, trace);
  ASSERT_EQ(out.stats.served, 8u);
  EXPECT_EQ(out.stats.deadline_misses, 8u);
  EXPECT_EQ(out.stats.tenants[0].deadline_misses, 8u);
  for (const ServedResult& r : out.results) {
    EXPECT_TRUE(r.deadline_missed);
    EXPECT_GT(r.completion_ns - r.arrival_ns, options.deadline_ns);
  }

  // Same trace without a deadline: zero misses.
  options.deadline_ns = 0;
  const ReplayOutput relaxed = MustReplay(options, trace);
  EXPECT_EQ(relaxed.stats.deadline_misses, 0u);
}

// --- Live mode -------------------------------------------------------------

TEST(ServeLiveTest, ConcurrentClientsAreServedAndBatched) {
  ServeOptions options = BaseServe();
  options.scheduler_threads = 2;
  options.max_wait_ns = 200000;
  options.tenants = {{"a", 2}, {"b", 1}};
  auto server =
      PimServer::Build(Data(), Distance::kEuclidean, SmallEngine(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  EXPECT_FALSE((*server)->Start().ok()) << "double Start must fail";

  constexpr int kClients = 4;
  constexpr int kPerClient = 12;
  std::vector<std::thread> clients;
  std::vector<int> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const size_t row = static_cast<size_t>(c * kPerClient + i) % kQueries;
        auto result =
            (*server)->Submit(static_cast<uint32_t>(c % 2), Queries().row(row));
        if (result.ok() && result->neighbors.size() == kK &&
            result->completion_ns >= result->dispatch_ns &&
            result->dispatch_ns >= result->arrival_ns) {
          ++ok_counts[c];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  (*server)->Stop();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok_counts[c], kPerClient) << "client " << c;
  }
  const ServeStats stats = (*server)->LiveStats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.served, stats.submitted);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.exec.pim_ns, 0.0);

  // Served results must match the offline answers (continuous batching
  // cannot change correctness, live or replayed).
  auto probe = (*server)->Submit(0, Queries().row(0));
  EXPECT_FALSE(probe.ok()) << "Submit after Stop must fail";
}

TEST(ServeLiveTest, LiveResultsMatchReplay) {
  ServeOptions options = BaseServe();
  options.scheduler_threads = 2;
  auto server =
      PimServer::Build(Data(), Distance::kEuclidean, SmallEngine(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  std::vector<std::vector<Neighbor>> live(kQueries);
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (size_t row = c; row < kQueries; row += 4) {
        auto result = (*server)->Submit(0, Queries().row(row));
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        live[row] = std::move(result->neighbors);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  (*server)->Stop();

  const ArrivalTrace trace = AllAtZeroTrace(kQueries, 1, kQueries);
  ServeOptions replay_options = options;
  replay_options.scheduler_threads = 1;
  const ReplayOutput replayed = MustReplay(replay_options, trace);
  for (size_t row = 0; row < kQueries; ++row) {
    EXPECT_EQ(live[row], replayed.results[row].neighbors) << "query " << row;
  }
}

// --- Option validation -----------------------------------------------------

TEST(ServeOptionsTest, ValidateCatchesBadKnobs) {
  ServeOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.max_batch = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = ServeOptions{};
  options.queue_capacity = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = ServeOptions{};
  options.scheduler_threads = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = ServeOptions{};
  options.exec.device_batch = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = ServeOptions{};
  options.tenants = {{"zero", 0}};
  EXPECT_FALSE(options.Validate().ok());
}

}  // namespace
}  // namespace serve
}  // namespace pimine
