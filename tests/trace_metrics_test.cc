// Unit tests for the observability primitives: log-bucketed histogram math
// (boundaries, exact merging, quantile upper bounds vs. the sorted exact
// order statistic), trace JSON well-formedness and deterministic assembly,
// the span balance invariant, and metrics-registry reset semantics.

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/random.h"

namespace pimine {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::TraceOptions;
using obs::TraceRecorder;

// Structural JSON checker: string-aware brace/bracket balance. Not a full
// parser (CI runs python -m json.tool on real CLI output), but enough to
// catch unterminated strings, unbalanced containers, and escaping bugs.
bool JsonWellFormed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !s.empty() && s.front() == '{' && !in_string && stack.empty();
}

// The same clamping/rounding Record() applies, for computing expectations.
uint64_t TicksOf(double ns) {
  if (!(ns > 0.0)) return 0;
  if (ns >= static_cast<double>(Histogram::kMaxTicks)) {
    return Histogram::kMaxTicks;
  }
  return static_cast<uint64_t>(std::llround(ns));
}

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketUpperEdge(0), 0u);
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    const uint64_t lo = 1ULL << (i - 1);  // inclusive lower edge.
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "bucket " << i;
    const uint64_t hi = (i < 63) ? (1ULL << i) - 1
                                 : Histogram::kMaxTicks;  // clamp ceiling.
    EXPECT_EQ(Histogram::BucketIndex(hi), i) << "bucket " << i;
    if (i < 63) {
      EXPECT_EQ(Histogram::BucketUpperEdge(i), (1ULL << i) - 1);
      EXPECT_EQ(Histogram::BucketIndex(hi + 1), i + 1) << "bucket " << i;
    }
  }
}

TEST(HistogramTest, RecordClampsAndRounds) {
  Histogram h;
  h.Record(-5.0);  // clamps to 0.
  h.Record(0.0);
  h.Record(0.4);  // rounds to 0.
  EXPECT_EQ(h.bucket(0), 3u);
  h.Record(2.6);  // rounds to 3 ticks -> bucket 2 ([2, 4)).
  EXPECT_EQ(h.bucket(2), 1u);
  h.Record(4.0);  // bucket 3 ([4, 8)).
  EXPECT_EQ(h.bucket(3), 1u);
  h.Record(1e300);  // clamps to kMaxTicks -> last bucket.
  EXPECT_EQ(h.bucket(Histogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(h.max_ticks(), Histogram::kMaxTicks);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum_ticks(), 0u + 0u + 0u + 3u + 4u + Histogram::kMaxTicks);
}

TEST(HistogramTest, MergeIsExactForAnyPartitionAndOrder) {
  Rng rng(7);
  std::vector<double> samples(1000);
  for (double& ns : samples) {
    ns = rng.NextFloat() * 2e6 - 1e3;  // includes negatives (clamped).
  }

  Histogram reference;
  for (double ns : samples) reference.Record(ns);

  // Partition into P parts round-robin, merge in several different
  // groupings; every result must be bit-identical to the reference.
  for (size_t parts : {2u, 3u, 7u}) {
    std::vector<Histogram> shard(parts);
    for (size_t i = 0; i < samples.size(); ++i) {
      shard[i % parts].Record(samples[i]);
    }

    // Left fold: ((s0 + s1) + s2) + ...
    Histogram left;
    for (const Histogram& s : shard) left.Merge(s);
    EXPECT_TRUE(left == reference) << parts << " parts, left fold";

    // Right-leaning fold in reverse order: s_{P-1} + (... + s0).
    Histogram right;
    for (size_t i = parts; i-- > 0;) right.Merge(shard[i]);
    EXPECT_TRUE(right == reference) << parts << " parts, reverse fold";

    // Pairwise tree merge (associativity across a different shape).
    std::vector<Histogram> level = shard;
    while (level.size() > 1) {
      std::vector<Histogram> next;
      for (size_t i = 0; i < level.size(); i += 2) {
        Histogram h = level[i];
        if (i + 1 < level.size()) h.Merge(level[i + 1]);
        next.push_back(h);
      }
      level = std::move(next);
    }
    EXPECT_TRUE(level[0] == reference) << parts << " parts, tree merge";
  }
}

TEST(HistogramTest, QuantileUpperBoundBracketsSortedExact) {
  Rng rng(11);
  std::vector<double> samples(513);
  for (double& ns : samples) ns = rng.NextFloat() * 5e5;

  Histogram h;
  std::vector<uint64_t> ticks;
  for (double ns : samples) {
    h.Record(ns);
    ticks.push_back(TicksOf(ns));
  }
  std::sort(ticks.begin(), ticks.end());

  for (double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99}) {
    const auto rank = static_cast<size_t>(std::max(
        1.0, std::ceil(q * static_cast<double>(ticks.size()))));
    const uint64_t exact = ticks[rank - 1];
    const uint64_t bound = h.QuantileUpperBound(q);
    // The reported bound is the inclusive upper edge of the bucket holding
    // the exact order statistic: never below it, never a full bucket above.
    EXPECT_EQ(bound,
              Histogram::BucketUpperEdge(Histogram::BucketIndex(exact)))
        << "q=" << q;
    EXPECT_GE(bound, exact) << "q=" << q;
  }
  EXPECT_EQ(h.QuantileUpperBound(1.0), ticks.back());  // exact max.
}

TEST(HistogramTest, EmptyAndReset) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.QuantileUpperBound(0.5), 0u);
  h.Record(100.0);
  h.Reset();
  EXPECT_TRUE(h == Histogram());
  EXPECT_NE(h.Summary().find("count=0"), std::string::npos);
}

TEST(TraceRecorderTest, SpanBalanceInvariant) {
  TraceRecorder recorder{TraceOptions()};
  EXPECT_EQ(recorder.OpenSpans(), 0);
  recorder.Begin("t", "outer", 0);
  EXPECT_EQ(recorder.OpenSpans(), 1);
  recorder.Begin("t", "inner", 0);
  EXPECT_EQ(recorder.OpenSpans(), 2);
  recorder.End("t", "inner", 0, 30.0);
  recorder.End("t", "outer", 0, 100.0);
  EXPECT_EQ(recorder.OpenSpans(), 0);
  recorder.Complete("t", "solo", 0, 50.0);
  EXPECT_EQ(recorder.OpenSpans(), 0);  // X never opens.
  EXPECT_EQ(recorder.NumEvents(), 5u);
}

TEST(TraceRecorderTest, ChromeJsonIsWellFormedAndDeterministic) {
  TraceRecorder recorder{TraceOptions()};
  recorder.Begin("engine", "query", 3);
  recorder.Complete("engine", "quantize", 3, 40.0);
  recorder.End("engine", "query", 3, 100.0, "query_id", 3);
  recorder.Complete("kmeans", "iteration", obs::kRunTrack, 12.5);

  const std::string json = recorder.ToChromeJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("quantize"), std::string::npos);
  EXPECT_NE(json.find("iteration"), std::string::npos);
  EXPECT_NE(json.find("query_id"), std::string::npos);
  // Default domain: no wall stamps in the output.
  EXPECT_EQ(json.find("wall_ns"), std::string::npos);
  // Deterministic: a second export is byte-identical.
  EXPECT_EQ(json, recorder.ToChromeJson());
}

// The exported timeline must not depend on which thread recorded which
// track: same spans recorded (a) by one thread and (b) by two threads in
// reverse registration order export byte-identical JSON.
TEST(TraceRecorderTest, ExportIndependentOfRecordingThread) {
  TraceRecorder serial{TraceOptions()};
  serial.Complete("t", "alpha", 5, 10.0);
  serial.Complete("t", "beta", 9, 20.0);

  TraceRecorder threaded{TraceOptions()};
  std::thread t1([&] { threaded.Complete("t", "beta", 9, 20.0); });
  t1.join();
  std::thread t2([&] { threaded.Complete("t", "alpha", 5, 10.0); });
  t2.join();

  EXPECT_EQ(serial.ToChromeJson(), threaded.ToChromeJson());
}

TEST(MetricsRegistryTest, CountersAndGauges) {
  MetricsRegistry registry;
  obs::Counter& c = registry.GetCounter("pimine_test_total");
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.Value(), 6u);
  // Same name returns the same instrument.
  EXPECT_EQ(&registry.GetCounter("pimine_test_total"), &c);
  registry.GetGauge("pimine_test_gauge").Set(2.5);
  EXPECT_EQ(registry.GetGauge("pimine_test_gauge").Value(), 2.5);
  EXPECT_EQ(registry.NumInstruments(), 2u);
}

TEST(MetricsRegistryTest, ResetKeepsRegistrationsAndReferences) {
  MetricsRegistry registry;
  obs::Counter& c = registry.GetCounter("pimine_reset_total");
  c.Add(7);
  registry.GetGauge("pimine_reset_gauge").Set(1.0);
  Histogram samples;
  samples.Record(100.0);
  registry.MergeHistogram("pimine_reset_ns", samples);
  ASSERT_EQ(registry.NumInstruments(), 3u);

  registry.Reset();
  // Registrations survive; values are zeroed; old references stay valid.
  EXPECT_EQ(registry.NumInstruments(), 3u);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(registry.GetGauge("pimine_reset_gauge").Value(), 0.0);
  EXPECT_EQ(registry.GetHistogramSnapshot("pimine_reset_ns").count(), 0u);
  c.Add(3);
  EXPECT_EQ(registry.GetCounter("pimine_reset_total").Value(), 3u);
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry registry;
  registry.GetCounter("pimine_ops_total").Add(42);
  Histogram samples;
  samples.Record(3.0);     // bucket 2.
  samples.Record(1000.0);  // bucket 10.
  registry.MergeHistogram("pimine_lat_ns", samples);

  const std::string text = registry.ToPrometheus();
  EXPECT_NE(text.find("# TYPE pimine_ops_total counter\n"
                      "pimine_ops_total 42\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE pimine_lat_ns histogram"), std::string::npos);
  // Cumulative buckets: the le="+Inf" line carries the total count, and the
  // _count/_sum series agree with the histogram.
  EXPECT_NE(text.find("pimine_lat_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("pimine_lat_ns_sum 1003"), std::string::npos) << text;
  EXPECT_NE(text.find("pimine_lat_ns_count 2"), std::string::npos) << text;
  // Deterministic byte output.
  EXPECT_EQ(text, registry.ToPrometheus());
}

TEST(MetricsRegistryTest, JsonExposition) {
  MetricsRegistry registry;
  registry.GetCounter("pimine_ops_total").Add(1);
  registry.GetGauge("pimine_alpha").Set(0.5);
  Histogram samples;
  samples.Record(12.0);
  registry.MergeHistogram("pimine_lat_ns", samples);

  const std::string json = registry.ToJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("pimine_ops_total"), std::string::npos);
  EXPECT_NE(json.find("pimine_alpha"), std::string::npos);
  EXPECT_NE(json.find("pimine_lat_ns"), std::string::npos);
}

TEST(ObsTest, DisabledIsNullObjectFastPath) {
  ASSERT_EQ(obs::Obs::Get(), nullptr);  // disabled by default.
  EXPECT_FALSE(obs::Obs::Enabled());
  // Every instrumentation shape must be a no-op without an instance.
  obs::AddCounter("pimine_noop_total", 3);
  obs::EmitComplete("t", "noop", 0, 1.0);
  Histogram latency;
  {
    obs::TraceSpan span("t", "noop");
    obs::QuerySpan query(0, &latency);
    obs::AggregateSpan agg("t", "noop");
    obs::SchedSpan sched(0, 0, 1);
  }
  EXPECT_EQ(latency.count(), 0u);
}

TEST(ObsTest, EnableDisableLifecycle) {
  obs::Obs::Enable();
  ASSERT_TRUE(obs::Obs::Enabled());
  obs::AddCounter("pimine_life_total", 2);
  obs::EmitComplete("t", "op", obs::kRunTrack, 5.0);
  Histogram latency;
  { obs::QuerySpan query(4, &latency); }
  EXPECT_EQ(latency.count(), 1u);
  obs::Obs* o = obs::Obs::Get();
  EXPECT_EQ(o->metrics().GetCounter("pimine_life_total").Value(), 2u);
  EXPECT_EQ(o->trace().OpenSpans(), 0);
  EXPECT_GE(o->trace().NumEvents(), 3u);  // X + query B/E.
  obs::Obs::Disable();
  EXPECT_EQ(obs::Obs::Get(), nullptr);
}

TEST(ObsTest, TrackBaseScoping) {
  EXPECT_EQ(obs::CurrentTrackBase(), obs::kNoTrackBase);
  EXPECT_EQ(obs::TrackFor(3), obs::kRunTrack);  // unset -> run track.
  {
    obs::ScopedTrackBase base(10);
    EXPECT_EQ(obs::TrackFor(3), 13);
    {
      obs::ScopedTrackBase inner(100);
      EXPECT_EQ(obs::TrackFor(0), 100);
    }
    EXPECT_EQ(obs::TrackFor(3), 13);  // restored on scope exit.
  }
  EXPECT_EQ(obs::CurrentTrackBase(), obs::kNoTrackBase);
}

}  // namespace
}  // namespace pimine
