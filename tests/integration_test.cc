// End-to-end exercises of the public API across module boundaries: dataset
// generation -> normalization -> engine/algorithms -> cost model, on the
// catalog's paper datasets (scaled down).

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/memory_planner.h"
#include "core/similarity.h"
#include "data/catalog.h"
#include "data/generator.h"
#include "data/normalize.h"
#include "knn/fnn_knn.h"
#include "knn/fnn_pim_knn.h"
#include "knn/standard_knn.h"
#include "knn/standard_pim_knn.h"
#include "kmeans/lloyd.h"
#include "kmeans/yinyang.h"
#include "profiling/modeled_time.h"
#include "util/random.h"

namespace pimine {
namespace {

class CatalogDatasetTest : public ::testing::TestWithParam<const char*> {};

// For every paper dataset profile: PIM-accelerated kNN returns the linear
// scan's results and the modeled time favors PIM (the paper's headline).
TEST_P(CatalogDatasetTest, PimKnnExactAndModeledFaster) {
  auto spec = Catalog::Find(GetParam());
  ASSERT_TRUE(spec.ok());
  // Scaled-down instance; dimensionality stays the paper's.
  const FloatMatrix data = DatasetGenerator::Generate(*spec, 600, 11);
  const FloatMatrix queries =
      DatasetGenerator::GenerateQueries(*spec, data, 3, 12);

  StandardKnn standard;
  ASSERT_TRUE(standard.Prepare(data).ok());
  auto base = standard.Search(queries, 10);
  ASSERT_TRUE(base.ok());

  EngineOptions options;
  // Crossbar budget scaled as in the bench harness so Theorem 4 pressure
  // matches the paper's full-size run.
  options.pim_config =
      ScalePimArrayForDataset(spec->paper_n, 600, options.pim_config);
  StandardPimKnn pim(Distance::kEuclidean, options);
  ASSERT_TRUE(pim.Prepare(data).ok());
  auto accel = pim.Search(queries, 10);
  ASSERT_TRUE(accel.ok()) << accel.status().ToString();

  ASSERT_EQ(base->neighbors.size(), accel->neighbors.size());
  for (size_t q = 0; q < base->neighbors.size(); ++q) {
    for (size_t j = 0; j < base->neighbors[q].size(); ++j) {
      EXPECT_EQ(base->neighbors[q][j].id, accel->neighbors[q][j].id)
          << GetParam() << " q=" << q << " rank=" << j;
    }
  }

  // Modeled comparison (how the bench composes figures): PIM must move far
  // fewer bits than the scan on every dataset profile.
  EXPECT_LT(accel->stats.traffic.bytes_from_memory,
            base->stats.traffic.bytes_from_memory);
}

INSTANTIATE_TEST_SUITE_P(PaperDatasets, CatalogDatasetTest,
                         ::testing::Values("ImageNet", "MSD", "GIST", "Trevi",
                                           "Year", "Notre", "NUS-WIDE",
                                           "Enron"));

TEST(EndToEndTest, RawDataNeedsNormalization) {
  // User flow: raw (unnormalized) data -> MinMaxScaler -> engine.
  FloatMatrix raw(50, 8);
  Rng rng(21);
  for (size_t i = 0; i < raw.rows(); ++i) {
    for (float& v : raw.mutable_row(i)) {
      v = static_cast<float>(rng.NextUniform(-10.0, 30.0));
    }
  }
  // Unnormalized data is rejected...
  EXPECT_FALSE(
      PimEngine::Build(raw, Distance::kEuclidean, EngineOptions()).ok());
  // ...normalized data is accepted and bounds hold in the scaled space.
  const MinMaxScaler scaler = MinMaxScaler::Fit(raw);
  const FloatMatrix normalized = scaler.Transform(raw);
  auto engine = PimEngine::Build(normalized, Distance::kEuclidean,
                                 EngineOptions());
  ASSERT_TRUE(engine.ok());
  std::vector<double> bounds;
  ASSERT_TRUE((*engine)->ComputeBounds(normalized.row(0), &bounds).ok());
  for (size_t i = 0; i < normalized.rows(); ++i) {
    EXPECT_LE(bounds[i],
              SquaredEuclidean(normalized.row(i), normalized.row(0)) + 1e-9);
  }
}

TEST(EndToEndTest, ModeledSpeedupShapeOnScan) {
  // The Fig. 13a shape: modeled speedup of Standard-PIM over Standard grows
  // with dimensionality.
  const HostCostModel model;
  double previous_speedup = 0.0;
  for (int64_t d : {64, 256, 1024}) {
    DatasetSpec spec;
    spec.name = "synthetic";
    spec.dims = static_cast<int32_t>(d);
    spec.profile = ClusterProfile::kClustered;
    spec.num_clusters = 8;
    spec.cluster_std = 0.08;
    const FloatMatrix data = DatasetGenerator::Generate(spec, 800, 31);
    const FloatMatrix queries =
        DatasetGenerator::GenerateQueries(spec, data, 3, 32);

    StandardKnn standard;
    ASSERT_TRUE(standard.Prepare(data).ok());
    auto base = standard.Search(queries, 10);
    ASSERT_TRUE(base.ok());

    StandardPimKnn pim(Distance::kEuclidean, EngineOptions());
    ASSERT_TRUE(pim.Prepare(data).ok());
    auto accel = pim.Search(queries, 10);
    ASSERT_TRUE(accel.ok());

    const double base_ms = ComposeModeledTime(base->stats, model).total_ms();
    const double pim_ms = ComposeModeledTime(accel->stats, model).total_ms();
    const double speedup = base_ms / pim_ms;
    EXPECT_GT(speedup, 1.0) << "d=" << d;
    EXPECT_GT(speedup, previous_speedup * 0.8)
        << "speedup should broadly grow with d";
    previous_speedup = speedup;
  }
}

TEST(EndToEndTest, KmeansPimMatchesAndSavesTraffic) {
  auto spec = Catalog::Find("NUS-WIDE");
  ASSERT_TRUE(spec.ok());
  const FloatMatrix data = DatasetGenerator::Generate(*spec, 400, 41);
  KmeansOptions options;
  options.k = 16;
  options.max_iterations = 4;

  YinyangKmeans yinyang;
  auto base = yinyang.Run(data, options);
  ASSERT_TRUE(base.ok());

  options.use_pim = true;
  auto accel = yinyang.Run(data, options);
  ASSERT_TRUE(accel.ok());
  EXPECT_EQ(base->assignments, accel->assignments);
  EXPECT_LE(accel->stats.exact_count, base->stats.exact_count);
}

TEST(EndToEndTest, PlanOptimizationNeverSlowerInModel) {
  auto spec = Catalog::Find("MSD");
  ASSERT_TRUE(spec.ok());
  const FloatMatrix data = DatasetGenerator::Generate(*spec, 700, 51);

  EngineOptions options;
  options.pim_config =
      ScalePimArrayForDataset(spec->paper_n, 700, options.pim_config);

  FnnPimKnn plain(options, /*optimize=*/false);
  FnnPimKnn optimized(options, /*optimize=*/true);
  ASSERT_TRUE(plain.Prepare(data).ok());
  ASSERT_TRUE(optimized.Prepare(data).ok());
  // Eq. 13: the optimized plan's estimated cost cannot exceed the default
  // plan's (the optimizer minimizes over a superset of choices).
  EXPECT_LE(optimized.plan().cost_bits_per_object,
            plain.plan().cost_bits_per_object + 1e-9);
}

}  // namespace
}  // namespace pimine
