// The observability guarantee under test: with tracing enabled, the
// modeled-time trace JSON, the merged latency histograms, and every
// grouping-invariant counter are *bit-identical* across thread counts and
// device-batch sizes, and across repeated runs with the same seed. Only
// pimine_device_batch_ops_total may vary (it counts physical device calls,
// which legitimately depend on device_batch) and is excluded here.
//
// This file also runs under TSan in CI: it exercises concurrent span
// recording into per-thread buffers plus the cross-thread merges.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "kmeans/kmeans_common.h"
#include "kmeans/lloyd.h"
#include "knn/knn_common.h"
#include "knn/standard_pim_knn.h"
#include "obs/histogram.h"
#include "obs/obs.h"

namespace pimine {
namespace {

struct Workload {
  FloatMatrix data;
  FloatMatrix queries;
};

Workload MakeWorkload(size_t n, size_t d, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "test";
  spec.dims = static_cast<int32_t>(d);
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 8;
  spec.cluster_std = 0.08;
  Workload w;
  w.data = DatasetGenerator::Generate(spec, static_cast<int64_t>(n), seed);
  w.queries = DatasetGenerator::GenerateQueries(spec, w.data, 33, seed + 1);
  return w;
}

/// Everything the bit-identity guarantee covers for one observed run.
struct ObservedRun {
  std::string trace_json;
  obs::Histogram stats_hist;     // RunStats::latency_hist.
  obs::Histogram registry_hist;  // the registry's merged copy.
  std::vector<std::pair<std::string, uint64_t>> counters;
};

void ExpectIdenticalObservations(const ObservedRun& a, const ObservedRun& b,
                                 const std::string& label) {
  EXPECT_EQ(a.trace_json, b.trace_json) << label << ": trace bytes diverged";
  EXPECT_TRUE(a.stats_hist == b.stats_hist)
      << label << ": RunStats latency histogram diverged";
  EXPECT_TRUE(a.registry_hist == b.registry_hist)
      << label << ": registry histogram diverged";
  ASSERT_EQ(a.counters.size(), b.counters.size()) << label;
  for (size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i], b.counters[i])
        << label << ": counter " << a.counters[i].first;
  }
}

std::vector<std::pair<std::string, uint64_t>> SnapshotCounters(
    const std::vector<std::string>& names) {
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const std::string& name : names) {
    out.emplace_back(
        name, obs::Obs::Get()->metrics().GetCounter(name).Value());
  }
  return out;
}

// Counters whose totals must not depend on threads or device_batch.
const std::vector<std::string>& InvariantKnnCounters() {
  static const std::vector<std::string> names = {
      "pimine_queries_total",           "pimine_exact_distances_total",
      "pimine_bound_evaluations_total", "pimine_candidates_pruned_total",
      "pimine_device_queries_total",    "pimine_device_programs_total",
  };
  return names;
}

const std::vector<std::string>& InvariantKmeansCounters() {
  static const std::vector<std::string> names = {
      "pimine_exact_distances_total",
      "pimine_bound_evaluations_total",
      "pimine_candidates_pruned_total",
      "pimine_kmeans_iterations_total",
      "pimine_kmeans_reassignments_total",
      "pimine_device_queries_total",
      "pimine_device_programs_total",
  };
  return names;
}

ObservedRun ObserveKnnRun(const Workload& w, int threads,
                          size_t device_batch) {
  obs::Obs::Enable();
  StandardPimKnn algorithm(Distance::kEuclidean, EngineOptions());
  EXPECT_TRUE(algorithm.Prepare(w.data).ok());
  ExecPolicy policy = ExecPolicy::WithThreads(threads);
  policy.device_batch = device_batch;
  algorithm.set_exec_policy(policy);
  auto result = algorithm.Search(w.queries, 6);
  EXPECT_TRUE(result.ok());

  ObservedRun run;
  obs::Obs* o = obs::Obs::Get();
  EXPECT_EQ(o->trace().OpenSpans(), 0);  // balance after the run drains.
  run.trace_json = o->trace().ToChromeJson();
  run.stats_hist = result->stats.latency_hist;
  run.registry_hist =
      o->metrics().GetHistogramSnapshot("pimine_query_latency_ns");
  run.counters = SnapshotCounters(InvariantKnnCounters());
  obs::Obs::Disable();
  return run;
}

ObservedRun ObserveKmeansRun(const FloatMatrix& data, int threads,
                             size_t device_batch) {
  obs::Obs::Enable();
  KmeansOptions options;
  options.k = 12;
  options.max_iterations = 4;
  options.seed = 123;
  options.use_pim = true;
  options.exec = ExecPolicy::WithThreads(threads);
  options.exec.block_size = 64;
  options.exec.device_batch = device_batch;
  LloydKmeans algorithm;
  auto result = algorithm.Run(data, options);
  EXPECT_TRUE(result.ok());

  ObservedRun run;
  obs::Obs* o = obs::Obs::Get();
  EXPECT_EQ(o->trace().OpenSpans(), 0);
  run.trace_json = o->trace().ToChromeJson();
  run.stats_hist = result->stats.latency_hist;
  run.registry_hist =
      o->metrics().GetHistogramSnapshot("pimine_kmeans_iteration_ns");
  run.counters = SnapshotCounters(InvariantKmeansCounters());
  obs::Obs::Disable();
  return run;
}

TEST(ObsDeterminismTest, KnnTraceBitIdenticalAcrossThreadsAndBatches) {
  const Workload w = MakeWorkload(400, 32, 97);
  const ObservedRun baseline = ObserveKnnRun(w, /*threads=*/1,
                                             /*device_batch=*/1);
  EXPECT_GT(baseline.stats_hist.count(), 0u);
  EXPECT_NE(baseline.trace_json.find("pim_dot"), std::string::npos);

  for (int threads : {1, 4}) {
    for (size_t device_batch : {size_t{1}, size_t{16}}) {
      const ObservedRun run = ObserveKnnRun(w, threads, device_batch);
      ExpectIdenticalObservations(
          baseline, run,
          "kNN x" + std::to_string(threads) + " batch" +
              std::to_string(device_batch));
    }
  }
}

TEST(ObsDeterminismTest, KnnRunToRunIdenticalWithSameSeed) {
  const Workload w = MakeWorkload(300, 24, 5);
  const ObservedRun first = ObserveKnnRun(w, 4, 16);
  const ObservedRun second = ObserveKnnRun(w, 4, 16);
  ExpectIdenticalObservations(first, second, "kNN rerun");
}

TEST(ObsDeterminismTest, KmeansTraceBitIdenticalAcrossThreadsAndBatches) {
  const Workload w = MakeWorkload(420, 24, 17);
  const ObservedRun baseline = ObserveKmeansRun(w.data, /*threads=*/1,
                                                /*device_batch=*/1);
  EXPECT_GT(baseline.stats_hist.count(), 0u);  // per-iteration samples.
  EXPECT_NE(baseline.trace_json.find("iteration"), std::string::npos);

  for (int threads : {1, 4}) {
    for (size_t device_batch : {size_t{1}, size_t{16}}) {
      const ObservedRun run = ObserveKmeansRun(w.data, threads, device_batch);
      ExpectIdenticalObservations(
          baseline, run,
          "kmeans x" + std::to_string(threads) + " batch" +
              std::to_string(device_batch));
    }
  }
}

TEST(ObsDeterminismTest, KmeansRunToRunIdenticalWithSameSeed) {
  const Workload w = MakeWorkload(350, 20, 29);
  const ObservedRun first = ObserveKmeansRun(w.data, 4, 16);
  const ObservedRun second = ObserveKmeansRun(w.data, 4, 16);
  ExpectIdenticalObservations(first, second, "kmeans rerun");
}

// With observability disabled (the default), the latency histogram must
// stay empty — the RunStats surface is bit-identical to an uninstrumented
// binary.
TEST(ObsDeterminismTest, DisabledRunLeavesHistogramEmpty) {
  ASSERT_FALSE(obs::Obs::Enabled());
  const Workload w = MakeWorkload(200, 16, 3);
  StandardPimKnn algorithm(Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(algorithm.Prepare(w.data).ok());
  auto result = algorithm.Search(w.queries, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.latency_hist.count(), 0u);
}

}  // namespace
}  // namespace pimine
