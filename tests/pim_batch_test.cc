// Batched multi-query device operations (DotProductBatch / RunQueryBatch)
// must be a pure batching of the per-query path: bit-identical results and
// bounds, identical serial-equivalent modeled stats for every batch size,
// and a pipelined batch latency that follows the analytic
// stage_ns * (stages + Q - 1) formula with Q = 1 reducing to Table 5.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/matrix.h"
#include "kmeans/kmeans_common.h"
#include "knn/standard_pim_knn.h"
#include "pim/crossbar.h"
#include "pim/crossbar_math.h"
#include "pim/pim_device.h"
#include "pim/timing.h"
#include "test_helpers.h"
#include "util/random.h"

namespace pimine {
namespace {

IntMatrix RandomIntMatrix(size_t rows, size_t cols, uint32_t limit,
                          uint64_t seed) {
  IntMatrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (int32_t& v : m.mutable_row(i)) {
      v = static_cast<int32_t>(rng.NextBounded(limit));
    }
  }
  return m;
}

std::vector<int32_t> RandomQueries(size_t count, size_t dims, uint32_t limit,
                                   uint64_t seed) {
  std::vector<int32_t> q(count * dims);
  Rng rng(seed);
  for (int32_t& v : q) v = static_cast<int32_t>(rng.NextBounded(limit));
  return q;
}

TEST(PimBatchTest, BatchMatchesSingleQueriesBitForBit) {
  // Sizes chosen to exercise every GEMM tile width (8/4/2/1 cascade) and a
  // partial trailing object block.
  const size_t n = 97, s = 33;
  const IntMatrix data = RandomIntMatrix(n, s, 1 << 20, 11);
  for (size_t num_queries : {size_t{1}, size_t{2}, size_t{7}, size_t{16},
                             size_t{23}}) {
    PimDevice batched, single;
    ASSERT_TRUE(batched.ProgramDataset(data).ok());
    ASSERT_TRUE(single.ProgramDataset(data).ok());
    const std::vector<int32_t> queries =
        RandomQueries(num_queries, s, 1 << 20, 100 + num_queries);

    std::vector<uint64_t> batch_out;
    ASSERT_TRUE(
        batched.DotProductBatch(queries, num_queries, &batch_out).ok());
    ASSERT_EQ(batch_out.size(), num_queries * n);

    std::vector<uint64_t> out;
    for (size_t q = 0; q < num_queries; ++q) {
      ASSERT_TRUE(single
                      .DotProductAll(std::span<const int32_t>(queries).subspan(
                                         q * s, s),
                                     &out)
                      .ok());
      for (size_t v = 0; v < n; ++v) {
        ASSERT_EQ(batch_out[q * n + v], out[v])
            << "Q=" << num_queries << " q=" << q << " v=" << v;
      }
    }
  }
}

TEST(PimBatchTest, BatchWrapsAroundLikeSingleQueries) {
  // 32 * 2^60 = 2^65: every query in the batch must observe the same
  // least-significant-64-bit truncation as the per-query path (== 0).
  PimConfig config;
  config.operand_bits = 32;
  PimDevice device(config);
  IntMatrix data(1, 32);
  for (int32_t& v : data.mutable_row(0)) v = (1 << 30);
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  const std::vector<int32_t> queries(3 * 32, 1 << 30);
  std::vector<uint64_t> out;
  ASSERT_TRUE(device.DotProductBatch(queries, 3, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  for (uint64_t v : out) EXPECT_EQ(v, 0u);
}

TEST(PimBatchTest, BatchMatchesCycleLevelCrossbar) {
  // Ground truth from the cycle-level crossbar pipeline: program the same
  // vectors into one crossbar and stream each query of the batch through it.
  const size_t n = 5, s = 16;
  const int operand_bits = 8;
  const IntMatrix data = RandomIntMatrix(n, s, 1u << operand_bits, 21);

  Crossbar xbar(256, 2);
  std::vector<uint32_t> operands(s);
  for (size_t c = 0; c < n; ++c) {
    for (size_t j = 0; j < s; ++j) {
      operands[j] = static_cast<uint32_t>(data(c, j));
    }
    ASSERT_TRUE(
        xbar.ProgramVector(static_cast<int>(c), operands, operand_bits).ok());
  }

  PimDevice device;
  ASSERT_TRUE(device.ProgramDataset(data, operand_bits).ok());
  const size_t num_queries = 4;
  const std::vector<int32_t> queries =
      RandomQueries(num_queries, s, 1u << operand_bits, 22);
  std::vector<uint64_t> out;
  ASSERT_TRUE(device.DotProductBatch(queries, num_queries, &out).ok());

  std::vector<uint32_t> input(s);
  for (size_t q = 0; q < num_queries; ++q) {
    for (size_t j = 0; j < s; ++j) {
      input[j] = static_cast<uint32_t>(queries[q * s + j]);
    }
    auto result = xbar.DotProduct(input, operand_bits, operand_bits, 2);
    ASSERT_TRUE(result.ok());
    for (size_t c = 0; c < n; ++c) {
      EXPECT_EQ(out[q * n + c], result->values[c])
          << "q=" << q << " object=" << c;
    }
  }
}

TEST(PimBatchTest, ModeledStatsInvariantAcrossBatchSizes) {
  // s > crossbar_dim so the gather tree is non-trivial (stages > 1) and
  // pipelining actually helps.
  const size_t n = 12, s = 300;
  const size_t total = 21;
  const IntMatrix data = RandomIntMatrix(n, s, 1 << 20, 31);
  const std::vector<int32_t> queries = RandomQueries(total, s, 1 << 20, 32);

  std::vector<PimDeviceStats> stats;
  for (size_t batch : {size_t{1}, size_t{7}, size_t{21}}) {
    PimDevice device;
    ASSERT_TRUE(device.ProgramDataset(data).ok());
    std::vector<uint64_t> out;
    for (size_t q0 = 0; q0 < total; q0 += batch) {
      ASSERT_TRUE(device
                      .DotProductBatch(std::span<const int32_t>(queries)
                                           .subspan(q0 * s, batch * s),
                                       batch, &out)
                      .ok());
    }
    EXPECT_EQ(device.stats().batch_ops, total / batch);
    EXPECT_EQ(device.stats().queries_per_batch.at(
                  static_cast<int64_t>(batch)),
              total / batch);
    stats.push_back(device.stats());
  }

  // Everything except batch_ops / queries_per_batch / pipelined_ns must be
  // exactly equal across batch sizes (charged per query by construction).
  for (size_t i = 1; i < stats.size(); ++i) {
    EXPECT_EQ(stats[0].queries_processed, stats[i].queries_processed);
    EXPECT_EQ(stats[0].compute_ns, stats[i].compute_ns);
    EXPECT_EQ(stats[0].compute_energy_pj, stats[i].compute_energy_pj);
    EXPECT_EQ(stats[0].results_produced, stats[i].results_produced);
    EXPECT_EQ(stats[0].result_bytes_to_host, stats[i].result_bytes_to_host);
  }

  // Pipelined latency follows stage_ns * (stages + Q - 1) analytically, and
  // the all-singles device has pipelined_ns == compute_ns bit for bit.
  PimTimingModel timing{PimConfig()};
  const int stages = GatherDepth(static_cast<int64_t>(s),
                                 PimConfig().crossbar_dim);
  ASSERT_GT(stages, 1);
  const double single_ns = timing.BatchDotLatencyNs(s, 32);
  const double stage_ns = single_ns / stages;
  EXPECT_DOUBLE_EQ(timing.BatchDotLatencyNs(s, 32, 7),
                   stage_ns * (stages + 7 - 1));
  EXPECT_EQ(timing.BatchDotLatencyNs(s, 32, 1), single_ns);
  EXPECT_EQ(stats[0].pipelined_ns, stats[0].compute_ns);
  // Larger batches strictly reduce device occupancy time.
  EXPECT_LT(stats[2].pipelined_ns, stats[1].pipelined_ns);
  EXPECT_LT(stats[1].pipelined_ns, stats[0].pipelined_ns);
  EXPECT_DOUBLE_EQ(stats[2].pipelined_ns,
                   timing.BatchDotLatencyNs(s, 32, 21));
}

TEST(PimBatchTest, EngineBatchBoundsMatchPerQueryForEveryMode) {
  const size_t n = 40, d = 48, num_queries = 5;
  const FloatMatrix data = testing_util::RandomUnitMatrix(n, d, 51);
  const FloatMatrix queries =
      testing_util::RandomUnitMatrix(num_queries, d, 52);

  struct ModeCase {
    Distance distance;
    EngineOptions::Bound bound;
  };
  const ModeCase cases[] = {
      {Distance::kEuclidean, EngineOptions::Bound::kDirectEd},
      {Distance::kEuclidean, EngineOptions::Bound::kSegmentFnn},
      {Distance::kEuclidean, EngineOptions::Bound::kSegmentSm},
      {Distance::kCosine, EngineOptions::Bound::kAuto},
      {Distance::kPearson, EngineOptions::Bound::kAuto},
  };
  for (const ModeCase& c : cases) {
    EngineOptions options;
    options.bound = c.bound;
    auto engine = PimEngine::Build(data, c.distance, options);
    ASSERT_TRUE(engine.ok());
    const auto mode = (*engine)->mode();

    auto batch = (*engine)->RunQueryBatch(
        std::span<const float>(queries.data(), num_queries * d), num_queries);
    ASSERT_TRUE(batch.ok()) << EngineModeName(mode);
    EXPECT_EQ(batch->num_queries, num_queries);
    EXPECT_EQ(batch->stride, n);

    for (size_t q = 0; q < num_queries; ++q) {
      auto handle = (*engine)->RunQuery(queries.row(q));
      ASSERT_TRUE(handle.ok()) << EngineModeName(mode);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ((*engine)->BoundFor(*batch, q, i),
                  (*engine)->BoundFor(*handle, i))
            << EngineModeName(mode) << " q=" << q << " object=" << i;
      }
    }
  }
}

TEST(PimBatchTest, BatchValidation) {
  PimDevice device;
  const IntMatrix data = RandomIntMatrix(4, 8, 10, 61);
  ASSERT_TRUE(device.ProgramDataset(data).ok());
  std::vector<uint64_t> out;
  // Empty batch: rejected with a message that names the requirement.
  const Status empty = device.DotProductBatch({}, 0, &out);
  EXPECT_FALSE(empty.ok());
  EXPECT_NE(empty.message().find("num_queries >= 1"), std::string::npos)
      << empty.ToString();
  // Size not a multiple of the programmed dimensionality.
  EXPECT_FALSE(
      device.DotProductBatch(std::vector<int32_t>(15, 1), 2, &out).ok());
  // Negative input anywhere in the batch.
  std::vector<int32_t> bad(16, 1);
  bad[11] = -3;
  EXPECT_FALSE(device.DotProductBatch(bad, 2, &out).ok());
}

TEST(PimBatchTest, EngineRejectsEmptyBatchAndNullOutputs) {
  const FloatMatrix data = testing_util::RandomUnitMatrix(16, 8, 71);
  auto engine = PimEngine::Build(data, Distance::kEuclidean, EngineOptions());
  ASSERT_TRUE(engine.ok());
  const auto batch = (*engine)->RunQueryBatch({}, 0);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(batch.status().message().find("num_queries >= 1"),
            std::string::npos)
      << batch.status().ToString();
}

TEST(PimBatchTest, ZeroDeviceBatchPolicyIsRejectedNotMisread) {
  // A device_batch of 0 used to be silently promoted to 1; it is now an
  // explicit error everywhere a policy reaches a batched device op.
  const FloatMatrix data = testing_util::RandomUnitMatrix(24, 8, 72);
  const FloatMatrix queries = testing_util::RandomUnitMatrix(2, 8, 73);

  StandardPimKnn knn(Distance::kEuclidean, EngineOptions());
  ExecPolicy policy;
  policy.device_batch = 0;
  knn.set_exec_policy(policy);
  ASSERT_TRUE(knn.Prepare(data).ok());
  const auto result = knn.Search(queries, 3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("device_batch"), std::string::npos)
      << result.status().ToString();

  auto filter = PimAssignFilter::Build(data, EngineOptions());
  ASSERT_TRUE(filter.ok());
  const Status begin = (*filter)->BeginIteration(queries, /*device_batch=*/0);
  ASSERT_FALSE(begin.ok());
  EXPECT_EQ(begin.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE((*filter)->BeginIteration(queries, 1).ok());
}

}  // namespace
}  // namespace pimine
