#ifndef PIMINE_PIM_BUFFER_ARRAY_H_
#define PIMINE_PIM_BUFFER_ARRAY_H_

#include <cstdint>

#include "common/status.h"

namespace pimine {

/// Model of the eDRAM buffer array that sits between the PIM array and the
/// CPU (§III-A): PIM deposits batches of results here so the CPU can drain
/// them asynchronously. We track occupancy and the number of forced drains
/// (batches that exceeded capacity serialize PIM and CPU).
class BufferArray {
 public:
  explicit BufferArray(uint64_t capacity_bytes);

  /// Deposits `bytes` of PIM results. If the batch exceeds the remaining
  /// space, the model counts one forced drain (CPU must catch up) per
  /// capacity-full of data; the deposit itself always succeeds.
  void Deposit(uint64_t bytes);

  /// CPU consumes `bytes` of results.
  void Drain(uint64_t bytes);

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t occupied_bytes() const { return occupied_bytes_; }
  uint64_t total_deposited_bytes() const { return total_deposited_bytes_; }
  /// Times PIM had to stall waiting for the CPU to drain results.
  uint64_t forced_drains() const { return forced_drains_; }

  void Reset();

 private:
  uint64_t capacity_bytes_;
  uint64_t occupied_bytes_ = 0;
  uint64_t total_deposited_bytes_ = 0;
  uint64_t forced_drains_ = 0;
};

}  // namespace pimine

#endif  // PIMINE_PIM_BUFFER_ARRAY_H_
