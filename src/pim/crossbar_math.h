#ifndef PIMINE_PIM_CROSSBAR_MATH_H_
#define PIMINE_PIM_CROSSBAR_MATH_H_

#include <cstdint>

#include "common/result.h"
#include "pim/pim_config.h"

namespace pimine {

/// Depth of the gather tree for an s-dimensional dot-product on m-wide
/// crossbars (Fig. 3 / Fig. 11 of the paper): cycle i reduces s/m^i partial
/// sums; depth is the smallest D with s <= m^D. Returns 1 when s <= m.
int GatherDepth(int64_t s, int m);

/// Eq. 11: crossbars consumed by the dot-product of ONE pair of
/// s-dimensional vectors. Fractional for s <= m (the pair occupies s/m of a
/// crossbar column group).
double CrossbarsForPair(int64_t s, int m);

/// Eq. 12 (first part): data crossbars for N vectors of s dims with b-bit
/// operands on m x m crossbars of h-bit cells: ceil(N*b*s / (m^2*h)).
int64_t NumDataCrossbars(int64_t n, int operand_bits, int64_t s, int m,
                         int cell_bits);

/// Eq. 12 (second part): gather crossbars needed when s > m:
/// ceil(N*b/(m*h) * sum_{i=2}^{D} ceil(s/m^i)). Zero when s <= m.
int64_t NumGatherCrossbars(int64_t n, int operand_bits, int64_t s, int m,
                           int cell_bits);

/// Theorem 4 feasibility test: does a dataset of N s-dimensional b-bit
/// vectors fit in the PIM array (including gather crossbars when s > m)?
bool FitsInPimArray(int64_t n, int operand_bits, int64_t s,
                    const PimConfig& config);

/// Theorem 4: the maximum compressed dimensionality s <= max_dim such that
/// the dataset fits in the PIM array. Fails if even s = 1 does not fit.
Result<int64_t> MaxCompressedDim(int64_t n, int operand_bits, int64_t max_dim,
                                 const PimConfig& config);

}  // namespace pimine

#endif  // PIMINE_PIM_CROSSBAR_MATH_H_
