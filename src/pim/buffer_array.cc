#include "pim/buffer_array.h"

#include "common/logging.h"

namespace pimine {

BufferArray::BufferArray(uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  PIMINE_CHECK(capacity_bytes > 0);
}

void BufferArray::Deposit(uint64_t bytes) {
  total_deposited_bytes_ += bytes;
  occupied_bytes_ += bytes;
  while (occupied_bytes_ > capacity_bytes_) {
    // CPU is forced to drain a full buffer before PIM can continue.
    ++forced_drains_;
    occupied_bytes_ -= capacity_bytes_;
  }
}

void BufferArray::Drain(uint64_t bytes) {
  occupied_bytes_ = bytes >= occupied_bytes_ ? 0 : occupied_bytes_ - bytes;
}

void BufferArray::Reset() {
  occupied_bytes_ = 0;
  total_deposited_bytes_ = 0;
  forced_drains_ = 0;
}

}  // namespace pimine
