#include "pim/crossbar_math.h"

#include "common/logging.h"
#include "util/bits.h"

namespace pimine {

int GatherDepth(int64_t s, int m) {
  PIMINE_CHECK(s > 0 && m > 1);
  int depth = 1;
  int64_t span = m;
  while (span < s) {
    span *= m;
    ++depth;
  }
  return depth;
}

double CrossbarsForPair(int64_t s, int m) {
  PIMINE_CHECK(s > 0 && m > 1);
  if (s <= m) {
    return static_cast<double>(s) / m;
  }
  // Sum of ceil(s/m^i) over the reduction tree levels (data + gathers).
  double total = 0.0;
  const int depth = GatherDepth(s, m);
  int64_t denom = m;
  for (int i = 1; i <= depth; ++i) {
    total += static_cast<double>(CeilDiv(static_cast<uint64_t>(s),
                                         static_cast<uint64_t>(denom)));
    if (denom > s) break;
    denom *= m;
  }
  return total;
}

int64_t NumDataCrossbars(int64_t n, int operand_bits, int64_t s, int m,
                         int cell_bits) {
  PIMINE_CHECK(n > 0 && operand_bits > 0 && s > 0 && m > 1 && cell_bits > 0);
  const uint64_t cells_needed = static_cast<uint64_t>(n) * s *
                                NumSlices(operand_bits, cell_bits);
  return static_cast<int64_t>(
      CeilDiv(cells_needed, static_cast<uint64_t>(m) * m));
}

int64_t NumGatherCrossbars(int64_t n, int operand_bits, int64_t s, int m,
                           int cell_bits) {
  if (s <= m) return 0;
  // Vectors per data-crossbar column block: m*h/b of them share one set of
  // gather crossbars (they are reduced concurrently), so the per-pair gather
  // count is scaled by N*b/(m*h).
  const double groups = static_cast<double>(n) * operand_bits /
                        (static_cast<double>(m) * cell_bits);
  double per_pair = 0.0;
  const int depth = GatherDepth(s, m);
  int64_t denom = m * m;
  for (int i = 2; i <= depth; ++i) {
    per_pair += static_cast<double>(CeilDiv(static_cast<uint64_t>(s),
                                            static_cast<uint64_t>(denom)));
    denom *= m;
  }
  const double total = groups * per_pair;
  return static_cast<int64_t>(total) + ((total > static_cast<double>(
                                             static_cast<int64_t>(total)))
                                            ? 1
                                            : 0);
}

bool FitsInPimArray(int64_t n, int operand_bits, int64_t s,
                    const PimConfig& config) {
  const int64_t ndata =
      NumDataCrossbars(n, operand_bits, s, config.crossbar_dim,
                       config.cell_bits);
  if (s <= config.crossbar_dim) {
    return ndata <= config.num_crossbars;
  }
  const int64_t ngather =
      NumGatherCrossbars(n, operand_bits, s, config.crossbar_dim,
                         config.cell_bits);
  return ndata + ngather <= config.num_crossbars;
}

Result<int64_t> MaxCompressedDim(int64_t n, int operand_bits, int64_t max_dim,
                                 const PimConfig& config) {
  if (n <= 0 || max_dim <= 0) {
    return Status::InvalidArgument("n and max_dim must be positive");
  }
  if (FitsInPimArray(n, operand_bits, max_dim, config)) return max_dim;
  // Crossbar demand is monotone in s, so binary search the feasibility
  // boundary.
  int64_t lo = 0;       // highest known-feasible (0 = none).
  int64_t hi = max_dim; // known-infeasible.
  if (FitsInPimArray(n, operand_bits, 1, config)) {
    lo = 1;
  } else {
    return Status::CapacityExceeded(
        "dataset does not fit in PIM array even at s=1");
  }
  while (lo + 1 < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (FitsInPimArray(n, operand_bits, mid, config)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace pimine
