#include "pim/pim_device.h"

#include <algorithm>
#include <sstream>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#if defined(__GNUC__)
#include <immintrin.h>
#endif
#endif

#include "common/logging.h"
#include "obs/obs.h"
#include "pim/crossbar_math.h"
#include "util/bits.h"

namespace pimine {

std::string PimDeviceStats::ToString() const {
  std::ostringstream os;
  os << "vectors=" << programmed_vectors << " dims=" << programmed_dims
     << " ndata=" << data_crossbars << " ngather=" << gather_crossbars
     << " program=" << program_ns / 1e6 << "ms"
     << " batches=" << batch_ops << " queries=" << queries_processed
     << " compute=" << compute_ns / 1e6 << "ms"
     << " pipelined=" << pipelined_ns / 1e6 << "ms"
     << " results=" << results_produced << " queries_per_batch={";
  bool first = true;
  for (const auto& [q, count] : queries_per_batch) {
    if (!first) os << ",";
    first = false;
    os << q << ":" << count;
  }
  os << "}";
  if (delta_vectors != 0 || tombstoned_vectors != 0 || compactions != 0 ||
      worn_rows != 0) {
    os << " delta=" << delta_vectors << " tombstoned=" << tombstoned_vectors
       << " compactions=" << compactions << " row_writes=" << row_writes
       << " worn=" << worn_rows;
  }
  if (fault.Any()) os << " faults={" << fault.ToString() << "}";
  return os.str();
}

PimDevice::PimDevice(const PimConfig& config, const FaultConfig& fault_config,
                     const RecoveryPolicy& recovery)
    : config_(config),
      timing_(config),
      buffer_(config.buffer_bytes),
      fault_config_(fault_config),
      recovery_(recovery) {
  PIMINE_CHECK_OK(config.Validate());
  PIMINE_CHECK_OK(fault_config.Validate());
  if (fault_config_.enabled()) {
    faults_ = std::make_unique<FaultModel>(fault_config_);
  }
}

Status PimDevice::ProgramDataset(const IntMatrix& data, int operand_bits) {
  if (programmed()) {
    return Status::InvalidArgument(
        "ProgramDataset on an already-programmed device: use "
        "ReprogramDataset for an explicit full re-program or ProgramDelta "
        "to append");
  }
  return ProgramInternal(data, operand_bits);
}

Status PimDevice::ReprogramDataset(const IntMatrix& data, int operand_bits) {
  return ProgramInternal(data, operand_bits);
}

Status PimDevice::ProgramInternal(const IntMatrix& data, int operand_bits) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot program an empty dataset");
  }
  if (operand_bits <= 0 || operand_bits > 32) {
    return Status::InvalidArgument("operand_bits must be in [1, 32]");
  }
  const int64_t n = static_cast<int64_t>(data.rows());
  const int64_t s = static_cast<int64_t>(data.cols());
  if (!FitsInPimArray(n, operand_bits, s, config_)) {
    std::ostringstream os;
    os << "dataset (" << n << " x " << s << ", " << operand_bits
       << "-bit) exceeds PIM array capacity of " << config_.num_crossbars
       << " crossbars; compress the dataset first (Theorem 4)";
    return Status::CapacityExceeded(os.str());
  }
  const int64_t limit =
      operand_bits >= 32 ? (1LL << 31) : (1LL << operand_bits);
  for (size_t i = 0; i < data.rows(); ++i) {
    for (int32_t v : data.row(i)) {
      if (v < 0 || static_cast<int64_t>(v) >= limit) {
        return Status::InvalidArgument(
            "PIM operands must be non-negative integers fitting operand_bits");
      }
    }
  }

  data_ = data;
  operand_bits_ = operand_bits;
  base_rows_ = data_.rows();
  tombstone_.assign(data_.rows(), 0);
  tombstone_count_ = 0;
  stats_.programmed_vectors = n;
  stats_.programmed_dims = s;
  stats_.data_crossbars =
      NumDataCrossbars(n, operand_bits, s, config_.crossbar_dim,
                       config_.cell_bits);
  stats_.gather_crossbars =
      NumGatherCrossbars(n, operand_bits, s, config_.crossbar_dim,
                         config_.cell_bits);
  // Row-parallel programming: every used crossbar row is written once.
  const uint64_t rows_written =
      static_cast<uint64_t>(stats_.data_crossbars + stats_.gather_crossbars) *
      config_.crossbar_dim;
  const double program_ns = timing_.ProgramLatencyNs(rows_written);
  stats_.program_ns += program_ns;
  ++stats_.programming_events;
  // Per-slot endurance: every vector slot of the fresh base is written
  // once. Wear marking must precede BuildFaultState so worn slots draw
  // their wear stuck-ats against the new contents.
  ChargeRowWrites(0, data_.rows());
  if (faults_ != nullptr) BuildFaultState();
  obs::AddCounter("pimine_device_programs_total", 1);
  if (obs::Obs* o = obs::Obs::Get()) {
    if (o->trace().options().device_events) {
      o->trace().Complete("device", "program", obs::kDeviceTrack, program_ns,
                          "vectors", static_cast<int64_t>(n), "dims",
                          static_cast<int64_t>(s));
    }
  }
  return Status::OK();
}

namespace {

/// Residue modulus of the checksum column: 2^16 == 1 (mod kResidue), so a
/// 16-bit-aligned single-bit flip shifts the residue by a nonzero
/// 2^(i mod 16) — every single-fault corruption is detected; only
/// multi-fault cancellations mod kResidue can escape.
constexpr uint64_t kResidue = 65535;  // 2^16 - 1.

uint64_t ResidueOf(uint64_t v) { return v % kResidue; }

}  // namespace

auto PimDevice::ComputeObjectStuck(size_t v, uint64_t* stuck_cells) const
    -> std::vector<StuckDelta> {
  // Stuck cells of the data crossbars, folded per object into sparse
  // (dimension, read delta) lists: a cell stuck at `level` instead of its
  // true slice shifts every read of that operand by
  // (level - true_slice) << (slice * cell_bits). Worn slots additionally
  // draw wear stuck-ats (own salt, own rate) for cells the manufacturing
  // process left healthy.
  std::vector<StuckDelta> deltas;
  const size_t s = data_.cols();
  const int cell_bits = config_.cell_bits;
  const int slices = NumSlices(operand_bits_, cell_bits);
  const bool worn = fault_config_.wear_enabled() && RowWorn(v);
  const auto row = data_.row(v);
  for (size_t j = 0; j < s; ++j) {
    const uint64_t cell_base = (v * s + j) * static_cast<uint64_t>(slices);
    int64_t delta = 0;
    bool any = false;
    for (int slice = 0; slice < slices; ++slice) {
      uint8_t level = 0;
      bool stuck = faults_->CellStuck(FaultModel::kDataCellSalt,
                                      cell_base + slice, cell_bits, &level);
      if (!stuck && worn) {
        stuck = faults_->CellStuckAtRate(
            FaultModel::kWearCellSalt, cell_base + slice,
            fault_config_.wear_stuck_rate, cell_bits, &level);
      }
      if (!stuck) continue;
      ++*stuck_cells;
      const int64_t truth = static_cast<int64_t>(
          ExtractSlice(static_cast<uint32_t>(row[j]), slice, cell_bits));
      const int64_t diff = static_cast<int64_t>(level) - truth;
      if (diff != 0) {
        delta += diff << (slice * cell_bits);
        any = true;
      }
    }
    if (any) {
      deltas.push_back({static_cast<uint32_t>(j), delta});
    }
  }
  return deltas;
}

void PimDevice::RebuildGroupChecksum(size_t g, bool count_cells,
                                     uint64_t* stuck_cells) {
  // Per-group checksum columns: column sums of the group's operands mod
  // 2^16 - 1, stored as one extra 16-bit logical column per crossbar set.
  // The checksum cells sit on the same die, so they get their own stuck
  // draws (in a separate salt domain).
  const size_t n = data_.rows();
  const size_t s = data_.cols();
  const int cell_bits = config_.cell_bits;
  const int csum_slices = NumSlices(16, cell_bits);
  const size_t v0 = g * fault_group_size_;
  const size_t v1 = std::min(n, v0 + fault_group_size_);
  for (size_t j = 0; j < s; ++j) {
    uint64_t sum = 0;
    for (size_t v = v0; v < v1; ++v) {
      sum += static_cast<uint32_t>(data_.row(v)[j]);
    }
    csum_[g * s + j] = static_cast<uint32_t>(ResidueOf(sum));
  }
  // A remapped group's checksum lives on clean spare rows: keep it clear.
  if (g < remapped_.size() && remapped_[g]) return;
  csum_stuck_[g].clear();
  for (size_t j = 0; j < s; ++j) {
    const uint64_t cell_base = (g * s + j) * static_cast<uint64_t>(csum_slices);
    int64_t delta = 0;
    bool any = false;
    for (int slice = 0; slice < csum_slices; ++slice) {
      uint8_t level = 0;
      if (!faults_->CellStuck(FaultModel::kChecksumCellSalt, cell_base + slice,
                              cell_bits, &level)) {
        continue;
      }
      if (count_cells) ++*stuck_cells;
      const int64_t truth = static_cast<int64_t>(
          ExtractSlice(csum_[g * s + j], slice, cell_bits));
      const int64_t diff = static_cast<int64_t>(level) - truth;
      if (diff != 0) {
        delta += diff << (slice * cell_bits);
        any = true;
      }
    }
    if (any) {
      csum_stuck_[g].push_back({static_cast<uint32_t>(j), delta});
    }
  }
}

void PimDevice::BuildFaultState() {
  const size_t n = data_.rows();
  const size_t s = data_.cols();
  const int slices = NumSlices(operand_bits_, config_.cell_bits);
  fault_group_size_ = std::max<size_t>(
      1, static_cast<size_t>(config_.crossbar_dim / slices));
  const size_t num_groups = (n + fault_group_size_ - 1) / fault_group_size_;

  stuck_.assign(n, {});
  uint64_t stuck_cells = 0;
  for (size_t v = 0; v < n; ++v) {
    stuck_[v] = ComputeObjectStuck(v, &stuck_cells);
  }
  csum_.assign(num_groups * s, 0);
  csum_stuck_.assign(num_groups, {});
  remapped_.assign(num_groups, 0);
  for (size_t g = 0; g < num_groups; ++g) {
    RebuildGroupChecksum(g, /*count_cells=*/true, &stuck_cells);
  }
  stats_.fault.stuck_cells += stuck_cells;
}

void PimDevice::ExtendFaultState(size_t old_n) {
  const size_t n = data_.rows();
  const size_t s = data_.cols();
  const size_t old_groups =
      (old_n + fault_group_size_ - 1) / fault_group_size_;
  const size_t num_groups = (n + fault_group_size_ - 1) / fault_group_size_;

  // Position-deterministic draws: appending rows one at a time, in bulk, or
  // programming the merged dataset from scratch all land the same stuck
  // cells on the same (object, dim, slice) coordinates.
  stuck_.resize(n);
  uint64_t stuck_cells = 0;
  for (size_t v = old_n; v < n; ++v) {
    const size_t g = v / fault_group_size_;
    // Appends into a remapped group land on its clean spare rows.
    if (g < remapped_.size() && remapped_[g]) continue;
    stuck_[v] = ComputeObjectStuck(v, &stuck_cells);
  }
  csum_.resize(num_groups * s, 0);
  csum_stuck_.resize(num_groups);
  remapped_.resize(num_groups, 0);
  // The partial group the first appended row lands in changes content (its
  // checksum column is rewritten in place — draws already counted); groups
  // past old_groups are brand new.
  for (size_t g = old_n / fault_group_size_; g < num_groups; ++g) {
    RebuildGroupChecksum(g, /*count_cells=*/g >= old_groups, &stuck_cells);
  }
  stats_.fault.stuck_cells += stuck_cells;
}

void PimDevice::ChargeRowWrites(size_t first, size_t count) {
  if (first + count > row_writes_.size()) {
    row_writes_.resize(first + count, 0);
    worn_.resize(first + count, 0);
  }
  const bool wear = fault_config_.wear_enabled();
  for (size_t v = first; v < first + count; ++v) {
    ++row_writes_[v];
    ++stats_.row_writes;
    if (wear && worn_[v] == 0 &&
        row_writes_[v] > fault_config_.endurance_limit) {
      worn_[v] = 1;
      ++stats_.worn_rows;
    }
  }
}

Status PimDevice::ProgramDelta(const IntMatrix& rows) {
  if (!programmed()) {
    return Status::FailedPrecondition(
        "program a base dataset before appending deltas");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("cannot append an empty delta");
  }
  if (rows.cols() != data_.cols()) {
    return Status::InvalidArgument("delta dimensionality mismatch");
  }
  const int64_t s = static_cast<int64_t>(data_.cols());
  const int64_t new_n = static_cast<int64_t>(data_.rows() + rows.rows());
  if (!FitsInPimArray(new_n, operand_bits_, s, config_)) {
    return Status::CapacityExceeded(
        "delta append exceeds PIM array capacity (Theorem 4); compact or "
        "re-shard first");
  }
  const int64_t limit =
      operand_bits_ >= 32 ? (1LL << 31) : (1LL << operand_bits_);
  for (size_t i = 0; i < rows.rows(); ++i) {
    for (int32_t v : rows.row(i)) {
      if (v < 0 || static_cast<int64_t>(v) >= limit) {
        return Status::InvalidArgument(
            "PIM operands must be non-negative integers fitting operand_bits");
      }
    }
  }

  const size_t old_n = data_.rows();
  data_.AppendRows(rows);
  tombstone_.resize(data_.rows(), 0);
  stats_.programmed_vectors = new_n;
  stats_.data_crossbars = NumDataCrossbars(new_n, operand_bits_, s,
                                           config_.crossbar_dim,
                                           config_.cell_bits);
  stats_.gather_crossbars = NumGatherCrossbars(new_n, operand_bits_, s,
                                               config_.crossbar_dim,
                                               config_.cell_bits);
  // Incremental programming: each append slot is one row-parallel write.
  // Repeated addition keeps program_ns bit-identical across any grouping
  // of the same appends.
  double delta_ns = 0.0;
  for (size_t i = 0; i < rows.rows(); ++i) {
    const double row_ns = timing_.ProgramLatencyNs(1);
    stats_.program_ns += row_ns;
    delta_ns += row_ns;
  }
  stats_.delta_vectors += rows.rows();
  ++stats_.delta_program_events;
  ChargeRowWrites(old_n, rows.rows());
  if (faults_ != nullptr) ExtendFaultState(old_n);
  obs::AddCounter("pimine_device_delta_programs_total", 1);
  obs::AddCounter("pimine_device_delta_vectors_total",
                  static_cast<int64_t>(rows.rows()));
  if (obs::Obs* o = obs::Obs::Get()) {
    if (o->trace().options().device_events) {
      o->trace().Complete("device", "program_delta", obs::kDeviceTrack,
                          delta_ns, "vectors",
                          static_cast<int64_t>(rows.rows()), "dims",
                          static_cast<int64_t>(s));
    }
  }
  return Status::OK();
}

Status PimDevice::Tombstone(size_t row) {
  if (!programmed()) {
    return Status::FailedPrecondition("no dataset programmed");
  }
  if (row >= data_.rows()) {
    return Status::InvalidArgument("tombstone row out of range");
  }
  if (tombstone_[row] != 0) {
    return Status::InvalidArgument("row is already tombstoned");
  }
  tombstone_[row] = 1;
  ++tombstone_count_;
  ++stats_.tombstoned_vectors;
  return Status::OK();
}

Status PimDevice::CompactRows(std::span<const uint32_t> live) {
  if (!programmed()) {
    return Status::FailedPrecondition("no dataset programmed");
  }
  if (live.empty()) {
    return Status::InvalidArgument("compaction must keep at least one row");
  }
  for (size_t i = 0; i < live.size(); ++i) {
    if (live[i] >= data_.rows()) {
      return Status::InvalidArgument("compaction index out of range");
    }
    if (i > 0 && live[i] <= live[i - 1]) {
      return Status::InvalidArgument(
          "compaction indices must be strictly ascending");
    }
  }
  IntMatrix next(live.size(), data_.cols());
  for (size_t i = 0; i < live.size(); ++i) {
    const auto src = data_.row(live[i]);
    std::copy(src.begin(), src.end(), next.mutable_row(i).begin());
  }
  // A compaction is a full program of the fresh base: endurance-counted,
  // charged at ProgramLatencyNs over every written crossbar row, fault
  // state rebuilt, tombstones and delta region cleared.
  PIMINE_RETURN_IF_ERROR(ProgramInternal(next, operand_bits_));
  ++stats_.compactions;
  stats_.compacted_rows += live.size();
  obs::AddCounter("pimine_device_compactions_total", 1);
  return Status::OK();
}

Status PimDevice::DotProductAll(std::span<const int32_t> query,
                                std::vector<uint64_t>* out) {
  return DotProductBatch(query, /*num_queries=*/1, out);
}

namespace {

// Cache-blocked, register-tiled uint64 GEMM over the programmed matrix:
// a block of kObjectBlock data rows stays cache-resident while every query
// tile passes over it, and each loaded data value feeds kTile independent
// accumulator chains. uint64 addition is associative mod 2^64, so any
// tiling order produces the exact per-object wraparound result of the
// scalar per-query loop. Plain indexed loops with a compile-time tile
// width so the auto-vectorizer (widest with PIMINE_ENABLE_NATIVE=ON) can
// unroll the accumulator dimension.
constexpr size_t kObjectBlock = 64;

template <size_t kTile>
void DotProductTile(const int32_t* data, size_t s, size_t vb, size_t vend,
                    size_t n, const int32_t* qbase, size_t q,
                    uint64_t* out) {
  // Each loaded data value feeds kTile independent accumulator chains; the
  // chains hide the multiply latency and the compile-time tile width lets
  // the compiler keep every accumulator in a register.
  for (size_t v = vb; v < vend; ++v) {
    const int32_t* row = data + v * s;
    uint64_t acc[kTile] = {};
    for (size_t j = 0; j < s; ++j) {
      const uint64_t d = static_cast<uint32_t>(row[j]);
      for (size_t t = 0; t < kTile; ++t) {
        acc[t] += d * static_cast<uint32_t>(qbase[t * s + j]);
      }
    }
    for (size_t t = 0; t < kTile; ++t) {
      out[(q + t) * n + v] = acc[t];
    }
  }
}

#if defined(__SSE2__)
// SSE2 tile of 8 queries. pmuludq multiplies the low 32 bits of each 64-bit
// lane into a full 64-bit product and paddq wraps mod 2^64, so the vector
// path computes the exact same least-significant-64-bit results as the
// scalar tiles. The packed layout `qpk[j * 8 + t]` (query t's value for
// dimension j, zero-extended into a u64 lane) turns the per-dimension step
// into four aligned-lane multiply-accumulates; GCC at baseline x86-64 does
// not find this shape on its own (the strided scalar tile stays scalar).
void DotProductTileSse8(const int32_t* data, size_t s, size_t vb, size_t vend,
                        size_t n, const uint64_t* qpk, size_t q,
                        uint64_t* out) {
  for (size_t v = vb; v < vend; ++v) {
    const int32_t* row = data + v * s;
    __m128i a0 = _mm_setzero_si128(), a1 = _mm_setzero_si128();
    __m128i a2 = _mm_setzero_si128(), a3 = _mm_setzero_si128();
    for (size_t j = 0; j < s; ++j) {
      const __m128i d =
          _mm_set1_epi64x(static_cast<int64_t>(static_cast<uint32_t>(row[j])));
      const __m128i* qj = reinterpret_cast<const __m128i*>(qpk + j * 8);
      a0 = _mm_add_epi64(a0, _mm_mul_epu32(d, _mm_loadu_si128(qj + 0)));
      a1 = _mm_add_epi64(a1, _mm_mul_epu32(d, _mm_loadu_si128(qj + 1)));
      a2 = _mm_add_epi64(a2, _mm_mul_epu32(d, _mm_loadu_si128(qj + 2)));
      a3 = _mm_add_epi64(a3, _mm_mul_epu32(d, _mm_loadu_si128(qj + 3)));
    }
    uint64_t acc[8];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + 0), a0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + 2), a1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + 4), a2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + 6), a3);
    for (size_t t = 0; t < 8; ++t) {
      out[(q + t) * n + v] = acc[t];
    }
  }
}
#if defined(__GNUC__)
// AVX2 tile of 8 queries over the same packed layout. vpmuludq / vpaddq
// are the SSE2 semantics widened to four 64-bit lanes (low-32 x low-32 ->
// full 64-bit product, addition wrapping mod 2^64), so the results are
// bit-identical to DotProductTileSse8 and the scalar tiles — only the
// accumulator count halves (two 4-lane chains instead of four 2-lane
// ones). Compiled with a function-level target attribute and selected at
// runtime, so baseline builds get the wider tiles on AVX2 hosts without
// any -march flags (PIMINE_ENABLE_NATIVE merely lets the rest of the
// translation unit vectorize too).
__attribute__((target("avx2"))) void DotProductTileAvx8(
    const int32_t* data, size_t s, size_t vb, size_t vend, size_t n,
    const uint64_t* qpk, size_t q, uint64_t* out) {
  for (size_t v = vb; v < vend; ++v) {
    const int32_t* row = data + v * s;
    __m256i a0 = _mm256_setzero_si256();
    __m256i a1 = _mm256_setzero_si256();
    for (size_t j = 0; j < s; ++j) {
      const __m256i d = _mm256_set1_epi64x(
          static_cast<int64_t>(static_cast<uint32_t>(row[j])));
      const __m256i* qj = reinterpret_cast<const __m256i*>(qpk + j * 8);
      a0 = _mm256_add_epi64(a0,
                            _mm256_mul_epu32(d, _mm256_loadu_si256(qj + 0)));
      a1 = _mm256_add_epi64(a1,
                            _mm256_mul_epu32(d, _mm256_loadu_si256(qj + 1)));
    }
    uint64_t acc[8];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 0), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 4), a1);
    for (size_t t = 0; t < 8; ++t) {
      out[(q + t) * n + v] = acc[t];
    }
  }
}

bool HaveAvx2() {
  static const bool have = __builtin_cpu_supports("avx2") != 0;
  return have;
}
#endif  // __GNUC__
#endif  // __SSE2__

void DotProductGemm(const int32_t* data, size_t n, size_t s,
                    const int32_t* queries, size_t num_queries,
                    uint64_t* out) {
#if defined(__SSE2__)
  // Pack full 8-query tiles once per batch into the lane-transposed layout
  // the SSE2 tile consumes. Tiny relative to the GEMM itself (8 u64 per
  // dimension per tile).
  const size_t full8 = num_queries / 8 * 8;
  std::vector<uint64_t> packed(full8 * s);
  for (size_t q = 0; q < full8; q += 8) {
    uint64_t* tile = packed.data() + q * s;
    for (size_t j = 0; j < s; ++j) {
      for (size_t t = 0; t < 8; ++t) {
        tile[j * 8 + t] = static_cast<uint32_t>(queries[(q + t) * s + j]);
      }
    }
  }
#endif
  for (size_t vb = 0; vb < n; vb += kObjectBlock) {
    const size_t vend = std::min(n, vb + kObjectBlock);
    // Cascading tile widths keep every query in the widest tile that fits.
    size_t q = 0;
#if defined(__SSE2__)
#if defined(__GNUC__)
    if (HaveAvx2()) {
      for (; q + 8 <= num_queries; q += 8) {
        DotProductTileAvx8(data, s, vb, vend, n, packed.data() + q * s, q,
                           out);
      }
    }
#endif
    for (; q + 8 <= num_queries; q += 8) {
      DotProductTileSse8(data, s, vb, vend, n, packed.data() + q * s, q, out);
    }
#else
    for (; q + 8 <= num_queries; q += 8) {
      DotProductTile<8>(data, s, vb, vend, n, queries + q * s, q, out);
    }
#endif
    for (; q + 4 <= num_queries; q += 4) {
      DotProductTile<4>(data, s, vb, vend, n, queries + q * s, q, out);
    }
    for (; q + 2 <= num_queries; q += 2) {
      DotProductTile<2>(data, s, vb, vend, n, queries + q * s, q, out);
    }
    for (; q < num_queries; ++q) {
      DotProductTile<1>(data, s, vb, vend, n, queries + q * s, q, out);
    }
  }
}

}  // namespace

Status PimDevice::ApplyFaultsAndRecover(std::span<const int32_t> queries,
                                        size_t num_queries,
                                        std::vector<uint64_t>* out,
                                        std::vector<uint8_t>* suspect,
                                        FaultStats* local) {
  const size_t n = data_.rows();
  const size_t s = data_.cols();
  const size_t num_groups = (n + fault_group_size_ - 1) / fault_group_size_;
  const bool verify = recovery_.verify_mode != VerifyMode::kNone;
  if (recovery_.verify_mode == VerifyMode::kBoundSlack && suspect == nullptr) {
    return Status::FailedPrecondition(
        "VerifyMode::kBoundSlack requires a suspect buffer");
  }
  if (suspect != nullptr) suspect->assign(num_queries * n, 0);

  // Modeled recovery charges: a retry re-streams the query through the
  // group's pipeline; a remap re-programs the group's crossbar rows; a host
  // escalation re-reads the group's raw operands over the internal bus.
  const double retry_ns =
      timing_.BatchDotLatencyNs(static_cast<int64_t>(s), operand_bits_);
  const uint64_t group_rows =
      CeilDiv(static_cast<uint64_t>(s),
              static_cast<uint64_t>(config_.crossbar_dim)) *
      static_cast<uint64_t>(config_.crossbar_dim);
  const double remap_ns = timing_.ProgramLatencyNs(group_rows);

  std::vector<uint64_t> faulty(fault_group_size_);
  std::lock_guard<std::mutex> lock(fault_mu_);
  for (size_t q = 0; q < num_queries; ++q) {
    const int32_t* qv = queries.data() + q * s;
    uint64_t* true_dots = out->data() + q * n;
    for (size_t g = 0; g < num_groups; ++g) {
      const size_t v0 = g * fault_group_size_;
      const size_t v1 = std::min(n, v0 + fault_group_size_);
      const size_t count = v1 - v0;

      // True checksum dot: dot(q, column sums mod 2^16-1). By linearity it
      // is congruent mod 2^16-1 to the sum of the group's true dots (as
      // long as no per-object dot wrapped past 2^64; a wrapped dot shows up
      // as a persistent mismatch and escalates, which stays exact).
      uint64_t csum_true = 0;
      const uint32_t* cs_col = csum_.data() + g * s;
      for (size_t j = 0; j < s; ++j) {
        csum_true += static_cast<uint64_t>(static_cast<uint32_t>(qv[j])) *
                     cs_col[j];
      }

      bool flagged_once = false;
      int attempts = 0;
      for (;;) {
        const uint64_t nonce = faults_->NextOpNonce();
        uint64_t corrupted = 0;
        for (size_t v = v0; v < v1; ++v) {
          uint64_t val = true_dots[v];
          for (const StuckDelta& sd : stuck_[v]) {
            val += static_cast<uint64_t>(sd.delta) *
                   static_cast<uint64_t>(static_cast<uint32_t>(qv[sd.dim]));
          }
          if (faults_->AdcSaturates(nonce, v - v0) &&
              val > faults_->AdcCeiling()) {
            val = faults_->AdcCeiling();
          }
          val ^= faults_->TransientMask(nonce, v - v0);
          faulty[v - v0] = val;
          if (val != true_dots[v]) ++corrupted;
        }
        uint64_t cs = csum_true;
        for (const StuckDelta& sd : csum_stuck_[g]) {
          cs += static_cast<uint64_t>(sd.delta) *
                static_cast<uint64_t>(static_cast<uint32_t>(qv[sd.dim]));
        }
        cs ^= faults_->TransientMask(nonce, count);
        if (cs != csum_true) ++corrupted;
        local->injected += corrupted;

        if (verify) ++local->checksum_checks;
        bool match = true;
        if (verify) {
          uint64_t residue = 0;
          for (size_t v = 0; v < count; ++v) {
            residue = ResidueOf(residue + ResidueOf(faulty[v]));
          }
          match = residue == ResidueOf(cs);
        }
        if (match) {
          // Accepted (clean pass, undetected corruption, or verification
          // off): the group's digitized values are what the host sees.
          local->escaped += corrupted;
          if (corrupted != 0) {
            std::copy(faulty.begin(), faulty.begin() + count, true_dots + v0);
          }
          break;
        }

        local->detected += corrupted;
        if (!flagged_once) {
          ++local->groups_flagged;
          flagged_once = true;
        }
        if (attempts < recovery_.max_retries) {
          ++attempts;
          ++local->retries;
          local->recovery_ns += retry_ns;
          continue;
        }
        if (recovery_.remap_on_permanent && !remapped_[g]) {
          // Re-program the group onto spare rows: its stuck cells (data and
          // checksum column) are gone from here on. Retry budget resets for
          // the post-remap passes.
          remapped_[g] = 1;
          for (size_t v = v0; v < v1; ++v) stuck_[v].clear();
          csum_stuck_[g].clear();
          local->remapped_rows += group_rows;
          local->recovery_ns += remap_ns;
          attempts = 0;
          continue;
        }

        // Unrecoverable on-device: escalate per the verify mode.
        local->escalated_to_host += count;
        switch (recovery_.verify_mode) {
          case VerifyMode::kHostExact:
            // Host re-reads the group's operands and recomputes the dots;
            // `out` already holds the true values, so just charge the
            // transfer (count rows of s operands over the internal bus).
            local->recovery_ns +=
                static_cast<double>(count * s * sizeof(int32_t)) /
                config_.internal_bus_gbps;
            break;
          case VerifyMode::kBoundSlack:
            // Hand over the corrupt values, flagged: the engine widens the
            // affected bounds to their trivial worst case.
            std::copy(faulty.begin(), faulty.begin() + count, true_dots + v0);
            for (size_t v = v0; v < v1; ++v) {
              (*suspect)[q * n + v] = 1;
            }
            break;
          case VerifyMode::kFailOp: {
            std::ostringstream os;
            os << "unrecoverable PIM fault: group " << g << " of query " << q
               << " (op nonce " << nonce << ")"
               << " still fails its residue checksum after "
               << recovery_.max_retries << " retries"
               << (recovery_.remap_on_permanent ? " and a remap" : "");
            return Status::DeviceFault(os.str());
          }
          case VerifyMode::kNone:
            break;  // unreachable: kNone always matches.
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status PimDevice::DotProductBatch(std::span<const int32_t> queries,
                                  size_t num_queries,
                                  std::vector<uint64_t>* out,
                                  std::vector<uint8_t>* suspect) {
  if (out == nullptr) {
    return Status::InvalidArgument(
        "DotProductBatch requires a non-null output vector");
  }
  if (!programmed()) {
    return Status::FailedPrecondition("no dataset programmed");
  }
  if (num_queries == 0) {
    return Status::InvalidArgument(
        "empty query batch: DotProductBatch requires num_queries >= 1");
  }
  if (queries.size() != num_queries * data_.cols()) {
    return Status::InvalidArgument("query batch dimensionality mismatch");
  }
  for (int32_t v : queries) {
    if (v < 0) {
      return Status::InvalidArgument("PIM inputs must be non-negative");
    }
  }

  const size_t n = data_.rows();
  const size_t s = data_.cols();
  out->resize(num_queries * n);
  // Functional emulation of the analog dot-product: exact integer math with
  // natural uint64 wraparound (the least-significant-64-bit rule), computed
  // as one tiled GEMM over the whole batch.
  DotProductGemm(data_.data(), n, s, queries.data(), num_queries,
                 out->data());

  FaultStats local;
  if (faults_ != nullptr) {
    PIMINE_RETURN_IF_ERROR(
        ApplyFaultsAndRecover(queries, num_queries, out, suspect, &local));
  } else if (suspect != nullptr) {
    suspect->clear();
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batch_ops;
    stats_.queries_processed += num_queries;
    ++stats_.queries_per_batch[static_cast<int64_t>(num_queries)];
    // Per-query charges accumulate by repeated addition so the totals stay
    // bit-identical to num_queries single-query operations (one fused
    // `Q * x` add would round differently).
    const double query_ns =
        timing_.BatchDotLatencyNs(static_cast<int64_t>(s), operand_bits_);
    const double query_pj = timing_.BatchDotEnergyPj(
        stats_.data_crossbars + stats_.gather_crossbars, operand_bits_);
    const uint64_t query_bytes = n * sizeof(uint64_t);
    for (size_t q = 0; q < num_queries; ++q) {
      stats_.compute_ns += query_ns;
      stats_.compute_energy_pj += query_pj;
      buffer_.Deposit(query_bytes);
      buffer_.Drain(query_bytes);  // host consumes each result window.
    }
    stats_.pipelined_ns +=
        timing_.BatchDotLatencyNs(static_cast<int64_t>(s), operand_bits_,
                                  static_cast<int64_t>(num_queries));
    stats_.results_produced += num_queries * n;
    stats_.result_bytes_to_host += num_queries * query_bytes;
    stats_.fault.Merge(local);
  }
  if (obs::Obs* o = obs::Obs::Get()) {
    // pimine_device_batch_ops_total legitimately varies with device_batch;
    // every other device counter is invariant under the grouping.
    o->metrics().GetCounter("pimine_device_batch_ops_total").Increment();
    o->metrics().GetCounter("pimine_device_queries_total").Add(num_queries);
    if (local.detected != 0) {
      o->metrics().GetCounter("pimine_faults_detected_total")
          .Add(local.detected);
    }
    if (local.retries != 0) {
      o->metrics().GetCounter("pimine_fault_retries_total").Add(local.retries);
    }
    if (o->trace().options().device_events) {
      const double batch_ns = timing_.BatchDotLatencyNs(
          static_cast<int64_t>(s), operand_bits_,
          static_cast<int64_t>(num_queries));
      o->trace().Complete("device", "dot_batch", obs::kDeviceTrack, batch_ns,
                          "queries", static_cast<int64_t>(num_queries),
                          "vectors", static_cast<int64_t>(n));
      if (local.recovery_ns > 0.0) {
        o->trace().Complete("device", "fault_recovery", obs::kDeviceTrack,
                            local.recovery_ns, "retries",
                            static_cast<int64_t>(local.retries),
                            "remapped_rows",
                            static_cast<int64_t>(local.remapped_rows));
      }
    }
  }
  return Status::OK();
}

Status PimDevice::HostRecomputeBatch(std::span<const int32_t> queries,
                                     size_t num_queries,
                                     std::vector<uint64_t>* out) {
  if (out == nullptr) {
    return Status::InvalidArgument(
        "HostRecomputeBatch requires a non-null output vector");
  }
  if (!programmed()) {
    return Status::FailedPrecondition("no dataset programmed");
  }
  if (num_queries == 0) {
    return Status::InvalidArgument(
        "empty query batch: HostRecomputeBatch requires num_queries >= 1");
  }
  if (queries.size() != num_queries * data_.cols()) {
    return Status::InvalidArgument("query batch dimensionality mismatch");
  }
  for (int32_t v : queries) {
    if (v < 0) {
      return Status::InvalidArgument("PIM inputs must be non-negative");
    }
  }

  const size_t n = data_.rows();
  const size_t s = data_.cols();
  out->resize(num_queries * n);
  DotProductGemm(data_.data(), n, s, queries.data(), num_queries,
                 out->data());

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    // The same per-group escalation charge the recovery ladder applies
    // (VerifyMode::kHostExact), extended over every group of every query:
    // the host re-reads the full operand matrix per query over the internal
    // bus. Repeated per-query addition keeps the total bit-identical across
    // batch groupings.
    const double escalate_ns =
        static_cast<double>(n * s * sizeof(int32_t)) /
        config_.internal_bus_gbps;
    for (size_t q = 0; q < num_queries; ++q) {
      stats_.fault.escalated_to_host += n;
      stats_.fault.recovery_ns += escalate_ns;
    }
  }
  return Status::OK();
}

double PimDevice::SerialDotNsPerQuery() const {
  if (!programmed()) return 0.0;
  return timing_.BatchDotLatencyNs(static_cast<int64_t>(data_.cols()),
                                   operand_bits_);
}

double PimDevice::BatchDotNs(size_t num_queries) const {
  if (!programmed() || num_queries == 0) return 0.0;
  return timing_.BatchDotLatencyNs(static_cast<int64_t>(data_.cols()),
                                   operand_bits_,
                                   static_cast<int64_t>(num_queries));
}

Status PimDevice::StoreAux(uint64_t bytes) {
  if (stats_.aux_bytes_stored + bytes > config_.memory_array_bytes) {
    return Status::CapacityExceeded("ReRAM memory array full");
  }
  stats_.aux_bytes_stored += bytes;
  stats_.program_ns += static_cast<double>(bytes) /
                       static_cast<double>(config_.internal_bus_gbps);
  return Status::OK();
}

double PimDevice::EnduranceRemainingFraction() const {
  const double used = static_cast<double>(stats_.programming_events) /
                      config_.endurance_writes;
  return used >= 1.0 ? 0.0 : 1.0 - used;
}

PimDeviceStats PimDevice::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void PimDevice::ResetOnlineStats() {
  stats_.batch_ops = 0;
  stats_.queries_processed = 0;
  stats_.queries_per_batch.clear();
  stats_.compute_ns = 0.0;
  stats_.pipelined_ns = 0.0;
  stats_.compute_energy_pj = 0.0;
  stats_.results_produced = 0;
  stats_.result_bytes_to_host = 0;
  // Fault counters are per-run; stuck_cells is a property of the programmed
  // array (offline), like program_ns.
  const uint64_t stuck_cells = stats_.fault.stuck_cells;
  stats_.fault = FaultStats();
  stats_.fault.stuck_cells = stuck_cells;
  buffer_.Reset();
}

}  // namespace pimine
