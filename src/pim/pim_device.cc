#include "pim/pim_device.h"

#include <algorithm>
#include <sstream>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/logging.h"
#include "pim/crossbar_math.h"
#include "util/bits.h"

namespace pimine {

std::string PimDeviceStats::ToString() const {
  std::ostringstream os;
  os << "vectors=" << programmed_vectors << " dims=" << programmed_dims
     << " ndata=" << data_crossbars << " ngather=" << gather_crossbars
     << " program=" << program_ns / 1e6 << "ms"
     << " batches=" << batch_ops << " queries=" << queries_processed
     << " compute=" << compute_ns / 1e6 << "ms"
     << " pipelined=" << pipelined_ns / 1e6 << "ms"
     << " results=" << results_produced << " queries_per_batch={";
  bool first = true;
  for (const auto& [q, count] : queries_per_batch) {
    if (!first) os << ",";
    first = false;
    os << q << ":" << count;
  }
  os << "}";
  return os.str();
}

PimDevice::PimDevice(const PimConfig& config)
    : config_(config), timing_(config), buffer_(config.buffer_bytes) {
  PIMINE_CHECK_OK(config.Validate());
}

Status PimDevice::ProgramDataset(const IntMatrix& data, int operand_bits) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot program an empty dataset");
  }
  if (operand_bits <= 0 || operand_bits > 32) {
    return Status::InvalidArgument("operand_bits must be in [1, 32]");
  }
  const int64_t n = static_cast<int64_t>(data.rows());
  const int64_t s = static_cast<int64_t>(data.cols());
  if (!FitsInPimArray(n, operand_bits, s, config_)) {
    std::ostringstream os;
    os << "dataset (" << n << " x " << s << ", " << operand_bits
       << "-bit) exceeds PIM array capacity of " << config_.num_crossbars
       << " crossbars; compress the dataset first (Theorem 4)";
    return Status::CapacityExceeded(os.str());
  }
  const int64_t limit =
      operand_bits >= 32 ? (1LL << 31) : (1LL << operand_bits);
  for (size_t i = 0; i < data.rows(); ++i) {
    for (int32_t v : data.row(i)) {
      if (v < 0 || static_cast<int64_t>(v) >= limit) {
        return Status::InvalidArgument(
            "PIM operands must be non-negative integers fitting operand_bits");
      }
    }
  }

  data_ = data;
  operand_bits_ = operand_bits;
  stats_.programmed_vectors = n;
  stats_.programmed_dims = s;
  stats_.data_crossbars =
      NumDataCrossbars(n, operand_bits, s, config_.crossbar_dim,
                       config_.cell_bits);
  stats_.gather_crossbars =
      NumGatherCrossbars(n, operand_bits, s, config_.crossbar_dim,
                         config_.cell_bits);
  // Row-parallel programming: every used crossbar row is written once.
  const uint64_t rows_written =
      static_cast<uint64_t>(stats_.data_crossbars + stats_.gather_crossbars) *
      config_.crossbar_dim;
  stats_.program_ns += timing_.ProgramLatencyNs(rows_written);
  ++stats_.programming_events;
  return Status::OK();
}

Status PimDevice::DotProductAll(std::span<const int32_t> query,
                                std::vector<uint64_t>* out) {
  return DotProductBatch(query, /*num_queries=*/1, out);
}

namespace {

// Cache-blocked, register-tiled uint64 GEMM over the programmed matrix:
// a block of kObjectBlock data rows stays cache-resident while every query
// tile passes over it, and each loaded data value feeds kTile independent
// accumulator chains. uint64 addition is associative mod 2^64, so any
// tiling order produces the exact per-object wraparound result of the
// scalar per-query loop. Plain indexed loops with a compile-time tile
// width so the auto-vectorizer (widest with PIMINE_ENABLE_NATIVE=ON) can
// unroll the accumulator dimension.
constexpr size_t kObjectBlock = 64;

template <size_t kTile>
void DotProductTile(const int32_t* data, size_t s, size_t vb, size_t vend,
                    size_t n, const int32_t* qbase, size_t q,
                    uint64_t* out) {
  // Each loaded data value feeds kTile independent accumulator chains; the
  // chains hide the multiply latency and the compile-time tile width lets
  // the compiler keep every accumulator in a register.
  for (size_t v = vb; v < vend; ++v) {
    const int32_t* row = data + v * s;
    uint64_t acc[kTile] = {};
    for (size_t j = 0; j < s; ++j) {
      const uint64_t d = static_cast<uint32_t>(row[j]);
      for (size_t t = 0; t < kTile; ++t) {
        acc[t] += d * static_cast<uint32_t>(qbase[t * s + j]);
      }
    }
    for (size_t t = 0; t < kTile; ++t) {
      out[(q + t) * n + v] = acc[t];
    }
  }
}

#if defined(__SSE2__)
// SSE2 tile of 8 queries. pmuludq multiplies the low 32 bits of each 64-bit
// lane into a full 64-bit product and paddq wraps mod 2^64, so the vector
// path computes the exact same least-significant-64-bit results as the
// scalar tiles. The packed layout `qpk[j * 8 + t]` (query t's value for
// dimension j, zero-extended into a u64 lane) turns the per-dimension step
// into four aligned-lane multiply-accumulates; GCC at baseline x86-64 does
// not find this shape on its own (the strided scalar tile stays scalar).
void DotProductTileSse8(const int32_t* data, size_t s, size_t vb, size_t vend,
                        size_t n, const uint64_t* qpk, size_t q,
                        uint64_t* out) {
  for (size_t v = vb; v < vend; ++v) {
    const int32_t* row = data + v * s;
    __m128i a0 = _mm_setzero_si128(), a1 = _mm_setzero_si128();
    __m128i a2 = _mm_setzero_si128(), a3 = _mm_setzero_si128();
    for (size_t j = 0; j < s; ++j) {
      const __m128i d =
          _mm_set1_epi64x(static_cast<int64_t>(static_cast<uint32_t>(row[j])));
      const __m128i* qj = reinterpret_cast<const __m128i*>(qpk + j * 8);
      a0 = _mm_add_epi64(a0, _mm_mul_epu32(d, _mm_loadu_si128(qj + 0)));
      a1 = _mm_add_epi64(a1, _mm_mul_epu32(d, _mm_loadu_si128(qj + 1)));
      a2 = _mm_add_epi64(a2, _mm_mul_epu32(d, _mm_loadu_si128(qj + 2)));
      a3 = _mm_add_epi64(a3, _mm_mul_epu32(d, _mm_loadu_si128(qj + 3)));
    }
    uint64_t acc[8];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + 0), a0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + 2), a1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + 4), a2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + 6), a3);
    for (size_t t = 0; t < 8; ++t) {
      out[(q + t) * n + v] = acc[t];
    }
  }
}
#endif  // __SSE2__

void DotProductGemm(const int32_t* data, size_t n, size_t s,
                    const int32_t* queries, size_t num_queries,
                    uint64_t* out) {
#if defined(__SSE2__)
  // Pack full 8-query tiles once per batch into the lane-transposed layout
  // the SSE2 tile consumes. Tiny relative to the GEMM itself (8 u64 per
  // dimension per tile).
  const size_t full8 = num_queries / 8 * 8;
  std::vector<uint64_t> packed(full8 * s);
  for (size_t q = 0; q < full8; q += 8) {
    uint64_t* tile = packed.data() + q * s;
    for (size_t j = 0; j < s; ++j) {
      for (size_t t = 0; t < 8; ++t) {
        tile[j * 8 + t] = static_cast<uint32_t>(queries[(q + t) * s + j]);
      }
    }
  }
#endif
  for (size_t vb = 0; vb < n; vb += kObjectBlock) {
    const size_t vend = std::min(n, vb + kObjectBlock);
    // Cascading tile widths keep every query in the widest tile that fits.
    size_t q = 0;
#if defined(__SSE2__)
    for (; q + 8 <= num_queries; q += 8) {
      DotProductTileSse8(data, s, vb, vend, n, packed.data() + q * s, q, out);
    }
#else
    for (; q + 8 <= num_queries; q += 8) {
      DotProductTile<8>(data, s, vb, vend, n, queries + q * s, q, out);
    }
#endif
    for (; q + 4 <= num_queries; q += 4) {
      DotProductTile<4>(data, s, vb, vend, n, queries + q * s, q, out);
    }
    for (; q + 2 <= num_queries; q += 2) {
      DotProductTile<2>(data, s, vb, vend, n, queries + q * s, q, out);
    }
    for (; q < num_queries; ++q) {
      DotProductTile<1>(data, s, vb, vend, n, queries + q * s, q, out);
    }
  }
}

}  // namespace

Status PimDevice::DotProductBatch(std::span<const int32_t> queries,
                                  size_t num_queries,
                                  std::vector<uint64_t>* out) {
  PIMINE_CHECK(out != nullptr);
  if (!programmed()) {
    return Status::FailedPrecondition("no dataset programmed");
  }
  if (num_queries == 0) {
    return Status::InvalidArgument("empty query batch");
  }
  if (queries.size() != num_queries * data_.cols()) {
    return Status::InvalidArgument("query batch dimensionality mismatch");
  }
  for (int32_t v : queries) {
    if (v < 0) {
      return Status::InvalidArgument("PIM inputs must be non-negative");
    }
  }

  const size_t n = data_.rows();
  const size_t s = data_.cols();
  out->resize(num_queries * n);
  // Functional emulation of the analog dot-product: exact integer math with
  // natural uint64 wraparound (the least-significant-64-bit rule), computed
  // as one tiled GEMM over the whole batch.
  DotProductGemm(data_.data(), n, s, queries.data(), num_queries,
                 out->data());

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batch_ops;
    stats_.queries_processed += num_queries;
    ++stats_.queries_per_batch[static_cast<int64_t>(num_queries)];
    // Per-query charges accumulate by repeated addition so the totals stay
    // bit-identical to num_queries single-query operations (one fused
    // `Q * x` add would round differently).
    const double query_ns =
        timing_.BatchDotLatencyNs(static_cast<int64_t>(s), operand_bits_);
    const double query_pj = timing_.BatchDotEnergyPj(
        stats_.data_crossbars + stats_.gather_crossbars, operand_bits_);
    const uint64_t query_bytes = n * sizeof(uint64_t);
    for (size_t q = 0; q < num_queries; ++q) {
      stats_.compute_ns += query_ns;
      stats_.compute_energy_pj += query_pj;
      buffer_.Deposit(query_bytes);
      buffer_.Drain(query_bytes);  // host consumes each result window.
    }
    stats_.pipelined_ns +=
        timing_.BatchDotLatencyNs(static_cast<int64_t>(s), operand_bits_,
                                  static_cast<int64_t>(num_queries));
    stats_.results_produced += num_queries * n;
    stats_.result_bytes_to_host += num_queries * query_bytes;
  }
  return Status::OK();
}

Status PimDevice::StoreAux(uint64_t bytes) {
  if (stats_.aux_bytes_stored + bytes > config_.memory_array_bytes) {
    return Status::CapacityExceeded("ReRAM memory array full");
  }
  stats_.aux_bytes_stored += bytes;
  stats_.program_ns += static_cast<double>(bytes) /
                       static_cast<double>(config_.internal_bus_gbps);
  return Status::OK();
}

double PimDevice::EnduranceRemainingFraction() const {
  const double used = static_cast<double>(stats_.programming_events) /
                      config_.endurance_writes;
  return used >= 1.0 ? 0.0 : 1.0 - used;
}

void PimDevice::ResetOnlineStats() {
  stats_.batch_ops = 0;
  stats_.queries_processed = 0;
  stats_.queries_per_batch.clear();
  stats_.compute_ns = 0.0;
  stats_.pipelined_ns = 0.0;
  stats_.compute_energy_pj = 0.0;
  stats_.results_produced = 0;
  stats_.result_bytes_to_host = 0;
  buffer_.Reset();
}

}  // namespace pimine
