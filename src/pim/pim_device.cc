#include "pim/pim_device.h"

#include <sstream>

#include "common/logging.h"
#include "pim/crossbar_math.h"
#include "util/bits.h"

namespace pimine {

std::string PimDeviceStats::ToString() const {
  std::ostringstream os;
  os << "vectors=" << programmed_vectors << " dims=" << programmed_dims
     << " ndata=" << data_crossbars << " ngather=" << gather_crossbars
     << " program=" << program_ns / 1e6 << "ms"
     << " batches=" << batch_ops << " compute=" << compute_ns / 1e6 << "ms"
     << " results=" << results_produced;
  return os.str();
}

PimDevice::PimDevice(const PimConfig& config)
    : config_(config), timing_(config), buffer_(config.buffer_bytes) {
  PIMINE_CHECK_OK(config.Validate());
}

Status PimDevice::ProgramDataset(const IntMatrix& data, int operand_bits) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot program an empty dataset");
  }
  if (operand_bits <= 0 || operand_bits > 32) {
    return Status::InvalidArgument("operand_bits must be in [1, 32]");
  }
  const int64_t n = static_cast<int64_t>(data.rows());
  const int64_t s = static_cast<int64_t>(data.cols());
  if (!FitsInPimArray(n, operand_bits, s, config_)) {
    std::ostringstream os;
    os << "dataset (" << n << " x " << s << ", " << operand_bits
       << "-bit) exceeds PIM array capacity of " << config_.num_crossbars
       << " crossbars; compress the dataset first (Theorem 4)";
    return Status::CapacityExceeded(os.str());
  }
  const int64_t limit =
      operand_bits >= 32 ? (1LL << 31) : (1LL << operand_bits);
  for (size_t i = 0; i < data.rows(); ++i) {
    for (int32_t v : data.row(i)) {
      if (v < 0 || static_cast<int64_t>(v) >= limit) {
        return Status::InvalidArgument(
            "PIM operands must be non-negative integers fitting operand_bits");
      }
    }
  }

  data_ = data;
  operand_bits_ = operand_bits;
  stats_.programmed_vectors = n;
  stats_.programmed_dims = s;
  stats_.data_crossbars =
      NumDataCrossbars(n, operand_bits, s, config_.crossbar_dim,
                       config_.cell_bits);
  stats_.gather_crossbars =
      NumGatherCrossbars(n, operand_bits, s, config_.crossbar_dim,
                         config_.cell_bits);
  // Row-parallel programming: every used crossbar row is written once.
  const uint64_t rows_written =
      static_cast<uint64_t>(stats_.data_crossbars + stats_.gather_crossbars) *
      config_.crossbar_dim;
  stats_.program_ns += timing_.ProgramLatencyNs(rows_written);
  ++stats_.programming_events;
  return Status::OK();
}

Status PimDevice::DotProductAll(std::span<const int32_t> query,
                                std::vector<uint64_t>* out) {
  PIMINE_CHECK(out != nullptr);
  if (!programmed()) {
    return Status::FailedPrecondition("no dataset programmed");
  }
  if (query.size() != data_.cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  for (int32_t v : query) {
    if (v < 0) {
      return Status::InvalidArgument("PIM inputs must be non-negative");
    }
  }

  const size_t n = data_.rows();
  const size_t s = data_.cols();
  out->resize(n);
  // Functional emulation of the analog dot-product: exact integer math with
  // natural uint64 wraparound (the least-significant-64-bit rule).
  const int32_t* base = data_.data();
  for (size_t v = 0; v < n; ++v) {
    const int32_t* row = base + v * s;
    uint64_t acc = 0;
    for (size_t j = 0; j < s; ++j) {
      acc += static_cast<uint64_t>(static_cast<uint32_t>(row[j])) *
             static_cast<uint32_t>(query[j]);
    }
    (*out)[v] = acc;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batch_ops;
    stats_.compute_ns +=
        timing_.BatchDotLatencyNs(static_cast<int64_t>(s), operand_bits_);
    stats_.compute_energy_pj += timing_.BatchDotEnergyPj(
        stats_.data_crossbars + stats_.gather_crossbars, operand_bits_);
    stats_.results_produced += n;
    const uint64_t batch_bytes = n * sizeof(uint64_t);
    stats_.result_bytes_to_host += batch_bytes;
    buffer_.Deposit(batch_bytes);
    buffer_.Drain(batch_bytes);  // host consumes the batch before the next.
  }
  return Status::OK();
}

Status PimDevice::StoreAux(uint64_t bytes) {
  if (stats_.aux_bytes_stored + bytes > config_.memory_array_bytes) {
    return Status::CapacityExceeded("ReRAM memory array full");
  }
  stats_.aux_bytes_stored += bytes;
  stats_.program_ns += static_cast<double>(bytes) /
                       static_cast<double>(config_.internal_bus_gbps);
  return Status::OK();
}

double PimDevice::EnduranceRemainingFraction() const {
  const double used = static_cast<double>(stats_.programming_events) /
                      config_.endurance_writes;
  return used >= 1.0 ? 0.0 : 1.0 - used;
}

void PimDevice::ResetOnlineStats() {
  stats_.batch_ops = 0;
  stats_.compute_ns = 0.0;
  stats_.compute_energy_pj = 0.0;
  stats_.results_produced = 0;
  stats_.result_bytes_to_host = 0;
  buffer_.Reset();
}

}  // namespace pimine
