#include "pim/crossbar.h"

#include <algorithm>

#include "common/logging.h"
#include "util/bits.h"

namespace pimine {

Crossbar::Crossbar(int dim, int cell_bits)
    : dim_(dim),
      cell_bits_(cell_bits),
      cells_(static_cast<size_t>(dim) * dim, 0) {
  PIMINE_CHECK(dim > 0 && cell_bits > 0 && cell_bits <= 8)
      << "bad crossbar geometry: dim=" << dim << " h=" << cell_bits;
}

int Crossbar::SlicesPerOperand(int operand_bits) const {
  return NumSlices(operand_bits, cell_bits_);
}

int Crossbar::NumLogicalColumns(int operand_bits) const {
  return dim_ / SlicesPerOperand(operand_bits);
}

Status Crossbar::ProgramVector(int logical_col,
                               std::span<const uint32_t> operands,
                               int operand_bits) {
  if (operand_bits <= 0 || operand_bits > 32) {
    return Status::InvalidArgument("operand_bits must be in [1, 32]");
  }
  const int slices = SlicesPerOperand(operand_bits);
  if (logical_col < 0 || logical_col >= NumLogicalColumns(operand_bits)) {
    return Status::OutOfRange("logical column out of range");
  }
  if (operands.size() > static_cast<size_t>(dim_)) {
    return Status::OutOfRange("vector longer than crossbar dimension");
  }
  const uint64_t limit =
      operand_bits >= 32 ? (1ULL << 32) : (1ULL << operand_bits);
  const int base_col = logical_col * slices;
  for (size_t row = 0; row < operands.size(); ++row) {
    if (operands[row] >= limit) {
      return Status::InvalidArgument("operand exceeds operand_bits");
    }
    for (int j = 0; j < slices; ++j) {
      cells_[row * dim_ + base_col + j] = static_cast<uint8_t>(
          ExtractSlice(operands[row], j, cell_bits_));
      ++cell_writes_;
    }
  }
  // Unused rows of this logical column are cleared (zero conductance).
  for (size_t row = operands.size(); row < static_cast<size_t>(dim_); ++row) {
    for (int j = 0; j < slices; ++j) {
      cells_[row * dim_ + base_col + j] = 0;
      ++cell_writes_;
    }
  }
  return Status::OK();
}

Result<Crossbar::DotResult> Crossbar::DotProduct(
    std::span<const uint32_t> input, int input_bits, int operand_bits,
    int dac_bits) const {
  return DotProduct(input, input_bits, operand_bits, dac_bits,
                    /*faults=*/nullptr);
}

Result<Crossbar::DotResult> Crossbar::DotProduct(
    std::span<const uint32_t> input, int input_bits, int operand_bits,
    int dac_bits, FaultModel* faults) const {
  if (input.size() > static_cast<size_t>(dim_)) {
    return Status::OutOfRange("input longer than crossbar dimension");
  }
  if (dac_bits <= 0 || dac_bits > input_bits || input_bits > 32) {
    return Status::InvalidArgument("bad input/dac bit widths");
  }
  const int slices = SlicesPerOperand(operand_bits);
  const int logical_cols = NumLogicalColumns(operand_bits);
  const int input_cycles = NumSlices(input_bits, dac_bits);
  if (faults != nullptr && !faults->enabled()) faults = nullptr;
  const uint64_t nonce = faults != nullptr ? faults->NextOpNonce() : 0;
  // Width of one digitized column sample: dim rows of (dac-slice * cell)
  // products. Transient flips land inside it; ADC saturation drops its MSB.
  const uint64_t max_current = static_cast<uint64_t>(dim_) *
                               ((1ULL << dac_bits) - 1) *
                               ((1ULL << cell_bits_) - 1);
  const int sample_bits = FloorLog2(std::max<uint64_t>(1, max_current)) + 1;
  const uint64_t adc_full_scale = (1ULL << (sample_bits - 1)) - 1;

  DotResult out;
  out.values.assign(logical_cols, 0);
  out.cycles = input_cycles;

  // Cycle-by-cycle emulation of the pipeline in Fig. 2: each DAC cycle
  // injects one h'-bit input slice; the analog column currents are sampled,
  // digitized, and shifted into the running sums by the S&A unit. The DAC
  // drives every column with the same slice, so each cycle's input slices
  // are extracted once per row, not once per (row, column) pair.
  std::vector<uint64_t> input_slices(input.size());
  for (int t = 0; t < input_cycles; ++t) {
    for (size_t row = 0; row < input.size(); ++row) {
      input_slices[row] = ExtractSlice(input[row], t, dac_bits);
    }
    for (int col = 0; col < logical_cols * slices; ++col) {
      uint64_t column_current = 0;
      for (size_t row = 0; row < input.size(); ++row) {
        uint64_t cell = cells_[row * dim_ + col];
        if (faults != nullptr) {
          uint8_t level = 0;
          if (faults->CellStuck(FaultModel::kCrossbarCellSalt,
                                static_cast<uint64_t>(row) * dim_ + col,
                                cell_bits_, &level)) {
            cell = level;
          }
        }
        column_current += input_slices[row] * cell;
      }
      if (faults != nullptr) {
        const uint64_t sample = static_cast<uint64_t>(t) * dim_ + col;
        if (faults->AdcSaturates(nonce, sample) &&
            column_current > adc_full_scale) {
          column_current = adc_full_scale;
        }
        column_current ^= faults->TransientMask(nonce, sample, sample_bits);
      }
      const int logical = col / slices;
      const int cell_slice = col % slices;
      // Shift by input-cycle weight and cell-slice weight; uint64 wraparound
      // implements the least-significant-64-bit truncation rule.
      const int shift = t * dac_bits + cell_slice * cell_bits_;
      out.values[logical] += shift >= 64 ? 0 : (column_current << shift);
    }
  }
  return out;
}

uint8_t Crossbar::cell(int row, int col) const {
  PIMINE_CHECK(row >= 0 && row < dim_ && col >= 0 && col < dim_);
  return cells_[static_cast<size_t>(row) * dim_ + col];
}

}  // namespace pimine
