#ifndef PIMINE_PIM_CHAOS_H_
#define PIMINE_PIM_CHAOS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pimine {

/// Availability-fault kinds of the chaos harness. These model the fleet
/// plane — a replica device or its interconnect link becoming unreachable —
/// complementing the data-plane FaultModel (bit flips inside a crossbar).
enum class ChaosEventKind {
  /// The replica device dies at `at_ns` and never recovers.
  kDeviceDeath,
  /// The replica stalls (stops answering) during [at_ns, until_ns).
  kTransientStall,
  /// The shard's host<->device link drops during [at_ns, until_ns):
  /// every replica of the shard is unreachable for the window.
  kLinkFault,
};

std::string_view ChaosEventKindName(ChaosEventKind kind);

/// One scheduled availability outage.
struct ChaosEvent {
  uint64_t at_ns = 0;
  /// Exclusive end of the outage; ChaosSchedule::kNoRecovery for a death.
  uint64_t until_ns = 0;
  ChaosEventKind kind = ChaosEventKind::kDeviceDeath;
  uint32_t shard = 0;
  uint32_t replica = 0;  // ignored for kLinkFault (the whole shard drops).
};

/// Knobs of one seeded chaos schedule: how many events of each kind to
/// draw over the horizon, and how long the transient windows last.
struct ChaosConfig {
  int device_deaths = 0;
  int stalls = 0;
  int link_faults = 0;
  /// Event instants are drawn uniformly in [0, horizon_ns). Must be > 0
  /// when any event count is.
  uint64_t horizon_ns = 0;
  /// Width of one transient-stall window.
  uint64_t stall_ns = 200'000;
  /// Width of one interconnect-outage window.
  uint64_t link_fault_ns = 100'000;
  uint64_t seed = 0xC7A05u;

  bool enabled() const {
    return device_deaths > 0 || stalls > 0 || link_faults > 0;
  }
  Status Validate() const;
};

/// A deterministic, bit-for-bit replayable availability-fault schedule.
///
/// Every placement and instant is a stateless SplitMix64 hash of
/// (seed, kind, index) — never an RNG state — and every liveness query
/// (ReplicaDown / LinkDown) is a pure function of the queried instant. Two
/// schedulers asking in different orders, from different threads, or at
/// different shard fan-outs therefore always observe the same fleet: the
/// property that lets the serving layer's single-threaded virtual-clock
/// pass and its multi-threaded execution pass agree exactly.
class ChaosSchedule {
 public:
  static constexpr uint64_t kNoRecovery = ~0ull;

  ChaosSchedule() = default;

  /// Draws `config`'s events against a (shards x replicas) fleet.
  static Result<ChaosSchedule> Generate(const ChaosConfig& config,
                                        uint32_t shards, uint32_t replicas);

  /// Explicit schedule (tests): the events verbatim, deterministically
  /// ordered by (at_ns, kind, shard, replica).
  static ChaosSchedule FromEvents(std::vector<ChaosEvent> events,
                                  uint32_t shards, uint32_t replicas);

  bool enabled() const { return !events_.empty(); }
  /// Is replica `replica` of `shard` unreachable at `now_ns` (its own
  /// death/stall, or its shard's link outage)?
  bool ReplicaDown(uint32_t shard, uint32_t replica, uint64_t now_ns) const;
  /// Is `shard`'s host<->device link down at `now_ns`?
  bool LinkDown(uint32_t shard, uint64_t now_ns) const;
  /// Replicas of `shard` reachable at `now_ns` (0 during a link outage).
  uint32_t HealthyReplicas(uint32_t shard, uint64_t now_ns) const;

  uint32_t shards() const { return shards_; }
  uint32_t replicas() const { return replicas_; }
  const std::vector<ChaosEvent>& events() const { return events_; }
  std::string ToString() const;

 private:
  std::vector<ChaosEvent> events_;
  uint32_t shards_ = 1;
  uint32_t replicas_ = 1;
};

/// Seeded-jitter exponential backoff charged before failover attempt
/// `attempt` (1-based count of failures so far):
///   base_ns * 2^(attempt-1) + hash(seed, token, attempt) % (jitter_ns + 1).
/// The jitter is a pure hash — token is derived from the dispatch instant,
/// so the virtual-clock planner and the executing ladder, walking the same
/// dispatch, charge byte-identical waits regardless of thread interleaving.
uint64_t FailoverBackoffNs(uint64_t base_ns, uint64_t jitter_ns, uint64_t seed,
                           uint64_t token, int attempt);

}  // namespace pimine

#endif  // PIMINE_PIM_CHAOS_H_
