#include "pim/pim_config.h"

#include <sstream>

#include "util/bits.h"

namespace pimine {

Status PimConfig::Validate() const {
  if (crossbar_dim <= 0 || !IsPowerOfTwo(static_cast<uint64_t>(crossbar_dim))) {
    return Status::InvalidArgument("crossbar_dim must be a positive power of two");
  }
  if (cell_bits <= 0 || cell_bits > 8) {
    return Status::InvalidArgument("cell_bits must be in [1, 8]");
  }
  if (operand_bits <= 0 || operand_bits > 32) {
    return Status::InvalidArgument("operand_bits must be in [1, 32]");
  }
  if (num_crossbars <= 0) {
    return Status::InvalidArgument("num_crossbars must be positive");
  }
  if (dac_bits <= 0 || dac_bits > operand_bits) {
    return Status::InvalidArgument("dac_bits must be in [1, operand_bits]");
  }
  if (read_ns <= 0.0 || write_ns <= 0.0) {
    return Status::InvalidArgument("latencies must be positive");
  }
  if (interconnect_gbps <= 0.0 || interconnect_hop_ns < 0.0) {
    return Status::InvalidArgument(
        "interconnect_gbps must be positive and interconnect_hop_ns "
        "non-negative");
  }
  return Status::OK();
}

std::string PimConfig::ToString() const {
  std::ostringstream os;
  os << "ReRAM crossbar: " << crossbar_dim << "x" << crossbar_dim << " "
     << cell_bits << "-bit cells; read/write " << read_ns << "/" << write_ns
     << " ns; " << num_crossbars << " crossbars ("
     << TotalCellBits() / 8 / (1024 * 1024) << " MB PIM array); buffer "
     << buffer_bytes / (1024 * 1024) << " MB eDRAM; bus " << internal_bus_gbps
     << " GB/s; interconnect " << interconnect_gbps << " GB/s + "
     << interconnect_hop_ns << " ns/hop; batches "
     << (pipelined_batches ? "pipelined" : "sequential");
  return os.str();
}

}  // namespace pimine
