#ifndef PIMINE_PIM_PIM_DEVICE_H_
#define PIMINE_PIM_PIM_DEVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/matrix.h"
#include "pim/buffer_array.h"
#include "pim/fault_model.h"
#include "pim/pim_config.h"
#include "pim/timing.h"

namespace pimine {

/// Accumulated accounting for one PimDevice.
struct PimDeviceStats {
  // Layout of the programmed dataset (Theorem 4 quantities).
  int64_t programmed_vectors = 0;
  int64_t programmed_dims = 0;
  int64_t data_crossbars = 0;
  int64_t gather_crossbars = 0;
  // Offline costs.
  double program_ns = 0.0;
  uint64_t programming_events = 0;  // full-array programs (endurance).
  uint64_t aux_bytes_stored = 0;    // Φ values kept in the memory array.
  // Mutation accounting (all cumulative/monotone; zero on a static device).
  uint64_t delta_vectors = 0;        // vectors appended via ProgramDelta.
  uint64_t delta_program_events = 0;  // ProgramDelta calls.
  uint64_t tombstoned_vectors = 0;   // Tombstone calls accepted.
  uint64_t compactions = 0;          // CompactRows passes.
  uint64_t compacted_rows = 0;       // vectors rewritten by compactions.
  uint64_t row_writes = 0;           // per-slot write events (wear model).
  uint64_t worn_rows = 0;            // slots past the endurance limit.
  // Online costs. Device batches group Q >= 1 queries into one operation;
  // every field except `batch_ops`, `queries_per_batch` and `pipelined_ns`
  // is invariant under the grouping: running the same queries at any
  // device-batch size (and from any number of host threads) produces
  // bit-identical values.
  /// Batched operations issued (one per DotProductAll / DotProductBatch).
  uint64_t batch_ops = 0;
  /// Total queries matched across all batches.
  uint64_t queries_processed = 0;
  /// How many batches carried exactly Q queries, keyed by Q.
  std::map<int64_t, uint64_t> queries_per_batch;
  /// Serial-equivalent modeled time: every query charged the full
  /// single-query pass latency. Invariant under batching — this is the
  /// figure the paper's single-query experiments report.
  double compute_ns = 0.0;
  /// Modeled device-occupancy time with batch pipelining
  /// (PimTimingModel::BatchDotLatencyNs(s, bits, Q) per batch). Equals
  /// compute_ns bit-for-bit when every batch has Q = 1; smaller when
  /// queries stream back-to-back.
  double pipelined_ns = 0.0;
  /// Modeled crossbar + ADC energy of the batches (picojoules). Energy is
  /// proportional to work, so it is not amortized by batching.
  double compute_energy_pj = 0.0;
  uint64_t results_produced = 0;
  uint64_t result_bytes_to_host = 0;
  /// Fault-injection and recovery accounting (all zero — and omitted from
  /// ToString — when the device runs fault-free).
  FaultStats fault;

  std::string ToString() const;
};

/// Facade over the ReRAM-based memory bank of Fig. 4(b): memory array
/// (plain storage), PIM array (the programmed dataset + dot-product
/// engine), buffer array (result staging), and controller (this class).
///
/// Functional behaviour is bit-exact integer arithmetic: `DotProductAll`
/// returns sum_i data[v][i] * query[i] truncated to the least-significant
/// 64 bits, the paper's overflow rule (§VI-B). Timing is accumulated from
/// the PimTimingModel. Cross-checked against the cycle-level `Crossbar`
/// model in tests.
class PimDevice {
 public:
  /// `fault_config` enables the ReRAM fault model (stuck cells, transient
  /// flips, ADC saturation) and `recovery` the checksum-based recovery path
  /// (see fault_model.h). The defaults keep the device fault-free and
  /// bit-identical to the pre-fault-model behaviour.
  explicit PimDevice(const PimConfig& config = PimConfig(),
                     const FaultConfig& fault_config = FaultConfig(),
                     const RecoveryPolicy& recovery = RecoveryPolicy());

  /// Programs a quantized dataset (one vector per row; all values must be
  /// non-negative and fit `operand_bits`). Fails with CapacityExceeded when
  /// Theorem 4's condition is violated — callers are expected to compress
  /// the dataset first (core/memory_planner). Programming an
  /// already-programmed device is an InvalidArgument: overwriting a live
  /// corpus silently was a footgun, so re-programs must go through
  /// ReprogramDataset (explicit, endurance-counted) or ProgramDelta
  /// (incremental append).
  Status ProgramDataset(const IntMatrix& data, int operand_bits = 32);

  /// Explicit full re-program: replaces whatever is programmed (if
  /// anything) with `data`, charged at full program cost and counted
  /// against write endurance. Clears tombstones and the delta region;
  /// fault state is rebuilt for the new contents (per-slot wear counters
  /// persist — the physical rows are the same cells).
  Status ReprogramDataset(const IntMatrix& data, int operand_bits = 32);

  /// Appends `rows` (same dimensionality and operand width as the
  /// programmed dataset) to the delta region: each appended vector is one
  /// incremental row-parallel write charged at ProgramLatencyNs(1), so any
  /// grouping of appends accumulates bit-identical program time. Fails
  /// with CapacityExceeded when the grown dataset would violate Theorem 4.
  /// Not safe concurrently with in-flight DotProductBatch calls — callers
  /// quiesce queries around mutations (the engines do).
  Status ProgramDelta(const IntMatrix& rows);

  /// Marks one row deleted. The physical row keeps computing dot products
  /// (the analog pass is row-parallel either way); readers consult
  /// tombstoned() to route bounds around it. InvalidArgument when the row
  /// is out of range or already tombstoned.
  Status Tombstone(size_t row);

  /// Rewrites the live rows (`live`: strictly ascending physical indices)
  /// into a fresh base in one compaction pass, charged at full program
  /// cost. Tombstones and the delta region are cleared; each surviving
  /// vector's new slot gets one endurance write.
  Status CompactRows(std::span<const uint32_t> live);

  /// True once a dataset is programmed.
  bool programmed() const { return !data_.empty(); }

  /// Physical rows currently programmed (base + delta, incl. tombstoned).
  size_t num_rows() const { return data_.rows(); }
  /// Rows in the delta (append) region since the last full (re)program.
  size_t delta_rows() const { return data_.rows() - base_rows_; }
  /// Rows currently tombstoned.
  size_t tombstoned_rows() const { return tombstone_count_; }
  /// Rows that still count (num_rows() - tombstoned_rows()).
  size_t live_rows() const { return data_.rows() - tombstone_count_; }
  bool tombstoned(size_t row) const {
    return row < tombstone_.size() && tombstone_[row] != 0;
  }
  /// Times physical slot `slot` has been programmed (base programs, delta
  /// appends and compaction rewrites all count once per touched slot).
  uint64_t RowWrites(size_t slot) const {
    return slot < row_writes_.size() ? row_writes_[slot] : 0;
  }
  /// True when slot `slot` has exceeded FaultConfig::endurance_limit.
  bool RowWorn(size_t slot) const {
    return slot < worn_.size() && worn_[slot] != 0;
  }

  /// Matches `query` against every programmed vector. Query values must be
  /// non-negative. Results are written into `out` (resized to N) and the
  /// batch is deposited into the buffer array. Time is charged to stats.
  /// Safe to call concurrently from several host threads once programmed:
  /// each batch's stats/buffer accounting is applied atomically, and the
  /// per-batch charges are identical regardless of interleaving, so the
  /// modeled totals match a serial run exactly.
  Status DotProductAll(std::span<const int32_t> query,
                       std::vector<uint64_t>* out);

  /// Batched form of DotProductAll: matches `num_queries` queries (row-major
  /// in `queries`, each data_.cols() values, all non-negative) against every
  /// programmed vector in one device operation. `out` is resized to
  /// num_queries * N; query q's dot products occupy out[q*N, (q+1)*N) — the
  /// per-query views callers slice out are laid out exactly like a
  /// DotProductAll result. Functionally bit-identical to num_queries
  /// DotProductAll calls (uint64 wraparound per object is associative, so
  /// the tiled kernel cannot change any result); stats are charged once per
  /// batch under the stats mutex, with compute/energy/result accounting
  /// equal to the per-query path and the pipelined batch latency recorded
  /// in stats.pipelined_ns. The host-side kernel is a cache-blocked,
  /// register-tiled integer GEMM (objects x queries); build with
  /// PIMINE_ENABLE_NATIVE=ON to let it use the host's widest SIMD ISA.
  /// With the fault model enabled, every result group (the logical columns
  /// of one data-crossbar set) carries a mod-(2^16 - 1) residue checksum
  /// column; flagged groups are retried / remapped / escalated per the
  /// RecoveryPolicy, with recovery time charged to stats.fault.recovery_ns.
  /// `suspect` (optional) is sized num_queries * N and set to 1 for results
  /// that remain possibly corrupt (VerifyMode::kBoundSlack only; required
  /// in that mode). Fault-free devices leave `suspect` empty.
  Status DotProductBatch(std::span<const int32_t> queries, size_t num_queries,
                         std::vector<uint64_t>* out,
                         std::vector<uint8_t>* suspect = nullptr);

  /// Host-exact fallback for a device that cannot serve DotProductBatch —
  /// the fleet fail-over path when a shard surfaces a DeviceFault under
  /// VerifyMode::kFailOp. The host re-reads the programmed operands over
  /// the internal bus and recomputes the exact wraparound dot products,
  /// bypassing the fault model entirely. Charges only fault-recovery
  /// accounting (stats.fault.escalated_to_host, stats.fault.recovery_ns):
  /// the crossbars never ran the pass, so compute/energy/batch stats stay
  /// untouched and the fleet's max-over-shards device time picks a healthy
  /// shard.
  Status HostRecomputeBatch(std::span<const int32_t> queries,
                            size_t num_queries, std::vector<uint64_t>* out);

  /// Auxiliary storage in the ReRAM memory array (pre-computed Φ values).
  Status StoreAux(uint64_t bytes);

  /// Remaining full-array reprograms before the endurance budget (the
  /// conservative 1e8 writes/cell) is exhausted.
  double EnduranceRemainingFraction() const;

  const PimDeviceStats& stats() const { return stats_; }
  /// Copy of stats_ taken under the stats mutex — the accessor telemetry
  /// exporters use while DotProductBatch calls may be in flight (stats()
  /// returns an unguarded reference and is only safe quiescent).
  PimDeviceStats StatsSnapshot() const;
  void ResetOnlineStats();

  /// Serial-equivalent modeled time one query spends on the device: the full
  /// single-query pass latency over the programmed dataset, identical for
  /// every query regardless of device-batch grouping (the per-query figure
  /// stats_.compute_ns accumulates). 0 before a dataset is programmed.
  double SerialDotNsPerQuery() const;

  /// Modeled pipelined occupancy of ONE DotProductBatch carrying
  /// `num_queries` queries (PimTimingModel::BatchDotLatencyNs over the
  /// programmed geometry). Pure — charges nothing; the figure the serving
  /// scheduler uses as the virtual-clock service time of a dispatch.
  /// 0 before a dataset is programmed.
  double BatchDotNs(size_t num_queries) const;

  const PimConfig& config() const { return config_; }
  const BufferArray& buffer() const { return buffer_; }
  const PimTimingModel& timing() const { return timing_; }
  const FaultConfig& fault_config() const { return fault_config_; }
  const RecoveryPolicy& recovery_policy() const { return recovery_; }

  /// Objects per checksum-protected result group (the logical columns of
  /// one data-crossbar set). 1 when no dataset is programmed.
  size_t fault_group_size() const { return fault_group_size_; }

 private:
  /// One stuck cell's aggregate effect on a stored operand: reading
  /// dimension `dim` yields value + delta instead of value.
  struct StuckDelta {
    uint32_t dim;
    int64_t delta;
  };

  /// Shared tail of ProgramDataset / ReprogramDataset / CompactRows:
  /// validates operands, installs `data` as the fresh base, charges the
  /// full row-parallel program and per-slot endurance writes, and rebuilds
  /// fault state.
  Status ProgramInternal(const IntMatrix& data, int operand_bits);

  /// Bumps the per-slot write counters for physical slots
  /// [first, first + count) and marks slots that crossed the endurance
  /// limit as worn (wear model enabled only).
  void ChargeRowWrites(size_t first, size_t count);

  /// Sparse stuck-cell deltas for object `v` against its current operands:
  /// manufacturing stuck-ats (kDataCellSalt at cell_rate) plus, for worn
  /// slots, wear stuck-ats (kWearCellSalt at wear_stuck_rate).
  std::vector<StuckDelta> ComputeObjectStuck(size_t v, uint64_t* stuck_cells)
      const;

  /// Recomputes group `g`'s checksum column against the current operands
  /// and redraws its stuck cells (skipped for remapped groups — they live
  /// on clean spare rows). `count_cells` guards double-counting draws that
  /// were already tallied when the group first existed.
  void RebuildGroupChecksum(size_t g, bool count_cells,
                            uint64_t* stuck_cells);

  /// Samples stuck cells and builds the checksum columns for the newly
  /// programmed dataset (fault model enabled only).
  void BuildFaultState();

  /// Incremental fault-state update for rows appended at [old_n,
  /// data_.rows()): position-deterministic stuck draws for the new vectors
  /// and checksum recomputation for the affected groups — byte-identical
  /// state to a full BuildFaultState over the grown dataset.
  void ExtendFaultState(size_t old_n);

  /// Fault phase of DotProductBatch: perturbs, verifies and recovers the
  /// true dot products in `out` group by group. Appends this batch's fault
  /// accounting to `local` (merged into stats_ under stats_mu_ later).
  Status ApplyFaultsAndRecover(std::span<const int32_t> queries,
                               size_t num_queries, std::vector<uint64_t>* out,
                               std::vector<uint8_t>* suspect,
                               FaultStats* local);

  PimConfig config_;
  PimTimingModel timing_;
  BufferArray buffer_;
  IntMatrix data_;
  int operand_bits_ = 32;
  /// Rows in the base region; data_.rows() - base_rows_ is the delta.
  size_t base_rows_ = 0;
  /// Tombstone bitmap over data_ rows + current count.
  std::vector<uint8_t> tombstone_;
  size_t tombstone_count_ = 0;
  /// Per-physical-slot write counters + worn flags. Never reset: the same
  /// physical rows back every (re)program, so wear accumulates for life.
  std::vector<uint32_t> row_writes_;
  std::vector<uint8_t> worn_;
  PimDeviceStats stats_;
  /// Guards stats_ and buffer_ against concurrent DotProductAll batches.
  mutable std::mutex stats_mu_;

  // Fault model state (empty / null when fault_config_ is disabled).
  FaultConfig fault_config_;
  RecoveryPolicy recovery_;
  std::unique_ptr<FaultModel> faults_;
  size_t fault_group_size_ = 1;
  std::vector<std::vector<StuckDelta>> stuck_;       // per object.
  std::vector<std::vector<StuckDelta>> csum_stuck_;  // per group checksum.
  std::vector<uint32_t> csum_;  // per group: column sums mod 2^16 - 1.
  std::vector<uint8_t> remapped_;  // per group: spare rows in use.
  /// Serializes the fault/recovery phase: remapping mutates stuck_ and
  /// remapped_, which concurrent batches also read.
  mutable std::mutex fault_mu_;
};

}  // namespace pimine

#endif  // PIMINE_PIM_PIM_DEVICE_H_
