#ifndef PIMINE_PIM_PIM_DEVICE_H_
#define PIMINE_PIM_PIM_DEVICE_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/matrix.h"
#include "pim/buffer_array.h"
#include "pim/pim_config.h"
#include "pim/timing.h"

namespace pimine {

/// Accumulated accounting for one PimDevice.
struct PimDeviceStats {
  // Layout of the programmed dataset (Theorem 4 quantities).
  int64_t programmed_vectors = 0;
  int64_t programmed_dims = 0;
  int64_t data_crossbars = 0;
  int64_t gather_crossbars = 0;
  // Offline costs.
  double program_ns = 0.0;
  uint64_t programming_events = 0;  // full-array programs (endurance).
  uint64_t aux_bytes_stored = 0;    // Φ values kept in the memory array.
  // Online costs.
  uint64_t batch_ops = 0;
  double compute_ns = 0.0;
  /// Modeled crossbar + ADC energy of the batches (picojoules).
  double compute_energy_pj = 0.0;
  uint64_t results_produced = 0;
  uint64_t result_bytes_to_host = 0;

  std::string ToString() const;
};

/// Facade over the ReRAM-based memory bank of Fig. 4(b): memory array
/// (plain storage), PIM array (the programmed dataset + dot-product
/// engine), buffer array (result staging), and controller (this class).
///
/// Functional behaviour is bit-exact integer arithmetic: `DotProductAll`
/// returns sum_i data[v][i] * query[i] truncated to the least-significant
/// 64 bits, the paper's overflow rule (§VI-B). Timing is accumulated from
/// the PimTimingModel. Cross-checked against the cycle-level `Crossbar`
/// model in tests.
class PimDevice {
 public:
  explicit PimDevice(const PimConfig& config = PimConfig());

  /// Programs a quantized dataset (one vector per row; all values must be
  /// non-negative and fit `operand_bits`). Fails with CapacityExceeded when
  /// Theorem 4's condition is violated — callers are expected to compress
  /// the dataset first (core/memory_planner). Reprogramming is permitted
  /// but counted against write endurance.
  Status ProgramDataset(const IntMatrix& data, int operand_bits = 32);

  /// True once a dataset is programmed.
  bool programmed() const { return !data_.empty(); }

  /// Matches `query` against every programmed vector. Query values must be
  /// non-negative. Results are written into `out` (resized to N) and the
  /// batch is deposited into the buffer array. Time is charged to stats.
  /// Safe to call concurrently from several host threads once programmed:
  /// each batch's stats/buffer accounting is applied atomically, and the
  /// per-batch charges are identical regardless of interleaving, so the
  /// modeled totals match a serial run exactly.
  Status DotProductAll(std::span<const int32_t> query,
                       std::vector<uint64_t>* out);

  /// Auxiliary storage in the ReRAM memory array (pre-computed Φ values).
  Status StoreAux(uint64_t bytes);

  /// Remaining full-array reprograms before the endurance budget (the
  /// conservative 1e8 writes/cell) is exhausted.
  double EnduranceRemainingFraction() const;

  const PimDeviceStats& stats() const { return stats_; }
  void ResetOnlineStats();

  const PimConfig& config() const { return config_; }
  const BufferArray& buffer() const { return buffer_; }
  const PimTimingModel& timing() const { return timing_; }

 private:
  PimConfig config_;
  PimTimingModel timing_;
  BufferArray buffer_;
  IntMatrix data_;
  int operand_bits_ = 32;
  PimDeviceStats stats_;
  /// Guards stats_ and buffer_ against concurrent DotProductAll batches.
  mutable std::mutex stats_mu_;
};

}  // namespace pimine

#endif  // PIMINE_PIM_PIM_DEVICE_H_
