#ifndef PIMINE_PIM_CROSSBAR_H_
#define PIMINE_PIM_CROSSBAR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "pim/fault_model.h"

namespace pimine {

/// Functional model of one m x m ReRAM crossbar with h-bit cells.
///
/// Layout follows §II-A / Fig. 2 of the paper: a b-bit multiplier is
/// segmented into ceil(b/h) h-bit slices stored in adjacent cells of the
/// same row, so a "logical column" (one stored vector) spans ceil(b/h)
/// physical columns; rows correspond to vector dimensions. The b-bit
/// multiplicand (input) is streamed through the DACs `dac_bits` per cycle;
/// per-cycle analog column sums are digitized (S&H + ADC) and combined with
/// the shift-and-add unit (S&A).
///
/// The model is bit-exact: reconstructing the shifted partial sums yields
/// exactly the integer dot product, which is what ideal hardware computes.
/// It also counts cycles and cell-programming events (write endurance).
class Crossbar {
 public:
  /// Creates an m x m crossbar of h-bit cells. Aborts on nonsensical
  /// geometry (programmer error).
  Crossbar(int dim, int cell_bits);

  /// Number of physical columns a single operand of `operand_bits` spans.
  int SlicesPerOperand(int operand_bits) const;

  /// Logical columns available for vectors of `operand_bits` operands.
  int NumLogicalColumns(int operand_bits) const;

  /// Programs `operands` (one per row, length <= dim) into logical column
  /// `logical_col`. Fails if the operands exceed `operand_bits` bits or the
  /// column is out of range.
  Status ProgramVector(int logical_col, std::span<const uint32_t> operands,
                       int operand_bits);

  /// Result of one crossbar dot-product operation.
  struct DotResult {
    /// One value per logical column (uint64 wrap-around models the paper's
    /// least-significant-64-bit rule).
    std::vector<uint64_t> values;
    /// DAC input cycles consumed (= ceil(input_bits / dac_bits)).
    int cycles = 0;
  };

  /// Streams `input` (one value per row, b-bit) through the crossbar and
  /// returns per-logical-column dot products, emulating the slice pipeline
  /// cycle by cycle. `operand_bits` must match what was programmed.
  Result<DotResult> DotProduct(std::span<const uint32_t> input, int input_bits,
                               int operand_bits, int dac_bits) const;

  /// As above, with fault injection from `faults` (may be null): stuck-at
  /// cells (FaultModel::kCrossbarCellSalt domain, keyed by physical cell
  /// index), per-sample ADC saturation (the sampled column current loses
  /// its most-significant bit when it saturates), and transient single-bit
  /// flips of individual digitized column samples. One op nonce is drawn
  /// per call, so repeating a call redraws the transient faults while the
  /// stuck cells stay put.
  Result<DotResult> DotProduct(std::span<const uint32_t> input, int input_bits,
                               int operand_bits, int dac_bits,
                               FaultModel* faults) const;

  int dim() const { return dim_; }
  int cell_bits() const { return cell_bits_; }

  /// Total cell-programming events since construction (endurance proxy).
  uint64_t cell_writes() const { return cell_writes_; }

  /// Raw cell value (for tests).
  uint8_t cell(int row, int col) const;

 private:
  int dim_;
  int cell_bits_;
  /// Row-major dim x dim cell array; each holds an h-bit conductance level.
  std::vector<uint8_t> cells_;
  uint64_t cell_writes_ = 0;
};

}  // namespace pimine

#endif  // PIMINE_PIM_CROSSBAR_H_
