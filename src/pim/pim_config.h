#ifndef PIMINE_PIM_PIM_CONFIG_H_
#define PIMINE_PIM_PIM_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace pimine {

/// Hardware parameters of the ReRAM-based memory (Table 5 of the paper plus
/// the crossbar geometry from §VI-A: 256x256 crossbars of 2-bit cells,
/// 131072 crossbars in a 2 GB PIM array).
struct PimConfig {
  /// Crossbar dimension m (m x m cells).
  int crossbar_dim = 256;
  /// Cell precision h in bits.
  int cell_bits = 2;
  /// Operand bit width b (the paper keeps 32-bit integers, §VI-B).
  int operand_bits = 32;
  /// Total crossbars C in the PIM array.
  int64_t num_crossbars = 131072;
  /// ReRAM read latency per crossbar cycle (ns).
  double read_ns = 29.31;
  /// ReRAM write (programming) latency per row (ns).
  double write_ns = 50.88;
  /// eDRAM buffer array capacity (bytes).
  uint64_t buffer_bytes = 16ull * 1024 * 1024;
  /// ReRAM memory-array capacity (bytes) — ordinary storage next to PIM.
  uint64_t memory_array_bytes = 14ull * 1024 * 1024 * 1024;
  /// Internal bus bandwidth between ReRAM banks and CPU (GB/s).
  double internal_bus_gbps = 50.0;
  /// DAC resolution in bits per input cycle (inputs are streamed in
  /// `dac_bits` slices, Fig. 2).
  int dac_bits = 2;
  /// ADC + sample-and-hold + shift-and-add overhead per crossbar cycle (ns).
  double peripheral_ns = 10.0;
  /// Write endurance per cell (ReRAM: 1e8-1e11; we track the conservative
  /// end and let tests assert re-programming stays far below it).
  double endurance_writes = 1e8;
  /// When true, buffer array lets PIM and CPU overlap (§III-A); modeled as
  /// hiding PIM latency behind host work where possible.
  bool buffer_overlap = true;
  /// When true, a multi-query device batch streams its inputs back-to-back
  /// through the crossbar pipeline (Fig. 2): after the first query fills the
  /// pipeline, every further query costs one extra stage time instead of a
  /// full pass. When false, batches are modeled as Q sequential passes
  /// (ablation knob; functional results never depend on it).
  bool pipelined_batches = true;
  /// Host<->device interconnect bandwidth for a fleet of PIM devices
  /// (GB/s). Conservatively below the internal bus: scatter/gather between
  /// the host and a device shard crosses the off-bank fabric.
  double interconnect_gbps = 25.0;
  /// Fixed per-message latency of one interconnect hop (ns): one scatter
  /// broadcast, one gather reply, or one reduction-tree merge.
  double interconnect_hop_ns = 100.0;

  /// PIM array capacity in data bits: C crossbars of m*m cells, h bits each.
  uint64_t TotalCellBits() const {
    return static_cast<uint64_t>(num_crossbars) * crossbar_dim * crossbar_dim *
           cell_bits;
  }

  /// Validates parameter sanity.
  Status Validate() const;

  std::string ToString() const;
};

}  // namespace pimine

#endif  // PIMINE_PIM_PIM_CONFIG_H_
