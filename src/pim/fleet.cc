#include "pim/fleet.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace pimine {
namespace {

/// SplitMix64: the placement hash. Stateless, so row -> shard assignment is
/// reproducible across runs and platforms.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string_view ShardPlacementName(ShardPlacement placement) {
  switch (placement) {
    case ShardPlacement::kContiguous:
      return "contiguous";
    case ShardPlacement::kHash:
      return "hash";
    case ShardPlacement::kClusterAware:
      return "cluster";
  }
  return "?";
}

Result<ShardPlacement> ParseShardPlacement(std::string_view name) {
  if (name == "contiguous") return ShardPlacement::kContiguous;
  if (name == "hash") return ShardPlacement::kHash;
  if (name == "cluster") return ShardPlacement::kClusterAware;
  return Status::InvalidArgument(
      "unknown placement '" + std::string(name) +
      "'; expected contiguous, hash or cluster");
}

Status ShardOptions::ValidateReplication() const {
  if (replicas < 1 || replicas > kMaxReplicas) {
    return Status::InvalidArgument(
        "shard replicas must be in [1, " + std::to_string(kMaxReplicas) +
        "] (got " + std::to_string(replicas) + ")");
  }
  if (max_strikes < 1) {
    return Status::InvalidArgument(
        "shard max_strikes must be >= 1 (got " + std::to_string(max_strikes) +
        ")");
  }
  return Status::OK();
}

void FailoverStats::Merge(const FailoverStats& other) {
  injected += other.injected;
  recovered += other.recovered;
  shed += other.shed;
  attempts_failed += other.attempts_failed;
  chaos_denied += other.chaos_denied;
  device_faults += other.device_faults;
  strikes += other.strikes;
  struck_out += other.struck_out;
  slack_fills += other.slack_fills;
  retry_messages += other.retry_messages;
  retry_bytes += other.retry_bytes;
  backoff_ns += other.backoff_ns;
  failover_ns += other.failover_ns;
}

std::string FailoverStats::ToString() const {
  std::ostringstream os;
  os << "injected=" << injected << " recovered=" << recovered
     << " shed=" << shed << " (slack=" << slack_fills << ")"
     << " attempts_failed=" << attempts_failed << " (chaos=" << chaos_denied
     << " device=" << device_faults << ")"
     << " strikes=" << strikes << " struck_out=" << struck_out
     << " retry=" << retry_messages << "msg/" << retry_bytes << "B"
     << " backoff=" << backoff_ns << "ns"
     << " failover=" << failover_ns / 1e6 << "ms";
  return os.str();
}

Result<ShardMap> BuildShardMap(const FloatMatrix& data,
                               const ShardOptions& options) {
  const size_t n = data.rows();
  if (options.shards < 1) {
    return Status::InvalidArgument(
        "shards must be >= 1 (got " + std::to_string(options.shards) + ")");
  }
  if (static_cast<size_t>(options.shards) > n) {
    return Status::InvalidArgument(
        "shards (" + std::to_string(options.shards) +
        ") must not exceed the dataset size (" + std::to_string(n) +
        "): every shard needs at least one row");
  }
  const size_t m = static_cast<size_t>(options.shards);

  // Unified placement: order the rows by a placement key, split the order
  // into M balanced contiguous runs, then sort each shard's rows ascending
  // (the shard-local layout every engine programs).
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  switch (options.placement) {
    case ShardPlacement::kContiguous:
      break;  // identity key.
    case ShardPlacement::kHash:
      std::sort(order.begin(), order.end(), [](uint32_t a, uint32_t b) {
        const uint64_t ka = SplitMix64(a);
        const uint64_t kb = SplitMix64(b);
        if (ka != kb) return ka < kb;
        return a < b;
      });
      break;
    case ShardPlacement::kClusterAware: {
      std::vector<double> key(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        double sum = 0.0;
        for (float v : data.row(i)) sum += v;
        key[i] = sum;
      }
      std::sort(order.begin(), order.end(),
                [&key](uint32_t a, uint32_t b) {
                  if (key[a] != key[b]) return key[a] < key[b];
                  return a < b;
                });
      break;
    }
  }

  ShardMap map;
  map.rows_per_shard.resize(m);
  map.shard_of.resize(n);
  map.local_of.resize(n);
  const size_t base = n / m;
  const size_t extra = n % m;  // first `extra` shards get one more row.
  size_t pos = 0;
  for (size_t j = 0; j < m; ++j) {
    const size_t count = base + (j < extra ? 1 : 0);
    std::vector<uint32_t>& rows = map.rows_per_shard[j];
    rows.assign(order.begin() + pos, order.begin() + pos + count);
    pos += count;
    std::sort(rows.begin(), rows.end());
    for (size_t local = 0; local < rows.size(); ++local) {
      map.shard_of[rows[local]] = static_cast<uint32_t>(j);
      map.local_of[rows[local]] = static_cast<uint32_t>(local);
    }
  }
  return map;
}

std::string FleetRunStats::ToString() const {
  std::ostringstream os;
  os << "shards=" << shards << " placement=" << ShardPlacementName(placement)
     << " scatter=" << scatter_messages << "msg/" << scatter_bytes << "B"
     << " gather=" << gather_messages << "msg/" << gather_bytes << "B"
     << " reduce=" << reduce_messages << "msg/" << reduce_bytes << "B"
     << " failovers=" << failovers << " interconnect="
     << InterconnectNs() / 1e6 << "ms";
  if (failover.Any()) {
    os << " | " << failover.ToString();
    if (degraded_shards > 0) os << " degraded_shards=" << degraded_shards;
  }
  if (AnyMutation()) {
    os << " | mutation: appended=" << appended_rows
       << " deleted=" << deleted_rows << " compactions=" << compactions
       << " (rows=" << compacted_rows << ")"
       << " delta=" << delta_rows << " tombstoned=" << tombstoned_rows
       << " row_writes=" << row_writes << " worn=" << worn_rows;
  }
  return os.str();
}

}  // namespace pimine
