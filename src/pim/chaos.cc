#include "pim/chaos.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace pimine {
namespace {

/// SplitMix64 finalizer: the repo-wide stateless mixer (placement hash,
/// fault model, event-log sampling). Platform-independent.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One seeded draw of the schedule generator: a pure hash of the event's
/// coordinates (kind, index, field), so the schedule is a function of the
/// config alone.
uint64_t Draw(uint64_t seed, uint64_t kind, uint64_t index, uint64_t field) {
  return Mix64(seed ^ Mix64(kind ^ Mix64(index ^ Mix64(field))));
}

bool WindowCovers(const ChaosEvent& e, uint64_t now_ns) {
  if (now_ns < e.at_ns) return false;
  return e.until_ns == ChaosSchedule::kNoRecovery || now_ns < e.until_ns;
}

}  // namespace

std::string_view ChaosEventKindName(ChaosEventKind kind) {
  switch (kind) {
    case ChaosEventKind::kDeviceDeath:
      return "device_death";
    case ChaosEventKind::kTransientStall:
      return "transient_stall";
    case ChaosEventKind::kLinkFault:
      return "link_fault";
  }
  return "?";
}

Status ChaosConfig::Validate() const {
  if (device_deaths < 0 || stalls < 0 || link_faults < 0) {
    return Status::InvalidArgument("chaos event counts must be >= 0");
  }
  if (enabled() && horizon_ns == 0) {
    return Status::InvalidArgument(
        "ChaosConfig::horizon_ns must be > 0 when events are scheduled");
  }
  if (stalls > 0 && stall_ns == 0) {
    return Status::InvalidArgument(
        "ChaosConfig::stall_ns must be > 0 when stalls are scheduled");
  }
  if (link_faults > 0 && link_fault_ns == 0) {
    return Status::InvalidArgument(
        "ChaosConfig::link_fault_ns must be > 0 when link faults are "
        "scheduled");
  }
  return Status::OK();
}

Result<ChaosSchedule> ChaosSchedule::Generate(const ChaosConfig& config,
                                              uint32_t shards,
                                              uint32_t replicas) {
  PIMINE_RETURN_IF_ERROR(config.Validate());
  if (shards == 0 || replicas == 0) {
    return Status::InvalidArgument(
        "chaos schedules need shards >= 1 and replicas >= 1");
  }
  std::vector<ChaosEvent> events;
  events.reserve(static_cast<size_t>(config.device_deaths) + config.stalls +
                 config.link_faults);
  const auto draw_events = [&](ChaosEventKind kind, int count,
                               uint64_t window_ns) {
    const uint64_t tag = static_cast<uint64_t>(kind) + 1;
    for (int i = 0; i < count; ++i) {
      ChaosEvent e;
      e.kind = kind;
      e.at_ns = Draw(config.seed, tag, i, 0) % config.horizon_ns;
      e.shard = static_cast<uint32_t>(Draw(config.seed, tag, i, 1) % shards);
      e.replica =
          kind == ChaosEventKind::kLinkFault
              ? 0
              : static_cast<uint32_t>(Draw(config.seed, tag, i, 2) % replicas);
      e.until_ns = kind == ChaosEventKind::kDeviceDeath
                       ? kNoRecovery
                       : e.at_ns + window_ns;
      events.push_back(e);
    }
  };
  draw_events(ChaosEventKind::kDeviceDeath, config.device_deaths, 0);
  draw_events(ChaosEventKind::kTransientStall, config.stalls, config.stall_ns);
  draw_events(ChaosEventKind::kLinkFault, config.link_faults,
              config.link_fault_ns);
  return FromEvents(std::move(events), shards, replicas);
}

ChaosSchedule ChaosSchedule::FromEvents(std::vector<ChaosEvent> events,
                                        uint32_t shards, uint32_t replicas) {
  ChaosSchedule schedule;
  schedule.shards_ = shards == 0 ? 1 : shards;
  schedule.replicas_ = replicas == 0 ? 1 : replicas;
  std::sort(events.begin(), events.end(),
            [](const ChaosEvent& a, const ChaosEvent& b) {
              return std::tie(a.at_ns, a.kind, a.shard, a.replica, a.until_ns) <
                     std::tie(b.at_ns, b.kind, b.shard, b.replica, b.until_ns);
            });
  schedule.events_ = std::move(events);
  return schedule;
}

bool ChaosSchedule::ReplicaDown(uint32_t shard, uint32_t replica,
                                uint64_t now_ns) const {
  for (const ChaosEvent& e : events_) {
    if (e.shard != shard || !WindowCovers(e, now_ns)) continue;
    if (e.kind == ChaosEventKind::kLinkFault) return true;
    if (e.replica == replica) return true;
  }
  return false;
}

bool ChaosSchedule::LinkDown(uint32_t shard, uint64_t now_ns) const {
  for (const ChaosEvent& e : events_) {
    if (e.kind == ChaosEventKind::kLinkFault && e.shard == shard &&
        WindowCovers(e, now_ns)) {
      return true;
    }
  }
  return false;
}

uint32_t ChaosSchedule::HealthyReplicas(uint32_t shard,
                                        uint64_t now_ns) const {
  if (LinkDown(shard, now_ns)) return 0;
  uint32_t healthy = 0;
  for (uint32_t r = 0; r < replicas_; ++r) {
    if (!ReplicaDown(shard, r, now_ns)) ++healthy;
  }
  return healthy;
}

std::string ChaosSchedule::ToString() const {
  std::ostringstream os;
  os << "chaos schedule over " << shards_ << "x" << replicas_ << " fleet, "
     << events_.size() << " event(s)";
  for (const ChaosEvent& e : events_) {
    os << "\n  " << ChaosEventKindName(e.kind) << " shard=" << e.shard;
    if (e.kind != ChaosEventKind::kLinkFault) os << " replica=" << e.replica;
    os << " at=" << e.at_ns << "ns";
    if (e.until_ns != kNoRecovery) os << " until=" << e.until_ns << "ns";
  }
  return os.str();
}

uint64_t FailoverBackoffNs(uint64_t base_ns, uint64_t jitter_ns, uint64_t seed,
                           uint64_t token, int attempt) {
  if (attempt < 1) attempt = 1;
  // Cap the exponent: past 2^32 the wait dwarfs any deadline anyway and an
  // unbounded shift would be UB.
  const int exponent = attempt - 1 > 32 ? 32 : attempt - 1;
  uint64_t wait = base_ns << exponent;
  if (jitter_ns > 0) {
    wait += Draw(seed, 0xBACC0FFull, token, static_cast<uint64_t>(attempt)) %
            (jitter_ns + 1);
  }
  return wait;
}

}  // namespace pimine
