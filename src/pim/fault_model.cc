#include "pim/fault_model.h"

#include "common/logging.h"

namespace pimine {
namespace {

// SplitMix64 finalizer over a combined key: a full-avalanche stateless hash,
// so every (seed, salt, index) triple gets an independent uniform draw.
uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

// Uniform double in [0, 1) from the hash's top 53 bits.
double U01(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr uint64_t kTransientSalt = 0x7A1151E47ULL;
constexpr uint64_t kAdcSalt = 0xADC5A7ULL;

}  // namespace

std::string_view VerifyModeName(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kHostExact:
      return "host-exact";
    case VerifyMode::kBoundSlack:
      return "bound-slack";
    case VerifyMode::kFailOp:
      return "fail-op";
    case VerifyMode::kNone:
      return "none";
  }
  return "?";
}

FaultModel::FaultModel(const FaultConfig& config) : config_(config) {
  PIMINE_CHECK_OK(config.Validate());
}

bool FaultModel::CellStuck(uint64_t salt, uint64_t index, int cell_bits,
                           uint8_t* level) const {
  return CellStuckAtRate(salt, index, config_.cell_rate, cell_bits, level);
}

bool FaultModel::CellStuckAtRate(uint64_t salt, uint64_t index, double rate,
                                 int cell_bits, uint8_t* level) const {
  const uint64_t h = Mix(config_.seed ^ salt, index);
  if (U01(h) >= rate) return false;
  // Stuck-at-0 or stuck-at-full with equal probability, decided by a bit of
  // the same draw (independent of the rate threshold bits).
  const uint8_t mask = static_cast<uint8_t>((1u << cell_bits) - 1);
  *level = (h & 1) ? mask : 0;
  return true;
}

uint64_t FaultModel::TransientMask(uint64_t nonce, uint64_t result_index,
                                   int value_bits) const {
  if (config_.transient_rate <= 0.0) return 0;
  const uint64_t h =
      Mix(config_.seed ^ kTransientSalt, Mix(nonce, result_index));
  if (U01(h) >= config_.transient_rate) return 0;
  const int bit =
      static_cast<int>(Mix(h, 0x17) % static_cast<uint64_t>(value_bits));
  return uint64_t{1} << bit;
}

bool FaultModel::AdcSaturates(uint64_t nonce, uint64_t result_index) const {
  if (config_.adc_sat_rate <= 0.0) return false;
  const uint64_t h = Mix(config_.seed ^ kAdcSalt, Mix(nonce, result_index));
  return U01(h) < config_.adc_sat_rate;
}

}  // namespace pimine
