#ifndef PIMINE_PIM_TIMING_H_
#define PIMINE_PIM_TIMING_H_

#include <cstdint>

#include "pim/pim_config.h"

namespace pimine {

/// Analytical latency/energy model of PIM operations — the NVSim substitute
/// (DESIGN.md §1). All PIM-side time in the benchmark figures comes from
/// here, parameterized with the paper's Table 5 device numbers.
class PimTimingModel {
 public:
  explicit PimTimingModel(const PimConfig& config);

  /// Latency of one batched dot-product pass: every programmed vector is
  /// matched against one input vector of `s` dimensions with
  /// `input_bits`-bit components. Data crossbars fire concurrently (the
  /// paper's "massive parallelism"); the gather tree adds one pipeline stage
  /// per level when s exceeds the crossbar dimension.
  double BatchDotLatencyNs(int64_t s, int input_bits) const;

  /// Latency of one *multi-query* device batch: `queries` input vectors
  /// streamed back-to-back through the same pipeline (§II-A, Fig. 2). With
  /// pipelined batches the first query pays the full pipeline depth and
  /// every further query one stage time (initiation interval = 1 stage):
  ///   latency = stage_ns * (stages + queries - 1).
  /// The queries = 1 case is bit-identical to the single-query overload
  /// above. With config.pipelined_batches = false the batch is modeled as
  /// `queries` sequential passes.
  double BatchDotLatencyNs(int64_t s, int input_bits, int64_t queries) const;

  /// Latency of programming `rows` crossbar rows (row-parallel writes).
  double ProgramLatencyNs(uint64_t rows) const;

  /// Latency of one host<->device interconnect message of `bytes` payload:
  /// a fixed per-hop cost plus the serialization time at the interconnect
  /// bandwidth. Used for the fleet scatter/gather/reduction accounting
  /// (config.interconnect_gbps yields ns directly for a byte count, like
  /// the internal bus convention).
  double TransferLatencyNs(uint64_t bytes) const;

  /// DAC cycles needed to stream a `bits`-wide input.
  int InputCycles(int bits) const;

  /// Energy of one batched dot-product pass over `ndata` data crossbars
  /// (picojoules). Secondary output; not used by the paper's figures.
  double BatchDotEnergyPj(int64_t ndata, int input_bits) const;

  const PimConfig& config() const { return config_; }

 private:
  PimConfig config_;
};

}  // namespace pimine

#endif  // PIMINE_PIM_TIMING_H_
