#ifndef PIMINE_PIM_TIMING_H_
#define PIMINE_PIM_TIMING_H_

#include <cstdint>

#include "pim/pim_config.h"

namespace pimine {

/// Analytical latency/energy model of PIM operations — the NVSim substitute
/// (DESIGN.md §1). All PIM-side time in the benchmark figures comes from
/// here, parameterized with the paper's Table 5 device numbers.
class PimTimingModel {
 public:
  explicit PimTimingModel(const PimConfig& config);

  /// Latency of one batched dot-product pass: every programmed vector is
  /// matched against one input vector of `s` dimensions with
  /// `input_bits`-bit components. Data crossbars fire concurrently (the
  /// paper's "massive parallelism"); the gather tree adds one pipeline stage
  /// per level when s exceeds the crossbar dimension.
  double BatchDotLatencyNs(int64_t s, int input_bits) const;

  /// Latency of programming `rows` crossbar rows (row-parallel writes).
  double ProgramLatencyNs(uint64_t rows) const;

  /// DAC cycles needed to stream a `bits`-wide input.
  int InputCycles(int bits) const;

  /// Energy of one batched dot-product pass over `ndata` data crossbars
  /// (picojoules). Secondary output; not used by the paper's figures.
  double BatchDotEnergyPj(int64_t ndata, int input_bits) const;

  const PimConfig& config() const { return config_; }

 private:
  PimConfig config_;
};

}  // namespace pimine

#endif  // PIMINE_PIM_TIMING_H_
