#include "pim/timing.h"

#include "common/logging.h"
#include "pim/crossbar_math.h"
#include "util/bits.h"

namespace pimine {

PimTimingModel::PimTimingModel(const PimConfig& config) : config_(config) {
  PIMINE_CHECK_OK(config.Validate());
}

int PimTimingModel::InputCycles(int bits) const {
  return NumSlices(bits, config_.dac_bits);
}

double PimTimingModel::BatchDotLatencyNs(int64_t s, int input_bits) const {
  return BatchDotLatencyNs(s, input_bits, /*queries=*/1);
}

double PimTimingModel::BatchDotLatencyNs(int64_t s, int input_bits,
                                         int64_t queries) const {
  PIMINE_CHECK(s > 0);
  PIMINE_CHECK(queries > 0);
  const double stage_ns =
      static_cast<double>(InputCycles(input_bits)) *
      (config_.read_ns + config_.peripheral_ns);
  // One data stage plus (depth - 1) gather stages. We charge gather stages
  // the same stage latency as the data stage (partial sums are re-injected
  // slice-wise, Fig. 11); with m = 256 the tree is at most 2 deep for every
  // dimensionality in the paper.
  const int stages = GatherDepth(s, config_.crossbar_dim);
  if (!config_.pipelined_batches) {
    return stage_ns * static_cast<double>(stages) *
           static_cast<double>(queries);
  }
  // Back-to-back streaming: query q enters the data stage while query q-1
  // occupies the first gather stage, so a batch drains in stages + Q - 1
  // stage times. Q = 1 reduces exactly to stage_ns * stages (Table 5).
  return stage_ns * static_cast<double>(stages + queries - 1);
}

double PimTimingModel::ProgramLatencyNs(uint64_t rows) const {
  return static_cast<double>(rows) * config_.write_ns;
}

double PimTimingModel::TransferLatencyNs(uint64_t bytes) const {
  return config_.interconnect_hop_ns +
         static_cast<double>(bytes) / config_.interconnect_gbps;
}

double PimTimingModel::BatchDotEnergyPj(int64_t ndata, int input_bits) const {
  // Crude ISAAC-style accounting: each crossbar read cycle costs ~50 pJ for
  // the array plus ADC; enough for relative ablations.
  constexpr double kCyclePj = 50.0;
  return static_cast<double>(ndata) * InputCycles(input_bits) * kCyclePj;
}

}  // namespace pimine
