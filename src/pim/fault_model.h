#ifndef PIMINE_PIM_FAULT_MODEL_H_
#define PIMINE_PIM_FAULT_MODEL_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/status.h"

namespace pimine {

/// Fault-process parameters for the ReRAM device model. All processes are
/// seeded and counter-based (stateless hashing of (seed, position/op)), so
/// the same configuration reproduces the same fault pattern regardless of
/// call order: a stuck cell is stuck in every run, and op k's transient
/// draws depend only on k.
struct FaultConfig {
  /// Probability that a cell is stuck at a fixed conductance level
  /// (stuck-at-0 or stuck-at-full, chosen per cell). Permanent: affects
  /// every operation that reads the cell until the row group is remapped.
  double cell_rate = 0.0;
  /// Per-result probability that one operation's digitized value suffers a
  /// single-bit flip in a shifted partial sum. Transient: a retry redraws.
  double transient_rate = 0.0;
  /// Per-result probability that the ADC saturates, clamping the value to
  /// (1 << adc_sat_bits) - 1 when it exceeds that ceiling.
  double adc_sat_rate = 0.0;
  int adc_sat_bits = 48;
  uint64_t seed = 0x5EEDF417u;

  /// Write-endurance model: a physical row slot that has been programmed
  /// more than `endurance_limit` times is "worn", and each of its cells is
  /// stuck (at a level drawn like cell_rate stuck-ats, from the wear salt)
  /// with probability `wear_stuck_rate`. 0 disables the wear process.
  uint64_t endurance_limit = 0;
  double wear_stuck_rate = 0.0;

  bool wear_enabled() const {
    return endurance_limit > 0 && wear_stuck_rate > 0.0;
  }

  /// True when any fault process can fire. With enabled() == false the
  /// device takes the exact pre-fault code paths (bit-identical results,
  /// latencies and stats).
  bool enabled() const {
    return cell_rate > 0.0 || transient_rate > 0.0 || adc_sat_rate > 0.0 ||
           wear_enabled();
  }

  Status Validate() const {
    const auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
    if (!rate_ok(cell_rate) || !rate_ok(transient_rate) ||
        !rate_ok(adc_sat_rate) || !rate_ok(wear_stuck_rate)) {
      return Status::InvalidArgument("fault rates must be in [0, 1]");
    }
    if (adc_sat_bits < 1 || adc_sat_bits > 63) {
      return Status::InvalidArgument("adc_sat_bits must be in [1, 63]");
    }
    return Status::OK();
  }
};

/// What the device does with a result group the checksum still flags after
/// retries and remapping are exhausted.
enum class VerifyMode {
  /// Re-read the affected rows over the internal bus and recompute the dot
  /// products on the host: every detected anomaly is resolved exactly, so
  /// downstream results are bit-identical to the fault-free run.
  kHostExact,
  /// Hand the possibly-corrupt values to the caller with a per-result
  /// suspect flag; the engine widens the affected bounds to their trivial
  /// worst case so pruning stays admissible (exact top-k / assignments).
  kBoundSlack,
  /// Fail the operation with StatusCode::kDeviceFault.
  kFailOp,
  /// Disable detection entirely (faulty values flow through unchecked).
  kNone,
};

std::string_view VerifyModeName(VerifyMode mode);

/// How the device recovers from checksum mismatches.
struct RecoveryPolicy {
  /// Re-issue the flagged group's pass up to this many times (fresh
  /// transient draws each time; each retry charges one pipeline pass).
  int max_retries = 2;
  /// After retries fail, re-program the group onto spare rows (clears its
  /// stuck cells; charged as row writes via PimTimingModel) and retry once
  /// more. Each group is remapped at most once.
  bool remap_on_permanent = true;
  VerifyMode verify_mode = VerifyMode::kHostExact;
};

/// Accounting of the fault and recovery processes. Counters are per result
/// value (one dot product or one checksum read) and per recovery action.
/// Invariant: injected == detected + escaped — every corrupted value was
/// either flagged by its group's checksum or slipped through.
struct FaultStats {
  /// Corrupted result values produced across all passes (retries re-count:
  /// each pass is a new operation).
  uint64_t injected = 0;
  /// Corrupted values in passes the checksum flagged.
  uint64_t detected = 0;
  /// Corrupted values the checksum missed (multi-fault cancellation
  /// mod 2^16 - 1) or that flowed through with verification off.
  uint64_t escaped = 0;
  /// Checksum comparisons performed (one per group pass).
  uint64_t checksum_checks = 0;
  /// (query, group) episodes that were flagged at least once.
  uint64_t groups_flagged = 0;
  /// Retry passes issued.
  uint64_t retries = 0;
  /// Crossbar rows re-programmed by remapping.
  uint64_t remapped_rows = 0;
  /// Result values escalated past device recovery (host re-read under
  /// kHostExact, suspect-flagged under kBoundSlack).
  uint64_t escalated_to_host = 0;
  /// Stuck cells sampled while programming (harmful or latent).
  uint64_t stuck_cells = 0;
  /// Modeled time spent on recovery (retry passes + remap writes + host
  /// re-reads), ns. Charged on top of the fault-free compute_ns.
  double recovery_ns = 0.0;

  bool Any() const {
    return injected != 0 || checksum_checks != 0 || retries != 0 ||
           remapped_rows != 0 || escalated_to_host != 0 || stuck_cells != 0 ||
           recovery_ns != 0.0;
  }

  void Merge(const FaultStats& other) {
    injected += other.injected;
    detected += other.detected;
    escaped += other.escaped;
    checksum_checks += other.checksum_checks;
    groups_flagged += other.groups_flagged;
    retries += other.retries;
    remapped_rows += other.remapped_rows;
    escalated_to_host += other.escalated_to_host;
    stuck_cells += other.stuck_cells;
    recovery_ns += other.recovery_ns;
  }

  std::string ToString() const {
    std::ostringstream os;
    os << "injected=" << injected << " detected=" << detected
       << " escaped=" << escaped << " checks=" << checksum_checks
       << " flagged=" << groups_flagged << " retries=" << retries
       << " remapped_rows=" << remapped_rows
       << " escalated=" << escalated_to_host << " stuck_cells=" << stuck_cells
       << " recovery=" << recovery_ns / 1e6 << "ms";
    return os.str();
  }
};

/// Seeded source of the three fault processes. Owns no device state: the
/// device (or crossbar) maps its own cell/result indices onto the model's
/// stateless draws. `salt` separates independent fault domains sharing one
/// seed (data cells vs. checksum cells vs. a second crossbar).
class FaultModel {
 public:
  /// Salts for the standard fault domains.
  static constexpr uint64_t kDataCellSalt = 0xDA7ACE11u;
  static constexpr uint64_t kChecksumCellSalt = 0xC5C5CE11u;
  static constexpr uint64_t kCrossbarCellSalt = 0xCB0CE11u;
  static constexpr uint64_t kWearCellSalt = 0x3EA2CE11u;

  explicit FaultModel(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  /// True iff cell `index` of domain `salt` is stuck; `*level` receives the
  /// stuck conductance level (0 or the all-ones level for `cell_bits`-bit
  /// cells). Deterministic in (seed, salt, index).
  bool CellStuck(uint64_t salt, uint64_t index, int cell_bits,
                 uint8_t* level) const;

  /// Like CellStuck but at an explicit rate — used for the wear process,
  /// whose per-cell stuck probability (`wear_stuck_rate`) is independent of
  /// the manufacturing-defect `cell_rate`.
  bool CellStuckAtRate(uint64_t salt, uint64_t index, double rate,
                       int cell_bits, uint8_t* level) const;

  /// Fresh per-operation nonce. Atomic: serial call sequences reproduce the
  /// same nonce order; concurrent batches may interleave differently, which
  /// changes which ops draw transients but never the recovered results.
  uint64_t NextOpNonce() { return op_counter_.fetch_add(1); }

  /// XOR mask (0 = no fault) flipping one bit of result `result_index` of
  /// op `nonce`; the flipped bit is uniform in [0, value_bits).
  uint64_t TransientMask(uint64_t nonce, uint64_t result_index,
                         int value_bits = 64) const;

  /// True iff the ADC saturates for result `result_index` of op `nonce`.
  bool AdcSaturates(uint64_t nonce, uint64_t result_index) const;

  /// Value the ADC clamps to when it saturates.
  uint64_t AdcCeiling() const {
    return (uint64_t{1} << config_.adc_sat_bits) - 1;
  }

 private:
  FaultConfig config_;
  std::atomic<uint64_t> op_counter_{0};
};

}  // namespace pimine

#endif  // PIMINE_PIM_FAULT_MODEL_H_
