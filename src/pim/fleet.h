#ifndef PIMINE_PIM_FLEET_H_
#define PIMINE_PIM_FLEET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/matrix.h"

namespace pimine {

/// How dataset rows are distributed over the logical devices of a fleet.
/// Every placement produces balanced shards (sizes differ by at most one
/// row) and is deterministic in (n, shards) — re-building the same fleet
/// always yields the same map.
enum class ShardPlacement {
  /// Rows [0, n) split into contiguous ranges (shard 0 gets the first
  /// ceil(n/M) rows, ...). Preserves locality of pre-sorted datasets.
  kContiguous,
  /// Rows scattered pseudo-randomly (SplitMix64 of the row index orders the
  /// rows before the balanced split). Load-balances clustered datasets.
  kHash,
  /// Rows ordered by their per-dimension mean before the balanced split, so
  /// rows of similar magnitude (typically the same cluster for normalized
  /// clustered data) land on the same device.
  kClusterAware,
};

std::string_view ShardPlacementName(ShardPlacement placement);

/// Parses "contiguous" / "hash" / "cluster" (CLI spelling).
Result<ShardPlacement> ParseShardPlacement(std::string_view name);

/// Build-time knobs of a device fleet. The default (one shard) is the
/// single-device configuration and is bit-identical to a plain PimEngine.
struct ShardOptions {
  /// Logical devices M the dataset is sharded across. Must satisfy
  /// 1 <= shards <= n (rejected with InvalidArgument otherwise).
  int shards = 1;
  ShardPlacement placement = ShardPlacement::kContiguous;
  /// When true, a shard whose device operation fails with DeviceFault
  /// (RecoveryPolicy VerifyMode::kFailOp exhausted its ladder) is
  /// escalated to a host-exact recompute of only that shard instead of
  /// failing the whole fleet operation. With replicas > 1 the escalation
  /// only happens after every replica has been tried.
  bool failover = true;
  /// Copies of every shard programmed onto independent devices, in
  /// [1, kMaxReplicas]. Replicas hold the identical shard dataset with
  /// decorrelated fault seeds; replica 0 is the deterministic primary, so
  /// results are bit-identical to single-replica runs while no fault
  /// fires. Each copy charges its own ProgramLatencyNs (offline bytes sum
  /// over copies; offline time is the max — copies program concurrently).
  int replicas = 1;
  /// Consecutive failed attempts after which a replica is marked unhealthy
  /// and skipped by the failover ladder (a successful attempt resets the
  /// count; ResetReplicaHealth() readmits struck-out replicas). Ignored
  /// when replicas == 1: with nothing to fail over to, a faulted op
  /// escalates directly — exactly the pre-replica ladder.
  int max_strikes = 3;
  /// Seeded-jitter exponential backoff between replica attempts:
  /// backoff_base_ns * 2^(attempt-1) + hash % (backoff_jitter_ns + 1),
  /// jitter drawn as a pure hash of (backoff_seed, dispatch instant,
  /// attempt) — see FailoverBackoffNs in pim/chaos.h.
  uint64_t backoff_base_ns = 2000;
  uint64_t backoff_jitter_ns = 1000;
  uint64_t backoff_seed = 0xBAC0FFull;

  static constexpr int kMaxReplicas = 8;

  /// Checks the replication knobs (replicas range, max_strikes >= 1).
  Status ValidateReplication() const;
};

/// Replica-failover accounting of one fleet run. The locked invariant:
/// injected == recovered + shed — every op (one shard's share of one
/// dispatch) that lost its primary device path is either served by another
/// replica or shed off-device (host-exact recompute / bound-slack fill);
/// nothing is dropped and nothing is double-counted. Integer counters are
/// mutated relaxed under concurrent dispatches; failover_ns is derived
/// from them at snapshot time, so it is identical for every interleaving.
struct FailoverStats {
  /// Ops that lost at least one device attempt (or found every replica
  /// already struck out).
  uint64_t injected = 0;
  /// ...of which served exactly by a later healthy replica.
  uint64_t recovered = 0;
  /// ...of which escalated off-device.
  uint64_t shed = 0;
  /// Individual failed replica attempts (chaos_denied + device_faults).
  uint64_t attempts_failed = 0;
  /// Attempts denied by the chaos schedule (replica or link down).
  uint64_t chaos_denied = 0;
  /// Attempts that returned DeviceFault from the replica's devices.
  uint64_t device_faults = 0;
  /// Strike marks recorded against replicas (replicas > 1 only).
  uint64_t strikes = 0;
  /// Replicas marked unhealthy after max_strikes consecutive failures.
  uint64_t struck_out = 0;
  /// Sheds served as bound-slack fills instead of host recompute.
  uint64_t slack_fills = 0;
  /// Operand re-scatter traffic to retry replicas.
  uint64_t retry_messages = 0;
  uint64_t retry_bytes = 0;
  /// Summed seeded-jitter backoff waits (integer ns).
  uint64_t backoff_ns = 0;
  /// Derived at snapshot: backoff + modeled retry re-scatter time.
  double failover_ns = 0.0;

  bool Balanced() const { return injected == recovered + shed; }
  bool Any() const {
    return injected != 0 || attempts_failed != 0 || strikes != 0;
  }
  void Merge(const FailoverStats& other);
  std::string ToString() const;
};

/// The row <-> shard mapping of one fleet: rows_per_shard[j] lists the
/// global row ids of shard j in ascending order (the shard-local order),
/// and shard_of/local_of invert the map for O(1) routing.
struct ShardMap {
  std::vector<std::vector<uint32_t>> rows_per_shard;
  std::vector<uint32_t> shard_of;  // global row -> shard.
  std::vector<uint32_t> local_of;  // global row -> row within its shard.

  size_t shards() const { return rows_per_shard.size(); }
};

/// Builds the placement map for `data` under `options`. Fails with
/// InvalidArgument when options.shards < 1 or options.shards > data.rows().
Result<ShardMap> BuildShardMap(const FloatMatrix& data,
                               const ShardOptions& options);

/// Interconnect/fleet accounting of one run over a sharded engine. Unlike
/// the grouping-invariant RunStats counters, these quantities legitimately
/// depend on the fleet geometry (shards, device_batch): they model the
/// host<->device scatter/gather traffic that sharded execution adds. All
/// zero when shards == 1. The ns figures are derived deterministically
/// from the integer message/byte counters and the PimConfig interconnect
/// parameters at snapshot time, so they are identical for every host
/// thread interleaving.
struct FleetRunStats {
  int shards = 1;
  ShardPlacement placement = ShardPlacement::kContiguous;
  /// Query broadcasts: one message per shard per device batch, carrying the
  /// batch's quantized operands.
  uint64_t scatter_messages = 0;
  uint64_t scatter_bytes = 0;
  /// Result gathers: one message per shard per device batch, carrying the
  /// shard's dot-product results.
  uint64_t gather_messages = 0;
  uint64_t gather_bytes = 0;
  /// Tree reduction of k-means centroid partial sums: critical-path
  /// messages (one per tree level) and their payloads.
  uint64_t reduce_messages = 0;
  uint64_t reduce_bytes = 0;
  /// Shards escalated to host-exact recompute after a DeviceFault.
  uint64_t failovers = 0;
  uint64_t failed_over_queries = 0;
  /// Replica-failover ladder accounting (all-zero when no fault fired).
  FailoverStats failover;
  /// Shards currently off their primary replica or in bound-slack mode.
  int degraded_shards = 0;
  /// Modeled interconnect time (PimTimingModel::TransferLatencyNs applied
  /// to the counters above; see DESIGN.md section 9).
  double scatter_ns = 0.0;
  double gather_ns = 0.0;
  double reduce_ns = 0.0;
  /// Mutable-dataset accounting (see DESIGN.md section 13). Cumulative
  /// since build: mutations are maintenance work, so ResetOnlineStats
  /// leaves these untouched.
  uint64_t appended_rows = 0;   // rows appended via delta programming.
  uint64_t deleted_rows = 0;    // tombstones recorded.
  uint64_t compactions = 0;     // fleet-wide compaction passes.
  uint64_t compacted_rows = 0;  // live rows rewritten by compactions.
  /// Current un-compacted delta rows / live tombstones (primary copies).
  uint64_t delta_rows = 0;
  uint64_t tombstoned_rows = 0;
  /// Write-endurance totals summed over every device copy (replicas are
  /// physical devices, so each copy wears independently).
  uint64_t row_writes = 0;
  uint64_t worn_rows = 0;

  double InterconnectNs() const { return scatter_ns + gather_ns + reduce_ns; }
  bool Any() const {
    return scatter_messages != 0 || gather_messages != 0 ||
           reduce_messages != 0 || failovers != 0;
  }
  bool AnyMutation() const {
    return appended_rows != 0 || deleted_rows != 0 || compactions != 0 ||
           delta_rows != 0 || tombstoned_rows != 0 || worn_rows != 0;
  }

  std::string ToString() const;
};

}  // namespace pimine

#endif  // PIMINE_PIM_FLEET_H_
