#ifndef PIMINE_PIM_FLEET_H_
#define PIMINE_PIM_FLEET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/matrix.h"

namespace pimine {

/// How dataset rows are distributed over the logical devices of a fleet.
/// Every placement produces balanced shards (sizes differ by at most one
/// row) and is deterministic in (n, shards) — re-building the same fleet
/// always yields the same map.
enum class ShardPlacement {
  /// Rows [0, n) split into contiguous ranges (shard 0 gets the first
  /// ceil(n/M) rows, ...). Preserves locality of pre-sorted datasets.
  kContiguous,
  /// Rows scattered pseudo-randomly (SplitMix64 of the row index orders the
  /// rows before the balanced split). Load-balances clustered datasets.
  kHash,
  /// Rows ordered by their per-dimension mean before the balanced split, so
  /// rows of similar magnitude (typically the same cluster for normalized
  /// clustered data) land on the same device.
  kClusterAware,
};

std::string_view ShardPlacementName(ShardPlacement placement);

/// Parses "contiguous" / "hash" / "cluster" (CLI spelling).
Result<ShardPlacement> ParseShardPlacement(std::string_view name);

/// Build-time knobs of a device fleet. The default (one shard) is the
/// single-device configuration and is bit-identical to a plain PimEngine.
struct ShardOptions {
  /// Logical devices M the dataset is sharded across. Must satisfy
  /// 1 <= shards <= n (rejected with InvalidArgument otherwise).
  int shards = 1;
  ShardPlacement placement = ShardPlacement::kContiguous;
  /// When true, a shard whose device operation fails with DeviceFault
  /// (RecoveryPolicy VerifyMode::kFailOp exhausted its ladder) is
  /// escalated to a host-exact recompute of only that shard instead of
  /// failing the whole fleet operation.
  bool failover = true;
};

/// The row <-> shard mapping of one fleet: rows_per_shard[j] lists the
/// global row ids of shard j in ascending order (the shard-local order),
/// and shard_of/local_of invert the map for O(1) routing.
struct ShardMap {
  std::vector<std::vector<uint32_t>> rows_per_shard;
  std::vector<uint32_t> shard_of;  // global row -> shard.
  std::vector<uint32_t> local_of;  // global row -> row within its shard.

  size_t shards() const { return rows_per_shard.size(); }
};

/// Builds the placement map for `data` under `options`. Fails with
/// InvalidArgument when options.shards < 1 or options.shards > data.rows().
Result<ShardMap> BuildShardMap(const FloatMatrix& data,
                               const ShardOptions& options);

/// Interconnect/fleet accounting of one run over a sharded engine. Unlike
/// the grouping-invariant RunStats counters, these quantities legitimately
/// depend on the fleet geometry (shards, device_batch): they model the
/// host<->device scatter/gather traffic that sharded execution adds. All
/// zero when shards == 1. The ns figures are derived deterministically
/// from the integer message/byte counters and the PimConfig interconnect
/// parameters at snapshot time, so they are identical for every host
/// thread interleaving.
struct FleetRunStats {
  int shards = 1;
  ShardPlacement placement = ShardPlacement::kContiguous;
  /// Query broadcasts: one message per shard per device batch, carrying the
  /// batch's quantized operands.
  uint64_t scatter_messages = 0;
  uint64_t scatter_bytes = 0;
  /// Result gathers: one message per shard per device batch, carrying the
  /// shard's dot-product results.
  uint64_t gather_messages = 0;
  uint64_t gather_bytes = 0;
  /// Tree reduction of k-means centroid partial sums: critical-path
  /// messages (one per tree level) and their payloads.
  uint64_t reduce_messages = 0;
  uint64_t reduce_bytes = 0;
  /// Shards escalated to host-exact recompute after a DeviceFault.
  uint64_t failovers = 0;
  uint64_t failed_over_queries = 0;
  /// Modeled interconnect time (PimTimingModel::TransferLatencyNs applied
  /// to the counters above; see DESIGN.md section 9).
  double scatter_ns = 0.0;
  double gather_ns = 0.0;
  double reduce_ns = 0.0;

  double InterconnectNs() const { return scatter_ns + gather_ns + reduce_ns; }
  bool Any() const {
    return scatter_messages != 0 || gather_messages != 0 ||
           reduce_messages != 0 || failovers != 0;
  }

  std::string ToString() const;
};

}  // namespace pimine

#endif  // PIMINE_PIM_FLEET_H_
