#ifndef PIMINE_PROFILING_RUN_STATS_H_
#define PIMINE_PROFILING_RUN_STATS_H_

#include <cstdint>

#include "obs/histogram.h"
#include "pim/fault_model.h"
#include "pim/fleet.h"
#include "profiling/function_profiler.h"
#include "sim/traffic.h"

namespace pimine {

/// Everything one algorithm run reports. The bench harness composes these
/// into the paper's figures: measured wall time, exact traffic counts (for
/// the analytic cost model), modeled PIM time, and the per-function profile.
struct RunStats {
  /// Measured host wall-clock of the online phase (ms).
  double wall_ms = 0.0;
  /// Host-side operation/traffic counters accumulated during the run.
  TrafficCounters traffic;
  /// Modeled PIM-device time (NVSim role), ns. Zero for baselines.
  double pim_ns = 0.0;
  /// Dominant working-set size streamed by the host (bytes); drives the
  /// cache-level selection in the Fig. 5 breakdown model.
  uint64_t footprint_bytes = 0;
  /// Exact distance computations performed.
  uint64_t exact_count = 0;
  /// Bound evaluations performed (host-combined for PIM variants).
  uint64_t bound_count = 0;
  /// Fault-injection and recovery accounting of the run's PIM device(s).
  /// All-zero for baselines and fault-free PIM runs.
  FaultStats fault;
  /// Fleet interconnect accounting of sharded PIM execution (scatter /
  /// gather / reduction messages and modeled ns). All-zero for baselines
  /// and single-device (shards == 1) runs; the only RunStats block that
  /// legitimately varies with the shard count.
  FleetRunStats fleet;
  /// Per-function wall-time attribution (Fig. 6).
  FunctionProfiler profile;
  /// Modeled-time latency distribution: per-query for kNN paths, per-
  /// iteration for k-means. Populated only while obs::Obs is enabled
  /// (empty otherwise), so the default run path stays bit-identical to an
  /// uninstrumented build. Buckets merge exactly across threads.
  obs::Histogram latency_hist;
};

}  // namespace pimine

#endif  // PIMINE_PROFILING_RUN_STATS_H_
