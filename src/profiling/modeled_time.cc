#include "profiling/modeled_time.h"

#include <algorithm>
#include <sstream>

namespace pimine {

std::string ModeledTime::ToString() const {
  std::ostringstream os;
  os << "modeled=" << total_ms() << "ms (host=" << host.total_ns() / 1e6
     << "ms pim=" << pim_ns / 1e6 << "ms)";
  return os.str();
}

ModeledTime ComposeModeledTime(const RunStats& stats,
                               const HostCostModel& model) {
  ModeledTime out;
  out.host = model.EstimateBreakdown(stats.traffic, stats.footprint_bytes);
  out.pim_ns = stats.pim_ns;
  return out;
}

double PimOracleNs(double total_ns, double offloadable_ns) {
  return std::max(0.0, total_ns - offloadable_ns);
}

}  // namespace pimine
