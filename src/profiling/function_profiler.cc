#include "profiling/function_profiler.h"

namespace pimine {

void FunctionProfiler::Add(std::string_view tag, int64_t ns) {
  for (auto& [name, total] : entries_) {
    if (name == tag) {
      total += ns;
      return;
    }
  }
  entries_.emplace_back(std::string(tag), ns);
}

int64_t FunctionProfiler::Get(std::string_view tag) const {
  for (const auto& [name, total] : entries_) {
    if (name == tag) return total;
  }
  return 0;
}

int64_t FunctionProfiler::TotalAttributedNs() const {
  int64_t total = 0;
  for (const auto& [name, ns] : entries_) total += ns;
  return total;
}

void FunctionProfiler::Merge(const FunctionProfiler& other) {
  for (const auto& [name, ns] : other.entries_) Add(name, ns);
}

}  // namespace pimine
