#ifndef PIMINE_PROFILING_MODELED_TIME_H_
#define PIMINE_PROFILING_MODELED_TIME_H_

#include <string>

#include "profiling/run_stats.h"
#include "sim/cost_model.h"

namespace pimine {

/// End-to-end modeled time of one algorithm run, composed the way the paper
/// composes its two simulators (§VI-A): host time from the analytic cost
/// model (Quartz role) plus PIM-device time (NVSim role).
struct ModeledTime {
  HardwareBreakdown host;
  double pim_ns = 0.0;

  double total_ns() const { return host.total_ns() + pim_ns; }
  double total_ms() const { return total_ns() / 1e6; }
  std::string ToString() const;
};

/// Converts a run's exact operation counts into modeled time.
ModeledTime ComposeModeledTime(const RunStats& stats,
                               const HostCostModel& model);

/// Eq. 2: the PIM-oracle lower bound — the run's time with the offloadable
/// functions' time set to zero. `offloadable_ns` is the profiled time of
/// the functions in set F (ED and bound functions).
double PimOracleNs(double total_ns, double offloadable_ns);

}  // namespace pimine

#endif  // PIMINE_PROFILING_MODELED_TIME_H_
