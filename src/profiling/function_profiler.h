#ifndef PIMINE_PROFILING_FUNCTION_PROFILER_H_
#define PIMINE_PROFILING_FUNCTION_PROFILER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace pimine {

/// §IV-B: decomposes an algorithm's execution time into per-function
/// components (T_f1 ... T_ft plus T_other). Algorithms charge wall time to
/// named functions ("ED", "LB_FNN", "bound update", ...); whatever part of
/// the run is not attributed shows up as "Other" when rendered against the
/// total.
class FunctionProfiler {
 public:
  /// Adds `ns` to the accumulator for `tag` (created on first use).
  void Add(std::string_view tag, int64_t ns);

  /// Nanoseconds charged to `tag` (0 if never seen).
  int64_t Get(std::string_view tag) const;

  /// Sum over all tags.
  int64_t TotalAttributedNs() const;

  /// (tag, ns) pairs in first-use order.
  const std::vector<std::pair<std::string, int64_t>>& entries() const {
    return entries_;
  }

  /// Drops every accumulator and tag. After Reset() the profiler behaves
  /// exactly like a freshly constructed one: a subsequent Merge() adopts
  /// the other profiler's tags in *its* first-use order (pre-reset order is
  /// forgotten), and Get() returns 0 for all previously known tags. Only
  /// the underlying vector capacity is retained, as an allocation
  /// optimization with no observable effect.
  void Reset() { entries_.clear(); }

  /// Merges another profiler's accumulators into this one: existing tags
  /// add, unseen tags append in `other`'s first-use order.
  void Merge(const FunctionProfiler& other);

 private:
  // Small linear-probed vector: profiles hold a handful of tags, and
  // first-use order is what the Fig. 6 rendering wants.
  std::vector<std::pair<std::string, int64_t>> entries_;
};

/// RAII timer charging its scope to `tag`. A null `profiler` makes the
/// timer a no-op, so call sites with optional profiling need no guard.
class ScopedFunctionTimer {
 public:
  ScopedFunctionTimer(FunctionProfiler* profiler, std::string_view tag)
      : profiler_(profiler), tag_(tag) {}
  ~ScopedFunctionTimer() {
    if (profiler_ != nullptr) profiler_->Add(tag_, timer_.ElapsedNanos());
  }

  ScopedFunctionTimer(const ScopedFunctionTimer&) = delete;
  ScopedFunctionTimer& operator=(const ScopedFunctionTimer&) = delete;

 private:
  FunctionProfiler* profiler_;
  std::string_view tag_;
  Timer timer_;
};

}  // namespace pimine

#endif  // PIMINE_PROFILING_FUNCTION_PROFILER_H_
