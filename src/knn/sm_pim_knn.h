#ifndef PIMINE_KNN_SM_PIM_KNN_H_
#define PIMINE_KNN_SM_PIM_KNN_H_

#include <memory>

#include "core/engine.h"
#include "core/mutable_dataset.h"
#include "core/sharded_engine.h"
#include "knn/knn_common.h"

namespace pimine {

/// SM-PIM: SM with its bottleneck bound LB_SM replaced by the PIM-aware
/// means-only segment bound. Theorem 4 picks the segment count (as large as
/// the PIM array allows), so the PIM bound is typically *tighter* than the
/// original LB_SM^{d/4} while transferring only 3*b bits per candidate.
///
/// As a MutationListener the path mirrors inserts/deletes/compactions onto
/// the fleet (the engine maintains the per-row segment statistics itself).
class SmPimKnn : public KnnAlgorithm, public MutationListener {
 public:
  explicit SmPimKnn(EngineOptions options);

  std::string_view name() const override { return "SM-PIM"; }
  Status Prepare(const FloatMatrix& data) override;
  Result<KnnRunResult> Search(const FloatMatrix& queries, int k) override;

  Status OnInsert(const FloatMatrix& rows) override;
  Status OnDelete(std::span<const uint32_t> rows) override;
  Status OnCompact(const std::vector<uint32_t>& live) override;

  double OfflineModeledNs() const override {
    return engine_ ? engine_->OfflineNs() : 0.0;
  }
  uint64_t OfflineBytesWritten() const override {
    return engine_ ? engine_->OfflineBytesWritten() : 0;
  }
  const ShardedPimEngine* engine() const { return engine_.get(); }

 private:
  EngineOptions options_;
  const FloatMatrix* data_ = nullptr;
  std::unique_ptr<ShardedPimEngine> engine_;
};

}  // namespace pimine

#endif  // PIMINE_KNN_SM_PIM_KNN_H_
