#ifndef PIMINE_KNN_STANDARD_PIM_KNN_H_
#define PIMINE_KNN_STANDARD_PIM_KNN_H_

#include <memory>

#include "core/engine.h"
#include "core/mutable_dataset.h"
#include "core/sharded_engine.h"
#include "knn/knn_common.h"

namespace pimine {

/// Standard-PIM (§VI-B): the linear scan with its exact-distance bottleneck
/// offloaded to PIM. For ED the engine supplies LB_PIM-FNN / LB_PIM-ED
/// lower bounds (Theorem 4 picks the compressed dimensionality); objects
/// are refined in ascending-bound order with exact ED, so results match
/// Standard exactly. For CS/PCC the engine supplies upper bounds on the
/// similarity and refinement runs in descending-bound order.
///
/// As a MutationListener (attach after Prepare to the MutableDataset
/// whose corpus() was Prepared) the path mirrors inserts/deletes/
/// compactions onto the fleet, staying bit-identical to a fresh build of
/// the live corpus.
class StandardPimKnn : public KnnAlgorithm, public MutationListener {
 public:
  StandardPimKnn(Distance distance, EngineOptions options);

  std::string_view name() const override { return "Standard-PIM"; }
  Status Prepare(const FloatMatrix& data) override;
  Result<KnnRunResult> Search(const FloatMatrix& queries, int k) override;

  Status OnInsert(const FloatMatrix& rows) override;
  Status OnDelete(std::span<const uint32_t> rows) override;
  Status OnCompact(const std::vector<uint32_t>& live) override;

  double OfflineModeledNs() const override {
    return engine_ ? engine_->OfflineNs() : 0.0;
  }
  uint64_t OfflineBytesWritten() const override {
    return engine_ ? engine_->OfflineBytesWritten() : 0;
  }
  const ShardedPimEngine* engine() const { return engine_.get(); }

 private:
  Distance distance_;
  EngineOptions options_;
  const FloatMatrix* data_ = nullptr;
  std::unique_ptr<ShardedPimEngine> engine_;
};

}  // namespace pimine

#endif  // PIMINE_KNN_STANDARD_PIM_KNN_H_
