#include "knn/approximate_pim_knn.h"

#include "common/logging.h"
#include "sim/traffic.h"
#include "util/timer.h"

namespace pimine {

ApproximatePimKnn::ApproximatePimKnn(EngineOptions options)
    : options_(std::move(options)), quantizer_(options_.alpha) {}

Status ApproximatePimKnn::Prepare(const FloatMatrix& data) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  for (size_t i = 0; i < data.rows(); ++i) {
    for (float v : data.row(i)) {
      if (!(v >= 0.0f && v <= 1.0f)) {
        return Status::InvalidArgument("data must be normalized into [0, 1]");
      }
    }
  }
  data_ = &data;
  device_ = std::make_unique<PimDevice>(options_.pim_config);
  const IntMatrix quantized = quantizer_.Quantize(data);
  PIMINE_RETURN_IF_ERROR(
      device_->ProgramDataset(quantized, options_.operand_bits));

  floor_norms_.resize(data.rows());
  for (size_t i = 0; i < data.rows(); ++i) {
    double acc = 0.0;
    for (int32_t v : quantized.row(i)) {
      acc += static_cast<double>(v) * v;
    }
    floor_norms_[i] = acc;
  }
  offline_ns_ = device_->stats().program_ns;
  return Status::OK();
}

Result<KnnRunResult> ApproximatePimKnn::Search(const FloatMatrix& queries,
                                               int k) {
  if (device_ == nullptr) return Status::FailedPrecondition("Prepare first");
  if (queries.cols() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (k <= 0 || static_cast<size_t>(k) > data_->rows()) {
    return Status::InvalidArgument("k out of range");
  }

  KnnRunResult result;
  result.neighbors.reserve(queries.rows());
  device_->ResetOnlineStats();
  TrafficScope traffic_scope;
  Timer wall;

  const size_t n = data_->rows();
  const double alpha_sq = quantizer_.alpha() * quantizer_.alpha();
  std::vector<int32_t> quantized_query(data_->cols());
  std::vector<uint64_t> dots;

  for (size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto q = queries.row(qi);
    ScopedFunctionTimer timer(&result.stats.profile, "ED_approx");
    quantizer_.QuantizeRow(q, quantized_query);
    double q_norm = 0.0;
    for (int32_t v : quantized_query) {
      q_norm += static_cast<double>(v) * v;
    }
    PIMINE_RETURN_IF_ERROR(device_->DotProductAll(quantized_query, &dots));

    TopK topk(static_cast<size_t>(k));
    for (size_t i = 0; i < n; ++i) {
      const double approx =
          (floor_norms_[i] + q_norm - 2.0 * static_cast<double>(dots[i])) /
          alpha_sq;
      topk.Push(approx, static_cast<int32_t>(i));
    }
    traffic::CountPimResults(n);
    traffic::CountArithmetic(4 * n);
    result.stats.bound_count += n;  // no exact computation at all.
    result.neighbors.push_back(topk.TakeSorted());
  }

  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  result.stats.pim_ns = device_->stats().compute_ns;
  result.stats.footprint_bytes = n * sizeof(double) * 2;
  return result;
}

double RecallAtK(const std::vector<Neighbor>& exact,
                 const std::vector<Neighbor>& approx) {
  if (exact.empty()) return 1.0;
  size_t hits = 0;
  for (const Neighbor& a : approx) {
    for (const Neighbor& e : exact) {
      if (a.id == e.id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(exact.size());
}

}  // namespace pimine
