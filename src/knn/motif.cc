#include "knn/motif.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/similarity.h"
#include "util/timer.h"

namespace pimine {
namespace {

Status ValidateMotifInput(const FloatMatrix& windows,
                          const MotifOptions& options, int64_t* exclusion) {
  if (windows.rows() < 2) {
    return Status::InvalidArgument("need at least two windows");
  }
  *exclusion = options.exclusion > 0
                   ? options.exclusion
                   : std::max<int64_t>(1, options.window / 2);
  if (static_cast<size_t>(*exclusion) + 1 >= windows.rows()) {
    return Status::InvalidArgument("exclusion zone leaves no valid pair");
  }
  return Status::OK();
}

}  // namespace

Result<FloatMatrix> ExtractWindows(std::span<const float> series,
                                   int64_t window) {
  if (window <= 0 || static_cast<size_t>(window) > series.size()) {
    return Status::InvalidArgument("window must be in [1, series length]");
  }
  float lo = series[0];
  float hi = series[0];
  for (float v : series) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const float range = hi - lo;
  const size_t n = series.size() - static_cast<size_t>(window) + 1;
  FloatMatrix windows(n, static_cast<size_t>(window));
  for (size_t i = 0; i < n; ++i) {
    auto row = windows.mutable_row(i);
    for (int64_t j = 0; j < window; ++j) {
      row[j] = range > 0.0f ? (series[i + j] - lo) / range : 0.0f;
    }
  }
  return windows;
}

Result<MotifResult> MotifDiscovery::Find(const FloatMatrix& windows,
                                         const MotifOptions& options) {
  int64_t exclusion = 0;
  PIMINE_RETURN_IF_ERROR(ValidateMotifInput(windows, options, &exclusion));

  MotifResult result;
  result.stats.footprint_bytes = windows.SizeBytes();
  TrafficScope traffic_scope;
  Timer wall;

  const size_t n = windows.rows();
  double best = HUGE_VAL;
  ScopedFunctionTimer timer(&result.stats.profile, "ED");
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + static_cast<size_t>(exclusion) + 1; j < n; ++j) {
      const double d =
          SquaredEuclideanEarlyAbandon(windows.row(i), windows.row(j), best);
      ++result.stats.exact_count;
      if (d < best) {
        best = d;
        result.first = static_cast<int32_t>(i);
        result.second = static_cast<int32_t>(j);
      }
    }
  }
  result.distance = best;
  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  return result;
}

PimMotifDiscovery::PimMotifDiscovery(EngineOptions options)
    : options_(std::move(options)) {}

Result<MotifResult> PimMotifDiscovery::Find(const FloatMatrix& windows,
                                            const MotifOptions& options) {
  int64_t exclusion = 0;
  PIMINE_RETURN_IF_ERROR(ValidateMotifInput(windows, options, &exclusion));
  PIMINE_ASSIGN_OR_RETURN(
      std::unique_ptr<PimEngine> engine,
      PimEngine::Build(windows, Distance::kEuclidean, options_));

  MotifResult result;
  TrafficScope traffic_scope;
  Timer wall;

  const size_t n = windows.rows();
  double best = HUGE_VAL;
  for (size_t i = 0; i + static_cast<size_t>(exclusion) + 1 < n; ++i) {
    PimEngine::QueryHandle handle;
    {
      ScopedFunctionTimer timer(&result.stats.profile, "LB_PIM");
      PIMINE_ASSIGN_OR_RETURN(handle, engine->RunQuery(windows.row(i)));
    }
    ScopedFunctionTimer timer(&result.stats.profile, "ED");
    for (size_t j = i + static_cast<size_t>(exclusion) + 1; j < n; ++j) {
      ++result.stats.bound_count;
      if (engine->BoundFor(handle, j) >= best) continue;
      const double d =
          SquaredEuclideanEarlyAbandon(windows.row(i), windows.row(j), best);
      ++result.stats.exact_count;
      if (d < best) {
        best = d;
        result.first = static_cast<int32_t>(i);
        result.second = static_cast<int32_t>(j);
      }
    }
  }
  result.distance = best;
  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  result.stats.pim_ns = engine->PimComputeNs();
  result.stats.footprint_bytes = n * sizeof(uint64_t) * 2;
  return result;
}

}  // namespace pimine
