#ifndef PIMINE_KNN_KNN_COMMON_H_
#define PIMINE_KNN_KNN_COMMON_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/matrix.h"
#include "obs/histogram.h"
#include "profiling/run_stats.h"
#include "util/parallel.h"
#include "util/top_k.h"

namespace pimine {

/// Result of one kNN batch: per-query neighbour lists (sorted by distance
/// ascending, or similarity descending for CS/PCC) plus run accounting.
struct KnnRunResult {
  std::vector<std::vector<Neighbor>> neighbors;
  RunStats stats;
};

/// Interface shared by the four baseline algorithms of §VI-B (Standard,
/// OST, SM, FNN) and their PIM-optimized counterparts. The data matrix
/// passed to Prepare must outlive the algorithm (algorithms keep a
/// reference; datasets are large and are never copied).
class KnnAlgorithm {
 public:
  virtual ~KnnAlgorithm() = default;

  virtual std::string_view name() const = 0;

  /// Offline stage: builds statistics / programs PIM. Callers time this for
  /// the Fig. 17 pre-processing comparison.
  virtual Status Prepare(const FloatMatrix& data) = 0;

  /// Online stage: answers every row of `queries`.
  virtual Result<KnnRunResult> Search(const FloatMatrix& queries, int k) = 0;

  /// Modeled offline cost (device programming; 0 for pure-host baselines —
  /// their offline cost is the measured Prepare wall time).
  virtual double OfflineModeledNs() const { return 0.0; }

  /// Bytes written during Prepare (reduced vectors / programmed crossbars),
  /// the quantity behind the paper's "33.3% less write access" claim.
  virtual uint64_t OfflineBytesWritten() const { return 0; }

  /// Host-side execution policy for Search. Queries are independent, so
  /// batches are spread across `policy.num_threads` workers; neighbours and
  /// aggregated traffic counters are identical for every thread count (see
  /// DESIGN.md). The default policy is serial, preserving the paper's
  /// single-threaded measurement setup.
  void set_exec_policy(const ExecPolicy& policy) { exec_policy_ = policy; }
  const ExecPolicy& exec_policy() const { return exec_policy_; }

 protected:
  ExecPolicy exec_policy_;
};

/// Per-worker accumulation slot for a parallel Search: worker threads
/// charge their counters and per-function wall time here and the harness
/// folds the slots into RunStats in slot order once the batch drains.
struct SearchSlot {
  uint64_t exact_count = 0;
  uint64_t bound_count = 0;
  FunctionProfiler profile;
  /// Per-query modeled latencies recorded by obs::QuerySpan (empty while
  /// observability is disabled). Integer buckets merge exactly, so folding
  /// slots in slot order yields the same histogram for any thread count.
  obs::Histogram latency;
  Status status;  // first per-query failure observed by this worker.
};

/// Runs `run_query(qi, slot_index, slot)` for every query in [0,
/// num_queries), one query per work unit, across the policy's workers
/// (inline when serial). Slot stats are merged into `stats` in slot order;
/// returns the first error any worker recorded. Workers stop claiming new
/// queries once their slot holds an error.
Status RunQueriesWithPolicy(
    const ExecPolicy& policy, size_t num_queries, RunStats* stats,
    const std::function<void(size_t, size_t, SearchSlot&)>& run_query);

/// Batched variant for PIM algorithms: workers claim whole device batches
/// of `policy.device_batch` queries (the final batch may be short) and
/// `run_batch(begin, end, slot_index, slot)` answers queries [begin, end)
/// with ONE PimEngine::RunQueryBatch. Merging and error handling match
/// RunQueriesWithPolicy; batch boundaries depend only on device_batch, so
/// results and modeled stats are reproducible for any thread count.
Status RunQueryBatchesWithPolicy(
    const ExecPolicy& policy, size_t num_queries, RunStats* stats,
    const std::function<void(size_t, size_t, size_t, SearchSlot&)>& run_batch);

/// Worker slots a batched Search needs for `num_queries` under `policy`
/// (scratch-sizing counterpart of NumSlots for device batches).
size_t NumBatchSlots(const ExecPolicy& policy, size_t num_queries);

/// Indices [0, n) sorted so values[out[0]] <= values[out[1]] <= ... Charges
/// the sort's traffic to the thread-local counters.
std::vector<uint32_t> ArgsortAscending(std::span<const double> values);

/// Extracts sorted neighbours from `topk` for a similarity measure run
/// where -similarity was pushed as "distance": flips the sign back and
/// reverses the order so the most similar object comes first.
std::vector<Neighbor> FinalizeSimilarityNeighbors(TopK& topk);

}  // namespace pimine

#endif  // PIMINE_KNN_KNN_COMMON_H_
