#ifndef PIMINE_KNN_HAMMING_KNN_H_
#define PIMINE_KNN_HAMMING_KNN_H_

#include <memory>

#include "core/hamming_engine.h"
#include "data/bit_matrix.h"
#include "knn/knn_common.h"
#include "pim/pim_config.h"

namespace pimine {

/// kNN on binary codes (Fig. 14). The paper notes that for Hamming distance
/// there is no technique meaningfully better than a linear scan (§II-C), so
/// the baseline is an exhaustive XOR/popcount scan and the PIM variant is
/// the same scan with the distance computation done in the crossbars
/// (exactly — HD needs no quantization bound).

/// Host baseline: XOR + popcount over the packed codes; transfers d bits
/// per candidate.
class HammingScanKnn {
 public:
  Status Prepare(const BitMatrix& codes);
  Result<KnnRunResult> Search(const BitMatrix& queries, int k);

  std::string_view name() const { return "Standard"; }

 private:
  const BitMatrix* codes_ = nullptr;
};

/// PIM variant: the two Table 4 dot products per candidate run in the PIM
/// array; the host loads 64 bits per candidate (two 32-bit results) and
/// selects the top-k.
class HammingPimKnn {
 public:
  explicit HammingPimKnn(PimConfig config = PimConfig());

  Status Prepare(const BitMatrix& codes);
  Result<KnnRunResult> Search(const BitMatrix& queries, int k);

  std::string_view name() const { return "Standard-PIM"; }
  double OfflineModeledNs() const {
    return engine_ ? engine_->OfflineNs() : 0.0;
  }

 private:
  PimConfig config_;
  std::unique_ptr<PimHammingEngine> engine_;
};

}  // namespace pimine

#endif  // PIMINE_KNN_HAMMING_KNN_H_
