#ifndef PIMINE_KNN_SM_KNN_H_
#define PIMINE_KNN_SM_KNN_H_

#include "core/segments.h"
#include "knn/knn_common.h"

namespace pimine {

/// SM (Yi & Faloutsos, VLDB'00): filter-and-refine with the segmented-mean
/// lower bound LB_SM (Table 3), d0 = d/4 segments by default.
class SmKnn : public KnnAlgorithm {
 public:
  /// `segment_divisor` sets d0 = max(1, d / segment_divisor).
  explicit SmKnn(int64_t segment_divisor = 4);

  std::string_view name() const override { return "SM"; }
  Status Prepare(const FloatMatrix& data) override;
  Result<KnnRunResult> Search(const FloatMatrix& queries, int k) override;

  uint64_t OfflineBytesWritten() const override {
    return stats_.means.SizeBytes();
  }
  int64_t num_segments() const { return stats_.num_segments; }

 private:
  int64_t segment_divisor_;
  const FloatMatrix* data_ = nullptr;
  SegmentStats stats_;
};

}  // namespace pimine

#endif  // PIMINE_KNN_SM_KNN_H_
