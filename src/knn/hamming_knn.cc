#include "knn/hamming_knn.h"

#include "common/logging.h"
#include "sim/traffic.h"
#include "util/timer.h"

namespace pimine {

Status HammingScanKnn::Prepare(const BitMatrix& codes) {
  if (codes.rows() == 0) return Status::InvalidArgument("empty codes");
  codes_ = &codes;
  return Status::OK();
}

Result<KnnRunResult> HammingScanKnn::Search(const BitMatrix& queries, int k) {
  if (codes_ == nullptr) return Status::FailedPrecondition("Prepare first");
  if (queries.bits() != codes_->bits()) {
    return Status::InvalidArgument("code width mismatch");
  }
  if (k <= 0 || static_cast<size_t>(k) > codes_->rows()) {
    return Status::InvalidArgument("k out of range");
  }

  KnnRunResult result;
  result.neighbors.reserve(queries.rows());
  result.stats.footprint_bytes = codes_->SizeBytes();
  TrafficScope traffic_scope;
  Timer wall;

  const size_t n = codes_->rows();
  const size_t words = codes_->words_per_row();
  for (size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto q = queries.row(qi);
    TopK topk(static_cast<size_t>(k));
    ScopedFunctionTimer timer(&result.stats.profile, "HD");
    for (size_t i = 0; i < n; ++i) {
      const int hd = BitMatrix::HammingDistance(codes_->row(i), q);
      topk.Push(static_cast<double>(hd), static_cast<int32_t>(i));
    }
    traffic::CountRead(n * words * sizeof(uint64_t));
    traffic::CountArithmetic(n * words * 2);
    result.stats.exact_count += n;
    result.neighbors.push_back(topk.TakeSorted());
  }

  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  return result;
}

HammingPimKnn::HammingPimKnn(PimConfig config) : config_(config) {}

Status HammingPimKnn::Prepare(const BitMatrix& codes) {
  if (codes.rows() == 0) return Status::InvalidArgument("empty codes");
  PIMINE_ASSIGN_OR_RETURN(engine_, PimHammingEngine::Build(codes, config_));
  return Status::OK();
}

Result<KnnRunResult> HammingPimKnn::Search(const BitMatrix& queries, int k) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  if (queries.bits() != engine_->code_bits()) {
    return Status::InvalidArgument("code width mismatch");
  }
  if (k <= 0 || static_cast<size_t>(k) > engine_->num_objects()) {
    return Status::InvalidArgument("k out of range");
  }

  KnnRunResult result;
  result.neighbors.reserve(queries.rows());
  engine_->ResetOnlineStats();
  TrafficScope traffic_scope;
  Timer wall;

  const size_t n = engine_->num_objects();
  std::vector<int32_t> distances;
  for (size_t qi = 0; qi < queries.rows(); ++qi) {
    TopK topk(static_cast<size_t>(k));
    ScopedFunctionTimer timer(&result.stats.profile, "HD_PIM");
    PIMINE_RETURN_IF_ERROR(
        engine_->ComputeDistances(queries.row(qi), &distances));
    for (size_t i = 0; i < n; ++i) {
      topk.Push(static_cast<double>(distances[i]), static_cast<int32_t>(i));
    }
    // Host loads two 32-bit PIM results per candidate from the buffer.
    traffic::CountPimResults(n);
    traffic::CountArithmetic(2 * n);
    result.stats.exact_count += n;
    result.neighbors.push_back(topk.TakeSorted());
  }

  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  result.stats.pim_ns = engine_->PimComputeNs();
  result.stats.footprint_bytes = n * sizeof(uint64_t);
  return result;
}

}  // namespace pimine
