#include "knn/standard_pim_knn.h"

#include <algorithm>

#include "common/logging.h"
#include "core/similarity.h"
#include "util/timer.h"

namespace pimine {

StandardPimKnn::StandardPimKnn(Distance distance, EngineOptions options)
    : distance_(distance), options_(std::move(options)) {
  PIMINE_CHECK(distance != Distance::kHamming)
      << "use HammingPimKnn for binary codes";
}

Status StandardPimKnn::Prepare(const FloatMatrix& data) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  data_ = &data;
  PIMINE_ASSIGN_OR_RETURN(engine_,
                          PimEngine::Build(data, distance_, options_));
  return Status::OK();
}

Result<KnnRunResult> StandardPimKnn::Search(const FloatMatrix& queries,
                                            int k) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  if (queries.cols() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (k <= 0 || static_cast<size_t>(k) > data_->rows()) {
    return Status::InvalidArgument("k out of range");
  }

  KnnRunResult result;
  result.neighbors.reserve(queries.rows());
  engine_->ResetOnlineStats();
  TrafficScope traffic_scope;
  Timer wall;

  const size_t n = data_->rows();
  const bool maximize = IsSimilarityMeasure(distance_);
  std::vector<double> bounds(n);

  for (size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto q = queries.row(qi);
    TopK topk(static_cast<size_t>(k));

    // PIM filter phase: one (or two) batch dot-products + O(1) combines.
    {
      ScopedFunctionTimer timer(&result.stats.profile, "LB_PIM");
      PIMINE_ASSIGN_OR_RETURN(PimEngine::QueryHandle handle,
                              engine_->RunQuery(q));
      for (size_t i = 0; i < n; ++i) {
        // Negate similarity upper bounds so ascending order = most
        // promising first for both measure families.
        const double b = engine_->BoundFor(handle, i);
        bounds[i] = maximize ? -b : b;
      }
      result.stats.bound_count += n;
    }

    std::vector<uint32_t> order;
    {
      ScopedFunctionTimer timer(&result.stats.profile, "LB_PIM");
      order = ArgsortAscending(bounds);
    }
    for (uint32_t idx : order) {
      if (topk.full() && bounds[idx] >= topk.threshold()) break;
      if (distance_ == Distance::kEuclidean) {
        ScopedFunctionTimer timer(&result.stats.profile, "ED");
        const double d = SquaredEuclideanEarlyAbandon(data_->row(idx), q,
                                                      topk.threshold());
        topk.Push(d, static_cast<int32_t>(idx));
      } else {
        const char* tag = distance_ == Distance::kCosine ? "CS" : "PCC";
        ScopedFunctionTimer timer(&result.stats.profile, tag);
        const double sim = distance_ == Distance::kCosine
                               ? CosineSimilarity(data_->row(idx), q)
                               : PearsonCorrelation(data_->row(idx), q);
        topk.Push(-sim, static_cast<int32_t>(idx));
      }
      ++result.stats.exact_count;
    }
    result.neighbors.push_back(maximize ? FinalizeSimilarityNeighbors(topk)
                                        : topk.TakeSorted());
  }

  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  result.stats.pim_ns = engine_->PimComputeNs();
  // Host working set: bound arrays + the refined rows.
  result.stats.footprint_bytes =
      n * sizeof(double) * 2 +
      (result.stats.exact_count / std::max<uint64_t>(1, queries.rows())) *
          data_->cols() * sizeof(float);
  return result;
}

}  // namespace pimine
