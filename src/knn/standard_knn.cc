#include "knn/standard_knn.h"

#include <algorithm>

#include "common/logging.h"
#include "util/timer.h"

namespace pimine {

StandardKnn::StandardKnn(Distance distance) : distance_(distance) {
  PIMINE_CHECK(distance != Distance::kHamming)
      << "use HammingScanKnn for binary codes";
  name_ = "Standard";
}

Status StandardKnn::Prepare(const FloatMatrix& data) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  data_ = &data;
  return Status::OK();
}

Result<KnnRunResult> StandardKnn::Search(const FloatMatrix& queries, int k) {
  if (data_ == nullptr) return Status::FailedPrecondition("Prepare first");
  if (queries.cols() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (k <= 0 || static_cast<size_t>(k) > data_->rows()) {
    return Status::InvalidArgument("k out of range");
  }

  KnnRunResult result;
  result.neighbors.resize(queries.rows());
  result.stats.footprint_bytes = data_->SizeBytes();
  traffic::AggregateScope traffic_scope;
  Timer wall;

  const ExecPolicy& policy = exec_policy_;
  const size_t n = data_->rows();
  const size_t d = data_->cols();
  const size_t block = std::max<size_t>(1, policy.block_size);
  // Per-worker distance-block scratch, allocated once per Search (not per
  // query) and reused across every query the worker claims.
  std::vector<std::vector<double>> block_scratch(
      NumSlots(policy, queries.rows(), 1), std::vector<double>(block));

  Status status = RunQueriesWithPolicy(
      policy, queries.rows(), &result.stats,
      [&](size_t qi, size_t slot_index, SearchSlot& slot) {
        const auto q = queries.row(qi);
        std::vector<double>& distances = block_scratch[slot_index];
        TopK topk(static_cast<size_t>(k));
        if (distance_ == Distance::kEuclidean) {
          // Distances are computed in blocks so the "ED" profile tag covers
          // only the distance function itself; top-k maintenance is charged
          // to the (unattributed) remainder, like the paper's per-function
          // breakdown. The pruning threshold refreshes between blocks,
          // which keeps early abandoning exact; the blocked kernel computes
          // full distances instead.
          for (size_t begin = 0; begin < n; begin += block) {
            const size_t end = std::min(n, begin + block);
            {
              ScopedFunctionTimer timer(&slot.profile, "ED");
              if (policy.blocked_kernels) {
                SquaredEuclideanBatch(data_->data() + begin * d, end - begin,
                                      q, distances.data());
              } else {
                const double threshold = topk.threshold();
                for (size_t i = begin; i < end; ++i) {
                  distances[i - begin] = SquaredEuclideanEarlyAbandon(
                      data_->row(i), q, threshold);
                }
              }
            }
            for (size_t i = begin; i < end; ++i) {
              topk.Push(distances[i - begin], static_cast<int32_t>(i));
            }
          }
          slot.exact_count += n;
          result.neighbors[qi] = topk.TakeSorted();
        } else {
          const bool cosine = distance_ == Distance::kCosine;
          const char* tag = cosine ? "CS" : "PCC";
          if (policy.blocked_kernels) {
            for (size_t begin = 0; begin < n; begin += block) {
              const size_t end = std::min(n, begin + block);
              {
                ScopedFunctionTimer timer(&slot.profile, tag);
                if (cosine) {
                  CosineSimilarityBatch(data_->data() + begin * d,
                                        end - begin, q, distances.data());
                } else {
                  PearsonBatch(data_->data() + begin * d, end - begin, q,
                               distances.data());
                }
              }
              for (size_t i = begin; i < end; ++i) {
                topk.Push(-distances[i - begin], static_cast<int32_t>(i));
              }
            }
          } else {
            ScopedFunctionTimer timer(&slot.profile, tag);
            for (size_t i = 0; i < n; ++i) {
              const double sim = cosine ? CosineSimilarity(data_->row(i), q)
                                        : PearsonCorrelation(data_->row(i), q);
              topk.Push(-sim, static_cast<int32_t>(i));
            }
          }
          slot.exact_count += n;
          result.neighbors[qi] = FinalizeSimilarityNeighbors(topk);
        }
      });
  PIMINE_RETURN_IF_ERROR(status);

  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  return result;
}

}  // namespace pimine
