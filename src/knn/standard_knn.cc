#include "knn/standard_knn.h"

#include <algorithm>

#include "common/logging.h"
#include "util/timer.h"

namespace pimine {

StandardKnn::StandardKnn(Distance distance) : distance_(distance) {
  PIMINE_CHECK(distance != Distance::kHamming)
      << "use HammingScanKnn for binary codes";
  name_ = "Standard";
}

Status StandardKnn::Prepare(const FloatMatrix& data) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  data_ = &data;
  return Status::OK();
}

Result<KnnRunResult> StandardKnn::Search(const FloatMatrix& queries, int k) {
  if (data_ == nullptr) return Status::FailedPrecondition("Prepare first");
  if (queries.cols() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (k <= 0 || static_cast<size_t>(k) > data_->rows()) {
    return Status::InvalidArgument("k out of range");
  }

  KnnRunResult result;
  result.neighbors.reserve(queries.rows());
  result.stats.footprint_bytes = data_->SizeBytes();
  TrafficScope traffic_scope;
  Timer wall;

  const size_t n = data_->rows();
  for (size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto q = queries.row(qi);
    TopK topk(static_cast<size_t>(k));
    if (distance_ == Distance::kEuclidean) {
      // Distances are computed in blocks so the "ED" profile tag covers
      // only the distance function itself; top-k maintenance is charged to
      // the (unattributed) remainder, like the paper's per-function
      // breakdown. The pruning threshold refreshes between blocks, which
      // keeps early abandoning exact.
      constexpr size_t kBlock = 512;
      std::vector<double> block(kBlock);
      for (size_t begin = 0; begin < n; begin += kBlock) {
        const size_t end = std::min(n, begin + kBlock);
        {
          ScopedFunctionTimer timer(&result.stats.profile, "ED");
          const double threshold = topk.threshold();
          for (size_t i = begin; i < end; ++i) {
            block[i - begin] =
                SquaredEuclideanEarlyAbandon(data_->row(i), q, threshold);
          }
        }
        for (size_t i = begin; i < end; ++i) {
          topk.Push(block[i - begin], static_cast<int32_t>(i));
        }
      }
      result.stats.exact_count += n;
      result.neighbors.push_back(topk.TakeSorted());
    } else {
      const char* tag = distance_ == Distance::kCosine ? "CS" : "PCC";
      ScopedFunctionTimer timer(&result.stats.profile, tag);
      for (size_t i = 0; i < n; ++i) {
        const double sim = distance_ == Distance::kCosine
                               ? CosineSimilarity(data_->row(i), q)
                               : PearsonCorrelation(data_->row(i), q);
        topk.Push(-sim, static_cast<int32_t>(i));
      }
      result.stats.exact_count += n;
      result.neighbors.push_back(FinalizeSimilarityNeighbors(topk));
    }
  }

  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  return result;
}

}  // namespace pimine
