#ifndef PIMINE_KNN_OST_PIM_KNN_H_
#define PIMINE_KNN_OST_PIM_KNN_H_

#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/mutable_dataset.h"
#include "core/sharded_engine.h"
#include "knn/knn_common.h"

namespace pimine {

/// OST-PIM: OST with the prefix part of LB_OST offloaded to PIM. The bound
/// decomposes (Table 3/4) as
///   LB_OST = [ partial ED on the d0-dim prefix ] + (|p_sfx| - |q_sfx|)^2;
/// the prefix term is itself a PIM-aware ED, so PIM supplies a Theorem 1
/// lower bound on it while the suffix-norm term stays exact on the host
/// (one precomputed scalar per object). The result is a valid lower bound
/// on LB_OST and hence on ED.
class OstPimKnn : public KnnAlgorithm, public MutationListener {
 public:
  /// `prefix_divisor` sets d0 = max(1, d / prefix_divisor), matching OstKnn.
  explicit OstPimKnn(EngineOptions options, int64_t prefix_divisor = 4);

  std::string_view name() const override { return "OST-PIM"; }
  Status Prepare(const FloatMatrix& data) override;
  Result<KnnRunResult> Search(const FloatMatrix& queries, int k) override;

  /// Mutation mirroring: inserts append the d0-dim prefixes to the fleet
  /// and extend the suffix-norm table; compaction compacts both.
  Status OnInsert(const FloatMatrix& rows) override;
  Status OnDelete(std::span<const uint32_t> rows) override;
  Status OnCompact(const std::vector<uint32_t>& live) override;

  double OfflineModeledNs() const override {
    return engine_ ? engine_->OfflineNs() : 0.0;
  }
  uint64_t OfflineBytesWritten() const override {
    return (engine_ ? engine_->OfflineBytesWritten() : 0) +
           suffix_norms_.size() * sizeof(double);
  }
  int64_t prefix_dims() const { return d0_; }

 private:
  EngineOptions options_;
  int64_t prefix_divisor_;
  int64_t d0_ = 0;
  const FloatMatrix* data_ = nullptr;
  std::unique_ptr<ShardedPimEngine> engine_;  // built on the d0-dim prefixes.
  std::vector<double> suffix_norms_;
};

}  // namespace pimine

#endif  // PIMINE_KNN_OST_PIM_KNN_H_
