#include "knn/fnn_knn.h"

#include <algorithm>

#include "common/logging.h"
#include "core/bounds.h"
#include "core/similarity.h"
#include "util/timer.h"

namespace pimine {

FnnKnn::FnnKnn(std::vector<int64_t> level_divisors)
    : level_divisors_(std::move(level_divisors)) {
  PIMINE_CHECK(!level_divisors_.empty());
  for (int64_t div : level_divisors_) PIMINE_CHECK(div >= 1);
}

Status FnnKnn::Prepare(const FloatMatrix& data) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  data_ = &data;
  levels_.clear();
  const int64_t d = static_cast<int64_t>(data.cols());
  int64_t previous_d0 = 0;
  for (int64_t div : level_divisors_) {
    const int64_t d0 = std::max<int64_t>(1, d / div);
    if (d0 == previous_d0) continue;  // degenerate level on small d.
    levels_.push_back(ComputeSegmentStats(data, d0));
    previous_d0 = d0;
  }
  return Status::OK();
}

uint64_t FnnKnn::OfflineBytesWritten() const {
  uint64_t bytes = 0;
  for (const SegmentStats& level : levels_) {
    bytes += level.means.SizeBytes() + level.stds.SizeBytes();
  }
  return bytes;
}

Result<KnnRunResult> FnnKnn::Search(const FloatMatrix& queries, int k) {
  if (data_ == nullptr) return Status::FailedPrecondition("Prepare first");
  if (queries.cols() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (k <= 0 || static_cast<size_t>(k) > data_->rows()) {
    return Status::InvalidArgument("k out of range");
  }

  KnnRunResult result;
  result.neighbors.resize(queries.rows());
  traffic::AggregateScope traffic_scope;
  Timer wall;

  const size_t n = data_->rows();
  const size_t num_levels = levels_.size();

  // Per-worker scratch: per-level query segments + coarse-bound array.
  struct Scratch {
    std::vector<std::vector<float>> q_means;
    std::vector<std::vector<float>> q_stds;
    std::vector<double> first_bounds;
  };
  std::vector<Scratch> scratch(NumSlots(exec_policy_, queries.rows(), 1));
  for (Scratch& s : scratch) {
    s.q_means.resize(num_levels);
    s.q_stds.resize(num_levels);
    for (size_t lv = 0; lv < num_levels; ++lv) {
      s.q_means[lv].resize(static_cast<size_t>(levels_[lv].num_segments));
      s.q_stds[lv].resize(static_cast<size_t>(levels_[lv].num_segments));
    }
    s.first_bounds.resize(n);
  }

  Status status = RunQueriesWithPolicy(
      exec_policy_, queries.rows(), &result.stats,
      [&](size_t qi, size_t slot_index, SearchSlot& slot) {
        const auto q = queries.row(qi);
        Scratch& s = scratch[slot_index];
        TopK topk(static_cast<size_t>(k));

        // Coarsest level over every object.
        {
          ScopedFunctionTimer timer(&slot.profile, "LB_FNN");
          for (size_t lv = 0; lv < num_levels; ++lv) {
            ComputeSegments(q, levels_[lv].num_segments, s.q_means[lv],
                            s.q_stds[lv]);
          }
          const SegmentStats& l0 = levels_[0];
          for (size_t i = 0; i < n; ++i) {
            s.first_bounds[i] = LbFnn(l0.means.row(i), l0.stds.row(i),
                                      s.q_means[0], s.q_stds[0],
                                      l0.segment_length);
          }
          slot.bound_count += n;
        }

        // Refinement in coarse-bound order; finer levels prune survivors.
        std::vector<uint32_t> order;
        {
          ScopedFunctionTimer timer(&slot.profile, "LB_FNN");
          order = ArgsortAscending(s.first_bounds);
        }
        for (uint32_t idx : order) {
          if (topk.full() && s.first_bounds[idx] >= topk.threshold()) break;
          bool pruned = false;
          for (size_t lv = 1; lv < num_levels && !pruned; ++lv) {
            ScopedFunctionTimer timer(&slot.profile, "LB_FNN");
            const SegmentStats& level = levels_[lv];
            const double lb =
                LbFnn(level.means.row(idx), level.stds.row(idx),
                      s.q_means[lv], s.q_stds[lv], level.segment_length);
            ++slot.bound_count;
            pruned = topk.full() && lb >= topk.threshold();
          }
          if (pruned) continue;
          ScopedFunctionTimer timer(&slot.profile, "ED");
          const double d = SquaredEuclideanEarlyAbandon(data_->row(idx), q,
                                                        topk.threshold());
          topk.Push(d, static_cast<int32_t>(idx));
          ++slot.exact_count;
        }
        result.neighbors[qi] = topk.TakeSorted();
      });
  PIMINE_RETURN_IF_ERROR(status);

  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  result.stats.footprint_bytes =
      levels_[0].means.SizeBytes() + levels_[0].stds.SizeBytes();
  return result;
}

}  // namespace pimine
