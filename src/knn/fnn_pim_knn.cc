#include "knn/fnn_pim_knn.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "core/bounds.h"
#include "core/similarity.h"
#include "obs/obs.h"
#include "util/random.h"
#include "util/timer.h"

namespace pimine {

FnnPimKnn::FnnPimKnn(EngineOptions options, bool optimize,
                     std::vector<int64_t> level_divisors,
                     int plan_sample_queries, int plan_k)
    : options_(std::move(options)),
      optimize_(optimize),
      level_divisors_(std::move(level_divisors)),
      plan_sample_queries_(plan_sample_queries),
      plan_k_(plan_k) {
  PIMINE_CHECK(!level_divisors_.empty());
  PIMINE_CHECK(plan_sample_queries_ >= 1 && plan_k_ >= 1);
  options_.bound = EngineOptions::Bound::kSegmentFnn;
}

Status FnnPimKnn::Prepare(const FloatMatrix& data) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  data_ = &data;
  PIMINE_ASSIGN_OR_RETURN(
      engine_, ShardedPimEngine::Build(data, Distance::kEuclidean, options_));

  // The coarsest original level is the replaced bottleneck; the finer
  // levels remain candidates.
  levels_.clear();
  const int64_t d = static_cast<int64_t>(data.cols());
  int64_t previous_d0 = std::max<int64_t>(1, d / level_divisors_[0]);
  for (size_t lv = 1; lv < level_divisors_.size(); ++lv) {
    const int64_t d0 = std::max<int64_t>(1, d / level_divisors_[lv]);
    if (d0 == previous_d0) continue;
    levels_.push_back(ComputeSegmentStats(data, d0));
    previous_d0 = d0;
  }

  return RebuildPlan(data);
}

Status FnnPimKnn::RebuildPlan(const FloatMatrix& data) {
  PIMINE_RETURN_IF_ERROR(MeasureCandidates(data));

  const int64_t d = static_cast<int64_t>(data.cols());
  selected_levels_.clear();
  use_pim_filter_ = true;
  if (optimize_) {
    const double exact_cost_bits =
        static_cast<double>(d) * 8 * sizeof(float);
    plan_ = ChooseExecutionPlan(candidates_, exact_cost_bits);
    use_pim_filter_ = false;
    for (size_t idx : plan_.selected) {
      if (idx == 0) {
        use_pim_filter_ = true;
      } else {
        selected_levels_.push_back(idx - 1);
      }
    }
  } else {
    // Default execution: PIM bound + every retained original level.
    plan_ = ExecutionPlan();
    plan_.selected.push_back(0);
    for (size_t lv = 0; lv < levels_.size(); ++lv) {
      plan_.selected.push_back(lv + 1);
      selected_levels_.push_back(lv);
    }
    plan_.cost_bits_per_object = PlanCostBits(
        candidates_, plan_.selected,
        static_cast<double>(d) * 8 * sizeof(float));
  }
  return Status::OK();
}

Status FnnPimKnn::OnInsert(const FloatMatrix& rows) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  PIMINE_RETURN_IF_ERROR(engine_->AppendRows(rows));
  // Per-row segment statistics of the retained original levels: means and
  // stds depend only on their own row, so appending equals a fresh
  // ComputeSegmentStats of the merged corpus.
  for (SegmentStats& level : levels_) {
    const SegmentStats appended =
        ComputeSegmentStats(rows, level.num_segments);
    level.means.AppendRows(appended.means);
    level.stds.AppendRows(appended.stds);
  }
  return Status::OK();
}

Status FnnPimKnn::OnDelete(std::span<const uint32_t> rows) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  for (const uint32_t row : rows) {
    PIMINE_RETURN_IF_ERROR(engine_->DeleteRow(row));
  }
  return Status::OK();
}

Status FnnPimKnn::OnCompact(const std::vector<uint32_t>& live) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  PIMINE_RETURN_IF_ERROR(engine_->Compact());
  for (SegmentStats& level : levels_) {
    level.means.KeepRows(live);
    level.stds.KeepRows(live);
  }
  // With the corpus dense again, re-measure the Eq. 13 plan exactly as a
  // fresh Prepare of the compacted data would (same sample-query seed for
  // the same row count). Search resets online device stats, so the
  // measurement passes do not leak into query accounting.
  return RebuildPlan(*data_);
}

Status FnnPimKnn::MeasureCandidates(const FloatMatrix& data) {
  candidates_.clear();
  const double b = 32.0;  // operand bits.

  BoundCandidate pim;
  pim.name = "LB_PIM-FNN^" + std::to_string(engine_->num_segments());
  pim.transfer_bits = engine_->TransferBitsPerCandidate();
  pim.is_pim = true;
  candidates_.push_back(pim);
  for (const SegmentStats& level : levels_) {
    BoundCandidate c;
    c.name = "LB_FNN^" + std::to_string(level.num_segments);
    // Means + stds of each candidate stream from memory.
    c.transfer_bits = 2.0 * static_cast<double>(level.num_segments) * b;
    candidates_.push_back(c);
  }

  // Pruning ratios measured on sample queries drawn from the dataset
  // (§V-D: measured offline on a traditional architecture). Ratios are
  // *conditional* on the preceding bounds in the cascade — the survivors of
  // the tight PIM bound are exactly the candidates a coarser original bound
  // cannot re-filter, which is what lets Eq. 13 drop redundant bounds (the
  // paper's "remove" optimization, Fig. 12b).
  const size_t n = data.rows();
  const int nq = plan_sample_queries_;
  const size_t k = std::min<size_t>(plan_k_, n);
  Rng rng(0x91a0000ULL ^ n);
  std::vector<double> ratios(candidates_.size(), 0.0);
  std::vector<double> exact(n);
  std::vector<double> bound_values(n);
  std::vector<float> q_means;
  std::vector<float> q_stds;

  for (int s = 0; s < nq; ++s) {
    const auto q = data.row(rng.NextBounded(n));
    for (size_t i = 0; i < n; ++i) {
      exact[i] = SquaredEuclidean(data.row(i), q);
    }
    std::vector<double> sorted_exact = exact;
    std::nth_element(sorted_exact.begin(), sorted_exact.begin() + (k - 1),
                     sorted_exact.end());
    const double tau = sorted_exact[k - 1];

    std::vector<uint32_t> survivors(n);
    for (size_t i = 0; i < n; ++i) survivors[i] = static_cast<uint32_t>(i);

    // PIM candidate first (cascade order), then the original levels on the
    // survivors of everything before them.
    {
      PIMINE_ASSIGN_OR_RETURN(ShardedPimEngine::QueryHandleBatch handle,
                              engine_->RunQueryBatch(q, /*num_queries=*/1));
      bound_values.resize(n);
      for (size_t i = 0; i < n; ++i) {
        bound_values[i] = engine_->BoundFor(handle, 0, i);
      }
      ratios[0] += MeasurePruningRatio(bound_values, tau, false);
      std::vector<uint32_t> next;
      for (uint32_t i : survivors) {
        if (bound_values[i] <= tau) next.push_back(i);
      }
      survivors = std::move(next);
    }
    for (size_t lv = 0; lv < levels_.size(); ++lv) {
      const SegmentStats& level = levels_[lv];
      q_means.resize(static_cast<size_t>(level.num_segments));
      q_stds.resize(static_cast<size_t>(level.num_segments));
      ComputeSegments(q, level.num_segments, q_means, q_stds);
      bound_values.clear();
      std::vector<uint32_t> next;
      for (uint32_t i : survivors) {
        const double lb = LbFnn(level.means.row(i), level.stds.row(i),
                                q_means, q_stds, level.segment_length);
        bound_values.push_back(lb);
        if (lb <= tau) next.push_back(i);
      }
      ratios[lv + 1] += MeasurePruningRatio(bound_values, tau, false);
      survivors = std::move(next);
    }
  }
  for (size_t c = 0; c < candidates_.size(); ++c) {
    candidates_[c].pruning_ratio = ratios[c] / nq;
  }
  return Status::OK();
}

uint64_t FnnPimKnn::OfflineBytesWritten() const {
  uint64_t bytes = engine_ ? engine_->OfflineBytesWritten() : 0;
  for (size_t lv : selected_levels_) {
    bytes += levels_[lv].means.SizeBytes() + levels_[lv].stds.SizeBytes();
  }
  return bytes;
}

Result<KnnRunResult> FnnPimKnn::Search(const FloatMatrix& queries, int k) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  if (queries.cols() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  // Tombstoned rows are unreachable (their bound sorts last), so k ranges
  // over the LIVE corpus.
  if (k <= 0 || static_cast<size_t>(k) > engine_->live_objects()) {
    return Status::InvalidArgument("k out of range");
  }

  KnnRunResult result;
  result.neighbors.resize(queries.rows());
  engine_->ResetOnlineStats();
  traffic::AggregateScope traffic_scope;
  Timer wall;

  const size_t n = data_->rows();
  struct Scratch {
    std::vector<double> bounds;
    std::vector<std::vector<float>> q_means;
    std::vector<std::vector<float>> q_stds;
    ShardedPimEngine::QueryScratch query;
  };
  std::vector<Scratch> scratch(NumBatchSlots(exec_policy_, queries.rows()));
  for (Scratch& s : scratch) {
    s.bounds.resize(n);
    s.q_means.resize(levels_.size());
    s.q_stds.resize(levels_.size());
    for (size_t lv = 0; lv < levels_.size(); ++lv) {
      s.q_means[lv].resize(static_cast<size_t>(levels_[lv].num_segments));
      s.q_stds[lv].resize(static_cast<size_t>(levels_[lv].num_segments));
    }
  }

  // Serial-equivalent device time per query, hoisted so every QuerySpan
  // charges the same value regardless of device-batch grouping. Zero when
  // the plan dropped the PIM bound (no device op is issued).
  const double device_ns_per_query =
      obs::Obs::Enabled() && use_pim_filter_ ? engine_->SerialDeviceNsPerQuery()
                                             : 0.0;

  Status status = RunQueryBatchesWithPolicy(
      exec_policy_, queries.rows(), &result.stats,
      [&](size_t begin, size_t end, size_t slot_index, SearchSlot& slot) {
        Scratch& s = scratch[slot_index];
        const size_t batch_size = end - begin;

        // When the Eq. 13 plan kept the PIM bound, run the whole device
        // batch up front; the plan may also have dropped it, in which case
        // no device op is issued at all.
        ShardedPimEngine::QueryHandleBatch batch;
        if (use_pim_filter_) {
          ScopedFunctionTimer timer(&slot.profile, "LB_PIM");
          auto r = engine_->RunQueryBatch(
              std::span<const float>(queries.data() + begin * queries.cols(),
                                     batch_size * queries.cols()),
              batch_size, &s.query);
          if (!r.ok()) {
            slot.status = r.status();
            return;
          }
          batch = std::move(r).value();
        }

        for (size_t qi = begin; qi < end; ++qi) {
          obs::QuerySpan query_span(static_cast<int64_t>(qi), &slot.latency,
                                    device_ns_per_query);
          const auto q = queries.row(qi);
          const size_t bq = qi - begin;
          TopK topk(static_cast<size_t>(k));

          // Sort-order filter: the PIM bound when selected, else the first
          // retained original level, else no filter at all.
          if (use_pim_filter_) {
            ScopedFunctionTimer timer(&slot.profile, "LB_PIM");
            for (size_t i = 0; i < n; ++i) {
              s.bounds[i] = engine_->BoundFor(batch, bq, i);
            }
            slot.bound_count += n;
          } else if (!selected_levels_.empty()) {
            ScopedFunctionTimer timer(&slot.profile, "LB_FNN");
            const SegmentStats& level = levels_[selected_levels_[0]];
            const size_t lv = selected_levels_[0];
            ComputeSegments(q, level.num_segments, s.q_means[lv], s.q_stds[lv]);
            for (size_t i = 0; i < n; ++i) {
              // Host-side level bounds know nothing about tombstones, so
              // prune deleted rows here the way the PIM bound would.
              s.bounds[i] = engine_->IsDeleted(i)
                                ? std::numeric_limits<double>::infinity()
                                : LbFnn(level.means.row(i), level.stds.row(i),
                                        s.q_means[lv], s.q_stds[lv],
                                        level.segment_length);
            }
            slot.bound_count += n;
          } else {
            for (size_t i = 0; i < n; ++i) {
              s.bounds[i] = engine_->IsDeleted(i)
                                ? std::numeric_limits<double>::infinity()
                                : 0.0;
            }
          }
          const size_t first_refine_level =
              use_pim_filter_ ? 0 : (selected_levels_.empty() ? 0 : 1);

          {
            ScopedFunctionTimer timer(&slot.profile, "LB_FNN");
            for (size_t j = first_refine_level; j < selected_levels_.size();
                 ++j) {
              const SegmentStats& level = levels_[selected_levels_[j]];
              ComputeSegments(q, level.num_segments,
                              s.q_means[selected_levels_[j]],
                              s.q_stds[selected_levels_[j]]);
            }
          }

          std::vector<uint32_t> order;
          {
            ScopedFunctionTimer timer(&slot.profile, "LB_PIM");
            order = ArgsortAscending(s.bounds);
          }
          for (uint32_t idx : order) {
            if (topk.full() && s.bounds[idx] >= topk.threshold()) break;
            bool pruned = false;
            for (size_t j = first_refine_level;
                 j < selected_levels_.size() && !pruned; ++j) {
              ScopedFunctionTimer timer(&slot.profile, "LB_FNN");
              const size_t lv = selected_levels_[j];
              const SegmentStats& level = levels_[lv];
              const double lb = LbFnn(level.means.row(idx), level.stds.row(idx),
                                      s.q_means[lv], s.q_stds[lv],
                                      level.segment_length);
              ++slot.bound_count;
              pruned = topk.full() && lb >= topk.threshold();
            }
            if (pruned) continue;
            ScopedFunctionTimer timer(&slot.profile, "ED");
            const double d = SquaredEuclideanEarlyAbandon(data_->row(idx), q,
                                                          topk.threshold());
            topk.Push(d, static_cast<int32_t>(idx));
            ++slot.exact_count;
          }
          result.neighbors[qi] = topk.TakeSorted();
        }
      });
  PIMINE_RETURN_IF_ERROR(status);

  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  result.stats.pim_ns = engine_->PimComputeNs();
  result.stats.fault = engine_->FaultStatsTotal();
  result.stats.fleet = engine_->FleetStats();
  result.stats.footprint_bytes =
      n * sizeof(double) * 2 +
      (result.stats.exact_count / std::max<uint64_t>(1, queries.rows())) *
          data_->cols() * sizeof(float);
  return result;
}

}  // namespace pimine
