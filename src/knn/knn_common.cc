#include "knn/knn_common.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/traffic.h"
#include "util/bits.h"

namespace pimine {

std::vector<uint32_t> ArgsortAscending(std::span<const double> values) {
  std::vector<uint32_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [values](uint32_t a, uint32_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });
  // One streaming pass over the value array plus n*log2(n) comparisons.
  traffic::CountRead(values.size() * sizeof(double));
  if (!values.empty()) {
    const uint64_t comparisons =
        values.size() * (FloorLog2(values.size()) + 1);
    traffic::CountArithmetic(comparisons);
    traffic::CountBranches(comparisons);
  }
  return order;
}

std::vector<Neighbor> FinalizeSimilarityNeighbors(TopK& topk) {
  std::vector<Neighbor> out = topk.TakeSorted();
  for (Neighbor& n : out) n.distance = -n.distance;
  return out;
}

}  // namespace pimine
