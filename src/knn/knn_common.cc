#include "knn/knn_common.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/obs.h"
#include "sim/traffic.h"
#include "util/bits.h"

namespace pimine {
namespace {

/// Folds the slots' accounting into RunStats (slot order — deterministic)
/// and publishes the run's counters to the metrics registry when enabled.
Status MergeSearchSlots(const std::vector<SearchSlot>& slots,
                        size_t num_queries, RunStats* stats) {
  Status first_error;
  for (const SearchSlot& slot : slots) {
    stats->exact_count += slot.exact_count;
    stats->bound_count += slot.bound_count;
    stats->profile.Merge(slot.profile);
    stats->latency_hist.Merge(slot.latency);
    if (first_error.ok() && !slot.status.ok()) first_error = slot.status;
  }
  if (obs::Obs* o = obs::Obs::Get()) {
    uint64_t exact = 0;
    uint64_t bound = 0;
    for (const SearchSlot& slot : slots) {
      exact += slot.exact_count;
      bound += slot.bound_count;
    }
    o->metrics().GetCounter("pimine_queries_total").Add(num_queries);
    o->metrics().GetCounter("pimine_exact_distances_total").Add(exact);
    o->metrics().GetCounter("pimine_bound_evaluations_total").Add(bound);
    // Candidates whose bound evaluation spared the exact distance.
    o->metrics()
        .GetCounter("pimine_candidates_pruned_total")
        .Add(bound > exact ? bound - exact : 0);
    o->metrics().MergeHistogram("pimine_query_latency_ns",
                                stats->latency_hist);
  }
  return first_error;
}

}  // namespace

std::vector<uint32_t> ArgsortAscending(std::span<const double> values) {
  std::vector<uint32_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [values](uint32_t a, uint32_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });
  // One streaming pass over the value array plus n*log2(n) comparisons.
  traffic::CountRead(values.size() * sizeof(double));
  if (!values.empty()) {
    const uint64_t comparisons =
        values.size() * (FloorLog2(values.size()) + 1);
    traffic::CountArithmetic(comparisons);
    traffic::CountBranches(comparisons);
  }
  return order;
}

std::vector<Neighbor> FinalizeSimilarityNeighbors(TopK& topk) {
  std::vector<Neighbor> out = topk.TakeSorted();
  for (Neighbor& n : out) n.distance = -n.distance;
  return out;
}

size_t NumBatchSlots(const ExecPolicy& policy, size_t num_queries) {
  const size_t chunk = std::max<size_t>(1, policy.device_batch);
  return NumSlots(policy, num_queries, chunk);
}

Status RunQueryBatchesWithPolicy(
    const ExecPolicy& policy, size_t num_queries, RunStats* stats,
    const std::function<void(size_t, size_t, size_t, SearchSlot&)>&
        run_batch) {
  if (policy.device_batch == 0) {
    return Status::InvalidArgument(
        "ExecPolicy::device_batch must be >= 1 (one query per device "
        "operation); 0 is not a valid batch size");
  }
  const size_t chunk = policy.device_batch;
  std::vector<SearchSlot> slots(NumSlots(policy, num_queries, chunk));
  // A serial policy hands the whole range to one invocation, so the
  // callback re-splits its range on device_batch boundaries: parallel
  // chunks are already chunk-aligned, which makes the realized batches
  // (and therefore the device's batch accounting) identical for every
  // thread count.
  ParallelChunks(
      policy, num_queries, chunk,
      [&](size_t begin, size_t end, size_t slot_index) {
        // Opt-in physical span: this worker's whole chunk (runs on the pool
        // thread, so it doubles as the worker span carrying the query range).
        obs::SchedSpan sched(static_cast<int64_t>(begin / chunk),
                             static_cast<int64_t>(begin),
                             static_cast<int64_t>(end));
        SearchSlot& slot = slots[slot_index];
        for (size_t b = begin; b < end; b += chunk) {
          if (!slot.status.ok()) return;
          // Engine/device code labels per-query spans with global query
          // ids relative to this batch's first query.
          obs::ScopedTrackBase track_base(static_cast<int64_t>(b));
          run_batch(b, std::min(end, b + chunk), slot_index, slot);
        }
      });
  return MergeSearchSlots(slots, num_queries, stats);
}

Status RunQueriesWithPolicy(
    const ExecPolicy& policy, size_t num_queries, RunStats* stats,
    const std::function<void(size_t, size_t, SearchSlot&)>& run_query) {
  std::vector<SearchSlot> slots(NumSlots(policy, num_queries, 1));
  ParallelChunks(policy, num_queries, /*chunk=*/1,
                 [&](size_t begin, size_t end, size_t slot_index) {
                   obs::SchedSpan sched(static_cast<int64_t>(begin),
                                        static_cast<int64_t>(begin),
                                        static_cast<int64_t>(end));
                   SearchSlot& slot = slots[slot_index];
                   for (size_t qi = begin; qi < end; ++qi) {
                     if (!slot.status.ok()) return;
                     obs::QuerySpan span(static_cast<int64_t>(qi),
                                         &slot.latency);
                     run_query(qi, slot_index, slot);
                   }
                 });
  return MergeSearchSlots(slots, num_queries, stats);
}

}  // namespace pimine
