#include "knn/knn_common.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/traffic.h"
#include "util/bits.h"

namespace pimine {

std::vector<uint32_t> ArgsortAscending(std::span<const double> values) {
  std::vector<uint32_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [values](uint32_t a, uint32_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });
  // One streaming pass over the value array plus n*log2(n) comparisons.
  traffic::CountRead(values.size() * sizeof(double));
  if (!values.empty()) {
    const uint64_t comparisons =
        values.size() * (FloorLog2(values.size()) + 1);
    traffic::CountArithmetic(comparisons);
    traffic::CountBranches(comparisons);
  }
  return order;
}

std::vector<Neighbor> FinalizeSimilarityNeighbors(TopK& topk) {
  std::vector<Neighbor> out = topk.TakeSorted();
  for (Neighbor& n : out) n.distance = -n.distance;
  return out;
}

size_t NumBatchSlots(const ExecPolicy& policy, size_t num_queries) {
  const size_t chunk = std::max<size_t>(1, policy.device_batch);
  return NumSlots(policy, num_queries, chunk);
}

Status RunQueryBatchesWithPolicy(
    const ExecPolicy& policy, size_t num_queries, RunStats* stats,
    const std::function<void(size_t, size_t, size_t, SearchSlot&)>&
        run_batch) {
  if (policy.device_batch == 0) {
    return Status::InvalidArgument(
        "ExecPolicy::device_batch must be >= 1 (one query per device "
        "operation); 0 is not a valid batch size");
  }
  const size_t chunk = policy.device_batch;
  std::vector<SearchSlot> slots(NumSlots(policy, num_queries, chunk));
  // A serial policy hands the whole range to one invocation, so the
  // callback re-splits its range on device_batch boundaries: parallel
  // chunks are already chunk-aligned, which makes the realized batches
  // (and therefore the device's batch accounting) identical for every
  // thread count.
  ParallelChunks(policy, num_queries, chunk,
                 [&](size_t begin, size_t end, size_t slot_index) {
                   SearchSlot& slot = slots[slot_index];
                   for (size_t b = begin; b < end; b += chunk) {
                     if (!slot.status.ok()) return;
                     run_batch(b, std::min(end, b + chunk), slot_index, slot);
                   }
                 });
  Status first_error;
  for (const SearchSlot& slot : slots) {
    stats->exact_count += slot.exact_count;
    stats->bound_count += slot.bound_count;
    stats->profile.Merge(slot.profile);
    if (first_error.ok() && !slot.status.ok()) first_error = slot.status;
  }
  return first_error;
}

Status RunQueriesWithPolicy(
    const ExecPolicy& policy, size_t num_queries, RunStats* stats,
    const std::function<void(size_t, size_t, SearchSlot&)>& run_query) {
  std::vector<SearchSlot> slots(NumSlots(policy, num_queries, 1));
  ParallelChunks(policy, num_queries, /*chunk=*/1,
                 [&](size_t begin, size_t end, size_t slot_index) {
                   SearchSlot& slot = slots[slot_index];
                   for (size_t qi = begin; qi < end; ++qi) {
                     if (!slot.status.ok()) return;
                     run_query(qi, slot_index, slot);
                   }
                 });
  Status first_error;
  for (const SearchSlot& slot : slots) {
    stats->exact_count += slot.exact_count;
    stats->bound_count += slot.bound_count;
    stats->profile.Merge(slot.profile);
    if (first_error.ok() && !slot.status.ok()) first_error = slot.status;
  }
  return first_error;
}

}  // namespace pimine
