#include "knn/ost_pim_knn.h"

#include <algorithm>

#include "common/logging.h"
#include "core/bounds.h"
#include "core/similarity.h"
#include "obs/obs.h"
#include "util/timer.h"

namespace pimine {

OstPimKnn::OstPimKnn(EngineOptions options, int64_t prefix_divisor)
    : options_(std::move(options)), prefix_divisor_(prefix_divisor) {
  PIMINE_CHECK(prefix_divisor >= 1);
  options_.bound = EngineOptions::Bound::kDirectEd;
}

Status OstPimKnn::Prepare(const FloatMatrix& data) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  data_ = &data;
  const int64_t d = static_cast<int64_t>(data.cols());
  d0_ = std::max<int64_t>(1, d / prefix_divisor_);

  // Prefix submatrix programmed on PIM.
  FloatMatrix prefixes(data.rows(), static_cast<size_t>(d0_));
  for (size_t i = 0; i < data.rows(); ++i) {
    const auto row = data.row(i);
    auto out = prefixes.mutable_row(i);
    for (int64_t j = 0; j < d0_; ++j) out[j] = row[j];
  }
  PIMINE_ASSIGN_OR_RETURN(
      engine_, ShardedPimEngine::Build(prefixes, Distance::kEuclidean, options_));

  suffix_norms_.resize(data.rows());
  for (size_t i = 0; i < data.rows(); ++i) {
    suffix_norms_[i] = SuffixNorm(data.row(i), d0_);
  }
  return Status::OK();
}

Status OstPimKnn::OnInsert(const FloatMatrix& rows) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  // The fleet holds only the d0-dim prefixes: gather them from the full
  // inserted rows, exactly as Prepare did for the base corpus.
  FloatMatrix prefixes(rows.rows(), static_cast<size_t>(d0_));
  for (size_t i = 0; i < rows.rows(); ++i) {
    const auto row = rows.row(i);
    auto out = prefixes.mutable_row(i);
    for (int64_t j = 0; j < d0_; ++j) out[j] = row[j];
  }
  PIMINE_RETURN_IF_ERROR(engine_->AppendRows(prefixes));
  for (size_t i = 0; i < rows.rows(); ++i) {
    suffix_norms_.push_back(SuffixNorm(rows.row(i), d0_));
  }
  return Status::OK();
}

Status OstPimKnn::OnDelete(std::span<const uint32_t> rows) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  for (const uint32_t row : rows) {
    PIMINE_RETURN_IF_ERROR(engine_->DeleteRow(row));
  }
  return Status::OK();
}

Status OstPimKnn::OnCompact(const std::vector<uint32_t>& live) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  PIMINE_RETURN_IF_ERROR(engine_->Compact());
  // Compact the suffix-norm table with the same ascending live list the
  // engines used, so physical ids keep lining up.
  size_t w = 0;
  for (const uint32_t r : live) suffix_norms_[w++] = suffix_norms_[r];
  suffix_norms_.resize(w);
  return Status::OK();
}

Result<KnnRunResult> OstPimKnn::Search(const FloatMatrix& queries, int k) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  if (queries.cols() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  // Tombstoned rows are unreachable (their bound sorts last), so k ranges
  // over the LIVE corpus.
  if (k <= 0 || static_cast<size_t>(k) > engine_->live_objects()) {
    return Status::InvalidArgument("k out of range");
  }

  KnnRunResult result;
  result.neighbors.resize(queries.rows());
  engine_->ResetOnlineStats();
  traffic::AggregateScope traffic_scope;
  Timer wall;

  const size_t n = data_->rows();
  struct Scratch {
    std::vector<double> bounds;
    std::vector<float> prefixes;  // gathered query prefixes (d0 values each).
    ShardedPimEngine::QueryScratch query;
  };
  std::vector<Scratch> scratch(NumBatchSlots(exec_policy_, queries.rows()));
  for (Scratch& s : scratch) s.bounds.resize(n);

  // Serial-equivalent device time per query, hoisted so every QuerySpan
  // charges the same value regardless of device-batch grouping.
  const double device_ns_per_query =
      obs::Obs::Enabled() ? engine_->SerialDeviceNsPerQuery() : 0.0;

  Status status = RunQueryBatchesWithPolicy(
      exec_policy_, queries.rows(), &result.stats,
      [&](size_t begin, size_t end, size_t slot_index, SearchSlot& slot) {
        Scratch& s = scratch[slot_index];
        const size_t batch_size = end - begin;
        const size_t d0 = static_cast<size_t>(d0_);
        ShardedPimEngine::QueryHandleBatch batch;
        {
          ScopedFunctionTimer timer(&slot.profile, "LB_PIM");
          // The engine sees only prefixes, which are not contiguous across
          // query rows — gather them into batch scratch first.
          s.prefixes.resize(batch_size * d0);
          for (size_t qi = begin; qi < end; ++qi) {
            const auto q = queries.row(qi);
            std::copy(q.begin(), q.begin() + d0,
                      s.prefixes.begin() + (qi - begin) * d0);
          }
          auto r = engine_->RunQueryBatch(s.prefixes, batch_size, &s.query);
          if (!r.ok()) {
            slot.status = r.status();
            return;
          }
          batch = std::move(r).value();
        }
        for (size_t qi = begin; qi < end; ++qi) {
          obs::QuerySpan query_span(static_cast<int64_t>(qi), &slot.latency,
                                    device_ns_per_query);
          const auto q = queries.row(qi);
          const size_t bq = qi - begin;
          TopK topk(static_cast<size_t>(k));
          {
            ScopedFunctionTimer timer(&slot.profile, "LB_PIM");
            const double q_suffix = SuffixNorm(q, d0_);
            for (size_t i = 0; i < n; ++i) {
              const double norm_diff = suffix_norms_[i] - q_suffix;
              const double prefix_lb =
                  std::max(0.0, engine_->BoundFor(batch, bq, i));
              s.bounds[i] = prefix_lb + norm_diff * norm_diff;
            }
            slot.bound_count += n;
          }
          std::vector<uint32_t> order;
          {
            ScopedFunctionTimer timer(&slot.profile, "LB_PIM");
            order = ArgsortAscending(s.bounds);
          }
          for (uint32_t idx : order) {
            if (topk.full() && s.bounds[idx] >= topk.threshold()) break;
            ScopedFunctionTimer timer(&slot.profile, "ED");
            const double d = SquaredEuclideanEarlyAbandon(data_->row(idx), q,
                                                          topk.threshold());
            topk.Push(d, static_cast<int32_t>(idx));
            ++slot.exact_count;
          }
          result.neighbors[qi] = topk.TakeSorted();
        }
      });
  PIMINE_RETURN_IF_ERROR(status);

  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  result.stats.pim_ns = engine_->PimComputeNs();
  result.stats.fault = engine_->FaultStatsTotal();
  result.stats.fleet = engine_->FleetStats();
  result.stats.footprint_bytes =
      n * (sizeof(double) * 3) +
      (result.stats.exact_count / std::max<uint64_t>(1, queries.rows())) *
          data_->cols() * sizeof(float);
  return result;
}

}  // namespace pimine
