#ifndef PIMINE_KNN_APPROXIMATE_PIM_KNN_H_
#define PIMINE_KNN_APPROXIMATE_PIM_KNN_H_

#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/quantize.h"
#include "knn/knn_common.h"

namespace pimine {

/// The road NOT taken by the paper, implemented for comparison: GraphR-style
/// fixed-point approximation (§II-A). Distances are computed *entirely*
/// from the quantized values —
///   ED~(p, q) = sum floor(a*p_i)^2 + sum floor(a*q_i)^2
///               - 2 * floor(a*p).floor(a*q)
/// — and the top-k is taken on these approximations with **no exact
/// refinement**. Fast and fully in-PIM, but results can be wrong: with a
/// coarse scaling factor the quantization error flips neighbour ranks.
///
/// The paper's argument ("such precision loss may compromise the accuracy
/// of results in data mining tasks ... instead, we utilize PIM to compute
/// bound functions") is exactly the recall gap `bench_ext_accuracy`
/// measures between this class and StandardPimKnn.
class ApproximatePimKnn : public KnnAlgorithm {
 public:
  explicit ApproximatePimKnn(EngineOptions options);

  std::string_view name() const override { return "Approx-PIM"; }
  Status Prepare(const FloatMatrix& data) override;
  Result<KnnRunResult> Search(const FloatMatrix& queries, int k) override;

  double OfflineModeledNs() const override { return offline_ns_; }

 private:
  EngineOptions options_;
  Quantizer quantizer_;
  const FloatMatrix* data_ = nullptr;
  std::unique_ptr<PimDevice> device_;
  /// sum of squared floors per object (offline part of the approximation).
  std::vector<double> floor_norms_;
  double offline_ns_ = 0.0;
};

/// Fraction of the true top-k ids found in `approx` (order-insensitive).
double RecallAtK(const std::vector<Neighbor>& exact,
                 const std::vector<Neighbor>& approx);

}  // namespace pimine

#endif  // PIMINE_KNN_APPROXIMATE_PIM_KNN_H_
