#include "knn/ost_knn.h"

#include <algorithm>

#include "common/logging.h"
#include "core/bounds.h"
#include "core/similarity.h"
#include "util/timer.h"

namespace pimine {

OstKnn::OstKnn(int64_t prefix_divisor) : prefix_divisor_(prefix_divisor) {
  PIMINE_CHECK(prefix_divisor >= 1);
}

Status OstKnn::Prepare(const FloatMatrix& data) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  data_ = &data;
  const int64_t d = static_cast<int64_t>(data.cols());
  d0_ = std::max<int64_t>(1, d / prefix_divisor_);
  suffix_norms_.resize(data.rows());
  for (size_t i = 0; i < data.rows(); ++i) {
    suffix_norms_[i] = SuffixNorm(data.row(i), d0_);
  }
  return Status::OK();
}

Result<KnnRunResult> OstKnn::Search(const FloatMatrix& queries, int k) {
  if (data_ == nullptr) return Status::FailedPrecondition("Prepare first");
  if (queries.cols() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (k <= 0 || static_cast<size_t>(k) > data_->rows()) {
    return Status::InvalidArgument("k out of range");
  }

  KnnRunResult result;
  result.neighbors.resize(queries.rows());
  traffic::AggregateScope traffic_scope;
  Timer wall;

  const size_t n = data_->rows();
  // Per-worker bound array, reused across the worker's queries.
  std::vector<std::vector<double>> bound_scratch(
      NumSlots(exec_policy_, queries.rows(), 1), std::vector<double>(n));

  Status status = RunQueriesWithPolicy(
      exec_policy_, queries.rows(), &result.stats,
      [&](size_t qi, size_t slot_index, SearchSlot& slot) {
        const auto q = queries.row(qi);
        std::vector<double>& bounds = bound_scratch[slot_index];
        TopK topk(static_cast<size_t>(k));
        {
          ScopedFunctionTimer timer(&slot.profile, "LB_OST");
          const double q_suffix = SuffixNorm(q, d0_);
          for (size_t i = 0; i < n; ++i) {
            bounds[i] =
                LbOst(data_->row(i), q, d0_, suffix_norms_[i], q_suffix);
          }
          slot.bound_count += n;
        }
        std::vector<uint32_t> order;
        {
          ScopedFunctionTimer timer(&slot.profile, "LB_OST");
          order = ArgsortAscending(bounds);
        }
        for (uint32_t idx : order) {
          if (topk.full() && bounds[idx] >= topk.threshold()) break;
          ScopedFunctionTimer timer(&slot.profile, "ED");
          const double d = SquaredEuclideanEarlyAbandon(data_->row(idx), q,
                                                        topk.threshold());
          topk.Push(d, static_cast<int32_t>(idx));
          ++slot.exact_count;
        }
        result.neighbors[qi] = topk.TakeSorted();
      });
  PIMINE_RETURN_IF_ERROR(status);

  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  // The bound itself streams the d0-dim prefixes of the whole dataset.
  result.stats.footprint_bytes =
      data_->rows() * static_cast<uint64_t>(d0_) * sizeof(float);
  return result;
}

}  // namespace pimine
