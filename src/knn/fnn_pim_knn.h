#ifndef PIMINE_KNN_FNN_PIM_KNN_H_
#define PIMINE_KNN_FNN_PIM_KNN_H_

#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/mutable_dataset.h"
#include "core/plan.h"
#include "core/sharded_engine.h"
#include "core/segments.h"
#include "knn/knn_common.h"

namespace pimine {

/// FNN-PIM (§V-D, Fig. 12): FNN with its bottleneck bound (the coarsest
/// LB_FNN level) replaced by LB_PIM-FNN^s, where Theorem 4 maximizes s.
///
/// With `optimize = false` the remaining original levels (d/16, d/4) stay
/// in the cascade (Fig. 12b, "replace"). With `optimize = true` the Eq. 13
/// plan optimizer measures every candidate bound's pruning ratio on sample
/// queries at Prepare time and keeps only the subset with the least
/// estimated data transfer (Fig. 12b, "remove" — typically the PIM bound
/// alone, since s > d/16 makes the survivors hard to re-filter).
class FnnPimKnn : public KnnAlgorithm, public MutationListener {
 public:
  FnnPimKnn(EngineOptions options, bool optimize,
            std::vector<int64_t> level_divisors = {64, 16, 4},
            int plan_sample_queries = 4, int plan_k = 10);

  std::string_view name() const override {
    return optimize_ ? "FNN-PIM-optimize" : "FNN-PIM";
  }
  Status Prepare(const FloatMatrix& data) override;
  Result<KnnRunResult> Search(const FloatMatrix& queries, int k) override;

  /// Mutation mirroring: inserts append to the fleet and to every retained
  /// original level's per-row segment statistics; compaction compacts both
  /// and — with optimize — re-measures the Eq. 13 plan on the (dense)
  /// compacted corpus, matching a fresh Prepare of the same data. Between
  /// compactions an optimized plan reflects the corpus it was measured on
  /// (bounds stay admissible, so results stay exact).
  Status OnInsert(const FloatMatrix& rows) override;
  Status OnDelete(std::span<const uint32_t> rows) override;
  Status OnCompact(const std::vector<uint32_t>& live) override;

  double OfflineModeledNs() const override {
    return engine_ ? engine_->OfflineNs() : 0.0;
  }
  uint64_t OfflineBytesWritten() const override;

  /// The chosen plan (meaningful after Prepare; trivial when !optimize).
  const ExecutionPlan& plan() const { return plan_; }
  const std::vector<BoundCandidate>& candidates() const { return candidates_; }
  const ShardedPimEngine* engine() const { return engine_.get(); }

 private:
  /// Measures pruning ratios on sample queries and fills `candidates_`.
  Status MeasureCandidates(const FloatMatrix& data);

  /// MeasureCandidates + the Eq. 13 plan selection, shared by Prepare and
  /// the post-compaction re-plan (identical inputs give identical plans).
  Status RebuildPlan(const FloatMatrix& data);

  EngineOptions options_;
  bool optimize_;
  std::vector<int64_t> level_divisors_;
  int plan_sample_queries_;
  int plan_k_;

  const FloatMatrix* data_ = nullptr;
  std::unique_ptr<ShardedPimEngine> engine_;
  /// Retained original LB_FNN levels (coarsest level is replaced by PIM).
  std::vector<SegmentStats> levels_;
  std::vector<BoundCandidate> candidates_;  // [0] = PIM, then levels.
  ExecutionPlan plan_;
  /// selected_levels_[j] = index into levels_ applied after the PIM filter.
  std::vector<size_t> selected_levels_;
  bool use_pim_filter_ = true;
};

}  // namespace pimine

#endif  // PIMINE_KNN_FNN_PIM_KNN_H_
