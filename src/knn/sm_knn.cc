#include "knn/sm_knn.h"

#include <algorithm>

#include "common/logging.h"
#include "core/bounds.h"
#include "core/similarity.h"
#include "util/timer.h"

namespace pimine {

SmKnn::SmKnn(int64_t segment_divisor) : segment_divisor_(segment_divisor) {
  PIMINE_CHECK(segment_divisor >= 1);
}

Status SmKnn::Prepare(const FloatMatrix& data) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  data_ = &data;
  const int64_t d = static_cast<int64_t>(data.cols());
  const int64_t d0 = std::max<int64_t>(1, d / segment_divisor_);
  stats_ = ComputeSegmentStats(data, d0);
  return Status::OK();
}

Result<KnnRunResult> SmKnn::Search(const FloatMatrix& queries, int k) {
  if (data_ == nullptr) return Status::FailedPrecondition("Prepare first");
  if (queries.cols() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (k <= 0 || static_cast<size_t>(k) > data_->rows()) {
    return Status::InvalidArgument("k out of range");
  }

  KnnRunResult result;
  result.neighbors.reserve(queries.rows());
  TrafficScope traffic_scope;
  Timer wall;

  const size_t n = data_->rows();
  const int64_t d0 = stats_.num_segments;
  std::vector<float> q_means(static_cast<size_t>(d0));
  std::vector<float> q_stds(static_cast<size_t>(d0));
  std::vector<double> bounds(n);

  for (size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto q = queries.row(qi);
    TopK topk(static_cast<size_t>(k));
    // Filter phase: LB_SM for every object.
    {
      ScopedFunctionTimer timer(&result.stats.profile, "LB_SM");
      ComputeSegments(q, d0, q_means, q_stds);
      for (size_t i = 0; i < n; ++i) {
        bounds[i] = LbSm(stats_.means.row(i), q_means, stats_.segment_length);
      }
      result.stats.bound_count += n;
    }
    // Refine phase: exact ED in ascending-bound order.
    std::vector<uint32_t> order;
    {
      ScopedFunctionTimer timer(&result.stats.profile, "LB_SM");
      order = ArgsortAscending(bounds);
    }
    for (uint32_t idx : order) {
      if (topk.full() && bounds[idx] >= topk.threshold()) break;
      ScopedFunctionTimer timer(&result.stats.profile, "ED");
      const double d = SquaredEuclideanEarlyAbandon(data_->row(idx), q,
                                                    topk.threshold());
      topk.Push(d, static_cast<int32_t>(idx));
      ++result.stats.exact_count;
    }
    result.neighbors.push_back(topk.TakeSorted());
  }

  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  result.stats.footprint_bytes =
      stats_.means.SizeBytes() + result.stats.exact_count * data_->cols() *
                                     sizeof(float) / std::max<uint64_t>(
                                         1, queries.rows());
  return result;
}

}  // namespace pimine
