#include "knn/sm_knn.h"

#include <algorithm>

#include "common/logging.h"
#include "core/bounds.h"
#include "core/similarity.h"
#include "util/timer.h"

namespace pimine {

SmKnn::SmKnn(int64_t segment_divisor) : segment_divisor_(segment_divisor) {
  PIMINE_CHECK(segment_divisor >= 1);
}

Status SmKnn::Prepare(const FloatMatrix& data) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  data_ = &data;
  const int64_t d = static_cast<int64_t>(data.cols());
  const int64_t d0 = std::max<int64_t>(1, d / segment_divisor_);
  stats_ = ComputeSegmentStats(data, d0);
  return Status::OK();
}

Result<KnnRunResult> SmKnn::Search(const FloatMatrix& queries, int k) {
  if (data_ == nullptr) return Status::FailedPrecondition("Prepare first");
  if (queries.cols() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (k <= 0 || static_cast<size_t>(k) > data_->rows()) {
    return Status::InvalidArgument("k out of range");
  }

  KnnRunResult result;
  result.neighbors.resize(queries.rows());
  traffic::AggregateScope traffic_scope;
  Timer wall;

  const size_t n = data_->rows();
  const int64_t d0 = stats_.num_segments;

  // Per-worker scratch: query segment stats + bound array.
  struct Scratch {
    std::vector<float> q_means;
    std::vector<float> q_stds;
    std::vector<double> bounds;
  };
  std::vector<Scratch> scratch(NumSlots(exec_policy_, queries.rows(), 1));
  for (Scratch& s : scratch) {
    s.q_means.resize(static_cast<size_t>(d0));
    s.q_stds.resize(static_cast<size_t>(d0));
    s.bounds.resize(n);
  }

  Status status = RunQueriesWithPolicy(
      exec_policy_, queries.rows(), &result.stats,
      [&](size_t qi, size_t slot_index, SearchSlot& slot) {
        const auto q = queries.row(qi);
        Scratch& s = scratch[slot_index];
        TopK topk(static_cast<size_t>(k));
        // Filter phase: LB_SM for every object.
        {
          ScopedFunctionTimer timer(&slot.profile, "LB_SM");
          ComputeSegments(q, d0, s.q_means, s.q_stds);
          for (size_t i = 0; i < n; ++i) {
            s.bounds[i] =
                LbSm(stats_.means.row(i), s.q_means, stats_.segment_length);
          }
          slot.bound_count += n;
        }
        // Refine phase: exact ED in ascending-bound order.
        std::vector<uint32_t> order;
        {
          ScopedFunctionTimer timer(&slot.profile, "LB_SM");
          order = ArgsortAscending(s.bounds);
        }
        for (uint32_t idx : order) {
          if (topk.full() && s.bounds[idx] >= topk.threshold()) break;
          ScopedFunctionTimer timer(&slot.profile, "ED");
          const double d = SquaredEuclideanEarlyAbandon(data_->row(idx), q,
                                                        topk.threshold());
          topk.Push(d, static_cast<int32_t>(idx));
          ++slot.exact_count;
        }
        result.neighbors[qi] = topk.TakeSorted();
      });
  PIMINE_RETURN_IF_ERROR(status);

  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  result.stats.footprint_bytes =
      stats_.means.SizeBytes() + result.stats.exact_count * data_->cols() *
                                     sizeof(float) / std::max<uint64_t>(
                                         1, queries.rows());
  return result;
}

}  // namespace pimine
