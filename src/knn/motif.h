#ifndef PIMINE_KNN_MOTIF_H_
#define PIMINE_KNN_MOTIF_H_

#include <cstdint>
#include <span>

#include "core/engine.h"
#include "knn/knn_common.h"

namespace pimine {

/// Time-series motif discovery — the fourth similarity-based mining task
/// the paper's introduction names (Mueen's survey, reference [3]): find the
/// pair of non-overlapping subsequences of a series with the smallest
/// distance (the "motif"). A closest-pair problem over sliding windows,
/// and thus another customer of the PIM-aware bounds.
struct MotifOptions {
  /// Subsequence length (window width).
  int64_t window = 64;
  /// Trivial-match exclusion: pairs with |i - j| <= exclusion are ignored
  /// (overlapping windows are near-identical by construction). Defaults to
  /// window/2 when <= 0.
  int64_t exclusion = 0;
};

struct MotifResult {
  int32_t first = -1;
  int32_t second = -1;
  /// Squared ED between the motif pair's windows.
  double distance = 0.0;
  RunStats stats;
};

/// Slides a width-`window` window (stride 1) over the series and min-max
/// normalizes the values into [0, 1] globally, producing the matrix the
/// engines consume. Series must have at least `window` samples.
Result<FloatMatrix> ExtractWindows(std::span<const float> series,
                                   int64_t window);

/// Host baseline: brute-force closest pair with early-abandoning ED.
class MotifDiscovery {
 public:
  Result<MotifResult> Find(const FloatMatrix& windows,
                           const MotifOptions& options);
};

/// PIM variant: each window's candidate partners are screened with the
/// engine's lower bounds; exact distances only for pairs whose bound beats
/// the best motif found so far. Results match the baseline exactly.
class PimMotifDiscovery {
 public:
  explicit PimMotifDiscovery(EngineOptions options);

  Result<MotifResult> Find(const FloatMatrix& windows,
                           const MotifOptions& options);

 private:
  EngineOptions options_;
};

}  // namespace pimine

#endif  // PIMINE_KNN_MOTIF_H_
