#include "knn/sm_pim_knn.h"

#include <algorithm>

#include "core/similarity.h"
#include "obs/obs.h"
#include "util/timer.h"

namespace pimine {

SmPimKnn::SmPimKnn(EngineOptions options) : options_(std::move(options)) {
  options_.bound = EngineOptions::Bound::kSegmentSm;
}

Status SmPimKnn::Prepare(const FloatMatrix& data) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  data_ = &data;
  PIMINE_ASSIGN_OR_RETURN(
      engine_, ShardedPimEngine::Build(data, Distance::kEuclidean, options_));
  return Status::OK();
}

Status SmPimKnn::OnInsert(const FloatMatrix& rows) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  return engine_->AppendRows(rows);
}

Status SmPimKnn::OnDelete(std::span<const uint32_t> rows) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  for (const uint32_t row : rows) {
    PIMINE_RETURN_IF_ERROR(engine_->DeleteRow(row));
  }
  return Status::OK();
}

Status SmPimKnn::OnCompact(const std::vector<uint32_t>& /*live*/) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  return engine_->Compact();
}

Result<KnnRunResult> SmPimKnn::Search(const FloatMatrix& queries, int k) {
  if (engine_ == nullptr) return Status::FailedPrecondition("Prepare first");
  if (queries.cols() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  // Tombstoned rows are unreachable (their bound sorts last), so k ranges
  // over the LIVE corpus.
  if (k <= 0 || static_cast<size_t>(k) > engine_->live_objects()) {
    return Status::InvalidArgument("k out of range");
  }

  KnnRunResult result;
  result.neighbors.resize(queries.rows());
  engine_->ResetOnlineStats();
  traffic::AggregateScope traffic_scope;
  Timer wall;

  const size_t n = data_->rows();
  struct Scratch {
    std::vector<double> bounds;
    ShardedPimEngine::QueryScratch query;
  };
  std::vector<Scratch> scratch(NumBatchSlots(exec_policy_, queries.rows()));
  for (Scratch& s : scratch) s.bounds.resize(n);

  // Serial-equivalent device time per query, hoisted so every QuerySpan
  // charges the same value regardless of device-batch grouping.
  const double device_ns_per_query =
      obs::Obs::Enabled() ? engine_->SerialDeviceNsPerQuery() : 0.0;

  Status status = RunQueryBatchesWithPolicy(
      exec_policy_, queries.rows(), &result.stats,
      [&](size_t begin, size_t end, size_t slot_index, SearchSlot& slot) {
        Scratch& s = scratch[slot_index];
        const size_t batch_size = end - begin;
        ShardedPimEngine::QueryHandleBatch batch;
        {
          ScopedFunctionTimer timer(&slot.profile, "LB_PIM");
          auto r = engine_->RunQueryBatch(
              std::span<const float>(queries.data() + begin * queries.cols(),
                                     batch_size * queries.cols()),
              batch_size, &s.query);
          if (!r.ok()) {
            slot.status = r.status();
            return;
          }
          batch = std::move(r).value();
        }
        for (size_t qi = begin; qi < end; ++qi) {
          obs::QuerySpan query_span(static_cast<int64_t>(qi), &slot.latency,
                                    device_ns_per_query);
          const auto q = queries.row(qi);
          const size_t bq = qi - begin;
          TopK topk(static_cast<size_t>(k));
          {
            ScopedFunctionTimer timer(&slot.profile, "LB_PIM");
            for (size_t i = 0; i < n; ++i) {
              s.bounds[i] = engine_->BoundFor(batch, bq, i);
            }
            slot.bound_count += n;
          }
          std::vector<uint32_t> order;
          {
            ScopedFunctionTimer timer(&slot.profile, "LB_PIM");
            order = ArgsortAscending(s.bounds);
          }
          for (uint32_t idx : order) {
            if (topk.full() && s.bounds[idx] >= topk.threshold()) break;
            ScopedFunctionTimer timer(&slot.profile, "ED");
            const double d = SquaredEuclideanEarlyAbandon(data_->row(idx), q,
                                                          topk.threshold());
            topk.Push(d, static_cast<int32_t>(idx));
            ++slot.exact_count;
          }
          result.neighbors[qi] = topk.TakeSorted();
        }
      });
  PIMINE_RETURN_IF_ERROR(status);

  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  result.stats.pim_ns = engine_->PimComputeNs();
  result.stats.fault = engine_->FaultStatsTotal();
  result.stats.fleet = engine_->FleetStats();
  result.stats.footprint_bytes =
      n * sizeof(double) * 2 +
      (result.stats.exact_count / std::max<uint64_t>(1, queries.rows())) *
          data_->cols() * sizeof(float);
  return result;
}

}  // namespace pimine
