#ifndef PIMINE_KNN_OUTLIER_H_
#define PIMINE_KNN_OUTLIER_H_

#include <memory>
#include <vector>

#include "core/engine.h"
#include "knn/knn_common.h"

namespace pimine {

/// Distance-based outlier detection — the third similarity-based mining
/// task §II-C of the paper names. A point's outlier score is the distance
/// to its k-th nearest neighbour; the top-n scorers are the outliers
/// (Knorr/Ng, and the ORCA nested-loop algorithm of Bay & Schwabacher).
///
/// Like kNN/k-means, the workload is a pruning game: once the running
/// cutoff (the weakest score in the current top-n) is known, a candidate
/// can be abandoned as soon as k neighbours within the cutoff are found —
/// and PIM lower bounds identify those neighbours with 3*b bits per pair.
struct OutlierOptions {
  /// Neighbour rank defining the score (distance to the k-th NN).
  int k = 5;
  /// How many outliers to report.
  int num_outliers = 10;
};

struct OutlierResult {
  /// Outliers sorted by descending score; Neighbor::distance holds the
  /// squared distance to the point's k-th nearest neighbour.
  std::vector<Neighbor> outliers;
  RunStats stats;
};

/// Host baseline: ORCA's nested loop with early candidate abandonment.
class OrcaOutlierDetector {
 public:
  Result<OutlierResult> Detect(const FloatMatrix& data,
                               const OutlierOptions& options);
};

/// PIM variant: each candidate's neighbour scan walks objects in ascending
/// PIM-bound order, so the k within-cutoff neighbours (which kill the
/// candidate) are found almost immediately; exact distances are computed
/// only for the bound-order prefix. Results match the baseline exactly.
class OrcaPimOutlierDetector {
 public:
  explicit OrcaPimOutlierDetector(EngineOptions options);

  Result<OutlierResult> Detect(const FloatMatrix& data,
                               const OutlierOptions& options);

 private:
  EngineOptions options_;
};

}  // namespace pimine

#endif  // PIMINE_KNN_OUTLIER_H_
