#ifndef PIMINE_KNN_OST_KNN_H_
#define PIMINE_KNN_OST_KNN_H_

#include <vector>

#include "knn/knn_common.h"

namespace pimine {

/// OST (Liaw et al.): filter-and-refine with the orthogonal-search-tree
/// bound LB_OST (Table 3): exact partial distance on a d0-dimensional
/// prefix plus the suffix-norm difference. d0 = d/4 by default.
class OstKnn : public KnnAlgorithm {
 public:
  /// `prefix_divisor` sets d0 = max(1, d / prefix_divisor).
  explicit OstKnn(int64_t prefix_divisor = 4);

  std::string_view name() const override { return "OST"; }
  Status Prepare(const FloatMatrix& data) override;
  Result<KnnRunResult> Search(const FloatMatrix& queries, int k) override;

  uint64_t OfflineBytesWritten() const override {
    return suffix_norms_.size() * sizeof(double);
  }
  int64_t prefix_dims() const { return d0_; }

 private:
  int64_t prefix_divisor_;
  int64_t d0_ = 0;
  const FloatMatrix* data_ = nullptr;
  std::vector<double> suffix_norms_;
};

}  // namespace pimine

#endif  // PIMINE_KNN_OST_KNN_H_
