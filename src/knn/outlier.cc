#include "knn/outlier.h"

#include <algorithm>

#include "common/logging.h"
#include "core/similarity.h"
#include "util/timer.h"

namespace pimine {
namespace {

Status ValidateOutlierInput(const FloatMatrix& data,
                            const OutlierOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (options.k <= 0 ||
      static_cast<size_t>(options.k) >= data.rows()) {
    return Status::InvalidArgument("k must be in [1, n-1]");
  }
  if (options.num_outliers <= 0 ||
      static_cast<size_t>(options.num_outliers) > data.rows()) {
    return Status::InvalidArgument("num_outliers out of range");
  }
  return Status::OK();
}

/// Top-n collector for the LARGEST scores: stores negated scores in a TopK
/// (which keeps the smallest). cutoff() is the weakest retained score.
class TopOutliers {
 public:
  explicit TopOutliers(int n) : heap_(static_cast<size_t>(n)) {}

  void Offer(double score, int32_t id) { heap_.Push(-score, id); }

  /// Scores <= cutoff can never enter the top-n.
  double cutoff() const {
    return heap_.full() ? -heap_.threshold() : 0.0;
  }

  std::vector<Neighbor> TakeSortedDescending() {
    std::vector<Neighbor> out = heap_.TakeSorted();
    for (Neighbor& nb : out) nb.distance = -nb.distance;
    return out;  // TakeSorted ascending on -score == descending on score.
  }

 private:
  TopK heap_;
};

}  // namespace

Result<OutlierResult> OrcaOutlierDetector::Detect(
    const FloatMatrix& data, const OutlierOptions& options) {
  PIMINE_RETURN_IF_ERROR(ValidateOutlierInput(data, options));

  OutlierResult result;
  result.stats.footprint_bytes = data.SizeBytes();
  TrafficScope traffic_scope;
  Timer wall;

  const size_t n = data.rows();
  TopOutliers outliers(options.num_outliers);

  for (size_t i = 0; i < n; ++i) {
    const auto p = data.row(i);
    TopK knn(static_cast<size_t>(options.k));
    const double cutoff = outliers.cutoff();
    bool pruned = false;
    ScopedFunctionTimer timer(&result.stats.profile, "ED");
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d =
          SquaredEuclideanEarlyAbandon(data.row(j), p, knn.threshold());
      ++result.stats.exact_count;
      knn.Push(d, static_cast<int32_t>(j));
      // ORCA early abandonment: k neighbours within the cutoff kill the
      // candidate (its score can only shrink further).
      if (knn.full() && knn.threshold() <= cutoff) {
        pruned = true;
        break;
      }
    }
    if (!pruned) {
      outliers.Offer(knn.threshold(), static_cast<int32_t>(i));
    }
  }

  result.outliers = outliers.TakeSortedDescending();
  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  return result;
}

OrcaPimOutlierDetector::OrcaPimOutlierDetector(EngineOptions options)
    : options_(std::move(options)) {}

Result<OutlierResult> OrcaPimOutlierDetector::Detect(
    const FloatMatrix& data, const OutlierOptions& options) {
  PIMINE_RETURN_IF_ERROR(ValidateOutlierInput(data, options));
  PIMINE_ASSIGN_OR_RETURN(
      std::unique_ptr<PimEngine> engine,
      PimEngine::Build(data, Distance::kEuclidean, options_));

  OutlierResult result;
  TrafficScope traffic_scope;
  Timer wall;

  const size_t n = data.rows();
  TopOutliers outliers(options.num_outliers);
  std::vector<double> bounds(n);

  for (size_t i = 0; i < n; ++i) {
    const auto p = data.row(i);
    const double cutoff = outliers.cutoff();
    {
      ScopedFunctionTimer timer(&result.stats.profile, "LB_PIM");
      PIMINE_ASSIGN_OR_RETURN(PimEngine::QueryHandle handle,
                              engine->RunQuery(p));
      for (size_t j = 0; j < n; ++j) {
        bounds[j] = engine->BoundFor(handle, j);
      }
      result.stats.bound_count += n;
    }
    std::vector<uint32_t> order;
    {
      ScopedFunctionTimer timer(&result.stats.profile, "LB_PIM");
      order = ArgsortAscending(bounds);
    }

    TopK knn(static_cast<size_t>(options.k));
    bool pruned = false;
    ScopedFunctionTimer timer(&result.stats.profile, "ED");
    for (uint32_t idx : order) {
      if (idx == i) continue;
      // All remaining candidates have bounds >= the current k-th NN
      // distance: the score is final.
      if (knn.full() && bounds[idx] >= knn.threshold()) break;
      const double d =
          SquaredEuclideanEarlyAbandon(data.row(idx), p, knn.threshold());
      ++result.stats.exact_count;
      knn.Push(d, static_cast<int32_t>(idx));
      if (knn.full() && knn.threshold() <= cutoff) {
        pruned = true;
        break;
      }
    }
    if (!pruned) {
      outliers.Offer(knn.threshold(), static_cast<int32_t>(i));
    }
  }

  result.outliers = outliers.TakeSortedDescending();
  result.stats.wall_ms = wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  result.stats.pim_ns = engine->PimComputeNs();
  result.stats.footprint_bytes =
      n * sizeof(double) * 2 + result.stats.exact_count * data.cols() *
                                   sizeof(float) / std::max<size_t>(1, n);
  return result;
}

}  // namespace pimine
