#ifndef PIMINE_KNN_FNN_KNN_H_
#define PIMINE_KNN_FNN_KNN_H_

#include <vector>

#include "core/segments.h"
#include "knn/knn_common.h"

namespace pimine {

/// FNN (Hwang et al., CVPR'12): a cascade of LB_FNN bounds of increasing
/// tightness — d/64, d/16, d/4 segments (Fig. 12a) — followed by exact ED.
/// Coarser levels are cheap and prune most candidates; survivors face the
/// tighter levels.
class FnnKnn : public KnnAlgorithm {
 public:
  /// Divisors of d giving the cascade's segment counts, coarse to fine.
  explicit FnnKnn(std::vector<int64_t> level_divisors = {64, 16, 4});

  std::string_view name() const override { return "FNN"; }
  Status Prepare(const FloatMatrix& data) override;
  Result<KnnRunResult> Search(const FloatMatrix& queries, int k) override;

  uint64_t OfflineBytesWritten() const override;
  size_t num_levels() const { return levels_.size(); }
  const SegmentStats& level(size_t i) const { return levels_[i]; }

 private:
  std::vector<int64_t> level_divisors_;
  const FloatMatrix* data_ = nullptr;
  std::vector<SegmentStats> levels_;
};

}  // namespace pimine

#endif  // PIMINE_KNN_FNN_KNN_H_
