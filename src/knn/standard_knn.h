#ifndef PIMINE_KNN_STANDARD_KNN_H_
#define PIMINE_KNN_STANDARD_KNN_H_

#include "core/similarity.h"
#include "knn/knn_common.h"

namespace pimine {

/// The paper's "Standard" baseline: exhaustive linear scan with the exact
/// measure (early-abandoning for ED). Supports ED, CS and PCC (Fig. 13d).
class StandardKnn : public KnnAlgorithm {
 public:
  explicit StandardKnn(Distance distance = Distance::kEuclidean);

  std::string_view name() const override { return name_; }
  Status Prepare(const FloatMatrix& data) override;
  Result<KnnRunResult> Search(const FloatMatrix& queries, int k) override;

 private:
  Distance distance_;
  std::string name_;
  const FloatMatrix* data_ = nullptr;
};

}  // namespace pimine

#endif  // PIMINE_KNN_STANDARD_KNN_H_
