#ifndef PIMINE_DATA_GENERATOR_H_
#define PIMINE_DATA_GENERATOR_H_

#include <cstdint>

#include "data/catalog.h"
#include "data/matrix.h"

namespace pimine {

/// Synthetic stand-ins for the paper's real datasets (see DESIGN.md §1).
/// Generation is deterministic given (spec, seed).
class DatasetGenerator {
 public:
  /// Generates `n` objects with the spec's dimensionality and cluster
  /// profile. Pass n <= 0 to use spec.default_n.
  static FloatMatrix Generate(const DatasetSpec& spec, int64_t n,
                              uint64_t seed);

  /// Generates `num_queries` query objects from the same distribution:
  /// perturbed copies of dataset points (the usual kNN benchmark protocol).
  static FloatMatrix GenerateQueries(const DatasetSpec& spec,
                                     const FloatMatrix& data,
                                     int64_t num_queries, uint64_t seed);
};

}  // namespace pimine

#endif  // PIMINE_DATA_GENERATOR_H_
