#include "data/catalog.h"

namespace pimine {

const std::vector<DatasetSpec>& Catalog::All() {
  // Table 6 of the paper. `paper_n` and `dims` are the published values;
  // `default_n` is the scaled cardinality used by the bench harness
  // (EXPERIMENTS.md records the scaling per experiment).
  static const std::vector<DatasetSpec>& specs = *new std::vector<DatasetSpec>{
      {"ImageNet", 2340173, 20000, 150, ClusterProfile::kClustered, 64, 0.08,
       "knn"},
      {"MSD", 992272, 20000, 420, ClusterProfile::kClustered, 64, 0.08,
       "knn"},
      {"GIST", 1000000, 20000, 960, ClusterProfile::kDiffuse, 16, 0.20,
       "knn"},
      {"Trevi", 100000, 10000, 4096, ClusterProfile::kClustered, 32, 0.08,
       "knn"},
      {"Year", 515345, 8000, 90, ClusterProfile::kClustered, 48, 0.10,
       "kmeans"},
      {"Notre", 332668, 8000, 128, ClusterProfile::kClustered, 48, 0.10,
       "kmeans"},
      {"NUS-WIDE", 269648, 6000, 500, ClusterProfile::kClustered, 48, 0.10,
       "kmeans"},
      {"Enron", 100000, 4000, 1369, ClusterProfile::kSparseCounts, 32, 0.15,
       "kmeans"},
  };
  return specs;
}

Result<DatasetSpec> Catalog::Find(std::string_view name) {
  for (const DatasetSpec& spec : All()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no dataset named '" + std::string(name) +
                          "' in catalog");
}

}  // namespace pimine
