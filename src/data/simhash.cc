#include "data/simhash.h"

#include "common/logging.h"
#include "util/random.h"

namespace pimine {

SimHashEncoder::SimHashEncoder(size_t dims, size_t num_bits, uint64_t seed)
    : dims_(dims), num_bits_(num_bits), hyperplanes_(num_bits, dims) {
  PIMINE_CHECK(dims > 0 && num_bits > 0);
  Rng rng(seed ^ 0x51a54ULL);
  for (size_t b = 0; b < num_bits; ++b) {
    auto row = hyperplanes_.mutable_row(b);
    for (size_t j = 0; j < dims; ++j) {
      row[j] = static_cast<float>(rng.NextGaussian());
    }
  }
}

void SimHashEncoder::EncodeRow(std::span<const float> row, BitMatrix& codes,
                               size_t out_row) const {
  PIMINE_CHECK(row.size() == dims_);
  for (size_t b = 0; b < num_bits_; ++b) {
    const auto hyperplane = hyperplanes_.row(b);
    double dot = 0.0;
    for (size_t j = 0; j < dims_; ++j) {
      dot += static_cast<double>(hyperplane[j]) * row[j];
    }
    codes.Set(out_row, b, dot >= 0.0);
  }
}

BitMatrix SimHashEncoder::Encode(const FloatMatrix& data) const {
  PIMINE_CHECK(data.cols() == dims_);
  // Center the data so hyperplanes split it evenly (balanced codes).
  std::vector<float> mean(dims_, 0.0f);
  for (size_t i = 0; i < data.rows(); ++i) {
    const auto row = data.row(i);
    for (size_t j = 0; j < dims_; ++j) mean[j] += row[j];
  }
  if (data.rows() > 0) {
    for (float& m : mean) m /= static_cast<float>(data.rows());
  }

  BitMatrix codes(data.rows(), num_bits_);
  std::vector<float> centered(dims_);
  for (size_t i = 0; i < data.rows(); ++i) {
    const auto row = data.row(i);
    for (size_t j = 0; j < dims_; ++j) centered[j] = row[j] - mean[j];
    EncodeRow(centered, codes, i);
  }
  return codes;
}

}  // namespace pimine
