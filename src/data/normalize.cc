#include "data/normalize.h"

#include <algorithm>
#include <cmath>

namespace pimine {

MinMaxScaler MinMaxScaler::Fit(const FloatMatrix& data) {
  MinMaxScaler scaler;
  const size_t d = data.cols();
  scaler.mins_.assign(d, HUGE_VALF);
  scaler.maxs_.assign(d, -HUGE_VALF);
  for (size_t i = 0; i < data.rows(); ++i) {
    const auto row = data.row(i);
    for (size_t j = 0; j < d; ++j) {
      scaler.mins_[j] = std::min(scaler.mins_[j], row[j]);
      scaler.maxs_[j] = std::max(scaler.maxs_[j], row[j]);
    }
  }
  if (data.rows() == 0) {
    scaler.mins_.assign(d, 0.0f);
    scaler.maxs_.assign(d, 1.0f);
  }
  return scaler;
}

void MinMaxScaler::TransformRow(std::span<const float> in,
                                std::span<float> out) const {
  PIMINE_CHECK(in.size() == mins_.size() && out.size() == mins_.size())
      << "dimensionality mismatch in MinMaxScaler";
  for (size_t j = 0; j < in.size(); ++j) {
    const float range = maxs_[j] - mins_[j];
    float v = range > 0.0f ? (in[j] - mins_[j]) / range : 0.0f;
    out[j] = std::clamp(v, 0.0f, 1.0f);
  }
}

FloatMatrix MinMaxScaler::Transform(const FloatMatrix& data) const {
  FloatMatrix out(data.rows(), data.cols());
  for (size_t i = 0; i < data.rows(); ++i) {
    TransformRow(data.row(i), out.mutable_row(i));
  }
  return out;
}

FloatMatrix NormalizeToUnitRange(const FloatMatrix& data) {
  return MinMaxScaler::Fit(data).Transform(data);
}

}  // namespace pimine
