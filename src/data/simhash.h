#ifndef PIMINE_DATA_SIMHASH_H_
#define PIMINE_DATA_SIMHASH_H_

#include <cstdint>

#include "data/bit_matrix.h"
#include "data/matrix.h"

namespace pimine {

/// Random-hyperplane LSH (SimHash, Charikar STOC'02 — the paper's reference
/// [22]): bit i of the code is sign(<r_i, x>) for Gaussian hyperplane r_i.
/// Hamming distance between codes estimates the angular distance of the
/// original vectors, which is what the paper's Fig. 14 workload relies on.
class SimHashEncoder {
 public:
  /// Draws `num_bits` Gaussian hyperplanes over `dims` input dimensions.
  SimHashEncoder(size_t dims, size_t num_bits, uint64_t seed);

  /// Encodes every row of `data` (centered by the per-dimension mean fitted
  /// at encode time, so codes are balanced).
  BitMatrix Encode(const FloatMatrix& data) const;

  /// Encodes a single (already centered) vector into `out_row` of `codes`.
  void EncodeRow(std::span<const float> row, BitMatrix& codes,
                 size_t out_row) const;

  size_t dims() const { return dims_; }
  size_t num_bits() const { return num_bits_; }

 private:
  size_t dims_;
  size_t num_bits_;
  /// num_bits x dims hyperplane matrix.
  FloatMatrix hyperplanes_;
};

}  // namespace pimine

#endif  // PIMINE_DATA_SIMHASH_H_
