#ifndef PIMINE_DATA_IO_H_
#define PIMINE_DATA_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "data/matrix.h"

namespace pimine {

/// Simple binary on-disk format for dataset matrices:
///   [magic u32 = 0x504d314d "PM1M"] [rows u64] [cols u64] [payload f32...]
/// Used by the bench harness to cache generated datasets between runs and by
/// users to import their own data.
Status SaveMatrix(const FloatMatrix& matrix, const std::string& path);

/// Loads a matrix written by SaveMatrix. Validates the magic and payload
/// size and fails with IOError/InvalidArgument instead of crashing.
Result<FloatMatrix> LoadMatrix(const std::string& path);

}  // namespace pimine

#endif  // PIMINE_DATA_IO_H_
