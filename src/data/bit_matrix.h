#ifndef PIMINE_DATA_BIT_MATRIX_H_
#define PIMINE_DATA_BIT_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"
#include "util/bits.h"

namespace pimine {

/// Packed binary-code matrix for Hamming-distance workloads (§II-B of the
/// paper: LSH codes of 128-1024 bits). Each row is `bits` wide, stored as
/// ceil(bits/64) little-endian words.
class BitMatrix {
 public:
  BitMatrix() = default;

  BitMatrix(size_t rows, size_t bits)
      : rows_(rows),
        bits_(bits),
        words_per_row_(CeilDiv(bits, 64)),
        words_(rows * words_per_row_, 0) {}

  size_t rows() const { return rows_; }
  size_t bits() const { return bits_; }
  size_t words_per_row() const { return words_per_row_; }

  bool Get(size_t row, size_t bit) const {
    PIMINE_DCHECK(row < rows_ && bit < bits_);
    return (words_[row * words_per_row_ + bit / 64] >> (bit % 64)) & 1ULL;
  }

  void Set(size_t row, size_t bit, bool value) {
    PIMINE_DCHECK(row < rows_ && bit < bits_);
    uint64_t& word = words_[row * words_per_row_ + bit / 64];
    const uint64_t mask = 1ULL << (bit % 64);
    if (value) {
      word |= mask;
    } else {
      word &= ~mask;
    }
  }

  std::span<const uint64_t> row(size_t i) const {
    PIMINE_DCHECK(i < rows_);
    return std::span<const uint64_t>(words_.data() + i * words_per_row_,
                                     words_per_row_);
  }

  /// Hamming distance between rows of two (possibly distinct) matrices.
  static int HammingDistance(std::span<const uint64_t> a,
                             std::span<const uint64_t> b) {
    PIMINE_DCHECK(a.size() == b.size());
    int dist = 0;
    for (size_t w = 0; w < a.size(); ++w) dist += PopCount(a[w] ^ b[w]);
    return dist;
  }

  size_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  size_t rows_ = 0;
  size_t bits_ = 0;
  size_t words_per_row_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace pimine

#endif  // PIMINE_DATA_BIT_MATRIX_H_
