#ifndef PIMINE_DATA_NORMALIZE_H_
#define PIMINE_DATA_NORMALIZE_H_

#include <vector>

#include "common/status.h"
#include "data/matrix.h"

namespace pimine {

/// Per-dimension min-max scaling parameters fitted on a dataset. The paper
/// (§V-B) normalizes all floating-point values into [0, 1] before
/// quantization; queries must be transformed with the *dataset's* scaler so
/// bound guarantees hold.
class MinMaxScaler {
 public:
  /// Fits per-dimension (min, max) on `data`. Constant dimensions map to 0.
  static MinMaxScaler Fit(const FloatMatrix& data);

  /// Returns a copy of `data` scaled into [0, 1] per dimension. Values
  /// outside the fitted range (possible for queries) are clamped.
  FloatMatrix Transform(const FloatMatrix& data) const;

  /// Scales a single vector in place.
  void TransformRow(std::span<const float> in, std::span<float> out) const;

  size_t dims() const { return mins_.size(); }
  const std::vector<float>& mins() const { return mins_; }
  const std::vector<float>& maxs() const { return maxs_; }

 private:
  std::vector<float> mins_;
  std::vector<float> maxs_;
};

/// Convenience: fit on `data` and transform it, returning the scaled copy.
FloatMatrix NormalizeToUnitRange(const FloatMatrix& data);

}  // namespace pimine

#endif  // PIMINE_DATA_NORMALIZE_H_
