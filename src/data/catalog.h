#ifndef PIMINE_DATA_CATALOG_H_
#define PIMINE_DATA_CATALOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace pimine {

/// Statistical profile controlling how a synthetic stand-in dataset is
/// generated. The profiles are tuned so the bounds' pruning behaviour on
/// each synthetic dataset matches the regime the paper reports for its real
/// counterpart (e.g. LB_FNN prunes well on MSD but poorly on GIST).
enum class ClusterProfile {
  /// Tight Gaussian clusters; segment-mean bounds are informative.
  kClustered,
  /// Heavy per-dimension noise with weak cluster structure; segment-mean
  /// bounds approximate the true distance poorly (the paper's GIST regime).
  kDiffuse,
  /// Sparse non-negative counts (bag-of-words style; the Enron regime).
  kSparseCounts,
};

/// Descriptor of one of the paper's Table 6 datasets.
struct DatasetSpec {
  std::string name;
  /// Paper-reported cardinality (Table 6).
  int64_t paper_n = 0;
  /// Cardinality we generate by default (scaled down; see EXPERIMENTS.md).
  int64_t default_n = 0;
  /// Dimensionality — kept exactly equal to the paper's.
  int32_t dims = 0;
  ClusterProfile profile = ClusterProfile::kClustered;
  /// Number of latent clusters used by the generator.
  int32_t num_clusters = 0;
  /// Within-cluster standard deviation relative to the cluster spread.
  double cluster_std = 0.1;
  /// Task the paper uses it for ("knn" or "kmeans").
  std::string task;
};

/// Table 6 of the paper: the eight real datasets, with generation profiles.
class Catalog {
 public:
  /// All eight specs in paper order.
  static const std::vector<DatasetSpec>& All();

  /// Lookup by paper name (case-sensitive: "ImageNet", "MSD", "GIST",
  /// "Trevi", "Year", "Notre", "NUS-WIDE", "Enron").
  static Result<DatasetSpec> Find(std::string_view name);
};

}  // namespace pimine

#endif  // PIMINE_DATA_CATALOG_H_
