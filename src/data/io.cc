#include "data/io.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace pimine {
namespace {

constexpr uint32_t kMagic = 0x504d314d;  // "PM1M"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status SaveMatrix(const FloatMatrix& matrix, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const uint64_t rows = matrix.rows();
  const uint64_t cols = matrix.cols();
  if (std::fwrite(&kMagic, sizeof(kMagic), 1, f.get()) != 1 ||
      std::fwrite(&rows, sizeof(rows), 1, f.get()) != 1 ||
      std::fwrite(&cols, sizeof(cols), 1, f.get()) != 1) {
    return Status::IOError("short write of header to '" + path + "'");
  }
  const size_t n = matrix.size();
  if (n > 0 &&
      std::fwrite(matrix.data(), sizeof(float), n, f.get()) != n) {
    return Status::IOError("short write of payload to '" + path + "'");
  }
  return Status::OK();
}

Result<FloatMatrix> LoadMatrix(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  uint32_t magic = 0;
  uint64_t rows = 0;
  uint64_t cols = 0;
  if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1 ||
      std::fread(&rows, sizeof(rows), 1, f.get()) != 1 ||
      std::fread(&cols, sizeof(cols), 1, f.get()) != 1) {
    return Status::IOError("short read of header from '" + path + "'");
  }
  if (magic != kMagic) {
    return Status::InvalidArgument("'" + path + "' is not a pimine matrix");
  }
  if (rows > (1ULL << 40) || cols > (1ULL << 24)) {
    return Status::InvalidArgument("implausible matrix shape in '" + path +
                                   "'");
  }
  std::vector<float> payload(rows * cols);
  if (!payload.empty() &&
      std::fread(payload.data(), sizeof(float), payload.size(), f.get()) !=
          payload.size()) {
    return Status::IOError("short read of payload from '" + path + "'");
  }
  return FloatMatrix(rows, cols, std::move(payload));
}

}  // namespace pimine
