#include "data/io.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace pimine {
namespace {

constexpr uint32_t kMagic = 0x504d314d;  // "PM1M"

// File layout: u32 magic @0, u64 rows @4, u64 cols @12, payload @20.
constexpr long kHeaderBytes = 20;

// Hard ceiling on payload elements: caps the up-front allocation a
// malformed header can demand and rejects rows*cols overflow (2^46 floats
// = 256 TiB, far beyond any dataset this simulator models).
constexpr uint64_t kMaxElements = 1ULL << 46;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status SaveMatrix(const FloatMatrix& matrix, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const uint64_t rows = matrix.rows();
  const uint64_t cols = matrix.cols();
  if (std::fwrite(&kMagic, sizeof(kMagic), 1, f.get()) != 1 ||
      std::fwrite(&rows, sizeof(rows), 1, f.get()) != 1 ||
      std::fwrite(&cols, sizeof(cols), 1, f.get()) != 1) {
    return Status::IOError("short write of header to '" + path + "'");
  }
  const size_t n = matrix.size();
  if (n > 0 &&
      std::fwrite(matrix.data(), sizeof(float), n, f.get()) != n) {
    return Status::IOError("short write of payload to '" + path + "'");
  }
  return Status::OK();
}

Result<FloatMatrix> LoadMatrix(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  uint32_t magic = 0;
  uint64_t rows = 0;
  uint64_t cols = 0;
  if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1 ||
      std::fread(&rows, sizeof(rows), 1, f.get()) != 1 ||
      std::fread(&cols, sizeof(cols), 1, f.get()) != 1) {
    const long got = std::ftell(f.get());
    return Status::IOError(
        "truncated header in '" + path + "': expected " +
        std::to_string(kHeaderBytes) + " bytes at offset 0, file holds " +
        std::to_string(got < 0 ? 0 : got));
  }
  if (magic != kMagic) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a pimine matrix (bad magic at "
                                   "offset 0)");
  }
  if (rows > (1ULL << 40) || cols > (1ULL << 24) ||
      (cols != 0 && rows > kMaxElements / cols)) {
    return Status::InvalidArgument(
        "implausible matrix shape in '" + path + "': header at offset 4 "
        "declares " + std::to_string(rows) + " x " + std::to_string(cols));
  }
  std::vector<float> payload(rows * cols);
  if (!payload.empty()) {
    const size_t got =
        std::fread(payload.data(), sizeof(float), payload.size(), f.get());
    if (got != payload.size()) {
      return Status::IOError(
          "truncated payload in '" + path + "': expected " +
          std::to_string(payload.size()) + " floats at offset " +
          std::to_string(kHeaderBytes) + ", read " + std::to_string(got));
    }
  }
  return FloatMatrix(rows, cols, std::move(payload));
}

}  // namespace pimine
