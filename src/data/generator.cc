#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "util/random.h"

namespace pimine {
namespace {

/// Latent cluster centers. Real feature vectors (image descriptors, audio
/// features) are *smooth* across the dimension index, which is what makes
/// coarse segment-mean bounds informative on them; the centers therefore
/// follow a clamped random walk rather than iid draws. `step` controls the
/// smoothness (smaller = smoother).
std::vector<float> DrawCenters(int32_t num_clusters, int32_t dims, Rng& rng,
                               double step = 0.08) {
  std::vector<float> centers(static_cast<size_t>(num_clusters) * dims);
  for (int32_t c = 0; c < num_clusters; ++c) {
    double level = rng.NextUniform(0.25, 0.75);
    for (int32_t j = 0; j < dims; ++j) {
      level = std::clamp(level + rng.NextGaussian(0.0, step), 0.2, 0.8);
      centers[c * dims + j] = static_cast<float>(level);
    }
  }
  return centers;
}

void FillClustered(const DatasetSpec& spec, FloatMatrix& out, Rng& rng) {
  const auto centers = DrawCenters(spec.num_clusters, spec.dims, rng);
  for (size_t i = 0; i < out.rows(); ++i) {
    const size_t c = rng.NextBounded(static_cast<uint64_t>(spec.num_clusters));
    auto row = out.mutable_row(i);
    const float* center = centers.data() + c * spec.dims;
    for (int32_t j = 0; j < spec.dims; ++j) {
      const double v = center[j] + rng.NextGaussian(0.0, spec.cluster_std);
      row[j] = static_cast<float>(std::clamp(v, 0.0, 1.0));
    }
  }
}

/// The GIST regime (§VI-C): descriptors are *smooth* across the dimension
/// index (spatially pooled features), so segment means retain cluster
/// signal, but heavy per-point noise makes distances concentrate — the
/// bounds approximate the exact distance poorly and prune only marginally.
/// Centers follow a clamped random walk (smoothness); points add iid
/// Gaussian noise of comparable magnitude to the center separation.
void FillDiffuse(const DatasetSpec& spec, FloatMatrix& out, Rng& rng) {
  const auto centers =
      DrawCenters(spec.num_clusters, spec.dims, rng, /*step=*/0.06);
  for (size_t i = 0; i < out.rows(); ++i) {
    const size_t c = rng.NextBounded(static_cast<uint64_t>(spec.num_clusters));
    auto row = out.mutable_row(i);
    const float* center = centers.data() + c * spec.dims;
    for (int32_t j = 0; j < spec.dims; ++j) {
      const double v = center[j] + rng.NextGaussian(0.0, spec.cluster_std);
      row[j] = static_cast<float>(std::clamp(v, 0.0, 1.0));
    }
  }
}

/// Sparse non-negative magnitudes (bag-of-words style, the Enron regime):
/// most coordinates are zero, nonzeros follow a heavy-tailed distribution.
void FillSparseCounts(const DatasetSpec& spec, FloatMatrix& out, Rng& rng) {
  const double density = 0.05;
  const auto centers = DrawCenters(spec.num_clusters, spec.dims, rng);
  for (size_t i = 0; i < out.rows(); ++i) {
    const size_t c = rng.NextBounded(static_cast<uint64_t>(spec.num_clusters));
    auto row = out.mutable_row(i);
    const float* center = centers.data() + c * spec.dims;
    for (int32_t j = 0; j < spec.dims; ++j) {
      if (rng.NextDouble() < density) {
        // Center-biased activation keeps cluster structure in the support.
        const double magnitude =
            center[j] * -std::log(std::max(rng.NextDouble(), 1e-12)) * 0.5;
        row[j] = static_cast<float>(std::clamp(magnitude, 0.0, 1.0));
      } else {
        row[j] = 0.0f;
      }
    }
  }
}

}  // namespace

FloatMatrix DatasetGenerator::Generate(const DatasetSpec& spec, int64_t n,
                                       uint64_t seed) {
  if (n <= 0) n = spec.default_n;
  PIMINE_CHECK(spec.dims > 0 && spec.num_clusters > 0)
      << "bad spec for " << spec.name;
  FloatMatrix out(static_cast<size_t>(n), static_cast<size_t>(spec.dims));
  Rng rng(seed ^ 0x5eedULL);
  switch (spec.profile) {
    case ClusterProfile::kClustered:
      FillClustered(spec, out, rng);
      break;
    case ClusterProfile::kDiffuse:
      FillDiffuse(spec, out, rng);
      break;
    case ClusterProfile::kSparseCounts:
      FillSparseCounts(spec, out, rng);
      break;
  }
  return out;
}

FloatMatrix DatasetGenerator::GenerateQueries(const DatasetSpec& spec,
                                              const FloatMatrix& data,
                                              int64_t num_queries,
                                              uint64_t seed) {
  PIMINE_CHECK(!data.empty()) << "query generation needs a dataset";
  FloatMatrix out(static_cast<size_t>(num_queries), data.cols());
  Rng rng(seed ^ 0x9ee57ULL);
  // Queries are perturbed dataset points: near-neighbour structure exists,
  // as in the paper's classification workloads.
  const double perturb = 0.5 * spec.cluster_std;
  for (size_t i = 0; i < out.rows(); ++i) {
    const size_t src = rng.NextBounded(data.rows());
    const auto base = data.row(src);
    auto row = out.mutable_row(i);
    for (size_t j = 0; j < data.cols(); ++j) {
      const double v = base[j] + rng.NextGaussian(0.0, perturb);
      row[j] = static_cast<float>(std::clamp(v, 0.0, 1.0));
    }
  }
  return out;
}

}  // namespace pimine
