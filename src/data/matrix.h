#ifndef PIMINE_DATA_MATRIX_H_
#define PIMINE_DATA_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace pimine {

/// Dense row-major matrix: N objects ("rows") of dimensionality d ("cols").
/// This is the only dataset container in the library; rows are exposed as
/// spans so kernels can work on contiguous memory without copies.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(size_t rows, size_t cols, T fill = T())
      : rows_(rows), cols_(cols), values_(rows * cols, fill) {}

  Matrix(size_t rows, size_t cols, std::vector<T> values)
      : rows_(rows), cols_(cols), values_(std::move(values)) {
    PIMINE_CHECK(values_.size() == rows * cols)
        << "matrix storage size " << values_.size() << " != " << rows << "x"
        << cols;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  std::span<const T> row(size_t i) const {
    PIMINE_DCHECK(i < rows_);
    return std::span<const T>(values_.data() + i * cols_, cols_);
  }
  std::span<T> mutable_row(size_t i) {
    PIMINE_DCHECK(i < rows_);
    return std::span<T>(values_.data() + i * cols_, cols_);
  }

  T operator()(size_t i, size_t j) const {
    PIMINE_DCHECK(i < rows_ && j < cols_);
    return values_[i * cols_ + j];
  }
  T& operator()(size_t i, size_t j) {
    PIMINE_DCHECK(i < rows_ && j < cols_);
    return values_[i * cols_ + j];
  }

  const std::vector<T>& values() const { return values_; }
  const T* data() const { return values_.data(); }
  T* data() { return values_.data(); }

  /// Bytes of payload (excluding object overhead).
  size_t SizeBytes() const { return values_.size() * sizeof(T); }

  /// Appends one row. On an empty matrix the row fixes the column count;
  /// otherwise `row.size()` must equal cols(). Row spans returned earlier
  /// may be invalidated (storage reallocates); the matrix object itself
  /// stays valid, which is what the mutable-dataset layer relies on.
  void AppendRow(std::span<const T> row) {
    if (rows_ == 0) cols_ = row.size();
    PIMINE_CHECK(row.size() == cols_)
        << "appended row has " << row.size() << " values, expected " << cols_;
    values_.insert(values_.end(), row.begin(), row.end());
    ++rows_;
  }

  /// Appends every row of `other` (same column count, or this is empty).
  void AppendRows(const Matrix<T>& other) {
    if (other.rows() == 0) return;
    if (rows_ == 0) cols_ = other.cols();
    PIMINE_CHECK(other.cols() == cols_)
        << "appended matrix has " << other.cols() << " cols, expected "
        << cols_;
    values_.insert(values_.end(), other.values().begin(),
                   other.values().end());
    rows_ += other.rows();
  }

  /// Keeps only the rows named in `keep` (strictly ascending indices),
  /// preserving their order — the host half of a compaction pass.
  void KeepRows(std::span<const uint32_t> keep) {
    size_t w = 0;
    for (const uint32_t r : keep) {
      PIMINE_CHECK(r < rows_) << "KeepRows index " << r << " out of range";
      if (w != r) {
        std::copy(values_.begin() + r * cols_,
                  values_.begin() + (r + 1) * cols_,
                  values_.begin() + w * cols_);
      }
      ++w;
    }
    rows_ = w;
    values_.resize(rows_ * cols_);
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<T> values_;
};

using FloatMatrix = Matrix<float>;
using IntMatrix = Matrix<int32_t>;

}  // namespace pimine

#endif  // PIMINE_DATA_MATRIX_H_
