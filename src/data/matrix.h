#ifndef PIMINE_DATA_MATRIX_H_
#define PIMINE_DATA_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace pimine {

/// Dense row-major matrix: N objects ("rows") of dimensionality d ("cols").
/// This is the only dataset container in the library; rows are exposed as
/// spans so kernels can work on contiguous memory without copies.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(size_t rows, size_t cols, T fill = T())
      : rows_(rows), cols_(cols), values_(rows * cols, fill) {}

  Matrix(size_t rows, size_t cols, std::vector<T> values)
      : rows_(rows), cols_(cols), values_(std::move(values)) {
    PIMINE_CHECK(values_.size() == rows * cols)
        << "matrix storage size " << values_.size() << " != " << rows << "x"
        << cols;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  std::span<const T> row(size_t i) const {
    PIMINE_DCHECK(i < rows_);
    return std::span<const T>(values_.data() + i * cols_, cols_);
  }
  std::span<T> mutable_row(size_t i) {
    PIMINE_DCHECK(i < rows_);
    return std::span<T>(values_.data() + i * cols_, cols_);
  }

  T operator()(size_t i, size_t j) const {
    PIMINE_DCHECK(i < rows_ && j < cols_);
    return values_[i * cols_ + j];
  }
  T& operator()(size_t i, size_t j) {
    PIMINE_DCHECK(i < rows_ && j < cols_);
    return values_[i * cols_ + j];
  }

  const std::vector<T>& values() const { return values_; }
  const T* data() const { return values_.data(); }
  T* data() { return values_.data(); }

  /// Bytes of payload (excluding object overhead).
  size_t SizeBytes() const { return values_.size() * sizeof(T); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<T> values_;
};

using FloatMatrix = Matrix<float>;
using IntMatrix = Matrix<int32_t>;

}  // namespace pimine

#endif  // PIMINE_DATA_MATRIX_H_
