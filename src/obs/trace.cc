#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>

#include "common/logging.h"

namespace pimine {
namespace obs {
namespace {

/// Each recorder gets a unique generation so thread-local buffer caches
/// from a previous (destroyed) recorder can never be dereferenced.
std::atomic<uint64_t> g_recorder_generation{0};

struct TlsBufferCache {
  uint64_t generation = 0;
  void* buffer = nullptr;
};
thread_local TlsBufferCache tls_cache;

/// Fixed-precision microsecond formatting (chrome ts/dur unit): %.6f keeps
/// sub-nanosecond resolution and is byte-deterministic for equal doubles.
void AppendMicros(std::string* out, double ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", ns / 1000.0);
  out->append(buf);
}

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

TraceRecorder::TraceRecorder(const TraceOptions& options)
    : options_(options),
      generation_(g_recorder_generation.fetch_add(1) + 1) {}

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  if (tls_cache.generation != generation_) {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    tls_cache.generation = generation_;
    tls_cache.buffer = buffers_.back().get();
  }
  return *static_cast<ThreadBuffer*>(tls_cache.buffer);
}

void TraceRecorder::Emit(const TraceEvent& event) {
  ThreadBuffer& buffer = LocalBuffer();
  buffer.events.push_back(event);
  if (event.phase == 'B') ++buffer.open;
  if (event.phase == 'E') --buffer.open;
}

void TraceRecorder::Begin(const char* cat, const char* name, int64_t track) {
  TraceEvent e;
  e.phase = 'B';
  e.cat = cat;
  e.name = name;
  e.track = track;
  if (options_.wall_clock) e.wall_ns = static_cast<double>(wall_.ElapsedNanos());
  Emit(e);
}

void TraceRecorder::End(const char* cat, const char* name, int64_t track,
                        double modeled_ns, const char* arg_name0,
                        int64_t arg0, const char* arg_name1, int64_t arg1) {
  TraceEvent e;
  e.phase = 'E';
  e.cat = cat;
  e.name = name;
  e.track = track;
  e.modeled_ns = modeled_ns;
  e.arg_name0 = arg_name0;
  e.arg0 = arg0;
  e.arg_name1 = arg_name1;
  e.arg1 = arg1;
  if (options_.wall_clock) e.wall_ns = static_cast<double>(wall_.ElapsedNanos());
  Emit(e);
}

void TraceRecorder::Complete(const char* cat, const char* name, int64_t track,
                             double modeled_ns, const char* arg_name0,
                             int64_t arg0, const char* arg_name1,
                             int64_t arg1) {
  TraceEvent e;
  e.phase = 'X';
  e.cat = cat;
  e.name = name;
  e.track = track;
  e.modeled_ns = modeled_ns;
  e.arg_name0 = arg_name0;
  e.arg0 = arg0;
  e.arg_name1 = arg_name1;
  e.arg1 = arg1;
  if (options_.wall_clock) e.wall_ns = static_cast<double>(wall_.ElapsedNanos());
  Emit(e);
}

int64_t TraceRecorder::OpenSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t open = 0;
  for (const auto& buffer : buffers_) open += buffer->open;
  return open;
}

size_t TraceRecorder::NumEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->events.size();
  return n;
}

std::string TraceRecorder::ToChromeJson() const {
  // Group events by track, preserving per-buffer (= per-thread program)
  // order. A track is recorded by one thread at a time by construction
  // (queries are never split across workers; run-level spans come from the
  // coordinating thread), so this grouping reconstructs each track's true
  // event sequence independent of how work was spread over threads.
  std::map<int64_t, std::vector<const TraceEvent*>> tracks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      for (const TraceEvent& e : buffer->events) {
        tracks[e.track].push_back(&e);
      }
    }
  }

  std::string out;
  out.reserve(1024);
  out.append("{\n\"displayTimeUnit\": \"ns\",\n\"otherData\": "
             "{\"generator\": \"pimine\", \"clock_domain\": "
             "\"modeled-ns\"},\n\"traceEvents\": [\n");

  bool first = true;
  auto append_event = [&](const TraceEvent& e, double ts_ns, double dur_ns) {
    if (!first) out.append(",\n");
    first = false;
    out.append("{\"ph\":\"X\",\"pid\":0,\"tid\":");
    out.append(std::to_string(e.track));
    out.append(",\"cat\":\"");
    AppendEscaped(&out, e.cat);
    out.append("\",\"name\":\"");
    AppendEscaped(&out, e.name);
    out.append("\",\"ts\":");
    AppendMicros(&out, ts_ns);
    out.append(",\"dur\":");
    AppendMicros(&out, dur_ns);
    bool any_arg = e.arg_name0 != nullptr || e.arg_name1 != nullptr ||
                   e.wall_ns >= 0.0;
    if (any_arg) {
      out.append(",\"args\":{");
      bool first_arg = true;
      auto int_arg = [&](const char* k, int64_t v) {
        if (!first_arg) out.push_back(',');
        first_arg = false;
        out.push_back('"');
        AppendEscaped(&out, k);
        out.append("\":");
        out.append(std::to_string(v));
      };
      if (e.arg_name0 != nullptr) int_arg(e.arg_name0, e.arg0);
      if (e.arg_name1 != nullptr) int_arg(e.arg_name1, e.arg1);
      if (e.wall_ns >= 0.0) {
        if (!first_arg) out.push_back(',');
        out.append("\"wall_ns\":");
        out.append(std::to_string(static_cast<int64_t>(e.wall_ns)));
      }
      out.push_back('}');
    }
    out.push_back('}');
  };

  // Replay each track's timeline: top-level spans are laid back-to-back
  // from 0; children start at their parent's start plus the durations of
  // completed earlier siblings. Durations come straight from the recorded
  // modeled-ns values, so the layout (and the bytes) depend only on the
  // span sequence, never on wall time or thread interleaving.
  struct Frame {
    const TraceEvent* begin;
    double start_ns;
    double child_ns;
  };
  for (const auto& [track, events] : tracks) {
    double clock_ns = 0.0;
    std::vector<Frame> stack;
    auto place = [&](double dur) {
      double start;
      if (stack.empty()) {
        start = clock_ns;
        clock_ns += dur;
      } else {
        start = stack.back().start_ns + stack.back().child_ns;
        stack.back().child_ns += dur;
      }
      return start;
    };
    for (const TraceEvent* e : events) {
      switch (e->phase) {
        case 'B': {
          const double start = stack.empty()
                                   ? clock_ns
                                   : stack.back().start_ns +
                                         stack.back().child_ns;
          stack.push_back(Frame{e, start, 0.0});
          break;
        }
        case 'E': {
          if (stack.empty()) break;  // unbalanced; tolerated in export.
          const Frame frame = stack.back();
          stack.pop_back();
          append_event(*e, frame.start_ns, e->modeled_ns);
          if (stack.empty()) {
            clock_ns = frame.start_ns + e->modeled_ns;
          } else {
            stack.back().child_ns += e->modeled_ns;
          }
          break;
        }
        case 'X':
          append_event(*e, place(e->modeled_ns), e->modeled_ns);
          break;
        default:
          break;
      }
    }
  }

  out.append("\n]\n}\n");
  return out;
}

}  // namespace obs
}  // namespace pimine
