#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>

namespace pimine {
namespace obs {
namespace {

/// Shortest-exact double formatting (%.17g), shared with the metrics
/// exposition so identical doubles always print identical bytes.
std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

TimeSeries::TimeSeries(const TimeSeriesOptions& options) : options_(options) {
  if (options_.window_ns == 0) options_.window_ns = 1;
  if (options_.num_windows < 2) options_.num_windows = 2;
  if (options_.slo_short_windows == 0) options_.slo_short_windows = 1;
  if (options_.slo_long_windows < options_.slo_short_windows) {
    options_.slo_long_windows = options_.slo_short_windows;
  }
}

uint64_t TimeSeries::WindowIndexFor(uint64_t t_ns) const {
  return t_ns / options_.window_ns;
}

bool TimeSeries::Retained(uint64_t w) const {
  if (!any_sample_) return false;
  if (w > newest_) return false;
  return newest_ - w < options_.num_windows;
}

bool TimeSeries::AdvanceTo(uint64_t w) {
  if (!any_sample_) {
    any_sample_ = true;
    newest_ = w;
    return true;
  }
  if (w <= newest_) {
    // In-retention backfill is exact; older samples are counted dropped.
    if (newest_ - w >= options_.num_windows) {
      ++dropped_late_;
      return false;
    }
    return true;
  }
  // Roll forward: every slot between the old newest and `w` starts empty.
  const uint64_t steps = std::min<uint64_t>(w - newest_, options_.num_windows);
  for (uint64_t i = 1; i <= steps; ++i) {
    const size_t slot = static_cast<size_t>((newest_ + i) % options_.num_windows);
    for (Series& s : series_) {
      if (s.is_histogram) {
        s.hists[slot].Reset();
      } else {
        s.counts[slot] = 0;
      }
    }
  }
  newest_ = w;
  return true;
}

TimeSeries::Series& TimeSeries::GetSeries(const std::string& name,
                                          bool is_histogram) {
  for (Series& s : series_) {
    if (s.name == name) return s;
  }
  series_.emplace_back();
  Series& s = series_.back();
  s.name = name;
  s.is_histogram = is_histogram;
  if (is_histogram) {
    s.hists.resize(options_.num_windows);
  } else {
    s.counts.assign(options_.num_windows, 0);
  }
  return s;
}

const TimeSeries::Series* TimeSeries::FindSeries(
    const std::string& name) const {
  for (const Series& s : series_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void TimeSeries::Count(const std::string& name, uint64_t t_ns,
                       uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t w = t_ns / options_.window_ns;
  if (!AdvanceTo(w)) return;
  Series& s = GetSeries(name, /*is_histogram=*/false);
  s.counts[static_cast<size_t>(w % options_.num_windows)] += delta;
}

void TimeSeries::Observe(const std::string& name, uint64_t t_ns,
                         double value_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t w = t_ns / options_.window_ns;
  if (!AdvanceTo(w)) return;
  Series& s = GetSeries(name, /*is_histogram=*/true);
  s.hists[static_cast<size_t>(w % options_.num_windows)].Record(value_ns);
}

void TimeSeries::SetSlo(const std::string& bad_name,
                        const std::string& total_name) {
  std::lock_guard<std::mutex> lock(mu_);
  slo_bad_ = bad_name;
  slo_total_ = total_name;
}

uint64_t TimeSeries::newest_window() const {
  std::lock_guard<std::mutex> lock(mu_);
  return newest_;
}

uint64_t TimeSeries::oldest_window() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t span = options_.num_windows - 1;
  return newest_ > span ? newest_ - span : 0;
}

uint64_t TimeSeries::dropped_late() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_late_;
}

uint64_t TimeSeries::CounterInWindow(const std::string& name,
                                     uint64_t w) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* s = FindSeries(name);
  if (s == nullptr || s->is_histogram || !Retained(w)) return 0;
  return s->counts[static_cast<size_t>(w % options_.num_windows)];
}

double TimeSeries::RatePerSec(const std::string& name, uint64_t w) const {
  const uint64_t count = CounterInWindow(name, w);
  return static_cast<double>(count) * 1e9 /
         static_cast<double>(options_.window_ns);
}

Histogram TimeSeries::HistogramInWindow(const std::string& name,
                                        uint64_t w) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* s = FindSeries(name);
  if (s == nullptr || !s->is_histogram || !Retained(w)) return Histogram();
  return s->hists[static_cast<size_t>(w % options_.num_windows)];
}

uint64_t TimeSeries::TrailingSum(const Series* s, size_t span) const {
  if (s == nullptr || s->is_histogram || !any_sample_) return 0;
  uint64_t sum = 0;
  const size_t n = std::min(span, options_.num_windows);
  for (size_t i = 0; i < n; ++i) {
    if (newest_ < i) break;
    const uint64_t w = newest_ - i;
    sum += s->counts[static_cast<size_t>(w % options_.num_windows)];
  }
  return sum;
}

TimeSeries::BurnRate TimeSeries::SloBurn() const {
  std::lock_guard<std::mutex> lock(mu_);
  BurnRate burn;
  if (slo_bad_.empty() || slo_total_.empty() || options_.slo_budget <= 0.0) {
    return burn;
  }
  const Series* bad = FindSeries(slo_bad_);
  const Series* total = FindSeries(slo_total_);
  const auto burn_over = [&](size_t span) {
    const uint64_t t = TrailingSum(total, span);
    if (t == 0) return 0.0;
    const uint64_t b = TrailingSum(bad, span);
    return (static_cast<double>(b) / static_cast<double>(t)) /
           options_.slo_budget;
  };
  burn.short_burn = burn_over(options_.slo_short_windows);
  burn.long_burn = burn_over(options_.slo_long_windows);
  return burn;
}

std::string TimeSeries::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t span = options_.num_windows - 1;
  const uint64_t oldest = newest_ > span ? newest_ - span : 0;
  std::string out;
  out.reserve(2048);
  out.append("{\n\"schema\": \"pimine.obs.timeseries.v1\",\n");
  out.append("\"window_ns\": ")
      .append(std::to_string(options_.window_ns))
      .append(",\n");
  out.append("\"num_windows\": ")
      .append(std::to_string(options_.num_windows))
      .append(",\n");
  out.append("\"oldest_window\": ").append(std::to_string(oldest)).append(",\n");
  out.append("\"newest_window\": ")
      .append(std::to_string(newest_))
      .append(",\n");
  out.append("\"dropped_late\": ")
      .append(std::to_string(dropped_late_))
      .append(",\n");

  // Sorted series names -> deterministic bytes.
  std::vector<size_t> order(series_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return series_[a].name < series_[b].name;
  });

  out.append("\"series\": {");
  bool first_series = true;
  for (size_t si : order) {
    const Series& s = series_[si];
    if (!first_series) out.push_back(',');
    first_series = false;
    out.append("\n  \"").append(s.name).append("\": {\"type\": \"");
    out.append(s.is_histogram ? "histogram" : "counter");
    out.append("\", \"points\": [");
    bool first_point = true;
    for (uint64_t w = oldest; any_sample_ && w <= newest_; ++w) {
      const size_t slot = static_cast<size_t>(w % options_.num_windows);
      if (s.is_histogram) {
        const Histogram& h = s.hists[slot];
        if (h.count() == 0) continue;
        if (!first_point) out.append(", ");
        first_point = false;
        out.append("[")
            .append(std::to_string(w))
            .append(", ")
            .append(std::to_string(h.count()))
            .append(", ")
            .append(std::to_string(h.sum_ticks()))
            .append(", ")
            .append(std::to_string(h.max_ticks()))
            .append(", ")
            .append(std::to_string(h.QuantileUpperBound(0.50)))
            .append(", ")
            .append(std::to_string(h.QuantileUpperBound(0.99)))
            .append("]");
      } else {
        const uint64_t count = s.counts[slot];
        if (count == 0) continue;
        if (!first_point) out.append(", ");
        first_point = false;
        const double rate = static_cast<double>(count) * 1e9 /
                            static_cast<double>(options_.window_ns);
        out.append("[")
            .append(std::to_string(w))
            .append(", ")
            .append(std::to_string(count))
            .append(", ")
            .append(FmtDouble(rate))
            .append("]");
      }
    }
    out.append("]}");
  }
  out.append(first_series ? "}" : "\n}");

  // SLO burn block (mirrors SloBurn(), inlined to stay under one lock).
  double short_burn = 0.0, long_burn = 0.0;
  if (!slo_bad_.empty() && !slo_total_.empty() && options_.slo_budget > 0.0) {
    const Series* bad = FindSeries(slo_bad_);
    const Series* total = FindSeries(slo_total_);
    const auto burn_over = [&](size_t burn_span) {
      const uint64_t t = TrailingSum(total, burn_span);
      if (t == 0) return 0.0;
      return (static_cast<double>(TrailingSum(bad, burn_span)) /
              static_cast<double>(t)) /
             options_.slo_budget;
    };
    short_burn = burn_over(options_.slo_short_windows);
    long_burn = burn_over(options_.slo_long_windows);
  }
  out.append(",\n\"slo\": {\"bad\": \"")
      .append(slo_bad_)
      .append("\", \"total\": \"")
      .append(slo_total_)
      .append("\", \"budget\": ")
      .append(FmtDouble(options_.slo_budget))
      .append(", \"short_windows\": ")
      .append(std::to_string(options_.slo_short_windows))
      .append(", \"long_windows\": ")
      .append(std::to_string(options_.slo_long_windows))
      .append(", \"short_burn\": ")
      .append(FmtDouble(short_burn))
      .append(", \"long_burn\": ")
      .append(FmtDouble(long_burn))
      .append("}\n}\n");
  return out;
}

}  // namespace obs
}  // namespace pimine
