#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "util/bits.h"

namespace pimine {
namespace obs {

void Histogram::Record(double ns) {
  uint64_t ticks;
  if (!(ns > 0.0)) {  // negatives and NaN clamp to zero.
    ticks = 0;
  } else if (ns >= static_cast<double>(kMaxTicks)) {
    ticks = kMaxTicks;
  } else {
    ticks = static_cast<uint64_t>(std::llround(ns));
  }
  ++counts_[BucketIndex(ticks)];
  ++count_;
  sum_ += ticks;
  max_ = std::max(max_, ticks);
}

int Histogram::BucketIndex(uint64_t ticks) {
  if (ticks == 0) return 0;
  return std::min(kNumBuckets - 1, FloorLog2(ticks) + 1);
}

uint64_t Histogram::BucketUpperEdge(int index) {
  if (index <= 0) return 0;
  return (1ULL << index) - 1;  // inclusive: bucket i covers [2^(i-1), 2^i).
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::memset(counts_, 0, sizeof(counts_));
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

uint64_t Histogram::QuantileUpperBound(double q) const {
  if (count_ == 0) return 0;
  if (q >= 1.0) return max_;
  if (q <= 0.0) q = 0.0;
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return BucketUpperEdge(i);
  }
  return max_;
}

bool Histogram::operator==(const Histogram& other) const {
  if (count_ != other.count_ || sum_ != other.sum_ || max_ != other.max_) {
    return false;
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts_[i] != other.counts_[i]) return false;
  }
  return true;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count_ << " p50<=" << QuantileUpperBound(0.50)
     << " p95<=" << QuantileUpperBound(0.95)
     << " p99<=" << QuantileUpperBound(0.99) << " max=" << max_;
  return os.str();
}

}  // namespace obs
}  // namespace pimine
