#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "util/bits.h"

namespace pimine {
namespace obs {

void Histogram::Record(double ns) {
  uint64_t ticks;
  if (!(ns > 0.0)) {  // negatives and NaN clamp to zero.
    ticks = 0;
  } else if (ns >= static_cast<double>(kMaxTicks)) {
    ticks = kMaxTicks;
  } else {
    ticks = static_cast<uint64_t>(std::llround(ns));
  }
  ++counts_[BucketIndex(ticks)];
  ++count_;
  sum_ += ticks;
  max_ = std::max(max_, ticks);
}

int Histogram::BucketIndex(uint64_t ticks) {
  if (ticks == 0) return 0;
  return std::min(kNumBuckets - 1, FloorLog2(ticks) + 1);
}

uint64_t Histogram::BucketUpperEdge(int index) {
  if (index <= 0) return 0;
  return (1ULL << index) - 1;  // inclusive: bucket i covers [2^(i-1), 2^i).
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::memset(counts_, 0, sizeof(counts_));
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

uint64_t Histogram::QuantileUpperBound(double q) const {
  if (count_ == 0) return 0;
  if (q >= 1.0) return max_;
  if (q <= 0.0) q = 0.0;
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return BucketUpperEdge(i);
  }
  return max_;
}

bool Histogram::operator==(const Histogram& other) const {
  if (count_ != other.count_ || sum_ != other.sum_ || max_ != other.max_) {
    return false;
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts_[i] != other.counts_[i]) return false;
  }
  return true;
}

std::string Histogram::ToJson() const {
  std::string out;
  out.reserve(128);
  out.append("{\"count\": ").append(std::to_string(count_));
  out.append(", \"sum_ticks\": ").append(std::to_string(sum_));
  out.append(", \"max_ticks\": ").append(std::to_string(max_));
  out.append(", \"buckets\": [");
  bool first = true;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts_[i] == 0) continue;
    if (!first) out.append(", ");
    first = false;
    out.append("[")
        .append(std::to_string(i))
        .append(", ")
        .append(std::to_string(counts_[i]))
        .append("]");
  }
  out.append("]}");
  return out;
}

namespace {

/// Parses the unsigned integer following `key` in `json` ("key": N).
Result<uint64_t> ParseKeyedInt(const std::string& json,
                               const std::string& key) {
  const std::string quoted = "\"" + key + "\"";
  size_t pos = json.find(quoted);
  if (pos == std::string::npos) {
    return Status::InvalidArgument("histogram JSON missing key " + key);
  }
  pos = json.find(':', pos + quoted.size());
  if (pos == std::string::npos) {
    return Status::InvalidArgument("histogram JSON: no value for " + key);
  }
  ++pos;
  while (pos < json.size() && json[pos] == ' ') ++pos;
  if (pos >= json.size() || json[pos] < '0' || json[pos] > '9') {
    return Status::InvalidArgument("histogram JSON: non-integer " + key);
  }
  uint64_t value = 0;
  while (pos < json.size() && json[pos] >= '0' && json[pos] <= '9') {
    value = value * 10 + static_cast<uint64_t>(json[pos] - '0');
    ++pos;
  }
  return value;
}

}  // namespace

Result<Histogram> Histogram::FromJson(const std::string& json) {
  Histogram h;
  PIMINE_ASSIGN_OR_RETURN(h.count_, ParseKeyedInt(json, "count"));
  PIMINE_ASSIGN_OR_RETURN(h.sum_, ParseKeyedInt(json, "sum_ticks"));
  PIMINE_ASSIGN_OR_RETURN(h.max_, ParseKeyedInt(json, "max_ticks"));

  size_t pos = json.find("\"buckets\"");
  if (pos == std::string::npos) {
    return Status::InvalidArgument("histogram JSON missing key buckets");
  }
  pos = json.find('[', pos);
  if (pos == std::string::npos) {
    return Status::InvalidArgument("histogram JSON: buckets is not a list");
  }
  ++pos;
  const auto parse_int = [&](uint64_t* out) -> bool {
    while (pos < json.size() && (json[pos] == ' ' || json[pos] == ',')) ++pos;
    if (pos >= json.size() || json[pos] < '0' || json[pos] > '9') return false;
    *out = 0;
    while (pos < json.size() && json[pos] >= '0' && json[pos] <= '9') {
      *out = *out * 10 + static_cast<uint64_t>(json[pos] - '0');
      ++pos;
    }
    return true;
  };
  while (true) {
    while (pos < json.size() && (json[pos] == ' ' || json[pos] == ',')) ++pos;
    if (pos >= json.size()) {
      return Status::InvalidArgument("histogram JSON: unterminated buckets");
    }
    if (json[pos] == ']') break;  // end of the bucket list.
    if (json[pos] != '[') {
      return Status::InvalidArgument("histogram JSON: bad bucket entry");
    }
    ++pos;
    uint64_t index = 0, bucket_count = 0;
    if (!parse_int(&index) || !parse_int(&bucket_count)) {
      return Status::InvalidArgument("histogram JSON: bad bucket pair");
    }
    while (pos < json.size() && json[pos] == ' ') ++pos;
    if (pos >= json.size() || json[pos] != ']') {
      return Status::InvalidArgument("histogram JSON: unclosed bucket pair");
    }
    ++pos;
    if (index >= static_cast<uint64_t>(kNumBuckets)) {
      return Status::InvalidArgument("histogram JSON: bucket index " +
                                     std::to_string(index) + " out of range");
    }
    h.counts_[index] = bucket_count;
  }
  return h;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count_ << " p50<=" << QuantileUpperBound(0.50)
     << " p95<=" << QuantileUpperBound(0.95)
     << " p99<=" << QuantileUpperBound(0.99) << " max=" << max_;
  return os.str();
}

}  // namespace obs
}  // namespace pimine
