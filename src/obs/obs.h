#ifndef PIMINE_OBS_OBS_H_
#define PIMINE_OBS_OBS_H_

#include <atomic>
#include <cstdint>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "sim/traffic.h"

namespace pimine {
namespace obs {

/// Configuration for an observability session.
struct ObsOptions {
  TraceOptions trace;
  /// Modeled-time clock for host-side span durations: spans convert their
  /// traffic-counter delta to nanoseconds through this model. Use the same
  /// platform as the engine under observation so trace time lines up with
  /// RunStats' cost attribution.
  HostCostModel host_model;
};

/// Process-wide observability session. Disabled by default: every
/// instrumentation point starts with `Obs::Get()`, a single relaxed atomic
/// load returning nullptr, and takes no further action — the null-object
/// fast path that keeps the disabled build's RunStats and traffic totals
/// bit-identical to an uninstrumented binary.
///
/// Enable()/Disable() must be called from the coordinating thread while no
/// instrumented work is in flight (same quiescence contract as
/// traffic::GlobalSnapshot()).
class Obs {
 public:
  /// nullptr when observability is disabled (the fast path).
  static Obs* Get() { return instance_.load(std::memory_order_acquire); }
  static bool Enabled() { return Get() != nullptr; }

  static void Enable(const ObsOptions& options = ObsOptions());
  static void Disable();

  TraceRecorder& trace() { return trace_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Modeled host nanoseconds for a traffic-counter delta.
  double HostNs(const TrafficCounters& delta) const {
    return model_.EstimateBreakdown(delta, 0).total_ns();
  }

 private:
  explicit Obs(const ObsOptions& options);

  HostCostModel model_;
  TraceRecorder trace_;
  MetricsRegistry metrics_;

  static std::atomic<Obs*> instance_;
};

/// Adds `delta` to the named counter iff observability is enabled. Intended
/// for merge points / coarse events, not per-candidate hot loops (name
/// lookup takes the registry mutex).
inline void AddCounter(const char* name, uint64_t delta) {
  if (Obs* obs = Obs::Get()) obs->metrics().GetCounter(name).Add(delta);
}

/// Emits a complete span iff enabled; `ns` is the modeled duration.
inline void EmitComplete(const char* cat, const char* name, int64_t track,
                         double ns, const char* arg_name0 = nullptr,
                         int64_t arg0 = 0, const char* arg_name1 = nullptr,
                         int64_t arg1 = 0) {
  if (Obs* obs = Obs::Get()) {
    obs->trace().Complete(cat, name, track, ns, arg_name0, arg0, arg_name1,
                          arg1);
  }
}

// --- track-base plumbing ---------------------------------------------------

/// Sentinel: no batch track base installed on this thread.
constexpr int64_t kNoTrackBase = INT64_MIN;

/// Current thread's track base (kNoTrackBase when unset).
int64_t CurrentTrackBase();

/// Installs a per-thread track base for the duration of a scope. Batched
/// harnesses set base = first global query index of the batch before calling
/// into the engine, so engine/device code can label per-query spans with
/// global query ids via TrackFor() without threading ids through every API.
class ScopedTrackBase {
 public:
  explicit ScopedTrackBase(int64_t base);
  ~ScopedTrackBase();

  ScopedTrackBase(const ScopedTrackBase&) = delete;
  ScopedTrackBase& operator=(const ScopedTrackBase&) = delete;

 private:
  int64_t prev_;
};

/// Track for the `index`-th query of the current batch: base + index when a
/// base is installed, else kRunTrack (spans fold into the run-level track,
/// e.g. k-means assignment passes under their iteration span).
inline int64_t TrackFor(int64_t index) {
  const int64_t base = CurrentTrackBase();
  return base == kNoTrackBase ? kRunTrack : base + index;
}

// --- RAII spans ------------------------------------------------------------

/// Generic RAII span on the calling thread: duration = modeled host ns of
/// the thread-local traffic delta accumulated in scope. Zero-cost when
/// observability is disabled.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name, int64_t track = kRunTrack);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Obs* obs_;
  const char* cat_;
  const char* name_;
  int64_t track_;
  TrafficCounters start_;
};

/// Per-query span recorded by the worker that owns the query. Duration =
/// modeled host ns of the thread-local traffic delta + `extra_ns` (the
/// query's serial-equivalent device time, hoisted by the caller). On close
/// it records the duration into `latency` (a per-slot histogram, exact-
/// merged into RunStats later) — both the trace bytes and the histogram
/// depend only on per-query work, never on thread count or batch grouping.
class QuerySpan {
 public:
  QuerySpan(int64_t query_id, Histogram* latency, double extra_ns = 0.0);
  ~QuerySpan();

  QuerySpan(const QuerySpan&) = delete;
  QuerySpan& operator=(const QuerySpan&) = delete;

 private:
  Obs* obs_;
  int64_t query_id_;
  Histogram* latency_;
  double extra_ns_;
  TrafficCounters start_;
};

/// Run-level span covering work fanned out across the pool: duration =
/// modeled host ns of the *process-wide* traffic delta (AggregateScope
/// discipline — construct before submitting work, destroy after the pool
/// drains) + any explicitly added device ns. Used for k-means iterations.
class AggregateSpan {
 public:
  AggregateSpan(const char* cat, const char* name, int64_t track = kRunTrack);
  ~AggregateSpan();

  /// Adds modeled device nanoseconds (e.g. PIM compute charged upstream).
  void AddModeledNs(double ns) { extra_ns_ += ns; }
  /// Also record the final duration into `hist` on close.
  void set_histogram(Histogram* hist) { hist_ = hist; }

  AggregateSpan(const AggregateSpan&) = delete;
  AggregateSpan& operator=(const AggregateSpan&) = delete;

 private:
  Obs* obs_;
  const char* cat_;
  const char* name_;
  int64_t track_;
  double extra_ns_ = 0.0;
  Histogram* hist_ = nullptr;
  TrafficCounters start_;
};

/// Opt-in (TraceOptions::sched_events) physical scheduling span for one
/// worker chunk; exempt from the bit-identity guarantee since chunk shape
/// depends on thread count. Emits on track kSchedTrackBase - chunk_index
/// with [begin, end) query-range args.
class SchedSpan {
 public:
  SchedSpan(int64_t chunk_index, int64_t begin, int64_t end);
  ~SchedSpan();

  SchedSpan(const SchedSpan&) = delete;
  SchedSpan& operator=(const SchedSpan&) = delete;

 private:
  Obs* obs_;
  int64_t chunk_index_;
  int64_t begin_;
  int64_t end_;
  TrafficCounters start_;
};

}  // namespace obs
}  // namespace pimine

#endif  // PIMINE_OBS_OBS_H_
