#include "obs/exposition_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pimine {
namespace obs {
namespace {

/// Blocking send of the whole buffer (the bodies are small; a stuck peer
/// is bounded by the response poll timeout upstream of us closing).
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // Peer went away; nothing to salvage on a read-only tap.
    }
    sent += static_cast<size_t>(n);
  }
}

std::string MakeResponse(const std::string& status_line,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out;
  out.reserve(body.size() + 160);
  out.append("HTTP/1.0 ").append(status_line).append("\r\n");
  out.append("Content-Type: ").append(content_type).append("\r\n");
  out.append("Content-Length: ")
      .append(std::to_string(body.size()))
      .append("\r\n");
  out.append("Connection: close\r\n\r\n");
  out.append(body);
  return out;
}

}  // namespace

Result<std::unique_ptr<ExpositionServer>> ExpositionServer::Start(
    int port, std::vector<HttpRoute> routes) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("exposition port out of range: " +
                                   std::to_string(port));
  }
  std::unique_ptr<ExpositionServer> server(new ExpositionServer());
  server->routes_ = std::move(routes);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind(127.0.0.1:" + std::to_string(port) +
                           "): " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen(): " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("getsockname(): " + err);
  }
  server->listen_fd_ = fd;
  server->port_ = static_cast<int>(ntohs(bound.sin_port));
  server->thread_ = std::thread(&ExpositionServer::Loop, server.get());
  return server;
}

ExpositionServer::~ExpositionServer() { Stop(); }

void ExpositionServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_release);
  // Unblock accept(); the loop's poll timeout is the fallback.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void ExpositionServer::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;  // timeout / EINTR: re-check stop flag.
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void ExpositionServer::HandleConnection(int fd) {
  // Read until the end of the request head (or 4 KiB — more than any GET
  // we answer needs), with a poll-bounded wait per chunk.
  std::string request;
  char buf[1024];
  while (request.size() < 4096 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/1000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Request line: METHOD SP PATH SP VERSION.
  const size_t line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    SendAll(fd, MakeResponse("400 Bad Request", "text/plain; charset=utf-8",
                             "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    SendAll(fd, MakeResponse("405 Method Not Allowed",
                             "text/plain; charset=utf-8",
                             "read-only endpoint: GET only\n"));
    return;
  }
  for (const HttpRoute& route : routes_) {
    if (route.path == path) {
      SendAll(fd, MakeResponse("200 OK", route.content_type,
                               route.handler ? route.handler() : ""));
      return;
    }
  }
  SendAll(fd, MakeResponse("404 Not Found", "text/plain; charset=utf-8",
                           "unknown path " + path + "\n"));
}

}  // namespace obs
}  // namespace pimine
