#ifndef PIMINE_OBS_METRICS_H_
#define PIMINE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace pimine {
namespace obs {

/// Ordered label set of one instrument, e.g. {{"shard", "3"}}. Labels are
/// emitted in the given order; callers use a fixed order per family so the
/// exposition stays byte-deterministic.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Increments are relaxed atomic adds: totals are exact
/// and independent of thread interleaving (integer addition commutes), the
/// same invariance discipline as the traffic counters.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins gauge. Set from a single coordinating thread; reads are
/// safe from any thread.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Named registry of counters, gauges, and histograms. Get*() returns a
/// stable reference (instruments are heap-allocated and never moved), so
/// call sites may cache the pointer across the registry's lifetime.
/// Histograms in the registry are fed by MergeHistogram() from merge points
/// (one merging thread at a time per the harness contract), guarded by a
/// mutex for safety.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);

  /// Labeled variants: `family{k="v",...}` instruments. The family (the
  /// name before '{') is what HELP/TYPE describe; every label combination
  /// is one independent instrument. Label values are escaped per the
  /// Prometheus exposition format (backslash, quote, newline).
  Counter& GetCounter(const std::string& family, const MetricLabels& labels);
  Gauge& GetGauge(const std::string& family, const MetricLabels& labels);
  void MergeHistogram(const std::string& family, const MetricLabels& labels,
                      const Histogram& samples);

  /// The full stored name of a labeled instrument (exposed for tests and
  /// for snapshot lookups): family + '{' + escaped labels + '}'.
  static std::string LabeledName(const std::string& family,
                                 const MetricLabels& labels);

  /// Registers the fixed `# HELP` text of a family. Unregistered families
  /// expose their own name as help — deterministic either way.
  void SetHelp(const std::string& family, const std::string& help);

  /// Folds per-thread/per-slot samples into the named registry histogram.
  void MergeHistogram(const std::string& name, const Histogram& samples);
  /// Copy of the named histogram's current state (zero if never merged).
  Histogram GetHistogramSnapshot(const std::string& name) const;

  /// Zeroes every instrument's value but keeps all registrations (names and
  /// the references previously handed out stay valid).
  void Reset();

  size_t NumInstruments() const;

  /// Prometheus text exposition (v0.0.4): one `# HELP` and one `# TYPE`
  /// line per family followed by its samples (all label combinations),
  /// histograms with cumulative `le` buckets plus `_sum` (integer ticks)
  /// and `_count`. Families are emitted sorted (label sets sorted within a
  /// family) with fixed help strings — deterministic byte output for
  /// identical instrument state, strict-parser clean.
  std::string ToPrometheus() const;
  /// Same content as a JSON object, also name-sorted and deterministic.
  std::string ToJson() const;

 private:
  struct NamedCounter {
    std::string name;
    std::unique_ptr<Counter> counter;
  };
  struct NamedGauge {
    std::string name;
    std::unique_ptr<Gauge> gauge;
  };
  struct NamedHistogram {
    std::string name;
    std::unique_ptr<Histogram> hist;
  };

  mutable std::mutex mu_;
  std::vector<NamedCounter> counters_;
  std::vector<NamedGauge> gauges_;
  std::vector<NamedHistogram> histograms_;
  std::map<std::string, std::string> help_;  // family -> fixed help text.
};

}  // namespace obs
}  // namespace pimine

#endif  // PIMINE_OBS_METRICS_H_
