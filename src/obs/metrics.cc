#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace pimine {
namespace obs {
namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

template <typename Vec>
std::vector<size_t> SortedIndexByName(const Vec& v) {
  std::vector<size_t> idx(v.size());
  for (size_t i = 0; i < v.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return v[a].name < v[b].name; });
  return idx;
}

/// Family = the stored name up to the label block ('{').
std::string FamilyOf(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// The "{k=\"v\",...}" suffix of a labeled name ("" when unlabeled).
std::string LabelBlockOf(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? std::string() : name.substr(brace);
}

/// Exposition-format escaping for label values: backslash, double quote,
/// and newline must be escaped; everything else passes through.
void AppendLabelEscaped(std::string* out, const std::string& value) {
  for (char c : value) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '"') {
      out->append("\\\"");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

/// HELP-text escaping: backslash and newline only (quotes are legal).
void AppendHelpEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

/// Same-family entries grouped for exposition: sorting by (family, label
/// block) keeps every family's samples contiguous even when an unrelated
/// family name sorts between "fam" and "fam{...}" byte-wise.
template <typename Vec>
std::vector<size_t> SortedIndexByFamily(const Vec& v) {
  std::vector<size_t> idx(v.size());
  for (size_t i = 0; i < v.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    const std::string fa = FamilyOf(v[a].name), fb = FamilyOf(v[b].name);
    if (fa != fb) return fa < fb;
    return LabelBlockOf(v[a].name) < LabelBlockOf(v[b].name);
  });
  return idx;
}

}  // namespace

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : counters_) {
    if (entry.name == name) return *entry.counter;
  }
  counters_.push_back({name, std::make_unique<Counter>()});
  return *counters_.back().counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : gauges_) {
    if (entry.name == name) return *entry.gauge;
  }
  gauges_.push_back({name, std::make_unique<Gauge>()});
  return *gauges_.back().gauge;
}

std::string MetricsRegistry::LabeledName(const std::string& family,
                                         const MetricLabels& labels) {
  if (labels.empty()) return family;
  std::string name = family;
  name.push_back('{');
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) name.push_back(',');
    name.append(labels[i].first).append("=\"");
    AppendLabelEscaped(&name, labels[i].second);
    name.push_back('"');
  }
  name.push_back('}');
  return name;
}

Counter& MetricsRegistry::GetCounter(const std::string& family,
                                     const MetricLabels& labels) {
  return GetCounter(LabeledName(family, labels));
}

Gauge& MetricsRegistry::GetGauge(const std::string& family,
                                 const MetricLabels& labels) {
  return GetGauge(LabeledName(family, labels));
}

void MetricsRegistry::MergeHistogram(const std::string& family,
                                     const MetricLabels& labels,
                                     const Histogram& samples) {
  MergeHistogram(LabeledName(family, labels), samples);
}

void MetricsRegistry::SetHelp(const std::string& family,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[family] = help;
}

void MetricsRegistry::MergeHistogram(const std::string& name,
                                     const Histogram& samples) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : histograms_) {
    if (entry.name == name) {
      entry.hist->Merge(samples);
      return;
    }
  }
  histograms_.push_back({name, std::make_unique<Histogram>()});
  histograms_.back().hist->Merge(samples);
}

Histogram MetricsRegistry::GetHistogramSnapshot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : histograms_) {
    if (entry.name == name) return *entry.hist;
  }
  return Histogram();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : counters_) entry.counter->Reset();
  for (auto& entry : gauges_) entry.gauge->Reset();
  for (auto& entry : histograms_) entry.hist->Reset();
}

size_t MetricsRegistry::NumInstruments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(1024);

  // One HELP + TYPE pair per family, immediately before its samples, every
  // family's label combinations contiguous — the structure strict
  // exposition-format parsers require.
  const auto emit_header = [&](std::string* last_family,
                               const std::string& family, const char* type) {
    if (*last_family == family) return;
    *last_family = family;
    const auto it = help_.find(family);
    out.append("# HELP ").append(family).push_back(' ');
    AppendHelpEscaped(&out, it != help_.end() ? it->second : family);
    out.push_back('\n');
    out.append("# TYPE ").append(family).push_back(' ');
    out.append(type).push_back('\n');
  };

  std::string last_family;
  for (size_t i : SortedIndexByFamily(counters_)) {
    const auto& entry = counters_[i];
    emit_header(&last_family, FamilyOf(entry.name), "counter");
    out.append(entry.name)
        .append(" ")
        .append(std::to_string(entry.counter->Value()))
        .append("\n");
  }
  last_family.clear();
  for (size_t i : SortedIndexByFamily(gauges_)) {
    const auto& entry = gauges_[i];
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", entry.gauge->Value());
    emit_header(&last_family, FamilyOf(entry.name), "gauge");
    out.append(entry.name).append(" ").append(buf).append("\n");
  }
  last_family.clear();
  for (size_t i : SortedIndexByFamily(histograms_)) {
    const auto& entry = histograms_[i];
    const Histogram& h = *entry.hist;
    const std::string family = FamilyOf(entry.name);
    const std::string labels = LabelBlockOf(entry.name);
    // "name_bucket{<labels,>le=...}": splice le into an existing label
    // block, or open a fresh one for unlabeled histograms.
    const std::string bucket_prefix =
        labels.empty()
            ? family + "_bucket{le=\""
            : family + "_bucket" + labels.substr(0, labels.size() - 1) +
                  ",le=\"";
    emit_header(&last_family, family, "histogram");
    uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      cumulative += h.bucket(b);
      // Skip interior empty buckets to keep the exposition small, but always
      // emit a bucket that carries count (cumulative growth) and the first.
      if (b != 0 && h.bucket(b) == 0 && b != Histogram::kNumBuckets - 1) {
        continue;
      }
      out.append(bucket_prefix)
          .append(b == Histogram::kNumBuckets - 1
                      ? std::string("+Inf")
                      : std::to_string(Histogram::BucketUpperEdge(b)))
          .append("\"} ")
          .append(std::to_string(cumulative))
          .append("\n");
    }
    out.append(family)
        .append("_sum")
        .append(labels)
        .append(" ")
        .append(std::to_string(h.sum_ticks()))
        .append("\n");
    out.append(family)
        .append("_count")
        .append(labels)
        .append(" ")
        .append(std::to_string(h.count()))
        .append("\n");
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(1024);
  out.append("{\n\"counters\": {");
  {
    bool first = true;
    for (size_t i : SortedIndexByName(counters_)) {
      const auto& entry = counters_[i];
      if (!first) out.push_back(',');
      first = false;
      out.append("\n  \"");
      AppendJsonEscaped(&out, entry.name);
      out.append("\": ").append(std::to_string(entry.counter->Value()));
    }
    out.append(first ? "}" : "\n}");
  }
  out.append(",\n\"gauges\": {");
  {
    bool first = true;
    for (size_t i : SortedIndexByName(gauges_)) {
      const auto& entry = gauges_[i];
      if (!first) out.push_back(',');
      first = false;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", entry.gauge->Value());
      out.append("\n  \"");
      AppendJsonEscaped(&out, entry.name);
      out.append("\": ").append(buf);
    }
    out.append(first ? "}" : "\n}");
  }
  out.append(",\n\"histograms\": {");
  {
    bool first = true;
    for (size_t i : SortedIndexByName(histograms_)) {
      const auto& entry = histograms_[i];
      const Histogram& h = *entry.hist;
      if (!first) out.push_back(',');
      first = false;
      out.append("\n  \"");
      AppendJsonEscaped(&out, entry.name);
      out.append("\": {\"count\": ").append(std::to_string(h.count()));
      out.append(", \"sum_ns\": ").append(std::to_string(h.sum_ticks()));
      out.append(", \"max_ns\": ").append(std::to_string(h.max_ticks()));
      out.append(", \"p50_ns\": ")
          .append(std::to_string(h.QuantileUpperBound(0.50)));
      out.append(", \"p95_ns\": ")
          .append(std::to_string(h.QuantileUpperBound(0.95)));
      out.append(", \"p99_ns\": ")
          .append(std::to_string(h.QuantileUpperBound(0.99)));
      out.append(", \"buckets\": [");
      bool first_bucket = true;
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        if (h.bucket(b) == 0) continue;
        if (!first_bucket) out.append(", ");
        first_bucket = false;
        out.append("[")
            .append(std::to_string(Histogram::BucketUpperEdge(b)))
            .append(", ")
            .append(std::to_string(h.bucket(b)))
            .append("]");
      }
      out.append("]}");
    }
    out.append(first ? "}" : "\n}");
  }
  out.append("\n}\n");
  return out;
}

}  // namespace obs
}  // namespace pimine
