#ifndef PIMINE_OBS_TIMESERIES_H_
#define PIMINE_OBS_TIMESERIES_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace pimine {
namespace obs {

/// Knobs of one rolling time-series plane. Window width and count bound the
/// retained state exactly: memory is O(series * num_windows), independent of
/// run length — the property that makes the plane safe under continuous
/// serving traffic.
struct TimeSeriesOptions {
  /// Width of one rolling window in clock nanoseconds (virtual ns in
  /// replay, steady-clock ns in live mode).
  uint64_t window_ns = 1'000'000;
  /// Windows retained in the ring. Samples older than
  /// num_windows * window_ns behind the newest seen timestamp are counted
  /// in dropped_late() instead of silently vanishing.
  size_t num_windows = 64;
  /// Two-window SLO burn-rate spans: the short window reacts fast, the
  /// long window filters noise (both must trip for a page-worthy burn).
  size_t slo_short_windows = 2;
  size_t slo_long_windows = 16;
  /// Error budget: the tolerated bad/total fraction. Burn rate 1.0 means
  /// the budget is being consumed exactly at the sustainable pace.
  double slo_budget = 0.001;
};

/// Rolling fixed-width time series over counter deltas and histogram
/// merges. All window state is integer (counts, histogram buckets), and
/// recording is element-wise integer addition into the window a timestamp
/// falls in — so the retained state is a pure function of the (timestamp,
/// delta) multiset, independent of feeding order or thread interleaving,
/// the same exact-merge discipline as obs::Histogram. Fed from
/// PimServer::Replay's deterministic accounting pass, ToJson() is
/// byte-identical across scheduler_threads and shard counts.
///
/// All methods are internally synchronized (one mutex): live mode feeds
/// from scheduler workers while the exposition server snapshots.
class TimeSeries {
 public:
  explicit TimeSeries(const TimeSeriesOptions& options = TimeSeriesOptions());

  /// Adds `delta` to counter series `name` in the window containing
  /// `t_ns`. Series are created on first touch.
  void Count(const std::string& name, uint64_t t_ns, uint64_t delta = 1);

  /// Records `value_ns` into histogram series `name` in the window
  /// containing `t_ns` (per-window quantile bounds come from these).
  void Observe(const std::string& name, uint64_t t_ns, double value_ns);

  /// Names the counter pair driving the SLO burn rate: `bad_name` counts
  /// budget-consuming events (e.g. deadline misses), `total_name` the
  /// eligible population (e.g. served queries).
  void SetSlo(const std::string& bad_name, const std::string& total_name);

  // --- Windowed reads ---------------------------------------------------

  uint64_t WindowIndexFor(uint64_t t_ns) const;
  /// Newest window index that has seen a sample (0 before any sample).
  uint64_t newest_window() const;
  /// Oldest window index still retained by the ring.
  uint64_t oldest_window() const;
  /// Samples discarded for falling behind the retention horizon.
  uint64_t dropped_late() const;

  /// Counter total inside window `w` (0 for unknown series / evicted w).
  uint64_t CounterInWindow(const std::string& name, uint64_t w) const;
  /// Windowed rate: CounterInWindow / window seconds.
  double RatePerSec(const std::string& name, uint64_t w) const;
  /// Histogram snapshot of window `w` (empty for unknown / evicted).
  Histogram HistogramInWindow(const std::string& name, uint64_t w) const;

  /// Two-window SLO burn rates over the trailing short/long spans ending
  /// at the newest window: (bad / total) / budget, 0 when total is 0.
  struct BurnRate {
    double short_burn = 0.0;
    double long_burn = 0.0;
  };
  BurnRate SloBurn() const;

  const TimeSeriesOptions& options() const { return options_; }

  /// Deterministic JSON document ("pimine.obs.timeseries.v1"): sorted
  /// series names, sparse per-window points (counter: [w, count,
  /// rate_per_s]; histogram: [w, count, sum, max, p50, p99]), retention
  /// header, and the SLO burn-rate block. Byte-identical for identical
  /// recorded state.
  std::string ToJson() const;

 private:
  struct Series {
    std::string name;
    bool is_histogram = false;
    std::vector<uint64_t> counts;    // ring, size num_windows.
    std::vector<Histogram> hists;    // ring (histogram series only).
  };

  /// Rolls the ring forward so `w` is retained; clears re-used slots.
  /// Returns false when `w` is behind the retention horizon.
  bool AdvanceTo(uint64_t w);
  Series& GetSeries(const std::string& name, bool is_histogram);
  const Series* FindSeries(const std::string& name) const;
  bool Retained(uint64_t w) const;
  /// Sum of counter `name` over the trailing `span` windows.
  uint64_t TrailingSum(const Series* s, size_t span) const;

  TimeSeriesOptions options_;
  mutable std::mutex mu_;
  std::vector<Series> series_;
  std::string slo_bad_;
  std::string slo_total_;
  bool any_sample_ = false;
  uint64_t newest_ = 0;  // newest window index seen.
  uint64_t dropped_late_ = 0;
};

}  // namespace obs
}  // namespace pimine

#endif  // PIMINE_OBS_TIMESERIES_H_
