#ifndef PIMINE_OBS_HISTOGRAM_H_
#define PIMINE_OBS_HISTOGRAM_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace pimine {
namespace obs {

/// Log-bucketed latency histogram over the deterministic modeled-time
/// domain (nanoseconds). Designed for *exact* cross-thread merging: samples
/// are converted to integer nanosecond ticks, buckets/sum/max are plain
/// integers, and Merge is element-wise integer addition (plus max) — so any
/// partition of the same sample multiset merges to bit-identical state,
/// regardless of thread count, merge order, or associativity.
///
/// Buckets are powers of two: bucket 0 holds the value 0; bucket i
/// (1 <= i <= 63) holds ticks in [2^(i-1), 2^i). Quantiles are reported as
/// the inclusive upper edge (2^i - 1) of the bucket containing the target
/// rank — an upper bound on the exact order statistic that is never below
/// the bucket's lower edge (tested in trace_metrics_test).
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  /// Samples are clamped into [0, kMaxTicks] before bucketing so llround
  /// stays defined and bucket 63 is the largest bucket ever used.
  static constexpr uint64_t kMaxTicks = 1ULL << 62;

  /// Records one sample (modeled nanoseconds; negatives clamp to 0).
  void Record(double ns);

  /// Element-wise integer merge; exact for any partition/order of samples.
  void Merge(const Histogram& other);

  void Reset();

  uint64_t count() const { return count_; }
  /// Sum of the recorded integer ticks (exact; merge-invariant).
  uint64_t sum_ticks() const { return sum_; }
  uint64_t max_ticks() const { return max_; }
  uint64_t bucket(int index) const { return counts_[index]; }

  /// Inclusive upper edge of bucket `index` in ticks (0 for bucket 0).
  static uint64_t BucketUpperEdge(int index);
  /// Bucket index a value of `ticks` falls into.
  static int BucketIndex(uint64_t ticks);

  /// Upper bound on the q-quantile (0 < q <= 1): the upper edge of the
  /// bucket containing rank ceil(q * count); q >= 1 returns the exact max.
  /// Returns 0 when empty.
  uint64_t QuantileUpperBound(double q) const;

  bool operator==(const Histogram& other) const;

  /// "count=12 p50<=1023 p95<=4095 p99<=4095 max=3201" (exact integers; used
  /// by the determinism test for byte comparison).
  std::string Summary() const;

  /// Exact state snapshot as one JSON object: integer count/sum/max plus
  /// sparse [bucket_index, count] pairs. FromJson(ToJson()) == *this, bit
  /// for bit — the serialization the timeseries plane persists.
  std::string ToJson() const;
  /// Parses a ToJson() document. Fails with InvalidArgument on anything
  /// malformed (missing keys, bucket index out of range, trailing junk in
  /// a number).
  static Result<Histogram> FromJson(const std::string& json);

 private:
  uint64_t counts_[kNumBuckets] = {0};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace obs
}  // namespace pimine

#endif  // PIMINE_OBS_HISTOGRAM_H_
