#ifndef PIMINE_OBS_EVENT_LOG_H_
#define PIMINE_OBS_EVENT_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

namespace pimine {
namespace obs {

/// One structured serving record (one JSONL line): per-query by default,
/// or a replica-failover recovery record (kind == kFailover).
struct QueryEvent {
  enum class Kind { kQuery, kFailover };
  Kind kind = Kind::kQuery;
  uint64_t query_id = 0;
  uint32_t tenant = 0;
  uint64_t arrival_ns = 0;
  uint64_t dispatch_ns = 0;
  uint64_t completion_ns = 0;
  uint64_t batch_id = 0;
  bool deadline_missed = false;
  /// Status short name ("OK", "CAPACITY_EXCEEDED", ...).
  std::string status = "OK";
  /// Failover-record fields (kind == kFailover): the shard whose ladder
  /// fired, the replica that finally served it (replica count = shed
  /// off-device), the failed attempts walked past, and the seeded backoff
  /// spent between attempts.
  int32_t shard = -1;
  int32_t replica = 0;
  int32_t failed_attempts = 0;
  bool shed = false;
  uint64_t backoff_ns = 0;
};

/// Knobs of the sampled audit stream.
struct EventLogOptions {
  /// Fraction of query ids kept, in [0, 1]. 0 disables the log entirely.
  double sample_rate = 0.0;
  /// Salt of the hash-based sampling decision (see Sampled()).
  uint64_t seed = 0;
  /// Retained events: a bounded ring — the newest `capacity` sampled
  /// events survive, older ones are counted in dropped().
  size_t capacity = 4096;
};

/// Bounded, replayable audit stream of per-query serving events.
///
/// Sampling is a pure hash of (seed, query_id) — NOT an RNG draw — so the
/// kept id set is a function of the trace alone: replaying the same trace
/// samples the same queries regardless of thread count, shard count, or
/// how many other streams observed the run. High-traffic serving keeps a
/// bounded ring; determinism of *which* queries appear is what makes the
/// stream auditable after the fact.
///
/// Internally synchronized; Append is called from scheduler workers in
/// live mode and from the deterministic accounting pass in replay.
class EventLog {
 public:
  explicit EventLog(const EventLogOptions& options = EventLogOptions());

  /// The deterministic sampling decision: SplitMix64-mixed (seed,
  /// query_id) compared against rate scaled to the hash range. rate >= 1
  /// keeps everything, rate <= 0 nothing.
  static bool Sampled(uint64_t seed, uint64_t query_id, double rate);

  bool enabled() const { return options_.sample_rate > 0.0; }
  /// Convenience: this log's decision for `query_id`.
  bool WouldSample(uint64_t query_id) const {
    return Sampled(options_.seed, query_id, options_.sample_rate);
  }

  /// Records `event` iff its query id passes the sampling hash.
  void Append(const QueryEvent& event);

  /// Records `event` unconditionally (the log must still be enabled by a
  /// positive sample rate). Recovery records use this: a failover is rare
  /// and operationally load-bearing, so it is never sampled away.
  void AppendAlways(const QueryEvent& event);

  /// Sampled events currently retained / total sampled / evicted by the
  /// capacity bound.
  size_t size() const;
  uint64_t sampled_total() const;
  uint64_t dropped() const;

  void Reset();

  /// JSON-Lines export, one object per retained event in append order.
  /// Deterministic for identical retained events.
  std::string ToJsonl() const;

  const EventLogOptions& options() const { return options_; }

 private:
  EventLogOptions options_;
  mutable std::mutex mu_;
  std::deque<QueryEvent> events_;
  uint64_t sampled_total_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace obs
}  // namespace pimine

#endif  // PIMINE_OBS_EVENT_LOG_H_
