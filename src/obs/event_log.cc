#include "obs/event_log.h"

namespace pimine {
namespace obs {
namespace {

/// Stateless SplitMix64 finalizer — the same mixer the fault model and
/// shard placement use for seeded, platform-independent decisions.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out->push_back(' ');  // control characters never survive a JSONL line.
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

EventLog::EventLog(const EventLogOptions& options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
}

bool EventLog::Sampled(uint64_t seed, uint64_t query_id, double rate) {
  if (rate >= 1.0) return true;
  if (!(rate > 0.0)) return false;  // also rejects NaN.
  // Threshold in the full 64-bit hash range: keep iff hash < rate * 2^64.
  // rate < 1 keeps the product below 2^64, so the cast is exact enough for
  // a sampling knob and, critically, deterministic.
  const uint64_t threshold =
      static_cast<uint64_t>(rate * 18446744073709551616.0 /* 2^64 */);
  return Mix64(seed ^ (query_id * 0xd1342543de82ef95ULL)) < threshold;
}

void EventLog::Append(const QueryEvent& event) {
  if (!WouldSample(event.query_id)) return;
  AppendAlways(event);
}

void EventLog::AppendAlways(const QueryEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ++sampled_total_;
  events_.push_back(event);
  while (events_.size() > options_.capacity) {
    events_.pop_front();
    ++dropped_;
  }
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t EventLog::sampled_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_total_;
}

uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void EventLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  sampled_total_ = 0;
  dropped_ = 0;
}

std::string EventLog::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(events_.size() * 160);
  for (const QueryEvent& e : events_) {
    if (e.kind == QueryEvent::Kind::kFailover) {
      // Recovery record: own shape, keyed by the dispatch it fired in.
      // Query lines below keep their exact pre-failover byte layout.
      out.append("{\"kind\": \"failover\", \"batch_id\": ")
          .append(std::to_string(e.batch_id));
      out.append(", \"dispatch_ns\": ").append(std::to_string(e.dispatch_ns));
      out.append(", \"shard\": ").append(std::to_string(e.shard));
      out.append(", \"replica\": ").append(std::to_string(e.replica));
      out.append(", \"failed_attempts\": ")
          .append(std::to_string(e.failed_attempts));
      out.append(", \"shed\": ").append(e.shed ? "true" : "false");
      out.append(", \"backoff_ns\": ").append(std::to_string(e.backoff_ns));
      out.append(", \"status\": \"");
      AppendEscaped(&out, e.status);
      out.append("\"}\n");
      continue;
    }
    out.append("{\"query_id\": ").append(std::to_string(e.query_id));
    out.append(", \"tenant\": ").append(std::to_string(e.tenant));
    out.append(", \"arrival_ns\": ").append(std::to_string(e.arrival_ns));
    out.append(", \"dispatch_ns\": ").append(std::to_string(e.dispatch_ns));
    out.append(", \"completion_ns\": ")
        .append(std::to_string(e.completion_ns));
    out.append(", \"batch_id\": ").append(std::to_string(e.batch_id));
    out.append(", \"wait_ns\": ")
        .append(std::to_string(e.dispatch_ns >= e.arrival_ns
                                   ? e.dispatch_ns - e.arrival_ns
                                   : 0));
    out.append(", \"latency_ns\": ")
        .append(std::to_string(e.completion_ns >= e.arrival_ns
                                   ? e.completion_ns - e.arrival_ns
                                   : 0));
    out.append(", \"deadline_missed\": ")
        .append(e.deadline_missed ? "true" : "false");
    out.append(", \"status\": \"");
    AppendEscaped(&out, e.status);
    out.append("\"}\n");
  }
  return out;
}

}  // namespace obs
}  // namespace pimine
