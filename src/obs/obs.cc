#include "obs/obs.h"

#include <memory>
#include <mutex>

namespace pimine {
namespace obs {
namespace {

/// Owns the enabled session. Guarded by g_lifecycle_mu; the published
/// pointer in Obs::instance_ is what the fast path reads.
std::mutex g_lifecycle_mu;
std::unique_ptr<Obs> g_storage;  // NOLINT: intentional process-lifetime state.

thread_local int64_t tls_track_base = kNoTrackBase;

}  // namespace

std::atomic<Obs*> Obs::instance_{nullptr};

Obs::Obs(const ObsOptions& options)
    : model_(options.host_model), trace_(options.trace) {}

void Obs::Enable(const ObsOptions& options) {
  std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  instance_.store(nullptr, std::memory_order_release);
  g_storage.reset(new Obs(options));
  instance_.store(g_storage.get(), std::memory_order_release);
}

void Obs::Disable() {
  std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  instance_.store(nullptr, std::memory_order_release);
  g_storage.reset();
}

int64_t CurrentTrackBase() { return tls_track_base; }

ScopedTrackBase::ScopedTrackBase(int64_t base) : prev_(tls_track_base) {
  tls_track_base = base;
}

ScopedTrackBase::~ScopedTrackBase() { tls_track_base = prev_; }

TraceSpan::TraceSpan(const char* cat, const char* name, int64_t track)
    : obs_(Obs::Get()), cat_(cat), name_(name), track_(track) {
  if (obs_ == nullptr) return;
  start_ = traffic::Local();
  obs_->trace().Begin(cat_, name_, track_);
}

TraceSpan::~TraceSpan() {
  if (obs_ == nullptr) return;
  const TrafficCounters delta = traffic::Local() - start_;
  obs_->trace().End(cat_, name_, track_, obs_->HostNs(delta));
}

QuerySpan::QuerySpan(int64_t query_id, Histogram* latency, double extra_ns)
    : obs_(Obs::Get()),
      query_id_(query_id),
      latency_(latency),
      extra_ns_(extra_ns) {
  if (obs_ == nullptr) return;
  start_ = traffic::Local();
  obs_->trace().Begin("query", "query", query_id_);
}

QuerySpan::~QuerySpan() {
  if (obs_ == nullptr) return;
  const TrafficCounters delta = traffic::Local() - start_;
  const double ns = obs_->HostNs(delta) + extra_ns_;
  obs_->trace().End("query", "query", query_id_, ns, "query_id", query_id_);
  if (latency_ != nullptr) latency_->Record(ns);
}

AggregateSpan::AggregateSpan(const char* cat, const char* name, int64_t track)
    : obs_(Obs::Get()), cat_(cat), name_(name), track_(track) {
  if (obs_ == nullptr) return;
  start_ = traffic::GlobalSnapshot();
  obs_->trace().Begin(cat_, name_, track_);
}

AggregateSpan::~AggregateSpan() {
  if (obs_ == nullptr) return;
  const TrafficCounters delta = traffic::GlobalSnapshot() - start_;
  const double ns = obs_->HostNs(delta) + extra_ns_;
  obs_->trace().End(cat_, name_, track_, ns);
  if (hist_ != nullptr) hist_->Record(ns);
}

SchedSpan::SchedSpan(int64_t chunk_index, int64_t begin, int64_t end)
    : obs_(Obs::Get()), chunk_index_(chunk_index), begin_(begin), end_(end) {
  if (obs_ != nullptr && !obs_->trace().options().sched_events) obs_ = nullptr;
  if (obs_ == nullptr) return;
  start_ = traffic::Local();
  obs_->trace().Begin("sched", "chunk", kSchedTrackBase - chunk_index_);
}

SchedSpan::~SchedSpan() {
  if (obs_ == nullptr) return;
  const TrafficCounters delta = traffic::Local() - start_;
  obs_->trace().End("sched", "chunk", kSchedTrackBase - chunk_index_,
                    obs_->HostNs(delta), "begin", begin_, "end", end_);
}

}  // namespace obs
}  // namespace pimine
