#ifndef PIMINE_OBS_TRACE_H_
#define PIMINE_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/timer.h"

namespace pimine {
namespace obs {

/// Well-known track ids. Per-query spans use the (non-negative) query index
/// as their track; run-level spans (k-means iterations, offline phases) use
/// kRunTrack; opt-in scheduling spans use kSchedTrackBase - slot.
constexpr int64_t kRunTrack = -1;
/// Opt-in physical device-op spans (TraceOptions::device_events).
constexpr int64_t kDeviceTrack = -2;
constexpr int64_t kSchedTrackBase = -1000;

/// One begin/end/complete record in a per-thread buffer. `cat` and `name`
/// must be string literals (the recorder stores the pointers, not copies).
struct TraceEvent {
  char phase = 'X';  // 'B' (begin), 'E' (end), or 'X' (complete).
  const char* cat = nullptr;
  const char* name = nullptr;
  int64_t track = kRunTrack;
  /// Span duration in the deterministic modeled-time domain ('E'/'X' only).
  double modeled_ns = 0.0;
  /// Optional secondary wall-clock stamp (ns since recorder creation);
  /// negative when wall capture is off. Wall stamps are *not* deterministic
  /// and are only recorded when TraceOptions::wall_clock is set.
  double wall_ns = -1.0;
  // Up to two integer args, exported under args{} in the chrome JSON.
  const char* arg_name0 = nullptr;
  int64_t arg0 = 0;
  const char* arg_name1 = nullptr;
  int64_t arg1 = 0;
};

/// Recording options. The defaults keep the trace bit-reproducible across
/// thread counts and device-batch sizes: only serial-equivalent spans in
/// the modeled-time domain are recorded. The opt-in knobs add *physical*
/// structure (wall stamps, actual device batches, worker scheduling) whose
/// shape legitimately depends on the execution configuration.
struct TraceOptions {
  bool wall_clock = false;   // secondary wall_ns field on every event.
  bool device_events = false;  // physical PimDevice op spans (per batch).
  bool sched_events = false;   // thread-pool worker chunk spans.
};

/// Span recorder with per-thread buffers: each thread appends to its own
/// buffer without synchronization (registration takes the registry mutex
/// once per thread per recorder). Export requires external quiescence —
/// call ToChromeJson() only after all instrumented work has drained (the
/// ParallelChunks handshake provides the happens-before edge), the same
/// discipline as traffic::GlobalSnapshot().
class TraceRecorder {
 public:
  explicit TraceRecorder(const TraceOptions& options);

  void Begin(const char* cat, const char* name, int64_t track);
  void End(const char* cat, const char* name, int64_t track,
           double modeled_ns, const char* arg_name0 = nullptr,
           int64_t arg0 = 0, const char* arg_name1 = nullptr,
           int64_t arg1 = 0);
  void Complete(const char* cat, const char* name, int64_t track,
                double modeled_ns, const char* arg_name0 = nullptr,
                int64_t arg0 = 0, const char* arg_name1 = nullptr,
                int64_t arg1 = 0);

  /// Spans opened but not yet closed, summed over all thread buffers (the
  /// balance invariant: 0 whenever no span is in flight).
  int64_t OpenSpans() const;
  /// Total events recorded across all thread buffers.
  size_t NumEvents() const;

  /// chrome://tracing JSON (trace-event format). Timestamps are assembled
  /// deterministically from the modeled-ns durations: events are grouped by
  /// track, tracks sorted ascending, and each track's timeline replayed
  /// from 0 with children nested inside their parent span. Byte-identical
  /// output for identical recorded spans, independent of which thread
  /// recorded what.
  std::string ToChromeJson() const;

  const TraceOptions& options() const { return options_; }

 private:
  struct ThreadBuffer {
    std::vector<TraceEvent> events;
    int64_t open = 0;
  };

  ThreadBuffer& LocalBuffer();
  void Emit(const TraceEvent& event);

  TraceOptions options_;
  uint64_t generation_;
  Timer wall_;
  mutable std::mutex mu_;  // guards buffers_ registration; not the hot path.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

}  // namespace obs
}  // namespace pimine

#endif  // PIMINE_OBS_TRACE_H_
