#ifndef PIMINE_OBS_EXPOSITION_SERVER_H_
#define PIMINE_OBS_EXPOSITION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pimine {
namespace obs {

/// One read-only HTTP route: GET `path` returns handler() as the body with
/// the given Content-Type. Handlers run on the server's accept thread and
/// must be safe to call concurrently with the serving workload (snapshot
/// semantics — they read, never mutate).
struct HttpRoute {
  std::string path;
  std::string content_type = "text/plain; charset=utf-8";
  std::function<std::string()> handler;
};

/// Minimal embedded HTTP/1.0 exposition endpoint (POSIX sockets): serves
/// GET requests for a fixed route table — /metrics, /healthz,
/// /timeseries.json in the serving CLI — and nothing else (no keep-alive,
/// no POST, no TLS). Binds 127.0.0.1 only: this is a local observability
/// tap, not a public API surface.
///
/// The endpoint lives entirely on the wall-clock side of the determinism
/// boundary: handlers take snapshots of telemetry state, and no replayed
/// or modeled quantity ever depends on whether, when, or how often the
/// endpoint was scraped (DESIGN.md section 11).
class ExpositionServer {
 public:
  /// Binds and starts the accept loop. `port` 0 picks an ephemeral port
  /// (see port()). Fails with IOError when the bind/listen fails (e.g.
  /// port in use).
  static Result<std::unique_ptr<ExpositionServer>> Start(
      int port, std::vector<HttpRoute> routes);

  ~ExpositionServer();

  /// The actually bound port (resolves port 0 requests).
  int port() const { return port_; }

  /// Requests answered so far (any status).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Stops the accept loop and joins the thread. Idempotent.
  void Stop();

 private:
  ExpositionServer() = default;
  void Loop();
  void HandleConnection(int fd);

  std::vector<HttpRoute> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace pimine

#endif  // PIMINE_OBS_EXPOSITION_SERVER_H_
