#ifndef PIMINE_KMEANS_DRAKE_H_
#define PIMINE_KMEANS_DRAKE_H_

#include "kmeans/kmeans_common.h"

namespace pimine {

/// Drake & Hamerly (NIPS OPT'12): keeps lower bounds only for the b
/// closest centers per point (b = k/4 here) plus one catch-all bound for
/// the rest — less bound-maintenance than Elkan, more exact distances.
/// Produces exactly Lloyd's trajectory.
class DrakeKmeans : public KmeansAlgorithm {
 public:
  /// b = max(2, k / bound_divisor).
  explicit DrakeKmeans(int bound_divisor = 4);

  std::string_view name() const override { return "Drake"; }
  Result<KmeansResult> Run(const FloatMatrix& data,
                           const KmeansOptions& options) override;

 private:
  int bound_divisor_;
};

}  // namespace pimine

#endif  // PIMINE_KMEANS_DRAKE_H_
