#include "kmeans/elkan.h"

#include <algorithm>
#include <cmath>

#include "kmeans/lloyd.h"
#include "obs/obs.h"
#include "sim/traffic.h"
#include "util/timer.h"

namespace pimine {

Result<KmeansResult> ElkanKmeans::Run(const FloatMatrix& data,
                                      const KmeansOptions& options) {
  PIMINE_RETURN_IF_ERROR(ValidateKmeansInput(data, options));

  std::unique_ptr<PimAssignFilter> owned_filter;
  PimAssignFilter* filter = options.filter;
  if (options.use_pim && filter == nullptr) {
    PIMINE_ASSIGN_OR_RETURN(owned_filter,
                            PimAssignFilter::Build(data, options.engine_options));
    filter = owned_filter.get();
  }
  if (filter != nullptr) filter->set_fanout_policy(options.exec);

  KmeansResult result;
  result.centers = InitCenters(data, options.k, options.seed);
  const size_t n = data.rows();
  const size_t k = static_cast<size_t>(options.k);
  result.assignments.assign(n, 0);
  result.stats.footprint_bytes =
      n * k * sizeof(double) + data.SizeBytes() / 8;

  std::vector<double> upper(n, 0.0);
  std::vector<uint8_t> upper_stale(n, 0);  // not vector<bool>: workers write
                                           // distinct entries concurrently.
  std::vector<double> lower(n * k, 0.0);
  std::vector<double> cc(k * k, 0.0);       // center-center distances.
  std::vector<double> nearest_other(k, 0.0);  // s(j) = 0.5 min_{j'} cc.
  std::vector<double> moved(k, 0.0);

  traffic::AggregateScope traffic_scope;
  Timer total_wall;
  bool initialized = false;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Timer iter_wall;
    size_t changed = 0;
    const double pim_ns_before =
        filter != nullptr ? filter->PimComputeNs() : 0.0;
    obs::AggregateSpan iter_span("kmeans", "iteration");
    iter_span.set_histogram(&result.stats.latency_hist);

    if (filter != nullptr) {
      ScopedFunctionTimer timer(&result.stats.profile, "LB_PIM");
      PIMINE_RETURN_IF_ERROR(filter->BeginIteration(
          result.centers, std::max<size_t>(1, options.exec.device_batch)));
    }

    if (!initialized) {
      // First assign pass fills every bound exactly (Lloyd-equivalent).
      changed = RunAssignWithPolicy(
          options.exec, n, &result.stats,
          [&](size_t i, size_t /*slot_index*/, AssignSlot& slot) {
            const auto p = data.row(i);
            size_t best_c = 0;
            double best_d = HUGE_VAL;
            for (size_t c = 0; c < k; ++c) {
              double d;
              if (filter != nullptr && filter->LowerBound(i, c) >= best_d) {
                ++slot.bound_count;
                d = filter->LowerBound(i, c);  // valid lower bound kept in lb.
              } else {
                ScopedFunctionTimer timer(&slot.profile, "ED");
                d = KmeansExactDistance(p, result.centers.row(c));
                ++slot.exact_count;
                if (d < best_d) {
                  best_d = d;
                  best_c = c;
                }
              }
              lower[i * k + c] = d;
            }
            result.assignments[i] = static_cast<int32_t>(best_c);
            upper[i] = best_d;
            upper_stale[i] = 0;
            ++slot.changed;
          });
      initialized = true;
    } else {
      // Center-center distances and s(j).
      {
        ScopedFunctionTimer timer(&result.stats.profile, "ED");
        for (size_t a = 0; a < k; ++a) {
          for (size_t b = a + 1; b < k; ++b) {
            const double d = KmeansExactDistance(result.centers.row(a),
                                                 result.centers.row(b));
            cc[a * k + b] = d;
            cc[b * k + a] = d;
          }
        }
        result.stats.exact_count += k * (k - 1) / 2;
        for (size_t a = 0; a < k; ++a) {
          double m = HUGE_VAL;
          for (size_t b = 0; b < k; ++b) {
            if (b != a) m = std::min(m, cc[a * k + b]);
          }
          nearest_other[a] = 0.5 * m;
        }
      }

      changed = RunAssignWithPolicy(
          options.exec, n, &result.stats,
          [&](size_t i, size_t /*slot_index*/, AssignSlot& slot) {
            const size_t a = result.assignments[i];
            if (upper[i] <= nearest_other[a]) return;
            const auto p = data.row(i);
            size_t best_c = a;  // current best center; cc-tests must use it.
            double best_d = upper[i];
            bool tightened = upper_stale[i] == 0;
            for (size_t c = 0; c < k; ++c) {
              if (c == best_c) continue;
              if (lower[i * k + c] >= best_d) continue;
              if (0.5 * cc[best_c * k + c] >= best_d) continue;
              if (!tightened) {
                ScopedFunctionTimer timer(&slot.profile, "ED");
                best_d = KmeansExactDistance(p, result.centers.row(a));
                ++slot.exact_count;
                lower[i * k + a] = best_d;
                upper[i] = best_d;
                upper_stale[i] = 0;
                tightened = true;
                if (lower[i * k + c] >= best_d) continue;
                if (0.5 * cc[best_c * k + c] >= best_d) continue;
              }
              if (filter != nullptr) {
                ++slot.bound_count;
                const double pim_lb = filter->LowerBound(i, c);
                if (pim_lb >= best_d) {
                  lower[i * k + c] = std::max(lower[i * k + c], pim_lb);
                  continue;
                }
              }
              ScopedFunctionTimer timer(&slot.profile, "ED");
              const double d = KmeansExactDistance(p, result.centers.row(c));
              ++slot.exact_count;
              lower[i * k + c] = d;
              if (d < best_d) {
                best_d = d;
                best_c = c;
              }
            }
            if (best_c != a) {
              result.assignments[i] = static_cast<int32_t>(best_c);
              upper[i] = best_d;
              upper_stale[i] = 0;
              ++slot.changed;
            }
          });
    }

    // Update step + bound maintenance.
    {
      ScopedFunctionTimer timer(&result.stats.profile, "update");
      result.centers =
          UpdateCenters(data, result.assignments, result.centers, &moved,
                        filter);
    }
    {
      ScopedFunctionTimer timer(&result.stats.profile, "bound update");
      for (size_t i = 0; i < n; ++i) {
        double* lb = lower.data() + i * k;
        for (size_t c = 0; c < k; ++c) {
          lb[c] = std::max(0.0, lb[c] - moved[c]);
        }
        upper[i] += moved[result.assignments[i]];
        upper_stale[i] = 1;
      }
      traffic::CountRead(n * k * sizeof(double));
      traffic::CountWrite(n * k * sizeof(double));
      traffic::CountArithmetic(n * k * 2);
    }

    if (filter != nullptr) {
      iter_span.AddModeledNs(filter->PimComputeNs() - pim_ns_before);
    }
    obs::AddCounter("pimine_kmeans_iterations_total", 1);
    result.iteration_wall_ms.push_back(iter_wall.ElapsedMillis());
    ++result.iterations;
    if (changed == 0 && iter > 0) break;
  }

  result.inertia = ComputeInertia(data, result.centers, result.assignments);
  result.stats.wall_ms = total_wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  if (filter != nullptr) result.stats.pim_ns = filter->PimComputeNs();
  if (filter != nullptr) result.stats.fault = filter->FaultStatsTotal();
  if (filter != nullptr) result.stats.fleet = filter->FleetStats();
  PublishKmeansRunMetrics(result.stats);
  return result;
}

}  // namespace pimine
