#ifndef PIMINE_KMEANS_YINYANG_H_
#define PIMINE_KMEANS_YINYANG_H_

#include "kmeans/kmeans_common.h"

namespace pimine {

/// Yinyang (Ding et al., ICML'15): global + group filtering. Centers are
/// clustered into t = max(1, k/10) groups once at start; each point keeps
/// one upper bound and t group lower bounds. Cheaper bound maintenance than
/// Elkan (N*t instead of N*k), at the price of more exact distances on
/// high-dimensional data — the regime where Yinyang-PIM shines (§VI-D,
/// up to 4.9x). Produces exactly Lloyd's trajectory.
class YinyangKmeans : public KmeansAlgorithm {
 public:
  /// t = max(1, k / group_divisor).
  explicit YinyangKmeans(int group_divisor = 10);

  std::string_view name() const override { return "Yinyang"; }
  Result<KmeansResult> Run(const FloatMatrix& data,
                           const KmeansOptions& options) override;

 private:
  int group_divisor_;
};

}  // namespace pimine

#endif  // PIMINE_KMEANS_YINYANG_H_
