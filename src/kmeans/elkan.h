#ifndef PIMINE_KMEANS_ELKAN_H_
#define PIMINE_KMEANS_ELKAN_H_

#include "kmeans/kmeans_common.h"

namespace pimine {

/// Elkan (ICML'03): triangle-inequality acceleration of Lloyd with one
/// upper bound per point and k lower bounds per (point, center) pair.
/// Produces exactly Lloyd's trajectory. The paper's profiling shows its
/// weakness (§VI-D): maintaining N*k bounds ("bound update") costs up to
/// 45% of the iteration, which is why Elkan-PIM gains little.
class ElkanKmeans : public KmeansAlgorithm {
 public:
  std::string_view name() const override { return "Elkan"; }
  Result<KmeansResult> Run(const FloatMatrix& data,
                           const KmeansOptions& options) override;
};

}  // namespace pimine

#endif  // PIMINE_KMEANS_ELKAN_H_
