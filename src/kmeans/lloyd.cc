#include "kmeans/lloyd.h"

#include <algorithm>
#include <cmath>

#include "core/similarity.h"
#include "obs/obs.h"
#include "sim/traffic.h"
#include "util/timer.h"

namespace pimine {

double KmeansExactDistance(std::span<const float> a,
                           std::span<const float> b) {
  const double d2 = SquaredEuclidean(a, b);
  traffic::CountLongOps(1);
  return std::sqrt(d2);
}

Status ValidateKmeansInput(const FloatMatrix& data,
                           const KmeansOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (options.k <= 0 || static_cast<size_t>(options.k) > data.rows()) {
    return Status::InvalidArgument("k out of range");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  return Status::OK();
}

Result<KmeansResult> LloydKmeans::Run(const FloatMatrix& data,
                                      const KmeansOptions& options) {
  PIMINE_RETURN_IF_ERROR(ValidateKmeansInput(data, options));

  std::unique_ptr<PimAssignFilter> owned_filter;
  PimAssignFilter* filter = options.filter;
  if (options.use_pim && filter == nullptr) {
    PIMINE_ASSIGN_OR_RETURN(owned_filter,
                            PimAssignFilter::Build(data, options.engine_options));
    filter = owned_filter.get();
  }
  if (filter != nullptr) filter->set_fanout_policy(options.exec);

  KmeansResult result;
  result.centers = InitCenters(data, options.k, options.seed);
  result.assignments.assign(data.rows(), 0);
  result.stats.footprint_bytes =
      options.use_pim
          ? data.rows() * (options.k + 2) * sizeof(double)
          : data.SizeBytes() + result.centers.SizeBytes();

  traffic::AggregateScope traffic_scope;
  Timer total_wall;
  const size_t n = data.rows();
  const size_t k = static_cast<size_t>(options.k);
  bool first_iteration = true;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Timer iter_wall;
    // Modeled iteration latency: process-wide host traffic delta (exact at
    // any thread count) + the device time this iteration's BeginIteration
    // charges (added below, before any early exit).
    const double pim_ns_before =
        filter != nullptr ? filter->PimComputeNs() : 0.0;
    obs::AggregateSpan iter_span("kmeans", "iteration");
    iter_span.set_histogram(&result.stats.latency_hist);

    if (filter != nullptr) {
      ScopedFunctionTimer timer(&result.stats.profile, "LB_PIM");
      PIMINE_RETURN_IF_ERROR(filter->BeginIteration(
          result.centers, std::max<size_t>(1, options.exec.device_batch)));
    }

    // Assign step. Points are independent: each worker reads the shared
    // centers/filter and writes only its own assignment entries.
    const size_t changed = RunAssignWithPolicy(
        options.exec, n, &result.stats,
        [&](size_t i, size_t /*slot_index*/, AssignSlot& slot) {
          const auto p = data.row(i);
          const size_t start = result.assignments[i];
          size_t best_c = start;
          double best_d;
          if (filter == nullptr) {
            ScopedFunctionTimer timer(&slot.profile, "ED");
            best_d = KmeansExactDistance(p, result.centers.row(start));
            ++slot.exact_count;
            for (size_t c = 0; c < k; ++c) {
              if (c == start) continue;
              const double d = KmeansExactDistance(p, result.centers.row(c));
              ++slot.exact_count;
              if (d < best_d) {
                best_d = d;
                best_c = c;
              }
            }
          } else {
            {
              ScopedFunctionTimer timer(&slot.profile, "ED");
              best_d = KmeansExactDistance(p, result.centers.row(start));
              ++slot.exact_count;
            }
            for (size_t c = 0; c < k; ++c) {
              if (c == start) continue;
              ++slot.bound_count;
              if (filter->LowerBound(i, c) >= best_d) continue;
              ScopedFunctionTimer timer(&slot.profile, "ED");
              const double d = KmeansExactDistance(p, result.centers.row(c));
              ++slot.exact_count;
              if (d < best_d) {
                best_d = d;
                best_c = c;
              }
            }
          }
          if (best_c != static_cast<size_t>(result.assignments[i])) {
            result.assignments[i] = static_cast<int32_t>(best_c);
            ++slot.changed;
          }
        });

    // Update step.
    {
      ScopedFunctionTimer timer(&result.stats.profile, "update");
      result.centers =
          UpdateCenters(data, result.assignments, result.centers, nullptr,
                        filter);
    }

    if (filter != nullptr) {
      iter_span.AddModeledNs(filter->PimComputeNs() - pim_ns_before);
    }
    obs::AddCounter("pimine_kmeans_iterations_total", 1);
    result.iteration_wall_ms.push_back(iter_wall.ElapsedMillis());
    ++result.iterations;
    if (changed == 0 && !first_iteration) break;
    first_iteration = false;
  }

  result.inertia = ComputeInertia(data, result.centers, result.assignments);
  result.stats.wall_ms = total_wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  if (filter != nullptr) result.stats.pim_ns = filter->PimComputeNs();
  if (filter != nullptr) result.stats.fault = filter->FaultStatsTotal();
  if (filter != nullptr) result.stats.fleet = filter->FleetStats();
  PublishKmeansRunMetrics(result.stats);
  return result;
}

}  // namespace pimine
