#ifndef PIMINE_KMEANS_LLOYD_H_
#define PIMINE_KMEANS_LLOYD_H_

#include "kmeans/kmeans_common.h"

namespace pimine {

/// The paper's "Standard": Lloyd's algorithm. The assign step computes the
/// distance from every point to every center; with options.use_pim the
/// PIM lower bound LB_PIM-ED filters far-away centers first, reducing the
/// per-pair transfer from d*b to 3*b bits (§VI-D: up to 33.4x).
class LloydKmeans : public KmeansAlgorithm {
 public:
  std::string_view name() const override { return "Standard"; }
  Result<KmeansResult> Run(const FloatMatrix& data,
                           const KmeansOptions& options) override;
};

/// Exact real (non-squared) Euclidean distance with traffic accounting.
double KmeansExactDistance(std::span<const float> a, std::span<const float> b);

/// Validates data/options combinations shared by all algorithms.
Status ValidateKmeansInput(const FloatMatrix& data,
                           const KmeansOptions& options);

}  // namespace pimine

#endif  // PIMINE_KMEANS_LLOYD_H_
