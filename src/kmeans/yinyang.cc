#include "kmeans/yinyang.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/similarity.h"
#include "kmeans/lloyd.h"
#include "obs/obs.h"
#include "sim/traffic.h"
#include "util/timer.h"

namespace pimine {
namespace {

/// Clusters the k centers into t groups with a few plain Lloyd iterations
/// (the Yinyang paper's own group-construction step). Deterministic.
std::vector<int32_t> GroupCenters(const FloatMatrix& centers, size_t t,
                                  uint64_t seed) {
  const size_t k = centers.rows();
  std::vector<int32_t> group(k, 0);
  if (t <= 1) return group;
  FloatMatrix group_centers = InitCenters(centers, static_cast<int>(t), seed);
  for (int it = 0; it < 3; ++it) {
    for (size_t c = 0; c < k; ++c) {
      double best = HUGE_VAL;
      int32_t best_g = 0;
      for (size_t g = 0; g < t; ++g) {
        const double d = SquaredEuclidean(centers.row(c),
                                          group_centers.row(g));
        if (d < best) {
          best = d;
          best_g = static_cast<int32_t>(g);
        }
      }
      group[c] = best_g;
    }
    group_centers = UpdateCenters(centers, group, group_centers, nullptr);
  }
  return group;
}

}  // namespace

YinyangKmeans::YinyangKmeans(int group_divisor)
    : group_divisor_(group_divisor) {
  PIMINE_CHECK(group_divisor >= 1);
}

Result<KmeansResult> YinyangKmeans::Run(const FloatMatrix& data,
                                        const KmeansOptions& options) {
  PIMINE_RETURN_IF_ERROR(ValidateKmeansInput(data, options));

  std::unique_ptr<PimAssignFilter> owned_filter;
  PimAssignFilter* filter = options.filter;
  if (options.use_pim && filter == nullptr) {
    PIMINE_ASSIGN_OR_RETURN(owned_filter,
                            PimAssignFilter::Build(data, options.engine_options));
    filter = owned_filter.get();
  }
  if (filter != nullptr) filter->set_fanout_policy(options.exec);

  KmeansResult result;
  result.centers = InitCenters(data, options.k, options.seed);
  const size_t n = data.rows();
  const size_t k = static_cast<size_t>(options.k);
  const size_t t = std::max<size_t>(
      1, k / static_cast<size_t>(group_divisor_));
  result.assignments.assign(n, 0);
  result.stats.footprint_bytes =
      n * t * sizeof(double) + data.SizeBytes() / 4;

  const std::vector<int32_t> group =
      GroupCenters(result.centers, t, options.seed);
  std::vector<std::vector<int32_t>> members(t);
  for (size_t c = 0; c < k; ++c) members[group[c]].push_back(c);

  std::vector<double> upper(n, 0.0);
  std::vector<double> lower(n * t, 0.0);  // per-group lower bounds.
  std::vector<double> moved(k, 0.0);
  std::vector<double> group_delta(t, 0.0);
  // Per-worker scan scratch (init distances + group-min tracking).
  struct Scratch {
    std::vector<double> dist;
    std::vector<uint8_t> g_scanned;
    std::vector<double> g_min1;
    std::vector<double> g_min2;
    std::vector<int32_t> g_min1c;
  };
  const size_t chunk = std::max<size_t>(1, options.exec.block_size);
  std::vector<Scratch> scratch(NumSlots(options.exec, n, chunk));
  for (Scratch& s : scratch) {
    s.dist.resize(k);
    s.g_scanned.resize(t);
    s.g_min1.resize(t);
    s.g_min2.resize(t);
    s.g_min1c.resize(t);
  }

  traffic::AggregateScope traffic_scope;
  Timer total_wall;
  bool initialized = false;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Timer iter_wall;
    size_t changed = 0;
    const double pim_ns_before =
        filter != nullptr ? filter->PimComputeNs() : 0.0;
    obs::AggregateSpan iter_span("kmeans", "iteration");
    iter_span.set_histogram(&result.stats.latency_hist);

    if (filter != nullptr) {
      ScopedFunctionTimer timer(&result.stats.profile, "LB_PIM");
      PIMINE_RETURN_IF_ERROR(filter->BeginIteration(
          result.centers, std::max<size_t>(1, options.exec.device_batch)));
    }

    if (!initialized) {
      // Initial pass: per-pair values fill the group bounds. With the PIM
      // filter, far-away centers keep their (valid) PIM lower bound
      // instead of an exact distance — same treatment as Elkan's init.
      RunAssignWithPolicy(
          options.exec, n, &result.stats,
          [&](size_t i, size_t slot_index, AssignSlot& slot) {
            std::vector<double>& dist = scratch[slot_index].dist;
            const auto p = data.row(i);
            size_t best_c = 0;
            double best_d = HUGE_VAL;
            for (size_t c = 0; c < k; ++c) {
              if (filter != nullptr) {
                ++slot.bound_count;
                const double pim_lb = filter->LowerBound(i, c);
                if (pim_lb >= best_d) {
                  dist[c] = pim_lb;
                  continue;
                }
              }
              ScopedFunctionTimer timer(&slot.profile, "ED");
              dist[c] = KmeansExactDistance(p, result.centers.row(c));
              ++slot.exact_count;
              if (dist[c] < best_d) {
                best_d = dist[c];
                best_c = c;
              }
            }
            result.assignments[i] = static_cast<int32_t>(best_c);
            upper[i] = best_d;
            for (size_t g = 0; g < t; ++g) {
              double m = HUGE_VAL;
              for (int32_t c : members[g]) {
                if (static_cast<size_t>(c) == best_c) continue;
                m = std::min(m, dist[c]);
              }
              lower[i * t + g] = m;
            }
          });
      initialized = true;
      ++changed;
    } else {
      changed = RunAssignWithPolicy(
          options.exec, n, &result.stats,
          [&](size_t i, size_t slot_index, AssignSlot& slot) {
            const size_t a = result.assignments[i];
            double* lb = lower.data() + i * t;
            double global_lb = HUGE_VAL;
            for (size_t g = 0; g < t; ++g) {
              global_lb = std::min(global_lb, lb[g]);
            }
            if (upper[i] <= global_lb) return;

            const auto p = data.row(i);
            double best_d;
            {
              ScopedFunctionTimer timer(&slot.profile, "ED");
              best_d = KmeansExactDistance(p, result.centers.row(a));
              ++slot.exact_count;
            }
            upper[i] = best_d;
            if (best_d <= global_lb) return;
            size_t best_c = a;

            Scratch& s = scratch[slot_index];
            // Group bounds are finalized only after the final assignment is
            // known (a later group can steal the assignment, which changes
            // which candidate every earlier group must exclude).
            std::fill(s.g_scanned.begin(), s.g_scanned.end(), 0);
            for (size_t g = 0; g < t; ++g) {
              if (lb[g] >= best_d) continue;  // group filter (stays valid
                                              // as best_d only shrinks).
              s.g_scanned[g] = 1;
              double min1 = HUGE_VAL;   // smallest value in group.
              double min2 = HUGE_VAL;   // second smallest.
              int32_t min1_c = -1;
              for (int32_t c : members[g]) {
                if (static_cast<size_t>(c) == a) continue;
                double value;
                bool exact = true;
                if (filter != nullptr) {
                  ++slot.bound_count;
                  const double pim_lb = filter->LowerBound(i, c);
                  if (pim_lb >= best_d) {
                    value = pim_lb;  // valid lower bound for the group min.
                    exact = false;
                  } else {
                    ScopedFunctionTimer timer(&slot.profile, "ED");
                    value = KmeansExactDistance(p, result.centers.row(c));
                    ++slot.exact_count;
                  }
                } else {
                  ScopedFunctionTimer timer(&slot.profile, "ED");
                  value = KmeansExactDistance(p, result.centers.row(c));
                  ++slot.exact_count;
                }
                if (value < min1) {
                  min2 = min1;
                  min1 = value;
                  min1_c = c;
                } else if (value < min2) {
                  min2 = value;
                }
                if (exact && value < best_d) {
                  best_d = value;
                  best_c = c;
                }
              }
              s.g_min1[g] = min1;
              s.g_min2[g] = min2;
              s.g_min1c[g] = min1_c;
            }
            for (size_t g = 0; g < t; ++g) {
              if (!s.g_scanned[g]) continue;
              lb[g] = (s.g_min1c[g] >= 0 &&
                       static_cast<size_t>(s.g_min1c[g]) == best_c)
                          ? s.g_min2[g]
                          : s.g_min1[g];
            }
            if (best_c != a) {
              result.assignments[i] = static_cast<int32_t>(best_c);
              upper[i] = best_d;
              ++slot.changed;
              // The old assignment was excluded from every scan, but it
              // now belongs to its group's bound domain; fold its distance
              // in.
              const size_t old_group = group[a];
              ScopedFunctionTimer timer(&slot.profile, "ED");
              const double d_old =
                  KmeansExactDistance(p, result.centers.row(a));
              ++slot.exact_count;
              lb[old_group] = std::min(lb[old_group], d_old);
            }
          });
    }

    {
      ScopedFunctionTimer timer(&result.stats.profile, "update");
      result.centers =
          UpdateCenters(data, result.assignments, result.centers, &moved,
                        filter);
    }
    {
      ScopedFunctionTimer timer(&result.stats.profile, "bound update");
      std::fill(group_delta.begin(), group_delta.end(), 0.0);
      for (size_t c = 0; c < k; ++c) {
        group_delta[group[c]] = std::max(group_delta[group[c]], moved[c]);
      }
      for (size_t i = 0; i < n; ++i) {
        double* lb = lower.data() + i * t;
        for (size_t g = 0; g < t; ++g) {
          lb[g] = std::max(0.0, lb[g] - group_delta[g]);
        }
        upper[i] += moved[result.assignments[i]];
      }
      traffic::CountRead(n * t * sizeof(double));
      traffic::CountWrite(n * t * sizeof(double));
      traffic::CountArithmetic(n * t * 2);
    }

    if (filter != nullptr) {
      iter_span.AddModeledNs(filter->PimComputeNs() - pim_ns_before);
    }
    obs::AddCounter("pimine_kmeans_iterations_total", 1);
    result.iteration_wall_ms.push_back(iter_wall.ElapsedMillis());
    ++result.iterations;
    if (changed == 0 && iter > 0) break;
  }

  result.inertia = ComputeInertia(data, result.centers, result.assignments);
  result.stats.wall_ms = total_wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  if (filter != nullptr) result.stats.pim_ns = filter->PimComputeNs();
  if (filter != nullptr) result.stats.fault = filter->FaultStatsTotal();
  if (filter != nullptr) result.stats.fleet = filter->FleetStats();
  PublishKmeansRunMetrics(result.stats);
  return result;
}

}  // namespace pimine
