#ifndef PIMINE_KMEANS_HAMERLY_H_
#define PIMINE_KMEANS_HAMERLY_H_

#include "kmeans/kmeans_common.h"

namespace pimine {

/// Hamerly (SDM'10): the minimal-bound member of the triangle-inequality
/// family the paper surveys (§II-C — Drake and Yinyang "follow the similar
/// strategy with employing less bounds" than Elkan). One upper bound per
/// point plus a single lower bound on the distance to the second-closest
/// center. Cheapest bound maintenance of all, most exact distances.
/// Produces exactly Lloyd's trajectory; options.use_pim adds the PIM
/// filter in the rescan, like the other algorithms.
///
/// Not part of the paper's evaluated set — included as the natural fourth
/// point on the bounds-vs-recomputation spectrum (extension; see
/// DESIGN.md §5).
class HamerlyKmeans : public KmeansAlgorithm {
 public:
  std::string_view name() const override { return "Hamerly"; }
  Result<KmeansResult> Run(const FloatMatrix& data,
                           const KmeansOptions& options) override;
};

}  // namespace pimine

#endif  // PIMINE_KMEANS_HAMERLY_H_
