#ifndef PIMINE_KMEANS_KMEANS_COMMON_H_
#define PIMINE_KMEANS_KMEANS_COMMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/mutable_dataset.h"
#include "core/sharded_engine.h"
#include "data/matrix.h"
#include "profiling/run_stats.h"
#include "util/parallel.h"

namespace pimine {

class PimAssignFilter;

/// Options shared by every k-means algorithm. The same (k, seed) produces
/// the same initial centers for all algorithms, so Elkan/Drake/Yinyang can
/// be verified to follow Lloyd's trajectory exactly (they are exact
/// accelerations — tested as an invariant).
struct KmeansOptions {
  int k = 64;
  int max_iterations = 10;
  uint64_t seed = 42;
  /// When true the assign step consults PIM lower bounds (LB_PIM-ED,
  /// Theorem 1) before any exact distance computation (§VI-D).
  bool use_pim = false;
  EngineOptions engine_options;
  /// Shared PIM assign filter (not owned; must outlive the run). When set
  /// it is used instead of building a run-local filter: the mutable-
  /// dataset workflow keeps ONE filter in sync with its corpus via
  /// MutationListener and shares it across runs. The `data` passed to Run
  /// must then be the filter's dense live view — live rows in ascending
  /// physical order (MutableDataset::LiveCorpus()).
  PimAssignFilter* filter = nullptr;
  /// Host-side execution policy for the per-point assign step. Points are
  /// independent within one assign pass, so chunks spread across
  /// `exec.num_threads` workers; assignments, centers and aggregated
  /// traffic are identical for every thread count (see DESIGN.md). Update
  /// steps and bound maintenance stay serial. Default: serial.
  ExecPolicy exec;
};

/// Result of a clustering run.
struct KmeansResult {
  FloatMatrix centers;
  std::vector<int32_t> assignments;
  int iterations = 0;
  /// Online wall time of each iteration (assign + update), ms.
  std::vector<double> iteration_wall_ms;
  /// Sum of squared distances of points to their assigned centers.
  double inertia = 0.0;
  RunStats stats;

  double MeanIterationMs() const;
};

/// Interface of the four §VI-D algorithms (Standard/Elkan/Drake/Yinyang)
/// and their PIM variants (the same classes with options.use_pim).
class KmeansAlgorithm {
 public:
  virtual ~KmeansAlgorithm() = default;
  virtual std::string_view name() const = 0;
  virtual Result<KmeansResult> Run(const FloatMatrix& data,
                                   const KmeansOptions& options) = 0;
};

/// Per-worker accumulation slot for a parallel assign step: workers charge
/// their counters, reassignment tally and per-function wall time here and
/// the harness folds the slots into RunStats in slot order once the pass
/// drains.
struct AssignSlot {
  uint64_t exact_count = 0;
  uint64_t bound_count = 0;
  uint64_t changed = 0;
  FunctionProfiler profile;
};

/// Runs `assign_point(i, slot_index, slot)` for every point in [0,
/// num_points) in chunks of `policy.block_size` across the policy's workers
/// (inline when serial). Slot stats are merged into `stats` in slot order;
/// returns the total number of reassignments the workers tallied.
size_t RunAssignWithPolicy(
    const ExecPolicy& policy, size_t num_points, RunStats* stats,
    const std::function<void(size_t, size_t, AssignSlot&)>& assign_point);

/// Publishes a finished run's pruning counters and per-iteration latency
/// histogram (stats.latency_hist) to the metrics registry. No-op while
/// observability is disabled. Call once at the end of Run(), after the
/// RunStats fields are final.
void PublishKmeansRunMetrics(const RunStats& stats);

/// Draws k distinct rows of `data` as initial centers (deterministic in
/// `seed`).
FloatMatrix InitCenters(const FloatMatrix& data, int k, uint64_t seed);

/// Update step of Lloyd's algorithm: means of assigned points; clusters
/// that lost all points keep their previous center. Returns per-center
/// movement (real Euclidean distance moved) in `moved` when non-null.
///
/// Coordinate sums accumulate in ExactSum fixed-point registers, so the
/// result is a pure function of the multiset of assigned rows — grouping
/// cannot change it. When `filter` runs a sharded fleet (shards > 1) the
/// sums are formed as per-shard partials merged by a pairwise tree, which
/// by that exactness is bit-identical to the flat single-device sum; the
/// tree's interconnect critical path is charged to the filter's fleet
/// stats. Host traffic charges are identical for every shard count.
FloatMatrix UpdateCenters(const FloatMatrix& data,
                          const std::vector<int32_t>& assignments,
                          const FloatMatrix& previous_centers,
                          std::vector<double>* moved,
                          const PimAssignFilter* filter = nullptr);

/// Sum of squared distances to assigned centers.
double ComputeInertia(const FloatMatrix& data, const FloatMatrix& centers,
                      const std::vector<int32_t>& assignments);

/// PIM support for the assign step: programs the dataset once (offline) and
/// refreshes one batch of dot products per center per iteration. Lower
/// bounds are combined lazily — the host loads only the PIM results of the
/// (point, center) pairs the algorithm actually examines.
///
/// As a MutationListener the filter mirrors corpus mutations onto its
/// fleet and maintains the dense-live -> physical id map: k-means always
/// runs over the dense live view, and LowerBound/ShardOf translate dense
/// point indices to the fleet's physical rows.
class PimAssignFilter : public MutationListener {
 public:
  static Result<std::unique_ptr<PimAssignFilter>> Build(
      const FloatMatrix& data, const EngineOptions& options);

  Status OnInsert(const FloatMatrix& rows) override;
  Status OnDelete(std::span<const uint32_t> rows) override;
  Status OnCompact(const std::vector<uint32_t>& live) override;

  /// Runs the PIM operations for the current centers (call at the start of
  /// every assign step; centers move every iteration). Centers are grouped
  /// into device batches of `device_batch` (the last group may be short),
  /// each issued as one fleet RunQueryBatch — bounds and all modeled
  /// stats except the device's batch accounting are identical for every
  /// grouping. Callers pass max(1, options.exec.device_batch);
  /// device_batch == 0 is rejected with InvalidArgument.
  Status BeginIteration(const FloatMatrix& centers, size_t device_batch = 1);

  /// Lower bound on the *real* (non-squared) distance between dense live
  /// point `point` and `center`. O(1) host work.
  double LowerBound(size_t point, size_t center) const;

  /// Shard holding dense live point `point` (UpdateCenters groups its
  /// per-shard partial sums by this).
  uint32_t ShardOf(size_t point) const {
    return engine_->shard_map().shard_of[live_ids_[point]];
  }
  /// Dense live points currently addressable (rows of the live view).
  size_t live_points() const { return live_ids_.size(); }

  double PimComputeNs() const { return engine_->PimComputeNs(); }
  FaultStats FaultStatsTotal() const { return engine_->FaultStatsTotal(); }
  double OfflineNs() const { return engine_->OfflineNs(); }
  void ResetOnlineStats() { engine_->ResetOnlineStats(); }
  const ShardedPimEngine& engine() const { return *engine_; }

  // --- Fleet pass-throughs (trivial for shards == 1) -------------------
  size_t shards() const { return engine_->shards(); }
  const ShardMap& shard_map() const { return engine_->shard_map(); }
  FleetRunStats FleetStats() const { return engine_->FleetStats(); }
  void ChargeTreeReduction(uint64_t payload_bytes) const {
    engine_->ChargeTreeReduction(payload_bytes);
  }
  /// BeginIteration runs on the coordinator thread (before the parallel
  /// assign pass), so the fleet fan-out may safely use the run's policy.
  void set_fanout_policy(const ExecPolicy& policy) {
    engine_->set_fanout_policy(policy);
  }
  /// Installs an availability-chaos schedule (owned by the caller,
  /// outliving the filter's use) on the underlying fleet and readmits all
  /// replicas. nullptr uninstalls — bit-identical to the pre-chaos filter.
  void InstallChaos(const ChaosSchedule* schedule) {
    engine_->set_chaos(schedule);
    engine_->ResetReplicaHealth();
  }
  /// Advances the instant the chaos schedule is evaluated at for the next
  /// BeginIteration's dispatches (one instant per k-means iteration).
  void SetChaosNowNs(uint64_t now_ns) { engine_->set_chaos_now_ns(now_ns); }

 private:
  explicit PimAssignFilter(std::unique_ptr<ShardedPimEngine> engine);

  std::unique_ptr<ShardedPimEngine> engine_;
  std::vector<ShardedPimEngine::QueryHandleBatch> batches_;
  size_t group_size_ = 1;  // device_batch of the current iteration.
  /// live_ids_[dense] = physical fleet row; ascending, so the dense order
  /// matches MutableDataset::LiveCorpus().
  std::vector<uint32_t> live_ids_;
};

}  // namespace pimine

#endif  // PIMINE_KMEANS_KMEANS_COMMON_H_
