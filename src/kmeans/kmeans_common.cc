#include "kmeans/kmeans_common.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"
#include "core/similarity.h"
#include "obs/obs.h"
#include "sim/traffic.h"
#include "util/exact_sum.h"
#include "util/random.h"

namespace pimine {

size_t RunAssignWithPolicy(
    const ExecPolicy& policy, size_t num_points, RunStats* stats,
    const std::function<void(size_t, size_t, AssignSlot&)>& assign_point) {
  const size_t chunk = std::max<size_t>(1, policy.block_size);
  std::vector<AssignSlot> slots(NumSlots(policy, num_points, chunk));
  ParallelChunks(policy, num_points, chunk,
                 [&](size_t begin, size_t end, size_t slot_index) {
                   // Opt-in physical span: this worker's chunk of the pass.
                   obs::SchedSpan sched(static_cast<int64_t>(begin / chunk),
                                        static_cast<int64_t>(begin),
                                        static_cast<int64_t>(end));
                   AssignSlot& slot = slots[slot_index];
                   for (size_t i = begin; i < end; ++i) {
                     assign_point(i, slot_index, slot);
                   }
                 });
  size_t changed = 0;
  for (const AssignSlot& slot : slots) {
    stats->exact_count += slot.exact_count;
    stats->bound_count += slot.bound_count;
    stats->profile.Merge(slot.profile);
    changed += slot.changed;
  }
  obs::AddCounter("pimine_kmeans_reassignments_total", changed);
  return changed;
}

void PublishKmeansRunMetrics(const RunStats& stats) {
  obs::Obs* o = obs::Obs::Get();
  if (o == nullptr) return;
  o->metrics().GetCounter("pimine_exact_distances_total")
      .Add(stats.exact_count);
  o->metrics().GetCounter("pimine_bound_evaluations_total")
      .Add(stats.bound_count);
  o->metrics()
      .GetCounter("pimine_candidates_pruned_total")
      .Add(stats.bound_count > stats.exact_count
               ? stats.bound_count - stats.exact_count
               : 0);
  o->metrics().MergeHistogram("pimine_kmeans_iteration_ns",
                              stats.latency_hist);
}

double KmeansResult::MeanIterationMs() const {
  if (iteration_wall_ms.empty()) return 0.0;
  double sum = 0.0;
  for (double ms : iteration_wall_ms) sum += ms;
  return sum / static_cast<double>(iteration_wall_ms.size());
}

FloatMatrix InitCenters(const FloatMatrix& data, int k, uint64_t seed) {
  PIMINE_CHECK(k > 0 && static_cast<size_t>(k) <= data.rows())
      << "k=" << k << " vs n=" << data.rows();
  Rng rng(seed ^ 0xce27e25ULL);
  std::unordered_set<size_t> chosen;
  FloatMatrix centers(static_cast<size_t>(k), data.cols());
  for (int c = 0; c < k; ++c) {
    size_t idx = rng.NextBounded(data.rows());
    while (chosen.count(idx) > 0) idx = rng.NextBounded(data.rows());
    chosen.insert(idx);
    const auto src = data.row(idx);
    auto dst = centers.mutable_row(c);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return centers;
}

FloatMatrix UpdateCenters(const FloatMatrix& data,
                          const std::vector<int32_t>& assignments,
                          const FloatMatrix& previous_centers,
                          std::vector<double>* moved,
                          const PimAssignFilter* filter) {
  const size_t k = previous_centers.rows();
  const size_t d = data.cols();
  PIMINE_CHECK(assignments.size() == data.rows());

  const size_t shards = filter != nullptr ? filter->shards() : 1;
  std::vector<int64_t> counts(k, 0);
  std::vector<ExactSum> sums;
  if (shards <= 1) {
    // Flat single-device sum.
    sums.assign(k * d, ExactSum());
    for (size_t i = 0; i < data.rows(); ++i) {
      const int32_t c = assignments[i];
      PIMINE_DCHECK(c >= 0 && static_cast<size_t>(c) < k);
      const auto row = data.row(i);
      ExactSum* sum = sums.data() + static_cast<size_t>(c) * d;
      for (size_t j = 0; j < d; ++j) sum[j].Add(row[j]);
      ++counts[c];
    }
  } else {
    // Sharded: each shard accumulates a partial over its own rows, then
    // the partials merge pairwise. ExactSum addition is exact integer
    // addition, so the tree result equals the flat sum bit-for-bit for
    // every shard count; only the fleet reduce accounting below varies.
    std::vector<std::vector<ExactSum>> partials(
        shards, std::vector<ExactSum>(k * d));
    for (size_t i = 0; i < data.rows(); ++i) {
      const int32_t c = assignments[i];
      PIMINE_DCHECK(c >= 0 && static_cast<size_t>(c) < k);
      const auto row = data.row(i);
      // ShardOf translates the dense live index to the physical fleet row,
      // so partials group by where the row actually lives post-mutation.
      ExactSum* sum =
          partials[filter->ShardOf(i)].data() + static_cast<size_t>(c) * d;
      for (size_t j = 0; j < d; ++j) sum[j].Add(row[j]);
      ++counts[c];
    }
    for (size_t stride = 1; stride < shards; stride *= 2) {
      for (size_t a = 0; a + stride < shards; a += 2 * stride) {
        std::vector<ExactSum>& into = partials[a];
        const std::vector<ExactSum>& from = partials[a + stride];
        for (size_t j = 0; j < k * d; ++j) into[j].Merge(from[j]);
      }
    }
    sums = std::move(partials[0]);
    filter->ChargeTreeReduction(k * d * sizeof(ExactSum) +
                                k * sizeof(int64_t));
  }
  traffic::CountRead(data.SizeBytes());
  traffic::CountArithmetic(data.rows() * d);

  FloatMatrix centers(k, d);
  if (moved != nullptr) moved->assign(k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    auto dst = centers.mutable_row(c);
    const auto prev = previous_centers.row(c);
    if (counts[c] == 0) {
      std::copy(prev.begin(), prev.end(), dst.begin());
      continue;
    }
    const double inv = 1.0 / static_cast<double>(counts[c]);
    double shift_sq = 0.0;
    const ExactSum* sum = sums.data() + c * d;
    for (size_t j = 0; j < d; ++j) {
      dst[j] = static_cast<float>(sum[j].ToDouble() * inv);
      const double diff = static_cast<double>(dst[j]) - prev[j];
      shift_sq += diff * diff;
    }
    if (moved != nullptr) (*moved)[c] = std::sqrt(shift_sq);
  }
  traffic::CountWrite(centers.SizeBytes());
  traffic::CountArithmetic(k * d * 3);
  traffic::CountLongOps(k + 1);
  return centers;
}

double ComputeInertia(const FloatMatrix& data, const FloatMatrix& centers,
                      const std::vector<int32_t>& assignments) {
  double total = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) {
    total += SquaredEuclidean(data.row(i), centers.row(assignments[i]));
  }
  return total;
}

PimAssignFilter::PimAssignFilter(std::unique_ptr<ShardedPimEngine> engine)
    : engine_(std::move(engine)) {
  live_ids_.resize(engine_->num_objects());
  std::iota(live_ids_.begin(), live_ids_.end(), 0u);
}

Result<std::unique_ptr<PimAssignFilter>> PimAssignFilter::Build(
    const FloatMatrix& data, const EngineOptions& options) {
  EngineOptions opts = options;
  // k-means uses the direct Theorem 1 bound (§VI-D: "PIM is used to compute
  // LB_PIM-ED").
  opts.bound = EngineOptions::Bound::kDirectEd;
  PIMINE_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedPimEngine> engine,
      ShardedPimEngine::Build(data, Distance::kEuclidean, opts));
  return std::unique_ptr<PimAssignFilter>(
      new PimAssignFilter(std::move(engine)));
}

Status PimAssignFilter::OnInsert(const FloatMatrix& rows) {
  const size_t first = engine_->num_objects();
  PIMINE_RETURN_IF_ERROR(engine_->AppendRows(rows));
  for (size_t i = 0; i < rows.rows(); ++i) {
    live_ids_.push_back(static_cast<uint32_t>(first + i));
  }
  return Status::OK();
}

Status PimAssignFilter::OnDelete(std::span<const uint32_t> rows) {
  for (const uint32_t row : rows) {
    PIMINE_RETURN_IF_ERROR(engine_->DeleteRow(row));
    const auto it =
        std::lower_bound(live_ids_.begin(), live_ids_.end(), row);
    PIMINE_CHECK(it != live_ids_.end() && *it == row)
        << "deleted row " << row << " missing from the live view";
    live_ids_.erase(it);
  }
  return Status::OK();
}

Status PimAssignFilter::OnCompact(const std::vector<uint32_t>& live) {
  PIMINE_RETURN_IF_ERROR(engine_->Compact());
  // Post-compaction ids are dense: the live view is the identity again.
  live_ids_.resize(live.size());
  std::iota(live_ids_.begin(), live_ids_.end(), 0u);
  return Status::OK();
}

Status PimAssignFilter::BeginIteration(const FloatMatrix& centers,
                                       size_t device_batch) {
  if (device_batch == 0) {
    return Status::InvalidArgument(
        "BeginIteration requires device_batch >= 1 (centers per device "
        "operation); 0 is not a valid batch size");
  }
  group_size_ = device_batch;
  const size_t k = centers.rows();
  const size_t d = centers.cols();
  batches_.clear();
  batches_.reserve((k + group_size_ - 1) / group_size_);
  // Center rows are contiguous, so each group is one flat span.
  for (size_t c = 0; c < k; c += group_size_) {
    const size_t group = std::min(group_size_, k - c);
    // Engine spans for center c+i land on track c+i regardless of how the
    // centers are grouped, so the trace stays bit-identical across
    // device_batch sizes (same discipline as the kNN batched harness).
    obs::ScopedTrackBase track_base(static_cast<int64_t>(c));
    PIMINE_ASSIGN_OR_RETURN(
        ShardedPimEngine::QueryHandleBatch batch,
        engine_->RunQueryBatch(
            std::span<const float>(centers.data() + c * d, group * d), group));
    batches_.push_back(std::move(batch));
  }
  return Status::OK();
}

double PimAssignFilter::LowerBound(size_t point, size_t center) const {
  PIMINE_DCHECK(center / group_size_ < batches_.size());
  const double lb_sq = engine_->BoundFor(batches_[center / group_size_],
                                         center % group_size_,
                                         live_ids_[point]);
  return lb_sq > 0.0 ? std::sqrt(lb_sq) : 0.0;
}

}  // namespace pimine
