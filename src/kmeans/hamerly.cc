#include "kmeans/hamerly.h"

#include <algorithm>
#include <cmath>

#include "kmeans/lloyd.h"
#include "obs/obs.h"
#include "sim/traffic.h"
#include "util/timer.h"

namespace pimine {

Result<KmeansResult> HamerlyKmeans::Run(const FloatMatrix& data,
                                        const KmeansOptions& options) {
  PIMINE_RETURN_IF_ERROR(ValidateKmeansInput(data, options));

  std::unique_ptr<PimAssignFilter> owned_filter;
  PimAssignFilter* filter = options.filter;
  if (options.use_pim && filter == nullptr) {
    PIMINE_ASSIGN_OR_RETURN(owned_filter,
                            PimAssignFilter::Build(data, options.engine_options));
    filter = owned_filter.get();
  }
  if (filter != nullptr) filter->set_fanout_policy(options.exec);

  KmeansResult result;
  result.centers = InitCenters(data, options.k, options.seed);
  const size_t n = data.rows();
  const size_t k = static_cast<size_t>(options.k);
  result.assignments.assign(n, 0);
  result.stats.footprint_bytes =
      n * 2 * sizeof(double) + data.SizeBytes() / 8;

  std::vector<double> upper(n, 0.0);
  std::vector<double> lower(n, 0.0);  // bound to the 2nd-closest center.
  std::vector<double> nearest_other(k, 0.0);
  std::vector<double> moved(k, 0.0);

  traffic::AggregateScope traffic_scope;
  Timer total_wall;
  bool initialized = false;

  // Full re-evaluation of point i: finds the closest center exactly and a
  // valid lower bound on the second-closest distance. PIM-pruned centers
  // contribute their (valid) lower bound to the second-min tracking.
  auto rescan_point = [&](size_t i, AssignSlot& slot) {
    const auto p = data.row(i);
    double min1 = HUGE_VAL;  // exact distance to the closest center.
    double min2 = HUGE_VAL;  // lower bound on the second-closest distance.
    size_t best_c = 0;
    for (size_t c = 0; c < k; ++c) {
      double value;
      if (filter != nullptr) {
        ++slot.bound_count;
        const double pim_lb = filter->LowerBound(i, c);
        if (pim_lb >= min1) {
          value = pim_lb;  // cannot be the closest; bound suffices.
        } else {
          ScopedFunctionTimer timer(&slot.profile, "ED");
          value = KmeansExactDistance(p, result.centers.row(c));
          ++slot.exact_count;
        }
      } else {
        ScopedFunctionTimer timer(&slot.profile, "ED");
        value = KmeansExactDistance(p, result.centers.row(c));
        ++slot.exact_count;
      }
      if (value < min1) {
        min2 = min1;
        min1 = value;
        best_c = c;
      } else if (value < min2) {
        min2 = value;
      }
    }
    result.assignments[i] = static_cast<int32_t>(best_c);
    upper[i] = min1;
    lower[i] = min2;
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Timer iter_wall;
    size_t changed = 0;
    const double pim_ns_before =
        filter != nullptr ? filter->PimComputeNs() : 0.0;
    obs::AggregateSpan iter_span("kmeans", "iteration");
    iter_span.set_histogram(&result.stats.latency_hist);

    if (filter != nullptr) {
      ScopedFunctionTimer timer(&result.stats.profile, "LB_PIM");
      PIMINE_RETURN_IF_ERROR(filter->BeginIteration(
          result.centers, std::max<size_t>(1, options.exec.device_batch)));
    }

    if (!initialized) {
      changed = RunAssignWithPolicy(
          options.exec, n, &result.stats,
          [&](size_t i, size_t /*slot_index*/, AssignSlot& slot) {
            rescan_point(i, slot);
            ++slot.changed;
          });
      initialized = true;
    } else {
      // s(j) = half the distance to j's nearest other center.
      {
        ScopedFunctionTimer timer(&result.stats.profile, "ED");
        for (size_t a = 0; a < k; ++a) {
          double m = HUGE_VAL;
          for (size_t b = 0; b < k; ++b) {
            if (b == a) continue;
            m = std::min(m, KmeansExactDistance(result.centers.row(a),
                                                result.centers.row(b)));
          }
          nearest_other[a] = 0.5 * m;
          result.stats.exact_count += k - 1;
        }
      }

      changed = RunAssignWithPolicy(
          options.exec, n, &result.stats,
          [&](size_t i, size_t /*slot_index*/, AssignSlot& slot) {
            const size_t a = result.assignments[i];
            const double gate = std::max(nearest_other[a], lower[i]);
            if (upper[i] <= gate) return;
            // Tighten the upper bound; re-test before the full rescan.
            {
              ScopedFunctionTimer timer(&slot.profile, "ED");
              upper[i] =
                  KmeansExactDistance(data.row(i), result.centers.row(a));
              ++slot.exact_count;
            }
            if (upper[i] <= gate) return;
            const int32_t before = result.assignments[i];
            rescan_point(i, slot);
            if (result.assignments[i] != before) ++slot.changed;
          });
    }

    {
      ScopedFunctionTimer timer(&result.stats.profile, "update");
      result.centers =
          UpdateCenters(data, result.assignments, result.centers, &moved,
                        filter);
    }
    {
      ScopedFunctionTimer timer(&result.stats.profile, "bound update");
      double max_moved = 0.0;
      for (double m : moved) max_moved = std::max(max_moved, m);
      for (size_t i = 0; i < n; ++i) {
        upper[i] += moved[result.assignments[i]];
        lower[i] = std::max(0.0, lower[i] - max_moved);
      }
      traffic::CountRead(n * 2 * sizeof(double));
      traffic::CountWrite(n * 2 * sizeof(double));
      traffic::CountArithmetic(n * 3);
    }

    if (filter != nullptr) {
      iter_span.AddModeledNs(filter->PimComputeNs() - pim_ns_before);
    }
    obs::AddCounter("pimine_kmeans_iterations_total", 1);
    result.iteration_wall_ms.push_back(iter_wall.ElapsedMillis());
    ++result.iterations;
    if (changed == 0 && iter > 0) break;
  }

  result.inertia = ComputeInertia(data, result.centers, result.assignments);
  result.stats.wall_ms = total_wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  if (filter != nullptr) result.stats.pim_ns = filter->PimComputeNs();
  if (filter != nullptr) result.stats.fault = filter->FaultStatsTotal();
  if (filter != nullptr) result.stats.fleet = filter->FleetStats();
  PublishKmeansRunMetrics(result.stats);
  return result;
}

}  // namespace pimine
