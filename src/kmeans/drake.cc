#include "kmeans/drake.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "kmeans/lloyd.h"
#include "obs/obs.h"
#include "sim/traffic.h"
#include "util/timer.h"

namespace pimine {
namespace {

/// Per-point state: the b nearest non-assigned centers with lower bounds,
/// sorted ascending, plus a catch-all bound for every other center.
struct PointBounds {
  std::vector<double> lb;       // length b, ascending at rebuild time.
  std::vector<int32_t> center;  // centers the lb entries refer to.
  double lb_rest = 0.0;         // lower bound for all remaining centers.
};

}  // namespace

DrakeKmeans::DrakeKmeans(int bound_divisor) : bound_divisor_(bound_divisor) {
  PIMINE_CHECK(bound_divisor >= 1);
}

Result<KmeansResult> DrakeKmeans::Run(const FloatMatrix& data,
                                      const KmeansOptions& options) {
  PIMINE_RETURN_IF_ERROR(ValidateKmeansInput(data, options));

  std::unique_ptr<PimAssignFilter> owned_filter;
  PimAssignFilter* filter = options.filter;
  if (options.use_pim && filter == nullptr) {
    PIMINE_ASSIGN_OR_RETURN(owned_filter,
                            PimAssignFilter::Build(data, options.engine_options));
    filter = owned_filter.get();
  }
  if (filter != nullptr) filter->set_fanout_policy(options.exec);

  KmeansResult result;
  result.centers = InitCenters(data, options.k, options.seed);
  const size_t n = data.rows();
  const size_t k = static_cast<size_t>(options.k);
  const size_t b = std::min<size_t>(
      k - 1, std::max<size_t>(2, k / static_cast<size_t>(bound_divisor_)));
  result.assignments.assign(n, 0);
  result.stats.footprint_bytes =
      n * b * (sizeof(double) + sizeof(int32_t)) + data.SizeBytes() / 8;

  std::vector<double> upper(n, 0.0);
  std::vector<PointBounds> bounds(n);
  for (auto& pb : bounds) {
    pb.lb.assign(b, 0.0);
    pb.center.assign(b, 0);
  }
  std::vector<double> moved(k, 0.0);
  std::vector<double> dist_scratch(k, 0.0);

  TrafficScope traffic_scope;
  Timer total_wall;
  bool initialized = false;

  // Full re-evaluation of one point: all k distances (through the PIM
  // filter when present), rebuilding its bound list. Returns the new
  // assignment. Pruned pairs store the PIM lower bound — a valid entry.
  auto rescan_point = [&](size_t i) -> size_t {
    const auto p = data.row(i);
    size_t best_c = 0;
    double best_d = HUGE_VAL;
    for (size_t c = 0; c < k; ++c) {
      double d;
      if (filter != nullptr) {
        ++result.stats.bound_count;
        const double pim_lb = filter->LowerBound(i, c);
        if (pim_lb >= best_d) {
          dist_scratch[c] = pim_lb;
          continue;
        }
      }
      {
        ScopedFunctionTimer timer(&result.stats.profile, "ED");
        d = KmeansExactDistance(p, result.centers.row(c));
        ++result.stats.exact_count;
      }
      dist_scratch[c] = d;
      if (d < best_d) {
        best_d = d;
        best_c = c;
      }
    }
    // Rebuild the bound list: b smallest non-assigned entries.
    std::vector<int32_t> order(k);
    for (size_t c = 0; c < k; ++c) order[c] = static_cast<int32_t>(c);
    std::sort(order.begin(), order.end(), [&](int32_t x, int32_t y) {
      if (dist_scratch[x] != dist_scratch[y]) {
        return dist_scratch[x] < dist_scratch[y];
      }
      return x < y;
    });
    PointBounds& pb = bounds[i];
    size_t filled = 0;
    double rest = HUGE_VAL;
    for (size_t pos = 0; pos < k; ++pos) {
      const int32_t c = order[pos];
      if (static_cast<size_t>(c) == best_c) continue;
      if (filled < b) {
        pb.center[filled] = c;
        pb.lb[filled] = dist_scratch[c];
        ++filled;
      } else {
        rest = std::min(rest, dist_scratch[c]);
      }
    }
    pb.lb_rest = rest;  // HUGE_VAL when b covers all other centers.
    upper[i] = best_d;
    traffic::CountArithmetic(k * 12);  // sort of k entries.
    return best_c;
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Timer iter_wall;
    size_t changed = 0;
    const double pim_ns_before =
        filter != nullptr ? filter->PimComputeNs() : 0.0;
    obs::AggregateSpan iter_span("kmeans", "iteration");
    iter_span.set_histogram(&result.stats.latency_hist);

    if (filter != nullptr) {
      ScopedFunctionTimer timer(&result.stats.profile, "LB_PIM");
      PIMINE_RETURN_IF_ERROR(filter->BeginIteration(
          result.centers, std::max<size_t>(1, options.exec.device_batch)));
    }

    if (!initialized) {
      for (size_t i = 0; i < n; ++i) {
        result.assignments[i] = static_cast<int32_t>(rescan_point(i));
        ++changed;
      }
      initialized = true;
    } else {
      for (size_t i = 0; i < n; ++i) {
        PointBounds& pb = bounds[i];
        const size_t a = result.assignments[i];
        // Skip entirely when every other center's bound exceeds upper.
        // Per-center updates unsort the list, so take the true minimum.
        double min_lb = pb.lb_rest;
        for (size_t pos = 0; pos < b; ++pos) {
          min_lb = std::min(min_lb, pb.lb[pos]);
        }
        if (upper[i] <= min_lb) continue;

        const auto p = data.row(i);
        double best_d;
        {
          ScopedFunctionTimer timer(&result.stats.profile, "ED");
          best_d = KmeansExactDistance(p, result.centers.row(a));
          ++result.stats.exact_count;
        }
        upper[i] = best_d;
        size_t best_c = a;
        bool need_rescan = false;
        for (size_t pos = 0; pos < b; ++pos) {
          if (pb.lb[pos] >= best_d) continue;
          const size_t c = pb.center[pos];
          if (c == best_c) continue;
          if (filter != nullptr) {
            ++result.stats.bound_count;
            const double pim_lb = filter->LowerBound(i, c);
            if (pim_lb >= best_d) {
              pb.lb[pos] = std::max(pb.lb[pos], pim_lb);
              continue;
            }
          }
          ScopedFunctionTimer timer(&result.stats.profile, "ED");
          const double d = KmeansExactDistance(p, result.centers.row(c));
          ++result.stats.exact_count;
          pb.lb[pos] = d;
          if (d < best_d) {
            best_d = d;
            best_c = c;
          }
        }
        // Rescan when the catch-all bound can no longer exclude the
        // unlisted centers, or when the assignment changes (the bound list
        // excludes the assigned center, so a switch invalidates coverage of
        // the old one).
        if (pb.lb_rest < best_d || best_c != a) need_rescan = true;
        if (need_rescan) {
          best_c = rescan_point(i);
        } else {
          upper[i] = best_d;
        }
        if (best_c != a) {
          result.assignments[i] = static_cast<int32_t>(best_c);
          ++changed;
        }
      }
    }

    {
      ScopedFunctionTimer timer(&result.stats.profile, "update");
      result.centers =
          UpdateCenters(data, result.assignments, result.centers, &moved,
                        filter);
    }
    {
      ScopedFunctionTimer timer(&result.stats.profile, "bound update");
      double max_moved = 0.0;
      for (double m : moved) max_moved = std::max(max_moved, m);
      for (size_t i = 0; i < n; ++i) {
        PointBounds& pb = bounds[i];
        for (size_t pos = 0; pos < b; ++pos) {
          pb.lb[pos] =
              std::max(0.0, pb.lb[pos] - moved[pb.center[pos]]);
        }
        if (pb.lb_rest < HUGE_VAL) {
          pb.lb_rest = std::max(0.0, pb.lb_rest - max_moved);
        }
        upper[i] += moved[result.assignments[i]];
      }
      traffic::CountRead(n * b * sizeof(double));
      traffic::CountWrite(n * b * sizeof(double));
      traffic::CountArithmetic(n * (b + 2));
    }

    if (filter != nullptr) {
      iter_span.AddModeledNs(filter->PimComputeNs() - pim_ns_before);
    }
    // Drake runs its assign loop inline (no RunAssignWithPolicy), so it
    // publishes its own reassignment tally.
    obs::AddCounter("pimine_kmeans_reassignments_total", changed);
    obs::AddCounter("pimine_kmeans_iterations_total", 1);
    result.iteration_wall_ms.push_back(iter_wall.ElapsedMillis());
    ++result.iterations;
    if (changed == 0 && iter > 0) break;
  }

  result.inertia = ComputeInertia(data, result.centers, result.assignments);
  result.stats.wall_ms = total_wall.ElapsedMillis();
  result.stats.traffic = traffic_scope.Delta();
  if (filter != nullptr) result.stats.pim_ns = filter->PimComputeNs();
  if (filter != nullptr) result.stats.fault = filter->FaultStatsTotal();
  if (filter != nullptr) result.stats.fleet = filter->FleetStats();
  PublishKmeansRunMetrics(result.stats);
  return result;
}

}  // namespace pimine
