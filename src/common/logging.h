#ifndef PIMINE_COMMON_LOGGING_H_
#define PIMINE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/status.h"

namespace pimine {
namespace internal_logging {

/// Accumulates a message and aborts the process when destroyed. Used by
/// PIMINE_CHECK for unrecoverable programmer errors (library code reports
/// recoverable errors through Status instead).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "FATAL " << file << ":" << line
            << " Check failed: " << condition << " ";
  }

  ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  /// Lvalue view of a freshly constructed temporary, so the PIMINE_CHECK
  /// macro can hand it to Voidify::operator& with or without streamed args.
  FatalLogMessage& self() { return *this; }

 private:
  std::ostringstream stream_;
};

/// Lets the ternary in PIMINE_CHECK produce `void` on both branches while
/// still allowing `PIMINE_CHECK(x) << "detail"` (operator& binds after <<).
struct Voidify {
  void operator&(FatalLogMessage&) {}
};

}  // namespace internal_logging

/// Aborts with a diagnostic when `cond` is false. For invariants and
/// precondition violations that indicate bugs, not recoverable errors.
/// Supports streaming extra context: PIMINE_CHECK(n > 0) << "n=" << n;
#define PIMINE_CHECK(cond)                        \
  (cond) ? (void)0                                \
         : ::pimine::internal_logging::Voidify()& \
           ::pimine::internal_logging::FatalLogMessage(__FILE__, __LINE__, #cond).self()

/// Aborts if `expr` (a Status expression) is not OK.
#define PIMINE_CHECK_OK(expr)                                              \
  do {                                                                     \
    const ::pimine::Status _pimine_check_status = (expr);                  \
    PIMINE_CHECK(_pimine_check_status.ok()) << _pimine_check_status.ToString(); \
  } while (false)

#ifndef NDEBUG
#define PIMINE_DCHECK(cond) PIMINE_CHECK(cond)
#else
#define PIMINE_DCHECK(cond) PIMINE_CHECK(true || (cond))
#endif

}  // namespace pimine

#endif  // PIMINE_COMMON_LOGGING_H_
