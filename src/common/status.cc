#include "common/status.h"

namespace pimine {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeviceFault:
      return "DeviceFault";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace pimine
