#ifndef PIMINE_COMMON_RESULT_H_
#define PIMINE_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace pimine {

/// `Result<T>` holds either a value of type `T` or a non-OK `Status`
/// explaining why the value is absent (the StatusOr / arrow::Result idiom).
///
/// Usage:
///   Result<Plan> plan = optimizer.Choose(bounds);
///   if (!plan.ok()) return plan.status();
///   Use(plan.value());
template <typename T>
class Result {
 public:
  /// Implicit conversions from T and Status keep call sites terse, matching
  /// the StatusOr convention.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    PIMINE_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts otherwise.
  const T& value() const& {
    PIMINE_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    PIMINE_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    PIMINE_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Unwraps a Result into `lhs`, propagating errors.
///   PIMINE_ASSIGN_OR_RETURN(auto plan, optimizer.Choose(bounds));
#define PIMINE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()
#define PIMINE_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define PIMINE_ASSIGN_OR_RETURN_NAME(a, b) PIMINE_ASSIGN_OR_RETURN_CONCAT(a, b)
#define PIMINE_ASSIGN_OR_RETURN(lhs, expr) \
  PIMINE_ASSIGN_OR_RETURN_IMPL(            \
      PIMINE_ASSIGN_OR_RETURN_NAME(_pimine_result_, __LINE__), lhs, expr)

}  // namespace pimine

#endif  // PIMINE_COMMON_RESULT_H_
