#ifndef PIMINE_COMMON_STATUS_H_
#define PIMINE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace pimine {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention: a small closed set of codes plus a human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kCapacityExceeded,
  kNotFound,
  kFailedPrecondition,
  kUnimplemented,
  kIOError,
  kInternal,
  /// An unrecoverable PIM device fault: the checksum flagged a corrupted
  /// result and the recovery policy exhausted retries/remaps without a
  /// clean pass (pim/fault_model.h).
  kDeviceFault,
};

/// Returns a stable, human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic error carrier. The library never throws; every fallible
/// operation returns `Status` (or `Result<T>` when it also produces a value).
///
/// Usage:
///   Status s = device.Program(matrix);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeviceFault(std::string msg) {
    return Status(StatusCode::kDeviceFault, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Expression-statement form:
///   PIMINE_RETURN_IF_ERROR(DoThing());
#define PIMINE_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::pimine::Status _pimine_status = (expr);        \
    if (!_pimine_status.ok()) return _pimine_status; \
  } while (false)

}  // namespace pimine

#endif  // PIMINE_COMMON_STATUS_H_
