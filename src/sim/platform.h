#ifndef PIMINE_SIM_PLATFORM_H_
#define PIMINE_SIM_PLATFORM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pimine {

/// One row of the paper's Table 1 (characteristics of representative NVM
/// techniques). Kept as data so `bench_config` can print the table and tests
/// can assert the published values are wired in.
struct NvmCharacteristics {
  std::string name;
  bool non_volatile = false;
  double endurance_low = 0.0;
  double endurance_high = 0.0;
  double read_latency_ns_low = 0.0;
  double read_latency_ns_high = 0.0;
  double write_latency_ns_low = 0.0;
  double write_latency_ns_high = 0.0;
  double cell_size_f2_low = 0.0;
  double cell_size_f2_high = 0.0;
  double write_energy_j_per_bit = 0.0;
};

/// Table 1 rows: DRAM, ReRAM, PCM, STT-RAM.
const std::vector<NvmCharacteristics>& NvmTable();

/// Host-side platform parameters (Table 5 plus standard Broadwell-class
/// microarchitectural constants used by the analytical cost model).
struct PlatformConfig {
  // --- Table 5 published values -------------------------------------------
  double cpu_ghz = 2.10;                    // Intel Xeon E5-2620.
  uint64_t l1_bytes = 32ull * 1024;         // per-core L1D.
  uint64_t l2_bytes = 256ull * 1024;        // per-core L2.
  uint64_t l3_bytes = 20ull * 1024 * 1024;  // shared L3.
  uint64_t dram_bytes = 16ull * 1024 * 1024 * 1024;
  double internal_bus_gbps = 50.0;          // ReRAM-memory internal bus.
  double reram_read_ns = 29.31;
  double reram_write_ns = 50.88;

  // --- Microarchitectural constants for the cost model --------------------
  uint64_t cache_line_bytes = 64;
  int l1_assoc = 8;
  int l2_assoc = 8;
  int l3_assoc = 16;
  double l1_latency_cycles = 4;
  double l2_latency_cycles = 12;
  double l3_latency_cycles = 40;
  double dram_latency_ns = 80.0;     // DRAM row access.
  double dram_bandwidth_gbps = 12.8; // single-channel effective stream BW.
  double flop_cycles = 0.25;         // amortized FP mul/add issue cost
                                     // (4-wide superscalar + SIMD).
  double div_latency_cycles = 20.0;  // FP division.
  double branch_miss_penalty_cycles = 15.0;
  double branch_miss_rate = 0.05;
  double frontend_fraction = 0.05;   // T_Fe as fraction of total (fetch/decode).

  double cycle_ns() const { return 1.0 / cpu_ghz; }
};

/// Returns the default (Table 5) platform.
const PlatformConfig& DefaultPlatform();

/// Renders the Table 1 / Table 5 contents for the bench harness.
std::string FormatNvmTable();
std::string FormatPlatformConfig(const PlatformConfig& config);

}  // namespace pimine

#endif  // PIMINE_SIM_PLATFORM_H_
