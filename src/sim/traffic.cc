#include "sim/traffic.h"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <vector>

namespace pimine {

TrafficCounters& TrafficCounters::operator+=(const TrafficCounters& other) {
  bytes_from_memory += other.bytes_from_memory;
  bytes_to_memory += other.bytes_to_memory;
  arithmetic_ops += other.arithmetic_ops;
  long_ops += other.long_ops;
  branches += other.branches;
  pim_results_loaded += other.pim_results_loaded;
  return *this;
}

TrafficCounters TrafficCounters::operator-(
    const TrafficCounters& other) const {
  TrafficCounters out;
  out.bytes_from_memory = bytes_from_memory - other.bytes_from_memory;
  out.bytes_to_memory = bytes_to_memory - other.bytes_to_memory;
  out.arithmetic_ops = arithmetic_ops - other.arithmetic_ops;
  out.long_ops = long_ops - other.long_ops;
  out.branches = branches - other.branches;
  out.pim_results_loaded = pim_results_loaded - other.pim_results_loaded;
  return out;
}

bool TrafficCounters::operator==(const TrafficCounters& other) const {
  return bytes_from_memory == other.bytes_from_memory &&
         bytes_to_memory == other.bytes_to_memory &&
         arithmetic_ops == other.arithmetic_ops &&
         long_ops == other.long_ops && branches == other.branches &&
         pim_results_loaded == other.pim_results_loaded;
}

std::string TrafficCounters::ToString() const {
  std::ostringstream os;
  os << "read=" << bytes_from_memory << "B write=" << bytes_to_memory
     << "B arith=" << arithmetic_ops << " long=" << long_ops
     << " branch=" << branches << " pim_results=" << pim_results_loaded;
  return os.str();
}

namespace traffic {
namespace {

// Registry of every live thread's counter block plus the folded totals of
// exited threads. Deliberately leaked: worker threads (e.g. the shared
// ThreadPool's) may run their thread_local destructors during static
// destruction, after a function-local static registry would already be gone.
struct Registry {
  std::mutex mu;
  std::vector<const TrafficCounters*> live;
  TrafficCounters retired;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// Thread-local registry membership: registers the counter block on first
// use, retires it (folding its totals into the process accumulator so
// GlobalSnapshot stays monotonic) on thread exit.
struct ThreadEntry {
  TrafficCounters counters;

  ThreadEntry() {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.live.push_back(&counters);
  }

  ~ThreadEntry() {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.retired += counters;
    registry.live.erase(
        std::find(registry.live.begin(), registry.live.end(), &counters));
  }
};

}  // namespace

TrafficCounters& Local() {
  thread_local ThreadEntry entry;
  return entry.counters;
}

void Reset() { Local() = TrafficCounters(); }

TrafficCounters GlobalSnapshot() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  TrafficCounters total = registry.retired;
  for (const TrafficCounters* counters : registry.live) total += *counters;
  return total;
}

}  // namespace traffic

}  // namespace pimine
