#include "sim/traffic.h"

#include <sstream>

namespace pimine {

TrafficCounters& TrafficCounters::operator+=(const TrafficCounters& other) {
  bytes_from_memory += other.bytes_from_memory;
  bytes_to_memory += other.bytes_to_memory;
  arithmetic_ops += other.arithmetic_ops;
  long_ops += other.long_ops;
  branches += other.branches;
  pim_results_loaded += other.pim_results_loaded;
  return *this;
}

TrafficCounters TrafficCounters::operator-(
    const TrafficCounters& other) const {
  TrafficCounters out;
  out.bytes_from_memory = bytes_from_memory - other.bytes_from_memory;
  out.bytes_to_memory = bytes_to_memory - other.bytes_to_memory;
  out.arithmetic_ops = arithmetic_ops - other.arithmetic_ops;
  out.long_ops = long_ops - other.long_ops;
  out.branches = branches - other.branches;
  out.pim_results_loaded = pim_results_loaded - other.pim_results_loaded;
  return out;
}

std::string TrafficCounters::ToString() const {
  std::ostringstream os;
  os << "read=" << bytes_from_memory << "B write=" << bytes_to_memory
     << "B arith=" << arithmetic_ops << " long=" << long_ops
     << " branch=" << branches << " pim_results=" << pim_results_loaded;
  return os.str();
}

namespace traffic {

TrafficCounters& Local() {
  thread_local TrafficCounters counters;
  return counters;
}

void Reset() { Local() = TrafficCounters(); }

}  // namespace traffic

}  // namespace pimine
