#include "sim/cost_model.h"

#include <algorithm>
#include <sstream>

namespace pimine {

HardwareBreakdown& HardwareBreakdown::operator+=(
    const HardwareBreakdown& other) {
  tc_ns += other.tc_ns;
  tcache_ns += other.tcache_ns;
  talu_ns += other.talu_ns;
  tbr_ns += other.tbr_ns;
  tfe_ns += other.tfe_ns;
  return *this;
}

std::string HardwareBreakdown::ToString() const {
  std::ostringstream os;
  const double total = total_ns();
  auto pct = [total](double v) {
    return total > 0.0 ? 100.0 * v / total : 0.0;
  };
  os << "total=" << total / 1e6 << "ms"
     << " Tc=" << pct(tc_ns) << "% Tcache=" << pct(tcache_ns)
     << "% TALU=" << pct(talu_ns) << "% TBr=" << pct(tbr_ns)
     << "% TFe=" << pct(tfe_ns) << "%";
  return os.str();
}

HostCostModel::HostCostModel(const PlatformConfig& config) : config_(config) {}

HardwareBreakdown HostCostModel::EstimateBreakdown(
    const TrafficCounters& counters, uint64_t footprint_bytes) const {
  HardwareBreakdown out;
  out.tc_ns = CyclesToNs(static_cast<double>(counters.arithmetic_ops) *
                         config_.flop_cycles);
  out.talu_ns = CyclesToNs(static_cast<double>(counters.long_ops) *
                           config_.div_latency_cycles);
  out.tbr_ns = CyclesToNs(static_cast<double>(counters.branches) *
                          config_.branch_miss_rate *
                          config_.branch_miss_penalty_cycles);

  // Memory stall: repeated scans over a working set larger than a cache
  // level defeat LRU entirely, so each line is served by the smallest level
  // that holds the footprint. Beyond L3, the scan is DRAM bandwidth-bound.
  const double lines = static_cast<double>(counters.bytes_from_memory) /
                       static_cast<double>(config_.cache_line_bytes);
  double stall_ns = 0.0;
  if (footprint_bytes > config_.l3_bytes) {
    const double latency_bound =
        lines * (config_.dram_latency_ns / 4.0);  // prefetch hides 3/4.
    const double bandwidth_bound = DramStreamNs(counters.bytes_from_memory);
    stall_ns = std::max(latency_bound, bandwidth_bound);
  } else if (footprint_bytes > config_.l2_bytes) {
    stall_ns = lines * CyclesToNs(config_.l3_latency_cycles -
                                  config_.l1_latency_cycles);
  } else if (footprint_bytes > config_.l1_bytes) {
    stall_ns = lines * CyclesToNs(config_.l2_latency_cycles -
                                  config_.l1_latency_cycles);
  }
  // Buffer-array loads (PIM results) cross the internal bus instead.
  stall_ns += BufferLoadNs(counters.pim_results_loaded, 64);
  // Writebacks stream to DRAM.
  stall_ns += DramWriteNs(counters.bytes_to_memory);
  out.tcache_ns = stall_ns;

  const double known = out.tc_ns + out.tcache_ns + out.talu_ns + out.tbr_ns;
  out.tfe_ns = known * config_.frontend_fraction /
               (1.0 - config_.frontend_fraction);
  return out;
}

HardwareBreakdown HostCostModel::EstimateBreakdownFromCache(
    const TrafficCounters& counters, const CacheStats& cache) const {
  HardwareBreakdown out;
  out.tc_ns = CyclesToNs(static_cast<double>(counters.arithmetic_ops) *
                         config_.flop_cycles);
  out.talu_ns = CyclesToNs(static_cast<double>(counters.long_ops) *
                           config_.div_latency_cycles);
  out.tbr_ns = CyclesToNs(static_cast<double>(counters.branches) *
                          config_.branch_miss_rate *
                          config_.branch_miss_penalty_cycles);
  double stall_ns =
      CyclesToNs(static_cast<double>(cache.hits[1]) *
                 (config_.l2_latency_cycles - config_.l1_latency_cycles)) +
      CyclesToNs(static_cast<double>(cache.hits[2]) *
                 (config_.l3_latency_cycles - config_.l1_latency_cycles)) +
      static_cast<double>(cache.memory_accesses) *
          (config_.dram_latency_ns / 4.0) +
      static_cast<double>(cache.tlb_misses) * CyclesToNs(20.0);
  stall_ns += BufferLoadNs(counters.pim_results_loaded, 64);
  stall_ns += DramWriteNs(counters.bytes_to_memory);
  out.tcache_ns = stall_ns;
  const double known = out.tc_ns + out.tcache_ns + out.talu_ns + out.tbr_ns;
  out.tfe_ns = known * config_.frontend_fraction /
               (1.0 - config_.frontend_fraction);
  return out;
}

double HostCostModel::DramStreamNs(uint64_t bytes) const {
  return static_cast<double>(bytes) / config_.dram_bandwidth_gbps;
}

double HostCostModel::DramWriteNs(uint64_t bytes) const {
  return static_cast<double>(bytes) / config_.dram_bandwidth_gbps;
}

double HostCostModel::ReramWriteNs(uint64_t bytes) const {
  // Writes proceed line-by-line at the ReRAM write latency, pipelined across
  // the internal bus; the device-side latency dominates.
  const double lines = static_cast<double>(bytes) /
                       static_cast<double>(config_.cache_line_bytes);
  return lines * config_.reram_write_ns;
}

double HostCostModel::BufferLoadNs(uint64_t count, int bits) const {
  // The CPU drains the buffer array through the regular memory interface
  // (Fig. 4b); the 50 GB/s internal bus only covers in-memory movement, so
  // host-visible loads pay DRAM-class bandwidth.
  const double bytes = static_cast<double>(count) * bits / 8.0;
  return bytes / config_.dram_bandwidth_gbps;
}

}  // namespace pimine
