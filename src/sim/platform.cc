#include "sim/platform.h"

#include <sstream>

namespace pimine {

const std::vector<NvmCharacteristics>& NvmTable() {
  // Table 1 of the paper (values from reference [14] therein).
  static const std::vector<NvmCharacteristics>& rows =
      *new std::vector<NvmCharacteristics>{
          {"DRAM", false, 1e15, 1e15, 10, 10, 10, 10, 60, 100, 1e-14},
          {"ReRAM", true, 1e8, 1e11, 10, 10, 50, 50, 4, 10, 1e-13},
          {"PCM", true, 1e8, 1e9, 20, 60, 20, 150, 4, 12, 1e-11},
          {"STT-RAM", true, 1e12, 1e15, 2, 35, 3, 50, 6, 50, 1e-13},
      };
  return rows;
}

const PlatformConfig& DefaultPlatform() {
  static const PlatformConfig& config = *new PlatformConfig();
  return config;
}

std::string FormatNvmTable() {
  std::ostringstream os;
  os << "Table 1. Characteristics of representative NVM techniques\n";
  os << "Memory    Volatile  Endurance        Read(ns)  Write(ns)  "
        "Cell(F^2)  WriteEnergy(J/bit)\n";
  for (const auto& row : NvmTable()) {
    os << row.name;
    for (size_t pad = row.name.size(); pad < 10; ++pad) os << ' ';
    os << (row.non_volatile ? "no " : "yes") << "       ";
    os << row.endurance_low;
    if (row.endurance_high != row.endurance_low) os << "-" << row.endurance_high;
    os << "  " << row.read_latency_ns_low;
    if (row.read_latency_ns_high != row.read_latency_ns_low) {
      os << "-" << row.read_latency_ns_high;
    }
    os << "  " << row.write_latency_ns_low;
    if (row.write_latency_ns_high != row.write_latency_ns_low) {
      os << "-" << row.write_latency_ns_high;
    }
    os << "  " << row.cell_size_f2_low << "-" << row.cell_size_f2_high;
    os << "  " << row.write_energy_j_per_bit << "\n";
  }
  return os.str();
}

std::string FormatPlatformConfig(const PlatformConfig& c) {
  std::ostringstream os;
  os << "Table 5. Hardware platform configuration\n"
     << "CPU: Broadwell " << c.cpu_ghz << " GHz Intel Xeon E5-2620\n"
     << "Cache L1/L2/L3: " << c.l1_bytes / 1024 << " KB / "
     << c.l2_bytes / 1024 << " KB / " << c.l3_bytes / (1024 * 1024) << " MB\n"
     << "DRAM: " << c.dram_bytes / (1024ull * 1024 * 1024)
     << " GB DIMM DDR4\n"
     << "ReRAM read/write latency: " << c.reram_read_ns << " / "
     << c.reram_write_ns << " ns\n"
     << "Internal bus: " << c.internal_bus_gbps << " GB/s\n";
  return os.str();
}

}  // namespace pimine
