#ifndef PIMINE_SIM_CACHE_SIM_H_
#define PIMINE_SIM_CACHE_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/platform.h"

namespace pimine {

/// Which level served an access.
enum class CacheLevel { kL1 = 0, kL2 = 1, kL3 = 2, kMemory = 3 };

/// Hit/miss counts per level for a simulated access stream.
struct CacheStats {
  uint64_t accesses = 0;
  uint64_t hits[3] = {0, 0, 0};      // L1, L2, L3.
  uint64_t memory_accesses = 0;      // misses in all levels.
  uint64_t tlb_misses = 0;           // DTLB misses (page walks).

  double MissRatio() const {
    return accesses == 0
               ? 0.0
               : static_cast<double>(memory_accesses) /
                     static_cast<double>(accesses);
  }
  std::string ToString() const;
};

/// Trace-driven, inclusive, three-level set-associative LRU cache simulator.
/// This is the PAPI substitute (DESIGN.md §1): the paper attributes stall
/// time to cache misses measured with hardware counters; we derive miss
/// counts by replaying the algorithms' dominant access patterns through this
/// model with the Table 5 geometry.
class CacheSimulator {
 public:
  explicit CacheSimulator(const PlatformConfig& config = DefaultPlatform());

  /// Simulates one load of `size` bytes starting at byte address `addr`
  /// (may touch several lines). Returns the level that served the *first*
  /// line.
  CacheLevel Access(uint64_t addr, uint32_t size = 4);

  /// Simulates a sequential scan of [base, base+bytes), `repeat` times, with
  /// one access per cache line. Far cheaper than per-element Access calls
  /// and exact for streaming kernels.
  void StreamScan(uint64_t base, uint64_t bytes, uint64_t repeat = 1);

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats(); }

  /// Drops all cached lines (cold caches) and clears statistics.
  void Flush();

 private:
  struct Set {
    // Tags ordered most- to least-recently used. Empty slots hold kNoTag.
    std::vector<uint64_t> tags;
  };
  struct Level {
    uint64_t num_sets = 0;
    int assoc = 0;
    std::vector<Set> sets;

    /// True on hit; updates recency. On miss, inserts (evicting LRU).
    bool AccessLine(uint64_t line);
    void Reset();
  };

  static constexpr uint64_t kNoTag = ~0ULL;

  /// One access at line granularity through the hierarchy (also probes the
  /// DTLB at page granularity — Tcache in Eq. 1 includes TLB misses).
  CacheLevel AccessLine(uint64_t line);

  uint64_t line_bytes_;
  uint64_t page_bytes_ = 4096;
  Level levels_[3];
  Level tlb_;
  CacheStats stats_;
};

}  // namespace pimine

#endif  // PIMINE_SIM_CACHE_SIM_H_
