#ifndef PIMINE_SIM_TRAFFIC_H_
#define PIMINE_SIM_TRAFFIC_H_

#include <cstdint>
#include <string>

namespace pimine {

/// Operation counters accumulated by instrumented kernels. The quantity the
/// whole paper turns on — bits transferred from memory per candidate
/// (d*b on a conventional architecture vs 3*b with PIM, Fig. 8) — is counted
/// here exactly, alongside the arithmetic/branch work used by the Fig. 5
/// hardware-component breakdown.
struct TrafficCounters {
  /// Bytes streamed from main memory to the CPU (vector payloads).
  uint64_t bytes_from_memory = 0;
  /// Bytes written back to main memory (pre-processing, center updates).
  uint64_t bytes_to_memory = 0;
  /// Floating-point / integer arithmetic operations (mul/add class).
  uint64_t arithmetic_ops = 0;
  /// Long-latency ALU operations (division, sqrt).
  uint64_t long_ops = 0;
  /// Conditional branches executed.
  uint64_t branches = 0;
  /// PIM results fetched from the buffer array (count of scalar results).
  uint64_t pim_results_loaded = 0;

  TrafficCounters& operator+=(const TrafficCounters& other);
  TrafficCounters operator-(const TrafficCounters& other) const;
  bool operator==(const TrafficCounters& other) const;
  std::string ToString() const;
};

/// Thread-local counter access. Kernels call the Count* helpers at coarse
/// granularity (per row / per block of candidates) so instrumentation
/// overhead stays negligible relative to the measured work.
namespace traffic {

/// Current thread's counters (mutable reference). The first access from a
/// thread registers its counter block in the process-wide registry that
/// AggregateScope drains; the block is retired (its totals folded into a
/// process accumulator) when the thread exits.
TrafficCounters& Local();

/// Zeroes the current thread's counters.
void Reset();

/// Process-wide counter snapshot: the sum of every live thread's counters
/// plus the totals retired by exited threads. Call only while no
/// instrumented work is in flight on other threads (e.g. after
/// ThreadPool::Wait()); the registry does not synchronize with counting
/// threads beyond the caller's own happens-before edges.
TrafficCounters GlobalSnapshot();

inline void CountRead(uint64_t bytes);
inline void CountWrite(uint64_t bytes);
inline void CountArithmetic(uint64_t ops);
inline void CountLongOps(uint64_t ops);
inline void CountBranches(uint64_t n);
inline void CountPimResults(uint64_t n);

// --- implementation -------------------------------------------------------

inline void CountRead(uint64_t bytes) { Local().bytes_from_memory += bytes; }
inline void CountWrite(uint64_t bytes) { Local().bytes_to_memory += bytes; }
inline void CountArithmetic(uint64_t ops) { Local().arithmetic_ops += ops; }
inline void CountLongOps(uint64_t ops) { Local().long_ops += ops; }
inline void CountBranches(uint64_t n) { Local().branches += n; }
inline void CountPimResults(uint64_t n) { Local().pim_results_loaded += n; }

/// RAII scope reporting the counter delta accumulated *across all threads*
/// during its lifetime. This is what makes parallel runs report exactly the
/// serial traffic: worker threads count into their own thread-local blocks
/// (no contention on the hot path) and the scope drains the per-thread
/// deltas through the registry. Construct before submitting work and read
/// Delta() only after the pool has drained (ThreadPool::Wait() provides the
/// required happens-before edge); concurrent unrelated instrumented work
/// would be folded into the delta.
class AggregateScope {
 public:
  AggregateScope() : start_(GlobalSnapshot()) {}

  /// Counters accumulated (process-wide) since construction.
  TrafficCounters Delta() const { return GlobalSnapshot() - start_; }

 private:
  TrafficCounters start_;
};

}  // namespace traffic

/// RAII scope that reports the counter delta observed during its lifetime
/// on the *calling thread only*. Use traffic::AggregateScope for runs that
/// fan work out across a ThreadPool.
class TrafficScope {
 public:
  TrafficScope() : start_(traffic::Local()) {}

  /// Counters accumulated since construction.
  TrafficCounters Delta() const { return traffic::Local() - start_; }

 private:
  TrafficCounters start_;
};

}  // namespace pimine

#endif  // PIMINE_SIM_TRAFFIC_H_
