#ifndef PIMINE_SIM_COST_MODEL_H_
#define PIMINE_SIM_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "sim/cache_sim.h"
#include "sim/platform.h"
#include "sim/traffic.h"

namespace pimine {

/// Eq. 1 of the paper: Ttotal = Tc + Tcache + TALU + TBr + TFe.
struct HardwareBreakdown {
  double tc_ns = 0.0;      // useful computation.
  double tcache_ns = 0.0;  // memory stall (cache/TLB misses).
  double talu_ns = 0.0;    // long-latency ALU ops (div, sqrt).
  double tbr_ns = 0.0;     // branch mispredictions.
  double tfe_ns = 0.0;     // front-end (fetch/decode) stalls.

  double total_ns() const {
    return tc_ns + tcache_ns + talu_ns + tbr_ns + tfe_ns;
  }
  HardwareBreakdown& operator+=(const HardwareBreakdown& other);
  std::string ToString() const;
};

/// Analytical host-execution model — the Quartz substitute (DESIGN.md §1).
/// Converts exact operation/traffic counts into time components using the
/// Table 5 platform parameters. Deterministic: same workload, same numbers.
class HostCostModel {
 public:
  explicit HostCostModel(const PlatformConfig& config = DefaultPlatform());

  /// Estimates the Eq. 1 breakdown of a kernel that streamed over a working
  /// set of `footprint_bytes` (decides which cache level serves the lines).
  HardwareBreakdown EstimateBreakdown(const TrafficCounters& counters,
                                      uint64_t footprint_bytes) const;

  /// Same, but takes measured per-level hit counts from the cache simulator
  /// instead of the footprint heuristic.
  HardwareBreakdown EstimateBreakdownFromCache(const TrafficCounters& counters,
                                               const CacheStats& cache) const;

  /// Time to stream `bytes` from DRAM to the CPU (bandwidth-bound).
  double DramStreamNs(uint64_t bytes) const;

  /// Time to write `bytes` into DRAM (pre-processing output).
  double DramWriteNs(uint64_t bytes) const;

  /// Time to write `bytes` into the ReRAM memory/PIM arrays (offline
  /// programming; pays the ReRAM write latency per line).
  double ReramWriteNs(uint64_t bytes) const;

  /// Time to move `count` PIM results (of `bits` each) over the internal bus
  /// from the buffer array to the CPU.
  double BufferLoadNs(uint64_t count, int bits) const;

  const PlatformConfig& config() const { return config_; }

 private:
  double CyclesToNs(double cycles) const {
    return cycles * config_.cycle_ns();
  }

  PlatformConfig config_;
};

}  // namespace pimine

#endif  // PIMINE_SIM_COST_MODEL_H_
