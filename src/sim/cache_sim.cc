#include "sim/cache_sim.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "util/bits.h"

namespace pimine {

std::string CacheStats::ToString() const {
  std::ostringstream os;
  os << "accesses=" << accesses << " L1=" << hits[0] << " L2=" << hits[1]
     << " L3=" << hits[2] << " mem=" << memory_accesses
     << " tlb_miss=" << tlb_misses;
  return os.str();
}

bool CacheSimulator::Level::AccessLine(uint64_t line) {
  const uint64_t set_index = line % num_sets;
  const uint64_t tag = line / num_sets;
  auto& tags = sets[set_index].tags;
  for (size_t i = 0; i < tags.size(); ++i) {
    if (tags[i] == tag) {
      // Move to MRU position.
      std::rotate(tags.begin(), tags.begin() + i, tags.begin() + i + 1);
      return true;
    }
  }
  // Miss: insert at MRU, evict LRU.
  std::rotate(tags.begin(), tags.end() - 1, tags.end());
  tags[0] = tag;
  return false;
}

void CacheSimulator::Level::Reset() {
  for (auto& set : sets) {
    std::fill(set.tags.begin(), set.tags.end(), kNoTag);
  }
}

CacheSimulator::CacheSimulator(const PlatformConfig& config)
    : line_bytes_(config.cache_line_bytes) {
  const uint64_t sizes[3] = {config.l1_bytes, config.l2_bytes,
                             config.l3_bytes};
  const int assocs[3] = {config.l1_assoc, config.l2_assoc, config.l3_assoc};
  for (int i = 0; i < 3; ++i) {
    Level& level = levels_[i];
    level.assoc = assocs[i];
    level.num_sets = sizes[i] / (line_bytes_ * assocs[i]);
    PIMINE_CHECK(level.num_sets > 0) << "cache level " << i << " too small";
    level.sets.resize(level.num_sets);
    for (auto& set : level.sets) set.tags.assign(level.assoc, kNoTag);
  }
  // 64-entry 4-way DTLB (Broadwell-class first-level data TLB).
  tlb_.assoc = 4;
  tlb_.num_sets = 16;
  tlb_.sets.resize(tlb_.num_sets);
  for (auto& set : tlb_.sets) set.tags.assign(tlb_.assoc, kNoTag);
}

CacheLevel CacheSimulator::AccessLine(uint64_t line) {
  ++stats_.accesses;
  const uint64_t page = line * line_bytes_ / page_bytes_;
  if (!tlb_.AccessLine(page)) ++stats_.tlb_misses;
  for (int i = 0; i < 3; ++i) {
    if (levels_[i].AccessLine(line)) {
      // Fill upper levels on a lower-level hit (inclusive hierarchy): the
      // AccessLine call above already inserted into the missing levels.
      ++stats_.hits[i];
      return static_cast<CacheLevel>(i);
    }
  }
  ++stats_.memory_accesses;
  return CacheLevel::kMemory;
}

CacheLevel CacheSimulator::Access(uint64_t addr, uint32_t size) {
  const uint64_t first = addr / line_bytes_;
  const uint64_t last = (addr + std::max<uint32_t>(size, 1) - 1) / line_bytes_;
  const CacheLevel result = AccessLine(first);
  for (uint64_t line = first + 1; line <= last; ++line) AccessLine(line);
  return result;
}

void CacheSimulator::StreamScan(uint64_t base, uint64_t bytes,
                                uint64_t repeat) {
  const uint64_t first = base / line_bytes_;
  const uint64_t last = (base + bytes + line_bytes_ - 1) / line_bytes_;
  for (uint64_t r = 0; r < repeat; ++r) {
    for (uint64_t line = first; line < last; ++line) AccessLine(line);
  }
}

void CacheSimulator::Flush() {
  for (auto& level : levels_) level.Reset();
  tlb_.Reset();
  ResetStats();
}

}  // namespace pimine
