#include "serve/admission_queue.h"

#include <algorithm>
#include <limits>
#include <string>

#include "common/logging.h"

namespace pimine {
namespace serve {
namespace {

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  return a > std::numeric_limits<uint64_t>::max() - b
             ? std::numeric_limits<uint64_t>::max()
             : a + b;
}

}  // namespace

AdmissionQueue::AdmissionQueue(const ServeOptions& options)
    : max_batch_(options.max_batch),
      max_wait_ns_(options.max_wait_ns),
      capacity_(options.queue_capacity),
      tenants_(options.num_tenants()) {
  for (size_t t = 0; t < tenants_.size(); ++t) {
    const uint64_t weight =
        options.tenants.empty()
            ? 1
            : std::min<uint64_t>(options.tenants[t].weight, kStrideScale);
    tenants_[t].stride = kStrideScale / std::max<uint64_t>(1, weight);
  }
}

Status AdmissionQueue::Admit(uint64_t id, uint32_t tenant,
                             uint64_t arrival_ns) {
  if (tenant >= tenants_.size()) {
    return Status::InvalidArgument("unknown tenant id " +
                                   std::to_string(tenant) + " (have " +
                                   std::to_string(tenants_.size()) + ")");
  }
  if (pending_ >= capacity_) {
    return Status::CapacityExceeded(
        "admission queue full: " + std::to_string(pending_) + "/" +
        std::to_string(capacity_) + " queries pending; retry after the "
        "scheduler drains a batch");
  }
  TenantQueue& tq = tenants_[tenant];
  if (tq.fifo.empty()) {
    // Stride-scheduling re-activation: no credit for the idle period.
    tq.pass = std::max(tq.pass, pass_floor_);
  }
  tq.fifo.push_back(PendingQuery{id, tenant, arrival_ns});
  ++pending_;
  max_depth_ = std::max<uint64_t>(max_depth_, pending_);
  return Status::OK();
}

uint64_t AdmissionQueue::OldestArrivalNs() const {
  PIMINE_DCHECK(pending_ > 0);
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  for (const TenantQueue& tq : tenants_) {
    if (!tq.fifo.empty()) {
      oldest = std::min(oldest, tq.fifo.front().arrival_ns);
    }
  }
  return oldest;
}

uint64_t AdmissionQueue::DueAtNs() const {
  PIMINE_DCHECK(pending_ > 0);
  if (pending_ >= max_batch_) {
    // The arrival that completed the oldest full batch: the max_batch-th
    // smallest arrival among pending queries. O(P) gather + partial sort;
    // P is bounded by queue_capacity and this runs once per dispatch
    // decision, not per query.
    std::vector<uint64_t> arrivals;
    arrivals.reserve(pending_);
    for (const TenantQueue& tq : tenants_) {
      for (const PendingQuery& q : tq.fifo) arrivals.push_back(q.arrival_ns);
    }
    std::nth_element(arrivals.begin(), arrivals.begin() + (max_batch_ - 1),
                     arrivals.end());
    return arrivals[max_batch_ - 1];
  }
  return SaturatingAdd(OldestArrivalNs(), max_wait_ns_);
}

void AdmissionQueue::FormBatch(std::vector<PendingQuery>* out) {
  PIMINE_DCHECK(pending_ > 0);
  out->clear();
  while (out->size() < max_batch_ && pending_ > 0) {
    size_t best = tenants_.size();
    for (size_t t = 0; t < tenants_.size(); ++t) {
      if (tenants_[t].fifo.empty()) continue;
      if (best == tenants_.size() ||
          tenants_[t].pass < tenants_[best].pass) {
        best = t;  // ties resolve to the smaller tenant id (scan order).
      }
    }
    TenantQueue& tq = tenants_[best];
    out->push_back(tq.fifo.front());
    tq.fifo.pop_front();
    --pending_;
    pass_floor_ = tq.pass;
    tq.pass += tq.stride;
  }
}

}  // namespace serve
}  // namespace pimine
