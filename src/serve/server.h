#ifndef PIMINE_SERVE_SERVER_H_
#define PIMINE_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/mutable_dataset.h"
#include "core/sharded_engine.h"
#include "data/matrix.h"
#include "obs/event_log.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "profiling/run_stats.h"
#include "serve/admission_queue.h"
#include "serve/serve_options.h"
#include "serve/workload.h"
#include "util/top_k.h"

namespace pimine {
namespace serve {

/// Outcome of one submitted query. `status` is OK for served queries and
/// kCapacityExceeded for queries the bounded admission queue rejected
/// (rejections carry no neighbours and zero dispatch/completion times).
struct ServedResult {
  Status status;
  uint32_t tenant = 0;
  uint64_t arrival_ns = 0;
  /// Instant the scheduler dispatched the query's batch (virtual time in
  /// replay, steady-clock ns since Start in live mode).
  uint64_t dispatch_ns = 0;
  uint64_t completion_ns = 0;
  /// Dense id of the dispatch this query rode in (replay only).
  uint64_t batch_id = 0;
  /// completion - arrival exceeded ServeOptions::deadline_ns (when set).
  bool deadline_missed = false;
  std::vector<Neighbor> neighbors;
};

/// Per-tenant serving accounting.
struct TenantServeStats {
  std::string name;
  uint64_t submitted = 0;
  uint64_t served = 0;
  uint64_t rejected = 0;
  uint64_t deadline_misses = 0;
  /// Arrival-to-completion latency SLO histogram (exact integer buckets).
  obs::Histogram latency;
};

/// Everything one serving run reports: scheduler-level accounting (queue,
/// batching, SLOs, fairness) plus the execution accounting of the
/// underlying engine in `exec` (traffic, modeled pim_ns, exact/bound
/// counts — the fields the determinism tests pin across thread counts).
struct ServeStats {
  uint64_t submitted = 0;
  uint64_t served = 0;
  uint64_t rejected = 0;
  uint64_t deadline_misses = 0;
  /// Rejections issued by degraded-mode load shedding (a subset of
  /// `rejected`): lowest-weight-tenant submissions refused with
  /// CapacityExceeded while a shard sat below the degrade watermark.
  uint64_t shed_queries = 0;
  /// Dispatches formed while some shard sat below the degrade watermark
  /// (executed with bound-slack escalation instead of host-exact).
  uint64_t degraded_batches = 0;
  /// Compactions fired by the tombstone watermark (MaybeCompact).
  uint64_t watermark_compactions = 0;
  /// Scheduler dispatches issued (each one RunQueryBatch coalescing up to
  /// max_batch queries).
  uint64_t batches = 0;
  /// High-water mark of the admission queue depth.
  uint64_t max_queue_depth = 0;
  /// Completion instant of the last dispatch: the virtual-clock makespan
  /// of the replayed trace (offered work is served in makespan_ns of
  /// modeled device time, so throughput = served / makespan).
  uint64_t makespan_ns = 0;
  /// served / batches — the continuous-batching figure of merit: how much
  /// Q-pipelining the offered load actually sustained.
  double mean_batch_occupancy = 0.0;
  /// Modeled device-occupancy total, summed over dispatches in formation
  /// order (deterministic, unlike the engine's interleaving-dependent
  /// float accumulation).
  double pipelined_ns = 0.0;
  obs::Histogram wait_hist;       // arrival -> dispatch, per served query.
  obs::Histogram latency_hist;    // arrival -> completion, per served query.
  obs::Histogram occupancy_hist;  // queries per dispatch.
  std::vector<TenantServeStats> tenants;
  /// Engine-level run accounting (traffic, pim_ns, exact/bound counts,
  /// fault + fleet stats, per-query modeled latency under obs).
  RunStats exec;
};

/// Result of replaying a recorded arrival trace: one ServedResult per
/// trace event (index-aligned) plus the run's serving stats.
struct ReplayOutput {
  std::vector<ServedResult> results;
  ServeStats stats;
  /// Rolling-window telemetry of the replayed run, clocked by the VIRTUAL
  /// clock and fed from the deterministic accounting pass — byte-identical
  /// across scheduler_threads and shard counts (TimeSeries::ToJson()).
  std::string timeseries_json;
  /// Sampled per-query JSONL events (ServeOptions::event_sample_rate);
  /// empty when sampling is disabled. Same determinism contract.
  std::string events_jsonl;
};

/// Online serving front-end over a (sharded) PIM engine: clients submit
/// single queries; a continuous-batching scheduler coalesces whatever is
/// pending — across tenants, by weighted fairness — into device batches so
/// the crossbar pipeline (BatchDotLatencyNs = stage_ns * (stages + Q - 1))
/// runs at high occupancy even though no client ever batches.
///
/// Two clocks drive the same scheduler:
///
///  * Replay(trace): a VIRTUAL clock. Batch formation is one deterministic
///    single-threaded pass over the recorded arrivals — dispatch instant =
///    max(batch due time, virtual device free time), service time = the
///    modeled batch latency — so batch composition, every serving stat and
///    every result is a pure function of (trace, options). The formed
///    batch sequence is then EXECUTED across scheduler_threads workers;
///    results, traffic counters and modeled pim_ns are bit-identical for
///    every thread count (the determinism contract of DESIGN.md carried
///    into the serving layer).
///
///  * Start/Submit/Stop: the real steady clock, for live concurrent
///    clients. Same admission queue, same batching rules; timings are
///    wall-clock and therefore not reproducible — use replay for science,
///    live mode for serving.
class PimServer : public MutationListener {
 public:
  /// Builds the engine fleet over `data` and validates `serve`. The data
  /// matrix must outlive the server. ServeOptions::exec.num_threads is
  /// ignored (parallelism comes from scheduler_threads).
  static Result<std::unique_ptr<PimServer>> Build(const FloatMatrix& data,
                                                  Distance distance,
                                                  const EngineOptions& engine,
                                                  const ServeOptions& serve);

  ~PimServer();

  /// Replays `trace` against the virtual clock. Event query rows index
  /// `queries` (same dimensionality as the data). Deterministic: identical
  /// (trace, options, data, queries) produce bit-identical output for any
  /// scheduler_threads. Not concurrent with live mode.
  Result<ReplayOutput> Replay(const ArrivalTrace& trace,
                              const FloatMatrix& queries);

  // --- Live mode ------------------------------------------------------

  /// Starts scheduler_threads worker threads. Fails if already running.
  Status Start();

  /// Submits one query and blocks until it is served (or rejected with
  /// CapacityExceeded by queue backpressure — the complete result arrives
  /// either way; nothing is silently dropped). Thread-safe; any number of
  /// client threads may submit concurrently.
  Result<ServedResult> Submit(uint32_t tenant, std::span<const float> query);

  /// Drains every pending query, stops the workers, joins them. Idempotent.
  void Stop();

  /// Snapshot of the live-mode serving stats (engine-level `exec` fields
  /// are filled from the engine at snapshot time). Call after Stop, or
  /// accept a racy-but-consistent mid-run view.
  ServeStats LiveStats();

  // --- Mutable datasets ------------------------------------------------

  /// Registers the server on `dataset` so corpus mutations mirror onto the
  /// serving fleet (delta programming / tombstones / compaction). The
  /// server must have been Built over `dataset->corpus()` — the corpus IS
  /// the matrix the server reads — and the dataset must outlive the
  /// server's use. Mutations are refused while live serving is running
  /// (Stop() first); callers serialize mutations against Replay.
  Status AttachMutable(MutableDataset* dataset);

  /// Mutation mirroring (normally invoked by the attached dataset).
  /// Deletes that would leave fewer than ServeOptions::k live rows are
  /// refused with FailedPrecondition — every served query must still find
  /// k live neighbours.
  Status OnInsert(const FloatMatrix& rows) override;
  Status OnDelete(std::span<const uint32_t> rows) override;
  Status OnCompact(const std::vector<uint32_t>& live) override;

  /// True when an attached dataset's tombstone fraction has reached
  /// ServeOptions::compact_watermark (> 0).
  bool ShouldCompact() const;

  /// Compacts the attached dataset (notifying every listener, this server
  /// included) when ShouldCompact(); counts the trigger. Call between
  /// top-level mutations — never from inside a listener callback.
  Status MaybeCompact();

  /// Watermark-triggered compactions MaybeCompact has fired.
  uint64_t watermark_compactions() const;

  // --- Telemetry plane -------------------------------------------------

  /// Prometheus text exposition of the current serving state: the
  /// pimine_serve_* scheduler families (from LiveStats) plus the
  /// per-shard pimine_fleet_shard_*{shard="j"} fleet families. Built into
  /// a FRESH registry per call — scrapes are idempotent snapshots, never
  /// cumulative re-adds. Safe while serving (the /metrics handler's path).
  std::string MetricsText();

  /// Live rolling-window telemetry (steady clock). Empty-document (but
  /// valid) before Start.
  std::string TimeSeriesJson();

  /// Live sampled per-query events as JSONL ("" when sampling is off).
  std::string EventsJsonl();

  /// /healthz body: "ok\n" when every shard serves from its primary
  /// replica in exact mode; "ok degraded\n" plus one line per degraded
  /// shard otherwise. Always an HTTP-200 body — degradation is reported,
  /// not a liveness failure.
  std::string HealthzBody() const;

  const ShardedPimEngine& engine() const { return *engine_; }
  const ServeOptions& options() const { return options_; }
  const ChaosSchedule& chaos() const { return chaos_; }

 private:
  /// Per-worker dispatch scratch, reused across every dispatch the worker
  /// executes: engine query scratch + batch handle (zero-allocation
  /// steady state), gathered query buffer, bound array, and the worker's
  /// share of the accumulated stats (merged in slot order).
  struct DispatchScratch {
    ShardedPimEngine::QueryScratch query;
    ShardedPimEngine::QueryHandleBatch handle;
    std::vector<float> qbuf;
    std::vector<double> bounds;
    std::vector<std::vector<Neighbor>> neighbors;
    uint64_t exact_count = 0;
    uint64_t bound_count = 0;
    obs::Histogram latency;
    Status status;
  };

  struct LiveRequest;

  PimServer() = default;

  /// Executes one formed dispatch: one engine RunQueryBatch per
  /// device_batch chunk, then the host filter-and-refine pipeline per
  /// query — the exact per-query loop of StandardPimKnn::Search, so a
  /// served query's neighbours, traffic and modeled stats are identical
  /// to the offline path. Fills s->neighbors[0..members). `ids` labels
  /// the per-query trace spans.
  void RunDispatch(std::span<const float> qbuf,
                   const std::vector<PendingQuery>& members,
                   double device_ns_per_query,
                   const ShardedPimEngine::DispatchOptions& dispatch,
                   DispatchScratch* s);

  /// The shard (lowest index) whose healthy-replica fraction per the chaos
  /// schedule sits below degrade_watermark at instant `t`; -1 when none.
  /// Pure in (schedule, options, t) — safe for the virtual-clock pass.
  int DegradedShardAt(uint64_t t) const;
  uint32_t TenantWeight(uint32_t tenant) const;
  uint32_t MinTenantWeight() const;

  void WorkerLoop(size_t worker_index);
  uint64_t NowNs() const;
  void ExportObsMetrics(const ServeStats& stats) const;
  /// Writes the pimine_serve_* families for `stats` into `registry`
  /// (shared by the global-obs export and the fresh-registry /metrics
  /// snapshot path).
  void FillServeMetrics(const ServeStats& stats,
                        obs::MetricsRegistry* registry) const;
  obs::TimeSeriesOptions TimeSeriesOptionsFromServe() const;
  obs::EventLogOptions EventLogOptionsFromServe() const;
  /// Feeds one served/rejected query into a timeseries + event log — the
  /// single recording path shared by the replay accounting pass and the
  /// live scheduler (so both planes carry the same series names).
  void RecordQueryTelemetry(const ServedResult& r, uint64_t query_id,
                            obs::TimeSeries* ts, obs::EventLog* events) const;

  ServeOptions options_;
  const FloatMatrix* data_ = nullptr;
  /// Attached mutable dataset (not owned); nullptr until AttachMutable.
  MutableDataset* dataset_ = nullptr;
  /// Watermark-triggered compactions (guarded by mu_).
  uint64_t watermark_compactions_ = 0;
  Distance distance_ = Distance::kEuclidean;
  bool maximize_ = false;
  std::unique_ptr<ShardedPimEngine> engine_;
  /// Seeded availability-fault schedule generated at Build from
  /// ServeOptions::chaos over the fleet geometry; installed into the
  /// engine when enabled. Empty (and uninstalled) when chaos is off.
  ChaosSchedule chaos_;

  // --- Live-mode state (all guarded by mu_ except the workers' own
  // scratch; batch execution runs outside the lock) ---------------------
  std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_ = false;
  uint64_t next_id_ = 0;
  std::unique_ptr<AdmissionQueue> queue_;
  std::unordered_map<uint64_t, std::unique_ptr<LiveRequest>> live_requests_;
  ServeStats live_stats_;
  double live_device_ns_per_query_ = 0.0;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<DispatchScratch>> worker_scratch_;
  std::chrono::steady_clock::time_point start_time_;
  // Live telemetry plane (created by Start; both are internally
  // synchronized, so the exposition server snapshots them lock-free with
  // respect to mu_).
  std::unique_ptr<obs::TimeSeries> live_ts_;
  std::unique_ptr<obs::EventLog> live_events_;
};

}  // namespace serve
}  // namespace pimine

#endif  // PIMINE_SERVE_SERVER_H_
